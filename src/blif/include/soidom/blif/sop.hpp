/// \file sop.hpp
/// Sum-of-products cover representation used by .names tables in BLIF.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace soidom {

/// Literal polarity within a cube.
enum class CubeLit : std::uint8_t {
  kNeg,      ///< input must be 0  ('0' in BLIF)
  kPos,      ///< input must be 1  ('1' in BLIF)
  kDontCare  ///< input unused     ('-' in BLIF)
};

/// One product term over `num_inputs` variables.
struct Cube {
  std::vector<CubeLit> lits;

  bool matches(const std::vector<bool>& inputs) const;
  /// Number of non-don't-care literals.
  int care_count() const;
};

/// A cover: OR of cubes.  `on_set` mirrors BLIF's output column: when
/// false, the cover describes the OFF-set and the function is the
/// complement of the OR of cubes.  An empty cube list denotes constant
/// 0 (on_set) or constant 1 (off_set) per BLIF convention.
struct SopCover {
  std::size_t num_inputs = 0;
  std::vector<Cube> cubes;
  bool on_set = true;

  /// Evaluate on a full input assignment.
  bool eval(const std::vector<bool>& inputs) const;

  /// True if the function is constant; `value` receives the constant.
  bool is_constant(bool& value) const;

  /// True if no literal appears in both polarities across the whole cover
  /// (a sufficient syntactic condition for unateness per input).
  bool syntactically_unate() const;

  /// BLIF body text (the lines that follow a .names header).
  std::string to_blif_body() const;

  // --- canonical single-node covers --------------------------------------
  static SopCover const_zero();
  static SopCover const_one();
  static SopCover buffer();                        ///< f = a
  static SopCover inverter();                      ///< f = !a
  static SopCover and_n(std::size_t n);            ///< f = a1&...&an
  static SopCover or_n(std::size_t n);             ///< f = a1|...|an
};

}  // namespace soidom
