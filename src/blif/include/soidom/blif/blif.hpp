/// \file blif.hpp
/// Parsing and writing of the Berkeley Logic Interchange Format (BLIF),
/// the combinational subset: .model / .inputs / .outputs / .names / .end.
/// Sequential elements (.latch) and hierarchy (.subckt, .gate) are
/// rejected with a clear error, matching the paper's combinational scope.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "soidom/blif/sop.hpp"
#include "soidom/network/network.hpp"

namespace soidom {

/// One .names table: a single-output node defined by an SOP cover.
struct BlifTable {
  std::vector<std::string> inputs;  ///< fanin signal names, in cube order
  std::string output;               ///< defined signal name
  SopCover cover;
};

/// A flat combinational BLIF model.
struct BlifModel {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<BlifTable> tables;

  /// Index of the table defining `signal`, or -1 (primary input or undefined).
  int table_defining(std::string_view signal) const;
};

/// Parse BLIF from text.  Throws soidom::Error with a line-numbered message
/// on malformed input or unsupported constructs.
BlifModel parse_blif(std::string_view text);

/// Parse BLIF from a file.
BlifModel parse_blif_file(const std::string& path);

/// Serialize a model back to BLIF text.
std::string write_blif(const BlifModel& model);

/// Serialize a Network as BLIF (one .names per logic node).
std::string write_blif(const Network& net, const std::string& model_name);

}  // namespace soidom
