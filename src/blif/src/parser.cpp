#include <algorithm>
#include <fstream>
#include <sstream>

#include "soidom/base/contracts.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/blif/blif.hpp"

namespace soidom {
namespace {

/// Splits raw BLIF text into logical lines: strips comments, joins
/// '\'-continued lines, drops blank lines.  Records the source line number
/// of each logical line for diagnostics.
struct LogicalLine {
  std::string text;
  int line_number;
};

std::vector<LogicalLine> logical_lines(std::string_view text) {
  std::vector<LogicalLine> out;
  std::string pending;
  int pending_start = 0;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    ++line_number;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::string_view trimmed = trim(line);
    const bool continued = !trimmed.empty() && trimmed.back() == '\\';
    if (continued) trimmed = trim(trimmed.substr(0, trimmed.size() - 1));

    if (!trimmed.empty()) {
      if (pending.empty()) pending_start = line_number;
      if (!pending.empty()) pending += ' ';
      pending += trimmed;
    }
    if (!continued && !pending.empty()) {
      out.push_back({std::move(pending), pending_start});
      pending.clear();
    }
  }
  return out;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw Error(format("BLIF parse error at line %d: %s", line, what.c_str()));
}

CubeLit lit_of(char c, int line) {
  switch (c) {
    case '0': return CubeLit::kNeg;
    case '1': return CubeLit::kPos;
    case '-': return CubeLit::kDontCare;
    default: fail(line, format("invalid cube character '%c'", c));
  }
}

}  // namespace

int BlifModel::table_defining(std::string_view signal) const {
  for (std::size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].output == signal) return static_cast<int>(i);
  }
  return -1;
}

BlifModel parse_blif(std::string_view text) {
  const auto lines = logical_lines(text);
  BlifModel model;
  bool saw_model = false;
  bool ended = false;
  BlifTable* open_table = nullptr;
  int open_table_phase_line = 0;  // first cube line, 0 if none yet

  auto close_table = [&] {
    open_table = nullptr;
    open_table_phase_line = 0;
  };

  for (const LogicalLine& ll : lines) {
    if (ended) fail(ll.line_number, "content after .end");
    const auto tokens = split(ll.text);
    SOIDOM_ASSERT(!tokens.empty());
    const std::string_view head = tokens.front();

    if (head[0] == '.') {
      if (head == ".model") {
        if (saw_model) fail(ll.line_number, "multiple .model statements");
        saw_model = true;
        model.name = tokens.size() > 1 ? std::string(tokens[1]) : "unnamed";
        close_table();
      } else if (head == ".inputs") {
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          model.inputs.emplace_back(tokens[i]);
        }
        close_table();
      } else if (head == ".outputs") {
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          model.outputs.emplace_back(tokens[i]);
        }
        close_table();
      } else if (head == ".names") {
        if (tokens.size() < 2) fail(ll.line_number, ".names needs a signal");
        BlifTable table;
        for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
          table.inputs.emplace_back(tokens[i]);
        }
        table.output = std::string(tokens.back());
        table.cover.num_inputs = table.inputs.size();
        table.cover.on_set = true;
        if (model.table_defining(table.output) >= 0) {
          fail(ll.line_number,
               format("signal '%s' defined twice", table.output.c_str()));
        }
        model.tables.push_back(std::move(table));
        open_table = &model.tables.back();
        open_table_phase_line = 0;
      } else if (head == ".end") {
        ended = true;
        close_table();
      } else if (head == ".latch" || head == ".subckt" || head == ".gate" ||
                 head == ".mlatch" || head == ".exdc") {
        fail(ll.line_number,
             format("unsupported construct '%s' (combinational BLIF only)",
                    std::string(head).c_str()));
      } else {
        // Unknown dot-directives (.default_input_arrival etc.) are ignored,
        // matching SIS behaviour.
        close_table();
      }
      continue;
    }

    // Cube line.
    if (open_table == nullptr) {
      fail(ll.line_number, "cube line outside a .names table");
    }
    std::string_view in_part;
    std::string_view out_part;
    if (open_table->inputs.empty()) {
      if (tokens.size() != 1) fail(ll.line_number, "malformed constant cube");
      out_part = tokens[0];
    } else {
      if (tokens.size() != 2) fail(ll.line_number, "malformed cube line");
      in_part = tokens[0];
      out_part = tokens[1];
    }
    if (in_part.size() != open_table->inputs.size()) {
      fail(ll.line_number,
           format("cube has %zu literals, expected %zu", in_part.size(),
                  open_table->inputs.size()));
    }
    if (out_part.size() != 1 || (out_part[0] != '0' && out_part[0] != '1')) {
      fail(ll.line_number, "cube output must be 0 or 1");
    }
    const bool on = out_part[0] == '1';
    if (open_table_phase_line == 0) {
      open_table->cover.on_set = on;
      open_table_phase_line = ll.line_number;
    } else if (open_table->cover.on_set != on) {
      fail(ll.line_number, "mixed on-set and off-set cubes in one table");
    }
    Cube cube;
    cube.lits.reserve(in_part.size());
    for (const char c : in_part) cube.lits.push_back(lit_of(c, ll.line_number));
    open_table->cover.cubes.push_back(std::move(cube));
  }

  if (!saw_model) throw Error("BLIF parse error: missing .model");
  if (model.outputs.empty()) throw Error("BLIF parse error: no .outputs");

  // Semantic checks: every output and every table input must be defined.
  auto defined = [&](std::string_view sig) {
    return std::find(model.inputs.begin(), model.inputs.end(), sig) !=
               model.inputs.end() ||
           model.table_defining(sig) >= 0;
  };
  for (const std::string& o : model.outputs) {
    if (!defined(o)) {
      throw Error(format("BLIF semantic error: output '%s' is never defined",
                         o.c_str()));
    }
  }
  for (const BlifTable& t : model.tables) {
    for (const std::string& in : t.inputs) {
      if (!defined(in)) {
        throw Error(format(
            "BLIF semantic error: signal '%s' used by '%s' is never defined",
            in.c_str(), t.output.c_str()));
      }
    }
  }
  return model;
}

BlifModel parse_blif_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error(format("cannot open BLIF file '%s'", path.c_str()));
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_blif(ss.str());
}

}  // namespace soidom
