#include "soidom/blif/sop.hpp"

#include "soidom/base/contracts.hpp"

namespace soidom {

bool Cube::matches(const std::vector<bool>& inputs) const {
  SOIDOM_ASSERT(inputs.size() == lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (lits[i] == CubeLit::kPos && !inputs[i]) return false;
    if (lits[i] == CubeLit::kNeg && inputs[i]) return false;
  }
  return true;
}

int Cube::care_count() const {
  int n = 0;
  for (const CubeLit l : lits) {
    if (l != CubeLit::kDontCare) ++n;
  }
  return n;
}

bool SopCover::eval(const std::vector<bool>& inputs) const {
  SOIDOM_ASSERT(inputs.size() == num_inputs);
  bool any = false;
  for (const Cube& c : cubes) {
    if (c.matches(inputs)) {
      any = true;
      break;
    }
  }
  return on_set ? any : !any;
}

bool SopCover::is_constant(bool& value) const {
  if (cubes.empty()) {
    value = !on_set;
    return true;
  }
  // A cover with a single all-don't-care cube is also constant.
  if (num_inputs == 0 ||
      (cubes.size() == 1 && cubes.front().care_count() == 0)) {
    value = on_set;
    return true;
  }
  return false;
}

bool SopCover::syntactically_unate() const {
  for (std::size_t i = 0; i < num_inputs; ++i) {
    bool pos = false;
    bool neg = false;
    for (const Cube& c : cubes) {
      if (c.lits[i] == CubeLit::kPos) pos = true;
      if (c.lits[i] == CubeLit::kNeg) neg = true;
    }
    if (pos && neg) return false;
  }
  return true;
}

std::string SopCover::to_blif_body() const {
  std::string out;
  const char out_char = on_set ? '1' : '0';
  // Empty cube list: BLIF writes constant 0 (empty on-set) as an empty
  // body; constant 1 is represented canonically by const_one(), whose
  // single empty cube serializes to the standard bare "1" line below.
  if (cubes.empty()) return out;
  for (const Cube& c : cubes) {
    std::string line;
    for (const CubeLit l : c.lits) {
      line += l == CubeLit::kPos ? '1' : (l == CubeLit::kNeg ? '0' : '-');
    }
    if (!line.empty()) line += ' ';
    line += out_char;
    line += '\n';
    out += line;
  }
  return out;
}

SopCover SopCover::const_zero() { return SopCover{0, {}, true}; }

SopCover SopCover::const_one() {
  SopCover s{0, {}, true};
  s.cubes.push_back(Cube{});  // one empty cube: always matches
  return s;
}

SopCover SopCover::buffer() {
  SopCover s{1, {}, true};
  s.cubes.push_back(Cube{{CubeLit::kPos}});
  return s;
}

SopCover SopCover::inverter() {
  SopCover s{1, {}, true};
  s.cubes.push_back(Cube{{CubeLit::kNeg}});
  return s;
}

SopCover SopCover::and_n(std::size_t n) {
  SopCover s{n, {}, true};
  Cube c;
  c.lits.assign(n, CubeLit::kPos);
  s.cubes.push_back(std::move(c));
  return s;
}

SopCover SopCover::or_n(std::size_t n) {
  SopCover s{n, {}, true};
  for (std::size_t i = 0; i < n; ++i) {
    Cube c;
    c.lits.assign(n, CubeLit::kDontCare);
    c.lits[i] = CubeLit::kPos;
    s.cubes.push_back(std::move(c));
  }
  return s;
}

}  // namespace soidom
