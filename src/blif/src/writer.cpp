#include <sstream>

#include "soidom/base/contracts.hpp"
#include "soidom/blif/blif.hpp"

namespace soidom {

std::string write_blif(const BlifModel& model) {
  std::ostringstream os;
  os << ".model " << model.name << '\n';
  os << ".inputs";
  for (const std::string& i : model.inputs) os << ' ' << i;
  os << '\n';
  os << ".outputs";
  for (const std::string& o : model.outputs) os << ' ' << o;
  os << '\n';
  for (const BlifTable& t : model.tables) {
    os << ".names";
    for (const std::string& i : t.inputs) os << ' ' << i;
    os << ' ' << t.output << '\n';
    os << t.cover.to_blif_body();
  }
  os << ".end\n";
  return os.str();
}

std::string write_blif(const Network& net, const std::string& model_name) {
  BlifModel model;
  model.name = model_name;

  // Stable signal names: PIs keep their names, internal nodes get n<id>.
  std::vector<std::string> signal(net.size());
  signal[kConst0Id.value] = "const0";
  signal[kConst1Id.value] = "const1";
  for (const NodeId pi : net.pis()) {
    signal[pi.value] = net.pi_name(pi);
    model.inputs.push_back(net.pi_name(pi));
  }

  // Emit constants only if referenced.
  bool use0 = false;
  bool use1 = false;
  for (std::uint32_t i = 2; i < net.size(); ++i) {
    const Node& n = net.node(NodeId{i});
    for (const NodeId f : {n.fanin0, n.fanin1}) {
      if (f == kConst0Id) use0 = true;
      if (f == kConst1Id && n.fanin_count() >= 1) use1 = true;
    }
  }
  for (const Output& o : net.outputs()) {
    if (o.driver == kConst0Id) use0 = true;
    if (o.driver == kConst1Id) use1 = true;
  }
  if (use0) {
    model.tables.push_back(BlifTable{{}, "const0", SopCover::const_zero()});
  }
  if (use1) {
    model.tables.push_back(BlifTable{{}, "const1", SopCover::const_one()});
  }

  for (std::uint32_t i = 2; i < net.size(); ++i) {
    const NodeId id{i};
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) continue;
    signal[i] = "n" + std::to_string(i);
    BlifTable t;
    t.output = signal[i];
    switch (n.kind) {
      case NodeKind::kAnd:
        t.inputs = {signal[n.fanin0.value], signal[n.fanin1.value]};
        t.cover = SopCover::and_n(2);
        break;
      case NodeKind::kOr:
        t.inputs = {signal[n.fanin0.value], signal[n.fanin1.value]};
        t.cover = SopCover::or_n(2);
        break;
      case NodeKind::kInv:
        t.inputs = {signal[n.fanin0.value]};
        t.cover = SopCover::inverter();
        break;
      case NodeKind::kBuf:
        t.inputs = {signal[n.fanin0.value]};
        t.cover = SopCover::buffer();
        break;
      default:
        SOIDOM_ASSERT_MSG(false, "unexpected node kind");
    }
    model.tables.push_back(std::move(t));
  }

  // Outputs: emit a buffer table so the PO name is preserved even when the
  // driver is shared or is itself a PI/constant.
  for (const Output& o : net.outputs()) {
    model.outputs.push_back(o.name);
    BlifTable t;
    t.output = o.name;
    t.inputs = {signal[o.driver.value]};
    t.cover = SopCover::buffer();
    model.tables.push_back(std::move(t));
  }
  return write_blif(model);
}

}  // namespace soidom
