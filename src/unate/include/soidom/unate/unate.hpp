/// \file unate.hpp
/// Binate-to-unate network conversion by bubble pushing.
///
/// Domino logic is non-inverting, so the mapper's input must be a unate
/// (inverter-free) network; inversions are allowed only at primary inputs
/// and primary outputs (paper, section IV).  We implement the paper's
/// "simple bubble pushing algorithm": inverters are pushed toward the
/// primary inputs with DeMorgan's laws, duplicating logic wherever a signal
/// is needed in both phases.  Memoization guarantees each (node, phase)
/// pair is built at most once, so the result is at most double the input
/// logic — the bound cited by the paper.
#pragma once

#include <vector>

#include "soidom/network/network.hpp"

namespace soidom {

/// Result of unate conversion.
///
/// The unate network's primary inputs represent *literals* of the original
/// inputs: for original PI k, `pi_literals[k].pos` / `.neg` give the indices
/// (into `net.pis()`) of the positive and negative literal leaves, -1 when
/// that phase is never used.  Negative-literal leaves are named
/// "<name>.bar".  Outputs appear in the same order as in the source
/// network; `po_inverted[j]` is true when the unate network computes the
/// complement of source output j (the inversion is realized for free by
/// output phase assignment in a domino implementation).
struct UnateResult {
  Network net;

  struct Literals {
    int pos = -1;
    int neg = -1;
  };
  std::vector<Literals> pi_literals;  ///< indexed by source PI position
  std::vector<bool> po_inverted;      ///< indexed by source output position

  /// Gate-count growth factor vs. the source network (>= 1.0; <= 2.0).
  double duplication_ratio = 1.0;
};

/// How primary-output phases are chosen during conversion.
enum class PhaseAssignment : std::uint8_t {
  /// Every output is built in positive phase (inverter chains at the PO
  /// are still absorbed into the phase record).  This is the paper's
  /// "simple bubble pushing algorithm".
  kPositive,
  /// Greedy output phase assignment in the spirit of the paper's
  /// reference [22] (Puri, Bjorksten & Rosser, ICCAD'96): since a domino
  /// implementation realizes PO inversions for free, each output may be
  /// built in whichever phase shares more logic with what previous
  /// outputs already built.  Outputs are processed in descending cone
  /// size; for each, the new-gate count of both phases is measured
  /// against the shared memo and the cheaper phase is committed.
  kGreedyMinDuplication,
};

/// Convert `input` (any AND/OR/INV/BUF network) into a unate network.
UnateResult make_unate(const Network& input,
                       PhaseAssignment phases = PhaseAssignment::kPositive);

}  // namespace soidom
