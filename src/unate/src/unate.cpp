#include "soidom/unate/unate.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "soidom/base/contracts.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"
#include "soidom/network/builder.hpp"

namespace soidom {
namespace {

class UnateConverter {
 public:
  explicit UnateConverter(const Network& input) : input_(input) {
    result_.pi_literals.resize(input.pis().size());
  }

  UnateResult run(PhaseAssignment phases) {
    // Strip leading inverter/buffer chains into the output phase record:
    // the domino implementation realizes PO inversions for free via output
    // phase assignment, so pushing them into the logic would only
    // duplicate gates.
    struct PoInfo {
      NodeId driver;
      bool parity = false;
    };
    std::vector<PoInfo> infos;
    for (const Output& o : input_.outputs()) {
      PoInfo info{o.driver, false};
      while (input_.kind(info.driver) == NodeKind::kInv ||
             input_.kind(info.driver) == NodeKind::kBuf) {
        if (input_.kind(info.driver) == NodeKind::kInv) {
          info.parity = !info.parity;
        }
        info.driver = input_.fanin0(info.driver);
      }
      infos.push_back(info);
    }

    // Processing order: biggest cones first under greedy phase
    // assignment, so large shared structures set the memo that smaller
    // cones then reuse.
    std::vector<std::size_t> order(infos.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (phases == PhaseAssignment::kGreedyMinDuplication) {
      const auto sizes = cone_sizes();
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return sizes[infos[a].driver.value] >
                                sizes[infos[b].driver.value];
                       });
    }

    std::vector<std::pair<NodeId, bool>> built(infos.size());
    for (const std::size_t idx : order) {
      const PoInfo& info = infos[idx];
      bool negated = false;
      if (phases == PhaseAssignment::kGreedyMinDuplication) {
        const NodeKind kind = input_.kind(info.driver);
        if (kind == NodeKind::kAnd || kind == NodeKind::kOr) {
          std::unordered_set<std::uint64_t> visited;
          const int cost_pos = count_new(info.driver, false, visited);
          visited.clear();
          const int cost_neg = count_new(info.driver, true, visited);
          negated = cost_neg < cost_pos;
        }
      }
      const NodeId out = build(info.driver, negated);
      built[idx] = {out, negated ? !info.parity : info.parity};
    }
    for (std::size_t idx = 0; idx < infos.size(); ++idx) {
      builder_.add_output(built[idx].first, input_.outputs()[idx].name);
      result_.po_inverted.push_back(built[idx].second);
    }

    const auto in_stats = input_.stats();
    result_.net = std::move(builder_).build();
    const auto out_stats = result_.net.stats();
    result_.duplication_ratio =
        in_stats.num_gates() == 0
            ? 1.0
            : static_cast<double>(out_stats.num_gates()) /
                  static_cast<double>(in_stats.num_gates());
    return std::move(result_);
  }

 private:
  /// AND/OR nodes in each node's input cone (for PO ordering).
  std::vector<int> cone_sizes() const {
    std::vector<int> size(input_.size(), 0);
    for (std::uint32_t i = 2; i < input_.size(); ++i) {
      const Node& n = input_.node(NodeId{i});
      // Upper bound (shared cones double-counted); only used for ordering.
      switch (n.kind) {
        case NodeKind::kAnd:
        case NodeKind::kOr:
          size[i] = 1 + size[n.fanin0.value] + size[n.fanin1.value];
          break;
        case NodeKind::kInv:
        case NodeKind::kBuf:
          size[i] = size[n.fanin0.value];
          break;
        default:
          break;
      }
    }
    return size;
  }

  NodeId literal(NodeId pi, bool negated) {
    const int k = input_.pi_index(pi);
    SOIDOM_ASSERT(k >= 0);
    auto& lits = result_.pi_literals[static_cast<std::size_t>(k)];
    int& slot = negated ? lits.neg : lits.pos;
    if (slot < 0) {
      const std::string name =
          negated ? input_.pi_name(pi) + ".bar" : input_.pi_name(pi);
      const NodeId node = builder_.add_pi(name);
      slot = static_cast<int>(builder_.peek().pis().size()) - 1;
      literal_nodes_[key(pi, negated)] = node;
    }
    return literal_nodes_.at(key(pi, negated));
  }

  static std::uint64_t key(NodeId id, bool negated) {
    return (static_cast<std::uint64_t>(id.value) << 1) |
           static_cast<std::uint64_t>(negated);
  }

  /// New AND/OR nodes a build(id, negated) call would create given the
  /// current memo (an estimate: structural hashing may share more).
  int count_new(NodeId id, bool negated,
                std::unordered_set<std::uint64_t>& visited) const {
    const std::uint64_t k = key(id, negated);
    if (memo_.contains(k) || !visited.insert(k).second) return 0;
    const Node& n = input_.node(id);
    switch (n.kind) {
      case NodeKind::kBuf:
        return count_new(n.fanin0, negated, visited);
      case NodeKind::kInv:
        return count_new(n.fanin0, !negated, visited);
      case NodeKind::kAnd:
      case NodeKind::kOr:
        return 1 + count_new(n.fanin0, negated, visited) +
               count_new(n.fanin1, negated, visited);
      default:
        return 0;  // constants and PI literals are not gates
    }
  }

  /// Returns a node of the unate network computing `id` (or its complement
  /// when `negated`) over input literals.
  NodeId build(NodeId id, bool negated) {
    if (const auto it = memo_.find(key(id, negated)); it != memo_.end()) {
      return it->second;
    }
    guard_checkpoint();
    const Node& n = input_.node(id);
    NodeId out;
    switch (n.kind) {
      case NodeKind::kConst0:
        out = negated ? builder_.const1() : builder_.const0();
        break;
      case NodeKind::kConst1:
        out = negated ? builder_.const0() : builder_.const1();
        break;
      case NodeKind::kPi:
        out = literal(id, negated);
        break;
      case NodeKind::kBuf:
        out = build(n.fanin0, negated);
        break;
      case NodeKind::kInv:
        out = build(n.fanin0, !negated);
        break;
      case NodeKind::kAnd: {
        const NodeId a = build(n.fanin0, negated);
        const NodeId b = build(n.fanin1, negated);
        // DeMorgan: !(x & y) == !x | !y
        out = negated ? builder_.add_or(a, b) : builder_.add_and(a, b);
        guard_charge(Resource::kNetworkNodes);
        break;
      }
      case NodeKind::kOr: {
        const NodeId a = build(n.fanin0, negated);
        const NodeId b = build(n.fanin1, negated);
        out = negated ? builder_.add_and(a, b) : builder_.add_or(a, b);
        guard_charge(Resource::kNetworkNodes);
        break;
      }
    }
    memo_.emplace(key(id, negated), out);
    return out;
  }

  const Network& input_;
  NetworkBuilder builder_;
  UnateResult result_;
  std::unordered_map<std::uint64_t, NodeId> memo_;
  std::unordered_map<std::uint64_t, NodeId> literal_nodes_;
};

}  // namespace

UnateResult make_unate(const Network& input, PhaseAssignment phases) {
  StageScope stage(FlowStage::kUnate);
  SOIDOM_FAULT_PROBE(FlowStage::kUnate);
  return UnateConverter(input).run(phases);
}

}  // namespace soidom
