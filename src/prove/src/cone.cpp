#include "soidom/prove/cone.hpp"

#include "soidom/base/contracts.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {

std::size_t source_pi_space(const DominoNetlist& netlist) {
  int max_pi = -1;
  for (const InputLiteral& in : netlist.inputs()) {
    if (in.source_pi > max_pi) max_pi = in.source_pi;
  }
  return static_cast<std::size_t>(max_pi + 1);
}

BddManager::Ref pdn_conduction(
    BddManager& manager, const Pdn& pdn, PdnIndex index,
    const std::function<BddManager::Ref(std::uint32_t)>& leaf) {
  const PdnNode& n = pdn.node(index);
  switch (n.kind) {
    case PdnKind::kLeaf:
      return leaf(n.signal);
    case PdnKind::kSeries: {
      auto all = BddManager::kTrue;
      for (const PdnIndex c : n.children) {
        all = manager.apply_and(all, pdn_conduction(manager, pdn, c, leaf));
      }
      return all;
    }
    case PdnKind::kParallel: {
      auto any = BddManager::kFalse;
      for (const PdnIndex c : n.children) {
        any = manager.apply_or(any, pdn_conduction(manager, pdn, c, leaf));
      }
      return any;
    }
  }
  return BddManager::kFalse;
}

ConeFns::ConeFns(const DominoNetlist& netlist, BddManager& manager,
                 unsigned var_base)
    : netlist_(netlist), manager_(manager), var_base_(var_base) {
  SOIDOM_REQUIRE(
      manager.num_vars() >= var_base + source_pi_space(netlist),
      "ConeFns: manager must own one variable per source PI above var_base");
  memo_.assign(netlist.num_inputs() + netlist.gates().size(), kInvalidRef);
  touched_.assign(source_pi_space(netlist), false);
}

void ConeFns::force_pi(int source_pi, bool value) {
  SOIDOM_REQUIRE(source_pi >= 0 &&
                     static_cast<std::size_t>(source_pi) < touched_.size(),
                 "ConeFns::force_pi: source PI out of range");
  forced_[source_pi] = value;
}

BddManager::Ref ConeFns::literal_fn(const InputLiteral& literal) {
  SOIDOM_ASSERT(literal.source_pi >= 0 &&
                static_cast<std::size_t>(literal.source_pi) < touched_.size());
  const auto it = forced_.find(literal.source_pi);
  if (it != forced_.end()) {
    const bool value = literal.negated ? !it->second : it->second;
    return value ? BddManager::kTrue : BddManager::kFalse;
  }
  touched_[static_cast<std::size_t>(literal.source_pi)] = true;
  const auto v = var_base_ + static_cast<unsigned>(literal.source_pi);
  return literal.negated ? manager_.nvar(v) : manager_.var(v);
}

BddManager::Ref ConeFns::fn(std::uint32_t signal) {
  SOIDOM_ASSERT(signal < memo_.size());
  if (memo_[signal] != kInvalidRef) return memo_[signal];
  guard_checkpoint();
  BddManager::Ref value;
  if (netlist_.is_input_signal(signal)) {
    value = literal_fn(netlist_.inputs()[signal]);
  } else {
    // A domino gate's output inverter makes output high <=> the pulldown
    // conducts; a dual gate's NAND2 of the two dynamic nodes is fA OR fB.
    const DominoGate& gate = netlist_.gates()[netlist_.gate_of_signal(signal)];
    const auto leaf = [this](std::uint32_t s) { return fn(s); };
    value = gate.pdn.empty()
                ? BddManager::kFalse
                : pdn_conduction(manager_, gate.pdn, gate.pdn.root(), leaf);
    if (gate.dual()) {
      value = manager_.apply_or(
          value,
          pdn_conduction(manager_, gate.pdn2, gate.pdn2.root(), leaf));
    }
  }
  memo_[signal] = value;
  return value;
}

std::vector<int> ConeFns::support() const {
  std::vector<int> out;
  for (std::size_t pi = 0; pi < touched_.size(); ++pi) {
    if (touched_[pi]) out.push_back(static_cast<int>(pi));
  }
  return out;
}

}  // namespace soidom
