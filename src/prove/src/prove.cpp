/// \file prove.cpp
/// The per-rule exact refiners and the run_prove driver.
///
/// Every refiner follows one scheme: rebuild the flagged gate's fanin
/// cone as BDDs over the source primary inputs (prove/cone.hpp), restate
/// the analyzer's flagged condition as a Boolean reachability question in
/// that space, and decide it.  Soundness per rule (docs/PROVE.md has the
/// full arguments):
///
///  * csa.* — the conservative enumeration is re-run with an `admit`
///    callback that drops input assignments whose cone conjunction is
///    unsatisfiable.  Dropping only unreachable assignments keeps the
///    bound a superset of every simulator behavior, so a refined bound
///    below the threshold is a proof of absence.
///  * race.static-mix — precharge conduction is restated with PI literals
///    over current-cycle variables and stale drivers over previous-cycle
///    variables; UNSAT means no two consecutive input vectors open the
///    crowbar path.
///  * race.inversion-parity — a transient (both phases of the conflicted
///    PI high) conduction that the settled assignment does not reproduce;
///    refutation additionally frees every fanin-gate leaf so it does not
///    lean on the first-failure assumption.
///  * pbe-protection — the sequence-aware CHARGE/FIRE excitability
///    predicates (domino/seqaware.cpp) with each leaf replaced by its
///    cone function, so correlated fanin can no longer fake excitement.
///
/// Witness replayability: a confirmed witness is marked replayable only
/// when a single SoiSimulator::step from reset provably reproduces the
/// hazard (csa.droop-margin with a consistent first-cycle precharge
/// snapshot; race.static-mix through PI literals only).  The prediction
/// mirrors soisim's settle/observe semantics in closed form and
/// tests/test_prove.cpp replays every such witness as the
/// zero-false-confirm oracle.
#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "soidom/base/contracts.hpp"
#include "soidom/base/parallel.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/domino/postpass.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"
#include "soidom/prove/cone.hpp"
#include "soidom/prove/prove.hpp"

namespace soidom {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

/// Display names for source PIs: the non-negated literal's name when one
/// exists, else a negated literal's name with its ".bar" suffix stripped,
/// else "pi<k>".
std::vector<std::string> source_pi_names(const DominoNetlist& netlist) {
  std::vector<std::string> names(source_pi_space(netlist));
  std::vector<bool> exact(names.size(), false);
  for (const InputLiteral& lit : netlist.inputs()) {
    if (lit.source_pi < 0 ||
        static_cast<std::size_t>(lit.source_pi) >= names.size() ||
        lit.name.empty()) {
      continue;
    }
    auto& name = names[static_cast<std::size_t>(lit.source_pi)];
    if (!lit.negated) {
      name = lit.name;
      exact[static_cast<std::size_t>(lit.source_pi)] = true;
    } else if (!exact[static_cast<std::size_t>(lit.source_pi)] &&
               name.empty()) {
      name = lit.name;
      if (name.size() > 4 && name.ends_with(".bar")) {
        name.resize(name.size() - 4);
      }
    }
  }
  for (std::size_t k = 0; k < names.size(); ++k) {
    if (names[k].empty()) names[k] = format("pi%zu", k);
  }
  return names;
}

std::string bits_text(const std::vector<bool>& bits) {
  std::string out;
  out.reserve(bits.size());
  for (const bool b : bits) out += b ? '1' : '0';
  return out;
}

/// Mirror of the CSA state witness format ("in=<bits> pre=<bits>").
std::string csa_state_text(const std::vector<bool>& inputs,
                           const std::vector<bool>& precharge) {
  if (inputs.empty() && precharge.empty()) return "trivial";
  std::string out;
  if (!inputs.empty()) out += "in=" + bits_text(inputs);
  if (!precharge.empty()) {
    if (!out.empty()) out += ' ';
    out += "pre=" + bits_text(precharge);
  }
  return out;
}

/// "a=1 b=0" over the support PIs of a satisfying cube.
std::string assignment_text(const std::vector<bool>& cube,
                            const std::vector<int>& support,
                            const std::vector<std::string>& pi_names) {
  std::string out;
  for (const int pi : support) {
    if (!out.empty()) out += ' ';
    const bool v = static_cast<std::size_t>(pi) < cube.size() &&
                   cube[static_cast<std::size_t>(pi)];
    out += format("%s=%d", pi_names[static_cast<std::size_t>(pi)].c_str(),
                  v ? 1 : 0);
  }
  return out.empty() ? "any" : out;
}

/// Build a witness from a satisfying cube over variables [0, num_pis).
ProofWitness make_witness(const std::vector<bool>& cube,
                          const std::vector<int>& support,
                          const std::vector<std::string>& pi_names,
                          std::string state) {
  ProofWitness w;
  w.pi_values = cube;
  w.pi_values.resize(pi_names.size());
  for (const int pi : support) {
    w.inputs.emplace_back(pi_names[static_cast<std::size_t>(pi)],
                          w.pi_values[static_cast<std::size_t>(pi)]);
  }
  w.state = std::move(state);
  return w;
}

/// The pulldown / foot flag / discharge list a location's `pdn` field
/// selects.
struct PdnRef {
  const Pdn& pdn;
  bool footed;
  const std::vector<DischargePoint>& discharges;
};

PdnRef select_pdn(const DominoGate& gate, int which) {
  if (which == 2) return {gate.pdn2, gate.footed2, gate.discharges2};
  return {gate.pdn, gate.footed, gate.discharges};
}

bool pdn_grounded(const DominoGate& gate, int which, GroundingPolicy policy) {
  if (which != 2) return gate_bottom_grounded(gate, policy);
  switch (policy) {
    case GroundingPolicy::kAllGrounded: return true;
    case GroundingPolicy::kNoneGrounded: return false;
    case GroundingPolicy::kFootlessGrounded: return !gate.footed2;
  }
  return false;
}

ProofRecord make_record(const std::string& rule, const LintLocation& location,
                        ProofStatus status, std::string certificate) {
  ProofRecord r;
  r.rule = rule;
  r.location = location;
  r.status = status;
  r.certificate = std::move(certificate);
  return r;
}

// ---------------------------------------------------------------------------
// pbe-protection: exact excitability of a discharge point.
// ---------------------------------------------------------------------------

/// GateConditions (domino/seqaware.cpp) with every leaf replaced by its
/// fanin-cone function, so the CHARGE/FIRE predicates range over source
/// PI assignments instead of independent per-signal variables.
class ExactPdnConditions {
 public:
  ExactPdnConditions(const DominoNetlist& netlist, const Pdn& pdn,
                     ConeFns& cone)
      : netlist_(netlist), pdn_(pdn), cone_(cone) {
    conduct_.assign(pdn.pool_size(), BddManager::kFalse);
    conduct_lit_.assign(pdn.pool_size(), BddManager::kFalse);
    ctx_.assign(pdn.pool_size(), BddManager::kFalse);
    ext_.assign(pdn.pool_size(), BddManager::kFalse);
    build_conduct(pdn.root());
    ctx_[pdn.root()] = BddManager::kTrue;
    ext_[pdn.root()] = BddManager::kTrue;
    build_context(pdn.root());
  }

  /// Bottom-charge predicate: conduction from the dynamic node to the
  /// bottom through PI-literal leaves only (gate outputs are precharge
  /// low when the bottom can float).
  BddManager::Ref bottom_charge() const { return conduct_lit_[pdn_.root()]; }

  /// CHARGE: a conducting path from the dynamic node down to the
  /// junction.  FIRE: the junction pulled to the bottom with no dynamic-
  /// node path reaching it.
  std::pair<BddManager::Ref, BddManager::Ref> junction_charge_fire(
      const DischargePoint& point) const {
    const PdnNode& s = pdn_.node(point.series_node);
    SOIDOM_ASSERT(s.kind == PdnKind::kSeries &&
                  point.pos + 1 < s.children.size());
    BddManager& m = cone_.manager();
    auto conj = [&](std::size_t from, std::size_t to) {
      auto acc = BddManager::kTrue;
      for (std::size_t k = from; k < to; ++k) {
        acc = m.apply_and(acc, conduct_[s.children[k]]);
      }
      return acc;
    };
    const auto charge =
        m.apply_and(ctx_[point.series_node], conj(0, point.pos + 1));
    const auto below = m.apply_and(conj(point.pos + 1, s.children.size()),
                                   ext_[point.series_node]);
    const auto fire = m.apply_and(below, m.negate(charge));
    return {charge, fire};
  }

 private:
  void build_conduct(PdnIndex i) {
    const PdnNode& n = pdn_.node(i);
    BddManager& m = cone_.manager();
    switch (n.kind) {
      case PdnKind::kLeaf:
        conduct_[i] = cone_.fn(n.signal);
        conduct_lit_[i] = netlist_.is_input_signal(n.signal)
                              ? conduct_[i]
                              : BddManager::kFalse;
        break;
      case PdnKind::kSeries: {
        auto all = BddManager::kTrue;
        auto all_lit = BddManager::kTrue;
        for (const PdnIndex c : n.children) {
          build_conduct(c);
          all = m.apply_and(all, conduct_[c]);
          all_lit = m.apply_and(all_lit, conduct_lit_[c]);
        }
        conduct_[i] = all;
        conduct_lit_[i] = all_lit;
        break;
      }
      case PdnKind::kParallel: {
        auto any = BddManager::kFalse;
        auto any_lit = BddManager::kFalse;
        for (const PdnIndex c : n.children) {
          build_conduct(c);
          any = m.apply_or(any, conduct_[c]);
          any_lit = m.apply_or(any_lit, conduct_lit_[c]);
        }
        conduct_[i] = any;
        conduct_lit_[i] = any_lit;
        break;
      }
    }
  }

  void build_context(PdnIndex i) {
    const PdnNode& n = pdn_.node(i);
    BddManager& m = cone_.manager();
    if (n.kind == PdnKind::kLeaf) return;
    if (n.kind == PdnKind::kParallel) {
      for (const PdnIndex c : n.children) {
        ctx_[c] = ctx_[i];
        ext_[c] = ext_[i];
        build_context(c);
      }
      return;
    }
    auto prefix = ctx_[i];
    for (std::size_t k = 0; k < n.children.size(); ++k) {
      ctx_[n.children[k]] = prefix;
      prefix = m.apply_and(prefix, conduct_[n.children[k]]);
    }
    auto suffix = ext_[i];
    for (std::size_t k = n.children.size(); k-- > 0;) {
      ext_[n.children[k]] = suffix;
      suffix = m.apply_and(suffix, conduct_[n.children[k]]);
    }
    for (const PdnIndex c : n.children) build_context(c);
  }

  const DominoNetlist& netlist_;
  const Pdn& pdn_;
  ConeFns& cone_;
  std::vector<BddManager::Ref> conduct_;
  std::vector<BddManager::Ref> conduct_lit_;
  std::vector<BddManager::Ref> ctx_;
  std::vector<BddManager::Ref> ext_;
};

/// Recover the DischargePoint a pbe-protection finding labels ("bottom" /
/// canonical "jN").  nullopt when the label does not resolve.
std::optional<DischargePoint> point_of_label(const Pdn& pdn,
                                             const std::string& label) {
  if (label == "bottom") return DischargePoint{};
  if (label.size() < 2 || label[0] != 'j') return std::nullopt;
  int index = 0;
  if (!parse_int_strict(label.substr(1), &index) || index < 0) {
    return std::nullopt;
  }
  const std::vector<DischargePoint> junctions = canonical_junctions(pdn);
  if (static_cast<std::size_t>(index) >= junctions.size()) {
    return std::nullopt;
  }
  return junctions[static_cast<std::size_t>(index)];
}

ProofRecord refine_pbe_protection(const DominoNetlist& netlist,
                                  const std::string& rule,
                                  const LintLocation& location,
                                  const LintOptions& lint_options,
                                  const ProveOptions& options,
                                  const std::vector<std::string>& pi_names) {
  const DominoGate& gate =
      netlist.gates()[static_cast<std::size_t>(location.gate)];
  const PdnRef ref = select_pdn(gate, location.pdn);
  const std::optional<DischargePoint> point =
      point_of_label(ref.pdn, location.detail);
  if (!point.has_value()) {
    return make_record(rule, location, ProofStatus::kUnknown,
                       format("point label '%s' does not resolve to a "
                              "junction of this pulldown",
                              location.detail.c_str()));
  }
  // Cross-check against the re-derived requirement so a stale finding
  // (netlist edited between lint and prove) cannot be mis-refined.
  const PbeAnalysis analysis = analyze_pbe(
      ref.pdn, pdn_grounded(gate, location.pdn, lint_options.grounding),
      lint_options.pending_model);
  if (std::find(analysis.required.begin(), analysis.required.end(), *point) ==
      analysis.required.end()) {
    return make_record(rule, location, ProofStatus::kUnknown,
                       format("point %s is not PBE-required under the "
                              "current lint options; finding left as-is",
                              location.detail.c_str()));
  }

  BddManager manager(static_cast<unsigned>(source_pi_space(netlist)),
                     options.node_budget);
  ConeFns cone(netlist, manager);
  const ExactPdnConditions cond(netlist, ref.pdn, cone);

  if (point->at_bottom()) {
    const auto charge = cond.bottom_charge();
    if (!ref.footed || charge == BddManager::kFalse) {
      return make_record(
          rule, location, ProofStatus::kRefuted,
          ref.footed
              ? "no source-PI assignment charges the stack bottom through "
                "PI literals during precharge (cone-exact UNSAT)"
              : "footless stack: the bottom is clock-grounded during "
                "precharge and can never float high");
    }
    const auto cube = manager.any_sat(charge);
    SOIDOM_ASSERT(cube.has_value());
    const std::vector<int> support = cone.support();
    ProofWitness w = make_witness(*cube, support, pi_names,
                                  "bottom charged high during precharge");
    ProofRecord r = make_record(
        rule, location, ProofStatus::kConfirmed,
        format("stack bottom charges high during precharge under %s "
               "(body charging is multi-cycle, not single-step replayable)",
               assignment_text(*cube, support, pi_names).c_str()));
    r.witness = std::move(w);
    return r;
  }

  const auto [charge, fire] = cond.junction_charge_fire(*point);
  if (charge == BddManager::kFalse) {
    return make_record(rule, location, ProofStatus::kRefuted,
                       "no source-PI assignment conducts from the dynamic "
                       "node down to the junction (CHARGE cone-exact UNSAT)");
  }
  if (fire == BddManager::kFalse) {
    return make_record(
        rule, location, ProofStatus::kRefuted,
        "every assignment pulling the junction to the bottom also opens "
        "the top path (FIRE cone-exact UNSAT: any discharge is a "
        "legitimate evaluation)");
  }
  const auto charge_cube = manager.any_sat(charge);
  const auto fire_cube = manager.any_sat(fire);
  SOIDOM_ASSERT(charge_cube.has_value() && fire_cube.has_value());
  const std::vector<int> support = cone.support();
  ProofRecord r = make_record(
      rule, location, ProofStatus::kConfirmed,
      format("junction chargeable under %s, fireable under %s (charge and "
             "fire are different cycles; not single-step replayable)",
             assignment_text(*charge_cube, support, pi_names).c_str(),
             assignment_text(*fire_cube, support, pi_names).c_str()));
  r.witness = make_witness(*fire_cube, support, pi_names,
                           format("junction %s fires with the top path off",
                                  location.detail.c_str()));
  return r;
}

// ---------------------------------------------------------------------------
// csa.*: reachability-restricted re-enumeration with replay prediction.
// ---------------------------------------------------------------------------

/// Flood from the dynamic node over `edge_on` devices (mirror of the CSA
/// enumeration's flood, used for the closed-form replay prediction).
bool csa_flood(const CsaPdnModel& model, const std::vector<bool>& edge_on,
               bool clamp_bottom, std::vector<bool>& member) {
  member.assign(static_cast<std::size_t>(model.num_nodes), false);
  member[kCsaDynamicNode] = true;
  std::vector<std::uint16_t> stack{kCsaDynamicNode};
  bool reached_bottom = false;
  while (!stack.empty()) {
    const std::uint16_t node = stack.back();
    stack.pop_back();
    for (std::size_t t = 0; t < model.devices.size(); ++t) {
      if (!edge_on[t]) continue;
      const CsaDevice& d = model.devices[t];
      std::uint16_t other;
      if (d.above == node) {
        other = d.below;
      } else if (d.below == node) {
        other = d.above;
      } else {
        continue;
      }
      if (other == kCsaBottomNode) {
        reached_bottom = true;
        if (clamp_bottom) continue;
      }
      if (member[other]) continue;
      member[other] = true;
      stack.push_back(other);
    }
  }
  return reached_bottom;
}

/// Closed-form prediction of what SoiSimulator observes on a single step
/// from reset under a PI cube consistent with the enumerated state (see
/// file comment).  Returns the predicted DroopProbe observation, or
/// nullopt when the state's precharge snapshot is not what the first
/// cycle produces (the state is reachable, just not in one step).
std::optional<double> predict_replay(const CsaPdnModel& model,
                                     const std::vector<double>& caps,
                                     const std::vector<std::uint32_t>& signals,
                                     const std::vector<std::uint16_t>& free_nodes,
                                     const DominoNetlist& netlist,
                                     const std::vector<bool>& inputs,
                                     const std::vector<bool>& precharge) {
  const auto num_nodes = static_cast<std::size_t>(model.num_nodes);
  const auto bit_of = [&](std::uint32_t sig) {
    const auto it = std::lower_bound(signals.begin(), signals.end(), sig);
    SOIDOM_ASSERT(it != signals.end() && *it == sig);
    return inputs[static_cast<std::size_t>(it - signals.begin())];
  };
  // Precharge conduction: only PI-literal devices whose literal is true
  // under the cube conduct (gate outputs are precharge low from reset).
  std::vector<bool> lit_on(model.devices.size(), false);
  for (std::size_t t = 0; t < model.devices.size(); ++t) {
    lit_on[t] = netlist.is_input_signal(model.devices[t].signal) &&
                bit_of(model.devices[t].signal);
  }
  std::vector<bool> component;
  const bool touches_bottom =
      csa_flood(model, lit_on, /*clamp_bottom=*/false, component);
  std::vector<bool> pre_high(num_nodes, false);
  if (!model.footed && touches_bottom) {
    // Footless gates are clock-grounded during precharge: the component
    // drains, only the (driven) dynamic node ends high.
  } else {
    // The dynamic node's component settles high behind the precharge
    // device; floaters keep their (reset-low) charge.
    pre_high = component;
  }
  pre_high[kCsaDynamicNode] = true;
  for (const std::uint16_t n : model.discharged) pre_high[n] = false;
  for (std::size_t i = 0; i < free_nodes.size(); ++i) {
    if (pre_high[free_nodes[i]] != precharge[i]) return std::nullopt;
  }
  // Evaluate-phase observation: the dynamic node's component over the
  // actually-ON devices (first cycle: zero parasitic firings, bodies are
  // still cold), clamped at the bottom terminal.
  std::vector<bool> on(model.devices.size(), false);
  for (std::size_t t = 0; t < model.devices.size(); ++t) {
    on[t] = bit_of(model.devices[t].signal);
  }
  std::vector<bool> member;
  csa_flood(model, on, /*clamp_bottom=*/true, member);
  double shared_low = 0.0;
  double total = 0.0;
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (!member[v]) continue;
    total += caps[v];
    if (!pre_high[v]) shared_low += caps[v];
  }
  if (total <= 0.0) return std::nullopt;
  const double vdd_share = shared_low / total;
  return vdd_share;  // multiplied by vdd by the caller
}

ProofRecord refine_csa(const DominoNetlist& netlist, const std::string& rule,
                       const LintLocation& location,
                       const CsaOptions& csa_options,
                       const SizingResult* sizing, const ProveOptions& options,
                       const std::vector<std::string>& pi_names) {
  const auto g = static_cast<std::size_t>(location.gate);
  const DominoGate& gate = netlist.gates()[g];
  const PdnRef ref = select_pdn(gate, location.pdn);
  const CsaPdnModel model =
      build_csa_model(ref.pdn, ref.discharges, ref.footed);
  std::vector<double> widths(model.devices.size(), 1.0);
  if (sizing != nullptr) {
    const std::size_t offset =
        location.pdn == 2 ? gate.pdn.leaf_signals().size() : 0;
    const std::vector<double>& all = sizing->gates[g].pulldown_widths;
    SOIDOM_ASSERT(offset + widths.size() <= all.size());
    std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(offset),
                widths.size(), widths.begin());
  }
  const std::vector<double> caps =
      csa_node_caps(model, widths, csa_options.charge);
  const std::vector<std::uint32_t> signals = csa_state_signals(model);
  const std::vector<std::uint16_t> free_nodes = csa_free_nodes(model);

  BddManager manager(static_cast<unsigned>(source_pi_space(netlist)),
                     options.node_budget);
  ConeFns cone(netlist, manager);
  std::vector<BddManager::Ref> fns(signals.size());
  for (std::size_t i = 0; i < signals.size(); ++i) {
    fns[i] = cone.fn(signals[i]);
  }
  const auto reach_of = [&](const std::vector<bool>& inputs) {
    auto acc = BddManager::kTrue;
    for (std::size_t i = 0; i < fns.size(); ++i) {
      acc = manager.apply_and(acc,
                              inputs[i] ? fns[i] : manager.negate(fns[i]));
    }
    return acc;
  };

  // Tracked across the enumeration: the refined worst state, the first
  // keeper-flip state, and the best single-step-replayable state.
  struct Tracked {
    bool have = false;
    std::vector<bool> inputs;
    std::vector<bool> precharge;
    double droop = 0.0;
    double predicted = 0.0;
  };
  Tracked worst;
  Tracked flip_state;
  Tracked replay;
  const double vdd = csa_options.charge.vdd;

  CsaStateCallbacks callbacks;
  callbacks.admit = [&](const std::vector<bool>& inputs) {
    return reach_of(inputs) != BddManager::kFalse;
  };
  callbacks.visit = [&](const std::vector<bool>& inputs,
                        const std::vector<bool>& precharge, double droop,
                        double /*share_cap*/, int /*firings*/, bool flip) {
    if (droop > worst.droop || !worst.have) {
      if (droop > worst.droop) {
        worst = Tracked{true, inputs, precharge, droop, 0.0};
      } else if (!worst.have) {
        worst = Tracked{true, inputs, precharge, droop, 0.0};
      }
    }
    if (flip && !flip_state.have) {
      flip_state = Tracked{true, inputs, precharge, droop, 0.0};
    }
    const std::optional<double> share = predict_replay(
        model, caps, signals, free_nodes, netlist, inputs, precharge);
    if (share.has_value()) {
      const double predicted = vdd * *share;
      if (predicted > replay.predicted) {
        replay = Tracked{true, inputs, precharge, droop, predicted};
      }
    }
  };
  const CsaPulldownBound bound =
      bound_pulldown(model, caps, csa_options, callbacks);

  if (bound.truncated) {
    return make_record(
        rule, location, ProofStatus::kUnknown,
        format("state space exceeds max_states=%ld; the enumeration "
               "fell back to the pointwise-max bound, which the exact "
               "tier cannot refine",
               csa_options.max_states));
  }

  const auto witness_of = [&](const Tracked& t, bool replayable,
                              double predicted) {
    const auto cube = manager.any_sat(reach_of(t.inputs));
    SOIDOM_ASSERT(cube.has_value());
    ProofWitness w = make_witness(*cube, cone.support(), pi_names,
                                  csa_state_text(t.inputs, t.precharge));
    w.replayable = replayable;
    w.predicted_droop = predicted;
    return w;
  };

  if (rule == "csa.pbe-discharge") {
    if (!bound.keeper_overpowered) {
      return make_record(
          rule, location, ProofStatus::kRefuted,
          format("no reachable input assignment fires enough parasitic "
                 "devices against keeper strength %d with ground reachable "
                 "(cone-exact re-enumeration; residual droop bound %.3f V)",
                 csa_options.keeper_strength, bound.droop));
    }
    SOIDOM_ASSERT(flip_state.have);
    ProofRecord r = make_record(
        rule, location, ProofStatus::kConfirmed,
        format("keeper-overpowering state %s is reachable under %s (body "
               "charging needs multiple cycles; not single-step replayable)",
               csa_state_text(flip_state.inputs, flip_state.precharge).c_str(),
               assignment_text(*manager.any_sat(reach_of(flip_state.inputs)),
                               cone.support(), pi_names)
                   .c_str()));
    r.witness = witness_of(flip_state, /*replayable=*/false, 0.0);
    return r;
  }

  SOIDOM_ASSERT(rule == "csa.droop-margin");
  const double limit = csa_options.margin * vdd;
  if (bound.droop < limit) {
    return make_record(
        rule, location, ProofStatus::kRefuted,
        format("exact cone reachability caps the droop bound at %.3f V, "
               "below the %.3f V margin; the conservative bound rested on "
               "unreachable input assignments",
               bound.droop, limit));
  }
  if (replay.have) {
    ProofRecord r = make_record(
        rule, location, ProofStatus::kConfirmed,
        format("reachable state %s droops %.3f V (>= margin %.3f V); a "
               "single-cycle replay is predicted to observe %.3f V",
               csa_state_text(replay.inputs, replay.precharge).c_str(),
               replay.droop, limit, replay.predicted));
    r.witness = witness_of(replay, /*replayable=*/true, replay.predicted);
    return r;
  }
  SOIDOM_ASSERT(worst.have);
  ProofRecord r = make_record(
      rule, location, ProofStatus::kConfirmed,
      format("reachable state %s droops %.3f V (>= margin %.3f V); its "
             "precharge snapshot needs more than one cycle to set up",
             csa_state_text(worst.inputs, worst.precharge).c_str(),
             worst.droop, limit));
  r.witness = witness_of(worst, /*replayable=*/false, 0.0);
  return r;
}

// ---------------------------------------------------------------------------
// race.inversion-parity: transient-vs-settled conduction.
// ---------------------------------------------------------------------------

/// Re-derivation of the parity dataflow's conflicted source PIs: per
/// node, the set of (source PI, phase) literals required by EVERY
/// conducting assignment; a series union holding both phases of one PI
/// records a conflict.
struct ConflictWalker {
  const Pdn& pdn;
  const DominoNetlist& netlist;
  std::vector<int> conflicts;

  using Literal = std::pair<int, bool>;

  std::vector<Literal> walk(PdnIndex i) {
    const PdnNode& n = pdn.node(i);
    switch (n.kind) {
      case PdnKind::kLeaf: {
        if (!netlist.is_input_signal(n.signal)) return {};
        const InputLiteral& lit = netlist.inputs()[n.signal];
        return {Literal{lit.source_pi, lit.negated}};
      }
      case PdnKind::kSeries: {
        std::vector<Literal> required;
        for (const PdnIndex c : n.children) {
          std::vector<Literal> child = walk(c);
          std::vector<Literal> merged;
          merged.reserve(required.size() + child.size());
          std::set_union(required.begin(), required.end(), child.begin(),
                         child.end(), std::back_inserter(merged));
          required = std::move(merged);
        }
        for (std::size_t k = 0; k + 1 < required.size(); ++k) {
          if (required[k].first == required[k + 1].first &&
              !required[k].second && required[k + 1].second) {
            const int pi = required[k].first;
            const auto it =
                std::lower_bound(conflicts.begin(), conflicts.end(), pi);
            if (it == conflicts.end() || *it != pi) conflicts.insert(it, pi);
          }
        }
        return required;
      }
      case PdnKind::kParallel: {
        std::vector<Literal> required = walk(n.children[0]);
        for (std::size_t k = 1; k < n.children.size(); ++k) {
          if (required.empty()) break;
          std::vector<Literal> child = walk(n.children[k]);
          std::vector<Literal> merged;
          std::set_intersection(required.begin(), required.end(),
                                child.begin(), child.end(),
                                std::back_inserter(merged));
          required = std::move(merged);
        }
        return required;
      }
    }
    return {};
  }
};

ProofRecord refine_inversion_parity(
    const DominoNetlist& netlist, const std::string& rule,
    const LintLocation& location, const ProveOptions& options,
    const std::vector<std::string>& pi_names) {
  const DominoGate& gate =
      netlist.gates()[static_cast<std::size_t>(location.gate)];
  const PdnRef ref = select_pdn(gate, location.pdn);
  ConflictWalker walker{ref.pdn, netlist, {}};
  walker.walk(ref.pdn.root());
  if (walker.conflicts.empty()) {
    return make_record(rule, location, ProofStatus::kUnknown,
                       "re-derived parity dataflow finds no conflicted PI; "
                       "finding left as-is");
  }

  // Distinct fanin-gate leaves get free variables above the PI space for
  // the refutation superset (no first-failure assumption there).
  std::vector<std::uint32_t> gate_leaves;
  for (const std::uint32_t sig : ref.pdn.leaf_signals()) {
    if (!netlist.is_input_signal(sig)) gate_leaves.push_back(sig);
  }
  std::sort(gate_leaves.begin(), gate_leaves.end());
  gate_leaves.erase(std::unique(gate_leaves.begin(), gate_leaves.end()),
                    gate_leaves.end());
  const auto num_pis = static_cast<unsigned>(source_pi_space(netlist));
  BddManager manager(num_pis + static_cast<unsigned>(gate_leaves.size()),
                     options.node_budget);
  ConeFns cone(netlist, manager);
  const auto free_var_of = [&](std::uint32_t sig) {
    const auto it =
        std::lower_bound(gate_leaves.begin(), gate_leaves.end(), sig);
    SOIDOM_ASSERT(it != gate_leaves.end() && *it == sig);
    return manager.var(
        num_pis + static_cast<unsigned>(it - gate_leaves.begin()));
  };

  int refuted = 0;
  std::string pending;
  for (const int p : walker.conflicts) {
    guard_checkpoint();
    // Transient: both phases of p momentarily high (p's literal lines
    // switching at different times); everything else settled, fanin
    // gates at their settled cone values (which see p's settled value,
    // the free variable p itself).
    const auto leaf_glitch = [&](std::uint32_t sig) {
      if (!netlist.is_input_signal(sig)) return cone.fn(sig);
      const InputLiteral& lit = netlist.inputs()[sig];
      if (lit.source_pi == p) return BddManager::kTrue;
      return cone.literal_fn(lit);
    };
    const auto leaf_settled = [&](std::uint32_t sig) {
      if (!netlist.is_input_signal(sig)) return cone.fn(sig);
      return cone.literal_fn(netlist.inputs()[sig]);
    };
    const auto glitch =
        pdn_conduction(manager, ref.pdn, ref.pdn.root(), leaf_glitch);
    const auto settled =
        pdn_conduction(manager, ref.pdn, ref.pdn.root(), leaf_settled);
    const auto hazard = manager.apply_and(glitch, manager.negate(settled));
    if (hazard != BddManager::kFalse) {
      const auto cube = manager.any_sat(hazard);
      SOIDOM_ASSERT(cube.has_value());
      std::vector<int> support = cone.support();
      if (std::find(support.begin(), support.end(), p) == support.end()) {
        support.insert(
            std::lower_bound(support.begin(), support.end(), p), p);
      }
      const std::string& pname = pi_names[static_cast<std::size_t>(p)];
      ProofRecord r = make_record(
          rule, location, ProofStatus::kConfirmed,
          format("while '%s' switches (both phases transiently high) the "
                 "pulldown conducts under %s although the settled "
                 "assignment does not: a real mid-evaluate glitch "
                 "discharge (not single-step replayable; soisim does not "
                 "model intra-evaluate PI transitions)",
                 pname.c_str(),
                 assignment_text(*cube, support, pi_names).c_str()));
      r.witness = make_witness(
          *cube, support, pi_names,
          format("transient conduction with both phases of '%s' high",
                 pname.c_str()));
      return r;
    }
    // Refutation superset: fanin-gate leaves freed entirely, so the
    // verdict does not rest on upstream gates evaluating correctly.
    const auto leaf_glitch_free = [&](std::uint32_t sig) {
      if (!netlist.is_input_signal(sig)) return free_var_of(sig);
      const InputLiteral& lit = netlist.inputs()[sig];
      if (lit.source_pi == p) return BddManager::kTrue;
      return cone.literal_fn(lit);
    };
    const auto leaf_settled_free = [&](std::uint32_t sig) {
      if (!netlist.is_input_signal(sig)) return free_var_of(sig);
      return cone.literal_fn(netlist.inputs()[sig]);
    };
    const auto glitch_free =
        pdn_conduction(manager, ref.pdn, ref.pdn.root(), leaf_glitch_free);
    const auto settled_free =
        pdn_conduction(manager, ref.pdn, ref.pdn.root(), leaf_settled_free);
    if (manager.apply_and(glitch_free, manager.negate(settled_free)) ==
        BddManager::kFalse) {
      ++refuted;
    } else {
      if (!pending.empty()) pending += ", ";
      pending += format("'%s'", pi_names[static_cast<std::size_t>(p)].c_str());
    }
  }
  if (refuted == static_cast<int>(walker.conflicts.size())) {
    return make_record(
        rule, location, ProofStatus::kRefuted,
        format("for every conflicted PI (%d), any transient conduction "
               "implies settled conduction even with fanin-gate values "
               "free: the glitch can only cause a discharge the settled "
               "assignment causes anyway",
               refuted));
  }
  return make_record(
      rule, location, ProofStatus::kUnknown,
      format("transient conduction for %s depends on fanin-gate values "
             "unreachable under settled evaluation; not decidable in the "
             "single-cycle model",
             pending.c_str()));
}

// ---------------------------------------------------------------------------
// race.static-mix: two-cycle precharge-conduction reachability.
// ---------------------------------------------------------------------------

ProofRecord refine_static_mix(const DominoNetlist& netlist,
                              const std::string& rule,
                              const LintLocation& location,
                              const RaceReport& race_report,
                              const ProveOptions& options,
                              const std::vector<std::string>& pi_names) {
  const DominoGate& gate =
      netlist.gates()[static_cast<std::size_t>(location.gate)];
  const PdnRef ref = select_pdn(gate, location.pdn);
  const auto num_pis = static_cast<unsigned>(source_pi_space(netlist));
  BddManager manager(2 * num_pis, options.node_budget);
  ConeFns cone_cur(netlist, manager, /*var_base=*/0);
  ConeFns cone_prev(netlist, manager, /*var_base=*/num_pis);
  const auto stale = [&](std::uint32_t sig) {
    const std::uint32_t fg = netlist.gate_of_signal(sig);
    return race_report.gates[fg].stale_high;
  };
  // PI literals hold their (settled, phase-consistent) current-cycle
  // values during precharge; a stale driver holds its PREVIOUS evaluate
  // output; a properly precharged driver is low.
  const auto leaf = [&](std::uint32_t sig) {
    if (netlist.is_input_signal(sig)) {
      return cone_cur.literal_fn(netlist.inputs()[sig]);
    }
    return stale(sig) ? cone_prev.fn(sig) : BddManager::kFalse;
  };
  const auto conduct =
      pdn_conduction(manager, ref.pdn, ref.pdn.root(), leaf);
  if (conduct == BddManager::kFalse) {
    return make_record(
        rule, location, ProofStatus::kRefuted,
        "no current-cycle PI assignment combined with any previous-cycle "
        "stale-driver value conducts during precharge (phase-consistent "
        "literals make the crowbar path unsatisfiable)");
  }
  const auto leaf_pi_only = [&](std::uint32_t sig) {
    if (netlist.is_input_signal(sig)) {
      return cone_cur.literal_fn(netlist.inputs()[sig]);
    }
    return BddManager::kFalse;
  };
  const auto conduct_pi =
      pdn_conduction(manager, ref.pdn, ref.pdn.root(), leaf_pi_only);
  if (conduct_pi != BddManager::kFalse) {
    const auto cube = manager.any_sat(conduct_pi);
    SOIDOM_ASSERT(cube.has_value());
    const std::vector<int> support = cone_cur.support();
    ProofRecord r = make_record(
        rule, location, ProofStatus::kConfirmed,
        format("the crowbar path closes through PI literals alone under "
               "%s: every precharge of this footless pulldown fights the "
               "precharge device (single-step replayable)",
               assignment_text(*cube, support, pi_names).c_str()));
    r.witness = make_witness(*cube, support, pi_names,
                             "precharge conduction through PI literals");
    r.witness->replayable = true;
    return r;
  }
  return make_record(
      rule, location, ProofStatus::kUnknown,
      "precharge conduction requires a stale-high driver; whether the "
      "driver actually overruns its precharge window is a conservative "
      "timing bound the Boolean model cannot sharpen");
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

enum class Family : std::uint8_t { kLint, kCsa, kRace };

struct Target {
  Family family = Family::kLint;
  std::size_t finding = 0;  ///< index into the family's findings vector
  std::string rule;
  LintLocation location;
};

bool provable_csa_rule(const std::string& rule) {
  return rule == "csa.pbe-discharge" || rule == "csa.droop-margin";
}

bool provable_race_rule(const std::string& rule) {
  return rule == "race.inversion-parity" || rule == "race.static-mix";
}

}  // namespace

std::string ProveReport::summary() const {
  if (targets() == 0) return "clean";
  return format("%d confirmed, %d refuted, %d unknown", confirmed, refuted,
                unknown);
}

std::string ProveReport::to_json() const {
  std::string out = format(
      R"({"node_budget":%u,"targets":%d,"confirmed":%d,"refuted":%d,)"
      R"("unknown":%d,"budget_hits":%d,"records":[)",
      node_budget, targets(), confirmed, refuted, unknown, budget_hits);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ProofRecord& r = records[i];
    if (i) out += ',';
    out += format(
        R"({"rule":"%s","location":"%s","status":"%s","certificate":"%s")",
        json_escape(r.rule).c_str(),
        json_escape(r.location.qualified_name()).c_str(),
        proof_status_name(r.status), json_escape(r.certificate).c_str());
    if (r.witness.has_value()) {
      const ProofWitness& w = *r.witness;
      out += R"(,"witness":{"inputs":[)";
      for (std::size_t k = 0; k < w.inputs.size(); ++k) {
        if (k) out += ',';
        out += format(R"({"name":"%s","value":%s})",
                      json_escape(w.inputs[k].first).c_str(),
                      w.inputs[k].second ? "true" : "false");
      }
      std::string pi_bits;
      for (const bool b : w.pi_values) pi_bits += b ? '1' : '0';
      out += format(
          R"(],"pi_values":"%s","state":"%s","replayable":%s,)"
          R"("predicted_droop":%.9g})",
          pi_bits.c_str(), json_escape(w.state).c_str(),
          w.replayable ? "true" : "false", w.predicted_droop);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

ProveReport run_prove(const DominoNetlist& netlist, LintReport* lint,
                      CsaResult* csa, RaceResult* race,
                      const LintOptions& lint_options,
                      const CsaOptions& csa_options,
                      const ProveOptions& options) {
  SOIDOM_REQUIRE(options.node_budget >= 2,
                 "run_prove: node_budget must be at least 2");
  SOIDOM_REQUIRE(options.num_threads >= 0,
                 "run_prove: num_threads must be non-negative");
  StageScope stage_scope(FlowStage::kProve);
  SOIDOM_FAULT_PROBE(FlowStage::kProve);
  guard_checkpoint();

  std::vector<Target> targets;
  const auto collect = [&](Family family, const LintReport& report,
                           const auto& want) {
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
      const Finding& f = report.findings[i];
      if (f.waived || !want(f)) continue;
      targets.push_back(Target{family, i, f.rule, f.location});
    }
  };
  if (options.refine_lint && lint != nullptr) {
    collect(Family::kLint, *lint, [](const Finding& f) {
      return f.rule == "pbe-protection" && f.severity == LintSeverity::kError;
    });
  }
  if (options.refine_csa && csa != nullptr) {
    collect(Family::kCsa, csa->lint,
            [](const Finding& f) { return provable_csa_rule(f.rule); });
  }
  if (options.refine_race && race != nullptr) {
    collect(Family::kRace, race->lint,
            [](const Finding& f) { return provable_race_rule(f.rule); });
  }

  ProveReport report;
  report.node_budget = options.node_budget;
  if (targets.empty()) return report;

  std::optional<SizingResult> sizing;
  if (csa_options.use_sizing &&
      std::any_of(targets.begin(), targets.end(), [](const Target& t) {
        return t.family == Family::kCsa;
      })) {
    sizing = size_netlist(netlist, csa_options.sizing);
  }
  const std::vector<std::string> pi_names = source_pi_names(netlist);

  struct Slot {
    ProofRecord record;
    bool budget_hit = false;
  };
  std::vector<Slot> slots(targets.size());
  GuardContext* guard = current_guard();
  ThreadPool pool(static_cast<unsigned>(options.num_threads));
  pool.run(targets.size(), [&](std::size_t i, unsigned worker) {
    // Worker 0 is the calling thread and already has the guard installed.
    std::optional<GuardScope> scope;
    if (worker != 0 && guard != nullptr) scope.emplace(*guard);
    guard_checkpoint();
    const Target& t = targets[i];
    Slot& slot = slots[i];
    try {
      if (t.family == Family::kLint) {
        slot.record = refine_pbe_protection(netlist, t.rule, t.location,
                                            lint_options, options, pi_names);
      } else if (t.family == Family::kCsa) {
        slot.record = refine_csa(netlist, t.rule, t.location, csa_options,
                                 sizing ? &*sizing : nullptr, options,
                                 pi_names);
      } else if (t.rule == "race.inversion-parity") {
        slot.record = refine_inversion_parity(netlist, t.rule, t.location,
                                              options, pi_names);
      } else {
        slot.record = refine_static_mix(netlist, t.rule, t.location,
                                        race->report, options, pi_names);
      }
    } catch (const GuardError& e) {
      // Only a cone blow-up is an in-band unknown; cancellation, deadline,
      // and resource-budget trips keep propagating (the pool rethrows the
      // lowest-index failure after the batch drains).
      if (e.code() != ErrorCode::kBddNodeLimit) throw;
      slot.record = make_record(
          t.rule, t.location, ProofStatus::kUnknown,
          format("proof node budget (%u) exceeded: %s; conservative "
                 "verdict kept",
                 options.node_budget, e.what()));
      slot.budget_hit = true;
    }
  });

  // Deterministic application: target order is (lint, csa, race) x
  // finding order, independent of the worker schedule.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const Target& t = targets[i];
    Slot& slot = slots[i];
    switch (slot.record.status) {
      case ProofStatus::kConfirmed: ++report.confirmed; break;
      case ProofStatus::kRefuted: ++report.refuted; break;
      default: ++report.unknown; break;
    }
    if (slot.budget_hit) ++report.budget_hits;
    LintReport& owner = t.family == Family::kLint ? *lint
                        : t.family == Family::kCsa ? csa->lint
                                                   : race->lint;
    Finding& f = owner.findings[t.finding];
    f.proof = slot.record.status;
    f.original_severity = f.severity;
    f.proof_note = slot.record.certificate;
    if (slot.record.status == ProofStatus::kRefuted) {
      f.severity = LintSeverity::kInfo;
    }
    report.records.push_back(std::move(slot.record));
  }

  if (options.fail_on_budget && report.budget_hits > 0) {
    throw GuardError(
        ErrorCode::kProofTimeout, FlowStage::kProve,
        format("%d of %d proof obligations exceeded the node budget (%u)",
               report.budget_hits, report.targets(), options.node_budget));
  }
  return report;
}

}  // namespace soidom
