/// \file prove.hpp
/// Exact proof tier for the analyzer stack: on-demand BDD refinement of
/// conservative csa / race / lint findings with replayable witnesses.
///
/// The static analyzers (src/csa, src/race, lint's `pbe-protection`) are
/// deliberately conservative dataflows: they enumerate gate states over
/// *independent* input bits, so correlated fanin (`x` and `x.bar` of one
/// primary input, reconvergent cones) produces flagged states no input
/// vector can reach — false positives that force needless remapping,
/// exactly the over-margining the paper's PBE solutions try to avoid.
///
/// run_prove() refines each such finding by reconstructing the flagged
/// gate's transitive fanin cone as a constrained Boolean problem (cone
/// logic over the source primary inputs + the domino monotonicity /
/// precharge-phase constraints of the rule, docs/PROVE.md) and deciding
/// reachability of the offending state with a per-cone BDD:
///
///   * `confirmed` — the state is reachable; the record carries a witness
///     (concrete PI assignment + precharge state, cofactor-extracted).
///     Witnesses whose hazard a single soisim step from reset reproduces
///     are marked replayable; tests/test_prove.cpp replays them through
///     the Droop/Race probes as a zero-false-confirm oracle.
///   * `refuted` — no input vector reaches the state; the finding is
///     downgraded to an info note waiver-style (original severity kept in
///     Finding::original_severity) with the proof certificate logged.
///   * `unknown` — the per-cone node budget was hit (structured
///     ErrorCode::kProofTimeout); the conservative verdict stands.
///
/// Refinements are sound by construction: every constraint removes only
/// assignments the cone logic cannot produce, so the refined state set is
/// still a superset of anything reachable (docs/PROVE.md carries the
/// per-rule arguments, including the first-failure assumption that
/// upstream gates themselves evaluate correctly).
///
/// Layering: prove sits above csa/race/lint/bdd/domino and below
/// core/flow (run_flow drives it as FlowStage::kProve when
/// FlowOptions::prove is set).  Deterministic: reports and refined
/// findings are byte-identical for any num_threads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "soidom/csa/csa.hpp"
#include "soidom/domino/netlist.hpp"
#include "soidom/lint/lint.hpp"
#include "soidom/race/race.hpp"

namespace soidom {

/// Prove-stage knobs.
struct ProveOptions {
  /// BDD node budget per cone problem.  A cone that exceeds it yields a
  /// ProofStatus::kUnknown record tagged kProofTimeout instead of a
  /// verdict; the conservative finding is untouched.
  std::uint32_t node_budget = 1u << 20;
  /// Rule families to refine.
  bool refine_csa = true;   ///< csa.pbe-discharge, csa.droop-margin
  bool refine_race = true;  ///< race.inversion-parity, race.static-mix
  bool refine_lint = true;  ///< pbe-protection (unprotected points)
  /// Worker threads for the per-finding fan-out; 0 = auto, 1 =
  /// sequential.  Results are byte-identical across thread counts.
  int num_threads = 1;
  /// Strict mode: any budget hit throws GuardError(kProofTimeout) after
  /// the run completes (all other targets still get their verdicts).
  /// Default off: budget hits only yield kUnknown records.
  bool fail_on_budget = false;
};

/// Witness of a confirmed finding.
struct ProofWitness {
  /// Source-PI assignment reaching the flagged state, as (name, value)
  /// pairs over the cone's support in ascending source-PI order.  PIs
  /// outside the cone are "don't care" (replay uses 0).
  std::vector<std::pair<std::string, bool>> inputs;
  /// Full source-PI vector for SoiSimulator::step (index = source PI).
  std::vector<bool> pi_values;
  /// Rule-specific state description (csa: the "in=... pre=..." state
  /// being confirmed; race: the conduction condition).
  std::string state;
  /// A single soisim step from reset reproduces the hazard: for
  /// csa.droop-margin the observed droop equals `predicted_droop` (> 0);
  /// for race.static-mix the gate records a precharge fight.  Witnesses
  /// of multi-cycle hazards (body-charge build-up, intra-evaluate
  /// transients) are real but not single-step replayable.
  bool replayable = false;
  /// Predicted DroopProbe observation of the replay (csa.droop-margin
  /// witnesses only; 0 otherwise).
  double predicted_droop = 0.0;
};

/// Proof outcome for one finding.
struct ProofRecord {
  std::string rule;
  LintLocation location;  ///< same location as the refined finding
  ProofStatus status = ProofStatus::kUnknown;
  /// Human-readable certificate: for refuted findings the exhausted
  /// condition, for confirmed the witness summary, for unknown the
  /// budget diagnostics.  Also mirrored into Finding::proof_note.
  std::string certificate;
  std::optional<ProofWitness> witness;  ///< status == kConfirmed only
};

/// Outcome of a prove run.
struct ProveReport {
  std::vector<ProofRecord> records;  ///< lint, then csa, then race order
  int confirmed = 0;
  int refuted = 0;
  int unknown = 0;
  /// Cone problems that hit ProveOptions::node_budget (each also counts
  /// toward `unknown`).
  int budget_hits = 0;
  // Echoed parameters.
  std::uint32_t node_budget = 0;

  int targets() const { return confirmed + refuted + unknown; }
  /// "prove: clean" / "3 confirmed, 2 refuted, 1 unknown".
  std::string summary() const;
  /// {"node_budget":...,"confirmed":...,"records":[...]}.
  std::string to_json() const;
};

/// Refine the provable findings of the given reports in place: every
/// targeted finding gains Finding::proof / original_severity /
/// proof_note, and refuted findings are downgraded to LintSeverity::kInfo
/// (so downstream fail-on gates skip them, like waivers).  Null report
/// pointers skip the corresponding family.  `lint_options` supplies the
/// PBE re-derivation knobs (grounding, pending model) and must match the
/// lint run that produced `lint`; `csa_options` likewise for `csa`.
///
/// Checkpoints the installed guard under FlowStage::kProve.
/// Deterministic: byte-identical reports for any num_threads.
ProveReport run_prove(const DominoNetlist& netlist, LintReport* lint,
                      CsaResult* csa, RaceResult* race,
                      const LintOptions& lint_options,
                      const CsaOptions& csa_options,
                      const ProveOptions& options = {});

}  // namespace soidom
