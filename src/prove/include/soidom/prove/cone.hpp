/// \file cone.hpp
/// Fanin-cone Boolean functions of domino netlist signals, as BDDs over
/// the ORIGINAL source primary inputs.
///
/// The static analyzers treat every distinct gate-input signal as an
/// independent Boolean — that independence is exactly what the proof tier
/// removes.  ConeFns rebuilds each signal's true function: an input
/// literal becomes the (possibly negated) variable of its source PI, and
/// a gate output becomes the OR of its pulldown conduction functions
/// (dynamic-node discharge through the inverter; for dual gates the
/// static NAND2 realizes fA OR fB).  Two correlated signals — `x` and
/// `x.bar`, or two reconvergent cones — therefore constrain each other,
/// and a conjunction over cone functions is satisfiable iff some source
/// PI assignment actually produces the assignment in question.
///
/// `var_base` offsets the variable space, so one manager can hold two
/// cycles at once (the race.static-mix refinement evaluates stale drivers
/// over previous-cycle variables at var_base = num_source_pis()).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "soidom/bdd/bdd.hpp"
#include "soidom/domino/netlist.hpp"

namespace soidom {

/// Size of the source-PI variable space: max InputLiteral::source_pi + 1.
/// NOT DominoNetlist::num_source_pis(), which counts *distinct* PIs — the
/// index space can be sparse (a PI whose literals were all optimized away
/// keeps its index), and both the simulators and the proof tier index
/// vectors by source_pi directly.
std::size_t source_pi_space(const DominoNetlist& netlist);

/// Conduction predicate of the subtree rooted at `index`: leaves map
/// through `leaf(signal)`, series nodes AND, parallel nodes OR.
BddManager::Ref pdn_conduction(
    BddManager& manager, const Pdn& pdn, PdnIndex index,
    const std::function<BddManager::Ref(std::uint32_t)>& leaf);

/// Memoizing builder of per-signal cone functions (see file comment).
/// The manager must own at least var_base + netlist.num_source_pis()
/// variables; it bounds the work through its node limit (a blow-up throws
/// GuardError(kBddNodeLimit), which the prove stage converts into a
/// kProofTimeout-tagged unknown verdict).
class ConeFns {
 public:
  ConeFns(const DominoNetlist& netlist, BddManager& manager,
          unsigned var_base = 0);

  /// Pin source PI `source_pi` to `value`: literal_fn() of its phases
  /// returns a constant instead of a variable.  Must be called before the
  /// first fn()/literal_fn() touching the PI (memos are not invalidated).
  void force_pi(int source_pi, bool value);

  /// The cone function of `signal` (input literal or gate output) over
  /// variables var_base + source PI.  Memoized; recursion terminates
  /// because gate fanins reference strictly earlier signals.
  BddManager::Ref fn(std::uint32_t signal);

  /// The function of one input literal: the source PI's variable in the
  /// literal's phase (or the forced constant).
  BddManager::Ref literal_fn(const InputLiteral& literal);

  /// Source PIs touched so far, ascending.
  std::vector<int> support() const;

  BddManager& manager() { return manager_; }

 private:
  const DominoNetlist& netlist_;
  BddManager& manager_;
  unsigned var_base_;
  std::unordered_map<int, bool> forced_;
  /// Per-signal memo; kInvalidRef = not built yet.
  static constexpr BddManager::Ref kInvalidRef = 0xffffffffu;
  std::vector<BddManager::Ref> memo_;
  std::vector<bool> touched_;  ///< per source PI
};

}  // namespace soidom
