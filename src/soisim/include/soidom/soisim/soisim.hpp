/// \file soisim.hpp
/// Cycle-based switch-level simulation of domino netlists with a
/// partially-depleted-SOI floating-body model.
///
/// This is the reproduction's stand-in for physical SOI hardware (see
/// DESIGN.md section 3): it executes the exact failure scenario the paper
/// walks through in section III-B — an off transistor high in a stack whose
/// source and drain stay high for several cycles accumulates body charge;
/// when its source node is then pulled low, the lateral parasitic bipolar
/// device conducts and can erroneously discharge the dynamic node.
///
/// Model summary (cycle granularity, two phases per cycle):
///  * PRECHARGE: the dynamic node is driven high, the gate output low.
///    Inputs from other domino gates are low; primary-input literals hold
///    their current values, so footed gates can charge internal nodes
///    through on-transistors (no path to ground: the foot is off).  Every
///    clock-driven pMOS discharge transistor pulls its junction low.
///  * EVALUATE: the foot conducts; nodes connected to ground through on
///    transistors go low, nodes connected to the (still-high) dynamic node
///    go high, all others float and keep their charge.  The dynamic node
///    discharges iff a conducting path to ground exists.
///  * BODY STATE: an off nMOS whose source and drain terminals end the
///    cycle high gains one unit of body charge; a transistor whose gate is
///    on or whose source ends low resets to zero (capacitive coupling /
///    body-source leakage, per the paper).
///  * PBE: during evaluate, an OFF transistor with saturated body charge
///    whose below-node falls from high to low while its above-node is high
///    starts conducting parasitically; the injection iterates to a fixed
///    point (one firing can trigger another).  Every firing is recorded,
///    and any resulting wrong gate evaluation is reported.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "soidom/domino/netlist.hpp"

namespace soidom {

struct SoiSimConfig {
  /// Cycles an off transistor's terminals must stay high before its body
  /// saturates (paper: "a sufficiently large period of time").
  int body_charge_threshold = 3;
  /// When false, the parasitic device never conducts: an idealized bulk
  /// process.  Useful for differential tests.
  bool enable_pbe = true;
  /// The paper's solution 1: "the keeper pmos device can be sized up to
  /// provide some resistance to the PBE".  A parasitic-only discharge
  /// path flips the dynamic node only when at least this many parasitic
  /// devices fire in the gate; 1 models a minimum keeper (any firing
  /// wins), larger values model upsized keepers.  Legitimate (gate-input)
  /// discharges always win regardless.
  int keeper_strength = 1;
};

/// Per-gate electrical inputs for the opt-in charge-sharing droop
/// observation (enable_droop).  Capacitances are indexed by the gate's
/// internal electrical-node numbering: node 0 = dynamic node, node 1 =
/// pulldown bottom, nodes 2+ = series junctions in pulldown-tree walk
/// order — exactly the numbering soidom/csa builds with build_csa_model,
/// so the static analyzer's capacitance vectors can be fed in verbatim.
struct DroopProbe {
  std::vector<double> caps;   ///< per node of the gate's first pulldown
  std::vector<double> caps2;  ///< second pulldown of a dual gate; else empty
  double vdd = 1.0;           ///< supply voltage
  double q_pbe = 0.0;         ///< charge one firing parasitic device injects
};

/// Per-gate timing bounds for the opt-in race/monotonicity observation
/// (enable_race).  The simulator is cycle-based, so timing is layered on
/// as an observation: the probe carries the worst-case evaluate delay and
/// precharge-completion bound of the gate (soidom/timing's GateTiming
/// delay_max / pre_max, so the soidom/race conservativeness oracle can
/// feed its own model in verbatim).
struct RaceProbe {
  double delay_max = 0.0;  ///< worst-case evaluate delay of this gate
  double pre_max = 0.0;    ///< worst-case precharge completion time
};

/// Clock windows for the race observation, in RaceProbe units.  A window
/// of 0 means unconstrained and disables the checks that need it.
struct RaceClockSpec {
  double t_eval = 0.0;  ///< evaluate-phase duration
  double t_pre = 0.0;   ///< precharge-phase duration
  double skew = 0.0;    ///< worst-case skew between communicating stages
};

/// One parasitic-bipolar firing.
struct PbeEvent {
  std::uint32_t gate = 0;        ///< gate index in the netlist
  std::uint32_t transistor = 0;  ///< transistor index within the gate
  int cycle = 0;
  /// True when the firing flipped the gate's evaluation result.
  bool corrupted_gate = false;
};

/// Result of one clock cycle.
struct CycleResult {
  std::vector<bool> outputs;        ///< sampled PO values at end of evaluate
  std::vector<bool> expected;       ///< ideal (PBE-free) PO values
  std::vector<PbeEvent> events;     ///< PBE firings this cycle
  int corrupted_gates = 0;          ///< gates that evaluated wrongly

  bool correct() const { return outputs == expected; }
};

/// Switch-level simulator.  Construct once per netlist, then step() with a
/// source-primary-input vector per clock cycle.  State (node charge, body
/// charge) persists across cycles — the PBE is a multi-cycle phenomenon.
class SoiSimulator {
 public:
  SoiSimulator(const DominoNetlist& netlist, const SoiSimConfig& config = {});

  /// Run one precharge+evaluate cycle.  `source_pi_values[k]` is the value
  /// of original primary input k (literal phases applied internally).
  CycleResult step(const std::vector<bool>& source_pi_values);

  /// Clear all node and body state.
  void reset();

  int cycle() const { return cycle_; }
  /// All PBE firings since construction / reset().
  const std::vector<PbeEvent>& history() const { return history_; }

  /// Max body charge currently held by any transistor of `gate`.
  int max_body_charge(std::uint32_t gate) const;

  // --- charge-sharing droop observation ------------------------------------
  /// Start recording, per gate and cycle, the dynamic-node voltage droop
  /// implied by the boolean cycle model: charge redistribution from the
  /// (still-high) dynamic node into connected precharge-low internal nodes
  /// plus parasitic-bipolar charge injection.  Cycles where the gate
  /// legitimately discharges observe 0; a parasitic flip observes the full
  /// vdd.  One probe per gate; probe.caps must match the gate's node count.
  /// The running per-gate maximum is what the soidom/csa conservativeness
  /// oracle compares its static bound against.
  void enable_droop(std::vector<DroopProbe> probes);
  /// Largest droop observed for `gate` since enable_droop() / reset().
  double max_droop(std::uint32_t gate) const;

  // --- race / monotonicity observation --------------------------------------
  /// Start recording, per gate and cycle, (a) the evaluate handoff margin
  /// implied by accumulating RaceProbe::delay_max along the actually-high
  /// inputs (t_eval - skew - observed arrival; the running minimum is kept),
  /// (b) non-monotone evaluate falls — cycles where the previous output was
  /// high and the precharge bound overruns t_pre, so the stale high
  /// survives into evaluate and falls mid-phase — and (c) precharge
  /// crowbar fights — cycles where a footless pulldown conducts through
  /// high primary-input literals while the precharge device is on.  One
  /// probe per gate.  The soidom/race conservativeness oracle compares
  /// these observations against the static analyzer's flags.
  void enable_race(std::vector<RaceProbe> probes, const RaceClockSpec& clock);
  /// Smallest evaluate handoff margin observed for `gate` since
  /// enable_race() / reset(); +infinity when the gate never discharged
  /// (or t_eval is unconstrained).
  double min_handoff_margin(std::uint32_t gate) const;
  /// Non-monotone evaluate falls observed for `gate` since enable_race().
  int nonmonotone_falls(std::uint32_t gate) const;
  /// Precharge crowbar fights observed for `gate` since enable_race().
  int precharge_fights(std::uint32_t gate) const;

  // --- waveform tracing ----------------------------------------------------
  /// Start recording one sample per cycle: primary inputs, every gate
  /// output, per-gate max body charge, and a PBE event pulse.
  void enable_trace(std::vector<std::string> pi_names);
  /// Serialize the recorded samples as a Value Change Dump (IEEE 1364
  /// $var/$dumpvars subset; one timestep per clock cycle).  Requires
  /// enable_trace() to have been called before stepping.
  std::string trace_vcd() const;

 private:
  struct Transistor {
    std::uint32_t signal = 0;  ///< netlist signal driving the gate terminal
    std::uint16_t above = 0;   ///< node index toward the dynamic node
    std::uint16_t below = 0;   ///< node index toward ground
    int body = 0;              ///< accumulated body charge (cycles)
    bool pbe_on = false;       ///< parasitic conduction this evaluate
  };

  struct GateModel {
    bool footed = false;
    /// node 0 = dynamic node, node 1 = pulldown bottom terminal.
    int num_nodes = 2;
    std::vector<Transistor> transistors;
    std::vector<std::uint16_t> discharged_nodes;  ///< have a p-discharge
    /// Charge state per node (true = high).  Persisted across cycles.
    std::vector<bool> node_high;
    bool output = false;  ///< gate output (after the inverter)
  };

  void build_models(const DominoNetlist& netlist);
  GateModel build_model(const Pdn& pdn,
                        const std::vector<DischargePoint>& discharges,
                        bool footed) const;
  bool literal_value(std::uint32_t signal,
                     const std::vector<bool>& source_pi_values) const;
  /// Flood-fill node values for one pulldown given per-transistor
  /// conduction.  Returns whether the dynamic node is (still) high.
  bool settle(GateModel& gate, const std::vector<bool>& conducting,
              bool ground_connected) const;
  /// One precharge+evaluate pass over one pulldown model; returns true if
  /// the dynamic node discharged.  `tr_offset` offsets transistor indices
  /// in reported PBE events (pdn2 devices follow pdn's).
  bool run_pulldown(GateModel& gate, const std::vector<bool>& actual,
                    const std::vector<bool>& source_pi_values,
                    std::uint32_t gate_index, std::uint32_t tr_offset,
                    CycleResult& result);
  /// Fold one evaluate phase's droop into max_droop_[gate_index] (no-op
  /// unless enable_droop() was called).  `second` selects caps vs caps2.
  void observe_droop(const GateModel& gate,
                     const std::vector<bool>& precharge_high,
                     const std::vector<bool>& conducting,
                     bool legit_dynamic_high, bool dynamic_high,
                     std::uint32_t gate_index, bool second);
  /// Fold one cycle's race observations for gate `gate_index` into the
  /// race counters (no-op unless enable_race() was called).  Runs after
  /// the gate's output for this cycle is in `actual`; `prev_output` is
  /// the output the previous cycle left behind.
  void observe_race(std::uint32_t gate_index, const DominoGate& spec,
                    bool prev_output, const std::vector<bool>& actual,
                    const std::vector<bool>& source_pi_values);

  struct TraceSample {
    std::vector<bool> pi_values;
    std::vector<bool> gate_outputs;
    std::vector<int> body_charge;
    bool pbe_fired = false;
  };

  const DominoNetlist& netlist_;
  SoiSimConfig config_;
  std::vector<GateModel> gates_;
  /// Second pulldown models for dual (complex) gates; null otherwise.
  std::vector<std::unique_ptr<GateModel>> seconds_;
  int cycle_ = 0;
  std::vector<PbeEvent> history_;
  std::vector<DroopProbe> droop_probes_;  ///< empty unless enable_droop()
  std::vector<double> max_droop_;         ///< per gate, since reset
  std::vector<RaceProbe> race_probes_;    ///< empty unless enable_race()
  RaceClockSpec race_clock_;
  std::vector<double> race_margin_;   ///< per gate min handoff margin
  std::vector<int> race_nonmono_;     ///< per gate non-monotone falls
  std::vector<int> race_fights_;      ///< per gate precharge fights
  std::vector<double> race_arrival_;  ///< per-signal scratch, one cycle
  bool tracing_ = false;
  std::vector<std::string> trace_pi_names_;
  std::vector<TraceSample> trace_;
};

}  // namespace soidom
