#include "soidom/soisim/soisim.hpp"

#include <algorithm>
#include <limits>

#include "soidom/base/contracts.hpp"

namespace soidom {
namespace {

/// Recursively wires a PDN subtree between electrical nodes `above` and
/// `below`, creating junction nodes for series chains and recording the
/// node id of every junction so discharge points can be attached.
struct ModelBuilder {
  const Pdn& pdn;
  int& num_nodes;
  std::vector<std::pair<std::uint64_t, std::uint16_t>>& junction_nodes;
  std::vector<std::uint32_t>& leaf_signal;
  std::vector<std::pair<std::uint16_t, std::uint16_t>>& leaf_terminals;

  void wire(PdnIndex i, std::uint16_t above, std::uint16_t below) {
    const PdnNode& n = pdn.node(i);
    switch (n.kind) {
      case PdnKind::kLeaf:
        leaf_signal.push_back(n.signal);
        leaf_terminals.emplace_back(above, below);
        break;
      case PdnKind::kParallel:
        for (const PdnIndex c : n.children) wire(c, above, below);
        break;
      case PdnKind::kSeries: {
        std::uint16_t upper = above;
        for (std::size_t k = 0; k + 1 < n.children.size(); ++k) {
          const auto junction = static_cast<std::uint16_t>(num_nodes++);
          junction_nodes.emplace_back(
              (static_cast<std::uint64_t>(i) << 32) | k, junction);
          wire(n.children[k], upper, junction);
          upper = junction;
        }
        wire(n.children.back(), upper, below);
        break;
      }
    }
  }
};

constexpr std::uint16_t kDynamicNode = 0;
constexpr std::uint16_t kBottomNode = 1;

}  // namespace

SoiSimulator::SoiSimulator(const DominoNetlist& netlist,
                           const SoiSimConfig& config)
    : netlist_(netlist), config_(config) {
  build_models(netlist);
  reset();
}

SoiSimulator::GateModel SoiSimulator::build_model(
    const Pdn& pdn, const std::vector<DischargePoint>& discharges,
    bool footed) const {
  GateModel model;
  model.footed = footed;
  std::vector<std::pair<std::uint64_t, std::uint16_t>> junctions;
  std::vector<std::uint32_t> signals;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> terminals;
  ModelBuilder builder{pdn, model.num_nodes, junctions, signals, terminals};
  builder.wire(pdn.root(), kDynamicNode, kBottomNode);
  for (std::size_t t = 0; t < signals.size(); ++t) {
    Transistor tr;
    tr.signal = signals[t];
    tr.above = terminals[t].first;
    tr.below = terminals[t].second;
    model.transistors.push_back(tr);
  }
  for (const DischargePoint& p : discharges) {
    if (p.at_bottom()) {
      model.discharged_nodes.push_back(kBottomNode);
      continue;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p.series_node) << 32) | p.pos;
    const auto it =
        std::find_if(junctions.begin(), junctions.end(),
                     [&](const auto& j) { return j.first == key; });
    SOIDOM_ASSERT_MSG(it != junctions.end(),
                      "discharge point refers to unknown junction");
    model.discharged_nodes.push_back(it->second);
  }
  return model;
}

void SoiSimulator::build_models(const DominoNetlist& netlist) {
  gates_.reserve(netlist.gates().size());
  seconds_.resize(netlist.gates().size());
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    const DominoGate& gate = netlist.gates()[g];
    gates_.push_back(build_model(gate.pdn, gate.discharges, gate.footed));
    if (gate.dual()) {
      seconds_[g] = std::make_unique<GateModel>(
          build_model(gate.pdn2, gate.discharges2, gate.footed2));
    }
  }
}

void SoiSimulator::reset() {
  cycle_ = 0;
  history_.clear();
  trace_.clear();
  max_droop_.assign(gates_.size(), 0.0);
  race_margin_.assign(gates_.size(),
                      std::numeric_limits<double>::infinity());
  race_nonmono_.assign(gates_.size(), 0);
  race_fights_.assign(gates_.size(), 0);
  auto reset_model = [](GateModel& g) {
    g.node_high.assign(static_cast<std::size_t>(g.num_nodes), false);
    g.node_high[kDynamicNode] = true;
    g.output = false;
    for (Transistor& t : g.transistors) {
      t.body = 0;
      t.pbe_on = false;
    }
  };
  for (GateModel& g : gates_) reset_model(g);
  for (auto& second : seconds_) {
    if (second) reset_model(*second);
  }
}

bool SoiSimulator::literal_value(
    std::uint32_t signal, const std::vector<bool>& source_pi_values) const {
  const InputLiteral& in = netlist_.inputs()[signal];
  SOIDOM_ASSERT(in.source_pi >= 0 &&
                static_cast<std::size_t>(in.source_pi) <
                    source_pi_values.size());
  const bool v = source_pi_values[static_cast<std::size_t>(in.source_pi)];
  return in.negated ? !v : v;
}

bool SoiSimulator::settle(GateModel& gate, const std::vector<bool>& conducting,
                          bool ground_connected) const {
  // Components of the conduction graph; then: grounded component -> low,
  // component holding the dynamic node -> high (unless grounded),
  // everything else floats (keeps its previous charge).
  const auto n = static_cast<std::size_t>(gate.num_nodes);
  SOIDOM_ASSERT(n >= 2);  // dynamic + bottom always exist
  std::vector<int> comp(n, -1);
  int num_comps = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (comp[seed] >= 0) continue;
    const int c = num_comps++;
    std::vector<std::uint16_t> stack{static_cast<std::uint16_t>(seed)};
    comp[seed] = c;
    while (!stack.empty()) {
      const std::uint16_t node = stack.back();
      stack.pop_back();
      for (std::size_t t = 0; t < gate.transistors.size(); ++t) {
        if (!conducting[t]) continue;
        const Transistor& tr = gate.transistors[t];
        std::uint16_t other;
        if (tr.above == node) {
          other = tr.below;
        } else if (tr.below == node) {
          other = tr.above;
        } else {
          continue;
        }
        if (comp[other] < 0) {
          comp[other] = c;
          stack.push_back(other);
        }
      }
    }
  }

  const int ground_comp = ground_connected ? comp[kBottomNode] : -1;
  const int dynamic_comp = comp[kDynamicNode];
  const bool dynamic_high = dynamic_comp != ground_comp;
  for (std::size_t v = 0; v < n; ++v) {
    if (comp[v] == ground_comp) {
      gate.node_high[v] = false;
    } else if (comp[v] == dynamic_comp && dynamic_high) {
      gate.node_high[v] = true;
    }
    // else: floating, keep previous charge.
  }
  return dynamic_high;
}

bool SoiSimulator::run_pulldown(GateModel& gate,
                                const std::vector<bool>& actual,
                                const std::vector<bool>& source_pi_values,
                                std::uint32_t gate_index,
                                std::uint32_t tr_offset, CycleResult& result) {
  const std::size_t num_tr = gate.transistors.size();

  // ---- PRECHARGE -----------------------------------------------------------
  // Domino outputs are low; footed gates see primary-input literals.
  std::vector<bool> conducting(num_tr, false);
  for (std::size_t t = 0; t < num_tr; ++t) {
    const Transistor& tr = gate.transistors[t];
    conducting[t] = netlist_.is_input_signal(tr.signal) &&
                    literal_value(tr.signal, source_pi_values);
    gate.transistors[t].pbe_on = false;
  }
  gate.node_high[kDynamicNode] = true;
  // Footless bottoms sit directly on ground; footed feet are off.
  if (!gate.footed) gate.node_high[kBottomNode] = false;
  settle(gate, conducting, /*ground_connected=*/!gate.footed);
  gate.node_high[kDynamicNode] = true;  // the precharge device is strong
  // Clock-driven discharge transistors pull their junctions low.
  for (const std::uint16_t node : gate.discharged_nodes) {
    gate.node_high[node] = false;
  }
  const std::vector<bool> precharge_high = gate.node_high;

  // ---- EVALUATE ------------------------------------------------------------
  std::vector<bool> input_on(num_tr, false);
  for (std::size_t t = 0; t < num_tr; ++t) {
    input_on[t] = actual[gate.transistors[t].signal];
  }
  bool dynamic_high = true;
  bool legit_dynamic_high = true;  // before any parasitic conduction
  bool first_settle = true;
  for (bool changed = true; changed;) {
    for (std::size_t t = 0; t < num_tr; ++t) {
      conducting[t] = input_on[t] || gate.transistors[t].pbe_on;
    }
    dynamic_high = settle(gate, conducting, /*ground_connected=*/true);
    if (first_settle) {
      legit_dynamic_high = dynamic_high;  // pbe_on is all-false here
      first_settle = false;
    }
    changed = false;
    if (!config_.enable_pbe) break;
    for (std::size_t t = 0; t < num_tr; ++t) {
      Transistor& tr = gate.transistors[t];
      if (input_on[t] || tr.pbe_on) continue;
      if (tr.body < config_.body_charge_threshold) continue;
      const bool below_fell =
          precharge_high[tr.below] && !gate.node_high[tr.below];
      if (below_fell && gate.node_high[tr.above]) {
        tr.pbe_on = true;
        changed = true;
        history_.push_back({gate_index,
                            tr_offset + static_cast<std::uint32_t>(t), cycle_,
                            false});
        result.events.push_back(history_.back());
      }
    }
  }

  // Keeper contention (paper's solution 1): a discharge that exists only
  // because of parasitic conduction needs enough firing devices to
  // overpower an upsized keeper; otherwise the dynamic node is held.
  if (!dynamic_high && legit_dynamic_high) {
    int firing = 0;
    for (const Transistor& tr : gate.transistors) {
      if (tr.pbe_on) ++firing;
    }
    if (firing < config_.keeper_strength) {
      dynamic_high = true;
      gate.node_high[kDynamicNode] = true;
    }
  }

  if (!droop_probes_.empty()) {
    observe_droop(gate, precharge_high, conducting, legit_dynamic_high,
                  dynamic_high, gate_index, /*second=*/tr_offset != 0);
  }

  // ---- BODY STATE ------------------------------------------------------
  for (std::size_t t = 0; t < num_tr; ++t) {
    Transistor& tr = gate.transistors[t];
    if (input_on[t]) {
      tr.body = 0;  // gate switching couples the body low
    } else if (!gate.node_high[tr.below]) {
      tr.body = 0;  // body-source junction drains
    } else if (gate.node_high[tr.above] && gate.node_high[tr.below]) {
      tr.body = std::min(tr.body + 1, config_.body_charge_threshold);
    }
  }
  return !dynamic_high;
}

CycleResult SoiSimulator::step(const std::vector<bool>& source_pi_values) {
  SOIDOM_REQUIRE(source_pi_values.size() >= netlist_.num_source_pis(),
                 "SoiSimulator::step: too few primary-input values");
  CycleResult result;
  ++cycle_;

  // Ideal (PBE-free) gate outputs, for expectation and corruption checks.
  std::vector<bool> ideal(netlist_.num_inputs() + netlist_.gates().size());
  for (std::size_t k = 0; k < netlist_.num_inputs(); ++k) {
    ideal[k] = literal_value(static_cast<std::uint32_t>(k), source_pi_values);
  }

  // Actual signal values as gates evaluate this cycle.
  std::vector<bool> actual = ideal;

  if (!race_probes_.empty()) {
    // Per-signal observed arrivals: inputs settle at the evaluate edge.
    race_arrival_.assign(netlist_.num_inputs() + gates_.size(), 0.0);
  }

  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    GateModel& gate = gates_[gi];
    const DominoGate& spec = netlist_.gates()[gi];
    const bool prev_output = gate.output;

    bool conducted =
        run_pulldown(gate, actual, source_pi_values,
                     static_cast<std::uint32_t>(gi), 0, result);
    if (seconds_[gi]) {
      const auto offset =
          static_cast<std::uint32_t>(gate.transistors.size());
      const bool second =
          run_pulldown(*seconds_[gi], actual, source_pi_values,
                       static_cast<std::uint32_t>(gi), offset, result);
      conducted = conducted || second;  // static NAND of the dynamic nodes
    }
    gate.output = conducted;

    const std::uint32_t out_signal =
        netlist_.signal_of_gate(static_cast<std::uint32_t>(gi));
    actual[out_signal] = gate.output;
    if (!race_probes_.empty()) {
      observe_race(static_cast<std::uint32_t>(gi), spec, prev_output, actual,
                   source_pi_values);
    }
    auto ideal_of = [&](std::uint32_t s) { return ideal[s]; };
    bool ideal_out = spec.pdn.conducts(ideal_of);
    if (spec.dual() && !ideal_out) ideal_out = spec.pdn2.conducts(ideal_of);
    ideal[out_signal] = ideal_out;
    if (gate.output != ideal[out_signal]) {
      ++result.corrupted_gates;
      for (PbeEvent& e : result.events) {
        if (e.gate == gi && e.cycle == cycle_) e.corrupted_gate = true;
      }
      for (PbeEvent& e : history_) {
        if (e.gate == gi && e.cycle == cycle_) e.corrupted_gate = true;
      }
    }
  }

  if (tracing_) {
    TraceSample sample;
    for (std::size_t k = 0;
         k < trace_pi_names_.size() && k < source_pi_values.size(); ++k) {
      sample.pi_values.push_back(source_pi_values[k]);
    }
    for (std::size_t g = 0; g < gates_.size(); ++g) {
      sample.gate_outputs.push_back(gates_[g].output);
      sample.body_charge.push_back(
          max_body_charge(static_cast<std::uint32_t>(g)));
    }
    sample.pbe_fired = !result.events.empty();
    trace_.push_back(std::move(sample));
  }

  // ---- SAMPLE OUTPUTS ----------------------------------------------------
  for (const DominoOutput& o : netlist_.outputs()) {
    bool got;
    bool want;
    if (o.constant >= 0) {
      got = want = o.constant != 0;
    } else {
      got = actual[o.signal];
      want = ideal[o.signal];
    }
    result.outputs.push_back(o.inverted ? !got : got);
    result.expected.push_back(o.inverted ? !want : want);
  }
  return result;
}

void SoiSimulator::enable_trace(std::vector<std::string> pi_names) {
  tracing_ = true;
  trace_pi_names_ = std::move(pi_names);
  trace_.clear();
}

std::string SoiSimulator::trace_vcd() const {
  SOIDOM_REQUIRE(tracing_, "trace_vcd: enable_trace() was never called");
  std::string out;
  out += "$date soidomino soisim trace $end\n";
  out += "$timescale 1ns $end\n";
  out += "$scope module netlist $end\n";

  // Compact printable VCD identifiers: '!'..'~' base-94 counter.
  auto id_of = [](std::size_t index) {
    std::string id;
    do {
      id += static_cast<char>('!' + index % 94);
      index /= 94;
    } while (index > 0);
    return id;
  };
  std::size_t next = 0;
  std::vector<std::string> pi_ids;
  for (const std::string& name : trace_pi_names_) {
    pi_ids.push_back(id_of(next++));
    out += "$var wire 1 " + pi_ids.back() + ' ' + name + " $end\n";
  }
  std::vector<std::string> gate_ids;
  std::vector<std::string> body_ids;
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    gate_ids.push_back(id_of(next++));
    out += "$var wire 1 " + gate_ids.back() + " gate" + std::to_string(g) +
           " $end\n";
    body_ids.push_back(id_of(next++));
    out += "$var integer 8 " + body_ids.back() + " body" + std::to_string(g) +
           " $end\n";
  }
  const std::string pbe_id = id_of(next++);
  out += "$var wire 1 " + pbe_id + " pbe_event $end\n";
  out += "$upscope $end\n$enddefinitions $end\n";

  auto bin8 = [](int value) {
    std::string bits;
    for (int b = 7; b >= 0; --b) bits += ((value >> b) & 1) ? '1' : '0';
    return bits;
  };
  for (std::size_t t = 0; t < trace_.size(); ++t) {
    const TraceSample& s = trace_[t];
    out += '#' + std::to_string(t) + '\n';
    for (std::size_t k = 0; k < pi_ids.size() && k < s.pi_values.size(); ++k) {
      out += (s.pi_values[k] ? '1' : '0');
      out += pi_ids[k] + '\n';
    }
    for (std::size_t g = 0; g < gate_ids.size(); ++g) {
      out += (s.gate_outputs[g] ? '1' : '0');
      out += gate_ids[g] + '\n';
      out += 'b' + bin8(s.body_charge[g]) + ' ' + body_ids[g] + '\n';
    }
    out += (s.pbe_fired ? '1' : '0');
    out += pbe_id + '\n';
  }
  out += '#' + std::to_string(trace_.size()) + '\n';
  return out;
}

void SoiSimulator::enable_droop(std::vector<DroopProbe> probes) {
  SOIDOM_REQUIRE(probes.size() == gates_.size(),
                 "enable_droop: need exactly one DroopProbe per gate");
  for (std::size_t g = 0; g < probes.size(); ++g) {
    SOIDOM_REQUIRE(probes[g].caps.size() ==
                       static_cast<std::size_t>(gates_[g].num_nodes),
                   "enable_droop: probe caps do not match the gate model");
    const std::size_t second =
        seconds_[g] ? static_cast<std::size_t>(seconds_[g]->num_nodes) : 0;
    SOIDOM_REQUIRE(probes[g].caps2.size() == second,
                   "enable_droop: probe caps2 do not match the gate model");
  }
  droop_probes_ = std::move(probes);
  max_droop_.assign(gates_.size(), 0.0);
}

double SoiSimulator::max_droop(std::uint32_t gate) const {
  SOIDOM_REQUIRE(!droop_probes_.empty(),
                 "max_droop: enable_droop() was never called");
  SOIDOM_ASSERT(gate < max_droop_.size());
  return max_droop_[gate];
}

void SoiSimulator::enable_race(std::vector<RaceProbe> probes,
                               const RaceClockSpec& clock) {
  SOIDOM_REQUIRE(probes.size() == gates_.size(),
                 "enable_race: need exactly one RaceProbe per gate");
  SOIDOM_REQUIRE(
      clock.t_eval >= 0.0 && clock.t_pre >= 0.0 && clock.skew >= 0.0,
      "enable_race: clock windows and skew must be non-negative");
  race_probes_ = std::move(probes);
  race_clock_ = clock;
  race_margin_.assign(gates_.size(),
                      std::numeric_limits<double>::infinity());
  race_nonmono_.assign(gates_.size(), 0);
  race_fights_.assign(gates_.size(), 0);
}

void SoiSimulator::observe_race(std::uint32_t gate_index,
                                const DominoGate& spec, bool prev_output,
                                const std::vector<bool>& actual,
                                const std::vector<bool>& source_pi_values) {
  const RaceProbe& probe = race_probes_[gate_index];
  // Precharge crowbar: a footless pulldown conducting while the precharge
  // device is on.  In the cycle model only primary-input literals can be
  // high during precharge (domino outputs precharge low).
  const auto pi_high = [&](std::uint32_t s) {
    return netlist_.is_input_signal(s) && literal_value(s, source_pi_values);
  };
  if (!spec.pdn.empty() && !spec.footed && spec.pdn.conducts(pi_high)) {
    ++race_fights_[gate_index];
  }
  if (spec.dual() && !spec.footed2 && spec.pdn2.conducts(pi_high)) {
    ++race_fights_[gate_index];
  }
  // Non-monotone evaluate fall: the previous cycle left the output high
  // and the precharge bound overruns the precharge window, so the stale
  // high survives into evaluate and falls when precharge completes.
  if (prev_output && race_clock_.t_pre > 0.0 &&
      probe.pre_max + race_clock_.skew > race_clock_.t_pre) {
    ++race_nonmono_[gate_index];
  }
  // Observed discharge arrival: worst-case gate delay on top of the
  // latest-arriving input that is actually high this cycle — a measured
  // point inside the static [arrival_min, arrival_max] interval.
  if (gates_[gate_index].output) {
    double input_arrival = 0.0;
    for (const std::uint32_t s : spec.all_leaf_signals()) {
      if (actual[s]) {
        input_arrival = std::max(input_arrival, race_arrival_[s]);
      }
    }
    const double arrival = input_arrival + probe.delay_max;
    race_arrival_[netlist_.signal_of_gate(gate_index)] = arrival;
    if (race_clock_.t_eval > 0.0) {
      const double margin = race_clock_.t_eval - race_clock_.skew - arrival;
      race_margin_[gate_index] = std::min(race_margin_[gate_index], margin);
    }
  }
}

double SoiSimulator::min_handoff_margin(std::uint32_t gate) const {
  SOIDOM_REQUIRE(!race_probes_.empty(),
                 "min_handoff_margin: enable_race() was never called");
  SOIDOM_ASSERT(gate < race_margin_.size());
  return race_margin_[gate];
}

int SoiSimulator::nonmonotone_falls(std::uint32_t gate) const {
  SOIDOM_REQUIRE(!race_probes_.empty(),
                 "nonmonotone_falls: enable_race() was never called");
  SOIDOM_ASSERT(gate < race_nonmono_.size());
  return race_nonmono_[gate];
}

int SoiSimulator::precharge_fights(std::uint32_t gate) const {
  SOIDOM_REQUIRE(!race_probes_.empty(),
                 "precharge_fights: enable_race() was never called");
  SOIDOM_ASSERT(gate < race_fights_.size());
  return race_fights_[gate];
}

void SoiSimulator::observe_droop(const GateModel& gate,
                                 const std::vector<bool>& precharge_high,
                                 const std::vector<bool>& conducting,
                                 bool legit_dynamic_high, bool dynamic_high,
                                 std::uint32_t gate_index, bool second) {
  const DroopProbe& probe = droop_probes_[gate_index];
  const std::vector<double>& caps = second ? probe.caps2 : probe.caps;
  double droop = 0.0;
  if (!legit_dynamic_high) {
    // The gate was meant to discharge this cycle: no hazard to observe.
    droop = 0.0;
  } else if (!dynamic_high) {
    // Parasitic flip: the dynamic node was fully (and wrongly) discharged.
    droop = probe.vdd;
  } else {
    // The node stayed high: charge redistributes from the dynamic node
    // into every connected precharge-low node, plus the charge injected
    // by firing parasitic devices touching the component.  The flood
    // never expands through the grounded bottom terminal — when a
    // parasitic path reaches ground but the keeper holds (keeper
    // contention), the keeper replenishes what flows that way.
    std::vector<bool> member(static_cast<std::size_t>(gate.num_nodes), false);
    member[kDynamicNode] = true;
    std::vector<std::uint16_t> stack{kDynamicNode};
    while (!stack.empty()) {
      const std::uint16_t node = stack.back();
      stack.pop_back();
      for (std::size_t t = 0; t < gate.transistors.size(); ++t) {
        if (!conducting[t]) continue;
        const Transistor& tr = gate.transistors[t];
        std::uint16_t other;
        if (tr.above == node) {
          other = tr.below;
        } else if (tr.below == node) {
          other = tr.above;
        } else {
          continue;
        }
        if (other == kBottomNode || member[other]) continue;
        member[other] = true;
        stack.push_back(other);
      }
    }
    double total = 0.0;
    double shared_low = 0.0;
    for (std::size_t v = 0; v < member.size(); ++v) {
      if (!member[v]) continue;
      total += caps[v];
      if (!precharge_high[v]) shared_low += caps[v];
    }
    int firings = 0;
    for (const Transistor& tr : gate.transistors) {
      if (tr.pbe_on && (member[tr.above] || member[tr.below])) ++firings;
    }
    if (total > 0.0) {
      droop = (probe.vdd * shared_low + probe.q_pbe * firings) / total;
    }
  }
  max_droop_[gate_index] = std::max(max_droop_[gate_index], droop);
}

int SoiSimulator::max_body_charge(std::uint32_t gate) const {
  SOIDOM_ASSERT(gate < gates_.size());
  int best = 0;
  for (const Transistor& t : gates_[gate].transistors) {
    best = std::max(best, t.body);
  }
  if (seconds_[gate]) {
    for (const Transistor& t : seconds_[gate]->transistors) {
      best = std::max(best, t.body);
    }
  }
  return best;
}

}  // namespace soidom
