#include "soidom/twolevel/extract.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "soidom/base/contracts.hpp"
#include "soidom/twolevel/cube_ops.hpp"

namespace soidom {
namespace {

/// A literal: signal name + phase.
struct Literal {
  std::string signal;
  bool positive = true;
  friend auto operator<=>(const Literal&, const Literal&) = default;
};

using LiteralPair = std::pair<Literal, Literal>;

/// Collects the care literals of one cube as (signal, phase) pairs.
std::vector<Literal> cube_literals(const BlifTable& table, const Cube& cube) {
  std::vector<Literal> out;
  for (std::size_t v = 0; v < cube.lits.size(); ++v) {
    if (cube.lits[v] == CubeLit::kDontCare) continue;
    out.push_back({table.inputs[v], cube.lits[v] == CubeLit::kPos});
  }
  return out;
}

/// True if `cube` of `table` contains both literals of `pair`.
bool covers_pair(const BlifTable& table, const Cube& cube,
                 const LiteralPair& pair) {
  auto has = [&](const Literal& lit) {
    for (std::size_t v = 0; v < table.inputs.size(); ++v) {
      if (table.inputs[v] != lit.signal) continue;
      const CubeLit want = lit.positive ? CubeLit::kPos : CubeLit::kNeg;
      if (cube.lits[v] == want) return true;
    }
    return false;
  };
  return has(pair.first) && has(pair.second);
}

/// Fresh-name prefix that no existing signal uses.
std::string divisor_prefix(const BlifModel& model) {
  std::string prefix = "fx";
  auto taken = [&] {
    auto starts = [&](const std::string& name) {
      return name.rfind(prefix, 0) == 0;
    };
    for (const std::string& in : model.inputs) {
      if (starts(in)) return true;
    }
    for (const BlifTable& t : model.tables) {
      if (starts(t.output)) return true;
    }
    return false;
  };
  while (taken()) prefix += '_';
  return prefix;
}

int model_literals(const BlifModel& model) {
  int n = 0;
  for (const BlifTable& t : model.tables) n += literal_count(t.cover.cubes);
  return n;
}

}  // namespace

ExtractStats extract_common_cubes(BlifModel& model, int max_rounds) {
  ExtractStats stats;
  stats.literals_before = model_literals(model);
  const std::string prefix = divisor_prefix(model);

  for (int round = 0; round < max_rounds; ++round) {
    // Count co-occurring literal pairs across all cubes of all tables.
    std::map<LiteralPair, int> pair_count;
    for (const BlifTable& table : model.tables) {
      for (const Cube& cube : table.cover.cubes) {
        const auto lits = cube_literals(table, cube);
        for (std::size_t i = 0; i < lits.size(); ++i) {
          for (std::size_t j = i + 1; j < lits.size(); ++j) {
            LiteralPair key = lits[i] < lits[j]
                                  ? LiteralPair{lits[i], lits[j]}
                                  : LiteralPair{lits[j], lits[i]};
            ++pair_count[key];
          }
        }
      }
    }

    // Highest-gain pair: replacing 2 literals with 1 in `count` cubes
    // saves `count` literals and spends 2 on the divisor table.
    const LiteralPair* best = nullptr;
    int best_count = 0;
    for (const auto& [pair, count] : pair_count) {
      if (count > best_count) {
        best_count = count;
        best = &pair;
      }
    }
    if (best == nullptr || best_count - 2 <= 0) break;
    const LiteralPair chosen = *best;

    // Divisor table: fxN = first AND second (phases folded into the cube).
    BlifTable divisor;
    divisor.output = prefix + std::to_string(stats.divisors_extracted);
    divisor.inputs = {chosen.first.signal, chosen.second.signal};
    divisor.cover.num_inputs = 2;
    divisor.cover.on_set = true;
    divisor.cover.cubes.push_back(
        Cube{{chosen.first.positive ? CubeLit::kPos : CubeLit::kNeg,
              chosen.second.positive ? CubeLit::kPos : CubeLit::kNeg}});

    // Rewrite every covering cube: drop the pair's literals, AND in the
    // divisor.  Coverage is decided before any mutation of the table.
    for (BlifTable& table : model.tables) {
      std::vector<std::size_t> rewrite;
      for (std::size_t c = 0; c < table.cover.cubes.size(); ++c) {
        if (covers_pair(table, table.cover.cubes[c], chosen)) {
          rewrite.push_back(c);
        }
      }
      if (rewrite.empty()) continue;

      // Grow the table by one input column for the divisor.
      table.inputs.push_back(divisor.output);
      table.cover.num_inputs = table.inputs.size();
      for (Cube& cube : table.cover.cubes) {
        cube.lits.push_back(CubeLit::kDontCare);
      }
      for (const std::size_t c : rewrite) {
        Cube& cube = table.cover.cubes[c];
        for (std::size_t v = 0; v + 1 < table.inputs.size(); ++v) {
          const bool is_first = table.inputs[v] == chosen.first.signal &&
                                cube.lits[v] == (chosen.first.positive
                                                     ? CubeLit::kPos
                                                     : CubeLit::kNeg);
          const bool is_second = table.inputs[v] == chosen.second.signal &&
                                 cube.lits[v] == (chosen.second.positive
                                                      ? CubeLit::kPos
                                                      : CubeLit::kNeg);
          if (is_first || is_second) cube.lits[v] = CubeLit::kDontCare;
        }
        cube.lits.back() = CubeLit::kPos;
      }
    }

    model.tables.push_back(std::move(divisor));
    ++stats.divisors_extracted;
  }

  stats.literals_after = model_literals(model);
  return stats;
}

}  // namespace soidom
