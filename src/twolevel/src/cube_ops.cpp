#include "soidom/twolevel/cube_ops.hpp"

#include <algorithm>

#include "soidom/base/contracts.hpp"

namespace soidom {

bool cube_contains(const Cube& outer, const Cube& inner) {
  SOIDOM_ASSERT(outer.lits.size() == inner.lits.size());
  for (std::size_t v = 0; v < outer.lits.size(); ++v) {
    if (outer.lits[v] == CubeLit::kDontCare) continue;
    if (outer.lits[v] != inner.lits[v]) return false;
  }
  return true;
}

Cube supercube(const Cube& a, const Cube& b) {
  SOIDOM_ASSERT(a.lits.size() == b.lits.size());
  Cube out;
  out.lits.resize(a.lits.size());
  for (std::size_t v = 0; v < a.lits.size(); ++v) {
    out.lits[v] = a.lits[v] == b.lits[v] ? a.lits[v] : CubeLit::kDontCare;
  }
  return out;
}

int cube_distance(const Cube& a, const Cube& b) {
  SOIDOM_ASSERT(a.lits.size() == b.lits.size());
  int d = 0;
  for (std::size_t v = 0; v < a.lits.size(); ++v) {
    const bool opposite =
        (a.lits[v] == CubeLit::kPos && b.lits[v] == CubeLit::kNeg) ||
        (a.lits[v] == CubeLit::kNeg && b.lits[v] == CubeLit::kPos);
    if (opposite) ++d;
  }
  return d;
}

std::vector<Cube> cofactor(const std::vector<Cube>& cubes, std::size_t var,
                           bool positive) {
  const CubeLit keep = positive ? CubeLit::kPos : CubeLit::kNeg;
  const CubeLit drop = positive ? CubeLit::kNeg : CubeLit::kPos;
  std::vector<Cube> out;
  for (const Cube& c : cubes) {
    if (c.lits[var] == drop) continue;
    Cube reduced = c;
    if (reduced.lits[var] == keep) reduced.lits[var] = CubeLit::kDontCare;
    out.push_back(std::move(reduced));
  }
  return out;
}

std::vector<Cube> cofactor(const std::vector<Cube>& cubes,
                           const Cube& against) {
  std::vector<Cube> out = cubes;
  for (std::size_t v = 0; v < against.lits.size(); ++v) {
    if (against.lits[v] == CubeLit::kDontCare) continue;
    out = cofactor(out, v, against.lits[v] == CubeLit::kPos);
  }
  return out;
}

bool is_tautology(const std::vector<Cube>& cubes, std::size_t num_inputs) {
  // Terminal cases.
  for (const Cube& c : cubes) {
    if (c.care_count() == 0) return true;  // universal cube
  }
  if (cubes.empty()) return false;

  // Pick the most binate variable; a cover unate in every variable and
  // lacking a universal cube is not a tautology.
  std::size_t best_var = num_inputs;
  int best_score = -1;
  for (std::size_t v = 0; v < num_inputs; ++v) {
    int pos = 0;
    int neg = 0;
    for (const Cube& c : cubes) {
      if (c.lits[v] == CubeLit::kPos) ++pos;
      if (c.lits[v] == CubeLit::kNeg) ++neg;
    }
    if (pos > 0 && neg > 0) {
      const int score = std::min(pos, neg);
      if (score > best_score) {
        best_score = score;
        best_var = v;
      }
    }
  }
  if (best_var == num_inputs) return false;  // unate, no universal cube

  return is_tautology(cofactor(cubes, best_var, true), num_inputs) &&
         is_tautology(cofactor(cubes, best_var, false), num_inputs);
}

bool cover_contains_cube(const std::vector<Cube>& cubes,
                         std::size_t num_inputs, const Cube& cube) {
  return is_tautology(cofactor(cubes, cube), num_inputs);
}

int literal_count(const std::vector<Cube>& cubes) {
  int n = 0;
  for (const Cube& c : cubes) n += c.care_count();
  return n;
}

}  // namespace soidom
