#include "soidom/twolevel/minimize.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "soidom/base/contracts.hpp"
#include "soidom/twolevel/cube_ops.hpp"

namespace soidom {
namespace {

// ---------------------------------------------------------------------------
// Quine–McCluskey (small covers)
// ---------------------------------------------------------------------------

/// Cube as (value, mask) over the low num_inputs bits: mask bit set means
/// the variable is a care literal; value holds the required phase.
struct QmCube {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;
  friend auto operator<=>(const QmCube&, const QmCube&) = default;
};

Cube to_cube(const QmCube& q, std::size_t num_inputs) {
  Cube c;
  c.lits.resize(num_inputs, CubeLit::kDontCare);
  for (std::size_t v = 0; v < num_inputs; ++v) {
    if ((q.mask >> v) & 1) {
      c.lits[v] = ((q.value >> v) & 1) ? CubeLit::kPos : CubeLit::kNeg;
    }
  }
  return c;
}

std::vector<Cube> quine_mccluskey(const std::vector<Cube>& cubes,
                                  std::size_t num_inputs) {
  SOIDOM_ASSERT(num_inputs <= 20);
  const std::uint32_t space = 1u << num_inputs;
  const std::uint32_t full_mask = space - 1;

  // Enumerate on-set minterms.
  std::vector<std::uint32_t> minterms;
  for (std::uint32_t m = 0; m < space; ++m) {
    std::vector<bool> assignment(num_inputs);
    for (std::size_t v = 0; v < num_inputs; ++v) {
      assignment[v] = ((m >> v) & 1) != 0;
    }
    const bool on = std::any_of(cubes.begin(), cubes.end(), [&](const Cube& c) {
      return c.matches(assignment);
    });
    if (on) minterms.push_back(m);
  }
  if (minterms.empty()) return {};
  if (minterms.size() == space) {
    Cube universal;
    universal.lits.resize(num_inputs, CubeLit::kDontCare);
    return {universal};
  }

  // Iteratively merge implicants differing in exactly one care bit.
  std::set<QmCube> current;
  for (const std::uint32_t m : minterms) current.insert({m, full_mask});
  std::set<QmCube> primes;
  while (!current.empty()) {
    std::set<QmCube> next;
    std::set<QmCube> merged;
    for (auto it = current.begin(); it != current.end(); ++it) {
      for (auto jt = std::next(it); jt != current.end(); ++jt) {
        if (it->mask != jt->mask) continue;
        const std::uint32_t diff = it->value ^ jt->value;
        if (__builtin_popcount(diff) != 1) continue;
        next.insert({it->value & ~diff, it->mask & ~diff});
        merged.insert(*it);
        merged.insert(*jt);
      }
    }
    for (const QmCube& q : current) {
      if (!merged.contains(q)) primes.insert(q);
    }
    current = std::move(next);
  }

  // Essential primes first, then greedy set cover.
  const std::vector<QmCube> prime_list(primes.begin(), primes.end());
  auto covers = [&](const QmCube& p, std::uint32_t m) {
    return (m & p.mask) == (p.value & p.mask);
  };
  std::vector<bool> covered(minterms.size(), false);
  std::vector<bool> selected(prime_list.size(), false);

  for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
    int owner = -1;
    for (std::size_t pi = 0; pi < prime_list.size(); ++pi) {
      if (covers(prime_list[pi], minterms[mi])) {
        if (owner >= 0) {
          owner = -2;  // more than one prime covers it
          break;
        }
        owner = static_cast<int>(pi);
      }
    }
    if (owner >= 0) selected[static_cast<std::size_t>(owner)] = true;
  }
  for (std::size_t pi = 0; pi < prime_list.size(); ++pi) {
    if (!selected[pi]) continue;
    for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
      if (covers(prime_list[pi], minterms[mi])) covered[mi] = true;
    }
  }
  while (true) {
    // Greedy: pick the prime covering the most uncovered minterms, break
    // ties toward fewer literals (larger cube).
    int best = -1;
    int best_gain = 0;
    int best_lits = 0;
    for (std::size_t pi = 0; pi < prime_list.size(); ++pi) {
      if (selected[pi]) continue;
      int gain = 0;
      for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
        if (!covered[mi] && covers(prime_list[pi], minterms[mi])) ++gain;
      }
      const int lits = __builtin_popcount(prime_list[pi].mask);
      if (gain > best_gain || (gain == best_gain && gain > 0 && lits < best_lits)) {
        best = static_cast<int>(pi);
        best_gain = gain;
        best_lits = lits;
      }
    }
    if (best < 0) break;
    selected[static_cast<std::size_t>(best)] = true;
    for (std::size_t mi = 0; mi < minterms.size(); ++mi) {
      if (covers(prime_list[static_cast<std::size_t>(best)], minterms[mi])) {
        covered[mi] = true;
      }
    }
  }

  std::vector<Cube> out;
  for (std::size_t pi = 0; pi < prime_list.size(); ++pi) {
    if (selected[pi]) out.push_back(to_cube(prime_list[pi], num_inputs));
  }
  return out;
}

// ---------------------------------------------------------------------------
// espresso-lite (wide covers)
// ---------------------------------------------------------------------------

/// EXPAND: remove literals whose removal keeps the cube inside the cover.
bool expand_pass(std::vector<Cube>& cubes, std::size_t num_inputs) {
  bool changed = false;
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    for (std::size_t v = 0; v < num_inputs; ++v) {
      if (cubes[i].lits[v] == CubeLit::kDontCare) continue;
      Cube expanded = cubes[i];
      expanded.lits[v] = CubeLit::kDontCare;
      if (cover_contains_cube(cubes, num_inputs, expanded)) {
        cubes[i] = std::move(expanded);
        changed = true;
      }
    }
  }
  return changed;
}

/// IRREDUNDANT: drop cubes covered by the remaining cubes.
bool irredundant_pass(std::vector<Cube>& cubes, std::size_t num_inputs) {
  bool changed = false;
  for (std::size_t i = 0; i < cubes.size();) {
    std::vector<Cube> rest;
    rest.reserve(cubes.size() - 1);
    for (std::size_t j = 0; j < cubes.size(); ++j) {
      if (j != i) rest.push_back(cubes[j]);
    }
    if (cover_contains_cube(rest, num_inputs, cubes[i])) {
      cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(i));
      changed = true;
    } else {
      ++i;
    }
  }
  return changed;
}

std::vector<Cube> espresso_lite(std::vector<Cube> cubes,
                                std::size_t num_inputs, int max_iterations) {
  // Fast single-cube containment sweep first.
  for (std::size_t i = 0; i < cubes.size();) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes.size(); ++j) {
      if (i != j && cube_contains(cubes[j], cubes[i]) &&
          !(cube_contains(cubes[i], cubes[j]) && i < j)) {
        contained = true;
        break;
      }
    }
    if (contained) {
      cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (int it = 0; it < max_iterations; ++it) {
    const bool e = expand_pass(cubes, num_inputs);
    const bool r = irredundant_pass(cubes, num_inputs);
    if (!e && !r) break;
  }
  return cubes;
}

}  // namespace

SopCover minimize(const SopCover& cover, const MinimizeOptions& options,
                  MinimizeStats* stats) {
  MinimizeStats local;
  local.cubes_before = static_cast<int>(cover.cubes.size());
  local.literals_before = literal_count(cover.cubes);

  SopCover out = cover;
  bool constant = false;
  if (!cover.is_constant(constant)) {
    if (cover.num_inputs <=
        static_cast<std::size_t>(options.exact_input_limit)) {
      out.cubes = quine_mccluskey(cover.cubes, cover.num_inputs);
      if (out.cubes.size() == 1 && out.cubes.front().care_count() == 0) {
        // Collapsed to constant 1 (of the cube OR).
        out.cubes = {Cube{std::vector<CubeLit>(cover.num_inputs,
                                               CubeLit::kDontCare)}};
      }
    } else {
      out.cubes =
          espresso_lite(cover.cubes, cover.num_inputs, options.max_iterations);
    }
  }

  local.cubes_after = static_cast<int>(out.cubes.size());
  local.literals_after = literal_count(out.cubes);
  if (stats != nullptr) *stats = local;
  return out;
}

MinimizeStats minimize_tables(BlifModel& model,
                              const MinimizeOptions& options) {
  MinimizeStats total;
  for (BlifTable& table : model.tables) {
    MinimizeStats one;
    table.cover = minimize(table.cover, options, &one);
    total.cubes_before += one.cubes_before;
    total.cubes_after += one.cubes_after;
    total.literals_before += one.literals_before;
    total.literals_after += one.literals_after;
  }
  return total;
}

}  // namespace soidom
