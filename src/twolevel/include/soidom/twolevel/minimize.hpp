/// \file minimize.hpp
/// Two-level (SOP) logic minimization in the espresso style.
///
/// The paper's input networks come from SIS-optimized MCNC benchmarks;
/// this module supplies the equivalent preprocessing so raw BLIF covers
/// are minimized before technology decomposition.  Two engines:
///
///  * Quine–McCluskey with essential-prime extraction and greedy covering
///    for covers up to `exact_input_limit` inputs (prime-and-cover; the
///    cover selection is greedy, so "exact" applies to primality, and the
///    result is a prime, irredundant cover);
///  * espresso-lite EXPAND / IRREDUNDANT iteration for wider covers:
///    literal removal and cube deletion validated with the unate-recursive
///    tautology check (cube_ops.hpp), iterated to a fixed point.
///
/// Both engines preserve the function exactly (covers remain single-output
/// and on-set/off-set polarity is kept).
#pragma once

#include "soidom/blif/blif.hpp"
#include "soidom/blif/sop.hpp"

namespace soidom {

struct MinimizeOptions {
  /// Use Quine–McCluskey below this input count (else espresso-lite).
  int exact_input_limit = 10;
  /// Fixed-point iteration cap for the heuristic engine.
  int max_iterations = 8;
};

struct MinimizeStats {
  int cubes_before = 0;
  int cubes_after = 0;
  int literals_before = 0;
  int literals_after = 0;
};

/// Minimize one cover.  `stats`, when non-null, receives before/after
/// sizes.
SopCover minimize(const SopCover& cover, const MinimizeOptions& options = {},
                  MinimizeStats* stats = nullptr);

/// Minimize every table of a BLIF model; returns aggregate statistics.
MinimizeStats minimize_tables(BlifModel& model,
                              const MinimizeOptions& options = {});

}  // namespace soidom
