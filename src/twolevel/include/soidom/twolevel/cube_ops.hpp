/// \file cube_ops.hpp
/// Cube-level algebra on SOP covers: containment, cofactors, tautology.
/// These are the primitives the two-level minimizer (minimize.hpp) is
/// built from, exposed because they are independently useful (and
/// independently testable).
#pragma once

#include "soidom/blif/sop.hpp"

namespace soidom {

/// True if every minterm of `inner` is a minterm of `outer`
/// (single-cube containment: outer's care literals agree with inner's).
bool cube_contains(const Cube& outer, const Cube& inner);

/// The smallest cube covering both inputs.
Cube supercube(const Cube& a, const Cube& b);

/// Number of variables where the cubes have opposite care literals.
int cube_distance(const Cube& a, const Cube& b);

/// Cofactor of a cube list with respect to a single literal: cubes
/// requiring the opposite phase drop out; the variable becomes don't-care
/// in the rest.  `positive` selects the phase of variable `var`.
std::vector<Cube> cofactor(const std::vector<Cube>& cubes, std::size_t var,
                           bool positive);

/// Cofactor with respect to every care literal of `against`.
std::vector<Cube> cofactor(const std::vector<Cube>& cubes,
                           const Cube& against);

/// Is the OR of `cubes` (over `num_inputs` variables) the constant-1
/// function?  Classic unate-recursive tautology check.
bool is_tautology(const std::vector<Cube>& cubes, std::size_t num_inputs);

/// Is `cube` covered by the OR of `cubes`?
bool cover_contains_cube(const std::vector<Cube>& cubes,
                         std::size_t num_inputs, const Cube& cube);

/// Total care-literal count of a cube list.
int literal_count(const std::vector<Cube>& cubes);

}  // namespace soidom
