/// \file extract.hpp
/// Algebraic common-cube extraction across a flat BLIF model — the
/// multi-level half of the SIS-style preprocessing (minimize.hpp is the
/// two-level half).  Greedy fast-extract flavour:
///
///   repeat:
///     count every (literal, literal) pair co-occurring inside cubes,
///     across ALL tables (literals are (signal, phase) pairs, so shared
///     structure between tables is found too);
///     extract the highest-gain pair into a fresh 2-literal table and
///     rewrite every covering cube to reference it;
///   until no extraction gains literals.
///
/// The rewritten model computes the identical functions (each extraction
/// is an algebraic substitution cube' = divisor AND rest).  Extraction
/// before decomposition increases sharing in the mapped netlist: the
/// divisor becomes one multi-fanout node instead of repeated transistor
/// pairs.
#pragma once

#include "soidom/blif/blif.hpp"

namespace soidom {

struct ExtractStats {
  int divisors_extracted = 0;
  int literals_before = 0;
  int literals_after = 0;
};

/// Extract common cubes in place.  `max_rounds` bounds the greedy loop;
/// each round extracts one divisor.  New signals are named
/// "<prefix><n>" with a prefix chosen to avoid collisions.
ExtractStats extract_common_cubes(BlifModel& model, int max_rounds = 64);

}  // namespace soidom
