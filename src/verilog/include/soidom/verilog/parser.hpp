/// \file parser.hpp
/// A structural Verilog front end (combinational subset).
///
/// Accepted language — the dialect export_verilog() emits plus the common
/// hand-written equivalents:
///
///   module NAME ( <ansi or classic port list> );
///     input  [msb:lsb]? a, b, ...;      // classic-style declarations
///     output [msb:lsb]? y, ...;
///     wire   [msb:lsb]? t, ...;
///     wire t = <expr>;                  // declaration with initializer
///     assign y = <expr>;
///   endmodule
///
///   <expr> := | ^ & over ~, parentheses, identifiers, bit-selects
///             (sig[3]), and the literals 1'b0 / 1'b1.
///
/// Vectors are expanded to per-bit signals named "name[i]".  Sequential
/// constructs (always, reg), instances and multi-bit expressions are
/// rejected with a line-numbered soidom::Error, matching the library's
/// combinational scope.
#pragma once

#include <string>
#include <string_view>

#include "soidom/network/network.hpp"

namespace soidom {

/// Parse Verilog text into a logic network (PIs/POs in declaration order).
Network parse_verilog(std::string_view text);

/// Parse a Verilog file.
Network parse_verilog_file(const std::string& path);

}  // namespace soidom
