#include "soidom/verilog/parser.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "soidom/base/contracts.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/network/builder.hpp"

namespace soidom {
namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& what) {
  throw Error(format("Verilog parse error at line %d: %s", line, what.c_str()));
}

std::vector<Token> lex(std::string_view text) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  auto peek = [&](std::size_t off = 0) {
    return i + off < text.size() ? text[i + off] : '\0';
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
    } else if (c == '/' && peek(1) == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
    } else if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < text.size() && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= text.size()) fail(line, "unterminated block comment");
      i += 2;
    } else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
               c == '\\') {
      std::size_t j = i + (c == '\\' ? 1 : 0);
      const std::size_t start = j;
      auto ident_char = [&](char ch) {
        return (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
               (ch >= '0' && ch <= '9') || ch == '_' || ch == '$';
      };
      while (j < text.size() && ident_char(text[j])) ++j;
      out.push_back({Token::Kind::kIdent,
                     std::string(text.substr(start, j - start)), line});
      i = j;
    } else if (c >= '0' && c <= '9') {
      // Plain decimal, or sized binary literal like 1'b0.
      std::size_t j = i;
      while (j < text.size() && text[j] >= '0' && text[j] <= '9') ++j;
      if (j < text.size() && text[j] == '\'') {
        j += 1;
        if (j < text.size() && (text[j] == 'b' || text[j] == 'B')) {
          ++j;
          const std::size_t vstart = j;
          while (j < text.size() && (text[j] == '0' || text[j] == '1')) ++j;
          if (j == vstart) fail(line, "malformed binary literal");
          out.push_back({Token::Kind::kNumber,
                         "'b" + std::string(text.substr(vstart, j - vstart)),
                         line});
          i = j;
          continue;
        }
        fail(line, "only binary ('b) literals are supported");
      }
      out.push_back(
          {Token::Kind::kNumber, std::string(text.substr(i, j - i)), line});
      i = j;
    } else if (std::string_view("()[]:;,=~&|^").find(c) !=
               std::string_view::npos) {
      out.push_back({Token::Kind::kPunct, std::string(1, c), line});
      ++i;
    } else {
      fail(line, format("unexpected character '%c'", c));
    }
  }
  out.push_back({Token::Kind::kEnd, "", line});
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

enum class SignalKind { kInput, kOutput, kWire };

struct Signal {
  SignalKind kind = SignalKind::kWire;
  NodeId pi;                       ///< valid for inputs once created
  std::vector<Token> expr;         ///< assigned expression (may be empty)
  bool resolving = false;          ///< cycle detection
  NodeId resolved;                 ///< memoized result
  int declared_line = 0;
};

class VerilogParser {
 public:
  explicit VerilogParser(std::string_view text) : tokens_(lex(text)) {}

  Network run() {
    expect_ident("module");
    module_name_ = expect(Token::Kind::kIdent).text;
    parse_port_list();
    while (!at_ident("endmodule")) {
      parse_statement();
    }
    next();  // endmodule

    // Classic-style ports must have received a direction declaration in
    // the body (vectors expand, so accept name or name[...] matches).
    for (const std::string& port : classic_ports_) {
      const bool declared =
          signals_.contains(port) ||
          std::any_of(declaration_order_.begin(), declaration_order_.end(),
                      [&](const std::string& name) {
                        return name.size() > port.size() &&
                               name.compare(0, port.size(), port) == 0 &&
                               name[port.size()] == '[';
                      });
      if (!declared) {
        fail(1, format("port '%s' has no input/output declaration",
                       port.c_str()));
      }
    }

    // Create PIs in declaration order, then resolve outputs in order.
    for (const std::string& name : declaration_order_) {
      Signal& sig = signals_.at(name);
      if (sig.kind == SignalKind::kInput) {
        sig.pi = builder_.add_pi(name);
      }
    }
    for (const std::string& name : declaration_order_) {
      if (signals_.at(name).kind == SignalKind::kOutput) {
        builder_.add_output(resolve(name, signals_.at(name).declared_line),
                            name);
      }
    }
    return std::move(builder_).build();
  }

 private:
  // --- token plumbing -----------------------------------------------------
  const Token& peek(std::size_t off = 0) const {
    return tokens_[std::min(pos_ + off, tokens_.size() - 1)];
  }
  Token next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool at_punct(const char* p) const {
    return peek().kind == Token::Kind::kPunct && peek().text == p;
  }
  bool at_ident(const char* name) const {
    return peek().kind == Token::Kind::kIdent && peek().text == name;
  }
  Token expect(Token::Kind kind) {
    if (peek().kind != kind) {
      fail(peek().line, format("unexpected token '%s'", peek().text.c_str()));
    }
    return next();
  }
  void expect_punct(const char* p) {
    if (!at_punct(p)) {
      fail(peek().line,
           format("expected '%s', got '%s'", p, peek().text.c_str()));
    }
    next();
  }
  void expect_ident(const char* name) {
    if (!at_ident(name)) {
      fail(peek().line,
           format("expected '%s', got '%s'", name, peek().text.c_str()));
    }
    next();
  }

  // --- declarations ---------------------------------------------------------
  static bool is_direction(const std::string& word) {
    return word == "input" || word == "output" || word == "wire";
  }

  SignalKind kind_of(const std::string& word, int line) const {
    if (word == "input") return SignalKind::kInput;
    if (word == "output") return SignalKind::kOutput;
    if (word == "wire") return SignalKind::kWire;
    fail(line, format("unsupported construct '%s' (combinational structural "
                      "subset only)",
                      word.c_str()));
  }

  /// Parses an optional [msb:lsb] range; returns {msb, lsb} or {-1, -1}.
  std::pair<int, int> parse_range() {
    if (!at_punct("[")) return {-1, -1};
    next();
    const int msb = std::stoi(expect(Token::Kind::kNumber).text);
    expect_punct(":");
    const int lsb = std::stoi(expect(Token::Kind::kNumber).text);
    expect_punct("]");
    return {msb, lsb};
  }

  void declare(const std::string& base, SignalKind kind,
               std::pair<int, int> range, int line) {
    auto add = [&](const std::string& name) {
      if (const auto it = signals_.find(name); it != signals_.end()) {
        // Re-declaration is allowed only to refine a port's direction
        // (classic style lists ports twice).
        if (it->second.kind == SignalKind::kWire || kind == SignalKind::kWire) {
          if (kind != SignalKind::kWire) it->second.kind = kind;
          return;
        }
        fail(line, format("signal '%s' declared twice", name.c_str()));
      }
      Signal sig;
      sig.kind = kind;
      sig.declared_line = line;
      signals_.emplace(name, std::move(sig));
      declaration_order_.push_back(name);
    };
    if (range.first < 0) {
      add(base);
      return;
    }
    const int lo = std::min(range.first, range.second);
    const int hi = std::max(range.first, range.second);
    for (int b = lo; b <= hi; ++b) {
      add(base + "[" + std::to_string(b) + "]");
    }
  }

  void parse_port_list() {
    expect_punct("(");
    while (!at_punct(")")) {
      if (peek().kind == Token::Kind::kIdent && is_direction(peek().text)) {
        // ANSI style: direction [range] name
        const std::string dir = next().text;
        if (at_ident("wire")) next();  // "input wire a"
        const auto range = parse_range();
        const Token name = expect(Token::Kind::kIdent);
        declare(name.text, kind_of(dir, name.line), range, name.line);
      } else {
        // Classic style: bare name, direction comes later.
        const Token name = expect(Token::Kind::kIdent);
        classic_ports_.push_back(name.text);
      }
      if (at_punct(",")) next();
    }
    expect_punct(")");
    expect_punct(";");
  }

  void parse_statement() {
    const Token head = expect(Token::Kind::kIdent);
    if (head.text == "assign") {
      const std::string target = parse_signal_reference();
      expect_punct("=");
      assign_expression(target, head.line);
      expect_punct(";");
      return;
    }
    if (head.text == "input" || head.text == "output" || head.text == "wire") {
      const SignalKind kind = kind_of(head.text, head.line);
      if (at_ident("wire")) next();  // "output wire y"
      const auto range = parse_range();
      bool first = true;
      std::string last_name;
      while (true) {
        const Token name = expect(Token::Kind::kIdent);
        declare(name.text, kind, range, name.line);
        last_name = name.text;
        if (at_punct(",")) {
          next();
          first = false;
          continue;
        }
        break;
      }
      if (at_punct("=")) {
        // "wire t = expr;" — single-name declaration with initializer.
        if (!first || range.first >= 0) {
          fail(peek().line, "initializer only allowed on a scalar wire");
        }
        next();
        assign_expression(last_name, head.line);
      }
      expect_punct(";");
      return;
    }
    fail(head.line,
         format("unsupported construct '%s' (combinational structural subset "
                "only)",
                head.text.c_str()));
  }

  /// Reads "name" or "name[3]" and returns the expanded signal name.
  std::string parse_signal_reference() {
    const Token name = expect(Token::Kind::kIdent);
    if (at_punct("[")) {
      next();
      const Token index = expect(Token::Kind::kNumber);
      expect_punct("]");
      return name.text + "[" + index.text + "]";
    }
    return name.text;
  }

  /// Captures the expression token span for `target` up to the ';'.
  void assign_expression(const std::string& target, int line) {
    const auto it = signals_.find(target);
    if (it == signals_.end()) {
      fail(line, format("assignment to undeclared signal '%s'",
                        target.c_str()));
    }
    if (it->second.kind == SignalKind::kInput) {
      fail(line, format("assignment to input '%s'", target.c_str()));
    }
    if (!it->second.expr.empty()) {
      fail(line, format("signal '%s' assigned twice", target.c_str()));
    }
    std::vector<Token> expr;
    int depth = 0;
    while (!(at_punct(";") && depth == 0)) {
      if (peek().kind == Token::Kind::kEnd) fail(line, "unterminated assign");
      if (at_punct("(")) ++depth;
      if (at_punct(")")) --depth;
      expr.push_back(next());
    }
    if (expr.empty()) fail(line, "empty expression");
    expr.push_back({Token::Kind::kEnd, "", line});
    it->second.expr = std::move(expr);
  }

  // --- resolution -----------------------------------------------------------

  NodeId resolve(const std::string& name, int use_line) {
    const auto it = signals_.find(name);
    if (it == signals_.end()) {
      fail(use_line, format("undeclared signal '%s'", name.c_str()));
    }
    Signal& sig = it->second;
    if (sig.kind == SignalKind::kInput) return sig.pi;
    if (sig.resolved.valid()) return sig.resolved;
    if (sig.resolving) {
      fail(use_line, format("combinational cycle through '%s'", name.c_str()));
    }
    if (sig.expr.empty()) {
      fail(sig.declared_line,
           format("signal '%s' is never assigned", name.c_str()));
    }
    sig.resolving = true;
    std::size_t pos = 0;
    const NodeId value = parse_or(sig.expr, pos);
    if (sig.expr[pos].kind != Token::Kind::kEnd) {
      fail(sig.expr[pos].line,
           format("trailing tokens in expression for '%s'", name.c_str()));
    }
    sig.resolving = false;
    sig.resolved = value;
    return value;
  }

  // Precedence (loosest to tightest): |  ^  &  ~/primary.
  NodeId parse_or(const std::vector<Token>& t, std::size_t& pos) {
    NodeId acc = parse_xor(t, pos);
    while (t[pos].kind == Token::Kind::kPunct && t[pos].text == "|") {
      ++pos;
      acc = builder_.add_or(acc, parse_xor(t, pos));
    }
    return acc;
  }

  NodeId parse_xor(const std::vector<Token>& t, std::size_t& pos) {
    NodeId acc = parse_and(t, pos);
    while (t[pos].kind == Token::Kind::kPunct && t[pos].text == "^") {
      ++pos;
      const NodeId rhs = parse_and(t, pos);
      acc = builder_.add_or(builder_.add_and(acc, builder_.add_inv(rhs)),
                            builder_.add_and(builder_.add_inv(acc), rhs));
    }
    return acc;
  }

  NodeId parse_and(const std::vector<Token>& t, std::size_t& pos) {
    NodeId acc = parse_unary(t, pos);
    while (t[pos].kind == Token::Kind::kPunct && t[pos].text == "&") {
      ++pos;
      acc = builder_.add_and(acc, parse_unary(t, pos));
    }
    return acc;
  }

  NodeId parse_unary(const std::vector<Token>& t, std::size_t& pos) {
    if (t[pos].kind == Token::Kind::kPunct && t[pos].text == "~") {
      ++pos;
      return builder_.add_inv(parse_unary(t, pos));
    }
    return parse_primary(t, pos);
  }

  NodeId parse_primary(const std::vector<Token>& t, std::size_t& pos) {
    const Token& tok = t[pos];
    if (tok.kind == Token::Kind::kPunct && tok.text == "(") {
      ++pos;
      const NodeId inner = parse_or(t, pos);
      if (!(t[pos].kind == Token::Kind::kPunct && t[pos].text == ")")) {
        fail(t[pos].line, "expected ')'");
      }
      ++pos;
      return inner;
    }
    if (tok.kind == Token::Kind::kNumber) {
      ++pos;
      if (tok.text == "'b0") return builder_.const0();
      if (tok.text == "'b1") return builder_.const1();
      fail(tok.line, format("unsupported literal '%s' (only 1-bit binary)",
                            tok.text.c_str()));
    }
    if (tok.kind == Token::Kind::kIdent) {
      ++pos;
      std::string name = tok.text;
      if (t[pos].kind == Token::Kind::kPunct && t[pos].text == "[") {
        ++pos;
        if (t[pos].kind != Token::Kind::kNumber) {
          fail(t[pos].line, "expected bit index");
        }
        name += "[" + t[pos].text + "]";
        ++pos;
        if (!(t[pos].kind == Token::Kind::kPunct && t[pos].text == "]")) {
          fail(t[pos].line, "expected ']'");
        }
        ++pos;
      }
      return resolve(name, tok.line);
    }
    fail(tok.line, format("unexpected token '%s' in expression",
                          tok.text.c_str()));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string module_name_;
  NetworkBuilder builder_;
  std::unordered_map<std::string, Signal> signals_;
  std::vector<std::string> declaration_order_;
  std::vector<std::string> classic_ports_;
};

}  // namespace

Network parse_verilog(std::string_view text) {
  return VerilogParser(text).run();
}

Network parse_verilog_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error(format("cannot open Verilog file '%s'", path.c_str()));
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_verilog(ss.str());
}

}  // namespace soidom
