/// \file flow.hpp
/// The library's top-level facade: one call runs the full pipeline
///
///   BLIF / Network  ->  2-input decomposition  ->  unate conversion
///     ->  technology mapping (Domino_Map / SOI_Domino_Map)
///     ->  optional post-passes (discharge insertion, stack rearrangement)
///     ->  statistics + structural / functional verification.
///
/// This is the entry point examples and benches use; individual stages
/// remain available through their own modules for finer control.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "soidom/blif/blif.hpp"
#include "soidom/csa/csa.hpp"
#include "soidom/decomp/decompose.hpp"
#include "soidom/domino/netlist.hpp"
#include "soidom/domino/stats.hpp"
#include "soidom/domino/verify.hpp"
#include "soidom/guard/diagnostic.hpp"
#include "soidom/guard/guard.hpp"
#include "soidom/lint/lint.hpp"
#include "soidom/mapper/cone.hpp"
#include "soidom/mapper/mapper.hpp"
#include "soidom/network/network.hpp"
#include "soidom/prove/prove.hpp"
#include "soidom/race/race.hpp"
#include "soidom/unate/unate.hpp"

namespace soidom {

/// Which flow variant to run (the three algorithms compared in the paper).
enum class FlowVariant : std::uint8_t {
  kDominoMap,     ///< bulk mapper + discharge insertion post-pass
  kRsMap,         ///< bulk mapper + stack rearrangement + discharge insertion
  kSoiDominoMap,  ///< the paper's PBE-aware mapper
};

struct FlowOptions {
  FlowVariant variant = FlowVariant::kSoiDominoMap;
  DecomposeOptions decompose;
  /// Output phase assignment during unate conversion (unate/unate.hpp).
  PhaseAssignment phase_assignment = PhaseAssignment::kPositive;
  /// Mapper knobs; `mapper.engine` is overridden by `variant`.
  MapperOptions mapper;
  /// Sequence-aware discharge pruning (the paper's section VII future-work
  /// item): remove discharge transistors whose PBE-exciting input
  /// condition is provably unsatisfiable.  See domino/seqaware.hpp.
  bool sequence_aware = false;
  /// Post-mapping lint stage (lint/lint.hpp): the flow always records the
  /// full report in FlowResult::lint; findings at or above this severity
  /// fail the flow with a kLint diagnostic.  Error findings additionally
  /// surface through the legacy FlowResult::structure report, so the
  /// default (kError) matches the historical verify_structure behavior.
  LintSeverity lint_fail_on = LintSeverity::kError;
  /// Charge-sharing & PBE-safety static analysis (csa/csa.hpp) after
  /// lint: records the droop report and csa.* findings in
  /// FlowResult::csa; findings at or above `csa_fail_on` fail the flow
  /// with a kCsa diagnostic.
  bool csa = false;
  LintSeverity csa_fail_on = LintSeverity::kError;
  CsaOptions csa_options;
  /// Phase / monotonicity / race static analysis (race/race.hpp) after
  /// CSA: records the race report and race.* findings in
  /// FlowResult::race; findings at or above `race_fail_on` fail the flow
  /// with a kRace diagnostic.
  bool race = false;
  LintSeverity race_fail_on = LintSeverity::kError;
  RaceOptions race_options;
  /// Exact proof tier (prove/prove.hpp) after the analyzers: refines the
  /// provable lint / csa / race findings in place (confirmed / refuted /
  /// unknown, see docs/PROVE.md) and records the ProveReport in
  /// FlowResult::prove.  Refuted findings are downgraded to info before
  /// the fail-on gates run, so a flow that would have failed on a false
  /// positive passes with the proof certificate logged.  Additionally,
  /// CONFIRMED findings at or above `prove_fail_on` fail the flow with a
  /// kProve diagnostic even when their family's own fail-on gate is
  /// looser (a proven hazard is not a conservative bound any more).
  bool prove = false;
  LintSeverity prove_fail_on = LintSeverity::kError;
  ProveOptions prove_options;
  /// Functional verification by random simulation (0 disables).
  int verify_rounds = 8;
  std::uint64_t verify_seed = 0x50D0;
  /// Additionally attempt exact BDD equivalence (skipped on blow-up).
  bool exact_equivalence = false;
  std::size_t bdd_node_limit = 1u << 22;
  /// Optional content-addressed cone cache consulted at the kMap stage
  /// (mapper/cone.hpp).  A hit returns the previously mapped netlist
  /// byte-identically; a miss (or a corrupt cached value) falls through
  /// to the DP and stores the fresh result.  Null disables caching.
  /// The cache only shortcuts the mapper — every downstream stage (post
  /// passes, lint, CSA, race, verification) still runs on the cached
  /// netlist, so a hit changes latency, never the outcome.
  std::shared_ptr<MapConeCache> map_cache;
};

struct FlowResult {
  UnateResult unate;
  DominoNetlist netlist;
  DominoStats stats;
  /// Full structured lint report (all severities, all rules).
  LintReport lint;
  /// Charge-sharing analysis outcome when FlowOptions::csa was set.
  std::optional<CsaResult> csa;
  /// Race analysis outcome when FlowOptions::race was set.
  std::optional<RaceResult> race;
  /// Proof-tier outcome when FlowOptions::prove was set.  The refined
  /// proof statuses also live on the findings inside `lint` / `csa` /
  /// `race` (Finding::proof / original_severity / proof_note).
  std::optional<ProveReport> prove;
  /// Error-severity lint findings, flattened (legacy view of `lint`).
  VerifyReport structure;
  VerifyReport function;
  /// Result of BDD equivalence when requested and tractable.
  std::optional<bool> exact;
  int dp_analyzer_mismatches = 0;
  /// Discharge transistors removed by sequence-aware pruning (0 unless
  /// FlowOptions::sequence_aware).
  int discharges_pruned = 0;

  bool ok() const {
    return structure.ok() && function.ok() && exact.value_or(true) &&
           dp_analyzer_mismatches == 0;
  }
};

/// Map `source` (any AND/OR/INV/BUF network).
FlowResult run_flow(const Network& source, const FlowOptions& options = {});

/// Decompose and map a flat BLIF model.
FlowResult run_flow(const BlifModel& model, const FlowOptions& options = {});

/// Parse, decompose and map a BLIF file.
FlowResult run_flow_file(const std::string& path,
                         const FlowOptions& options = {});

/// Short human-readable summary line ("gates=12 T_logic=96 ...").
std::string summarize(const FlowResult& result);

// --- guarded facade --------------------------------------------------------

/// What a stage's fallback policy does when the stage fails recoverably.
enum class FallbackAction : std::uint8_t {
  kFail,                ///< surface the failure as the flow's Diagnostic
  kSkip,                ///< skip the stage's result, record a warning
  kRetryRelaxed,        ///< retry once with relaxed limits, record a warning
  kFallbackSimulation,  ///< substitute random simulation, record a warning
};

/// Guard knobs for run_flow_guarded.  Defaults: unbounded, graceful
/// degradation on (infeasible limits retry once with doubled W/H; a BDD
/// blow-up or BDD-budget trip falls back to random simulation).
struct GuardOptions {
  Deadline deadline;     ///< default: unlimited
  CancelToken cancel;    ///< observed at stage checkpoints
  ResourceBudget budget; ///< default: unlimited

  /// Mapper found no feasible pulldown shape under max_width/max_height
  /// (kFail or kRetryRelaxed; anything else behaves like kFail).
  FallbackAction on_infeasible_limits = FallbackAction::kRetryRelaxed;
  /// Exact BDD equivalence hit bdd_node_limit or the BDD-node budget
  /// (kFail, kSkip, or kFallbackSimulation).
  FallbackAction on_exact_blowup = FallbackAction::kFallbackSimulation;
  /// Simulation rounds used by kFallbackSimulation when verify_rounds == 0.
  int fallback_sim_rounds = 8;

  /// Copy completed stage results into FlowOutcome::partial so a failing
  /// flow still yields whatever finished.  Off in strict() to keep
  /// run_flow overhead-free.
  bool capture_partials = true;

  /// No fallbacks, no partial capture: the exception-compatible behavior
  /// plain run_flow delegates to.
  static GuardOptions strict() {
    GuardOptions g;
    g.on_infeasible_limits = FallbackAction::kFail;
    g.on_exact_blowup = FallbackAction::kSkip;
    g.capture_partials = false;
    return g;
  }
};

/// Stage results that completed before a failure (populated when
/// GuardOptions::capture_partials).
struct FlowPartial {
  std::optional<Network> decomposed;  ///< BLIF / file entry points only
  std::optional<UnateResult> unate;
  std::optional<DominoNetlist> netlist;
};

/// Non-throwing flow outcome: either a FlowResult, or a Diagnostic plus
/// whatever partial stage results completed.  Verification mismatches set
/// BOTH `result` (the mapped netlist is still useful for triage) and
/// `diagnostic` (code kVerificationFailed).
struct FlowOutcome {
  std::optional<FlowResult> result;
  std::optional<Diagnostic> diagnostic;
  FlowPartial partial;
  /// Fallbacks taken and other non-fatal conditions, in stage order.
  std::vector<Diagnostic> warnings;

  bool ok() const { return result.has_value() && !diagnostic.has_value(); }
};

/// Validate every flow knob up front (delegates mapper knobs to
/// validate(MapperOptions)); throws soidom::Error naming the offending
/// field and value.
void validate(const FlowOptions& options);

/// Guarded, non-throwing counterparts of run_flow / run_flow_file: all
/// recoverable failures — bad input, infeasible limits, deadline, budget,
/// cancellation, injected faults — come back as a structured Diagnostic
/// instead of an exception.  See docs/ERRORS.md.
FlowOutcome run_flow_guarded(const Network& source,
                             const FlowOptions& options = {},
                             const GuardOptions& guard_options = {});
FlowOutcome run_flow_guarded(const BlifModel& model,
                             const FlowOptions& options = {},
                             const GuardOptions& guard_options = {});
FlowOutcome run_flow_guarded_file(const std::string& path,
                                  const FlowOptions& options = {},
                                  const GuardOptions& guard_options = {});

/// summarize(result) on success, diagnostic.to_string() on failure.
std::string summarize(const FlowOutcome& outcome);

}  // namespace soidom
