/// \file flow.hpp
/// The library's top-level facade: one call runs the full pipeline
///
///   BLIF / Network  ->  2-input decomposition  ->  unate conversion
///     ->  technology mapping (Domino_Map / SOI_Domino_Map)
///     ->  optional post-passes (discharge insertion, stack rearrangement)
///     ->  statistics + structural / functional verification.
///
/// This is the entry point examples and benches use; individual stages
/// remain available through their own modules for finer control.
#pragma once

#include <optional>
#include <string>

#include "soidom/blif/blif.hpp"
#include "soidom/decomp/decompose.hpp"
#include "soidom/domino/netlist.hpp"
#include "soidom/domino/stats.hpp"
#include "soidom/domino/verify.hpp"
#include "soidom/mapper/mapper.hpp"
#include "soidom/network/network.hpp"
#include "soidom/unate/unate.hpp"

namespace soidom {

/// Which flow variant to run (the three algorithms compared in the paper).
enum class FlowVariant : std::uint8_t {
  kDominoMap,     ///< bulk mapper + discharge insertion post-pass
  kRsMap,         ///< bulk mapper + stack rearrangement + discharge insertion
  kSoiDominoMap,  ///< the paper's PBE-aware mapper
};

struct FlowOptions {
  FlowVariant variant = FlowVariant::kSoiDominoMap;
  DecomposeOptions decompose;
  /// Output phase assignment during unate conversion (unate/unate.hpp).
  PhaseAssignment phase_assignment = PhaseAssignment::kPositive;
  /// Mapper knobs; `mapper.engine` is overridden by `variant`.
  MapperOptions mapper;
  /// Sequence-aware discharge pruning (the paper's section VII future-work
  /// item): remove discharge transistors whose PBE-exciting input
  /// condition is provably unsatisfiable.  See domino/seqaware.hpp.
  bool sequence_aware = false;
  /// Functional verification by random simulation (0 disables).
  int verify_rounds = 8;
  std::uint64_t verify_seed = 0x50D0;
  /// Additionally attempt exact BDD equivalence (skipped on blow-up).
  bool exact_equivalence = false;
  std::size_t bdd_node_limit = 1u << 22;
};

struct FlowResult {
  UnateResult unate;
  DominoNetlist netlist;
  DominoStats stats;
  VerifyReport structure;
  VerifyReport function;
  /// Result of BDD equivalence when requested and tractable.
  std::optional<bool> exact;
  int dp_analyzer_mismatches = 0;
  /// Discharge transistors removed by sequence-aware pruning (0 unless
  /// FlowOptions::sequence_aware).
  int discharges_pruned = 0;

  bool ok() const {
    return structure.ok() && function.ok() && exact.value_or(true) &&
           dp_analyzer_mismatches == 0;
  }
};

/// Map `source` (any AND/OR/INV/BUF network).
FlowResult run_flow(const Network& source, const FlowOptions& options = {});

/// Decompose and map a flat BLIF model.
FlowResult run_flow(const BlifModel& model, const FlowOptions& options = {});

/// Parse, decompose and map a BLIF file.
FlowResult run_flow_file(const std::string& path,
                         const FlowOptions& options = {});

/// Short human-readable summary line ("gates=12 T_logic=96 ...").
std::string summarize(const FlowResult& result);

}  // namespace soidom
