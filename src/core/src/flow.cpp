#include "soidom/core/flow.hpp"

#include <algorithm>

#include "soidom/base/strings.hpp"
#include "soidom/domino/exact.hpp"
#include "soidom/domino/postpass.hpp"
#include "soidom/domino/seqaware.hpp"
#include "soidom/guard/fault.hpp"

namespace soidom {
namespace {

/// Code assumed for a plain soidom::Error (no embedded code) by stage.
ErrorCode default_code_for(FlowStage stage) {
  switch (stage) {
    case FlowStage::kParse:
    case FlowStage::kDecompose:
      return ErrorCode::kParseError;  // input text or model elaboration
    case FlowStage::kValidate:
      return ErrorCode::kInvalidOptions;
    default:
      return ErrorCode::kInternal;
  }
}

/// Stage transition: attribute + honor cancellation/deadline at the
/// boundary even when the stage itself has no inner checkpoints.
void enter(GuardContext& guard, FlowStage stage) {
  guard.set_stage(stage);
  guard.checkpoint();
}

Diagnostic warning_from(const GuardError& e, const std::string& note) {
  Diagnostic d = e.to_diagnostic();
  d.context.push_back(note);
  return d;
}

/// The stage sequence shared by every entry point.  Fills out.result on
/// success (plus out.diagnostic for verification mismatches); failures
/// propagate as exceptions for the entry points to convert.
void run_stages(const Network& source, const FlowOptions& options,
                const GuardOptions& gopts, GuardContext& guard,
                FlowOutcome& out) {
  enter(guard, FlowStage::kValidate);
  validate(options);

  enter(guard, FlowStage::kUnate);
  FlowResult result;
  result.unate = make_unate(source, options.phase_assignment);
  if (gopts.capture_partials) out.partial.unate = result.unate;

  enter(guard, FlowStage::kMap);
  MapperOptions mopts = options.mapper;
  mopts.engine = options.variant == FlowVariant::kSoiDominoMap
                     ? MappingEngine::kSoiDominoMap
                     : MappingEngine::kDominoMap;
  // Run the DP through the optional cone cache.  A hit must be
  // byte-identical to a recompute by construction (the key is an exact
  // serialization of the mapper's input — mapper/cone.hpp); a corrupt
  // cached payload is treated as a miss, so the cache can shorten the
  // map stage but never change it.  Infeasible limits throw before the
  // store, so only feasible mappings are ever cached.
  auto run_map = [&](const MapperOptions& effective) -> MappingResult {
    if (options.map_cache == nullptr) {
      return map_to_domino(result.unate, effective);
    }
    const ConeKey key = cone_key(result.unate, effective);
    if (std::optional<CachedMapping> hit = options.map_cache->lookup(key)) {
      try {
        return mapping_from_cached(*hit);
      } catch (const std::exception&) {
        // Undecodable value: fall through to the DP and overwrite it.
      }
    }
    MappingResult fresh = map_to_domino(result.unate, effective);
    options.map_cache->store(key, cached_from_mapping(fresh));
    return fresh;
  };
  MappingResult mapped;
  try {
    mapped = run_map(mopts);
  } catch (const GuardError& e) {
    if (e.code() != ErrorCode::kInfeasibleLimits ||
        gopts.on_infeasible_limits != FallbackAction::kRetryRelaxed) {
      throw;
    }
    MapperOptions relaxed = mopts;
    relaxed.max_width = std::min(64, std::max(2, relaxed.max_width * 2));
    relaxed.max_height = std::min(64, std::max(2, relaxed.max_height * 2));
    out.warnings.push_back(warning_from(
        e, format("retried once with relaxed limits W<=%d H<=%d",
                  relaxed.max_width, relaxed.max_height)));
    mapped = run_map(relaxed);
    mopts = relaxed;  // downstream stages see the effective limits
  }
  // Surface mapper warnings (e.g. a clamped num_threads request) through
  // the flow outcome, whichever attempt produced the mapping.
  out.warnings.insert(out.warnings.end(), mapped.warnings.begin(),
                      mapped.warnings.end());
  result.dp_analyzer_mismatches = mapped.dp_analyzer_mismatches;
  result.netlist = std::move(mapped.netlist);

  enter(guard, FlowStage::kPostPass);
  switch (options.variant) {
    case FlowVariant::kDominoMap:
      insert_discharges(result.netlist, mopts.grounding, mopts.pending_model);
      break;
    case FlowVariant::kRsMap:
      rearrange_stacks(result.netlist, mopts.grounding, mopts.pending_model);
      break;
    case FlowVariant::kSoiDominoMap:
      break;  // discharges are part of the mapping
  }

  if (options.sequence_aware) {
    enter(guard, FlowStage::kSeqAware);
    result.discharges_pruned =
        prune_unexcitable_discharges(result.netlist).points_pruned;
  }

  result.stats = compute_stats(result.netlist);
  if (gopts.capture_partials) out.partial.netlist = result.netlist;

  // Structural checks now run through the lint engine; the historical
  // kVerifyStructure probe point is kept for fault-injection coverage and
  // the error-severity findings feed the legacy `structure` report.
  enter(guard, FlowStage::kVerifyStructure);
  SOIDOM_FAULT_PROBE(FlowStage::kVerifyStructure);
  enter(guard, FlowStage::kLint);
  LintOptions lopts;
  lopts.grounding = mopts.grounding;
  lopts.pending_model = mopts.pending_model;
  lopts.allow_unexcitable_unprotected = options.sequence_aware;
  lopts.max_width = mopts.max_width;
  lopts.max_height = mopts.max_height;
  result.lint = run_lint(result.netlist, lopts, &source);

  if (options.csa) {
    enter(guard, FlowStage::kCsa);
    result.csa = run_csa(result.netlist, options.csa_options);
  }

  if (options.race) {
    enter(guard, FlowStage::kRace);
    result.race = run_race(result.netlist, options.race_options);
  }

  if (options.prove) {
    enter(guard, FlowStage::kProve);
    result.prove = run_prove(
        result.netlist, &result.lint, result.csa ? &*result.csa : nullptr,
        result.race ? &*result.race : nullptr, lopts, options.csa_options,
        options.prove_options);
    if (result.prove->budget_hits > 0) {
      out.warnings.push_back(Diagnostic{
          ErrorCode::kProofTimeout, FlowStage::kProve,
          format("%d of %d proof obligations exceeded the node budget "
                 "(%u); their conservative verdicts stand",
                 result.prove->budget_hits, result.prove->targets(),
                 result.prove->node_budget),
          {}});
    }
  }

  // The legacy structure report flattens error-severity findings AFTER
  // the proof tier, so a refuted (downgraded) finding no longer fails
  // the flow — that is the entire point of refutation.
  for (const Finding& f : result.lint.findings) {
    if (f.severity >= LintSeverity::kError) {
      result.structure.problems.push_back(f.to_string());
    }
  }

  if (options.verify_rounds > 0) {
    enter(guard, FlowStage::kVerifyFunction);
    Rng rng(options.verify_seed);
    result.function =
        verify_function(result.netlist, source, options.verify_rounds, rng);
  }

  if (options.exact_equivalence) {
    enter(guard, FlowStage::kExact);
    bool blew_up = false;
    std::string blowup_reason;
    try {
      result.exact =
          equivalent_exact(result.netlist, source, options.bdd_node_limit);
      if (!result.exact.has_value()) {
        blew_up = true;
        blowup_reason = format("BDD node limit (%zu) exceeded",
                               options.bdd_node_limit);
      }
    } catch (const GuardError& e) {
      // The BDD-node *budget* is a blow-up too as far as degradation is
      // concerned; deadline/cancellation keep propagating.
      if (e.code() != ErrorCode::kBudgetExceeded ||
          gopts.on_exact_blowup == FallbackAction::kFail) {
        throw;
      }
      blew_up = true;
      blowup_reason = e.what();
    }
    if (blew_up) {
      if (gopts.on_exact_blowup == FallbackAction::kFail) {
        throw GuardError(ErrorCode::kBddNodeLimit, FlowStage::kExact,
                         format("exact equivalence intractable: %s",
                                blowup_reason.c_str()));
      }
      Diagnostic warn{ErrorCode::kBddNodeLimit, FlowStage::kExact,
                      blowup_reason, {}};
      if (gopts.on_exact_blowup == FallbackAction::kFallbackSimulation) {
        warn.context.push_back("fell back to random simulation");
        if (options.verify_rounds <= 0 && gopts.fallback_sim_rounds > 0) {
          enter(guard, FlowStage::kVerifyFunction);
          Rng rng(options.verify_seed);
          result.function = verify_function(result.netlist, source,
                                            gopts.fallback_sim_rounds, rng);
        }
      } else {
        warn.context.push_back("exact equivalence skipped");
      }
      out.warnings.push_back(std::move(warn));
    }
  }

  // Verification mismatches become a Diagnostic, but the mapped netlist
  // is still returned for triage.
  if (!result.structure.ok()) {
    out.diagnostic = Diagnostic{ErrorCode::kVerificationFailed,
                                FlowStage::kVerifyStructure,
                                result.structure.to_string(),
                                {}};
  } else if (!result.lint.clean(options.lint_fail_on)) {
    // Sub-error findings only reach here when the caller tightened
    // lint_fail_on below kError (errors fail via `structure` above).
    Diagnostic d{ErrorCode::kVerificationFailed, FlowStage::kLint,
                 format("lint failed at severity >= %s: %s",
                        lint_severity_name(options.lint_fail_on),
                        result.lint.summary().c_str()),
                 {}};
    for (const Finding& f : result.lint.findings) {
      if (f.severity >= options.lint_fail_on) d.context.push_back(f.to_string());
    }
    out.diagnostic = std::move(d);
  } else if (result.csa.has_value() &&
             !result.csa->lint.clean(options.csa_fail_on)) {
    Diagnostic d{ErrorCode::kVerificationFailed, FlowStage::kCsa,
                 format("charge-sharing analysis failed at severity >= %s: %s",
                        lint_severity_name(options.csa_fail_on),
                        result.csa->lint.summary().c_str()),
                 {}};
    for (const Finding& f : result.csa->lint.findings) {
      if (!f.waived && f.severity >= options.csa_fail_on) {
        d.context.push_back(f.to_string());
      }
    }
    out.diagnostic = std::move(d);
  } else if (result.race.has_value() &&
             !result.race->lint.clean(options.race_fail_on)) {
    Diagnostic d{ErrorCode::kVerificationFailed, FlowStage::kRace,
                 format("race analysis failed at severity >= %s: %s",
                        lint_severity_name(options.race_fail_on),
                        result.race->lint.summary().c_str()),
                 {}};
    for (const Finding& f : result.race->lint.findings) {
      if (!f.waived && f.severity >= options.race_fail_on) {
        d.context.push_back(f.to_string());
      }
    }
    out.diagnostic = std::move(d);
  } else if (result.prove.has_value() && [&] {
               for (const ProofRecord& r : result.prove->records) {
                 if (r.status == ProofStatus::kConfirmed) return true;
               }
               return false;
             }()) {
    // A CONFIRMED finding is a proven hazard, not a conservative bound:
    // it fails the flow at prove_fail_on even when its family's own gate
    // is looser.  (Severity is checked per finding below; confirmed
    // findings keep their original severity.)
    Diagnostic d{ErrorCode::kVerificationFailed, FlowStage::kProve,
                 format("proof tier confirmed findings at severity >= %s: %s",
                        lint_severity_name(options.prove_fail_on),
                        result.prove->summary().c_str()),
                 {}};
    const auto gate_confirmed = [&](const LintReport& report) {
      for (const Finding& f : report.findings) {
        if (!f.waived && f.proof == ProofStatus::kConfirmed &&
            f.severity >= options.prove_fail_on) {
          d.context.push_back(f.to_string());
        }
      }
    };
    gate_confirmed(result.lint);
    if (result.csa.has_value()) gate_confirmed(result.csa->lint);
    if (result.race.has_value()) gate_confirmed(result.race->lint);
    if (!d.context.empty()) out.diagnostic = std::move(d);
  }
  if (out.diagnostic.has_value()) {
    // first failing gate wins; fall through to the epilogue
  } else if (!result.function.ok()) {
    out.diagnostic = Diagnostic{ErrorCode::kVerificationFailed,
                                FlowStage::kVerifyFunction,
                                result.function.to_string(),
                                {}};
  } else if (result.exact.has_value() && !*result.exact) {
    out.diagnostic =
        Diagnostic{ErrorCode::kVerificationFailed, FlowStage::kExact,
                   "exact BDD equivalence found a functional difference",
                   {}};
  } else if (result.dp_analyzer_mismatches != 0) {
    out.diagnostic =
        Diagnostic{ErrorCode::kVerificationFailed, FlowStage::kMap,
                   format("%d DP/analyzer discharge-count mismatch(es)",
                          result.dp_analyzer_mismatches),
                   {}};
  }

  guard.set_stage(FlowStage::kNone);
  out.result = std::move(result);
}

/// Install a guard, run `body`, convert any escaping exception into a
/// Diagnostic.  run_flow_guarded never throws for recoverable failures.
template <typename Body>
FlowOutcome run_guarded(const GuardOptions& gopts, Body&& body) {
  GuardContext guard(gopts.deadline, gopts.cancel, gopts.budget);
  GuardScope scope(guard);
  FlowOutcome out;
  try {
    body(guard, out);
  } catch (const GuardError& e) {
    Diagnostic d = e.to_diagnostic();
    if (d.stage == FlowStage::kNone) d.stage = guard.stage();
    out.diagnostic = std::move(d);
  } catch (const Error& e) {
    out.diagnostic = Diagnostic{default_code_for(guard.stage()), guard.stage(),
                                e.what(),
                                {}};
  } catch (const std::exception& e) {
    out.diagnostic =
        Diagnostic{ErrorCode::kInternal, guard.stage(),
                   format("unexpected exception: %s", e.what()),
                   {}};
  }
  return out;
}

/// Delegation shim for the throwing API: unwrap the result or rethrow the
/// diagnostic as a GuardError (an Error subclass, so existing catch sites
/// keep working).
FlowResult take_result(FlowOutcome&& outcome) {
  if (outcome.result.has_value()) return std::move(*outcome.result);
  const Diagnostic& d = *outcome.diagnostic;
  throw GuardError(d.code, d.stage, d.message);
}

}  // namespace

void validate(const FlowOptions& options) {
  validate(options.mapper);
  SOIDOM_REQUIRE(options.verify_rounds >= 0,
                 format("FlowOptions.verify_rounds = %d is invalid "
                        "(need verify_rounds >= 0)",
                        options.verify_rounds));
  SOIDOM_REQUIRE(options.bdd_node_limit >= 2,
                 format("FlowOptions.bdd_node_limit = %zu is invalid "
                        "(need bdd_node_limit >= 2)",
                        options.bdd_node_limit));
  if (options.csa) {
    SOIDOM_REQUIRE(options.csa_options.max_states >= 1,
                   format("FlowOptions.csa_options.max_states = %ld is "
                          "invalid (need max_states >= 1)",
                          options.csa_options.max_states));
    SOIDOM_REQUIRE(options.csa_options.margin >= 0.0,
                   format("FlowOptions.csa_options.margin = %g is invalid "
                          "(need margin >= 0)",
                          options.csa_options.margin));
    SOIDOM_REQUIRE(options.csa_options.keeper_strength >= 1,
                   format("FlowOptions.csa_options.keeper_strength = %d is "
                          "invalid (need keeper_strength >= 1)",
                          options.csa_options.keeper_strength));
    SOIDOM_REQUIRE(options.csa_options.num_threads >= 0,
                   format("FlowOptions.csa_options.num_threads = %d is "
                          "invalid (need num_threads >= 0)",
                          options.csa_options.num_threads));
  }
  if (options.prove) {
    SOIDOM_REQUIRE(options.prove_options.node_budget >= 2,
                   format("FlowOptions.prove_options.node_budget = %u is "
                          "invalid (need node_budget >= 2)",
                          options.prove_options.node_budget));
    SOIDOM_REQUIRE(options.prove_options.num_threads >= 0,
                   format("FlowOptions.prove_options.num_threads = %d is "
                          "invalid (need num_threads >= 0)",
                          options.prove_options.num_threads));
  }
  if (options.race) {
    SOIDOM_REQUIRE(options.race_options.num_phases >= 1,
                   format("FlowOptions.race_options.num_phases = %d is "
                          "invalid (need num_phases >= 1)",
                          options.race_options.num_phases));
    SOIDOM_REQUIRE(options.race_options.t_eval >= 0.0 &&
                       options.race_options.t_pre >= 0.0,
                   format("FlowOptions.race_options windows t_eval = %g / "
                          "t_pre = %g are invalid (need >= 0)",
                          options.race_options.t_eval,
                          options.race_options.t_pre));
    SOIDOM_REQUIRE(options.race_options.skew >= 0.0 &&
                       options.race_options.margin >= 0.0,
                   format("FlowOptions.race_options skew = %g / margin = %g "
                          "are invalid (need >= 0)",
                          options.race_options.skew,
                          options.race_options.margin));
    SOIDOM_REQUIRE(options.race_options.num_threads >= 0,
                   format("FlowOptions.race_options.num_threads = %d is "
                          "invalid (need num_threads >= 0)",
                          options.race_options.num_threads));
  }
}

FlowOutcome run_flow_guarded(const Network& source, const FlowOptions& options,
                             const GuardOptions& guard_options) {
  return run_guarded(guard_options,
                     [&](GuardContext& guard, FlowOutcome& out) {
                       run_stages(source, options, guard_options, guard, out);
                     });
}

FlowOutcome run_flow_guarded(const BlifModel& model, const FlowOptions& options,
                             const GuardOptions& guard_options) {
  return run_guarded(
      guard_options, [&](GuardContext& guard, FlowOutcome& out) {
        enter(guard, FlowStage::kValidate);
        validate(options);
        enter(guard, FlowStage::kDecompose);
        const Network net = decompose(model, options.decompose);
        if (guard_options.capture_partials) out.partial.decomposed = net;
        run_stages(net, options, guard_options, guard, out);
      });
}

FlowOutcome run_flow_guarded_file(const std::string& path,
                                  const FlowOptions& options,
                                  const GuardOptions& guard_options) {
  return run_guarded(
      guard_options, [&](GuardContext& guard, FlowOutcome& out) {
        enter(guard, FlowStage::kParse);
        SOIDOM_FAULT_PROBE(FlowStage::kParse);
        const BlifModel model = parse_blif_file(path);
        enter(guard, FlowStage::kDecompose);
        const Network net = decompose(model, options.decompose);
        if (guard_options.capture_partials) out.partial.decomposed = net;
        run_stages(net, options, guard_options, guard, out);
      });
}

FlowResult run_flow(const Network& source, const FlowOptions& options) {
  return take_result(
      run_flow_guarded(source, options, GuardOptions::strict()));
}

FlowResult run_flow(const BlifModel& model, const FlowOptions& options) {
  return take_result(run_flow_guarded(model, options, GuardOptions::strict()));
}

FlowResult run_flow_file(const std::string& path, const FlowOptions& options) {
  return take_result(
      run_flow_guarded_file(path, options, GuardOptions::strict()));
}

std::string summarize(const FlowResult& r) {
  std::string out = format(
      "gates=%d T_logic=%d T_disch=%d T_total=%d T_clock=%d levels=%d "
      "structure=%s function=%s",
      r.stats.num_gates, r.stats.t_logic, r.stats.t_disch, r.stats.t_total,
      r.stats.t_clock, r.stats.levels, r.structure.ok() ? "ok" : "FAIL",
      r.function.ok() ? "ok" : "FAIL");
  if (r.exact.has_value()) {
    out += format(" exact=%s", *r.exact ? "equivalent" : "DIFFERENT");
  }
  if (r.csa.has_value()) {
    out += format(" csa=%s max_droop=%.3f",
                  r.csa->lint.summary().c_str(), r.csa->report.max_droop);
  }
  if (r.race.has_value()) {
    out += format(" race=%s skew_tol=%.3f",
                  r.race->lint.summary().c_str(),
                  r.race->report.skew_tolerance);
  }
  if (r.prove.has_value()) {
    out += format(" prove=%s", r.prove->summary().c_str());
  }
  return out;
}

std::string summarize(const FlowOutcome& outcome) {
  if (outcome.result.has_value()) return summarize(*outcome.result);
  return outcome.diagnostic.has_value() ? outcome.diagnostic->to_string()
                                        : "no result";
}

}  // namespace soidom
