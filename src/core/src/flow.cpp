#include "soidom/core/flow.hpp"

#include "soidom/base/strings.hpp"
#include "soidom/domino/exact.hpp"
#include "soidom/domino/postpass.hpp"
#include "soidom/domino/seqaware.hpp"

namespace soidom {

FlowResult run_flow(const Network& source, const FlowOptions& options) {
  FlowResult result;
  result.unate = make_unate(source, options.phase_assignment);

  MapperOptions mopts = options.mapper;
  mopts.engine = options.variant == FlowVariant::kSoiDominoMap
                     ? MappingEngine::kSoiDominoMap
                     : MappingEngine::kDominoMap;
  MappingResult mapped = map_to_domino(result.unate, mopts);
  result.dp_analyzer_mismatches = mapped.dp_analyzer_mismatches;
  result.netlist = std::move(mapped.netlist);

  switch (options.variant) {
    case FlowVariant::kDominoMap:
      insert_discharges(result.netlist, mopts.grounding, mopts.pending_model);
      break;
    case FlowVariant::kRsMap:
      rearrange_stacks(result.netlist, mopts.grounding, mopts.pending_model);
      break;
    case FlowVariant::kSoiDominoMap:
      break;  // discharges are part of the mapping
  }

  if (options.sequence_aware) {
    result.discharges_pruned =
        prune_unexcitable_discharges(result.netlist).points_pruned;
  }

  result.stats = compute_stats(result.netlist);
  result.structure =
      verify_structure(result.netlist, mopts.grounding, mopts.pending_model,
                       /*allow_unexcitable_unprotected=*/options.sequence_aware);
  if (options.verify_rounds > 0) {
    Rng rng(options.verify_seed);
    result.function = verify_function(result.netlist, source,
                                      options.verify_rounds, rng);
  }
  if (options.exact_equivalence) {
    result.exact =
        equivalent_exact(result.netlist, source, options.bdd_node_limit);
  }
  return result;
}

FlowResult run_flow(const BlifModel& model, const FlowOptions& options) {
  return run_flow(decompose(model, options.decompose), options);
}

FlowResult run_flow_file(const std::string& path, const FlowOptions& options) {
  return run_flow(parse_blif_file(path), options);
}

std::string summarize(const FlowResult& r) {
  std::string out = format(
      "gates=%d T_logic=%d T_disch=%d T_total=%d T_clock=%d levels=%d "
      "structure=%s function=%s",
      r.stats.num_gates, r.stats.t_logic, r.stats.t_disch, r.stats.t_total,
      r.stats.t_clock, r.stats.levels, r.structure.ok() ? "ok" : "FAIL",
      r.function.ok() ? "ok" : "FAIL");
  if (r.exact.has_value()) {
    out += format(" exact=%s", *r.exact ? "equivalent" : "DIFFERENT");
  }
  return out;
}

}  // namespace soidom
