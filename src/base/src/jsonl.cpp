#include "soidom/base/jsonl.hpp"

#include "soidom/base/contracts.hpp"
#include "soidom/base/hash.hpp"
#include "soidom/base/strings.hpp"

namespace soidom {

std::string jsonl_with_crc(const std::string& line) {
  SOIDOM_ASSERT(!line.empty() && line.back() == '}');
  const std::string body = line.substr(0, line.size() - 1);
  return body + format(R"(,"crc":"%08x"})", crc32(body));
}

JsonlCheck jsonl_check(std::string_view line) {
  const std::string_view needle = R"(,"crc":")";
  const std::size_t at = line.rfind(needle);
  if (at == std::string_view::npos) return JsonlCheck::kNoCrc;
  const std::size_t hex_at = at + needle.size();
  // Expect exactly 8 hex digits, a quote, and the closing brace.
  if (line.size() != hex_at + 10 || line[hex_at + 8] != '"' ||
      line[hex_at + 9] != '}') {
    return JsonlCheck::kCorrupt;
  }
  std::uint32_t recorded = 0;
  for (std::size_t i = hex_at; i < hex_at + 8; ++i) {
    const char c = line[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return JsonlCheck::kCorrupt;
    recorded = recorded * 16 + static_cast<std::uint32_t>(digit);
  }
  return crc32(line.substr(0, at)) == recorded ? JsonlCheck::kValid
                                               : JsonlCheck::kCorrupt;
}

}  // namespace soidom
