#include "soidom/base/contracts.hpp"

#include <cstdio>
#include <cstdlib>

namespace soidom::detail {

void assertion_failure(const char* expr, const char* file, int line,
                       const std::string& message) {
  std::fprintf(stderr, "soidom: assertion failed: %s at %s:%d%s%s\n", expr,
               file, line, message.empty() ? "" : " -- ", message.c_str());
  std::abort();
}

}  // namespace soidom::detail
