#include "soidom/base/signals.hpp"

#include <csignal>

#include <atomic>

namespace soidom {
namespace {

std::atomic<int> g_signal{0};
std::atomic<SignalHook> g_hook{nullptr};

void on_signal(int signum) {
  g_signal.store(signum, std::memory_order_relaxed);
  const SignalHook hook = g_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(signum);
  // Deliberately restore the default disposition (BSD semantics keep the
  // handler installed otherwise): a repeat of the same signal force-kills
  // a wedged run.  sigaction is async-signal-safe per POSIX.
  struct sigaction dfl;
  sigemptyset(&dfl.sa_mask);
  dfl.sa_handler = SIG_DFL;
  dfl.sa_flags = 0;
  sigaction(signum, &dfl, nullptr);
}

void arm(int signum) {
  struct sigaction sa;
  sigemptyset(&sa.sa_mask);
  // Block the sibling signal while the handler runs so an interleaved
  // SIGINT+SIGTERM pair cannot run two handlers concurrently.
  sigaddset(&sa.sa_mask, SIGINT);
  sigaddset(&sa.sa_mask, SIGTERM);
  sa.sa_handler = on_signal;
  sa.sa_flags = SA_RESTART;
  sigaction(signum, &sa, nullptr);
}

}  // namespace

void install_signal_handlers(SignalHook hook) {
  if (hook != nullptr) g_hook.store(hook, std::memory_order_release);
  arm(SIGINT);
  arm(SIGTERM);
}

int raw_signal_received() {
  return g_signal.load(std::memory_order_relaxed);
}

void reset_raw_signal_state_for_testing() {
  g_signal.store(0, std::memory_order_relaxed);
  install_signal_handlers(nullptr);
}

}  // namespace soidom
