#include "soidom/base/strings.hpp"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace soidom {

std::vector<std::string_view> split(std::string_view text,
                                    std::string_view seps) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && seps.find(text[i]) != std::string_view::npos) {
      ++i;
    }
    std::size_t j = i;
    while (j < text.size() && seps.find(text[j]) == std::string_view::npos) {
      ++j;
    }
    if (j > i) out.push_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const std::string_view ws = " \t\r\n";
  const auto b = text.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const auto e = text.find_last_not_of(ws);
  return text.substr(b, e - b + 1);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out += text[i];
      continue;
    }
    const char esc = text[++i];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 < text.size()) {
          unsigned value = 0;
          bool valid = true;
          for (int k = 1; k <= 4; ++k) {
            const char c = text[i + static_cast<std::size_t>(k)];
            value <<= 4;
            if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
            else valid = false;
          }
          if (valid && value < 0x80) {  // json_escape only emits ASCII
            out += static_cast<char>(value);
            i += 4;
            break;
          }
        }
        out += "\\u";  // malformed: keep verbatim
        break;
      }
      default:
        out += '\\';
        out += esc;
    }
  }
  return out;
}

std::string percent(double numerator, double denominator) {
  if (denominator == 0.0) return "0.00";
  return format("%.2f", 100.0 * numerator / denominator);
}

bool parse_int_strict(std::string_view text, int* out) {
  if (text.empty()) return false;
  std::size_t i = 0;
  const bool negative = text[0] == '-';
  if (negative) {
    if (text.size() == 1) return false;
    i = 1;
  }
  long long value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 0x7fffffffLL + (negative ? 1 : 0)) return false;
  }
  *out = static_cast<int>(negative ? -value : value);
  return true;
}

bool json_find_string(std::string_view line, std::string_view key,
                      std::string* out) {
  const std::string needle =
      format("\"%.*s\":\"", int(key.size()), key.data());
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  std::size_t i = at + needle.size();
  std::string raw;
  while (i < line.size()) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      raw += line[i];
      raw += line[i + 1];
      i += 2;
      continue;
    }
    if (line[i] == '"') {
      *out = json_unescape(raw);
      return true;
    }
    raw += line[i++];
  }
  return false;  // unterminated string: torn line
}

bool json_find_int64(std::string_view line, std::string_view key,
                     long long* out) {
  const std::string needle = format("\"%.*s\":", int(key.size()), key.data());
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  std::size_t i = at + needle.size();
  bool negative = false;
  if (i < line.size() && line[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  long long value = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + (line[i] - '0');
    ++i;
  }
  *out = negative ? -value : value;
  return true;
}

bool json_find_int(std::string_view line, std::string_view key, int* out) {
  long long value = 0;
  if (!json_find_int64(line, key, &value)) return false;
  *out = static_cast<int>(value);
  return true;
}

bool parse_double_strict(std::string_view text, double* out) {
  if (text.empty()) return false;
  // std::strtod accepts "inf"/"nan"/hex floats and leading whitespace;
  // reject those up front so the accepted grammar stays plain decimal.
  for (const char c : text) {
    const bool decimal = (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                         c == '+' || c == 'e' || c == 'E';
    if (!decimal) return false;
  }
  const std::string buffer(text);  // strtod needs NUL termination
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  if (errno == ERANGE) return false;
  *out = value;
  return true;
}

}  // namespace soidom
