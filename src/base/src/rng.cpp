#include "soidom/base/rng.hpp"

#include "soidom/base/contracts.hpp"

namespace soidom {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 guarantees the state is never all-zero.
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  SOIDOM_ASSERT(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  SOIDOM_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::chance(std::uint64_t numer, std::uint64_t denom) noexcept {
  SOIDOM_ASSERT(denom != 0);
  return next_below(denom) < numer;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace soidom
