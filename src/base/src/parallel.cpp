#include "soidom/base/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "soidom/base/contracts.hpp"

namespace soidom {

unsigned hardware_thread_count() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

bool hardware_concurrency_detected() noexcept {
  return std::thread::hardware_concurrency() != 0;
}

struct ThreadPool::Impl {
  // Batch state.  `generation` bumps once per run()/run_graph(); sleeping
  // workers wake when it changes, drain the batch, then report done.
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  unsigned active = 0;
  bool shutdown = false;

  // --- flat-range batches (run) -----------------------------------------
  std::size_t num_items = 0;
  const std::function<void(std::size_t, unsigned)>* fn = nullptr;
  std::atomic<std::size_t> next{0};

  // --- task-graph batches (run_graph) -----------------------------------
  /// One worker's ready-task deque.  The owner pushes/pops at the back
  /// (LIFO keeps freshly released successors hot in cache); thieves take
  /// from the front, which tends to hold the oldest — and in the mapper's
  /// topologically packed graphs, the widest — subgraphs.
  struct WorkDeque {
    std::mutex mutex;
    std::deque<std::uint32_t> tasks;
  };
  bool graph_mode = false;
  const std::vector<std::vector<std::uint32_t>>* successors = nullptr;
  std::vector<std::atomic<std::uint32_t>> deps;
  std::vector<WorkDeque> deques;
  std::atomic<std::size_t> remaining{0};
  std::atomic<std::size_t> pushed{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<unsigned> running{0};
  std::atomic<bool> aborted{false};
  std::atomic<unsigned> sleepers{0};
  std::mutex idle_mutex;
  std::condition_variable idle_cv;

  // First failure by item index, so rethrow order is schedule-independent.
  std::mutex error_mutex;
  std::size_t error_item = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  std::vector<std::thread> workers;

  unsigned pool_size() const {
    return static_cast<unsigned>(workers.size()) + 1;
  }

  bool skip_after_error(std::size_t item) {
    std::lock_guard<std::mutex> lock(error_mutex);
    return error && item > error_item;
  }

  void record_error(std::size_t item) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!error || item < error_item) {
      error = std::current_exception();
      error_item = item;
    }
  }

  void drain(unsigned worker) {
    while (true) {
      const std::size_t item = next.fetch_add(1, std::memory_order_relaxed);
      if (item >= num_items) return;
      // After a failure, claim-and-skip the remaining items: the batch
      // still terminates and the lowest-index error wins.
      if (skip_after_error(item)) continue;
      try {
        (*fn)(item, worker);
      } catch (...) {
        record_error(item);
      }
    }
  }

  // --- task-graph execution ---------------------------------------------

  void push_task(unsigned worker, std::uint32_t task) {
    {
      std::lock_guard<std::mutex> lock(deques[worker].mutex);
      deques[worker].tasks.push_back(task);
    }
    pushed.fetch_add(1, std::memory_order_relaxed);
    if (sleepers.load(std::memory_order_relaxed) > 0) idle_cv.notify_one();
  }

  bool pop_or_steal(unsigned worker, std::uint32_t* task) {
    {
      std::lock_guard<std::mutex> lock(deques[worker].mutex);
      if (!deques[worker].tasks.empty()) {
        *task = deques[worker].tasks.back();
        deques[worker].tasks.pop_back();
        return true;
      }
    }
    const unsigned n = pool_size();
    for (unsigned i = 1; i < n; ++i) {
      WorkDeque& victim = deques[(worker + i) % n];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        *task = victim.tasks.front();
        victim.tasks.pop_front();
        return true;
      }
    }
    return false;
  }

  void execute_task(std::uint32_t task, unsigned worker) {
    running.fetch_add(1, std::memory_order_relaxed);
    if (!skip_after_error(task)) {
      try {
        (*fn)(task, worker);
      } catch (...) {
        record_error(task);
      }
    }
    // Dependents are released even after a failure so the graph always
    // drains; the skip rule above keeps post-error work bounded.  acq_rel
    // chains every predecessor's writes into the successor's execution.
    for (const std::uint32_t s : (*successors)[task]) {
      if (deps[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        push_task(worker, s);
      }
    }
    running.fetch_sub(1, std::memory_order_relaxed);
    completed.fetch_add(1, std::memory_order_relaxed);
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      idle_cv.notify_all();
    }
  }

  /// True when the graph cannot make further progress: nothing ready,
  /// nothing running, yet tasks remain (a dependency cycle — a caller
  /// contract violation).  Only the main thread polls this.
  bool stuck() {
    if (remaining.load(std::memory_order_acquire) == 0) return false;
    if (running.load(std::memory_order_acquire) != 0) return false;
    if (completed.load(std::memory_order_acquire) !=
        pushed.load(std::memory_order_acquire)) {
      return false;
    }
    for (WorkDeque& d : deques) {
      std::lock_guard<std::mutex> lock(d.mutex);
      if (!d.tasks.empty()) return false;
    }
    return remaining.load(std::memory_order_acquire) != 0 &&
           running.load(std::memory_order_acquire) == 0;
  }

  void graph_drain(unsigned worker) {
    while (true) {
      std::uint32_t task = 0;
      if (pop_or_steal(worker, &task)) {
        execute_task(task, worker);
        continue;
      }
      if (remaining.load(std::memory_order_acquire) == 0 ||
          aborted.load(std::memory_order_relaxed)) {
        return;
      }
      if (worker == 0 && stuck()) {
        aborted.store(true, std::memory_order_relaxed);
        idle_cv.notify_all();
        return;
      }
      // Bounded sleep: a missed notify costs at most one timeout, never a
      // deadlock.
      std::unique_lock<std::mutex> lock(idle_mutex);
      sleepers.fetch_add(1, std::memory_order_relaxed);
      idle_cv.wait_for(lock, std::chrono::microseconds(200));
      sleepers.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void worker_loop(unsigned worker) {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
      }
      if (graph_mode) {
        graph_drain(worker);
      } else {
        drain(worker);
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--active == 0) done_cv.notify_all();
      }
    }
  }

  void start_batch_and_join(unsigned caller_worker) {
    if (!workers.empty()) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        active = static_cast<unsigned>(workers.size());
        ++generation;
      }
      work_cv.notify_all();
    }
    if (graph_mode) {
      graph_drain(caller_worker);
    } else {
      drain(caller_worker);
    }
    if (!workers.empty()) {
      std::unique_lock<std::mutex> lock(mutex);
      done_cv.wait(lock, [&] { return active == 0; });
    }
  }
};

ThreadPool::ThreadPool(unsigned num_threads) : impl_(new Impl) {
  if (num_threads == 0) num_threads = hardware_thread_count();
  for (unsigned w = 1; w < num_threads; ++w) {
    impl_->workers.emplace_back([this, w] { impl_->worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

unsigned ThreadPool::size() const { return impl_->pool_size(); }

void ThreadPool::run(
    std::size_t num_items,
    const std::function<void(std::size_t item, unsigned worker)>& fn) {
  if (num_items == 0) return;
  impl_->graph_mode = false;
  impl_->num_items = num_items;
  impl_->fn = &fn;
  impl_->next.store(0, std::memory_order_relaxed);
  impl_->error = nullptr;
  impl_->error_item = std::numeric_limits<std::size_t>::max();
  impl_->start_batch_and_join(0);
  impl_->fn = nullptr;
  if (impl_->error) std::rethrow_exception(impl_->error);
}

void ThreadPool::run_graph(
    std::size_t num_tasks,
    const std::vector<std::vector<std::uint32_t>>& successors,
    const std::function<void(std::size_t task, unsigned worker)>& fn) {
  if (num_tasks == 0) return;
  SOIDOM_REQUIRE(successors.size() == num_tasks,
                 "run_graph: successors list size must equal num_tasks");

  Impl& im = *impl_;
  im.graph_mode = true;
  im.fn = &fn;
  im.successors = &successors;
  im.deps = std::vector<std::atomic<std::uint32_t>>(num_tasks);
  for (const std::vector<std::uint32_t>& succ : successors) {
    for (const std::uint32_t s : succ) {
      SOIDOM_REQUIRE(s < num_tasks, "run_graph: successor id out of range");
      im.deps[s].fetch_add(1, std::memory_order_relaxed);
    }
  }
  im.deques = std::vector<Impl::WorkDeque>(im.pool_size());
  im.remaining.store(num_tasks, std::memory_order_relaxed);
  im.pushed.store(0, std::memory_order_relaxed);
  im.completed.store(0, std::memory_order_relaxed);
  im.running.store(0, std::memory_order_relaxed);
  im.aborted.store(false, std::memory_order_relaxed);
  im.error = nullptr;
  im.error_item = std::numeric_limits<std::size_t>::max();

  // Seed the initially ready tasks round-robin across the deques so every
  // worker starts with local work (the distribution affects only load
  // balance, never results).
  unsigned seed_worker = 0;
  for (std::uint32_t t = 0; t < num_tasks; ++t) {
    if (im.deps[t].load(std::memory_order_relaxed) == 0) {
      im.push_task(seed_worker, t);
      seed_worker = (seed_worker + 1) % im.pool_size();
    }
  }

  im.start_batch_and_join(0);

  im.fn = nullptr;
  im.successors = nullptr;
  im.graph_mode = false;
  const bool was_aborted = im.aborted.load(std::memory_order_relaxed);
  if (im.error) std::rethrow_exception(im.error);
  SOIDOM_REQUIRE(!was_aborted,
                 "run_graph: task graph did not drain (dependency cycle?)");
}

}  // namespace soidom
