#include "soidom/base/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "soidom/base/contracts.hpp"

namespace soidom {

unsigned hardware_thread_count() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

struct ThreadPool::Impl {
  // Batch state.  `generation` bumps once per run(); sleeping workers wake
  // when it changes, drain the shared item counter, then report done.
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  unsigned active = 0;
  bool shutdown = false;

  std::size_t num_items = 0;
  const std::function<void(std::size_t, unsigned)>* fn = nullptr;
  std::atomic<std::size_t> next{0};

  // First failure by item index, so rethrow order is schedule-independent.
  std::mutex error_mutex;
  std::size_t error_item = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  std::vector<std::thread> workers;

  void drain(unsigned worker) {
    while (true) {
      const std::size_t item = next.fetch_add(1, std::memory_order_relaxed);
      if (item >= num_items) return;
      // After a failure, claim-and-skip the remaining items: the batch
      // still terminates and the lowest-index error wins.
      {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (error && item > error_item) continue;
      }
      try {
        (*fn)(item, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error || item < error_item) {
          error = std::current_exception();
          error_item = item;
        }
      }
    }
  }

  void worker_loop(unsigned worker) {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
      }
      drain(worker);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--active == 0) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned num_threads) : impl_(new Impl) {
  if (num_threads == 0) num_threads = hardware_thread_count();
  for (unsigned w = 1; w < num_threads; ++w) {
    impl_->workers.emplace_back([this, w] { impl_->worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

unsigned ThreadPool::size() const {
  return static_cast<unsigned>(impl_->workers.size()) + 1;
}

void ThreadPool::run(
    std::size_t num_items,
    const std::function<void(std::size_t item, unsigned worker)>& fn) {
  if (num_items == 0) return;
  impl_->num_items = num_items;
  impl_->fn = &fn;
  impl_->next.store(0, std::memory_order_relaxed);
  impl_->error = nullptr;
  impl_->error_item = std::numeric_limits<std::size_t>::max();
  if (!impl_->workers.empty()) {
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->active = static_cast<unsigned>(impl_->workers.size());
      ++impl_->generation;
    }
    impl_->work_cv.notify_all();
  }
  impl_->drain(0);  // the caller is worker 0
  if (!impl_->workers.empty()) {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] { return impl_->active == 0; });
  }
  impl_->fn = nullptr;
  if (impl_->error) std::rethrow_exception(impl_->error);
}

}  // namespace soidom
