#include "soidom/base/fileio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "soidom/base/contracts.hpp"
#include "soidom/base/strings.hpp"

namespace soidom {
namespace {

/// Write the whole buffer, retrying on EINTR / short writes.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync the directory containing `path` so the rename itself is durable.
/// Best-effort: some filesystems reject O_DIRECTORY fsync; the file data
/// is already synced, so a failure here only risks losing the *rename*
/// after a power cut, never exposing a torn file.
void sync_parent_dir(const std::string& path) {
  const int dfd = ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return;
  (void)::fsync(dfd);
  ::close(dfd);
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = format("%s.tmp.%d", path.c_str(), ::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw Error(format("cannot create temporary '%s': %s", tmp.c_str(),
                       std::strerror(errno)));
  }
  const bool wrote = write_all(fd, content.data(), content.size());
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    throw Error(format("cannot write '%s': %s", tmp.c_str(),
                       std::strerror(saved)));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    throw Error(format("cannot rename '%s' to '%s': %s", tmp.c_str(),
                       path.c_str(), std::strerror(saved)));
  }
  sync_parent_dir(path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error(format("cannot open '%s'", path.c_str()));
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

AppendFile::AppendFile(const std::string& path, bool durable)
    : path_(path), durable_(durable) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw Error(format("cannot open journal '%s': %s", path.c_str(),
                       std::strerror(errno)));
  }
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

void AppendFile::append_line(std::string_view line) {
  std::string buffer;
  buffer.reserve(line.size() + 1);
  buffer.append(line);
  buffer.push_back('\n');
  if (!write_all(fd_, buffer.data(), buffer.size())) {
    throw Error(format("append to '%s' failed: %s", path_.c_str(),
                       std::strerror(errno)));
  }
  if (durable_ && ::fsync(fd_) != 0) {
    throw Error(format("fsync of '%s' failed: %s", path_.c_str(),
                       std::strerror(errno)));
  }
}

}  // namespace soidom
