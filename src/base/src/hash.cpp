#include "soidom/base/hash.hpp"

#include <array>

namespace soidom {
namespace {

/// Table for the reflected polynomial 0xEDB88320, built once at startup.
/// A software table keeps the function portable (no SSE4.2 requirement)
/// and the journals it protects are small relative to mapping time.
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char ch : data) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x00000100000001B3ull;
  }
  return h;
}

}  // namespace soidom
