/// \file jsonl.hpp
/// The checksummed append-only JSONL record idiom shared by the batch
/// run journal (batch/journal.hpp) and the serve cone-cache spill
/// (serve/cache.hpp).
///
/// A record is one flat JSON object per line.  jsonl_with_crc() turns
/// `{...}` into `{...,"crc":"xxxxxxxx"}` where the CRC-32 covers the
/// line text before the crc field; jsonl_check() classifies a line read
/// back.  Appends go through fileio.hpp AppendFile (single write(2) +
/// fsync), so a crash tears at most the final line — and with the
/// checksum, a tear *anywhere* in a record (or bit rot at rest) is
/// detected instead of being half-parsed.
#pragma once

#include <string>
#include <string_view>

namespace soidom {

/// Append the integrity field: `{...}` -> `{...,"crc":"xxxxxxxx"}`.
/// Requires a non-empty line ending in '}'.
std::string jsonl_with_crc(const std::string& line);

/// Integrity classification of one JSONL line.
enum class JsonlCheck {
  kNoCrc,    ///< no "crc" field (legacy record or torn line)
  kValid,    ///< checksum present and correct
  kCorrupt,  ///< checksum present but wrong, or malformed
};

/// Locate and verify the trailing crc field.  Searches from the end:
/// json_escape turns every '"' inside string values into '\"', so the
/// literal `,"crc":"` needle can only be the appended field.
JsonlCheck jsonl_check(std::string_view line);

}  // namespace soidom
