/// \file strings.hpp
/// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace soidom {

/// Split on any run of the characters in `seps`; empty tokens are dropped.
std::vector<std::string_view> split(std::string_view text,
                                    std::string_view seps = " \t");

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// JSON string-literal escaping (quotes, backslash, control characters);
/// returns the escaped body without surrounding quotes.
std::string json_escape(std::string_view text);

/// Inverse of json_escape for the escapes it emits (\" \\ \n \r \t
/// \uXXXX); unknown escapes pass through verbatim.  Used by the batch
/// journal loader to round-trip its own JSONL records.
std::string json_unescape(std::string_view text);

/// Format a ratio as a percentage with two decimals, e.g. "53.00".
std::string percent(double numerator, double denominator);

/// Extract the string value of `"key":"..."` from one flat JSON record
/// this library wrote itself (keys are never escaped, values via
/// json_escape).  Returns false when the key is absent or the string is
/// unterminated (a torn line).  Not a general JSON parser: it is the
/// shared field extractor of the JSONL journal / wire formats (batch
/// journal, serve protocol), which never nest objects inside values.
bool json_find_string(std::string_view line, std::string_view key,
                      std::string* out);

/// Extract the integer value of `"key":N`.  Returns false when absent or
/// not followed by a decimal integer.
bool json_find_int(std::string_view line, std::string_view key, int* out);

/// 64-bit variant of json_find_int (deadlines, byte counts).
bool json_find_int64(std::string_view line, std::string_view key,
                     long long* out);

/// Strict decimal-integer parse for CLI option values: the whole of `text`
/// must be a base-10 integer fitting in int (optional leading '-').
/// Returns false on empty input, trailing junk, or overflow — unlike
/// std::atoi, which silently yields 0 for garbage (so "--threads=max"
/// would silently mean "auto" instead of failing).
bool parse_int_strict(std::string_view text, int* out);

/// Strict floating-point parse for CLI option values: the whole of `text`
/// must be a finite decimal number ("1", "-0.5", "2.5e-3").  Returns
/// false on empty input, trailing junk, inf/nan, or out-of-range —
/// unlike std::atof, which silently yields 0.0 for garbage (so
/// "--csa-margin=high" would silently mean "no margin" instead of
/// failing).
bool parse_double_strict(std::string_view text, double* out);

}  // namespace soidom
