/// \file strings.hpp
/// Small string helpers shared across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace soidom {

/// Split on any run of the characters in `seps`; empty tokens are dropped.
std::vector<std::string_view> split(std::string_view text,
                                    std::string_view seps = " \t");

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// JSON string-literal escaping (quotes, backslash, control characters);
/// returns the escaped body without surrounding quotes.
std::string json_escape(std::string_view text);

/// Inverse of json_escape for the escapes it emits (\" \\ \n \r \t
/// \uXXXX); unknown escapes pass through verbatim.  Used by the batch
/// journal loader to round-trip its own JSONL records.
std::string json_unescape(std::string_view text);

/// Format a ratio as a percentage with two decimals, e.g. "53.00".
std::string percent(double numerator, double denominator);

/// Strict decimal-integer parse for CLI option values: the whole of `text`
/// must be a base-10 integer fitting in int (optional leading '-').
/// Returns false on empty input, trailing junk, or overflow — unlike
/// std::atoi, which silently yields 0 for garbage (so "--threads=max"
/// would silently mean "auto" instead of failing).
bool parse_int_strict(std::string_view text, int* out);

/// Strict floating-point parse for CLI option values: the whole of `text`
/// must be a finite decimal number ("1", "-0.5", "2.5e-3").  Returns
/// false on empty input, trailing junk, inf/nan, or out-of-range —
/// unlike std::atof, which silently yields 0.0 for garbage (so
/// "--csa-margin=high" would silently mean "no margin" instead of
/// failing).
bool parse_double_strict(std::string_view text, double* out);

}  // namespace soidom
