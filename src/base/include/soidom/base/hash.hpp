/// \file hash.hpp
/// Small non-cryptographic hashes shared across the library.
///
/// crc32() is the IEEE 802.3 reflected CRC-32 (the one zlib, gzip and PNG
/// use) — the per-record integrity check for the append-only journals
/// (batch run journal, serve cone-cache spill).  fnv1a64() is FNV-1a,
/// used where a cheap well-mixed 64-bit content hash is wanted (cache
/// sharding and indexing).  Neither is collision-resistant against an
/// adversary; callers that must never act on a colliding key store and
/// compare the full key text (see docs/SERVE.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace soidom {

/// IEEE reflected CRC-32 over `data`, seeded so that crc32("") == 0.
/// `seed` allows incremental computation: crc32(b, crc32(a)) ==
/// crc32(a+b).
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// 64-bit FNV-1a over `data`.  `seed` defaults to the FNV offset basis;
/// passing a previous result chains the hash over multiple fragments.
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace soidom
