/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All randomized components of the library (benchmark-circuit generation,
/// random-vector simulation, property tests) draw from this generator so
/// that every run of every binary is bit-reproducible.  xoshiro256** is
/// used: tiny state, excellent statistical quality, and — unlike
/// std::mt19937 — an output sequence we control across standard libraries.
#pragma once

#include <cstdint>

namespace soidom {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform value in [0, bound); bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli draw with probability numer/denom.
  bool chance(std::uint64_t numer, std::uint64_t denom) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Derive an independent generator (for parallel / per-item streams).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace soidom
