/// \file fileio.hpp
/// Crash-safe file output shared by every artifact emitter.
///
/// Two primitives cover the library's durability needs:
///
///  * write_file_atomic — write-temp, fsync, rename.  A reader (or a
///    process resuming after a crash) sees either the complete previous
///    content or the complete new content, never a truncated artifact.
///    All finished artifacts (.dnl, SARIF, SPICE, Verilog, batch
///    manifests) go through this.
///  * AppendFile — an append-only log with whole-line writes and an
///    fsync per line, used for the batch run journal (JSONL).  After a
///    kill, at most the final line is torn; readers must tolerate (and
///    ignore) one trailing partial line.
#pragma once

#include <string>
#include <string_view>

namespace soidom {

/// Atomically replace `path` with `content`: write to a sibling
/// temporary, fsync it, then rename over `path`.  Throws soidom::Error
/// (and removes the temporary) on any failure.
void write_file_atomic(const std::string& path, std::string_view content);

/// Read the whole file; throws soidom::Error when it cannot be opened.
std::string read_file(const std::string& path);

/// Append-only log file with durable whole-line appends.
class AppendFile {
 public:
  /// Opens (creating if needed) `path` for appending; throws on failure.
  /// `durable` controls the per-append fsync (on for journals; tests
  /// that churn thousands of lines may turn it off).
  explicit AppendFile(const std::string& path, bool durable = true);
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Write `line` plus a trailing '\n' in one write(2) call, then fsync
  /// when durable.  Throws soidom::Error on a short or failed write.
  void append_line(std::string_view line);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  bool durable_ = true;
};

}  // namespace soidom
