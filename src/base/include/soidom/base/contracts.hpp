/// \file contracts.hpp
/// Precondition / invariant checking and the library-wide error type.
///
/// Conventions (see DESIGN.md):
///  * Recoverable, input-dependent failures (bad BLIF text, infeasible
///    mapping limits, ...) throw soidom::Error with a descriptive message.
///  * Programming-logic violations use SOIDOM_ASSERT and abort; they are
///    compiled in all build types because the mapper's correctness
///    arguments rest on these invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace soidom {

/// Exception thrown for all recoverable, user-visible failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

namespace detail {
[[noreturn]] void assertion_failure(const char* expr, const char* file,
                                    int line, const std::string& message);
}  // namespace detail

}  // namespace soidom

/// Internal invariant check; active in every build type.
#define SOIDOM_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::soidom::detail::assertion_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                    \
  } while (false)

/// Internal invariant check with an explanatory message.
#define SOIDOM_ASSERT_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::soidom::detail::assertion_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)

/// Precondition on caller-supplied data: throws soidom::Error on failure.
#define SOIDOM_REQUIRE(expr, msg)        \
  do {                                   \
    if (!(expr)) {                       \
      throw ::soidom::Error(msg);        \
    }                                    \
  } while (false)
