/// \file parallel.hpp
/// A small persistent worker pool for wavefront-style parallel loops.
///
/// The pool is built once per client (e.g. one mapper run) and reused for
/// many short batches — one batch per topological level in the mapper —
/// so the thread-creation cost is paid once, not per level.  Work items
/// inside a batch are claimed dynamically from a shared atomic counter;
/// callers that need deterministic output must therefore write results
/// into per-item slots and merge them in item order afterwards.
///
/// Exceptions thrown by the callback are captured per item; `run` rethrows
/// the one with the LOWEST item index after the batch drains, so error
/// reporting is reproducible regardless of thread scheduling.
#pragma once

#include <cstddef>
#include <functional>

namespace soidom {

/// Number of worker threads `ThreadPool{0}` resolves to (hardware
/// concurrency, at least 1).
unsigned hardware_thread_count() noexcept;

class ThreadPool {
 public:
  /// `num_threads` total workers including the calling thread; 0 = auto
  /// (hardware concurrency).  A pool of size 1 spawns no threads and runs
  /// every batch inline on the caller.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const;

  /// Run `fn(item, worker)` for every item in [0, num_items), blocking
  /// until all items finish.  `worker` is a stable id in [0, size()); the
  /// calling thread participates as worker 0.  Not reentrant.
  void run(std::size_t num_items,
           const std::function<void(std::size_t item, unsigned worker)>& fn);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace soidom
