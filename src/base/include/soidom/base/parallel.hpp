/// \file parallel.hpp
/// A small persistent worker pool for parallel loops and dependency-
/// counting task graphs.
///
/// The pool is built once per client (e.g. one mapper run) and reused for
/// many batches, so the thread-creation cost is paid once.  Two execution
/// shapes are offered:
///
///  * `run`: a flat index range.  Work items are claimed dynamically from
///    a shared atomic counter; callers that need deterministic output must
///    write results into per-item slots and merge them in item order
///    afterwards.
///  * `run_graph`: a DAG of tasks.  Every task carries an atomic
///    unresolved-dependency counter and becomes *ready* the moment the
///    counter hits zero; ready tasks go onto the finishing worker's local
///    deque and idle workers steal from their peers, so no barrier is ever
///    taken between dependency levels.  Callers that need deterministic
///    output must make each task's result a pure function of its
///    dependencies' results (slot-per-task writes), in which case the
///    output is independent of the stealing schedule.
///
/// Exceptions thrown by the callback are captured per item/task; the batch
/// still drains (dependents of a failed task are released, but tasks with
/// a higher index than the recorded failure are skipped) and the failure
/// with the LOWEST index is rethrown after the drain, so error reporting
/// is reproducible regardless of thread scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace soidom {

/// Number of worker threads `ThreadPool{0}` resolves to (hardware
/// concurrency, at least 1).
unsigned hardware_thread_count() noexcept;

/// True when std::thread::hardware_concurrency() reported a usable
/// (nonzero) value; false when it returned 0 — "unknown" per the standard
/// — and hardware_thread_count() fell back to 1.  Benchmarks record this
/// flag so a reported concurrency of 1 can be told apart from an
/// undetectable one.
bool hardware_concurrency_detected() noexcept;

class ThreadPool {
 public:
  /// `num_threads` total workers including the calling thread; 0 = auto
  /// (hardware concurrency).  A pool of size 1 spawns no threads and runs
  /// every batch inline on the caller.
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const;

  /// Run `fn(item, worker)` for every item in [0, num_items), blocking
  /// until all items finish.  `worker` is a stable id in [0, size()); the
  /// calling thread participates as worker 0.  Not reentrant.
  void run(std::size_t num_items,
           const std::function<void(std::size_t item, unsigned worker)>& fn);

  /// Run `fn(task, worker)` for every task in [0, num_tasks) respecting
  /// the dependency DAG given as successor lists: `successors[t]` holds
  /// the tasks that may only start after `t` finished (in-degrees are
  /// derived internally).  Blocks until the graph drains.  Edges must
  /// form a DAG; a cycle leaves its tasks unreachable, which is reported
  /// as a contract violation after the reachable part drains.  The
  /// calling thread participates as worker 0.  Not reentrant (neither
  /// with itself nor with run()).
  ///
  /// Completion of task `t` happens-before execution of every successor
  /// (acq_rel on the dependency counters), so slot-per-task result
  /// arrays need no additional synchronization.
  void run_graph(
      std::size_t num_tasks,
      const std::vector<std::vector<std::uint32_t>>& successors,
      const std::function<void(std::size_t task, unsigned worker)>& fn);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace soidom
