/// \file signals.hpp
/// One audited sigaction() installation for graceful SIGINT/SIGTERM,
/// shared by every front end (blif2domino, asic_flow, soidom_batch,
/// soidom_serve) via soidom/batch/signals.hpp.
///
/// The previous per-main std::signal() installation had two races:
/// System-V style handler reset (on some platforms the disposition
/// reverts to SIG_DFL *before* the handler runs, so two quick signals
/// could kill the process without flushing journals), and interrupted
/// slow syscalls (without SA_RESTART, a SIGINT during a blocking
/// write(2) to the journal surfaces as a spurious EINTR failure at a
/// random call site).  sigaction() with SA_RESTART fixes both: the
/// disposition stays installed until we deliberately restore SIG_DFL,
/// and interruptible syscalls resume — cancellation is delivered
/// cooperatively through the hook (which trips a CancelToken polled at
/// guard checkpoints), never by torn I/O.  Event loops that must wake
/// up promptly (the serve accept loop) poll with short timeouts instead
/// of relying on EINTR.
///
/// The handler itself is async-signal-safe: it records the signal
/// number, invokes the registered hook (which must itself be
/// async-signal-safe — an atomic store), and re-installs SIG_DFL so a
/// second signal kills the process the usual way.
#pragma once

namespace soidom {

/// Async-signal-safe callback invoked from the handler with the signal
/// number.  Must only perform lock-free operations (atomic stores).
using SignalHook = void (*)(int signum);

/// Idempotently install SIGINT/SIGTERM handlers with SA_RESTART.
/// `hook` may be null; a non-null hook replaces the previous one (the
/// last registration wins process-wide).
void install_signal_handlers(SignalHook hook);

/// Signal number recorded by the handler so far, or 0.
int raw_signal_received();

/// Testing hook: clear the recorded signal and re-arm the handlers with
/// the current hook.
void reset_raw_signal_state_for_testing();

}  // namespace soidom
