#include "soidom/guard/fault.hpp"

#include "soidom/base/strings.hpp"

namespace soidom {
namespace {

thread_local FaultInjector* g_injector = nullptr;

}  // namespace

FaultInjector FaultInjector::fail_at(FlowStage stage, int hit) {
  FaultInjector f;
  f.target_ = stage;
  f.target_hit_ = hit;
  return f;
}

FaultInjector FaultInjector::random(std::uint64_t seed, std::uint64_t numer,
                                    std::uint64_t denom) {
  FaultInjector f;
  f.randomized_ = true;
  f.rng_ = Rng(seed);
  f.numer_ = numer;
  f.denom_ = denom;
  return f;
}

FaultInjector::FaultInjector(const FaultInjector& other)
    : target_(other.target_),
      target_hit_(other.target_hit_),
      randomized_(other.randomized_),
      rng_(other.rng_),
      numer_(other.numer_),
      denom_(other.denom_) {
  for (std::size_t s = 0; s < kFlowStageCount; ++s) {
    hits_[s].store(other.hits_[s].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
}

FaultInjector& FaultInjector::operator=(const FaultInjector& other) {
  if (this == &other) return *this;
  target_ = other.target_;
  target_hit_ = other.target_hit_;
  randomized_ = other.randomized_;
  rng_ = other.rng_;
  numer_ = other.numer_;
  denom_ = other.denom_;
  for (std::size_t s = 0; s < kFlowStageCount; ++s) {
    hits_[s].store(other.hits_[s].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  return *this;
}

bool FaultInjector::should_fail(FlowStage stage) {
  const int hit =
      hits_[static_cast<std::size_t>(stage)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  if (randomized_) {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    return rng_.chance(numer_, denom_);
  }
  return stage == target_ && hit == target_hit_;
}

FaultScope::FaultScope(FaultInjector& injector) : previous_(g_injector) {
  g_injector = &injector;
}

FaultScope::~FaultScope() { g_injector = previous_; }

FaultInjector* current_fault_injector() noexcept { return g_injector; }

namespace detail {

void fault_probe(FlowStage stage) {
  if (g_injector != nullptr && g_injector->should_fail(stage)) {
    throw GuardError(
        ErrorCode::kFaultInjected, stage,
        format("injected fault at %s probe", flow_stage_name(stage)));
  }
}

}  // namespace detail
}  // namespace soidom
