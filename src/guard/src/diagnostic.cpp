#include "soidom/guard/diagnostic.hpp"

#include "soidom/base/strings.hpp"

namespace soidom {

const char* flow_stage_name(FlowStage stage) {
  switch (stage) {
    case FlowStage::kNone: return "none";
    case FlowStage::kParse: return "parse";
    case FlowStage::kValidate: return "validate";
    case FlowStage::kDecompose: return "decompose";
    case FlowStage::kUnate: return "unate";
    case FlowStage::kMap: return "map";
    case FlowStage::kPostPass: return "postpass";
    case FlowStage::kSeqAware: return "seqaware";
    case FlowStage::kVerifyStructure: return "verify_structure";
    case FlowStage::kLint: return "lint";
    case FlowStage::kCsa: return "csa";
    case FlowStage::kRace: return "race";
    case FlowStage::kProve: return "prove";
    case FlowStage::kVerifyFunction: return "verify_function";
    case FlowStage::kExact: return "exact";
    case FlowStage::kBatchJournal: return "batch_journal";
    case FlowStage::kBatchSpawn: return "batch_spawn";
    case FlowStage::kBatchWatchdog: return "batch_watchdog";
    case FlowStage::kServeAccept: return "serve_accept";
    case FlowStage::kServeCacheRead: return "serve_cache_read";
    case FlowStage::kServeCacheSpill: return "serve_cache_spill";
    case FlowStage::kServeDrain: return "serve_drain";
  }
  return "unknown";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kInvalidOptions: return "invalid_options";
    case ErrorCode::kInfeasibleLimits: return "infeasible_limits";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kBudgetExceeded: return "budget_exceeded";
    case ErrorCode::kBddNodeLimit: return "bdd_node_limit";
    case ErrorCode::kVerificationFailed: return "verification_failed";
    case ErrorCode::kFaultInjected: return "fault_injected";
    case ErrorCode::kProofTimeout: return "proof_timeout";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out = format("%s: %s: %s", flow_stage_name(stage),
                           error_code_name(code), message.c_str());
  if (!context.empty()) {
    out += " (";
    for (std::size_t i = 0; i < context.size(); ++i) {
      if (i) out += "; ";
      out += context[i];
    }
    out += ")";
  }
  return out;
}

std::string Diagnostic::to_json() const {
  std::string out = format(R"({"code":"%s","stage":"%s","message":"%s")",
                           error_code_name(code), flow_stage_name(stage),
                           json_escape(message).c_str());
  out += ",\"context\":[";
  for (std::size_t i = 0; i < context.size(); ++i) {
    if (i) out += ",";
    out += "\"" + json_escape(context[i]) + "\"";
  }
  out += "]}";
  return out;
}

int cli_exit_code(const Diagnostic& diagnostic) {
  switch (diagnostic.code) {
    case ErrorCode::kParseError: return 2;
    case ErrorCode::kInfeasibleLimits: return 3;
    case ErrorCode::kVerificationFailed: return 4;
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kCancelled:
    case ErrorCode::kBudgetExceeded:
    case ErrorCode::kBddNodeLimit:
    case ErrorCode::kProofTimeout: return 5;
    case ErrorCode::kInvalidOptions: return 64;  // EX_USAGE
    case ErrorCode::kInternal:
    case ErrorCode::kFaultInjected: return 1;
  }
  return 1;
}

}  // namespace soidom
