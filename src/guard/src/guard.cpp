#include "soidom/guard/guard.hpp"

#include "soidom/base/strings.hpp"

namespace soidom {
namespace {

thread_local GuardContext* g_guard = nullptr;

const char* resource_name(Resource r) {
  switch (r) {
    case Resource::kNetworkNodes: return "network nodes";
    case Resource::kTuples: return "mapper tuples";
    case Resource::kBddNodes: return "BDD nodes";
  }
  return "resource";
}

}  // namespace

void GuardContext::checkpoint() {
  if (cancel_.cancelled()) {
    throw GuardError(ErrorCode::kCancelled, stage_,
                     format("cancellation requested during %s",
                            flow_stage_name(stage_)));
  }
  // The clock is read on the first call and then every 256th, keeping the
  // steady_clock syscall off the per-iteration path.  The tick is a
  // relaxed atomic shared by all workers under the guard.
  if ((tick_.fetch_add(1, std::memory_order_relaxed) & 0xffu) == 0 &&
      deadline_.expired()) {
    throw GuardError(ErrorCode::kDeadlineExceeded, stage_,
                     format("deadline exceeded during %s",
                            flow_stage_name(stage_)));
  }
}

void GuardContext::charge(Resource resource, std::size_t n) {
  const auto index = static_cast<std::size_t>(resource);
  const std::size_t now =
      used_[index].fetch_add(n, std::memory_order_relaxed) + n;
  const std::size_t limit = budget_.limit(resource);
  if (limit != 0 && now > limit) {
    throw GuardError(ErrorCode::kBudgetExceeded, stage_,
                     format("%s budget exceeded during %s: %zu used, limit %zu",
                            resource_name(resource), flow_stage_name(stage_),
                            now, limit));
  }
}

GuardContext* current_guard() noexcept { return g_guard; }

GuardScope::GuardScope(GuardContext& guard) : previous_(g_guard) {
  g_guard = &guard;
}

GuardScope::~GuardScope() { g_guard = previous_; }

StageScope::StageScope(FlowStage stage) {
  if (g_guard != nullptr) {
    previous_ = g_guard->stage();
    g_guard->set_stage(stage);
  }
}

StageScope::~StageScope() {
  if (g_guard != nullptr) g_guard->set_stage(previous_);
}

void guard_checkpoint() {
  if (g_guard != nullptr) g_guard->checkpoint();
}

void guard_charge(Resource resource, std::size_t n) {
  if (g_guard != nullptr) g_guard->charge(resource, n);
}

FlowStage current_stage_or(FlowStage fallback) noexcept {
  return g_guard != nullptr ? g_guard->stage() : fallback;
}

}  // namespace soidom
