/// \file diagnostic.hpp
/// Structured failure reporting for the mapping pipeline.
///
/// A Diagnostic is the machine-readable form of a recoverable failure: an
/// error code, the pipeline stage that failed, a human-readable message,
/// and an optional chain of context strings (outermost first).  GuardError
/// is the exception that carries one; it derives from soidom::Error so
/// every existing `catch (const Error&)` site still works, while the
/// guarded facade (core/flow.hpp) can recover code and stage without
/// parsing prose.  See docs/ERRORS.md for the conventions.
#pragma once

#include <string>
#include <vector>

#include "soidom/base/contracts.hpp"

namespace soidom {

/// Pipeline stages, in flow order.  Used for failure attribution and as
/// fault-injection probe identifiers (one probe per stage).
enum class FlowStage : std::uint8_t {
  kNone = 0,         ///< outside any stage / not attributed
  kParse,            ///< BLIF / Verilog front end
  kValidate,         ///< option validation
  kDecompose,        ///< 2-input decomposition
  kUnate,            ///< binate-to-unate conversion
  kMap,              ///< DP technology mapping
  kPostPass,         ///< discharge insertion / stack rearrangement
  kSeqAware,         ///< sequence-aware discharge pruning
  kVerifyStructure,  ///< structural netlist checks
  kLint,             ///< rule-based static lint over the mapped netlist
  kCsa,              ///< charge-sharing / PBE-safety static analysis
  kRace,             ///< phase / monotonicity / race static analysis
  kProve,            ///< exact (BDD) refinement of analyzer findings
  kVerifyFunction,   ///< random-simulation equivalence
  kExact,            ///< BDD exact equivalence
  // Batch-runner stages (batch/runner.hpp); they carry fault-injection
  // probes like the pipeline stages but attribute failures of the
  // orchestration layer, not of any one circuit's flow.
  kBatchJournal,     ///< run-journal append / manifest write
  kBatchSpawn,       ///< forking an isolated job subprocess
  kBatchWatchdog,    ///< per-job wall-clock watchdog firing
  // Mapping-service stages (serve/server.hpp): the socket front end and
  // the persistent cone cache.  Probes here let tests prove a cache or
  // transport failure degrades to recompute / structured error, never to
  // a wrong mapping (docs/SERVE.md).
  kServeAccept,      ///< socket accept / request admission
  kServeCacheRead,   ///< cone-cache lookup (memory or spill decode)
  kServeCacheSpill,  ///< cone-cache spill append / flush
  kServeDrain,       ///< graceful drain on SIGINT/SIGTERM
};

/// Number of FlowStage values (for tables indexed by stage).
inline constexpr std::size_t kFlowStageCount =
    static_cast<std::size_t>(FlowStage::kServeDrain) + 1;

/// Stable lower-case identifier, e.g. "verify_function".
const char* flow_stage_name(FlowStage stage);

/// Failure classes.  docs/ERRORS.md has the full table with CLI exit codes.
enum class ErrorCode : std::uint8_t {
  kInternal = 0,       ///< unexpected: an invariant or foreign exception
  kParseError,         ///< malformed input text or inconsistent model
  kInvalidOptions,     ///< out-of-range knob caught by validation
  kInfeasibleLimits,   ///< no feasible mapping under the shape limits
  kDeadlineExceeded,   ///< Deadline expired at a checkpoint
  kCancelled,          ///< CancelToken observed at a checkpoint
  kBudgetExceeded,     ///< a ResourceBudget ceiling was hit
  kBddNodeLimit,       ///< BDD blow-up (node limit of the manager)
  kVerificationFailed, ///< structural / functional / exact check failed
  kFaultInjected,      ///< a FaultInjector probe fired (testing only)
  kProofTimeout,       ///< exact-proof node budget hit; conservative
                       ///< verdict kept (prove stage, docs/PROVE.md)
};

/// Stable lower-case identifier, e.g. "deadline_exceeded".
const char* error_code_name(ErrorCode code);

/// One structured failure (or warning) from the guarded flow.
struct Diagnostic {
  ErrorCode code = ErrorCode::kInternal;
  FlowStage stage = FlowStage::kNone;
  std::string message;
  /// Optional context chain, outermost first ("flow variant soi",
  /// "retry 1 of 1", ...).
  std::vector<std::string> context;

  /// "map: budget_exceeded: tuple budget exceeded ... (context; ...)"
  std::string to_string() const;
  /// One JSON object: {"code":...,"stage":...,"message":...,"context":[...]}.
  std::string to_json() const;
};

/// Suggested process exit code for CLI front ends (docs/ERRORS.md):
/// parse error = 2, infeasible mapping = 3, verification mismatch = 4,
/// deadline/cancel/budget = 5, bad options = 64, everything else = 1.
int cli_exit_code(const Diagnostic& diagnostic);

/// Exception carrying a structured failure through throwing interfaces.
class GuardError : public Error {
 public:
  GuardError(ErrorCode code, FlowStage stage, const std::string& message)
      : Error(message), code_(code), stage_(stage) {}

  ErrorCode code() const { return code_; }
  FlowStage stage() const { return stage_; }

  Diagnostic to_diagnostic() const {
    return Diagnostic{code_, stage_, what(), {}};
  }

 private:
  ErrorCode code_;
  FlowStage stage_;
};

}  // namespace soidom
