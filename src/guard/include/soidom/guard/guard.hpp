/// \file guard.hpp
/// Resource guards for the mapping pipeline: wall-clock deadlines,
/// cooperative cancellation, and resource budgets.
///
/// The expensive stages (decomposition, unate conversion, the DP mapper,
/// BDD equivalence, random simulation) call `guard_checkpoint()` /
/// `guard_charge()` at coarse loop granularity.  When no guard is
/// installed (the default — plain run_flow and direct module calls) these
/// are a thread-local pointer test and return, so overhead stays
/// unmeasurable.  The guarded facade run_flow_guarded (core/flow.hpp)
/// installs a GuardContext for the duration of the flow; a tripped guard
/// throws GuardError, which the facade converts into a Diagnostic.
///
/// A GuardContext must not be shared by concurrently running *flows*, but
/// checkpoint()/charge() are thread-safe (relaxed atomics), so one flow
/// may fan its hot loop out over worker threads — the task-graph mapper
/// installs the owning flow's guard on each worker via GuardScope and the
/// budget/deadline still hold across all of them.  A CancelToken may be
/// triggered from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "soidom/guard/diagnostic.hpp"

namespace soidom {

/// A wall-clock deadline; default-constructed = unlimited.
class Deadline {
 public:
  Deadline() = default;

  static Deadline never() { return Deadline(); }
  static Deadline after(std::chrono::nanoseconds delay) {
    Deadline d;
    d.expires_ = std::chrono::steady_clock::now() + delay;
    return d;
  }
  static Deadline after_ms(std::int64_t ms) {
    return after(std::chrono::milliseconds(ms));
  }

  bool unlimited() const { return !expires_.has_value(); }
  bool expired() const {
    return expires_ && std::chrono::steady_clock::now() >= *expires_;
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> expires_;
};

/// Shared cancellation flag.  Copies observe the same flag, so a caller
/// can keep one handle and hand another to run_flow_guarded; requesting
/// cancellation is safe from any thread.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const {
    state_->store(true, std::memory_order_relaxed);
  }
  bool cancelled() const { return state_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Countable resources a budget can bound.
enum class Resource : std::uint8_t {
  kNetworkNodes,  ///< nodes created by decomposition / unate conversion
  kTuples,        ///< DP candidates examined by the mapper
  kBddNodes,      ///< BDD nodes allocated by any manager under the guard
};
inline constexpr std::size_t kNumResources = 3;

/// Ceilings per resource; 0 means unlimited.
struct ResourceBudget {
  std::size_t max_network_nodes = 0;
  std::size_t max_tuples = 0;
  std::size_t max_bdd_nodes = 0;

  std::size_t limit(Resource r) const {
    switch (r) {
      case Resource::kNetworkNodes: return max_network_nodes;
      case Resource::kTuples: return max_tuples;
      case Resource::kBddNodes: return max_bdd_nodes;
    }
    return 0;
  }
};

/// One flow's guard state: deadline + cancellation + budget counters plus
/// the current stage for failure attribution.
class GuardContext {
 public:
  GuardContext() = default;
  GuardContext(Deadline deadline, CancelToken cancel, ResourceBudget budget)
      : deadline_(deadline), cancel_(std::move(cancel)), budget_(budget) {}

  /// Throws GuardError (kCancelled / kDeadlineExceeded) when tripped.
  /// Cancellation is checked every call; the clock only every 256 calls.
  /// Thread-safe.
  void checkpoint();

  /// Add `n` to the resource counter; throws GuardError(kBudgetExceeded)
  /// when the ceiling is crossed.  Thread-safe: concurrent charges
  /// accumulate exactly (relaxed fetch_add), so whether the total trips
  /// the ceiling is independent of thread interleaving.
  void charge(Resource resource, std::size_t n);

  void set_stage(FlowStage stage) { stage_ = stage; }
  FlowStage stage() const { return stage_; }
  std::size_t used(Resource resource) const {
    return used_[static_cast<std::size_t>(resource)].load(
        std::memory_order_relaxed);
  }

 private:
  Deadline deadline_;
  CancelToken cancel_;
  ResourceBudget budget_;
  std::atomic<std::size_t> used_[kNumResources] = {};
  std::atomic<unsigned> tick_{0};
  FlowStage stage_ = FlowStage::kNone;
};

/// The guard installed for the current thread, or nullptr.
GuardContext* current_guard() noexcept;

/// RAII installation of a guard for the current thread (nestable; the
/// previous guard is restored on destruction).
class GuardScope {
 public:
  explicit GuardScope(GuardContext& guard);
  ~GuardScope();
  GuardScope(const GuardScope&) = delete;
  GuardScope& operator=(const GuardScope&) = delete;

 private:
  GuardContext* previous_;
};

/// RAII stage marker: sets the installed guard's current stage (no-op
/// without a guard).  Stage modules use it at entry so failures attribute
/// correctly even when called directly.
class StageScope {
 public:
  explicit StageScope(FlowStage stage);
  ~StageScope();
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  FlowStage previous_ = FlowStage::kNone;
};

/// Checkpoint / charge through the installed guard; no-ops without one.
void guard_checkpoint();
void guard_charge(Resource resource, std::size_t n = 1);

/// The installed guard's current stage, or `fallback` without a guard.
FlowStage current_stage_or(FlowStage fallback) noexcept;

}  // namespace soidom
