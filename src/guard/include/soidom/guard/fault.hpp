/// \file fault.hpp
/// Deterministic fault injection for robustness testing.
///
/// Every pipeline stage carries one probe (`SOIDOM_FAULT_PROBE(stage)` at
/// its entry).  A test installs a FaultInjector with a FaultScope; when an
/// armed probe fires it throws GuardError(kFaultInjected, stage), which
/// must surface from run_flow_guarded as a clean Diagnostic with that
/// stage — never a crash, hang, leak, or foreign exception
/// (tests/test_faults.cpp enforces this for every probe).
///
/// Probes compile to nothing unless the library is built with the CMake
/// option SOIDOM_FAULT_INJECTION (ON by default; release deployments can
/// switch it off).  Even when compiled in, an unarmed probe is one
/// thread-local pointer test per stage entry.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "soidom/base/rng.hpp"
#include "soidom/guard/diagnostic.hpp"

namespace soidom {

/// Seeded, probe-point-per-stage fault source (same determinism idiom as
/// base/rng.hpp: a given configuration fails identically on every run).
///
/// Probes may fire concurrently: the task-graph mapper re-installs the
/// caller's injector on its pool workers, so hit counting is atomic and
/// the randomized stream is mutex-guarded.  Copying (factory returns,
/// test fixtures) is not synchronized against concurrent probes.
class FaultInjector {
 public:
  /// Fail the `hit`-th time (1-based) the probe of `stage` is reached.
  static FaultInjector fail_at(FlowStage stage, int hit = 1);

  /// Fail any probe with probability numer/denom, from a seeded stream.
  static FaultInjector random(std::uint64_t seed, std::uint64_t numer,
                              std::uint64_t denom);

  FaultInjector(const FaultInjector& other);
  FaultInjector& operator=(const FaultInjector& other);

  /// Called by probes; advances hit counters / the random stream.
  bool should_fail(FlowStage stage);

  /// How often the probe of `stage` has been reached (test introspection).
  int hits(FlowStage stage) const {
    return hits_[static_cast<std::size_t>(stage)].load(
        std::memory_order_relaxed);
  }

 private:
  FaultInjector() = default;

  FlowStage target_ = FlowStage::kNone;
  int target_hit_ = 0;
  bool randomized_ = false;
  Rng rng_{0};
  std::uint64_t numer_ = 0;
  std::uint64_t denom_ = 1;
  std::mutex rng_mutex_;
  std::array<std::atomic<int>, kFlowStageCount> hits_{};
};

/// RAII installation for the current thread (nestable).
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& injector);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

/// The injector installed for the current thread (innermost FaultScope),
/// or nullptr.  Parallel schedulers capture this on the submitting thread
/// and re-install it on their workers with a FaultScope, so probes inside
/// tasks observe the caller's injector (thread-local storage does not
/// propagate into pool threads by itself).
FaultInjector* current_fault_injector() noexcept;

namespace detail {
/// Throws GuardError(kFaultInjected, stage) when the installed injector
/// (if any) decides to fail; otherwise just counts the hit.
void fault_probe(FlowStage stage);
}  // namespace detail

}  // namespace soidom

#if defined(SOIDOM_FAULT_INJECTION)
#define SOIDOM_FAULT_PROBE(stage) ::soidom::detail::fault_probe(stage)
#else
#define SOIDOM_FAULT_PROBE(stage) ((void)0)
#endif
