/// \file sizing.hpp
/// Transistor sizing for mapped domino netlists — the paper's suggested
/// follow-up step (section VII: "a followup technology-specific
/// optimization step can be used to obtain further delay improvements",
/// and section I: "possibly including transistor sizing, which our work
/// does not address").
///
/// The heuristic is logical-effort flavoured and deliberately simple
/// (the mapper's abstraction level): widths are in units of a reference
/// nMOS width.
///
///  1. stack compensation — a transistor on a series path of length H
///     carries H devices' worth of resistance, so every pulldown leaf gets
///     a width proportional to the longest series path it sits on;
///  2. drive matching — each gate's output inverter is sized for the input
///     capacitance it must drive (sum of the widths of the leaves its
///     output feeds, plus a default wire/output load);
///  3. criticality skew — gates on the worst-case timing path (per
///     timing/timing.hpp) receive an extra width boost, off-path gates are
///     left at minimum to save area.
///
/// The result carries per-leaf pulldown widths (in PDN leaf order, as
/// walked by Pdn::leaf_signals), per-gate inverter drives, and the model's
/// before/after delay estimates.
#pragma once

#include <vector>

#include "soidom/domino/netlist.hpp"
#include "soidom/timing/timing.hpp"

namespace soidom {

struct SizingOptions {
  double min_width = 0.5;   ///< narrowest allowed device
  double max_width = 8.0;   ///< widest allowed device
  double unit_load = 1.0;   ///< default load on primary outputs
  /// Extra width multiplier for gates on the critical path.
  double critical_boost = 1.5;
  /// Delay-model speedup exponent: effective series delay scales as
  /// 1 / width^alpha (alpha < 1 models diffusion-cap pushback).
  double alpha = 0.7;
};

struct GateSizing {
  /// One width per pulldown transistor, in Pdn::leaf_signals() order.
  std::vector<double> pulldown_widths;
  double inverter_width = 1.0;
  bool on_critical_path = false;
};

struct SizingResult {
  std::vector<GateSizing> gates;
  double estimated_delay_before = 0.0;
  double estimated_delay_after = 0.0;
  double total_width_before = 0.0;
  double total_width_after = 0.0;

  double speedup() const {
    return estimated_delay_after > 0.0
               ? estimated_delay_before / estimated_delay_after
               : 1.0;
  }
};

/// Size `netlist` under `options`.  Pure analysis: the netlist itself is
/// not modified (widths live in the result; export_spice can consume them).
SizingResult size_netlist(const DominoNetlist& netlist,
                          const SizingOptions& options = {});

/// Width-aware worst-case delay estimate (the objective size_netlist
/// reports); exposed for tests and for comparing sizing strategies.
double estimate_delay(const DominoNetlist& netlist,
                      const std::vector<GateSizing>& sizing,
                      const SizingOptions& options = {});

}  // namespace soidom
