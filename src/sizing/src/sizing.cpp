#include "soidom/sizing/sizing.hpp"

#include <algorithm>
#include <cmath>

#include "soidom/base/contracts.hpp"

namespace soidom {
namespace {

double clamp_width(double w, const SizingOptions& options) {
  return std::clamp(w, options.min_width, options.max_width);
}

/// Longest series path length (in transistors) through each leaf, in
/// Pdn::leaf_signals() order.
class StackDepthWalker {
 public:
  explicit StackDepthWalker(const Pdn& pdn) : pdn_(pdn) {}

  std::vector<int> run() {
    walk(pdn_.root(), 0);
    return std::move(depths_);
  }

 private:
  void walk(PdnIndex i, int context) {
    const PdnNode& n = pdn_.node(i);
    switch (n.kind) {
      case PdnKind::kLeaf:
        depths_.push_back(context + 1);
        break;
      case PdnKind::kParallel:
        for (const PdnIndex c : n.children) walk(c, context);
        break;
      case PdnKind::kSeries: {
        // The path through child k also crosses every sibling; use each
        // sibling's worst-case height.
        int total = 0;
        for (const PdnIndex c : n.children) total += pdn_.height_of(c);
        for (const PdnIndex c : n.children) {
          walk(c, context + total - pdn_.height_of(c));
        }
        break;
      }
    }
  }

  const Pdn& pdn_;
  std::vector<int> depths_;
};

/// Worst-case pulldown path resistance: sum of 1/w^alpha along the
/// slowest root-to-bottom path.
class PathResistance {
 public:
  PathResistance(const Pdn& pdn, const std::vector<double>& widths,
                 double alpha)
      : pdn_(pdn), widths_(widths), alpha_(alpha) {}

  double run() {
    next_leaf_ = 0;
    return resist(pdn_.root());
  }

 private:
  double resist(PdnIndex i) {
    const PdnNode& n = pdn_.node(i);
    switch (n.kind) {
      case PdnKind::kLeaf: {
        const double w = widths_[next_leaf_++];
        return 1.0 / std::pow(w, alpha_);
      }
      case PdnKind::kSeries: {
        double sum = 0.0;
        for (const PdnIndex c : n.children) sum += resist(c);
        return sum;
      }
      case PdnKind::kParallel: {
        double worst = 0.0;
        for (const PdnIndex c : n.children) {
          worst = std::max(worst, resist(c));
        }
        return worst;
      }
    }
    return 0.0;
  }

  const Pdn& pdn_;
  const std::vector<double>& widths_;
  double alpha_;
  std::size_t next_leaf_ = 0;
};

}  // namespace

double estimate_delay(const DominoNetlist& netlist,
                      const std::vector<GateSizing>& sizing,
                      const SizingOptions& options) {
  SOIDOM_REQUIRE(sizing.size() == netlist.gates().size(),
                 "estimate_delay: sizing entry per gate required");
  const DelayModel model;  // reuse the timing constants for the fixed parts

  // Capacitive load seen by each gate's output: the widths of the leaves
  // it drives plus the unit load for primary outputs.
  std::vector<double> load(netlist.gates().size(), 0.0);
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    const auto signals = netlist.gates()[g].all_leaf_signals();
    for (std::size_t k = 0; k < signals.size(); ++k) {
      if (!netlist.is_input_signal(signals[k])) {
        load[netlist.gate_of_signal(signals[k])] +=
            sizing[g].pulldown_widths[k];
      }
    }
  }
  for (const DominoOutput& o : netlist.outputs()) {
    if (o.constant < 0 && !netlist.is_input_signal(o.signal)) {
      load[netlist.gate_of_signal(o.signal)] += options.unit_load;
    }
  }

  std::vector<double> arrival(netlist.gates().size(), 0.0);
  double critical = 0.0;
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    const DominoGate& gate = netlist.gates()[g];
    // Widths follow all_leaf_signals order: pdn's leaves, then pdn2's.
    const auto first_count =
        static_cast<std::size_t>(gate.pdn.transistor_count());
    const std::vector<double> w1(
        sizing[g].pulldown_widths.begin(),
        sizing[g].pulldown_widths.begin() +
            static_cast<std::ptrdiff_t>(first_count));
    double resistance = PathResistance(gate.pdn, w1, options.alpha).run();
    int width = gate.pdn.width();
    if (gate.dual()) {
      const std::vector<double> w2(
          sizing[g].pulldown_widths.begin() +
              static_cast<std::ptrdiff_t>(first_count),
          sizing[g].pulldown_widths.end());
      resistance = std::max(
          resistance, PathResistance(gate.pdn2, w2, options.alpha).run());
      width = std::max(width, gate.pdn2.width());
    }
    const double delay = model.gate_base + model.per_series * resistance +
                         model.per_parallel * width +
                         model.per_fanout * load[g] /
                             std::max(sizing[g].inverter_width, 1e-6);
    double in = 0.0;
    for (const std::uint32_t sig : gate.all_leaf_signals()) {
      if (!netlist.is_input_signal(sig)) {
        in = std::max(in, arrival[netlist.gate_of_signal(sig)]);
      }
    }
    arrival[g] = in + delay;
  }
  for (const DominoOutput& o : netlist.outputs()) {
    if (o.constant < 0 && !netlist.is_input_signal(o.signal)) {
      critical = std::max(critical, arrival[netlist.gate_of_signal(o.signal)]);
    }
  }
  return critical;
}

SizingResult size_netlist(const DominoNetlist& netlist,
                          const SizingOptions& options) {
  SizingResult result;
  result.gates.resize(netlist.gates().size());

  // Baseline: everything at unit width.
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    result.gates[g].pulldown_widths.assign(
        netlist.gates()[g].all_leaf_signals().size(), 1.0);
    result.gates[g].inverter_width = 1.0;
  }
  result.estimated_delay_before = estimate_delay(netlist, result.gates, options);
  for (const GateSizing& gs : result.gates) {
    for (const double w : gs.pulldown_widths) result.total_width_before += w;
    result.total_width_before += gs.inverter_width;
  }

  // 1. Stack compensation.
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    const DominoGate& gate = netlist.gates()[g];
    auto depths = StackDepthWalker(gate.pdn).run();
    if (gate.dual()) {
      const auto second = StackDepthWalker(gate.pdn2).run();
      depths.insert(depths.end(), second.begin(), second.end());
    }
    SOIDOM_ASSERT(depths.size() == result.gates[g].pulldown_widths.size());
    for (std::size_t k = 0; k < depths.size(); ++k) {
      result.gates[g].pulldown_widths[k] =
          clamp_width(static_cast<double>(depths[k]), options);
    }
  }

  // 2. Drive matching: size each inverter for the load it drives.
  {
    std::vector<double> load(netlist.gates().size(), 0.0);
    for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
      const auto signals = netlist.gates()[g].all_leaf_signals();
      for (std::size_t k = 0; k < signals.size(); ++k) {
        if (!netlist.is_input_signal(signals[k])) {
          load[netlist.gate_of_signal(signals[k])] +=
              result.gates[g].pulldown_widths[k];
        }
      }
    }
    for (const DominoOutput& o : netlist.outputs()) {
      if (o.constant < 0 && !netlist.is_input_signal(o.signal)) {
        load[netlist.gate_of_signal(o.signal)] += options.unit_load;
      }
    }
    for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
      result.gates[g].inverter_width =
          clamp_width(std::sqrt(std::max(load[g], 1.0)), options);
    }
  }

  // 3. Criticality skew: boost the worst-case path.
  {
    const TimingReport timing = analyze_timing(netlist);
    for (const std::uint32_t g : timing.critical_path) {
      GateSizing& gs = result.gates[g];
      gs.on_critical_path = true;
      for (double& w : gs.pulldown_widths) {
        w = clamp_width(w * options.critical_boost, options);
      }
      gs.inverter_width =
          clamp_width(gs.inverter_width * options.critical_boost, options);
    }
  }

  result.estimated_delay_after = estimate_delay(netlist, result.gates, options);
  for (const GateSizing& gs : result.gates) {
    for (const double w : gs.pulldown_widths) result.total_width_after += w;
    result.total_width_after += gs.inverter_width;
  }
  return result;
}

}  // namespace soidom
