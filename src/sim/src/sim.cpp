#include "soidom/sim/sim.hpp"

#include <unordered_map>

#include "soidom/base/contracts.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {

std::vector<SimWord> simulate_nodes(const Network& net,
                                    const std::vector<SimWord>& pi_words) {
  SOIDOM_REQUIRE(pi_words.size() == net.pis().size(),
                 "simulate_nodes: wrong number of PI words");
  std::vector<SimWord> value(net.size(), 0);
  value[kConst1Id.value] = ~SimWord{0};
  for (std::size_t k = 0; k < net.pis().size(); ++k) {
    value[net.pis()[k].value] = pi_words[k];
  }
  for (std::uint32_t i = 2; i < net.size(); ++i) {
    // Coarse granularity: one guard test per 1024 nodes keeps the hot
    // loop branch-predictable while still bounding a huge network.
    if ((i & 0x3ffu) == 0) guard_checkpoint();
    const Node& n = net.node(NodeId{i});
    switch (n.kind) {
      case NodeKind::kAnd:
        value[i] = value[n.fanin0.value] & value[n.fanin1.value];
        break;
      case NodeKind::kOr:
        value[i] = value[n.fanin0.value] | value[n.fanin1.value];
        break;
      case NodeKind::kInv:
        value[i] = ~value[n.fanin0.value];
        break;
      case NodeKind::kBuf:
        value[i] = value[n.fanin0.value];
        break;
      case NodeKind::kPi:
        break;  // already filled
      default:
        SOIDOM_ASSERT_MSG(false, "unexpected node kind");
    }
  }
  return value;
}

std::vector<SimWord> simulate_outputs(const Network& net,
                                      const std::vector<SimWord>& pi_words) {
  const auto value = simulate_nodes(net, pi_words);
  std::vector<SimWord> out;
  out.reserve(net.outputs().size());
  for (const Output& o : net.outputs()) out.push_back(value[o.driver.value]);
  return out;
}

std::vector<bool> evaluate(const Network& net,
                           const std::vector<bool>& pi_values) {
  std::vector<SimWord> words(pi_values.size());
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    words[i] = pi_values[i] ? ~SimWord{0} : 0;
  }
  const auto out = simulate_outputs(net, words);
  std::vector<bool> bits;
  bits.reserve(out.size());
  for (const SimWord w : out) bits.push_back((w & 1) != 0);
  return bits;
}

std::vector<SimWord> simulate_unate_outputs(
    const UnateResult& unate, const std::vector<SimWord>& original_pi_words) {
  SOIDOM_REQUIRE(original_pi_words.size() == unate.pi_literals.size(),
                 "simulate_unate_outputs: wrong number of PI words");
  std::vector<SimWord> literal_words(unate.net.pis().size(), 0);
  for (std::size_t k = 0; k < unate.pi_literals.size(); ++k) {
    const auto& lits = unate.pi_literals[k];
    if (lits.pos >= 0) {
      literal_words[static_cast<std::size_t>(lits.pos)] =
          original_pi_words[k];
    }
    if (lits.neg >= 0) {
      literal_words[static_cast<std::size_t>(lits.neg)] =
          ~original_pi_words[k];
    }
  }
  auto out = simulate_outputs(unate.net, literal_words);
  SOIDOM_ASSERT(out.size() == unate.po_inverted.size());
  for (std::size_t j = 0; j < out.size(); ++j) {
    if (unate.po_inverted[j]) out[j] = ~out[j];
  }
  return out;
}

std::vector<bool> evaluate(const BlifModel& model,
                           const std::vector<bool>& pi_values) {
  SOIDOM_REQUIRE(pi_values.size() == model.inputs.size(),
                 "evaluate(BlifModel): wrong number of input values");
  std::unordered_map<std::string, bool> value;
  for (std::size_t i = 0; i < model.inputs.size(); ++i) {
    value.emplace(model.inputs[i], pi_values[i]);
  }

  // Iterate to a fixed point over tables (dependency order is unknown);
  // acyclic models converge in <= #tables passes.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const BlifTable& t : model.tables) {
      if (value.contains(t.output)) continue;
      std::vector<bool> ins;
      ins.reserve(t.inputs.size());
      bool ready = true;
      for (const std::string& in : t.inputs) {
        const auto it = value.find(in);
        if (it == value.end()) {
          ready = false;
          break;
        }
        ins.push_back(it->second);
      }
      if (!ready) continue;
      value.emplace(t.output, t.cover.eval(ins));
      progress = true;
    }
  }

  std::vector<bool> out;
  out.reserve(model.outputs.size());
  for (const std::string& o : model.outputs) {
    const auto it = value.find(o);
    SOIDOM_REQUIRE(it != value.end(),
                   format("evaluate(BlifModel): output '%s' has no value "
                          "(combinational cycle?)",
                          o.c_str()));
    out.push_back(it->second);
  }
  return out;
}

std::vector<SimWord> random_pi_words(std::size_t num_pis, Rng& rng) {
  std::vector<SimWord> words(num_pis);
  for (SimWord& w : words) w = rng.next_u64();
  return words;
}

bool equivalent_by_simulation(const Network& a, const Network& b, int rounds,
                              Rng& rng) {
  SOIDOM_REQUIRE(a.pis().size() == b.pis().size() &&
                     a.outputs().size() == b.outputs().size(),
                 "equivalent_by_simulation: interface mismatch");
  for (int r = 0; r < rounds; ++r) {
    guard_checkpoint();
    const auto words = random_pi_words(a.pis().size(), rng);
    if (simulate_outputs(a, words) != simulate_outputs(b, words)) return false;
  }
  return true;
}

bool unate_preserves_function(const Network& source, const UnateResult& unate,
                              int rounds, Rng& rng) {
  SOIDOM_REQUIRE(source.pis().size() == unate.pi_literals.size() &&
                     source.outputs().size() == unate.po_inverted.size(),
                 "unate_preserves_function: interface mismatch");
  for (int r = 0; r < rounds; ++r) {
    const auto words = random_pi_words(source.pis().size(), rng);
    if (simulate_outputs(source, words) !=
        simulate_unate_outputs(unate, words)) {
      return false;
    }
  }
  return true;
}

}  // namespace soidom
