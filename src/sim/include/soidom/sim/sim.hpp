/// \file sim.hpp
/// 64-way bit-parallel functional simulation.
///
/// Every std::uint64_t word carries 64 independent input patterns, so one
/// pass over the network evaluates 64 vectors.  Used as the universal
/// functional-correctness oracle: decomposition, unate conversion and
/// technology mapping are all checked against the source network by random
/// simulation (and by exact BDD equivalence for small cones, see bdd/).
#pragma once

#include <cstdint>
#include <vector>

#include "soidom/base/rng.hpp"
#include "soidom/blif/blif.hpp"
#include "soidom/network/network.hpp"
#include "soidom/unate/unate.hpp"

namespace soidom {

using SimWord = std::uint64_t;

/// Evaluate all nodes; `pi_words[k]` is the word for pis()[k].
std::vector<SimWord> simulate_nodes(const Network& net,
                                    const std::vector<SimWord>& pi_words);

/// Evaluate primary outputs only.
std::vector<SimWord> simulate_outputs(const Network& net,
                                      const std::vector<SimWord>& pi_words);

/// Single-vector evaluation (convenience; used by tests and soisim).
std::vector<bool> evaluate(const Network& net,
                           const std::vector<bool>& pi_values);

/// Evaluate a unate network on *original* input words: positive literal
/// leaves receive the word, negative leaves its complement.  Outputs are
/// corrected by `po_inverted`, so the result is directly comparable with
/// the source network's outputs.
std::vector<SimWord> simulate_unate_outputs(
    const UnateResult& unate, const std::vector<SimWord>& original_pi_words);

/// Reference evaluation of a flat BLIF model (table-by-table, dependency
/// order); oracle for decomposition tests.  `pi_values[k]` corresponds to
/// model.inputs[k].
std::vector<bool> evaluate(const BlifModel& model,
                           const std::vector<bool>& pi_values);

/// Draw one fresh random word per PI.
std::vector<SimWord> random_pi_words(std::size_t num_pis, Rng& rng);

/// Random-simulation equivalence of two networks with identical PI order
/// and PO order.  `rounds` words of 64 patterns each.
bool equivalent_by_simulation(const Network& a, const Network& b, int rounds,
                              Rng& rng);

/// Random-simulation check that a unate conversion preserved the source
/// network's functionality.
bool unate_preserves_function(const Network& source, const UnateResult& unate,
                              int rounds, Rng& rng);

}  // namespace soidom
