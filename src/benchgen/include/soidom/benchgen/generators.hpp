/// \file generators.hpp
/// Structured benchmark-circuit generators.
///
/// The paper evaluates on ISCAS'85 / MCNC'91 benchmarks, which are not
/// redistributable here; these generators produce deterministic circuits
/// of the same structural families (multiplexers, adders, ECC XOR planes,
/// symmetric functions, ALUs, substitution-permutation networks, random
/// control logic) sized to land near the paper's per-circuit transistor
/// counts.  See DESIGN.md section 3 for the substitution argument and
/// registry.hpp for the name -> generator mapping.
///
/// All generators are pure functions of their parameters (internal
/// randomness is seeded), so every table in bench/ is reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "soidom/network/network.hpp"

namespace soidom {

/// 2^select_bits : 1 multiplexer tree (cm150 / mux family).
Network gen_mux_tree(int select_bits);

/// Ripple-carry adder: two `bits`-wide operands (+ carry-in), sum and
/// carry-out (z4ml family).
Network gen_ripple_adder(int bits, bool with_cin = true);

/// Incrementer / counter next-state logic with terminal-count output.
Network gen_incrementer(int bits);

/// Totally symmetric function: 1 iff popcount(inputs) is in `accepted`
/// (9symml / t481 family).
Network gen_symmetric(int inputs, const std::vector<int>& accepted);

/// ECC-style XOR plane: each output is the XOR of `subset` distinct,
/// seeded-randomly chosen inputs (c499 / c1355 / c1908 family).
Network gen_xor_tree(int inputs, int outputs, int subset, std::uint64_t seed);

/// Priority / interrupt arbiter with enable chain (c432 family).
Network gen_priority(int inputs);

/// Barrel rotator: `width` data bits rotated by a select value
/// (rot family).
Network gen_barrel_rotator(int width, int select_bits);

/// Substitution-permutation network: `rounds` rounds of seeded 3-bit
/// S-boxes, bit permutation and neighbour mixing over `width` bits
/// (des family).
Network gen_spn(int width, int rounds, std::uint64_t seed);

/// Small ALU: add / and / or / xor of two operands selected by 2 op bits
/// (c880 / dalu / c3540 family).
Network gen_alu_like(int bits, std::uint64_t seed);

/// Two-level random logic: `cubes` random product terms over `inputs`
/// literals, each output ORing an expected 1/or_denom share of the cubes
/// (i6 / PLA-style circuits).
Network gen_two_level(int inputs, int cubes, int outputs, int or_denom,
                      std::uint64_t seed);

/// Seeded random AND/OR/INV DAG (control-logic stand-in: frg1, b9, apex*,
/// k2, ...).
Network gen_random_dag(int pis, int gates, int pos, std::uint64_t seed);

/// Seeded random layered DAG with *controlled* level width and depth:
/// `depth` layers of `width` AND/OR nodes each, every node combining two
/// distinct signals drawn mostly from the immediately previous layer
/// (locality `back_weight` in [1, 100]: the percent chance a fanin comes
/// from the previous layer rather than any earlier one — 100 gives a
/// strict layer pipeline, lower values long skip edges).  Inverted
/// literals appear with 1/8 probability, so the unate conversion sees a
/// realistic binate mix.  Scale-bench workhorse: node count = width x
/// depth by construction (before hashing / dead-node removal), with level
/// width ~= `width` — wide-shallow stresses scheduler throughput,
/// narrow-deep stresses the dependency critical path.
Network gen_layered_dag(int width, int depth, int back_weight,
                        std::uint64_t seed);

/// CORDIC-like iterative shift-add datapath: `stages` stages over a
/// `width`-bit x/y pair (cordic family).
Network gen_cordic(int width, int stages);

/// Array multiplier: `bits` x `bits` partial products reduced with
/// ripple-carry rows (c6288 family — the densest series/parallel mix of
/// the classic suites).
Network gen_multiplier(int bits);

/// Binary decoder: `select_bits` inputs, one-hot 2^select_bits outputs
/// with an enable (wide AND plane).
Network gen_decoder(int select_bits);

}  // namespace soidom
