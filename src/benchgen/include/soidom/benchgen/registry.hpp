/// \file registry.hpp
/// Named benchmark registry.
///
/// Maps the circuit names appearing in the paper's tables to deterministic
/// generator instances (generators.hpp) of the same structural family and
/// comparable size.  Every name always produces the identical network, so
/// the bench/ binaries are reproducible run to run.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "soidom/network/network.hpp"

namespace soidom {

/// All classic circuit names (union of the paper's four tables plus the
/// completeness extras).  Deliberately excludes the scale suite — test
/// suites sweep this list with full flows and golden-stat pins; use
/// scale_circuits() for the 100k+-node scheduler benchmarks.
std::vector<std::string> benchmark_names();

/// True if `name` is registered.
bool is_known_benchmark(std::string_view name);

/// Build the circuit registered under `name`; throws soidom::Error for
/// unknown names.
Network build_benchmark(std::string_view name);

/// Circuit lists of the paper's tables, in row order.
std::vector<std::string> table1_circuits();  ///< Domino_Map vs RS_Map
std::vector<std::string> table2_circuits();  ///< Domino_Map vs SOI_Domino_Map
std::vector<std::string> table3_circuits();  ///< clock-weight k = 1 vs 2
std::vector<std::string> table4_circuits();  ///< depth objective

/// Large synthetic circuits (roughly 100k to 1M AND/OR nodes after unate
/// conversion) for mapper-scheduler scaling benchmarks: deep multipliers,
/// SPN stacks, and layered random DAGs with controlled level width.
/// Ascending size; the last entry is the ~1M-node stress case (bench
/// binaries gate it behind an explicit flag).  All names also resolve
/// through build_benchmark().  See docs/BENCHGEN.md.
std::vector<std::string> scale_circuits();

}  // namespace soidom
