#include "soidom/benchgen/registry.hpp"

#include <functional>
#include <utility>

#include "soidom/base/contracts.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/benchgen/generators.hpp"

namespace soidom {
namespace {

struct Entry {
  const char* name;
  Network (*build)();
};

/// The registry.  Parameters were calibrated so that the bulk-CMOS flow's
/// transistor counts land in the same size class as the paper's per-row
/// T_logic (absolute equality is impossible without the original MCNC /
/// ISCAS netlists; see DESIGN.md section 3).
constexpr Entry kEntries[] = {
    // -- multiplexers ------------------------------------------------------
    {"cm150", [] { return gen_mux_tree(4); }},
    {"mux", [] { return gen_barrel_rotator(4, 2); }},
    // -- arithmetic --------------------------------------------------------
    {"z4ml", [] { return gen_ripple_adder(3); }},
    {"cordic", [] { return gen_cordic(4, 1); }},
    {"f51m", [] { return gen_alu_like(4, 0xF51F51); }},
    {"count", [] { return gen_incrementer(14); }},
    {"c880", [] { return gen_alu_like(12, 0x880); }},
    {"dalu", [] { return gen_alu_like(24, 0xDA1D); }},
    {"c3540", [] { return gen_alu_like(72, 0x3540); }},
    // -- symmetric functions ----------------------------------------------
    {"9symml", [] { return gen_symmetric(9, {3, 4, 5, 6}); }},
    {"t481", [] { return gen_symmetric(16, {2, 3, 5, 7, 11, 13}); }},
    // -- ECC / XOR planes --------------------------------------------------
    {"c499", [] { return gen_xor_tree(41, 32, 7, 0x499); }},
    {"c1355", [] { return gen_xor_tree(41, 32, 7, 0x499); }},  // same function
    {"c1908", [] { return gen_xor_tree(33, 25, 7, 0x1908); }},
    // -- multiplication / decode (not in the paper's tables; kept for
    //    completeness of the classic suite) ------------------------------
    {"c6288", [] { return gen_multiplier(8); }},
    {"decod", [] { return gen_decoder(5); }},
    // -- arbitration -------------------------------------------------------
    {"c432", [] { return gen_priority(36); }},
    // -- rotation ----------------------------------------------------------
    {"rot", [] { return gen_barrel_rotator(48, 6); }},
    // -- crypto-style SPN --------------------------------------------------
    {"des", [] { return gen_spn(48, 3, 0xDE5); }},
    // -- PLA-style two-level -----------------------------------------------
    {"i6", [] { return gen_two_level(138, 36, 67, 6, 0x16); }},
    // -- random control logic ----------------------------------------------
    {"frg1", [] { return gen_random_dag(28, 160, 3, 0xF41); }},
    {"b9", [] { return gen_random_dag(41, 200, 21, 0xB9); }},
    {"c8", [] { return gen_random_dag(28, 160, 18, 0xC8); }},
    {"x1", [] { return gen_random_dag(51, 400, 35, 0x11); }},
    {"apex7", [] { return gen_random_dag(49, 240, 37, 0xA7); }},
    {"apex6", [] { return gen_random_dag(135, 740, 99, 0xA6); }},
    {"k2", [] { return gen_random_dag(45, 950, 45, 0x12); }},
    {"c2670", [] { return gen_random_dag(157, 1120, 64, 0x2670); }},
    {"c5315", [] { return gen_random_dag(178, 2250, 123, 0x5315); }},
    {"c7552", [] { return gen_random_dag(207, 3500, 108, 0x7552); }},
};

/// Scale suite: 100k–1M-node scheduler benchmarks (docs/BENCHGEN.md).
/// Kept out of kEntries so benchmark_names() — which the test suites
/// sweep with full flows and golden-stat pins — stays the classic set;
/// build_benchmark() still resolves these by name.
constexpr Entry kScaleEntries[] = {
    {"xl_mult64", [] { return gen_multiplier(64); }},
    {"xl_spn_384x16", [] { return gen_spn(384, 16, 0x5CA1E); }},
    {"xl_dag_wide", [] { return gen_layered_dag(2048, 56, 90, 0x31DE); }},
    {"xl_dag_deep", [] { return gen_layered_dag(96, 1200, 85, 0xDEE9); }},
    {"xl_dag_1m", [] { return gen_layered_dag(2048, 500, 90, 0x1111111); }},
};

}  // namespace

std::vector<std::string> benchmark_names() {
  std::vector<std::string> out;
  for (const Entry& e : kEntries) out.emplace_back(e.name);
  return out;
}

bool is_known_benchmark(std::string_view name) {
  for (const Entry& e : kEntries) {
    if (name == e.name) return true;
  }
  for (const Entry& e : kScaleEntries) {
    if (name == e.name) return true;
  }
  return false;
}

Network build_benchmark(std::string_view name) {
  for (const Entry& e : kEntries) {
    if (name == e.name) return e.build();
  }
  for (const Entry& e : kScaleEntries) {
    if (name == e.name) return e.build();
  }
  throw Error(format("unknown benchmark circuit '%s'",
                     std::string(name).c_str()));
}

std::vector<std::string> table1_circuits() {
  return {"cm150", "mux",   "z4ml",  "cordic", "frg1",  "b9",
          "apex7", "c432",  "c880",  "t481",   "c1355", "apex6",
          "c1908", "k2",    "c2670", "c5315",  "c7552", "des"};
}

std::vector<std::string> table2_circuits() {
  return {"cm150", "mux",   "z4ml",  "cordic", "frg1",  "f51m", "count",
          "b9",    "9symml", "apex7", "c432",  "c880",  "t481", "c1355",
          "apex6", "c1908", "k2",    "c2670",  "c5315", "c7552", "des"};
}

std::vector<std::string> table3_circuits() {
  return {"cm150", "mux",  "z4ml",  "cordic", "frg1",  "count", "b9",
          "c8",    "f51m", "9symml", "apex7", "x1",    "c432",  "i6",
          "c1908", "t481", "c499",  "c1355",  "dalu",  "k2",    "apex6",
          "rot",   "c2670", "c5315", "c3540", "des",   "c7552"};
}

std::vector<std::string> scale_circuits() {
  std::vector<std::string> out;
  for (const Entry& e : kScaleEntries) out.emplace_back(e.name);
  return out;
}

std::vector<std::string> table4_circuits() {
  return {"z4ml",  "cm150", "mux",   "cordic", "f51m",  "c8",    "frg1",
          "b9",    "count", "c432",  "apex7",  "9symml", "c1908", "x1",
          "i6",    "c1355", "t481",  "rot",    "apex6", "k2",    "c2670",
          "dalu",  "c3540", "c5315", "c7552",  "des"};
}

}  // namespace soidom
