#include "soidom/benchgen/generators.hpp"

#include <algorithm>
#include <string>

#include "soidom/base/contracts.hpp"
#include "soidom/base/rng.hpp"
#include "soidom/network/builder.hpp"
#include "soidom/network/transform.hpp"

namespace soidom {
namespace {

NodeId xor2(NetworkBuilder& b, NodeId x, NodeId y) {
  return b.add_or(b.add_and(x, b.add_inv(y)), b.add_and(b.add_inv(x), y));
}

NodeId mux2(NetworkBuilder& b, NodeId sel, NodeId when1, NodeId when0) {
  return b.add_or(b.add_and(sel, when1), b.add_and(b.add_inv(sel), when0));
}

std::vector<NodeId> add_pis(NetworkBuilder& b, const char* prefix, int n) {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(b.add_pi(std::string(prefix) + std::to_string(i)));
  }
  return out;
}

/// Ripple adder over existing operand nodes; returns sum bits, sets cout.
std::vector<NodeId> ripple_sum(NetworkBuilder& b, const std::vector<NodeId>& x,
                               const std::vector<NodeId>& y, NodeId cin,
                               NodeId& cout) {
  SOIDOM_ASSERT(x.size() == y.size());
  std::vector<NodeId> sum;
  NodeId carry = cin;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const NodeId p = xor2(b, x[i], y[i]);
    sum.push_back(xor2(b, p, carry));
    carry = b.add_or(b.add_and(x[i], y[i]), b.add_and(p, carry));
  }
  cout = carry;
  return sum;
}

}  // namespace

Network gen_mux_tree(int select_bits) {
  SOIDOM_REQUIRE(select_bits >= 1 && select_bits <= 8,
                 "gen_mux_tree: select_bits out of range");
  NetworkBuilder b;
  const auto data = add_pis(b, "d", 1 << select_bits);
  const auto sel = add_pis(b, "s", select_bits);
  std::vector<NodeId> layer = data;
  for (int k = 0; k < select_bits; ++k) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(
          mux2(b, sel[static_cast<std::size_t>(k)], layer[i + 1], layer[i]));
    }
    layer = std::move(next);
  }
  b.add_output(layer.front(), "y");
  return remove_dead_nodes(std::move(b).build());
}

Network gen_ripple_adder(int bits, bool with_cin) {
  SOIDOM_REQUIRE(bits >= 1, "gen_ripple_adder: bits must be positive");
  NetworkBuilder b;
  const auto x = add_pis(b, "a", bits);
  const auto y = add_pis(b, "b", bits);
  const NodeId cin = with_cin ? b.add_pi("cin") : b.const0();
  NodeId cout;
  const auto sum = ripple_sum(b, x, y, cin, cout);
  for (std::size_t i = 0; i < sum.size(); ++i) {
    b.add_output(sum[i], "s" + std::to_string(i));
  }
  b.add_output(cout, "cout");
  return remove_dead_nodes(std::move(b).build());
}

Network gen_incrementer(int bits) {
  SOIDOM_REQUIRE(bits >= 1, "gen_incrementer: bits must be positive");
  NetworkBuilder b;
  const auto x = add_pis(b, "q", bits);
  const NodeId en = b.add_pi("en");
  NodeId carry = en;
  NodeId all_ones = b.const1();
  for (int i = 0; i < bits; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    b.add_output(xor2(b, x[idx], carry), "n" + std::to_string(i));
    carry = b.add_and(x[idx], carry);
    all_ones = b.add_and(all_ones, x[idx]);
  }
  b.add_output(carry, "carry");
  b.add_output(all_ones, "tc");
  return remove_dead_nodes(std::move(b).build());
}

Network gen_symmetric(int inputs, const std::vector<int>& accepted) {
  SOIDOM_REQUIRE(inputs >= 1, "gen_symmetric: inputs must be positive");
  NetworkBuilder b;
  const auto x = add_pis(b, "x", inputs);
  // count[j] after i inputs: exactly j of the first i inputs are 1.
  std::vector<NodeId> count{b.const1()};
  for (int i = 0; i < inputs; ++i) {
    const auto xi = x[static_cast<std::size_t>(i)];
    std::vector<NodeId> next(count.size() + 1);
    const NodeId not_xi = b.add_inv(xi);
    next[0] = b.add_and(count[0], not_xi);
    for (std::size_t j = 1; j < count.size(); ++j) {
      next[j] = b.add_or(b.add_and(count[j], not_xi),
                         b.add_and(count[j - 1], xi));
    }
    next[count.size()] = b.add_and(count.back(), xi);
    count = std::move(next);
  }
  NodeId f = b.const0();
  for (const int k : accepted) {
    if (k >= 0 && static_cast<std::size_t>(k) < count.size()) {
      f = b.add_or(f, count[static_cast<std::size_t>(k)]);
    }
  }
  b.add_output(f, "sym");
  return remove_dead_nodes(std::move(b).build());
}

Network gen_xor_tree(int inputs, int outputs, int subset,
                     std::uint64_t seed) {
  SOIDOM_REQUIRE(inputs >= 2 && outputs >= 1 && subset >= 2 &&
                     subset <= inputs,
                 "gen_xor_tree: bad shape");
  Rng rng(seed);
  NetworkBuilder b;
  const auto x = add_pis(b, "x", inputs);
  for (int o = 0; o < outputs; ++o) {
    // Each output XORs `subset` distinct inputs (partial Fisher-Yates).
    std::vector<NodeId> deck = x;
    for (int k = 0; k < subset; ++k) {
      const auto pick = static_cast<std::size_t>(k) +
                        static_cast<std::size_t>(rng.next_below(
                            deck.size() - static_cast<std::size_t>(k)));
      std::swap(deck[static_cast<std::size_t>(k)], deck[pick]);
    }
    std::vector<NodeId> terms(deck.begin(),
                              deck.begin() + static_cast<std::ptrdiff_t>(subset));
    while (terms.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
        next.push_back(xor2(b, terms[i], terms[i + 1]));
      }
      if (terms.size() % 2 == 1) next.push_back(terms.back());
      terms = std::move(next);
    }
    b.add_output(terms.front(), "p" + std::to_string(o));
  }
  return remove_dead_nodes(std::move(b).build());
}

Network gen_priority(int inputs) {
  SOIDOM_REQUIRE(inputs >= 2, "gen_priority: need at least 2 inputs");
  NetworkBuilder b;
  const auto req = add_pis(b, "r", inputs);
  const auto mask = add_pis(b, "m", inputs);
  NodeId taken = b.const0();
  NodeId any = b.const0();
  for (int i = 0; i < inputs; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const NodeId eligible = b.add_and(req[idx], mask[idx]);
    b.add_output(b.add_and(eligible, b.add_inv(taken)),
                 "g" + std::to_string(i));
    taken = b.add_or(taken, eligible);
    any = b.add_or(any, req[idx]);
  }
  b.add_output(any, "any");
  return remove_dead_nodes(std::move(b).build());
}

Network gen_barrel_rotator(int width, int select_bits) {
  SOIDOM_REQUIRE(width >= 2 && select_bits >= 1 && (1 << select_bits) <= 2 * width,
                 "gen_barrel_rotator: bad shape");
  NetworkBuilder b;
  const auto data = add_pis(b, "d", width);
  const auto sel = add_pis(b, "s", select_bits);
  std::vector<NodeId> layer = data;
  for (int k = 0; k < select_bits; ++k) {
    const int shift = (1 << k) % width;
    std::vector<NodeId> next(layer.size());
    for (int i = 0; i < width; ++i) {
      const auto from = static_cast<std::size_t>((i + shift) % width);
      next[static_cast<std::size_t>(i)] =
          mux2(b, sel[static_cast<std::size_t>(k)], layer[from],
               layer[static_cast<std::size_t>(i)]);
    }
    layer = std::move(next);
  }
  for (int i = 0; i < width; ++i) {
    b.add_output(layer[static_cast<std::size_t>(i)], "y" + std::to_string(i));
  }
  return remove_dead_nodes(std::move(b).build());
}

Network gen_spn(int width, int rounds, std::uint64_t seed) {
  SOIDOM_REQUIRE(width >= 6 && width % 3 == 0,
                 "gen_spn: width must be a multiple of 3 (3-bit S-boxes)");
  Rng rng(seed);
  NetworkBuilder b;
  auto state = add_pis(b, "x", width);

  for (int r = 0; r < rounds; ++r) {
    // S-box layer: seeded random 3-input truth table per output bit.
    std::vector<NodeId> sboxed(state.size());
    for (std::size_t g = 0; g + 2 < state.size(); g += 3) {
      const NodeId in[3] = {state[g], state[g + 1], state[g + 2]};
      for (int bit = 0; bit < 3; ++bit) {
        const std::uint64_t truth = rng.next_below(256);
        // Shannon-expand the 8-row truth table into gates.
        NodeId f = b.const0();
        for (int row = 0; row < 8; ++row) {
          if (((truth >> row) & 1) == 0) continue;
          NodeId minterm = b.const1();
          for (int v = 0; v < 3; ++v) {
            const NodeId lit =
                ((row >> v) & 1) != 0 ? in[v] : b.add_inv(in[v]);
            minterm = b.add_and(minterm, lit);
          }
          f = b.add_or(f, minterm);
        }
        sboxed[g + static_cast<std::size_t>(bit)] = f;
      }
    }
    // Permutation layer: seeded shuffle.
    std::vector<std::size_t> perm(state.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    for (std::size_t i = perm.size(); i-- > 1;) {
      std::swap(perm[i], perm[rng.next_below(i + 1)]);
    }
    // Mixing layer: XOR with the rotated neighbour.
    std::vector<NodeId> next(state.size());
    for (std::size_t i = 0; i < state.size(); ++i) {
      next[i] = xor2(b, sboxed[perm[i]],
                     sboxed[perm[(i + 1) % state.size()]]);
    }
    state = std::move(next);
  }
  for (std::size_t i = 0; i < state.size(); ++i) {
    b.add_output(state[i], "y" + std::to_string(i));
  }
  return remove_dead_nodes(std::move(b).build());
}

Network gen_alu_like(int bits, std::uint64_t seed) {
  SOIDOM_REQUIRE(bits >= 2, "gen_alu_like: bits must be >= 2");
  Rng rng(seed);
  NetworkBuilder b;
  const auto x = add_pis(b, "a", bits);
  const auto y = add_pis(b, "b", bits);
  const NodeId op0 = b.add_pi("op0");
  const NodeId op1 = b.add_pi("op1");
  const NodeId cin = b.add_pi("cin");
  NodeId cout;
  const auto sum = ripple_sum(b, x, y, cin, cout);
  NodeId zero = b.const1();
  for (int i = 0; i < bits; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const NodeId land = b.add_and(x[idx], y[idx]);
    const NodeId lor = b.add_or(x[idx], y[idx]);
    const NodeId lxor = xor2(b, x[idx], y[idx]);
    // op: 00 -> add, 01 -> and, 10 -> or, 11 -> xor.
    const NodeId lo = mux2(b, op0, land, sum[idx]);
    const NodeId hi = mux2(b, op0, lxor, lor);
    const NodeId out = mux2(b, op1, hi, lo);
    b.add_output(out, "f" + std::to_string(i));
    zero = b.add_and(zero, b.add_inv(out));
  }
  b.add_output(cout, "cout");
  b.add_output(zero, "zero");
  // A dash of random control logic so instances differ per seed.
  const NodeId extra =
      rng.chance(1, 2) ? b.add_and(x[0], b.add_inv(y[0])) : b.add_or(x[0], y[0]);
  b.add_output(b.add_and(extra, cout), "ovf");
  return remove_dead_nodes(std::move(b).build());
}

Network gen_two_level(int inputs, int cubes, int outputs, int or_denom,
                      std::uint64_t seed) {
  SOIDOM_REQUIRE(inputs >= 2 && cubes >= 1 && outputs >= 1 && or_denom >= 1,
                 "gen_two_level: bad shape");
  Rng rng(seed);
  NetworkBuilder b;
  const auto x = add_pis(b, "x", inputs);
  std::vector<NodeId> products;
  for (int c = 0; c < cubes; ++c) {
    NodeId p = b.const1();
    int used = 0;
    for (const NodeId xi : x) {
      switch (rng.next_below(4)) {
        case 0:
          p = b.add_and(p, xi);
          ++used;
          break;
        case 1:
          p = b.add_and(p, b.add_inv(xi));
          ++used;
          break;
        default:
          break;  // don't care
      }
      if (used >= 5) break;  // keep cubes narrow like real PLAs
    }
    products.push_back(p);
  }
  for (int o = 0; o < outputs; ++o) {
    NodeId f = b.const0();
    for (const NodeId p : products) {
      if (rng.chance(1, static_cast<std::uint64_t>(or_denom))) {
        f = b.add_or(f, p);
      }
    }
    b.add_output(f, "z" + std::to_string(o));
  }
  return remove_dead_nodes(std::move(b).build());
}

Network gen_random_dag(int pis, int gates, int pos, std::uint64_t seed) {
  SOIDOM_REQUIRE(pis >= 2 && gates >= 1 && pos >= 1,
                 "gen_random_dag: bad shape");
  Rng rng(seed);
  NetworkBuilder b;
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i) {
    pool.push_back(b.add_pi("x" + std::to_string(i)));
  }
  // SIS-style structure: each "named node" is a random SOP cover over a
  // handful of earlier signals, decomposed into a single-fanout AND/OR
  // tree; fanout arises only between named nodes.  This mirrors what the
  // paper's MCNC inputs look like after technology decomposition and is
  // what gives the mapper room to shape multi-transistor pulldowns.
  auto pick = [&]() -> NodeId {
    // Mild recency bias (max of two uniforms) keeps the DAG connected and
    // moderately deep without degenerating into a chain.
    const std::uint64_t n = pool.size();
    const std::uint64_t r = std::max(rng.next_below(n), rng.next_below(n));
    return pool[static_cast<std::size_t>(r)];
  };
  int built = 0;
  while (built < gates) {
    // 2..5 distinct support signals: narrow covers, like SIS output after
    // node simplification, so the mapper can nest several levels of them
    // inside one W<=5 pulldown.
    const int support = 2 + static_cast<int>(rng.next_below(4));
    std::vector<NodeId> in;
    for (int k = 0; k < support; ++k) {
      const NodeId cand = pick();
      if (std::find(in.begin(), in.end(), cand) == in.end()) {
        in.push_back(cand);
      }
    }
    // 1..3 cubes of at most 3 literals each, with random polarities.
    const int cubes = 1 + static_cast<int>(rng.next_below(3));
    NodeId sum = NodeId{};
    for (int c = 0; c < cubes; ++c) {
      NodeId product = NodeId{};
      int lits = 0;
      for (const NodeId sig : in) {
        if (lits >= 3 || rng.chance(1, 3)) continue;
        const NodeId lit = rng.chance(1, 4) ? b.add_inv(sig) : sig;
        product = product.valid() ? b.add_and(product, lit) : lit;
        ++lits;
        ++built;
      }
      if (!product.valid()) product = in.front();
      sum = sum.valid() ? b.add_or(sum, product) : product;
    }
    pool.push_back(sum);
  }
  for (int p = 0; p < pos; ++p) {
    const std::size_t lo = pool.size() / 2;
    const std::size_t pick_idx =
        lo + static_cast<std::size_t>(rng.next_below(pool.size() - lo));
    b.add_output(pool[pick_idx], "z" + std::to_string(p));
  }
  return remove_dead_nodes(std::move(b).build());
}

Network gen_layered_dag(int width, int depth, int back_weight,
                        std::uint64_t seed) {
  SOIDOM_REQUIRE(width >= 2 && depth >= 1,
                 "gen_layered_dag: need width >= 2 and depth >= 1");
  SOIDOM_REQUIRE(back_weight >= 1 && back_weight <= 100,
                 "gen_layered_dag: back_weight must be in [1, 100]");
  Rng rng(seed);
  NetworkBuilder b;
  // One PI column feeds layer 0; all deeper layers are gate-only, so the
  // level profile is controlled by (width, depth) alone.
  std::vector<NodeId> prev = add_pis(b, "x", width);
  std::vector<NodeId> all = prev;
  for (int layer = 0; layer < depth; ++layer) {
    std::vector<NodeId> cur;
    cur.reserve(static_cast<std::size_t>(width));
    for (int g = 0; g < width; ++g) {
      auto pick = [&]() -> NodeId {
        if (rng.next_below(100) < static_cast<std::uint64_t>(back_weight)) {
          return prev[static_cast<std::size_t>(rng.next_below(prev.size()))];
        }
        return all[static_cast<std::size_t>(rng.next_below(all.size()))];
      };
      NodeId a = pick();
      NodeId c = pick();
      for (int tries = 0; a == c && tries < 4; ++tries) c = pick();
      if (rng.chance(1, 8)) a = b.add_inv(a);
      if (rng.chance(1, 8)) c = b.add_inv(c);
      cur.push_back(rng.chance(1, 2) ? b.add_and(a, c) : b.add_or(a, c));
    }
    all.insert(all.end(), cur.begin(), cur.end());
    prev = std::move(cur);
  }
  for (std::size_t i = 0; i < prev.size(); ++i) {
    b.add_output(prev[i], "z" + std::to_string(i));
  }
  return remove_dead_nodes(std::move(b).build());
}

Network gen_multiplier(int bits) {
  SOIDOM_REQUIRE(bits >= 2 && bits <= 128,
                 "gen_multiplier: bits out of range");
  NetworkBuilder b;
  const auto x = add_pis(b, "a", bits);
  const auto y = add_pis(b, "b", bits);
  // Row-by-row ripple reduction of the partial-product array.
  std::vector<NodeId> acc(static_cast<std::size_t>(2 * bits), b.const0());
  for (int row = 0; row < bits; ++row) {
    NodeId carry = b.const0();
    for (int col = 0; col < bits; ++col) {
      const auto pos = static_cast<std::size_t>(row + col);
      const NodeId pp = b.add_and(x[static_cast<std::size_t>(col)],
                                  y[static_cast<std::size_t>(row)]);
      // Full add acc[pos] + pp + carry.
      const NodeId p = xor2(b, acc[pos], pp);
      const NodeId sum = xor2(b, p, carry);
      carry = b.add_or(b.add_and(acc[pos], pp), b.add_and(p, carry));
      acc[pos] = sum;
    }
    // Propagate the row's carry up the accumulator.
    for (std::size_t pos = static_cast<std::size_t>(row + bits);
         pos < acc.size() && carry != b.const0(); ++pos) {
      const NodeId sum = xor2(b, acc[pos], carry);
      carry = b.add_and(acc[pos], carry);
      acc[pos] = sum;
    }
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    b.add_output(acc[i], "p" + std::to_string(i));
  }
  return remove_dead_nodes(std::move(b).build());
}

Network gen_decoder(int select_bits) {
  SOIDOM_REQUIRE(select_bits >= 1 && select_bits <= 8,
                 "gen_decoder: select_bits out of range");
  NetworkBuilder b;
  const auto sel = add_pis(b, "s", select_bits);
  const NodeId en = b.add_pi("en");
  for (int code = 0; code < (1 << select_bits); ++code) {
    NodeId hit = en;
    for (int k = 0; k < select_bits; ++k) {
      const NodeId lit = ((code >> k) & 1) != 0
                             ? sel[static_cast<std::size_t>(k)]
                             : b.add_inv(sel[static_cast<std::size_t>(k)]);
      hit = b.add_and(hit, lit);
    }
    b.add_output(hit, "o" + std::to_string(code));
  }
  return remove_dead_nodes(std::move(b).build());
}

Network gen_cordic(int width, int stages) {
  SOIDOM_REQUIRE(width >= 4 && stages >= 1, "gen_cordic: bad shape");
  NetworkBuilder b;
  auto x = add_pis(b, "x", width);
  auto y = add_pis(b, "y", width);
  const auto dir = add_pis(b, "d", stages);
  for (int s = 0; s < stages; ++s) {
    // x' = x +/- (y >> s), y' = y -/+ (x >> s); the +/- select comes from
    // the stage's direction bit, realized with XOR-conditioned operands.
    const int shift = s + 1;
    std::vector<NodeId> ys(static_cast<std::size_t>(width));
    std::vector<NodeId> xs(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      const int j = i + shift;
      ys[static_cast<std::size_t>(i)] =
          j < width ? y[static_cast<std::size_t>(j)] : b.const0();
      xs[static_cast<std::size_t>(i)] =
          j < width ? x[static_cast<std::size_t>(j)] : b.const0();
    }
    auto conditioned = [&](std::vector<NodeId> v) {
      for (NodeId& n : v) n = xor2(b, n, dir[static_cast<std::size_t>(s)]);
      return v;
    };
    NodeId cx;
    NodeId cy;
    const auto nx = ripple_sum(b, x, conditioned(ys),
                               dir[static_cast<std::size_t>(s)], cx);
    const auto ny = ripple_sum(b, y, conditioned(xs),
                               b.add_inv(dir[static_cast<std::size_t>(s)]), cy);
    x = nx;
    y = ny;
  }
  for (int i = 0; i < width; ++i) {
    b.add_output(x[static_cast<std::size_t>(i)], "xo" + std::to_string(i));
    b.add_output(y[static_cast<std::size_t>(i)], "yo" + std::to_string(i));
  }
  return remove_dead_nodes(std::move(b).build());
}

}  // namespace soidom
