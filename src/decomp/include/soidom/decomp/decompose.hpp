/// \file decompose.hpp
/// Technology decomposition: flat BLIF models (arbitrary-fanin SOP nodes)
/// into networks of 2-input AND / OR gates and inverters — the "initial
/// decomposed network consisting of 2-input AND-OR gates and inverters"
/// the paper's mapping algorithms start from (section IV).
#pragma once

#include "soidom/blif/blif.hpp"
#include "soidom/network/builder.hpp"
#include "soidom/network/network.hpp"

namespace soidom {

/// How multi-input AND/OR operations are broken into 2-input nodes.
enum class TreeShape {
  kBalanced,  ///< logarithmic-depth trees (default; best for depth mapping)
  kChain,     ///< left-leaning linear chains (stresses tall series stacks)
};

struct DecomposeOptions {
  TreeShape shape = TreeShape::kBalanced;
  /// Run two-level minimization (twolevel/minimize.hpp) on every cover
  /// before decomposing it — the SIS-style preprocessing the paper's
  /// benchmark inputs received.
  bool minimize_covers = false;
  /// Run algebraic common-cube extraction (twolevel/extract.hpp) across
  /// the model before decomposition — the multi-level half of the same
  /// preprocessing; increases sharing in the mapped netlist.
  bool extract_cubes = false;
};

/// Decompose a full BLIF model.  Tables may appear in any order; they are
/// processed in dependency order.  Combinational cycles raise an error.
Network decompose(const BlifModel& model, const DecomposeOptions& options = {});

/// Decompose one SOP cover inside an ongoing build; `fanins` are the nodes
/// carrying the cover's inputs.  Returns the node computing the cover.
NodeId decompose_cover(NetworkBuilder& builder, const SopCover& cover,
                       const std::vector<NodeId>& fanins,
                       const DecomposeOptions& options = {});

}  // namespace soidom
