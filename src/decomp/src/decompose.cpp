#include "soidom/decomp/decompose.hpp"

#include <functional>
#include <unordered_map>

#include "soidom/base/contracts.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"
#include "soidom/twolevel/extract.hpp"
#include "soidom/twolevel/minimize.hpp"

namespace soidom {
namespace {

/// Reduce `terms` with `op` (add_and / add_or) in the requested shape.
NodeId reduce(NetworkBuilder& builder, std::vector<NodeId> terms,
              NodeId (NetworkBuilder::*op)(NodeId, NodeId), NodeId empty_value,
              TreeShape shape) {
  if (terms.empty()) return empty_value;
  if (shape == TreeShape::kChain) {
    NodeId acc = terms.front();
    for (std::size_t i = 1; i < terms.size(); ++i) {
      acc = (builder.*op)(acc, terms[i]);
    }
    return acc;
  }
  // Balanced: repeatedly pair adjacent terms.
  while (terms.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back((builder.*op)(terms[i], terms[i + 1]));
    }
    if (terms.size() % 2 == 1) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms.front();
}

}  // namespace

NodeId decompose_cover(NetworkBuilder& builder, const SopCover& cover,
                       const std::vector<NodeId>& fanins,
                       const DecomposeOptions& options) {
  SOIDOM_REQUIRE(fanins.size() == cover.num_inputs,
                 "decompose_cover: fanin count does not match cover");
  const std::size_t nodes_before = builder.peek().size();
  bool constant = false;
  if (cover.is_constant(constant)) {
    return constant ? builder.const1() : builder.const0();
  }

  std::vector<NodeId> products;
  products.reserve(cover.cubes.size());
  for (const Cube& cube : cover.cubes) {
    guard_checkpoint();
    std::vector<NodeId> literals;
    for (std::size_t i = 0; i < cube.lits.size(); ++i) {
      switch (cube.lits[i]) {
        case CubeLit::kPos: literals.push_back(fanins[i]); break;
        case CubeLit::kNeg: literals.push_back(builder.add_inv(fanins[i])); break;
        case CubeLit::kDontCare: break;
      }
    }
    products.push_back(reduce(builder, std::move(literals),
                              &NetworkBuilder::add_and, builder.const1(),
                              options.shape));
  }
  NodeId sum = reduce(builder, std::move(products), &NetworkBuilder::add_or,
                      builder.const0(), options.shape);
  if (!cover.on_set) sum = builder.add_inv(sum);
  guard_charge(Resource::kNetworkNodes, builder.peek().size() - nodes_before);
  return sum;
}

Network decompose(const BlifModel& model, const DecomposeOptions& options) {
  StageScope stage(FlowStage::kDecompose);
  SOIDOM_FAULT_PROBE(FlowStage::kDecompose);
  if (options.extract_cubes) {
    BlifModel extracted = model;
    extract_common_cubes(extracted);
    DecomposeOptions rest = options;
    rest.extract_cubes = false;
    return decompose(extracted, rest);
  }
  NetworkBuilder builder;
  std::unordered_map<std::string, NodeId> signal;

  for (const std::string& in : model.inputs) {
    SOIDOM_REQUIRE(!signal.contains(in),
                   format("duplicate input '%s'", in.c_str()));
    signal.emplace(in, builder.add_pi(in));
  }

  // Process tables in dependency order (DFS with cycle detection).
  enum class Mark : std::uint8_t { kUnseen, kActive, kDone };
  std::vector<Mark> mark(model.tables.size(), Mark::kUnseen);

  std::function<NodeId(std::string_view)> require_signal =
      [&](std::string_view name) -> NodeId {
    if (const auto it = signal.find(std::string(name)); it != signal.end()) {
      return it->second;
    }
    guard_checkpoint();
    const int t = model.table_defining(name);
    SOIDOM_REQUIRE(t >= 0,
                   format("undefined signal '%s'", std::string(name).c_str()));
    const auto ti = static_cast<std::size_t>(t);
    SOIDOM_REQUIRE(mark[ti] != Mark::kActive,
                   format("combinational cycle through '%s'",
                          std::string(name).c_str()));
    mark[ti] = Mark::kActive;
    const BlifTable& table = model.tables[ti];
    std::vector<NodeId> fanins;
    fanins.reserve(table.inputs.size());
    for (const std::string& in : table.inputs) {
      fanins.push_back(require_signal(in));
    }
    const SopCover cover =
        options.minimize_covers ? minimize(table.cover) : table.cover;
    const NodeId out = decompose_cover(builder, cover, fanins, options);
    mark[ti] = Mark::kDone;
    signal.emplace(table.output, out);
    return out;
  };

  for (const std::string& out : model.outputs) {
    builder.add_output(require_signal(out), out);
  }
  return std::move(builder).build();
}

}  // namespace soidom
