/// \file race.hpp
/// Static phase / monotonicity / race analysis of mapped domino netlists.
///
/// Domino correctness is a temporal discipline on top of the structural
/// one: every gate input must be monotone-rising during evaluate, every
/// dynamic node must finish precharging inside the precharge window, and
/// every stage handoff must leave margin against clock skew.  This
/// analyzer proves (conservatively) that a mapped netlist obeys that
/// discipline:
///
///   * a *parity dataflow* over each pulldown tree finds series
///     requirements that include both phases of one primary input —
///     conduction would then need a mid-evaluate falling transition,
///     i.e. a non-monotone input (`race.inversion-parity`);
///   * a *precharge-conduction dataflow* finds footless pulldowns that
///     can conduct while the precharge device is on (a crowbar path:
///     possibly-high PI literals and stale-high domino drivers),
///     the illegal static/domino mix (`race.static-mix`);
///   * conservative min/max *arrival intervals* (src/timing) and
///     *precharge-completion intervals* per gate are checked against the
///     evaluate / precharge clock windows: a gate whose precharge bound
///     overruns the precharge window holds a stale high into evaluate and
///     falls mid-phase — the classic hold-style min-delay race
///     (`race.precharge-overrun`); a gate whose worst arrival overruns
///     the evaluate window misses the handoff (`race.eval-overrun`);
///     surviving margins below the required skew tolerance warn
///     (`race.skew-margin`);
///   * gates are assigned *clock phases* by level; with a multi-phase
///     clock, fanin edges that skip a level cross a phase boundary early
///     (wave-pipelining hazard, `race.phase-skip`).
///
/// The report also carries a per-level slack table (the wave-pipelining
/// balance report) as machine-readable JSON, the input the planned
/// path-balancing DP objective consumes.
///
/// Conservativeness is validated dynamically: soisim's race probe
/// (enable_race) measures observed handoff margins and non-monotone
/// evaluate transitions per gate, and tests/test_race.cpp proves every
/// observation is statically flagged (docs/RACE.md has the argument).
///
/// Findings flow through the lint engine as the `race.*` rule family
/// (docs/LINT.md) with waivers, text / JSON / SARIF 2.1.0 emitters.
/// Layering: race sits above lint/timing/pdn/domino and below core/flow
/// (run_flow drives it as FlowStage::kRace when FlowOptions::race is set).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soidom/domino/netlist.hpp"
#include "soidom/lint/lint.hpp"
#include "soidom/timing/timing.hpp"

namespace soidom {

/// Analyzer knobs.  All times are in DelayModel units; a window of 0
/// means "unconstrained" and disables the checks that need it.
struct RaceOptions {
  DelayModel delay;
  /// Clock phases: gates at level L run on phase (L-1) % num_phases.
  /// With 1 phase (default) every stage shares one clock and phase-skip
  /// analysis is moot; >= 2 enables the wave-pipelining hazard checks.
  int num_phases = 1;
  /// Evaluate window: time from the evaluate edge until the next
  /// precharge edge.  0 = unconstrained (no eval-overrun checks).
  double t_eval = 0.0;
  /// Precharge window: time from the precharge edge until the next
  /// evaluate edge.  0 = unconstrained (no precharge-overrun checks).
  double t_pre = 0.0;
  /// Worst-case clock skew between any two communicating stages;
  /// subtracted from every window before slack is computed.
  double skew = 0.0;
  /// Required residual slack: a gate whose surviving margin is below
  /// this (but non-negative) raises `race.skew-margin`.  0 disables.
  double margin = 0.0;
  /// Worker threads for the per-gate fan-out; 0 = auto, 1 = sequential.
  /// Results are byte-identical across thread counts.
  int num_threads = 1;
  /// Lint waivers applied to race.* findings ("rule" or "rule@substring").
  std::vector<std::string> waivers;
};

/// Per-gate analysis result.
struct RaceGateReport {
  int gate = -1;
  int level = 0;  ///< 1 = fed only by netlist inputs
  int phase = 0;  ///< (level-1) % num_phases
  int fanout = 0;
  // Conservative intervals (src/timing under RaceOptions::delay).
  double arrival_min = 0.0;
  double arrival_max = 0.0;
  double pre_min = 0.0;
  double pre_max = 0.0;
  // Window slacks (0 when the corresponding window is unconstrained).
  double eval_slack = 0.0;  ///< t_eval - skew - arrival_max
  double pre_slack = 0.0;   ///< t_pre - skew - pre_max
  /// Extra skew this gate tolerates: min over the enabled windows'
  /// slacks (0 when no window is constrained).
  double skew_tolerance = 0.0;
  /// Precharge cannot finish inside t_pre: the output may hold a stale
  /// high into evaluate and fall mid-phase (non-monotone to fanout).
  bool stale_high = false;
  /// Fanin gates that are stale_high (non-monotone input sources).
  int nonmonotone_inputs = 0;
  /// Primary inputs required on a series path in BOTH phases (per
  /// pulldown): conduction needs a mid-evaluate falling transition.
  int parity_pairs = 0;
  int parity_pairs2 = 0;  ///< dual gates only
  /// Footless pulldown that can conduct during precharge (crowbar).
  bool mix1 = false;
  bool mix2 = false;  ///< dual gates only
  /// Fanin edges arriving from more than one level below (phase-skip
  /// hazards under a multi-phase clock); gap is the largest skip.
  int skip_fanins = 0;
  int max_fanin_gap = 0;

  bool parity() const { return parity_pairs > 0 || parity_pairs2 > 0; }
  bool mix() const { return mix1 || mix2; }
};

/// One row of the wave-pipelining balance table.
struct RaceLevelReport {
  int level = 0;
  int gates = 0;
  double arrival_min = 0.0;  ///< earliest arrival_min at this level
  double arrival_max = 0.0;  ///< latest arrival_max at this level
  /// Level imbalance: arrival_max - arrival_min.  The path-balancing DP
  /// minimizes this (buffer insertion evens the wave).
  double spread = 0.0;
  int skip_fanins = 0;  ///< phase-skip edges landing on this level
};

/// Machine-readable race/balance report for the whole netlist.
struct RaceReport {
  std::vector<RaceGateReport> gates;
  std::vector<RaceLevelReport> levels;
  // Echoed analysis parameters.
  int num_phases = 1;
  double t_eval = 0.0;
  double t_pre = 0.0;
  double skew = 0.0;
  double margin = 0.0;
  // Aggregates.
  int max_level = 0;
  double critical_arrival = 0.0;  ///< max arrival_max over all gates
  double min_eval_slack = 0.0;    ///< 0 when t_eval unconstrained
  double min_pre_slack = 0.0;     ///< 0 when t_pre unconstrained
  double skew_tolerance = 0.0;    ///< min gate skew_tolerance (0 = none)
  int gates_parity = 0;
  int gates_mix = 0;
  int gates_stale = 0;
  int gates_eval_overrun = 0;
  int gates_phase_skip = 0;

  /// {"num_phases":...,"gates":[...],"levels":[...],...}
  std::string to_json() const;
};

/// Analysis outcome: the race report plus race.* findings rendered
/// through the lint engine (text / JSON / SARIF emitters apply).
struct RaceResult {
  RaceReport report;
  LintReport lint;
};

/// Lint registry holding the race.* rules over `report`.  The registry
/// keeps references: `report` and `options` must outlive any run_lint
/// call using it (run_race handles this internally; exposed for tests).
LintRegistry race_registry(const RaceReport& report,
                           const RaceOptions& options);

/// Run the analyzer over a structurally valid netlist.  Thread-compatible
/// (concurrent calls on distinct netlists are safe); checkpoints the
/// installed guard under FlowStage::kRace.  Deterministic: reports and
/// findings are byte-identical for any num_threads.
RaceResult run_race(const DominoNetlist& netlist,
                    const RaceOptions& options = {});

}  // namespace soidom
