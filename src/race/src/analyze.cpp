/// \file analyze.cpp
/// The race dataflows and the run_race driver.
///
/// Conservativeness argument (docs/RACE.md has the full version).  The
/// soisim race probe observes, per cycle,
///  * an evaluate handoff margin t_eval - skew - arrival, where the
///    observed arrival accumulates RaceProbe::delay_max along the
///    actually-high inputs only — a subset of the inputs the static
///    arrival_max maximizes over, so observed arrival <= arrival_max by
///    induction over topological order and a negative observed margin
///    implies eval_slack < 0 (race.eval-overrun);
///  * a non-monotone evaluate fall, which the probe derives from the
///    same pre_max bound the analyzer uses, so every observed fall is on
///    a gate the analyzer marked stale_high (race.precharge-overrun);
///  * a precharge crowbar fight, which needs a root-to-bottom conducting
///    path of high PI literals through a footless pulldown — every PI
///    literal is possibly-high in the static precharge-conduction
///    dataflow, so the path exists statically too (race.static-mix).
#include <algorithm>
#include <optional>
#include <utility>

#include "soidom/base/contracts.hpp"
#include "soidom/base/parallel.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"
#include "soidom/race/race.hpp"

namespace soidom {
namespace {

/// A PI-literal requirement: (source primary input, phase).
using Literal = std::pair<int, bool>;

/// Sorted-unique set union into `a`.
void merge_union(std::vector<Literal>& a, const std::vector<Literal>& b) {
  std::vector<Literal> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  a = std::move(out);
}

/// Sorted-unique set intersection into `a`.
void merge_intersect(std::vector<Literal>& a, const std::vector<Literal>& b) {
  std::vector<Literal> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  a = std::move(out);
}

/// Parity dataflow over one pulldown tree.  Computes, per node, the set
/// of PI literals required by EVERY conducting assignment of the subtree
/// (leaf: the literal itself for PI leaves, nothing for gate-driven
/// leaves; series: union of children; parallel: intersection).  A series
/// union containing both phases of one PI means every conducting path
/// through that node needs pi AND NOT pi simultaneously — statically
/// impossible, so conduction can only happen transiently while the two
/// literal lines switch at different times: a non-monotone evaluate
/// glitch.  Conflicting PIs are collected into `conflicts`.
struct ParityWalker {
  const Pdn& pdn;
  const DominoNetlist& netlist;
  std::vector<int> conflicts;  ///< sorted-unique source PIs in a pair

  std::vector<Literal> walk(PdnIndex i) {
    const PdnNode& n = pdn.node(i);
    switch (n.kind) {
      case PdnKind::kLeaf: {
        if (!netlist.is_input_signal(n.signal)) return {};
        const InputLiteral& lit = netlist.inputs()[n.signal];
        return {Literal{lit.source_pi, lit.negated}};
      }
      case PdnKind::kSeries: {
        std::vector<Literal> required;
        for (const PdnIndex c : n.children) {
          merge_union(required, walk(c));
        }
        for (std::size_t k = 0; k + 1 < required.size(); ++k) {
          if (required[k].first == required[k + 1].first &&
              !required[k].second && required[k + 1].second) {
            const int pi = required[k].first;
            const auto it =
                std::lower_bound(conflicts.begin(), conflicts.end(), pi);
            if (it == conflicts.end() || *it != pi) conflicts.insert(it, pi);
          }
        }
        return required;
      }
      case PdnKind::kParallel: {
        std::vector<Literal> required = walk(n.children[0]);
        for (std::size_t k = 1; k < n.children.size(); ++k) {
          if (required.empty()) break;
          merge_intersect(required, walk(n.children[k]));
        }
        return required;
      }
    }
    return {};
  }
};

/// Number of PIs required in both phases anywhere in `pdn`.
int parity_pairs(const Pdn& pdn, const DominoNetlist& netlist) {
  if (pdn.empty()) return 0;
  ParityWalker walker{pdn, netlist, {}};
  walker.walk(pdn.root());
  return static_cast<int>(walker.conflicts.size());
}

std::string gate_json(const RaceGateReport& g) {
  std::string out = format(
      R"({"gate":%d,"level":%d,"phase":%d,"fanout":%d,)"
      R"("arrival_min":%.9g,"arrival_max":%.9g,)"
      R"("pre_min":%.9g,"pre_max":%.9g,)"
      R"("eval_slack":%.9g,"pre_slack":%.9g,"skew_tolerance":%.9g,)"
      R"("stale_high":%s,"nonmonotone_inputs":%d,)"
      R"("parity_pairs":%d,"parity_pairs2":%d,"mix1":%s,"mix2":%s,)"
      R"("skip_fanins":%d,"max_fanin_gap":%d})",
      g.gate, g.level, g.phase, g.fanout, g.arrival_min, g.arrival_max,
      g.pre_min, g.pre_max, g.eval_slack, g.pre_slack, g.skew_tolerance,
      g.stale_high ? "true" : "false", g.nonmonotone_inputs, g.parity_pairs,
      g.parity_pairs2, g.mix1 ? "true" : "false", g.mix2 ? "true" : "false",
      g.skip_fanins, g.max_fanin_gap);
  return out;
}

std::string level_json(const RaceLevelReport& l) {
  return format(R"({"level":%d,"gates":%d,"arrival_min":%.9g,)"
                R"("arrival_max":%.9g,"spread":%.9g,"skip_fanins":%d})",
                l.level, l.gates, l.arrival_min, l.arrival_max, l.spread,
                l.skip_fanins);
}

}  // namespace

std::string RaceReport::to_json() const {
  std::string out = format(
      R"({"num_phases":%d,"t_eval":%.9g,"t_pre":%.9g,"skew":%.9g,)"
      R"("margin":%.9g,"max_level":%d,"critical_arrival":%.9g,)"
      R"("min_eval_slack":%.9g,"min_pre_slack":%.9g,"skew_tolerance":%.9g,)"
      R"("gates_parity":%d,"gates_mix":%d,"gates_stale":%d,)"
      R"("gates_eval_overrun":%d,"gates_phase_skip":%d,"gates":[)",
      num_phases, t_eval, t_pre, skew, margin, max_level, critical_arrival,
      min_eval_slack, min_pre_slack, skew_tolerance, gates_parity, gates_mix,
      gates_stale, gates_eval_overrun, gates_phase_skip);
  for (std::size_t g = 0; g < gates.size(); ++g) {
    if (g) out += ',';
    out += gate_json(gates[g]);
  }
  out += R"(],"levels":[)";
  for (std::size_t l = 0; l < levels.size(); ++l) {
    if (l) out += ',';
    out += level_json(levels[l]);
  }
  out += "]}";
  return out;
}

RaceResult run_race(const DominoNetlist& netlist, const RaceOptions& options) {
  SOIDOM_REQUIRE(options.num_phases >= 1,
                 "run_race: num_phases must be at least 1");
  SOIDOM_REQUIRE(options.t_eval >= 0.0 && options.t_pre >= 0.0,
                 "run_race: clock windows must be non-negative");
  SOIDOM_REQUIRE(options.skew >= 0.0 && options.margin >= 0.0,
                 "run_race: skew and margin must be non-negative");
  SOIDOM_REQUIRE(options.num_threads >= 0,
                 "run_race: num_threads must be non-negative");
  StageScope stage_scope(FlowStage::kRace);
  SOIDOM_FAULT_PROBE(FlowStage::kRace);
  guard_checkpoint();

  const TimingReport timing = analyze_timing(netlist, options.delay);
  const std::vector<int> levels = netlist.gate_levels();
  const std::size_t num_gates = netlist.gates().size();

  // Fanout counts (same accounting as analyze_timing).
  std::vector<int> fanout(num_gates, 0);
  for (const DominoGate& gate : netlist.gates()) {
    for (const std::uint32_t sig : gate.all_leaf_signals()) {
      if (!netlist.is_input_signal(sig)) ++fanout[netlist.gate_of_signal(sig)];
    }
  }
  for (const DominoOutput& o : netlist.outputs()) {
    if (o.constant < 0 && !netlist.is_input_signal(o.signal)) {
      ++fanout[netlist.gate_of_signal(o.signal)];
    }
  }

  // Stale-high pass (serial: the precharge-conduction dataflow below
  // reads every fanin's flag, and gate order is topological).
  std::vector<char> stale(num_gates, 0);
  if (options.t_pre > 0.0) {
    for (std::size_t g = 0; g < num_gates; ++g) {
      stale[g] = options.t_pre - options.skew - timing.gates[g].pre_max < 0.0
                     ? 1
                     : 0;
    }
  }
  // A leaf is possibly high during precharge when it is a PI literal
  // (PIs are not clocked) or a stale-high domino driver.
  const auto precharge_high = [&](std::uint32_t sig) {
    return netlist.is_input_signal(sig) ||
           stale[netlist.gate_of_signal(sig)] != 0;
  };

  std::vector<RaceGateReport> slots(num_gates);
  GuardContext* guard = current_guard();
  ThreadPool pool(static_cast<unsigned>(options.num_threads));
  pool.run(num_gates, [&](std::size_t g, unsigned worker) {
    // Worker 0 is the calling thread and already has the guard installed.
    std::optional<GuardScope> scope;
    if (worker != 0 && guard != nullptr) scope.emplace(*guard);
    guard_checkpoint();
    const DominoGate& spec = netlist.gates()[g];
    const GateTiming& t = timing.gates[g];
    RaceGateReport& rep = slots[g];
    rep.gate = static_cast<int>(g);
    rep.level = levels[g];
    rep.phase = (levels[g] - 1) % options.num_phases;
    rep.fanout = fanout[g];
    rep.arrival_min = t.arrival_min;
    rep.arrival_max = t.arrival_max;
    rep.pre_min = t.pre_min;
    rep.pre_max = t.pre_max;
    if (options.t_eval > 0.0) {
      rep.eval_slack = options.t_eval - options.skew - t.arrival_max;
    }
    if (options.t_pre > 0.0) {
      rep.pre_slack = options.t_pre - options.skew - t.pre_max;
      rep.stale_high = rep.pre_slack < 0.0;
    }
    if (options.t_eval > 0.0 && options.t_pre > 0.0) {
      rep.skew_tolerance = std::min(rep.eval_slack, rep.pre_slack);
    } else if (options.t_eval > 0.0) {
      rep.skew_tolerance = rep.eval_slack;
    } else if (options.t_pre > 0.0) {
      rep.skew_tolerance = rep.pre_slack;
    }
    rep.parity_pairs = parity_pairs(spec.pdn, netlist);
    if (spec.dual()) rep.parity_pairs2 = parity_pairs(spec.pdn2, netlist);
    if (!spec.pdn.empty() && !spec.footed) {
      rep.mix1 = spec.pdn.conducts(precharge_high);
    }
    if (spec.dual() && !spec.footed2) {
      rep.mix2 = spec.pdn2.conducts(precharge_high);
    }
    // Fanin edges: distinct driver gates (level gaps + stale sources).
    std::vector<std::uint32_t> fanins = spec.all_leaf_signals();
    std::sort(fanins.begin(), fanins.end());
    fanins.erase(std::unique(fanins.begin(), fanins.end()), fanins.end());
    for (const std::uint32_t sig : fanins) {
      if (netlist.is_input_signal(sig)) continue;
      const std::uint32_t fg = netlist.gate_of_signal(sig);
      if (stale[fg] != 0) ++rep.nonmonotone_inputs;
      const int gap = levels[g] - levels[fg];
      if (gap > 1) {
        ++rep.skip_fanins;
        rep.max_fanin_gap = std::max(rep.max_fanin_gap, gap);
      }
    }
  });

  RaceResult result;
  result.report.gates = std::move(slots);
  result.report.num_phases = options.num_phases;
  result.report.t_eval = options.t_eval;
  result.report.t_pre = options.t_pre;
  result.report.skew = options.skew;
  result.report.margin = options.margin;

  for (const RaceGateReport& g : result.report.gates) {
    RaceReport& r = result.report;
    r.max_level = std::max(r.max_level, g.level);
    r.critical_arrival = std::max(r.critical_arrival, g.arrival_max);
    if (g.parity()) ++r.gates_parity;
    if (g.mix()) ++r.gates_mix;
    if (g.stale_high) ++r.gates_stale;
    if (options.t_eval > 0.0 && g.eval_slack < 0.0) ++r.gates_eval_overrun;
    if (g.skip_fanins > 0) ++r.gates_phase_skip;
  }
  if (!result.report.gates.empty()) {
    bool first = true;
    for (const RaceGateReport& g : result.report.gates) {
      RaceReport& r = result.report;
      if (options.t_eval > 0.0) {
        r.min_eval_slack =
            first ? g.eval_slack : std::min(r.min_eval_slack, g.eval_slack);
      }
      if (options.t_pre > 0.0) {
        r.min_pre_slack =
            first ? g.pre_slack : std::min(r.min_pre_slack, g.pre_slack);
      }
      if (options.t_eval > 0.0 || options.t_pre > 0.0) {
        r.skew_tolerance = first ? g.skew_tolerance
                                 : std::min(r.skew_tolerance,
                                            g.skew_tolerance);
      }
      first = false;
    }
  }
  result.report.levels.resize(
      static_cast<std::size_t>(result.report.max_level));
  for (const RaceGateReport& g : result.report.gates) {
    RaceLevelReport& row =
        result.report.levels[static_cast<std::size_t>(g.level - 1)];
    if (row.gates == 0) {
      row.level = g.level;
      row.arrival_min = g.arrival_min;
      row.arrival_max = g.arrival_max;
    } else {
      row.arrival_min = std::min(row.arrival_min, g.arrival_min);
      row.arrival_max = std::max(row.arrival_max, g.arrival_max);
    }
    ++row.gates;
    row.skip_fanins += g.skip_fanins;
  }
  for (RaceLevelReport& row : result.report.levels) {
    row.spread = row.arrival_max - row.arrival_min;
  }

  LintOptions lint_options;
  lint_options.waivers = options.waivers;
  const LintRegistry registry = race_registry(result.report, options);
  result.lint = run_lint(registry, netlist, lint_options, nullptr,
                         FlowStage::kRace);
  return result;
}

}  // namespace soidom
