/// \file rules.cpp
/// The race.* lint rule family: renders a RaceReport as structured
/// findings through the lint engine (docs/LINT.md has the catalogue).
///
/// Like the csa.* family these are report-driven: the rule objects hold
/// references to the RaceReport/RaceOptions they were built over, so
/// race_registry()'s result must not outlive them (run_race keeps
/// everything on one stack frame).
#include "soidom/base/strings.hpp"
#include "soidom/race/race.hpp"

namespace soidom {
namespace {

/// Shared base: iterates the report's gates and keeps the registry
/// lifetime contract in one place.
class RaceRule : public LintRule {
 public:
  RaceRule(const RaceReport& report, const RaceOptions& options)
      : report_(report), options_(options) {}

  /// Report-driven rules never index through the netlist, so they are
  /// safe to run even when a foundation rule failed.
  bool needs_sound() const override { return false; }

 protected:
  static LintLocation at(const RaceGateReport& gate, int which = 0) {
    LintLocation loc;
    loc.gate = gate.gate;
    loc.pdn = which;
    return loc;
  }

  const RaceReport& report_;
  const RaceOptions& options_;
};

class InversionParityRule final : public RaceRule {
 public:
  using RaceRule::RaceRule;
  const char* id() const override { return "race.inversion-parity"; }
  const char* summary() const override {
    return "a series path requires both phases of one primary input; "
           "conduction needs a non-monotone evaluate transition";
  }
  LintSeverity severity() const override { return LintSeverity::kError; }

  void run(const LintContext&, std::vector<Finding>& out) const override {
    for (const RaceGateReport& gate : report_.gates) {
      const auto emit = [&](int which, int pairs) {
        if (pairs == 0) return;
        Finding f;
        f.severity = severity();
        f.location = at(gate, which);
        f.message = format(
            "%d primary input%s required in both phases on a series path; "
            "the pulldown can only conduct through a mid-evaluate falling "
            "glitch",
            pairs, pairs == 1 ? "" : "s");
        f.fixit =
            "re-run unate conversion; a correctly unate mapping never "
            "places complementary literals in series";
        out.push_back(std::move(f));
      };
      emit(1, gate.parity_pairs);
      emit(2, gate.parity_pairs2);
    }
  }
};

class StaticMixRule final : public RaceRule {
 public:
  using RaceRule::RaceRule;
  const char* id() const override { return "race.static-mix"; }
  const char* summary() const override {
    return "a footless pulldown can conduct during precharge "
           "(static/domino crowbar path)";
  }
  LintSeverity severity() const override { return LintSeverity::kError; }

  void run(const LintContext&, std::vector<Finding>& out) const override {
    for (const RaceGateReport& gate : report_.gates) {
      const auto emit = [&](int which, bool mix) {
        if (!mix) return;
        Finding f;
        f.severity = severity();
        f.location = at(gate, which);
        f.message = format(
            "footless pulldown can conduct while the precharge device is "
            "on (%d stale-high fanin%s feeding it)",
            gate.nonmonotone_inputs,
            gate.nonmonotone_inputs == 1 ? "" : "s");
        f.fixit =
            "add a clock foot transistor, or fix the stale-high drivers "
            "(race.precharge-overrun) feeding this gate";
        out.push_back(std::move(f));
      };
      emit(1, gate.mix1);
      emit(2, gate.mix2);
    }
  }
};

class PrechargeOverrunRule final : public RaceRule {
 public:
  using RaceRule::RaceRule;
  const char* id() const override { return "race.precharge-overrun"; }
  const char* summary() const override {
    return "precharge cannot finish inside the precharge window; the "
           "output holds a stale high into evaluate (min-delay race)";
  }
  LintSeverity severity() const override { return LintSeverity::kError; }

  void run(const LintContext&, std::vector<Finding>& out) const override {
    for (const RaceGateReport& gate : report_.gates) {
      if (!gate.stale_high) continue;
      Finding f;
      f.severity = severity();
      f.location = at(gate);
      f.message = format(
          "precharge bound %.3f + skew %.3f overruns t_pre %.3f by %.3f; "
          "the output falls mid-evaluate and is non-monotone to %d "
          "fanout%s",
          gate.pre_max, options_.skew, options_.t_pre, -gate.pre_slack,
          gate.fanout, gate.fanout == 1 ? "" : "s");
      f.fixit =
          "widen the precharge window, strengthen the precharge device "
          "(smaller per_parallel / per_discharge loading), or reduce the "
          "pulldown width";
      out.push_back(std::move(f));
    }
  }
};

class EvalOverrunRule final : public RaceRule {
 public:
  using RaceRule::RaceRule;
  const char* id() const override { return "race.eval-overrun"; }
  const char* summary() const override {
    return "worst-case arrival overruns the evaluate window; the stage "
           "handoff can miss";
  }
  LintSeverity severity() const override { return LintSeverity::kWarning; }

  void run(const LintContext&, std::vector<Finding>& out) const override {
    if (options_.t_eval <= 0.0) return;
    for (const RaceGateReport& gate : report_.gates) {
      if (gate.eval_slack >= 0.0) continue;
      Finding f;
      f.severity = severity();
      f.location = at(gate);
      f.message = format(
          "arrival bound %.3f + skew %.3f overruns t_eval %.3f by %.3f "
          "(level %d)",
          gate.arrival_max, options_.skew, options_.t_eval, -gate.eval_slack,
          gate.level);
      f.fixit =
          "widen the evaluate window or rebalance the path (the levels "
          "table in the race report shows where the slack went)";
      out.push_back(std::move(f));
    }
  }
};

class SkewMarginRule final : public RaceRule {
 public:
  using RaceRule::RaceRule;
  const char* id() const override { return "race.skew-margin"; }
  const char* summary() const override {
    return "a stage handoff survives but with less residual slack than "
           "the required skew-tolerance margin";
  }
  LintSeverity severity() const override { return LintSeverity::kWarning; }

  void run(const LintContext&, std::vector<Finding>& out) const override {
    if (options_.margin <= 0.0) return;
    if (options_.t_eval <= 0.0 && options_.t_pre <= 0.0) return;
    for (const RaceGateReport& gate : report_.gates) {
      // Overruns already get their own (stronger) findings.
      if (gate.stale_high) continue;
      if (options_.t_eval > 0.0 && gate.eval_slack < 0.0) continue;
      if (gate.skew_tolerance >= options_.margin) continue;
      Finding f;
      f.severity = severity();
      f.location = at(gate);
      f.message = format(
          "residual slack %.3f is below the required margin %.3f "
          "(eval slack %.3f, precharge slack %.3f)",
          gate.skew_tolerance, options_.margin, gate.eval_slack,
          gate.pre_slack);
      f.fixit = "tighten the clock distribution or widen the windows";
      out.push_back(std::move(f));
    }
  }
};

class PhaseSkipRule final : public RaceRule {
 public:
  using RaceRule::RaceRule;
  const char* id() const override { return "race.phase-skip"; }
  const char* summary() const override {
    return "a fanin crosses more than one level under a multi-phase "
           "clock (wave-pipelining hazard)";
  }
  LintSeverity severity() const override { return LintSeverity::kWarning; }

  void run(const LintContext&, std::vector<Finding>& out) const override {
    if (options_.num_phases < 2) return;
    for (const RaceGateReport& gate : report_.gates) {
      if (gate.skip_fanins == 0) continue;
      Finding f;
      f.severity = severity();
      f.location = at(gate);
      f.message = format(
          "%d fanin%s skip%s up to %d level%s into phase %d; the driver's "
          "wave precharges before this gate evaluates",
          gate.skip_fanins, gate.skip_fanins == 1 ? "" : "s",
          gate.skip_fanins == 1 ? "s" : "", gate.max_fanin_gap,
          gate.max_fanin_gap == 1 ? "" : "s", gate.phase);
      f.fixit =
          "insert buffer gates to balance the path (the planned "
          "path-balancing DP consumes the levels table for this)";
      out.push_back(std::move(f));
    }
  }
};

}  // namespace

LintRegistry race_registry(const RaceReport& report,
                           const RaceOptions& options) {
  LintRegistry registry;
  registry.add(std::make_unique<InversionParityRule>(report, options));
  registry.add(std::make_unique<StaticMixRule>(report, options));
  registry.add(std::make_unique<PrechargeOverrunRule>(report, options));
  registry.add(std::make_unique<EvalOverrunRule>(report, options));
  registry.add(std::make_unique<SkewMarginRule>(report, options));
  registry.add(std::make_unique<PhaseSkipRule>(report, options));
  return registry;
}

}  // namespace soidom
