/// \file table.hpp
/// Aligned ASCII tables in the style of the paper's result tables, plus
/// CSV export.  Used by every bench/ binary.
#pragma once

#include <string>
#include <vector>

namespace soidom {

/// A rectangular results table: header row + data rows.  Rendering right
/// aligns numeric-looking cells and left aligns the rest.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Horizontal rule before the next row (used above the Average row).
  void add_separator();

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }

  std::string to_string() const;
  std::string to_csv() const;

  // --- cell formatting helpers -------------------------------------------
  static std::string cell(int value);
  static std::string cell(double value, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  ///< row indices preceded by a rule
};

}  // namespace soidom
