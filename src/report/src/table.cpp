#include "soidom/report/table.hpp"

#include <algorithm>
#include <sstream>

#include "soidom/base/contracts.hpp"
#include "soidom/base/strings.hpp"

namespace soidom {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != '%') {
      return false;
    }
  }
  return true;
}

}  // namespace

ResultTable::ResultTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SOIDOM_ASSERT(!headers_.empty());
}

void ResultTable::add_row(std::vector<std::string> cells) {
  SOIDOM_REQUIRE(cells.size() == headers_.size(),
                 "ResultTable: wrong number of cells in row");
  rows_.push_back(std::move(cells));
}

void ResultTable::add_separator() { separators_.push_back(rows_.size()); }

std::string ResultTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream os;
  auto rule = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells, bool header) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = width[c] - cells[c].size();
      const bool right = !header && looks_numeric(cells[c]);
      os << "| " << (right ? std::string(pad, ' ') + cells[c]
                           : cells[c] + std::string(pad, ' '))
         << ' ';
    }
    os << "|\n";
  };

  rule();
  emit(headers_, true);
  rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(separators_.begin(), separators_.end(), r) !=
        separators_.end()) {
      rule();
    }
    emit(rows_[r], false);
  }
  rule();
  return os.str();
}

std::string ResultTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string ResultTable::cell(int value) { return std::to_string(value); }

std::string ResultTable::cell(double value, int decimals) {
  return format("%.*f", decimals, value);
}

}  // namespace soidom
