/// \file rules.cpp
/// The built-in lint rule catalogue (docs/LINT.md documents every rule).
#include <algorithm>
#include <set>

#include "soidom/base/strings.hpp"
#include "soidom/domino/postpass.hpp"
#include "soidom/domino/seqaware.hpp"
#include "soidom/domino/stats.hpp"
#include "soidom/lint/lint.hpp"

namespace soidom {
namespace {

/// One pulldown of a gate, with everything the per-pdn rules need.
struct PdnView {
  const Pdn& pdn;
  bool footed = false;
  const std::vector<DischargePoint>& discharges;
  int which = 1;  ///< 1 or 2 (LintLocation::pdn)
  bool grounded = false;  ///< bottom grounded under the lint policy
};

/// Whether pdn2's bottom counts as grounded (pdn1 uses
/// gate_bottom_grounded; the second stack of a dual gate has its own
/// foot flag).
bool second_bottom_grounded(const DominoGate& gate, GroundingPolicy policy) {
  switch (policy) {
    case GroundingPolicy::kAllGrounded: return true;
    case GroundingPolicy::kNoneGrounded: return false;
    case GroundingPolicy::kFootlessGrounded: return !gate.footed2;
  }
  return false;
}

template <typename Fn>
void for_each_pdn(const LintContext& context, std::size_t g, Fn&& fn) {
  const DominoGate& gate = context.netlist.gates()[g];
  const GroundingPolicy policy = context.options.grounding;
  fn(PdnView{gate.pdn, gate.footed, gate.discharges, 1,
             gate_bottom_grounded(gate, policy)});
  if (gate.dual()) {
    fn(PdnView{gate.pdn2, gate.footed2, gate.discharges2, 2,
               second_bottom_grounded(gate, policy)});
  }
}

LintLocation at_gate(std::size_t g, int which = 1, std::string detail = "") {
  LintLocation loc;
  loc.gate = static_cast<int>(g);
  loc.pdn = which;
  loc.detail = std::move(detail);
  return loc;
}

LintLocation at_output(std::size_t j) {
  LintLocation loc;
  loc.output = static_cast<int>(j);
  return loc;
}

LintLocation at_input(std::size_t k) {
  LintLocation loc;
  loc.input = static_cast<int>(k);
  return loc;
}

Finding make(LintSeverity severity, LintLocation location, std::string message,
             std::string fixit = "") {
  Finding f;
  f.severity = severity;
  f.location = std::move(location);
  f.message = std::move(message);
  f.fixit = std::move(fixit);
  return f;
}

// ---------------------------------------------------------------------------
// Foundation rules: validate every index the dependent rules rely on.
// ---------------------------------------------------------------------------

/// `topo-order`: every in-range leaf signal references an input literal or
/// the output of an EARLIER gate (the netlist invariant that makes single
/// forward passes sound).
class TopoOrderRule final : public LintRule {
 public:
  const char* id() const override { return "topo-order"; }
  const char* summary() const override {
    return "leaf signals reference only inputs or earlier gates";
  }
  bool needs_sound() const override { return false; }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    const DominoNetlist& netlist = context.netlist;
    const std::uint32_t defined = static_cast<std::uint32_t>(
        netlist.num_inputs() + netlist.gates().size());
    for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
      for_each_pdn(context, g, [&](const PdnView& view) {
        for (const std::uint32_t sig : view.pdn.leaf_signals()) {
          if (netlist.is_input_signal(sig) || sig >= defined) continue;
          const std::uint32_t other = netlist.gate_of_signal(sig);
          if (other >= g) {
            out.push_back(make(
                LintSeverity::kError, at_gate(g, view.which),
                format("references gate %u (not earlier): netlist is not "
                       "topologically ordered",
                       other)));
          }
        }
      });
    }
  }
};

/// `dangling-ref`: leaf signals, output signals and discharge points all
/// refer to elements that exist.
class DanglingRefRule final : public LintRule {
 public:
  const char* id() const override { return "dangling-ref"; }
  const char* summary() const override {
    return "signals and discharge points refer to existing elements";
  }
  bool needs_sound() const override { return false; }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    const DominoNetlist& netlist = context.netlist;
    const std::uint32_t defined = static_cast<std::uint32_t>(
        netlist.num_inputs() + netlist.gates().size());
    for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
      const DominoGate& gate = netlist.gates()[g];
      for_each_pdn(context, g, [&](const PdnView& view) {
        for (const std::uint32_t sig : view.pdn.leaf_signals()) {
          if (sig >= defined) {
            out.push_back(make(LintSeverity::kError, at_gate(g, view.which),
                               format("references undefined signal %u", sig)));
          }
        }
        for (const DischargePoint& p : view.discharges) {
          if (p.at_bottom()) continue;
          if (p.series_node >= view.pdn.pool_size()) {
            out.push_back(
                make(LintSeverity::kError, at_gate(g, view.which),
                     format("discharge at nonexistent node %u", p.series_node)));
            continue;
          }
          const PdnNode& n = view.pdn.node(p.series_node);
          if (n.kind != PdnKind::kSeries || p.pos + 1 >= n.children.size()) {
            out.push_back(
                make(LintSeverity::kError, at_gate(g, view.which),
                     format("discharge at invalid junction (s=%u,p=%u)",
                            p.series_node, p.pos)));
          }
        }
      });
      if (!gate.dual() && !gate.discharges2.empty()) {
        out.push_back(make(LintSeverity::kError, at_gate(g),
                           "discharges2 set on a classic gate"));
      }
    }
    for (std::size_t j = 0; j < netlist.outputs().size(); ++j) {
      const DominoOutput& o = netlist.outputs()[j];
      if (o.constant < 0 && o.signal >= defined) {
        out.push_back(make(LintSeverity::kError, at_output(j),
                           format("dangling signal %u", o.signal)));
      }
    }
  }
};

/// `empty-gate`: every gate has a non-empty primary pulldown.
class EmptyGateRule final : public LintRule {
 public:
  const char* id() const override { return "empty-gate"; }
  const char* summary() const override {
    return "every gate has a non-empty primary pulldown";
  }
  bool needs_sound() const override { return false; }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    for (std::size_t g = 0; g < context.netlist.gates().size(); ++g) {
      if (context.netlist.gates()[g].pdn.empty()) {
        out.push_back(make(LintSeverity::kError, at_gate(g),
                           "empty pulldown"));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Structural rules (require a sound netlist).
// ---------------------------------------------------------------------------

/// `footedness`: the footed flag matches the pulldown contents — a clock
/// foot is required exactly when some leaf is a primary-input literal
/// (paper section IV; the flag drives overhead and PBE grounding).
class FootednessRule final : public LintRule {
 public:
  const char* id() const override { return "footedness"; }
  const char* summary() const override {
    return "footed flags match pulldown contents";
  }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    const DominoNetlist& netlist = context.netlist;
    for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
      const DominoGate& gate = netlist.gates()[g];
      for_each_pdn(context, g, [&](const PdnView& view) {
        bool has_input_leaf = false;
        for (const std::uint32_t sig : view.pdn.leaf_signals()) {
          if (netlist.is_input_signal(sig)) has_input_leaf = true;
        }
        if (view.footed != has_input_leaf) {
          out.push_back(make(
              LintSeverity::kError, at_gate(g, view.which),
              format("footed=%d but has_input_leaf=%d",
                     static_cast<int>(view.footed),
                     static_cast<int>(has_input_leaf)),
              has_input_leaf ? "add the n-clock foot transistor (footed=1)"
                             : "drop the n-clock foot transistor (footed=0)"));
        }
      });
      if (!gate.dual() && gate.footed2) {
        out.push_back(make(LintSeverity::kError, at_gate(g),
                           "footed2 set on a classic gate"));
      }
    }
  }
};

/// `shape-limits`: no pulldown exceeds the W/H ceilings the mapper was
/// run with (paper section IV's W_max/H_max feasibility constraints).
class ShapeLimitsRule final : public LintRule {
 public:
  const char* id() const override { return "shape-limits"; }
  const char* summary() const override {
    return "pulldown width/height within the mapper's W/H limits";
  }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    const int wmax = context.options.max_width;
    const int hmax = context.options.max_height;
    if (wmax <= 0 && hmax <= 0) return;
    for (std::size_t g = 0; g < context.netlist.gates().size(); ++g) {
      for_each_pdn(context, g, [&](const PdnView& view) {
        if (wmax > 0 && view.pdn.width() > wmax) {
          out.push_back(make(LintSeverity::kError, at_gate(g, view.which),
                             format("width %d exceeds W=%d",
                                    view.pdn.width(), wmax),
                             "split the pulldown across gates (remap)"));
        }
        if (hmax > 0 && view.pdn.height() > hmax) {
          out.push_back(make(LintSeverity::kError, at_gate(g, view.which),
                             format("height %d exceeds H=%d",
                                    view.pdn.height(), hmax),
                             "split the pulldown across gates (remap)"));
        }
      });
    }
  }
};

/// `input-phase`: input literals carry valid primary-input provenance and
/// no (PI, phase) pair is defined twice.
class InputPhaseRule final : public LintRule {
 public:
  const char* id() const override { return "input-phase"; }
  const char* summary() const override {
    return "input literals have valid, unique PI provenance";
  }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    const DominoNetlist& netlist = context.netlist;
    std::set<std::pair<int, bool>> seen;
    for (std::size_t k = 0; k < netlist.inputs().size(); ++k) {
      const InputLiteral& in = netlist.inputs()[k];
      if (in.source_pi < 0) {
        out.push_back(make(LintSeverity::kError, at_input(k),
                           "source primary input is unset"));
        continue;
      }
      if (context.source != nullptr &&
          static_cast<std::size_t>(in.source_pi) >=
              context.source->pis().size()) {
        out.push_back(make(
            LintSeverity::kError, at_input(k),
            format("source primary input %d out of range (network has %zu)",
                   in.source_pi, context.source->pis().size())));
        continue;
      }
      if (!seen.insert({in.source_pi, in.negated}).second) {
        out.push_back(make(
            LintSeverity::kWarning, at_input(k),
            format("duplicate literal for PI %d (%s phase)", in.source_pi,
                   in.negated ? "negative" : "positive"),
            "merge the duplicate literals into one netlist input"));
      }
    }
  }
  LintSeverity severity() const override { return LintSeverity::kError; }
};

/// `io-contract`: outputs are named and (when the source network is
/// available) match its primary outputs one-to-one, in order.
class IoContractRule final : public LintRule {
 public:
  const char* id() const override { return "io-contract"; }
  const char* summary() const override {
    return "outputs named and aligned with the source network";
  }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    const DominoNetlist& netlist = context.netlist;
    for (std::size_t j = 0; j < netlist.outputs().size(); ++j) {
      if (netlist.outputs()[j].name.empty()) {
        out.push_back(
            make(LintSeverity::kError, at_output(j), "unnamed output"));
      }
    }
    if (context.source == nullptr) return;
    const auto& want = context.source->outputs();
    if (netlist.outputs().size() != want.size()) {
      out.push_back(make(
          LintSeverity::kError, LintLocation{},
          format("output count mismatch: netlist %zu vs source %zu",
                 netlist.outputs().size(), want.size())));
      return;
    }
    for (std::size_t j = 0; j < want.size(); ++j) {
      if (netlist.outputs()[j].name != want[j].name) {
        out.push_back(make(
            LintSeverity::kError, at_output(j),
            format("name '%s' does not match source output '%s'",
                   netlist.outputs()[j].name.c_str(), want[j].name.c_str())));
      }
    }
  }
};

/// `overhead-count`: re-derive every DominoStats column from first
/// principles (leaf counts + the section-IV overhead constants + the
/// discharge sets + an independent level computation) and cross-check
/// compute_stats().  Also rejects duplicate discharge points, which would
/// silently double-count transistors.
class OverheadCountRule final : public LintRule {
 public:
  const char* id() const override { return "overhead-count"; }
  const char* summary() const override {
    return "transistor accounting consistent with the overhead model";
  }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    const DominoNetlist& netlist = context.netlist;
    DominoStats expect;
    expect.num_gates = static_cast<int>(netlist.gates().size());
    std::vector<int> level(netlist.gates().size(), 1);
    for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
      const DominoGate& gate = netlist.gates()[g];
      int leaves = 0;
      int feet = 0;
      for_each_pdn(context, g, [&](const PdnView& view) {
        leaves += static_cast<int>(view.pdn.leaf_signals().size());
        feet += view.footed ? 1 : 0;
        expect.t_disch += static_cast<int>(view.discharges.size());
        // Duplicate points double-count in every transistor budget.
        for (std::size_t i = 0; i < view.discharges.size(); ++i) {
          const auto begin = view.discharges.begin();
          if (std::find(begin, begin + static_cast<std::ptrdiff_t>(i),
                        view.discharges[i]) != begin + static_cast<std::ptrdiff_t>(i)) {
            out.push_back(make(
                LintSeverity::kError,
                at_gate(g, view.which,
                        canonical_point_label(view.pdn, view.discharges[i])),
                "duplicate discharge transistor at the same point",
                "remove the duplicate"));
          }
        }
        for (const std::uint32_t sig : view.pdn.leaf_signals()) {
          if (!netlist.is_input_signal(sig)) {
            const std::uint32_t other = netlist.gate_of_signal(sig);
            level[g] = std::max(level[g], 1 + level[other]);
          }
        }
      });
      const int overhead = gate.dual() ? kGateOverheadDual + feet
                           : (gate.footed ? kGateOverheadFooted
                                          : kGateOverheadFootless);
      expect.t_logic += leaves + overhead;
      expect.t_clock += (gate.dual() ? 2 : 1) + feet +
                        static_cast<int>(gate.discharges.size() +
                                         gate.discharges2.size());
    }
    expect.t_total = expect.t_logic + expect.t_disch;
    for (const DominoOutput& o : netlist.outputs()) {
      if (o.constant < 0 && !netlist.is_input_signal(o.signal)) {
        expect.levels =
            std::max(expect.levels,
                     level[netlist.gate_of_signal(o.signal)]);
      }
    }
    const DominoStats got = compute_stats(netlist);
    auto check = [&](const char* field, int want, int have) {
      if (want == have) return;
      out.push_back(make(
          LintSeverity::kError, LintLocation{},
          format("stats mismatch: %s re-derived as %d but compute_stats "
                 "reports %d",
                 field, want, have)));
    };
    check("t_logic", expect.t_logic, got.t_logic);
    check("t_disch", expect.t_disch, got.t_disch);
    check("t_total", expect.t_total, got.t_total);
    check("t_clock", expect.t_clock, got.t_clock);
    check("num_gates", expect.num_gates, got.num_gates);
    check("levels", expect.levels, got.levels);
  }
};

// ---------------------------------------------------------------------------
// Clocking / PBE rules.
// ---------------------------------------------------------------------------

/// `clock-foot`: no discharge pMOS sits on a bottom node that the
/// grounding policy already ties to ground (directly or through the
/// clock foot) — the transistor would be dead weight on the clock net.
class ClockFootRule final : public LintRule {
 public:
  const char* id() const override { return "clock-foot"; }
  const char* summary() const override {
    return "no bottom discharge on a pulldown grounded under the policy";
  }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    for (std::size_t g = 0; g < context.netlist.gates().size(); ++g) {
      for_each_pdn(context, g, [&](const PdnView& view) {
        if (!view.grounded) return;
        for (const DischargePoint& p : view.discharges) {
          if (!p.at_bottom()) continue;
          out.push_back(make(
              LintSeverity::kError, at_gate(g, view.which, "bottom"),
              "bottom discharge transistor on a pulldown whose bottom is "
              "grounded under the current policy",
              "remove it (the node can never float high)"));
        }
      });
    }
  }
};

/// `excess-discharge`: discharge transistors the PBE analysis does not
/// require.  Harmless electrically, but they cost area and clock load the
/// paper's T_disch column is meant to minimize.
class ExcessDischargeRule final : public LintRule {
 public:
  const char* id() const override { return "excess-discharge"; }
  const char* summary() const override {
    return "no discharge transistors beyond the PBE requirement";
  }
  LintSeverity severity() const override { return LintSeverity::kWarning; }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    for (std::size_t g = 0; g < context.netlist.gates().size(); ++g) {
      for_each_pdn(context, g, [&](const PdnView& view) {
        if (view.pdn.empty()) return;
        const PbeAnalysis analysis = analyze_pbe(
            view.pdn, view.grounded, context.options.pending_model);
        for (const DischargePoint& p : view.discharges) {
          if (p.at_bottom() && view.grounded) continue;  // clock-foot's case
          if (std::find(analysis.required.begin(), analysis.required.end(),
                        p) != analysis.required.end()) {
            continue;
          }
          out.push_back(make(
              LintSeverity::kWarning,
              at_gate(g, view.which, canonical_point_label(view.pdn, p)),
              "discharge transistor not required by the PBE analysis",
              "remove it"));
        }
      });
    }
  }
};

/// `pbe-protection` (headline): independently re-derive every required
/// discharge point from the netlist alone (pdn/analyze.hpp) and require a
/// discharge transistor on each.  With allow_unexcitable_unprotected, a
/// missing transistor is accepted — and reported at info level — when the
/// sequence-aware BDD analysis proves the point unexcitable.
class PbeProtectionRule final : public LintRule {
 public:
  const char* id() const override { return "pbe-protection"; }
  const char* summary() const override {
    return "every PBE-required discharge point carries a transistor";
  }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    for (std::size_t g = 0; g < context.netlist.gates().size(); ++g) {
      for_each_pdn(context, g, [&](const PdnView& view) {
        if (view.pdn.empty()) return;
        const PbeAnalysis analysis = analyze_pbe(
            view.pdn, view.grounded, context.options.pending_model);
        for (const DischargePoint& p : analysis.required) {
          if (std::find(view.discharges.begin(), view.discharges.end(), p) !=
              view.discharges.end()) {
            continue;
          }
          const std::string label = canonical_point_label(view.pdn, p);
          if (context.options.allow_unexcitable_unprotected &&
              !discharge_point_excitable(context.netlist, view.pdn,
                                         view.footed, p)) {
            out.push_back(make(
                LintSeverity::kInfo, at_gate(g, view.which, label),
                format("required discharge point %s proven unexcitable; "
                       "accepted without a transistor",
                       to_string(p).c_str())));
            continue;
          }
          out.push_back(make(
              LintSeverity::kError, at_gate(g, view.which, label),
              format("PBE-required discharge point %s unprotected (pdn=%s)",
                     to_string(p).c_str(), view.pdn.to_string().c_str()),
              format("attach a clock-driven discharge pMOS at %s",
                     label.c_str())));
        }
      });
    }
  }
};

// ---------------------------------------------------------------------------
// Hygiene rules.
// ---------------------------------------------------------------------------

/// `unused-logic`: gates whose output no gate or netlist output consumes
/// (dead area), and input literals nothing reads.
class UnusedLogicRule final : public LintRule {
 public:
  const char* id() const override { return "unused-logic"; }
  const char* summary() const override {
    return "every gate output and input literal is consumed";
  }
  LintSeverity severity() const override { return LintSeverity::kWarning; }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    const DominoNetlist& netlist = context.netlist;
    std::vector<bool> consumed(netlist.num_inputs() + netlist.gates().size(),
                               false);
    for (const DominoGate& gate : netlist.gates()) {
      for (const std::uint32_t sig : gate.all_leaf_signals()) {
        consumed[sig] = true;
      }
    }
    for (const DominoOutput& o : netlist.outputs()) {
      if (o.constant < 0) consumed[o.signal] = true;
    }
    for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
      if (!consumed[netlist.signal_of_gate(static_cast<std::uint32_t>(g))]) {
        out.push_back(make(LintSeverity::kWarning, at_gate(g),
                           "gate output is never consumed",
                           "remove the dead gate"));
      }
    }
    for (std::size_t k = 0; k < netlist.num_inputs(); ++k) {
      if (!consumed[k]) {
        out.push_back(make(LintSeverity::kInfo, at_input(k),
                           "input literal is never consumed"));
      }
    }
  }
};

/// `monotone-output`: the netlist is a monotone (unate) structure; an
/// inverted output over a negated literal or a constant re-introduces an
/// inversion that should have been folded away.
class MonotoneOutputRule final : public LintRule {
 public:
  const char* id() const override { return "monotone-output"; }
  const char* summary() const override {
    return "no foldable double inversion at an output";
  }
  LintSeverity severity() const override { return LintSeverity::kWarning; }
  void run(const LintContext& context,
           std::vector<Finding>& out) const override {
    const DominoNetlist& netlist = context.netlist;
    for (std::size_t j = 0; j < netlist.outputs().size(); ++j) {
      const DominoOutput& o = netlist.outputs()[j];
      if (!o.inverted) continue;
      if (o.constant >= 0) {
        out.push_back(make(LintSeverity::kWarning, at_output(j),
                           format("inverted constant output (tie to %d)",
                                  1 - o.constant),
                           "fold the inversion into the constant"));
        continue;
      }
      if (netlist.is_input_signal(o.signal) &&
          netlist.inputs()[o.signal].negated) {
        out.push_back(make(
            LintSeverity::kWarning, at_output(j),
            format("output inverts the negated literal '%s' (double "
                   "negation of PI %d)",
                   netlist.inputs()[o.signal].name.c_str(),
                   netlist.inputs()[o.signal].source_pi),
            "drive the output from the positive-phase literal"));
      }
    }
  }
};

}  // namespace

LintRegistry LintRegistry::builtin() {
  LintRegistry registry;
  registry.add(std::make_unique<TopoOrderRule>());
  registry.add(std::make_unique<DanglingRefRule>());
  registry.add(std::make_unique<EmptyGateRule>());
  registry.add(std::make_unique<FootednessRule>());
  registry.add(std::make_unique<ShapeLimitsRule>());
  registry.add(std::make_unique<InputPhaseRule>());
  registry.add(std::make_unique<IoContractRule>());
  registry.add(std::make_unique<OverheadCountRule>());
  registry.add(std::make_unique<ClockFootRule>());
  registry.add(std::make_unique<ExcessDischargeRule>());
  registry.add(std::make_unique<PbeProtectionRule>());
  registry.add(std::make_unique<UnusedLogicRule>());
  registry.add(std::make_unique<MonotoneOutputRule>());
  return registry;
}

}  // namespace soidom
