/// \file compat.cpp
/// The historical verification entry points (domino/verify.hpp), now thin
/// shims over the lint engine so every caller gets the same structured
/// findings with consistent gate/output indices.
#include <algorithm>

#include "soidom/base/strings.hpp"
#include "soidom/domino/verify.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"
#include "soidom/lint/lint.hpp"
#include "soidom/sim/sim.hpp"

namespace soidom {

std::string VerifyReport::to_string() const {
  if (ok()) return "OK";
  std::string out;
  for (const std::string& p : problems) {
    out += p;
    out += '\n';
  }
  return out;
}

VerifyReport verify_structure(const DominoNetlist& netlist,
                              GroundingPolicy policy, PendingModel model,
                              bool allow_unexcitable_unprotected) {
  StageScope stage(FlowStage::kVerifyStructure);
  SOIDOM_FAULT_PROBE(FlowStage::kVerifyStructure);
  LintOptions options;
  options.grounding = policy;
  options.pending_model = model;
  options.allow_unexcitable_unprotected = allow_unexcitable_unprotected;
  // The historical contract covers structure and PBE protection only;
  // the stricter provenance / accounting rules are lint-stage additions.
  options.disabled_rules = {"input-phase", "io-contract", "overhead-count",
                            "clock-foot"};
  const LintReport report = run_lint(netlist, options);
  VerifyReport out;
  for (const Finding& f : report.findings) {
    if (f.severity >= LintSeverity::kError) {
      out.problems.push_back(f.to_string());
    }
  }
  return out;
}

VerifyReport verify_function(const DominoNetlist& netlist,
                             const Network& source, int rounds, Rng& rng) {
  StageScope stage(FlowStage::kVerifyFunction);
  SOIDOM_FAULT_PROBE(FlowStage::kVerifyFunction);
  VerifyReport report;
  auto problem = [&](LintLocation location, std::string message) {
    Finding f;
    f.rule = "functional-equiv";
    f.severity = LintSeverity::kError;
    f.location = std::move(location);
    f.message = std::move(message);
    report.problems.push_back(f.to_string());
  };
  if (netlist.outputs().size() != source.outputs().size()) {
    problem(LintLocation{},
            format("output count mismatch: netlist %zu vs source %zu",
                   netlist.outputs().size(), source.outputs().size()));
    return report;
  }
  for (int r = 0; r < rounds; ++r) {
    guard_checkpoint();
    const auto words = random_pi_words(source.pis().size(), rng);
    const auto want = simulate_outputs(source, words);
    const auto got = netlist.simulate(words);
    for (std::size_t j = 0; j < want.size(); ++j) {
      if (want[j] != got[j]) {
        LintLocation loc;
        loc.output = static_cast<int>(j);
        problem(std::move(loc),
                format("functional mismatch ('%s'), round %d",
                       source.outputs()[j].name.c_str(), r));
        return report;  // first mismatch is enough
      }
    }
  }
  return report;
}

}  // namespace soidom
