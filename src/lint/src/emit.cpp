/// \file emit.cpp
/// LintReport renderers: human text, JSON, SARIF 2.1.0.
#include "soidom/base/strings.hpp"
#include "soidom/lint/lint.hpp"

namespace soidom {

std::string LintReport::to_text() const {
  if (findings.empty()) return "lint: clean\n";
  std::string out;
  for (const Finding& f : findings) {
    out += f.to_string();
    out += '\n';
  }
  out += format("lint: %s\n", summary().c_str());
  return out;
}

std::string LintReport::to_json() const {
  std::string out = "{\"summary\":\"" + json_escape(summary()) + "\",";
  out += format("\"errors\":%d,\"warnings\":%d,\"infos\":%d,",
                count(LintSeverity::kError),
                count(LintSeverity::kWarning) - count(LintSeverity::kError),
                static_cast<int>(findings.size()) -
                    count(LintSeverity::kWarning));
  out += "\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) out += ',';
    out += format(R"({"rule":"%s","severity":"%s","location":"%s",)"
                  R"("qualified":"%s","message":"%s")",
                  json_escape(f.rule).c_str(),
                  lint_severity_name(f.severity),
                  json_escape(f.location.to_string()).c_str(),
                  json_escape(f.location.qualified_name()).c_str(),
                  json_escape(f.message).c_str());
    if (!f.fixit.empty()) {
      out += ",\"fixit\":\"" + json_escape(f.fixit) + "\"";
    }
    if (f.waived) out += ",\"waived\":true";
    if (f.proof != ProofStatus::kNone) {
      out += format(R"(,"proof":"%s","original_severity":"%s")",
                    proof_status_name(f.proof),
                    lint_severity_name(f.original_severity));
      if (!f.proof_note.empty()) {
        out += ",\"proof_note\":\"" + json_escape(f.proof_note) + "\"";
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string LintReport::to_sarif_run(const std::string& artifact_uri) const {
  std::string out = R"({"tool":{"driver":{"name":"soidom-lint",)"
                    R"("informationUri":"docs/LINT.md","rules":[)";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i) out += ',';
    out += format(R"({"id":"%s","shortDescription":{"text":"%s"},)"
                  R"("defaultConfiguration":{"level":"%s"}})",
                  json_escape(rules[i].id).c_str(),
                  json_escape(rules[i].summary).c_str(),
                  lint_severity_sarif_level(rules[i].default_severity));
  }
  out += "]}}";
  if (!artifact_uri.empty()) {
    out += R"(,"artifacts":[{"location":{"uri":")" +
           json_escape(artifact_uri) + R"("}}])";
  }
  out += ",\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) out += ',';
    int rule_index = -1;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (rules[r].id == f.rule) {
        rule_index = static_cast<int>(r);
        break;
      }
    }
    std::string text = f.location.to_string() + ": " + f.message;
    if (!f.fixit.empty()) text += " (fix: " + f.fixit + ")";
    out += format(R"({"ruleId":"%s","ruleIndex":%d,"level":"%s",)"
                  R"("message":{"text":"%s"},"locations":[{)",
                  json_escape(f.rule).c_str(), rule_index,
                  lint_severity_sarif_level(f.severity),
                  json_escape(text).c_str());
    if (!artifact_uri.empty()) {
      out += format(R"("physicalLocation":{"artifactLocation":{"uri":"%s",)"
                    R"("index":0}},)",
                    json_escape(artifact_uri).c_str());
    }
    out += format(R"("logicalLocations":[{"kind":"element","name":"%s",)"
                  R"("fullyQualifiedName":"%s"}]}])",
                  json_escape(f.location.to_string()).c_str(),
                  json_escape(f.location.qualified_name()).c_str());
    if (f.proof != ProofStatus::kNone && !f.proof_note.empty()) {
      // Witness / certificate from the exact proof tier, attached to the
      // same logical location so viewers show it next to the finding.
      out += format(
          R"(,"relatedLocations":[{"message":{"text":"%s"},)"
          R"("logicalLocations":[{"kind":"element","name":"%s",)"
          R"("fullyQualifiedName":"%s"}]}])",
          json_escape(f.proof_note).c_str(),
          json_escape(f.location.to_string()).c_str(),
          json_escape(f.location.qualified_name()).c_str());
    }
    if (f.waived) {
      // SARIF 2.1.0 suppression: the finding was reviewed and accepted
      // (a LintOptions::waivers entry matched it).
      out += R"(,"suppressions":[{"kind":"external","status":"accepted"}])";
    }
    if (f.proof != ProofStatus::kNone) {
      // Downgrade provenance (docs/PROVE.md): proofStatus plus the level
      // the finding carried before refinement, so waiver tooling and
      // tools/merge_sarif.py round-trip the original severity.
      out += format(
          R"(,"properties":{"proofStatus":"%s","originalLevel":"%s"})",
          proof_status_name(f.proof),
          lint_severity_sarif_level(f.original_severity));
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string LintReport::to_sarif(const std::string& artifact_uri) const {
  return R"({"$schema":)"
         R"("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/)"
         R"(Schemata/sarif-schema-2.1.0.json","version":"2.1.0","runs":[)" +
         to_sarif_run(artifact_uri) + "]}";
}

}  // namespace soidom
