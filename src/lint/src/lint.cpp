#include "soidom/lint/lint.hpp"

#include "soidom/base/strings.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {

const char* lint_severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo: return "info";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "unknown";
}

const char* lint_severity_sarif_level(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo: return "note";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "none";
}

const char* proof_status_name(ProofStatus status) {
  switch (status) {
    case ProofStatus::kNone: return "none";
    case ProofStatus::kConfirmed: return "confirmed";
    case ProofStatus::kRefuted: return "refuted";
    case ProofStatus::kUnknown: return "unknown";
  }
  return "none";
}

std::string LintLocation::to_string(const DominoNetlist* netlist) const {
  std::string out;
  if (gate >= 0) {
    out = format("gate %d", gate);
    if (pdn == 2) out += " (pdn2)";
    if (!detail.empty()) out += " " + detail;
    return out;
  }
  if (output >= 0) {
    out = format("output %d", output);
    if (netlist != nullptr &&
        static_cast<std::size_t>(output) < netlist->outputs().size()) {
      out += format(
          " '%s'",
          netlist->outputs()[static_cast<std::size_t>(output)].name.c_str());
    }
    if (!detail.empty()) out += " " + detail;
    return out;
  }
  if (input >= 0) {
    out = format("input %d", input);
    if (netlist != nullptr &&
        static_cast<std::size_t>(input) < netlist->inputs().size()) {
      out += format(
          " '%s'",
          netlist->inputs()[static_cast<std::size_t>(input)].name.c_str());
    }
    if (!detail.empty()) out += " " + detail;
    return out;
  }
  return detail.empty() ? "netlist" : "netlist " + detail;
}

std::string LintLocation::qualified_name() const {
  std::string out = "netlist";
  if (gate >= 0) {
    out += format("/gate%d/pdn%s", gate, pdn == 2 ? "2" : "");
  } else if (output >= 0) {
    out += format("/output%d", output);
  } else if (input >= 0) {
    out += format("/input%d", input);
  }
  if (!detail.empty()) out += "/" + detail;
  return out;
}

std::string Finding::to_string() const {
  std::string out = format("%s[%s] %s: %s", lint_severity_name(severity),
                           rule.c_str(), location.to_string().c_str(),
                           message.c_str());
  if (!fixit.empty()) out += format(" (fix: %s)", fixit.c_str());
  if (waived) out += " [waived]";
  if (proof != ProofStatus::kNone) {
    out += format(" [proof: %s]", proof_status_name(proof));
  }
  return out;
}

bool waiver_matches(const std::string& waiver, const Finding& finding) {
  const std::size_t at = waiver.find('@');
  const std::string rule = waiver.substr(0, at);
  if (rule != finding.rule) return false;
  if (at == std::string::npos) return true;
  const std::string fragment = waiver.substr(at + 1);
  return finding.location.qualified_name().find(fragment) !=
         std::string::npos;
}

int LintReport::count(LintSeverity at_least) const {
  int n = 0;
  for (const Finding& f : findings) {
    if (!f.waived && f.severity >= at_least) ++n;
  }
  return n;
}

std::string LintReport::summary() const {
  int waived = 0;
  for (const Finding& f : findings) {
    if (f.waived) ++waived;
  }
  const int live = static_cast<int>(findings.size()) - waived;
  if (live == 0) {
    return waived == 0 ? "clean" : format("clean (%d waived)", waived);
  }
  const int errors = count(LintSeverity::kError);
  const int warnings = count(LintSeverity::kWarning) - errors;
  const int infos = live - errors - warnings;
  std::string out;
  auto append = [&](int n, const char* what) {
    if (n == 0) return;
    if (!out.empty()) out += ", ";
    out += format("%d %s%s", n, what, n == 1 ? "" : "s");
  };
  append(errors, "error");
  append(warnings, "warning");
  append(infos, "info");
  if (waived > 0) out += format(" (%d waived)", waived);
  return out;
}

void LintRegistry::add(std::unique_ptr<LintRule> rule) {
  SOIDOM_ASSERT(rule != nullptr);
  rules_.push_back(std::move(rule));
}

LintReport run_lint(const LintRegistry& registry, const DominoNetlist& netlist,
                    const LintOptions& options, const Network* source,
                    FlowStage stage) {
  StageScope scope(stage);
  SOIDOM_FAULT_PROBE(stage);
  LintReport report;
  LintContext context{netlist, source, options, true};
  const auto disabled = [&](const char* id) {
    for (const std::string& d : options.disabled_rules) {
      if (d == id) return true;
    }
    return false;
  };
  // Foundation rules (needs_sound() == false) run first; dependent rules
  // run only when no foundation rule reported an error, so they may index
  // gates / signals / junctions without re-validating them.
  for (const int pass : {0, 1}) {
    for (const auto& rule : registry.rules()) {
      if (rule->needs_sound() != (pass == 1)) continue;
      if (disabled(rule->id())) continue;
      report.rules.push_back(
          LintRuleInfo{rule->id(), rule->summary(), rule->severity()});
      if (pass == 1 && !context.sound) continue;
      guard_checkpoint();
      std::vector<Finding> found;
      rule->run(context, found);
      for (Finding& f : found) {
        if (f.rule.empty()) f.rule = rule->id();
        for (const std::string& waiver : options.waivers) {
          if (waiver_matches(waiver, f)) {
            f.waived = true;
            break;
          }
        }
        report.findings.push_back(std::move(f));
      }
    }
    if (pass == 0) {
      // Waived foundation errors still mean the netlist is unsafe to
      // index, so soundness ignores waivers.
      bool sound = true;
      for (const Finding& f : report.findings) {
        if (f.severity >= LintSeverity::kError) sound = false;
      }
      context.sound = sound;
    }
  }
  return report;
}

LintReport run_lint(const DominoNetlist& netlist, const LintOptions& options,
                    const Network* source) {
  static const LintRegistry registry = LintRegistry::builtin();
  return run_lint(registry, netlist, options, source);
}

}  // namespace soidom
