#include "soidom/lint/lint.hpp"

#include "soidom/base/strings.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {

const char* lint_severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo: return "info";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "unknown";
}

const char* lint_severity_sarif_level(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo: return "note";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "none";
}

std::string LintLocation::to_string(const DominoNetlist* netlist) const {
  std::string out;
  if (gate >= 0) {
    out = format("gate %d", gate);
    if (pdn == 2) out += " (pdn2)";
    if (!detail.empty()) out += " " + detail;
    return out;
  }
  if (output >= 0) {
    out = format("output %d", output);
    if (netlist != nullptr &&
        static_cast<std::size_t>(output) < netlist->outputs().size()) {
      out += format(
          " '%s'",
          netlist->outputs()[static_cast<std::size_t>(output)].name.c_str());
    }
    if (!detail.empty()) out += " " + detail;
    return out;
  }
  if (input >= 0) {
    out = format("input %d", input);
    if (netlist != nullptr &&
        static_cast<std::size_t>(input) < netlist->inputs().size()) {
      out += format(
          " '%s'",
          netlist->inputs()[static_cast<std::size_t>(input)].name.c_str());
    }
    if (!detail.empty()) out += " " + detail;
    return out;
  }
  return detail.empty() ? "netlist" : "netlist " + detail;
}

std::string LintLocation::qualified_name() const {
  std::string out = "netlist";
  if (gate >= 0) {
    out += format("/gate%d/pdn%s", gate, pdn == 2 ? "2" : "");
  } else if (output >= 0) {
    out += format("/output%d", output);
  } else if (input >= 0) {
    out += format("/input%d", input);
  }
  if (!detail.empty()) out += "/" + detail;
  return out;
}

std::string Finding::to_string() const {
  std::string out = format("%s[%s] %s: %s", lint_severity_name(severity),
                           rule.c_str(), location.to_string().c_str(),
                           message.c_str());
  if (!fixit.empty()) out += format(" (fix: %s)", fixit.c_str());
  return out;
}

int LintReport::count(LintSeverity at_least) const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity >= at_least) ++n;
  }
  return n;
}

std::string LintReport::summary() const {
  if (findings.empty()) return "clean";
  const int errors = count(LintSeverity::kError);
  const int warnings = count(LintSeverity::kWarning) - errors;
  const int infos = static_cast<int>(findings.size()) - errors - warnings;
  std::string out;
  auto append = [&](int n, const char* what) {
    if (n == 0) return;
    if (!out.empty()) out += ", ";
    out += format("%d %s%s", n, what, n == 1 ? "" : "s");
  };
  append(errors, "error");
  append(warnings, "warning");
  append(infos, "info");
  return out;
}

void LintRegistry::add(std::unique_ptr<LintRule> rule) {
  SOIDOM_ASSERT(rule != nullptr);
  rules_.push_back(std::move(rule));
}

LintReport run_lint(const LintRegistry& registry, const DominoNetlist& netlist,
                    const LintOptions& options, const Network* source) {
  StageScope stage(FlowStage::kLint);
  SOIDOM_FAULT_PROBE(FlowStage::kLint);
  LintReport report;
  LintContext context{netlist, source, options, true};
  const auto disabled = [&](const char* id) {
    for (const std::string& d : options.disabled_rules) {
      if (d == id) return true;
    }
    return false;
  };
  // Foundation rules (needs_sound() == false) run first; dependent rules
  // run only when no foundation rule reported an error, so they may index
  // gates / signals / junctions without re-validating them.
  for (const int pass : {0, 1}) {
    for (const auto& rule : registry.rules()) {
      if (rule->needs_sound() != (pass == 1)) continue;
      if (disabled(rule->id())) continue;
      report.rules.push_back(
          LintRuleInfo{rule->id(), rule->summary(), rule->severity()});
      if (pass == 1 && !context.sound) continue;
      guard_checkpoint();
      std::vector<Finding> found;
      rule->run(context, found);
      for (Finding& f : found) {
        if (f.rule.empty()) f.rule = rule->id();
        report.findings.push_back(std::move(f));
      }
    }
    if (pass == 0) {
      context.sound = report.count(LintSeverity::kError) == 0;
    }
  }
  return report;
}

LintReport run_lint(const DominoNetlist& netlist, const LintOptions& options,
                    const Network* source) {
  static const LintRegistry registry = LintRegistry::builtin();
  return run_lint(registry, netlist, options, source);
}

}  // namespace soidom
