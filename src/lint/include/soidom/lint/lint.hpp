/// \file lint.hpp
/// Rule-based static analysis (DRC/ERC) of mapped domino netlists.
///
/// The engine runs an extensible registry of LintRules over a
/// DominoNetlist (optionally cross-checked against the source Network)
/// and produces structured Findings: a stable rule id, a severity, a
/// location (gate / pulldown / junction / output), a message, and an
/// optional fix-it hint.  Reports render as human text, JSON, or SARIF
/// 2.1.0 for CI annotation.  docs/LINT.md is the rule catalogue.
///
/// The headline rule, `pbe-protection`, re-derives every PBE discharge
/// point from the netlist alone (pdn/analyze.hpp — independent of the
/// mapper's DP tuples) and diffs the requirement against the discharge
/// transistors the mapper actually emitted, honouring sequence-aware
/// unexcitability proofs when the caller allows them.
///
/// Layering: lint sits above domino/pdn/network and below core/flow.
/// The historical `verify_structure` (domino/verify.hpp) is now a thin
/// compatibility shim over this engine (defined in this module).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "soidom/domino/netlist.hpp"
#include "soidom/guard/diagnostic.hpp"
#include "soidom/network/network.hpp"

namespace soidom {

/// Finding severities, ordered so comparisons mean "at least as severe".
enum class LintSeverity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

/// Stable lower-case identifier: "info" / "warning" / "error".
const char* lint_severity_name(LintSeverity severity);
/// SARIF 2.1.0 result level: "note" / "warning" / "error".
const char* lint_severity_sarif_level(LintSeverity severity);

/// Outcome of the exact proof tier (src/prove) for one finding.  kNone
/// means the prove stage never looked at it (not a provable rule, or the
/// stage was off).
enum class ProofStatus : std::uint8_t {
  kNone = 0,   ///< not refined
  kConfirmed,  ///< flagged state proven reachable; a witness exists
  kRefuted,    ///< flagged state proven unreachable; severity downgraded
  kUnknown,    ///< node budget hit; conservative verdict kept
};

/// Stable lower-case identifier: "none" / "confirmed" / "refuted" /
/// "unknown".
const char* proof_status_name(ProofStatus status);

/// Where a finding points inside the netlist.  All indices are optional
/// (-1 = not applicable); `detail` carries the innermost element as text
/// (a canonical junction label like "j2" or "bottom", a signal, ...).
struct LintLocation {
  int gate = -1;    ///< gate index
  int pdn = 0;      ///< 1 or 2 when the finding is inside a specific pulldown
  int output = -1;  ///< output index
  int input = -1;   ///< input-literal index
  std::string detail;

  /// "gate 4 (pdn2) j1" / "output 2 'sum'" / "input 3 'a.bar'" / "netlist".
  std::string to_string(const DominoNetlist* netlist = nullptr) const;
  /// SARIF logicalLocation fullyQualifiedName, e.g. "netlist/gate4/pdn2/j1".
  std::string qualified_name() const;
};

/// One structured lint result.
struct Finding {
  std::string rule;  ///< stable rule id, e.g. "pbe-protection"
  LintSeverity severity = LintSeverity::kError;
  LintLocation location;
  std::string message;
  std::string fixit;  ///< optional suggested repair, empty when none
  /// Matched by a LintOptions::waivers entry: kept in the report (and
  /// rendered as a SARIF suppression) but excluded from count()/clean().
  bool waived = false;
  /// Exact-proof refinement outcome (src/prove).  A kRefuted finding has
  /// its severity downgraded to kInfo waiver-style; `original_severity`
  /// preserves the conservative level so SARIF/JSON consumers and
  /// tools/merge_sarif.py can round-trip the provenance.
  ProofStatus proof = ProofStatus::kNone;
  LintSeverity original_severity = LintSeverity::kInfo;
  /// Proof certificate (refuted/unknown) or witness text (confirmed);
  /// empty when proof == kNone.  Rendered into JSON and as a SARIF
  /// relatedLocation message.
  std::string proof_note;

  /// "error[pbe-protection] gate 4: ... (fix: attach a discharge at j1)".
  std::string to_string() const;
};

/// Knobs for a lint run.  Defaults mirror the mapper's defaults; the flow
/// passes its effective options through.
struct LintOptions {
  GroundingPolicy grounding = GroundingPolicy::kAllGrounded;
  PendingModel pending_model = PendingModel::kCoherent;
  /// Accept an unprotected PBE point when sequence-aware analysis proves
  /// it unexcitable (netlists processed by prune_unexcitable_discharges).
  bool allow_unexcitable_unprotected = false;
  /// Pulldown shape ceilings the mapper was run with; 0 skips the
  /// `shape-limits` rule.
  int max_width = 0;
  int max_height = 0;
  /// Rule ids to skip (exact match).
  std::vector<std::string> disabled_rules;
  /// Accepted findings: each entry is `rule` or `rule@substring`, where the
  /// substring matches the finding's qualified location name (e.g.
  /// "csa.droop-margin@gate4").  Unlike disabled_rules the rule still
  /// runs; matching findings are marked Finding::waived, excluded from
  /// count()/clean()/summary(), and emitted as SARIF suppressions.
  std::vector<std::string> waivers;
};

/// True when `waiver` ("rule" or "rule@substring") matches the finding.
bool waiver_matches(const std::string& waiver, const Finding& finding);

/// Rule metadata captured into the report (drives the SARIF rules table).
struct LintRuleInfo {
  std::string id;
  std::string summary;
  LintSeverity default_severity = LintSeverity::kError;
};

/// Outcome of a lint run.
struct LintReport {
  std::vector<Finding> findings;
  /// Every rule that ran (also the SARIF tool.driver.rules table).
  std::vector<LintRuleInfo> rules;

  /// Findings at or above `at_least` (waived findings excluded).
  int count(LintSeverity at_least) const;
  bool clean(LintSeverity fail_on = LintSeverity::kError) const {
    return count(fail_on) == 0;
  }
  /// "clean" or "2 errors, 1 warning".
  std::string summary() const;

  /// One finding per line; "lint: clean" when empty.
  std::string to_text() const;
  /// {"findings":[...],"summary":...}.
  std::string to_json() const;
  /// A complete SARIF 2.1.0 log with one run.  `artifact_uri` (optional)
  /// attaches a physicalLocation to every result so CI annotates the
  /// input file the netlist was mapped from.
  std::string to_sarif(const std::string& artifact_uri = "") const;
  /// The bare SARIF run object (for tools merging several reports into
  /// one log; to_sarif wraps exactly one of these).
  std::string to_sarif_run(const std::string& artifact_uri = "") const;
};

/// Everything a rule may inspect.  `sound` reports whether the foundation
/// rules (topo-order / dangling-ref / empty-gate) found no errors; rules
/// that index through the netlist require it (see LintRule::needs_sound).
struct LintContext {
  const DominoNetlist& netlist;
  const Network* source = nullptr;
  const LintOptions& options;
  bool sound = true;
};

/// One check.  Implementations emit any number of findings; the engine
/// fills in the rule id and default severity when the rule leaves them
/// unset.
class LintRule {
 public:
  virtual ~LintRule() = default;
  virtual const char* id() const = 0;
  virtual const char* summary() const = 0;
  virtual LintSeverity severity() const { return LintSeverity::kError; }
  /// Foundation rules (false) run first on any netlist; rules returning
  /// true are skipped when a foundation rule reported an error, so they
  /// may index gates/signals without re-validating them.
  virtual bool needs_sound() const { return true; }
  virtual void run(const LintContext& context,
                   std::vector<Finding>& out) const = 0;
};

/// An ordered rule collection.  `builtin()` returns the full catalogue
/// (docs/LINT.md); callers may append project-specific rules.
class LintRegistry {
 public:
  void add(std::unique_ptr<LintRule> rule);
  const std::vector<std::unique_ptr<LintRule>>& rules() const {
    return rules_;
  }

  static LintRegistry builtin();

 private:
  std::vector<std::unique_ptr<LintRule>> rules_;
};

/// Run `registry` over the netlist.  Thread-compatible: concurrent calls
/// on distinct netlists are safe.  Checkpoints the installed guard and
/// attributes to `stage` (kLint by default; the CSA engine reuses this
/// entry point under FlowStage::kCsa).
LintReport run_lint(const LintRegistry& registry, const DominoNetlist& netlist,
                    const LintOptions& options = {},
                    const Network* source = nullptr,
                    FlowStage stage = FlowStage::kLint);

/// Convenience: run the built-in catalogue.
LintReport run_lint(const DominoNetlist& netlist,
                    const LintOptions& options = {},
                    const Network* source = nullptr);

}  // namespace soidom
