#include "soidom/serve/protocol.hpp"

#include "soidom/base/strings.hpp"

namespace soidom {

bool parse_request(std::string_view line, ServeRequest* out,
                   std::string* error) {
  ServeRequest r;
  std::string type = "map";  // "type" may be omitted; map is the default
  json_find_string(line, "type", &type);
  if (type == "map") {
    r.kind = ServeRequest::Kind::kMap;
  } else if (type == "stats") {
    r.kind = ServeRequest::Kind::kStats;
  } else if (type == "ping") {
    r.kind = ServeRequest::Kind::kPing;
  } else {
    *error = format("unknown request type \"%s\"", type.c_str());
    return false;
  }
  json_find_string(line, "id", &r.id);
  json_find_string(line, "circuit", &r.circuit);
  json_find_string(line, "blif_path", &r.blif_path);
  long long deadline = 0;
  if (json_find_int64(line, "deadline_ms", &deadline)) {
    if (deadline < 0) {
      *error = format("deadline_ms = %lld is invalid (need >= 0)", deadline);
      return false;
    }
    r.deadline_ms = deadline;
  }
  if (r.kind == ServeRequest::Kind::kMap) {
    if (r.circuit.empty() == r.blif_path.empty()) {
      *error = "a map request needs exactly one of \"circuit\" or "
               "\"blif_path\"";
      return false;
    }
  }
  *out = std::move(r);
  return true;
}

std::string request_json(const ServeRequest& request) {
  const char* type = "map";
  switch (request.kind) {
    case ServeRequest::Kind::kMap: type = "map"; break;
    case ServeRequest::Kind::kStats: type = "stats"; break;
    case ServeRequest::Kind::kPing: type = "ping"; break;
  }
  std::string line = format(R"({"type":"%s","id":"%s")", type,
                            json_escape(request.id).c_str());
  if (!request.circuit.empty()) {
    line += format(R"(,"circuit":"%s")", json_escape(request.circuit).c_str());
  }
  if (!request.blif_path.empty()) {
    line +=
        format(R"(,"blif_path":"%s")", json_escape(request.blif_path).c_str());
  }
  if (request.deadline_ms > 0) {
    line += format(R"(,"deadline_ms":%lld)",
                   static_cast<long long>(request.deadline_ms));
  }
  line += "}";
  return line;
}

std::string response_result(const std::string& id, const JobRecord& record) {
  return format(R"({"type":"result","id":"%s",%s})", json_escape(id).c_str(),
                job_record_fields_json(record).c_str());
}

std::string response_error(const std::string& id, const std::string& code,
                           const std::string& stage,
                           const std::string& message) {
  return format(
      R"({"type":"error","id":"%s","code":"%s","stage":"%s","message":"%s"})",
      json_escape(id).c_str(), json_escape(code).c_str(),
      json_escape(stage).c_str(), json_escape(message).c_str());
}

std::string response_stats(const std::string& id,
                           const std::string& cache_json,
                           const std::string& server_json) {
  return format(R"({"type":"stats","id":"%s","cache":%s,"server":%s})",
                json_escape(id).c_str(), cache_json.c_str(),
                server_json.c_str());
}

std::string response_pong(const std::string& id) {
  return format(R"({"type":"pong","id":"%s"})", json_escape(id).c_str());
}

bool parse_response(std::string_view line, ServeResponse* out) {
  ServeResponse r;
  r.raw = std::string(line);
  if (!json_find_string(line, "type", &r.kind)) return false;
  json_find_string(line, "id", &r.id);
  if (r.kind == "result") {
    if (!parse_job_record_fields(line, &r.record)) return false;
  } else if (r.kind == "error") {
    json_find_string(line, "code", &r.code);
    json_find_string(line, "stage", &r.stage);
    json_find_string(line, "message", &r.message);
  }
  *out = std::move(r);
  return true;
}

}  // namespace soidom
