#include "soidom/serve/cache.hpp"

#include <atomic>
#include <fstream>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "soidom/base/fileio.hpp"
#include "soidom/base/hash.hpp"
#include "soidom/base/jsonl.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/guard/fault.hpp"

namespace soidom {
namespace {

constexpr const char* kSpillHeader = R"({"type":"spill","schema":1})";

// Bookkeeping charge per entry on top of the payload strings (list node,
// index slot, counters).  Keeps tiny cones from looking free.
constexpr std::size_t kEntryOverhead = 128;

std::size_t entry_bytes(const std::string& key, const CachedMapping& value) {
  return key.size() + value.dnl.size() + kEntryOverhead;
}

std::string spill_record(const std::string& key, const CachedMapping& value) {
  return jsonl_with_crc(format(
      R"({"type":"cone","cost":%lld,"mm":%d,"key":"%s","dnl":"%s"})",
      static_cast<long long>(value.predicted_cost),
      value.dp_analyzer_mismatches, json_escape(key).c_str(),
      json_escape(value.dnl).c_str()));
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

struct ConeCache::Impl {
  struct Entry {
    std::string key;
    CachedMapping value;
    std::size_t bytes = 0;
  };

  struct Shard {
    std::mutex mutex;
    // Front = most recently used.  The index views into the list nodes'
    // key strings, which are address-stable under splice/erase of other
    // nodes.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;
  };

  explicit Impl(const ConeCacheOptions& opts)
      : options(opts),
        shard_count(round_up_pow2(opts.shards == 0 ? 1 : opts.shards)),
        shards(shard_count),
        shard_budget(opts.max_bytes / shard_count) {}

  Shard& shard_for(std::uint64_t hash) {
    return shards[hash & (shard_count - 1)];
  }

  /// Insert/refresh under the shard lock; returns true when the entry is
  /// new or its payload changed (i.e. worth spilling).
  bool insert(const ConeKey& key, const CachedMapping& value) {
    Shard& s = shard_for(key.hash);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.index.find(std::string_view(key.text));
    if (it != s.index.end()) {
      Entry& e = *it->second;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      if (e.value.dnl == value.dnl &&
          e.value.predicted_cost == value.predicted_cost &&
          e.value.dp_analyzer_mismatches == value.dp_analyzer_mismatches) {
        return false;
      }
      s.bytes -= e.bytes;
      e.value = value;
      e.bytes = entry_bytes(e.key, e.value);
      s.bytes += e.bytes;
      return true;
    }
    s.lru.push_front(Entry{key.text, value, entry_bytes(key.text, value)});
    s.bytes += s.lru.front().bytes;
    s.index.emplace(std::string_view(s.lru.front().key), s.lru.begin());
    // Evict the cold tail past the budget, but always keep the entry we
    // just inserted — a budget smaller than one cone still caches one.
    while (s.bytes > shard_budget && s.lru.size() > 1) {
      const Entry& victim = s.lru.back();
      s.bytes -= victim.bytes;
      s.index.erase(std::string_view(victim.key));
      s.lru.pop_back();
      evictions.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Append one record to the spill (no-op without a spill path).  All
  /// failure modes — injected kServeCacheSpill fault, full disk, bad
  /// fd — are absorbed into the spill_errors counter; the in-memory
  /// cache keeps serving.
  void spill_append(const std::string& line) {
    if (options.spill_path.empty()) return;
    std::lock_guard<std::mutex> lock(spill_mutex);
    try {
      SOIDOM_FAULT_PROBE(FlowStage::kServeCacheSpill);
      if (spill == nullptr) {
        spill =
            std::make_unique<AppendFile>(options.spill_path, options.durable);
        if (!spill_has_header) {
          spill->append_line(jsonl_with_crc(kSpillHeader));
          spill_has_header = true;
        }
      }
      spill->append_line(line);
    } catch (const std::exception&) {
      spill.reset();  // reopen (and re-probe) on the next append
      spill_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const ConeCacheOptions options;
  const std::size_t shard_count;
  std::vector<Shard> shards;
  const std::size_t shard_budget;

  std::mutex spill_mutex;
  std::unique_ptr<AppendFile> spill;
  bool spill_has_header = false;

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> stores{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> read_faults{0};
  std::atomic<std::uint64_t> corrupt_records{0};
  std::atomic<std::uint64_t> spill_errors{0};
  std::atomic<std::uint64_t> spill_loaded{0};
};

ConeCache::ConeCache(const ConeCacheOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

ConeCache::~ConeCache() = default;

std::optional<CachedMapping> ConeCache::lookup(const ConeKey& key) {
  try {
    SOIDOM_FAULT_PROBE(FlowStage::kServeCacheRead);
  } catch (const std::exception&) {
    // A failed read is a miss, never an error: the mapper recomputes.
    impl_->read_faults.fetch_add(1, std::memory_order_relaxed);
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Impl::Shard& s = impl_->shard_for(key.hash);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.index.find(std::string_view(key.text));
  if (it == s.index.end()) {
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  impl_->hits.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void ConeCache::store(const ConeKey& key, const CachedMapping& value) {
  impl_->stores.fetch_add(1, std::memory_order_relaxed);
  if (impl_->insert(key, value) && !impl_->options.spill_path.empty()) {
    impl_->spill_append(spill_record(key.text, value));
  }
}

std::vector<Diagnostic> ConeCache::load_spill() {
  std::vector<Diagnostic> out;
  if (impl_->options.spill_path.empty()) return out;
  const std::string& path = impl_->options.spill_path;
  auto warn = [&](const std::string& message) {
    out.push_back(Diagnostic{ErrorCode::kParseError,
                             FlowStage::kServeCacheRead, message, {}});
  };
  try {
    SOIDOM_FAULT_PROBE(FlowStage::kServeCacheSpill);
  } catch (const std::exception&) {
    impl_->spill_errors.fetch_add(1, std::memory_order_relaxed);
    warn(format("spill %s unreadable (injected fault); starting cold",
                path.c_str()));
    return out;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no spill yet: a cold start, not an error
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  auto skip = [&](const char* why) {
    impl_->corrupt_records.fetch_add(1, std::memory_order_relaxed);
    out.push_back(Diagnostic{
        ErrorCode::kParseError, FlowStage::kServeCacheRead,
        format("spill %s line %d %s; record skipped", path.c_str(), line_no,
               why),
        {}});
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!header_seen) {
      // The first line must be a valid schema-1 spill header; anything
      // else means a foreign or future-format file — ignore it whole
      // (the next flush_spill rewrites it in the current format).
      int schema = 0;
      std::string type;
      if (jsonl_check(line) != JsonlCheck::kValid ||
          !json_find_string(line, "type", &type) || type != "spill" ||
          !json_find_int(line, "schema", &schema) || schema != 1) {
        warn(format("spill %s has a missing or unsupported header; "
                    "ignoring the file and starting cold",
                    path.c_str()));
        return out;
      }
      header_seen = true;
      continue;
    }
    if (jsonl_check(line) != JsonlCheck::kValid) {
      skip("failed its CRC check (corrupt or torn mid-record)");
      continue;
    }
    std::string type;
    if (!json_find_string(line, "type", &type) || type != "cone") continue;
    std::string key_text;
    CachedMapping value;
    long long cost = 0;
    if (!json_find_string(line, "key", &key_text) || key_text.empty() ||
        !json_find_string(line, "dnl", &value.dnl) ||
        !json_find_int64(line, "cost", &cost) ||
        !json_find_int(line, "mm", &value.dp_analyzer_mismatches)) {
      skip("is missing cone fields");
      continue;
    }
    value.predicted_cost = cost;
    try {
      (void)mapping_from_cached(value);  // reject undecodable payloads now
    } catch (const std::exception&) {
      skip("holds an undecodable netlist payload");
      continue;
    }
    const ConeKey key{key_text, fnv1a64(key_text)};
    impl_->insert(key, value);  // replayed, not re-spilled
    impl_->spill_loaded.fetch_add(1, std::memory_order_relaxed);
  }
  {
    // Records already on disk need no re-append until they change.
    std::lock_guard<std::mutex> lock(impl_->spill_mutex);
    impl_->spill_has_header = header_seen;
  }
  return out;
}

std::vector<Diagnostic> ConeCache::flush_spill() {
  std::vector<Diagnostic> out;
  if (impl_->options.spill_path.empty()) return out;
  std::string content = jsonl_with_crc(kSpillHeader) + "\n";
  for (Impl::Shard& s : impl_->shards) {
    std::lock_guard<std::mutex> lock(s.mutex);
    // Oldest first so a replay ends with today's LRU order intact.
    for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) {
      content += spill_record(it->key, it->value);
      content += '\n';
    }
  }
  std::lock_guard<std::mutex> lock(impl_->spill_mutex);
  try {
    SOIDOM_FAULT_PROBE(FlowStage::kServeCacheSpill);
    impl_->spill.reset();  // release the append fd before the rename
    write_file_atomic(impl_->options.spill_path, content);
    impl_->spill_has_header = true;
  } catch (const std::exception& e) {
    impl_->spill_errors.fetch_add(1, std::memory_order_relaxed);
    out.push_back(Diagnostic{
        ErrorCode::kInternal, FlowStage::kServeCacheSpill,
        format("spill %s compaction failed: %s; cache unaffected",
               impl_->options.spill_path.c_str(), e.what()),
        {}});
  }
  return out;
}

ConeCacheStats ConeCache::stats() const {
  ConeCacheStats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.stores = impl_->stores.load(std::memory_order_relaxed);
  s.evictions = impl_->evictions.load(std::memory_order_relaxed);
  s.read_faults = impl_->read_faults.load(std::memory_order_relaxed);
  s.corrupt_records = impl_->corrupt_records.load(std::memory_order_relaxed);
  s.spill_errors = impl_->spill_errors.load(std::memory_order_relaxed);
  s.spill_loaded = impl_->spill_loaded.load(std::memory_order_relaxed);
  return s;
}

std::size_t ConeCache::entries() const {
  std::size_t n = 0;
  for (Impl::Shard& s : impl_->shards) {
    std::lock_guard<std::mutex> lock(s.mutex);
    n += s.lru.size();
  }
  return n;
}

std::size_t ConeCache::bytes() const {
  std::size_t n = 0;
  for (Impl::Shard& s : impl_->shards) {
    std::lock_guard<std::mutex> lock(s.mutex);
    n += s.bytes;
  }
  return n;
}

std::string ConeCache::stats_json() const {
  const ConeCacheStats s = stats();
  return format(
      R"({"hits":%llu,"misses":%llu,"stores":%llu,"evictions":%llu,)"
      R"("read_faults":%llu,"corrupt_records":%llu,"spill_errors":%llu,)"
      R"("spill_loaded":%llu,"entries":%zu,"bytes":%zu})",
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses),
      static_cast<unsigned long long>(s.stores),
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.read_faults),
      static_cast<unsigned long long>(s.corrupt_records),
      static_cast<unsigned long long>(s.spill_errors),
      static_cast<unsigned long long>(s.spill_loaded), entries(), bytes());
}

}  // namespace soidom
