#include "soidom/serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "soidom/base/contracts.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/batch/signals.hpp"
#include "soidom/guard/fault.hpp"

namespace soidom {
namespace {

/// Write one NDJSON line; MSG_NOSIGNAL so a vanished client surfaces as
/// an error here instead of a process-killing SIGPIPE.
void send_line(int fd, const std::string& line) {
  const std::string out = line + "\n";
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(format("send on connection failed: %s",
                         std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string counters_json(const ServeCounters& c) {
  return format(
      R"({"connections":%llu,"requests":%llu,"results":%llu,"errors":%llu,)"
      R"("busy_rejections":%llu,"drain_rejections":%llu,"malformed":%llu,)"
      R"("accept_faults":%llu,"drain_faults":%llu})",
      static_cast<unsigned long long>(c.connections),
      static_cast<unsigned long long>(c.requests),
      static_cast<unsigned long long>(c.results),
      static_cast<unsigned long long>(c.errors),
      static_cast<unsigned long long>(c.busy_rejections),
      static_cast<unsigned long long>(c.drain_rejections),
      static_cast<unsigned long long>(c.malformed),
      static_cast<unsigned long long>(c.accept_faults),
      static_cast<unsigned long long>(c.drain_faults));
}

}  // namespace

std::string ServeReport::to_json() const {
  std::string warnings;
  for (const Diagnostic& d : spill_warnings) {
    if (!warnings.empty()) warnings += ",";
    warnings += d.to_json();
  }
  return format(
      R"({"schema":"soidom-serve-report-1","counters":%s,"cache":%s,)"
      R"("interrupted_by_signal":%d,"spill_warnings":[%s]})"
      "\n",
      counters_json(counters).c_str(),
      format(R"({"hits":%llu,"misses":%llu,"stores":%llu,"evictions":%llu,)"
             R"("read_faults":%llu,"corrupt_records":%llu,)"
             R"("spill_errors":%llu,"spill_loaded":%llu,)"
             R"("entries":%zu,"bytes":%zu})",
             static_cast<unsigned long long>(cache.hits),
             static_cast<unsigned long long>(cache.misses),
             static_cast<unsigned long long>(cache.stores),
             static_cast<unsigned long long>(cache.evictions),
             static_cast<unsigned long long>(cache.read_faults),
             static_cast<unsigned long long>(cache.corrupt_records),
             static_cast<unsigned long long>(cache.spill_errors),
             static_cast<unsigned long long>(cache.spill_loaded),
             cache_entries, cache_bytes)
          .c_str(),
      interrupted_by_signal, warnings.c_str());
}

struct MappingServer::Impl {
  explicit Impl(const ServeOptions& opts)
      : options(opts), cone_cache(std::make_shared<ConeCache>(opts.cache)) {
    // The per-request execution template: one job, in this process,
    // through the shared cone cache.  Journal/manifest/resume belong to
    // offline batch runs; the service's durable state is the spill.
    batch_base = options.batch;
    batch_base.max_parallel = 1;
    batch_base.isolate = false;
    batch_base.journal_path.clear();
    batch_base.manifest_path.clear();
    batch_base.resume = false;
    batch_base.flow.map_cache = cone_cache;
  }

  struct Counters {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> results{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> busy_rejections{0};
    std::atomic<std::uint64_t> drain_rejections{0};
    std::atomic<std::uint64_t> malformed{0};
    std::atomic<std::uint64_t> accept_faults{0};
    std::atomic<std::uint64_t> drain_faults{0};

    ServeCounters snapshot() const {
      ServeCounters c;
      c.connections = connections.load(std::memory_order_relaxed);
      c.requests = requests.load(std::memory_order_relaxed);
      c.results = results.load(std::memory_order_relaxed);
      c.errors = errors.load(std::memory_order_relaxed);
      c.busy_rejections = busy_rejections.load(std::memory_order_relaxed);
      c.drain_rejections = drain_rejections.load(std::memory_order_relaxed);
      c.malformed = malformed.load(std::memory_order_relaxed);
      c.accept_faults = accept_faults.load(std::memory_order_relaxed);
      c.drain_faults = drain_faults.load(std::memory_order_relaxed);
      return c;
    }
  };

  /// One structured error response (errors and its subset counter).
  void send_error(int fd, const std::string& id, const char* code,
                  const char* stage, const std::string& message,
                  std::atomic<std::uint64_t>* subset) {
    counters.errors.fetch_add(1, std::memory_order_relaxed);
    if (subset != nullptr) subset->fetch_add(1, std::memory_order_relaxed);
    send_line(fd, response_error(id, code, stage, message));
  }

  void handle_request(int fd, const std::string& line) {
    counters.requests.fetch_add(1, std::memory_order_relaxed);
    std::string id;
    json_find_string(line, "id", &id);  // best effort, even when malformed
    ServeRequest req;
    std::string parse_error;
    if (!parse_request(line, &req, &parse_error)) {
      send_error(fd, id, "parse_error", "serve_accept", parse_error,
                 &counters.malformed);
      return;
    }
    switch (req.kind) {
      case ServeRequest::Kind::kPing:
        counters.results.fetch_add(1, std::memory_order_relaxed);
        send_line(fd, response_pong(req.id));
        return;
      case ServeRequest::Kind::kStats:
        counters.results.fetch_add(1, std::memory_order_relaxed);
        send_line(fd, response_stats(req.id, cone_cache->stats_json(),
                                     counters_json(counters.snapshot())));
        return;
      case ServeRequest::Kind::kMap:
        break;
    }

    if (draining.load(std::memory_order_relaxed)) {
      send_error(fd, req.id, "cancelled", "serve_drain",
                 "server draining; resubmit after restart",
                 &counters.drain_rejections);
      return;
    }
    // Admission control: never queue past max_in_flight — tell the
    // client to back off instead of growing an unbounded backlog.
    const int running = in_flight.fetch_add(1, std::memory_order_acq_rel);
    if (running >= options.max_in_flight) {
      in_flight.fetch_sub(1, std::memory_order_acq_rel);
      send_error(fd, req.id, "busy", "serve_accept",
                 format("server at capacity (%d map jobs in flight); "
                        "retry later",
                        running),
                 &counters.busy_rejections);
      return;
    }

    BatchResult br;
    std::string internal_error;
    try {
      BatchOptions bo = batch_base;
      if (req.deadline_ms > 0) bo.job_timeout_ms = req.deadline_ms;
      const BatchJob job{
          req.circuit.empty() ? req.blif_path : req.circuit, req.blif_path};
      br = run_batch({job}, bo);
    } catch (const std::exception& e) {
      internal_error = e.what();
    }
    in_flight.fetch_sub(1, std::memory_order_acq_rel);

    if (!internal_error.empty() || br.jobs.empty()) {
      send_error(fd, req.id, "internal", "serve_accept",
                 internal_error.empty() ? "job produced no outcome"
                                        : internal_error,
                 nullptr);
      return;
    }
    const JobOutcome& out = br.jobs[0];
    if (!out.terminal) {
      // Cancelled mid-flight by drain (the batch watchdog propagates the
      // signal into the job's CancelToken): no terminal state exists, so
      // the only honest answer is a structured drain error.
      send_error(fd, req.id, "cancelled", "serve_drain",
                 "request cancelled by server drain; resubmit after restart",
                 &counters.drain_rejections);
      return;
    }
    counters.results.fetch_add(1, std::memory_order_relaxed);
    send_line(fd, response_result(req.id, out.record));
  }

  void handle_connection(int fd) {
    std::string buffer;
    char chunk[4096];
    pollfd pfd{fd, POLLIN, 0};
    try {
      for (;;) {
        // Drain whatever is already buffered before deciding to exit.
        std::size_t nl;
        while ((nl = buffer.find('\n')) != std::string::npos) {
          std::string line = buffer.substr(0, nl);
          buffer.erase(0, nl + 1);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          if (!line.empty()) handle_request(fd, line);
        }
        if (draining.load(std::memory_order_relaxed)) break;
        const int pr = ::poll(&pfd, 1, 100);
        if (pr < 0) {
          if (errno == EINTR) continue;
          break;
        }
        if (pr == 0) continue;
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
          if (errno == EINTR) continue;
          break;
        }
        if (n == 0) break;  // client hung up
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
    } catch (const std::exception&) {
      // Transport failure (client vanished mid-response): drop the
      // connection; the server must outlive any client.
    }
    ::close(fd);
    active_connections.fetch_sub(1, std::memory_order_acq_rel);
  }

  const ServeOptions options;
  BatchOptions batch_base;
  std::shared_ptr<ConeCache> cone_cache;
  Counters counters;
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> draining{false};
  std::atomic<int> in_flight{0};
  std::atomic<int> active_connections{0};
  std::vector<std::thread> threads;
  std::vector<Diagnostic> spill_warnings;
};

MappingServer::MappingServer(const ServeOptions& options)
    : impl_(std::make_unique<Impl>(options)) {
  SOIDOM_REQUIRE(!options.socket_path.empty(),
                 "ServeOptions.socket_path must not be empty");
  SOIDOM_REQUIRE(options.max_connections >= 1,
                 format("ServeOptions.max_connections = %d is invalid "
                        "(need >= 1)",
                        options.max_connections));
  SOIDOM_REQUIRE(options.max_in_flight >= 1,
                 format("ServeOptions.max_in_flight = %d is invalid "
                        "(need >= 1)",
                        options.max_in_flight));
  impl_->spill_warnings = impl_->cone_cache->load_spill();
}

MappingServer::~MappingServer() = default;

void MappingServer::request_stop() {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
}

ConeCache& MappingServer::cache() { return *impl_->cone_cache; }

ServeReport MappingServer::run() {
  install_signal_cancel();

  const std::string& path = impl_->options.socket_path;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SOIDOM_REQUIRE(path.size() < sizeof addr.sun_path,
                 format("socket path '%s' is too long for a Unix-domain "
                        "socket (max %zu bytes)",
                        path.c_str(), sizeof addr.sun_path - 1));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw Error(format("socket() failed: %s", std::strerror(errno)));
  }
  ::unlink(path.c_str());  // a stale socket from a killed server is fine
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0 ||
      ::listen(listen_fd, impl_->options.listen_backlog) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    throw Error(format("cannot listen on %s: %s", path.c_str(), why.c_str()));
  }

  pollfd pfd{listen_fd, POLLIN, 0};
  while (signal_received() == 0 &&
         !impl_->stop_requested.load(std::memory_order_relaxed)) {
    // SA_RESTART keeps syscalls from waking on the signal, so the loop
    // polls with a timeout and re-checks the flags each tick.
    const int pr = ::poll(&pfd, 1, 100);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    impl_->counters.connections.fetch_add(1, std::memory_order_relaxed);
    try {
      SOIDOM_FAULT_PROBE(FlowStage::kServeAccept);
    } catch (const std::exception&) {
      // Injected accept failure: the connection still gets a structured
      // goodbye, never silence or a crash.
      impl_->counters.accept_faults.fetch_add(1, std::memory_order_relaxed);
      try {
        impl_->send_error(fd, "", "fault_injected", "serve_accept",
                          "connection rejected by injected accept fault",
                          nullptr);
      } catch (const std::exception&) {
      }
      ::close(fd);
      continue;
    }
    const int active =
        impl_->active_connections.fetch_add(1, std::memory_order_acq_rel);
    if (active >= impl_->options.max_connections) {
      impl_->active_connections.fetch_sub(1, std::memory_order_acq_rel);
      try {
        impl_->send_error(fd, "", "busy", "serve_accept",
                          format("server at capacity (%d connections); "
                                 "retry later",
                                 active),
                          &impl_->counters.busy_rejections);
      } catch (const std::exception&) {
      }
      ::close(fd);
      continue;
    }
    impl_->threads.emplace_back(
        [impl = impl_.get(), fd] { impl->handle_connection(fd); });
  }

  // Drain: stop accepting, cancel in-flight work (the batch watchdog
  // propagates a received signal into every armed CancelToken), answer
  // everything still pending with a structured drain error, then
  // compact the spill.  An injected kServeDrain fault must not be able
  // to skip any of that.
  impl_->draining.store(true, std::memory_order_relaxed);
  try {
    SOIDOM_FAULT_PROBE(FlowStage::kServeDrain);
  } catch (const std::exception&) {
    impl_->counters.drain_faults.fetch_add(1, std::memory_order_relaxed);
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  for (std::thread& t : impl_->threads) t.join();
  impl_->threads.clear();

  ServeReport report;
  for (const Diagnostic& d : impl_->cone_cache->flush_spill()) {
    impl_->spill_warnings.push_back(d);
  }
  report.counters = impl_->counters.snapshot();
  report.cache = impl_->cone_cache->stats();
  report.cache_entries = impl_->cone_cache->entries();
  report.cache_bytes = impl_->cone_cache->bytes();
  report.interrupted_by_signal = signal_received();
  report.spill_warnings = impl_->spill_warnings;
  return report;
}

bool run_client(const std::string& socket_path,
                const std::vector<ServeRequest>& requests,
                std::vector<ServeResponse>* responses, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    *error = format("socket path '%s' is too long", socket_path.c_str());
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = format("socket() failed: %s", std::strerror(errno));
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    *error = format("cannot connect to %s: %s", socket_path.c_str(),
                    std::strerror(errno));
    ::close(fd);
    return false;
  }

  std::string buffer;
  char chunk[4096];
  auto read_line = [&](std::string* line) -> bool {
    for (;;) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        *line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        return true;
      }
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        *error = format("read failed: %s", std::strerror(errno));
        return false;
      }
      if (n == 0) {
        *error = "server closed the connection before responding";
        return false;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  };

  // One request, one response, in lockstep: no pipelining, so neither
  // side can deadlock on a full socket buffer.
  for (const ServeRequest& request : requests) {
    try {
      send_line(fd, request_json(request));
    } catch (const std::exception& e) {
      *error = e.what();
      ::close(fd);
      return false;
    }
    std::string line;
    if (!read_line(&line)) {
      ::close(fd);
      return false;
    }
    ServeResponse response;
    if (!parse_response(line, &response)) {
      *error = format("unparseable response: %s", line.c_str());
      ::close(fd);
      return false;
    }
    responses->push_back(std::move(response));
  }
  ::close(fd);
  return true;
}

}  // namespace soidom
