/// \file protocol.hpp
/// Wire protocol of the mapping service (docs/SERVE.md): newline-
/// delimited JSON over a Unix-domain stream socket.  One request per
/// line, one response line per request, in order, per connection.
///
/// Requests:
///   {"type":"map","id":"r1","circuit":"c432","deadline_ms":5000}
///   {"type":"map","id":"r2","blif_path":"/path/to/x.blif"}
///   {"type":"stats","id":"s1"}   {"type":"ping","id":"p1"}
///
/// Responses:
///   {"type":"result","id":"r1","job":...}   — the full batch JobRecord
///     field set (journal.hpp job_record_fields_json), byte-compatible
///     with soidom_batch manifests so a client can assemble an identical
///     manifest offline.
///   {"type":"error","id":"r1","code":"...","stage":"...","message":...}
///     — structured rejection: "busy" backpressure (stage serve_accept),
///     drain ("cancelled"/serve_drain), malformed request ("parse_error").
///   {"type":"stats",...}, {"type":"pong",...}
///
/// The codec is shared by server and client (soidom_serve CLI) so both
/// sides agree by construction, and reuses the batch record field codec
/// for manifest byte-identity.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "soidom/batch/journal.hpp"

namespace soidom {

struct ServeRequest {
  enum class Kind : std::uint8_t { kMap, kStats, kPing };
  Kind kind = Kind::kMap;
  std::string id;         ///< echoed verbatim in the response
  std::string circuit;    ///< benchmark-registry name...
  std::string blif_path;  ///< ...or a BLIF file path (exactly one)
  std::int64_t deadline_ms = 0;  ///< per-request watchdog; 0 = server default
};

/// Parse one request line.  On failure returns false and sets *error to
/// a human-readable reason (the server echoes it in an "error" response;
/// a malformed line never kills the connection).
bool parse_request(std::string_view line, ServeRequest* out,
                   std::string* error);

/// Serialize a request (client side).
std::string request_json(const ServeRequest& request);

/// {"type":"result","id":...,<JobRecord fields>}
std::string response_result(const std::string& id, const JobRecord& record);

/// {"type":"error","id":...,"code":...,"stage":...,"message":...}
std::string response_error(const std::string& id, const std::string& code,
                           const std::string& stage,
                           const std::string& message);

/// {"type":"stats","id":...,"cache":{...},"server":{...}}
std::string response_stats(const std::string& id,
                           const std::string& cache_json,
                           const std::string& server_json);

/// {"type":"pong","id":...}
std::string response_pong(const std::string& id);

/// Decoded response (client side).  For kind "result", `record` holds
/// the parsed JobRecord; for "error", code/stage/message are set.
struct ServeResponse {
  std::string kind;  ///< "result" | "error" | "stats" | "pong"
  std::string id;
  JobRecord record;
  std::string code;
  std::string stage;
  std::string message;
  std::string raw;  ///< the verbatim response line (stats payloads)
};

/// Parse one response line; false only when the line is not a
/// recognizable response object at all.
bool parse_response(std::string_view line, ServeResponse* out);

}  // namespace soidom
