/// \file cache.hpp
/// The persistent content-addressed cone cache behind the mapping
/// service (docs/SERVE.md).
///
/// ConeCache implements the MapConeCache seam (mapper/cone.hpp): a
/// sharded, mutex-per-shard map from exact cone-key text to the cached
/// mapping, with per-shard LRU eviction under a byte budget.  Keys are
/// compared by full text — the 64-bit content hash only picks the shard
/// and the bucket — so a hash collision degrades to a miss, never to a
/// wrong mapping.
///
/// Persistence uses the checksummed append-only JSONL idiom
/// (base/jsonl.hpp): every store appends one fsync'd record to the
/// spill file; load_spill() replays it tolerantly on restart (corrupt,
/// torn, or version-mismatched records are skipped and reported as
/// structured diagnostics); flush_spill() compacts it atomically on
/// drain.  Every failure mode of the spill degrades to recompute: a
/// cache that cannot read or write its disk is merely cold, never wrong
/// and never fatal — the crash-only contract the service is built on.
///
/// Fault probes: kServeCacheRead fires on every lookup (an injected
/// fault is absorbed as a miss), kServeCacheSpill on every spill append
/// / flush / load (absorbed as a counted spill error).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "soidom/guard/diagnostic.hpp"
#include "soidom/mapper/cone.hpp"

namespace soidom {

struct ConeCacheOptions {
  /// Shard count (rounded up to a power of two, min 1).  More shards =
  /// less lock contention; 16 is plenty below a few hundred workers.
  std::size_t shards = 16;
  /// In-memory byte budget across all shards (keys + payloads).  The
  /// LRU tail of a shard is evicted when the shard exceeds its slice.
  std::size_t max_bytes = std::size_t{256} << 20;
  /// Append-only spill journal path; empty = memory-only cache.
  std::string spill_path;
  /// fsync each spill append (tests turn this off for speed).
  bool durable = true;
};

/// Monotonic counters; exposed in the server report and the stats
/// response.  All counters are process-lifetime (never reset).
struct ConeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
  /// Lookups dropped to a miss by an injected/real read failure.
  std::uint64_t read_faults = 0;
  /// Spill records skipped for integrity (bad CRC, torn, bad fields).
  std::uint64_t corrupt_records = 0;
  /// Spill appends / flushes that failed (cache stayed serving).
  std::uint64_t spill_errors = 0;
  /// Records successfully replayed by load_spill().
  std::uint64_t spill_loaded = 0;
};

class ConeCache : public MapConeCache {
 public:
  explicit ConeCache(const ConeCacheOptions& options);
  ~ConeCache() override;
  ConeCache(const ConeCache&) = delete;
  ConeCache& operator=(const ConeCache&) = delete;

  /// MapConeCache: full-text compare, LRU touch.  Never throws; any
  /// read-side failure (including an injected kServeCacheRead fault)
  /// counts as a miss.
  std::optional<CachedMapping> lookup(const ConeKey& key) override;

  /// MapConeCache: insert/refresh, evict LRU overweight, append to the
  /// spill.  Never throws; a spill-append failure (including an injected
  /// kServeCacheSpill fault) is counted and the in-memory insert stands.
  void store(const ConeKey& key, const CachedMapping& value) override;

  /// Replay the spill journal into memory (typically once at startup).
  /// Returns one structured diagnostic per skipped record (CRC mismatch,
  /// torn line, bad fields) or skipped file (missing/mismatched schema
  /// header); an unreadable or absent file is not an error — the cache
  /// just starts cold.
  std::vector<Diagnostic> load_spill();

  /// Atomically rewrite the spill as one compact snapshot of the current
  /// in-memory contents (dropping evicted/stale/corrupt records), then
  /// continue appending after it.  Called on graceful drain.  Returns
  /// diagnostics for failures (the cache keeps serving regardless).
  std::vector<Diagnostic> flush_spill();

  ConeCacheStats stats() const;
  std::size_t entries() const;
  std::size_t bytes() const;

  /// {"hits":..,"misses":..,...,"entries":..,"bytes":..} for the report.
  std::string stats_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace soidom
