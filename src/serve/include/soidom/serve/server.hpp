/// \file server.hpp
/// Crash-only persistent mapping service over a Unix-domain socket
/// (docs/SERVE.md).
///
/// MappingServer accepts NDJSON requests (protocol.hpp), runs each map
/// request through the batch runner's guarded single-job machinery
/// (watchdog deadline, retry/degradation ladder, structured failure
/// classification — byte-identical outcomes to an offline soidom_batch
/// run), and answers every request with exactly one structured response:
/// a result, or an error that says why not.  Overload never queues
/// unboundedly: past max_connections / max_in_flight the server answers
/// an explicit "busy" backpressure error immediately.  Repeated map
/// results are served from the content-addressed cone cache
/// (cache.hpp), which spills to disk and survives kill -9.
///
/// Shutdown is graceful drain: on SIGINT/SIGTERM (or request_stop) the
/// listener closes, in-flight jobs are cancelled at their guard
/// checkpoints via the batch watchdog's signal propagation, every
/// unanswered request receives a "cancelled"/serve_drain error, the
/// cache spill is compacted, and run() returns; the CLI then exits
/// 128+signum.  Fault probes kServeAccept and kServeDrain let tests
/// storm both paths and assert the response-per-request invariant holds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "soidom/batch/runner.hpp"
#include "soidom/serve/cache.hpp"
#include "soidom/serve/protocol.hpp"

namespace soidom {

struct ServeOptions {
  std::string socket_path;  ///< Unix-domain socket (unlinked/rebound)
  /// Per-job execution options (flow, budget, retry ladder, default
  /// watchdog timeout).  journal/manifest/isolate/resume fields are
  /// ignored: the service journal is the cone-cache spill, and results
  /// stream to the client instead of a manifest.
  BatchOptions batch;
  ConeCacheOptions cache;
  int max_connections = 32;  ///< concurrent client connections
  int max_in_flight = 4;     ///< concurrent map jobs (admission control)
  int listen_backlog = 64;
};

/// Process-lifetime server counters (all responses are counted in
/// exactly one of results / errors).
struct ServeCounters {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t results = 0;
  std::uint64_t errors = 0;            ///< structured error responses
  std::uint64_t busy_rejections = 0;   ///< subset of errors: backpressure
  std::uint64_t drain_rejections = 0;  ///< subset of errors: draining
  std::uint64_t malformed = 0;         ///< subset of errors: bad request
  std::uint64_t accept_faults = 0;     ///< kServeAccept probe fired
  std::uint64_t drain_faults = 0;      ///< kServeDrain probe fired
};

/// Final report returned by run().
struct ServeReport {
  ServeCounters counters;
  ConeCacheStats cache;
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  int interrupted_by_signal = 0;  ///< signum that triggered drain, or 0
  /// Structured diagnostics from loading/compacting the cache spill
  /// (corrupt records skipped, flush failures) — informational; the
  /// server ran regardless.
  std::vector<Diagnostic> spill_warnings;

  std::string to_json() const;
};

class MappingServer {
 public:
  /// Validates options and opens the cache (loading the spill).  Throws
  /// soidom::Error for caller mistakes (empty socket path, bad batch
  /// policy); a damaged spill is not a mistake — it produces
  /// spill_warnings and a colder cache.
  explicit MappingServer(const ServeOptions& options);
  ~MappingServer();
  MappingServer(const MappingServer&) = delete;
  MappingServer& operator=(const MappingServer&) = delete;

  /// Bind, listen, and serve until a SIGINT/SIGTERM or request_stop(),
  /// then drain and return the report.  Throws soidom::Error only when
  /// the socket cannot be bound.
  ServeReport run();

  /// Thread-safe: ask a running run() to drain (tests; the CLI uses
  /// signals).
  void request_stop();

  /// The shared cone cache (test introspection; safe concurrently).
  ConeCache& cache();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Minimal blocking client: connect to `socket_path`, send every
/// request line, and collect one response per request (in order).
/// Returns false (with *error set) on connect/transport failure or a
/// short response stream — partial responses are kept in *responses.
bool run_client(const std::string& socket_path,
                const std::vector<ServeRequest>& requests,
                std::vector<ServeResponse>* responses, std::string* error);

}  // namespace soidom
