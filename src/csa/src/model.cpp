/// \file model.cpp
/// Electrical pulldown model construction for the CSA analyzer.
///
/// The node numbering here MUST stay identical to soisim's internal
/// ModelBuilder (soisim.cpp): node 0 = dynamic node, node 1 = bottom
/// terminal, and one node per series junction allocated in the same
/// recursive series-walk order.  The conservativeness oracle feeds
/// csa_node_caps() vectors straight into SoiSimulator::enable_droop(),
/// which indexes them by the simulator's numbering.
#include <algorithm>

#include "soidom/base/contracts.hpp"
#include "soidom/csa/csa.hpp"

namespace soidom {
namespace {

/// Mirrors soisim's ModelBuilder::wire: recursively wires a PDN subtree
/// between nodes `above` and `below`, allocating junction nodes for
/// series chains and recording them by (series node, position) key.
struct CsaModelBuilder {
  const Pdn& pdn;
  CsaPdnModel& model;
  std::vector<std::pair<std::uint64_t, std::uint16_t>> junctions;

  void wire(PdnIndex i, std::uint16_t above, std::uint16_t below) {
    const PdnNode& n = pdn.node(i);
    switch (n.kind) {
      case PdnKind::kLeaf:
        model.devices.push_back(CsaDevice{n.signal, above, below});
        break;
      case PdnKind::kParallel:
        for (const PdnIndex c : n.children) wire(c, above, below);
        break;
      case PdnKind::kSeries: {
        std::uint16_t upper = above;
        for (std::size_t k = 0; k + 1 < n.children.size(); ++k) {
          const auto junction = static_cast<std::uint16_t>(model.num_nodes++);
          junctions.emplace_back(
              (static_cast<std::uint64_t>(i) << 32) | k, junction);
          wire(n.children[k], upper, junction);
          upper = junction;
        }
        wire(n.children.back(), upper, below);
        break;
      }
    }
  }
};

}  // namespace

CsaPdnModel build_csa_model(const Pdn& pdn,
                            const std::vector<DischargePoint>& discharges,
                            bool footed) {
  SOIDOM_REQUIRE(!pdn.empty(), "build_csa_model: empty pulldown network");
  CsaPdnModel model;
  model.footed = footed;
  CsaModelBuilder builder{pdn, model, {}};
  builder.wire(pdn.root(), kCsaDynamicNode, kCsaBottomNode);
  for (const DischargePoint& p : discharges) {
    if (p.at_bottom()) {
      model.discharged.push_back(kCsaBottomNode);
      continue;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p.series_node) << 32) | p.pos;
    const auto it = std::find_if(
        builder.junctions.begin(), builder.junctions.end(),
        [&](const auto& j) { return j.first == key; });
    SOIDOM_REQUIRE(it != builder.junctions.end(),
                   "build_csa_model: discharge point refers to an unknown "
                   "junction");
    model.discharged.push_back(it->second);
  }
  return model;
}

std::vector<double> csa_node_caps(const CsaPdnModel& model,
                                  const std::vector<double>& device_widths,
                                  const ChargeModel& charge) {
  SOIDOM_REQUIRE(device_widths.size() == model.devices.size(),
                 "csa_node_caps: one width per device required");
  SOIDOM_ASSERT(model.num_nodes >= 2);  // dynamic + bottom always exist
  std::vector<double> caps(static_cast<std::size_t>(model.num_nodes), 0.0);
  caps[kCsaDynamicNode] = charge.c_dyn_fixed;
  for (std::size_t v = 1; v < caps.size(); ++v) {
    caps[v] = charge.c_junction_fixed;
  }
  for (std::size_t t = 0; t < model.devices.size(); ++t) {
    const double diffusion = charge.c_diffusion * device_widths[t];
    caps[model.devices[t].above] += diffusion;
    caps[model.devices[t].below] += diffusion;
  }
  return caps;
}

}  // namespace soidom
