/// \file rules.cpp
/// The csa.* lint rule family: renders a CsaReport as structured
/// findings through the lint engine (docs/LINT.md has the catalogue).
///
/// Unlike the built-in netlist rules these are report-driven: the rule
/// objects hold references to the CsaReport/CsaOptions they were built
/// over, so csa_registry()'s result must not outlive them (run_csa keeps
/// everything on one stack frame).
#include "soidom/base/strings.hpp"
#include "soidom/csa/csa.hpp"

namespace soidom {
namespace {

/// Shared base: iterates the report's pulldown bounds and keeps the
/// registry lifetime contract in one place.
class CsaRule : public LintRule {
 public:
  CsaRule(const CsaReport& report, const CsaOptions& options)
      : report_(report), options_(options) {}

  /// Report-driven rules never index through the netlist, so they are
  /// safe to run even when a foundation rule failed.
  bool needs_sound() const override { return false; }

 protected:
  /// Calls fn(gate, which, bound) for every analyzed pulldown.
  template <typename Fn>
  void for_each_bound(Fn&& fn) const {
    for (const CsaGateReport& gate : report_.gates) {
      fn(gate, 1, gate.pd1);
      if (gate.dual) fn(gate, 2, gate.pd2);
    }
  }

  static LintLocation at(const CsaGateReport& gate, int which) {
    LintLocation loc;
    loc.gate = gate.gate;
    loc.pdn = which;
    return loc;
  }

  const CsaReport& report_;
  const CsaOptions& options_;
};

class PbeDischargeRule final : public CsaRule {
 public:
  using CsaRule::CsaRule;
  const char* id() const override { return "csa.pbe-discharge"; }
  const char* summary() const override {
    return "a parasitic-bipolar discharge path can overpower the keeper "
           "and flip the dynamic node";
  }
  LintSeverity severity() const override { return LintSeverity::kError; }

  void run(const LintContext&, std::vector<Finding>& out) const override {
    for_each_bound([&](const CsaGateReport& gate, int which,
                       const CsaPulldownBound& b) {
      if (!b.keeper_overpowered) return;
      Finding f;
      f.severity = severity();
      f.location = at(gate, which);
      f.message = format(
          "%d parasitic device%s can fire against keeper strength %d with "
          "ground reachable (droop bound %.3f V, worst state: %s)",
          b.firings, b.firings == 1 ? "" : "s", options_.keeper_strength,
          b.droop, b.worst_state.c_str());
      f.fixit =
          "increase the keeper strength or attach discharge transistors "
          "to the exposed junctions";
      out.push_back(std::move(f));
    });
  }
};

class DroopMarginRule final : public CsaRule {
 public:
  using CsaRule::CsaRule;
  const char* id() const override { return "csa.droop-margin"; }
  const char* summary() const override {
    return "worst-case charge-sharing droop exceeds the noise margin";
  }
  LintSeverity severity() const override { return LintSeverity::kWarning; }

  void run(const LintContext&, std::vector<Finding>& out) const override {
    const double limit = options_.margin * options_.charge.vdd;
    for_each_bound([&](const CsaGateReport& gate, int which,
                       const CsaPulldownBound& b) {
      // A keeper-overpowered pulldown already gets the (stronger)
      // csa.pbe-discharge error; don't double-report.
      if (b.keeper_overpowered || b.droop < limit) return;
      Finding f;
      f.severity = severity();
      f.location = at(gate, which);
      f.message = format(
          "droop bound %.3f V exceeds the noise margin %.3f V "
          "(%.3f shared cap units, %d injecting device%s, worst state: %s)",
          b.droop, limit, b.share_cap, b.firings, b.firings == 1 ? "" : "s",
          b.worst_state.c_str());
      f.fixit =
          "attach discharge transistors to precharge the exposed "
          "junctions low, or reduce the stack depth";
      out.push_back(std::move(f));
    });
  }
};

class StateExplosionRule final : public CsaRule {
 public:
  using CsaRule::CsaRule;
  const char* id() const override { return "csa.state-explosion"; }
  const char* summary() const override {
    return "state enumeration truncated; the bound is the coarser "
           "pointwise-max fallback";
  }
  LintSeverity severity() const override { return LintSeverity::kInfo; }

  void run(const LintContext&, std::vector<Finding>& out) const override {
    for_each_bound([&](const CsaGateReport& gate, int which,
                       const CsaPulldownBound& b) {
      if (!b.truncated) return;
      Finding f;
      f.severity = severity();
      f.location = at(gate, which);
      f.message = format(
          "pulldown state space exceeds max_states=%ld; the reported "
          "bound assumes every junction shares and every eligible device "
          "fires (still conservative, possibly loose)",
          options_.max_states);
      f.fixit = "raise CsaOptions::max_states for an exact enumeration";
      out.push_back(std::move(f));
    });
  }
};

}  // namespace

LintRegistry csa_registry(const CsaReport& report, const CsaOptions& options) {
  LintRegistry registry;
  registry.add(std::make_unique<PbeDischargeRule>(report, options));
  registry.add(std::make_unique<DroopMarginRule>(report, options));
  registry.add(std::make_unique<StateExplosionRule>(report, options));
  return registry;
}

}  // namespace soidom
