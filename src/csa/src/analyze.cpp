/// \file analyze.cpp
/// The CSA bound computation and the run_csa driver.
///
/// Conservativeness argument (docs/CSA.md has the full version).  Fix a
/// simulator cycle of one pulldown that does not legitimately discharge,
/// and pick the enumerated state whose input bits equal the cycle's
/// actual signal values and whose precharge bits equal the cycle's
/// internal-node precharge snapshot.  Then:
///  * every device soisim fires is a CSA candidate (firing needs the
///    device OFF with its below junction precharged high and not
///    discharge-protected; devices whose below node is the bottom
///    terminal can never fire because the evaluate settle grounds the
///    bottom, resetting their body charge every cycle),
///  * soisim's final conduction graph is a subset of ON u candidates,
///    so the simulator's connected component (clamped at the bottom
///    terminal, as both sides clamp) is a subset of the CSA closure,
///  * therefore shared precharge-low capacitance S >= S_sim, injecting
///    count F >= F_sim, and with total component capacitance
///    T_sim >= c_dyn + S_sim the static droop
///    vdd*S/(c_dyn+S) + q_pbe*F/c_dyn dominates the observed
///    (vdd*S_sim + q_pbe*F_sim)/T_sim,
///  * a simulator parasitic flip needs >= keeper_strength firings and a
///    conducting path to ground; CSA then reports flip-possible and
///    takes max(formula, vdd).
/// The truncation fallback takes S over ALL junctions and F over ALL
/// candidate-eligible devices, which dominates every state.
#include <optional>

#include "soidom/base/contracts.hpp"
#include "soidom/base/parallel.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/csa/csa.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {
namespace {

/// Flood from the dynamic node over devices where `edge_on[t]`.  When
/// `clamp_bottom`, the bottom terminal is never entered (the flood stops
/// there, only recording reachability); otherwise it is a regular node.
/// Returns whether the bottom terminal was reached.
bool flood(const CsaPdnModel& model, const std::vector<bool>& edge_on,
           bool clamp_bottom, std::vector<bool>& member,
           std::vector<std::uint16_t>& stack) {
  member.assign(static_cast<std::size_t>(model.num_nodes), false);
  member[kCsaDynamicNode] = true;
  stack.assign(1, kCsaDynamicNode);
  bool reached_bottom = false;
  while (!stack.empty()) {
    const std::uint16_t node = stack.back();
    stack.pop_back();
    for (std::size_t t = 0; t < model.devices.size(); ++t) {
      if (!edge_on[t]) continue;
      const CsaDevice& d = model.devices[t];
      std::uint16_t other;
      if (d.above == node) {
        other = d.below;
      } else if (d.below == node) {
        other = d.above;
      } else {
        continue;
      }
      if (other == kCsaBottomNode) {
        reached_bottom = true;
        if (clamp_bottom) continue;
      }
      if (member[other]) continue;
      member[other] = true;
      stack.push_back(other);
    }
  }
  return reached_bottom;
}

std::string state_witness(long state, std::size_t num_signals,
                          std::size_t num_free) {
  if (num_signals + num_free == 0) return "trivial";
  std::string out;
  if (num_signals > 0) {
    out += "in=";
    for (std::size_t i = 0; i < num_signals; ++i) {
      out += static_cast<char>('0' + ((state >> i) & 1));
    }
  }
  if (num_free > 0) {
    if (!out.empty()) out += ' ';
    out += "pre=";
    for (std::size_t i = 0; i < num_free; ++i) {
      out += static_cast<char>('0' + ((state >> (num_signals + i)) & 1));
    }
  }
  return out;
}

}  // namespace

std::vector<std::uint32_t> csa_state_signals(const CsaPdnModel& model) {
  std::vector<std::uint32_t> signals;
  signals.reserve(model.devices.size());
  for (const CsaDevice& d : model.devices) signals.push_back(d.signal);
  std::sort(signals.begin(), signals.end());
  signals.erase(std::unique(signals.begin(), signals.end()), signals.end());
  return signals;
}

std::vector<std::uint16_t> csa_free_nodes(const CsaPdnModel& model) {
  std::vector<bool> discharged(static_cast<std::size_t>(model.num_nodes),
                               false);
  for (const std::uint16_t n : model.discharged) discharged[n] = true;
  std::vector<std::uint16_t> free_nodes;
  for (std::size_t v = 2; v < static_cast<std::size_t>(model.num_nodes);
       ++v) {
    if (!discharged[v]) free_nodes.push_back(static_cast<std::uint16_t>(v));
  }
  return free_nodes;
}

CsaPulldownBound bound_pulldown(const CsaPdnModel& model,
                                const std::vector<double>& caps,
                                const CsaOptions& options) {
  return bound_pulldown(model, caps, options, CsaStateCallbacks{});
}

CsaPulldownBound bound_pulldown(const CsaPdnModel& model,
                                const std::vector<double>& caps,
                                const CsaOptions& options,
                                const CsaStateCallbacks& callbacks) {
  SOIDOM_REQUIRE(caps.size() == static_cast<std::size_t>(model.num_nodes),
                 "bound_pulldown: caps do not match the model");
  SOIDOM_REQUIRE(options.max_states >= 1,
                 "bound_pulldown: max_states must be at least 1");
  const double vdd = options.charge.vdd;
  const double q_pbe = options.charge.q_pbe;
  const double c_dyn = caps[kCsaDynamicNode];
  SOIDOM_REQUIRE(c_dyn > 0.0,
                 "bound_pulldown: dynamic-node capacitance must be positive");

  const auto num_nodes = static_cast<std::size_t>(model.num_nodes);
  std::vector<bool> discharged(num_nodes, false);
  for (const std::uint16_t n : model.discharged) {
    discharged[n] = true;
  }

  // Enumeration bits: one per distinct input signal, one per free
  // internal junction (precharge state unknown).  The bottom terminal's
  // precharge state is irrelevant: devices sitting on it can never fire
  // (see file comment) and it is never part of a sharing component.
  const std::vector<std::uint32_t> signals = csa_state_signals(model);
  std::vector<std::size_t> signal_bit(model.devices.size());
  for (std::size_t t = 0; t < model.devices.size(); ++t) {
    signal_bit[t] = static_cast<std::size_t>(
        std::lower_bound(signals.begin(), signals.end(),
                         model.devices[t].signal) -
        signals.begin());
  }
  const std::vector<std::uint16_t> free_nodes = csa_free_nodes(model);

  CsaPulldownBound bound;
  const std::size_t bits = signals.size() + free_nodes.size();
  if (bits >= 62 || (1L << bits) > options.max_states) {
    // Pointwise-max fallback: every junction shares, every eligible
    // device fires.  Coarser than any enumerated state but still a
    // sound upper bound on anything the simulator can do.
    double s_all = 0.0;
    for (std::size_t v = 2; v < num_nodes; ++v) s_all += caps[v];
    int f_all = 0;
    for (const CsaDevice& d : model.devices) {
      if (d.below >= 2 && !discharged[d.below]) ++f_all;
    }
    bound.truncated = true;
    bound.share_cap = s_all;
    bound.firings = f_all;
    bound.ground_reachable = true;
    bound.keeper_overpowered = f_all >= options.keeper_strength;
    double droop = vdd * s_all / (c_dyn + s_all) + q_pbe * f_all / c_dyn;
    if (bound.keeper_overpowered) droop = std::max(droop, vdd);
    bound.droop = droop;
    bound.worst_state = "truncated";
    return bound;
  }

  const long num_states = 1L << bits;
  bound.states = num_states;
  std::vector<bool> on(model.devices.size());
  std::vector<bool> cand(model.devices.size());
  std::vector<bool> edge(model.devices.size());
  std::vector<bool> pstate(num_nodes);
  std::vector<bool> member(num_nodes);
  std::vector<std::uint16_t> stack;
  // admit() depends only on the input bits (the low bits of s, cycling
  // fastest), so its verdicts are memoized per input assignment.
  std::vector<signed char> admit_cache;
  if (callbacks.admit) admit_cache.assign(1uL << signals.size(), -1);
  std::vector<bool> in_vec(signals.size());
  std::vector<bool> pre_vec(free_nodes.size());

  for (long s = 0; s < num_states; ++s) {
    if ((s & 255) == 0) guard_checkpoint();
    for (std::size_t t = 0; t < model.devices.size(); ++t) {
      on[t] = ((s >> signal_bit[t]) & 1) != 0;
    }
    if (callbacks.admit) {
      const auto in_key =
          static_cast<std::size_t>(s) & ((1uL << signals.size()) - 1);
      if (admit_cache[in_key] < 0) {
        for (std::size_t i = 0; i < signals.size(); ++i) {
          in_vec[i] = ((s >> i) & 1) != 0;
        }
        admit_cache[in_key] = callbacks.admit(in_vec) ? 1 : 0;
      }
      if (admit_cache[in_key] == 0) continue;
    }
    // A state where the ON devices alone conduct to ground is a
    // legitimate discharge: the gate is supposed to evaluate low, so
    // there is no droop hazard (the simulator observes 0 there too).
    if (flood(model, on, /*clamp_bottom=*/false, member, stack)) continue;

    pstate.assign(num_nodes, false);
    pstate[kCsaDynamicNode] = true;  // the precharge device is strong
    for (std::size_t i = 0; i < free_nodes.size(); ++i) {
      pstate[free_nodes[i]] = ((s >> (signals.size() + i)) & 1) != 0;
    }
    // Candidate parasitic devices: OFF, below node an internal junction
    // that is precharged high and not pulled low by a discharge pMOS.
    int num_cand = 0;
    for (std::size_t t = 0; t < model.devices.size(); ++t) {
      const CsaDevice& d = model.devices[t];
      cand[t] = !on[t] && d.below >= 2 && !discharged[d.below] && pstate[d.below];
      if (cand[t]) ++num_cand;
      edge[t] = on[t] || cand[t];
    }
    // Everything ON or candidate may end up conducting: the connected
    // component of the dynamic node over those edges bounds the charge-
    // sharing extent.  Clamped at the bottom terminal — when a parasitic
    // path reaches ground with the keeper holding, the keeper replenishes
    // what flows past the clamp (matching soisim's observation model).
    const bool reached = flood(model, edge, /*clamp_bottom=*/true, member, stack);
    double share = 0.0;
    for (std::size_t v = 2; v < num_nodes; ++v) {
      if (member[v] && !pstate[v]) share += caps[v];
    }
    int firings = 0;
    for (std::size_t t = 0; t < model.devices.size(); ++t) {
      if (cand[t] && (member[model.devices[t].above] ||
                      member[model.devices[t].below])) {
        ++firings;
      }
    }
    // A flip needs a path to ground and enough firing devices anywhere in
    // the gate to overpower the keeper (soisim counts all firings, not
    // just those on the dynamic node's component).
    const bool flip = reached && num_cand >= options.keeper_strength;
    double droop = vdd * share / (c_dyn + share) + q_pbe * firings / c_dyn;
    if (flip) droop = std::max(droop, vdd);
    if (callbacks.visit) {
      for (std::size_t i = 0; i < signals.size(); ++i) {
        in_vec[i] = ((s >> i) & 1) != 0;
      }
      for (std::size_t i = 0; i < free_nodes.size(); ++i) {
        pre_vec[i] = ((s >> (signals.size() + i)) & 1) != 0;
      }
      callbacks.visit(in_vec, pre_vec, droop, share, firings, flip);
    }
    bound.ground_reachable = bound.ground_reachable || reached;
    bound.keeper_overpowered = bound.keeper_overpowered || flip;
    if (droop > bound.droop) {
      bound.droop = droop;
      bound.share_cap = share;
      bound.firings = firings;
      bound.worst_state = state_witness(s, signals.size(), free_nodes.size());
    }
  }
  if (bound.worst_state.empty()) bound.worst_state = "none";
  return bound;
}

namespace {

std::string pulldown_json(const CsaPulldownBound& b) {
  return format(R"({"droop":%.9g,"share_cap":%.9g,"firings":%d,)"
                R"("ground_reachable":%s,"keeper_overpowered":%s,)"
                R"("truncated":%s,"states":%ld,"worst_state":"%s"})",
                b.droop, b.share_cap, b.firings,
                b.ground_reachable ? "true" : "false",
                b.keeper_overpowered ? "true" : "false",
                b.truncated ? "true" : "false", b.states,
                json_escape(b.worst_state).c_str());
}

}  // namespace

std::string CsaReport::to_json() const {
  std::string out = format(
      R"({"vdd":%.9g,"margin":%.9g,"keeper_strength":%d,"max_states":%ld,)"
      R"("max_droop":%.9g,"gates_over_margin":%d,)"
      R"("gates_keeper_overpowered":%d,"gates_truncated":%d,"gates":[)",
      vdd, margin, keeper_strength, max_states, max_droop, gates_over_margin,
      gates_keeper_overpowered, gates_truncated);
  for (std::size_t g = 0; g < gates.size(); ++g) {
    const CsaGateReport& gate = gates[g];
    if (g) out += ',';
    out += format(R"({"gate":%d,"dual":%s,"droop":%.9g,"pd1":)", gate.gate,
                  gate.dual ? "true" : "false", gate.droop());
    out += pulldown_json(gate.pd1);
    if (gate.dual) {
      out += ",\"pd2\":";
      out += pulldown_json(gate.pd2);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

CsaResult run_csa(const DominoNetlist& netlist, const CsaOptions& options) {
  SOIDOM_REQUIRE(options.max_states >= 1,
                 "run_csa: max_states must be at least 1");
  SOIDOM_REQUIRE(options.num_threads >= 0,
                 "run_csa: num_threads must be non-negative");
  StageScope stage_scope(FlowStage::kCsa);
  SOIDOM_FAULT_PROBE(FlowStage::kCsa);
  guard_checkpoint();

  SizingResult sizing;
  if (options.use_sizing) sizing = size_netlist(netlist, options.sizing);

  const std::size_t num_gates = netlist.gates().size();
  std::vector<CsaGateReport> slots(num_gates);
  GuardContext* guard = current_guard();
  ThreadPool pool(static_cast<unsigned>(options.num_threads));
  pool.run(num_gates, [&](std::size_t g, unsigned worker) {
    // Worker 0 is the calling thread and already has the guard installed.
    std::optional<GuardScope> scope;
    if (worker != 0 && guard != nullptr) scope.emplace(*guard);
    guard_checkpoint();
    const DominoGate& spec = netlist.gates()[g];
    CsaGateReport& rep = slots[g];
    rep.gate = static_cast<int>(g);
    rep.dual = spec.dual();
    const std::vector<double>* widths =
        options.use_sizing ? &sizing.gates[g].pulldown_widths : nullptr;
    const auto bound_one = [&](const Pdn& pdn,
                               const std::vector<DischargePoint>& discharges,
                               bool footed, std::size_t width_offset) {
      const CsaPdnModel model = build_csa_model(pdn, discharges, footed);
      std::vector<double> w(model.devices.size(), 1.0);
      if (widths != nullptr) {
        SOIDOM_ASSERT(width_offset + w.size() <= widths->size());
        std::copy_n(widths->begin() + static_cast<std::ptrdiff_t>(width_offset),
                    w.size(), w.begin());
      }
      const std::vector<double> caps =
          csa_node_caps(model, w, options.charge);
      return bound_pulldown(model, caps, options);
    };
    if (!spec.pdn.empty()) {
      rep.pd1 = bound_one(spec.pdn, spec.discharges, spec.footed, 0);
    }
    if (spec.dual()) {
      rep.pd2 = bound_one(spec.pdn2, spec.discharges2, spec.footed2,
                          spec.pdn.leaf_signals().size());
    }
  });

  CsaResult result;
  result.report.gates = std::move(slots);
  result.report.vdd = options.charge.vdd;
  result.report.margin = options.margin;
  result.report.keeper_strength = options.keeper_strength;
  result.report.max_states = options.max_states;
  for (const CsaGateReport& gate : result.report.gates) {
    result.report.max_droop = std::max(result.report.max_droop, gate.droop());
    if (gate.droop() >= options.margin * options.charge.vdd) {
      ++result.report.gates_over_margin;
    }
    if (gate.keeper_overpowered()) ++result.report.gates_keeper_overpowered;
    if (gate.truncated()) ++result.report.gates_truncated;
  }

  LintOptions lint_options;
  lint_options.waivers = options.waivers;
  const LintRegistry registry = csa_registry(result.report, options);
  result.lint = run_lint(registry, netlist, lint_options, nullptr,
                         FlowStage::kCsa);
  return result;
}

}  // namespace soidom
