/// \file csa.hpp
/// Charge-sharing & PBE-safety static analysis (CSA) of mapped domino
/// netlists.
///
/// For every gate the analyzer builds the same electrical pulldown model
/// the SOI simulator uses (node 0 = dynamic node, node 1 = bottom
/// terminal, nodes 2+ = series junctions in pulldown-tree walk order),
/// assigns each node a capacitance from the charge model and the sizing
/// pass's device widths (docs/DEVICE_MODEL.md), then enumerates the
/// gate's electrical states symbolically: every combination of input
/// values and internal-node precharge states.  Per state it computes the
/// worst-case dynamic-node voltage droop from
///
///   * charge sharing — the precharged dynamic node redistributes onto
///     every connected precharge-low internal node, and
///   * parasitic bipolar injection — every OFF device whose below node
///     is precharged high and not tied to a discharge pMOS may fire
///     (soisim's firing condition, over-approximated).
///
/// The per-gate bound is *conservative by construction*: for every
/// reachable simulator state there is an enumerated state whose
/// conduction graph is a superset, whose shared capacitance is no
/// smaller, and whose firing count is no smaller, so the static droop
/// dominates anything soisim's enable_droop() ever observes (the
/// tests/test_csa.cpp fuzz oracle asserts exactly this).  When the state
/// space exceeds CsaOptions::max_states the analyzer degrades to a
/// pointwise-max fallback that is still conservative (all junctions
/// shared, all eligible devices firing) and flags the gate as truncated.
///
/// Findings are reported through the lint engine as the `csa.*` rule
/// family (docs/LINT.md): `csa.pbe-discharge` (error) when parasitic
/// paths can overpower the keeper, `csa.droop-margin` (warning) when the
/// droop bound crosses the noise margin, `csa.state-explosion` (info)
/// for truncated gates.  Reports render as JSON and SARIF 2.1.0; waivers
/// use the lint engine's `rule@location` syntax.
///
/// Layering: csa sits above lint/sizing/pdn/domino and below core/flow
/// (run_flow drives it as FlowStage::kCsa when FlowOptions::csa is set).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "soidom/domino/netlist.hpp"
#include "soidom/lint/lint.hpp"
#include "soidom/sizing/sizing.hpp"

namespace soidom {

/// Lumped-element charge model (docs/DEVICE_MODEL.md, "Charge model").
/// All capacitances are in units of the gate capacitance of a
/// reference-width nMOS; voltages in volts; charge in cap-units x volts.
struct ChargeModel {
  double vdd = 1.0;             ///< supply voltage
  double c_dyn_fixed = 4.0;     ///< dynamic node: precharge + keeper +
                                ///< inverter input, excl. diffusion
  double c_junction_fixed = 0.2;  ///< wiring floor of an internal junction
  double c_diffusion = 0.5;     ///< source/drain diffusion per unit width
  double q_pbe = 0.25;          ///< charge one firing parasitic device
                                ///< injects (cap-units x volts)
};

/// Electrical node numbering shared with soisim's internal gate model.
inline constexpr std::uint16_t kCsaDynamicNode = 0;
inline constexpr std::uint16_t kCsaBottomNode = 1;

/// One pulldown nMOS between two electrical nodes.
struct CsaDevice {
  std::uint32_t signal = 0;  ///< netlist signal driving the gate terminal
  std::uint16_t above = 0;   ///< node toward the dynamic node
  std::uint16_t below = 0;   ///< node toward ground
};

/// Flattened electrical model of one pulldown network.  Devices appear in
/// Pdn::leaf_signals() order, so sizing's pulldown_widths align by index.
struct CsaPdnModel {
  int num_nodes = 2;  ///< dynamic + bottom + series junctions
  std::vector<CsaDevice> devices;
  std::vector<std::uint16_t> discharged;  ///< nodes with a p-discharge
  bool footed = false;
};

/// Build the electrical model of `pdn`.  Node numbering is identical to
/// soisim's (junctions allocated in series-walk order), so DroopProbe
/// capacitance vectors built from this model line up with the simulator.
/// Requires a non-empty pdn; discharge points must name junctions of it.
CsaPdnModel build_csa_model(const Pdn& pdn,
                            const std::vector<DischargePoint>& discharges,
                            bool footed);

/// Per-node capacitance: fixed part (c_dyn_fixed for node 0,
/// c_junction_fixed otherwise) plus c_diffusion x width for every device
/// terminal on the node.  `device_widths` has one entry per model device.
std::vector<double> csa_node_caps(const CsaPdnModel& model,
                                  const std::vector<double>& device_widths,
                                  const ChargeModel& charge);

/// Analyzer knobs.
struct CsaOptions {
  ChargeModel charge;
  /// Noise margin as a fraction of vdd: a droop bound at or above
  /// margin * vdd raises `csa.droop-margin`.
  double margin = 0.25;
  /// Keeper strength in firing-device units (mirrors SoiSimConfig): a
  /// parasitic-only path discharges the gate only when at least this
  /// many devices fire together.
  int keeper_strength = 1;
  /// State-enumeration ceiling per pulldown; gates needing more states
  /// fall back to the (coarser, still conservative) pointwise-max bound.
  long max_states = 4096;
  /// Worker threads for the per-gate fan-out; 0 = auto, 1 = sequential.
  /// Results are byte-identical across thread counts.
  int num_threads = 1;
  /// Derive device widths with sizing/sizing.hpp (default); otherwise
  /// every device gets unit width.
  bool use_sizing = true;
  SizingOptions sizing;
  /// Lint waivers applied to csa.* findings ("rule" or "rule@substring").
  std::vector<std::string> waivers;
};

/// Conservative bound for one pulldown network.
struct CsaPulldownBound {
  /// Worst-case dynamic-node droop in volts (may exceed vdd when the
  /// injected parasitic charge dominates; vdd at minimum on a possible
  /// parasitic flip).
  double droop = 0.0;
  double share_cap = 0.0;  ///< shared precharge-low capacitance, worst state
  int firings = 0;         ///< injecting devices counted in the worst state
  /// Some enumerated state conducts from the dynamic node to the bottom
  /// terminal through ON or parasitic devices.
  bool ground_reachable = false;
  /// A parasitic-only discharge path can fire >= keeper_strength devices
  /// with ground reachable: the keeper can lose and the gate can flip.
  bool keeper_overpowered = false;
  bool truncated = false;  ///< fallback bound (state space > max_states)
  long states = 0;         ///< states enumerated (0 when truncated)
  /// Witness of the worst state: "in=<bits> pre=<bits>" (inputs over the
  /// pulldown's distinct signals in ascending id order; precharge bits
  /// over free internal nodes in ascending node order).
  std::string worst_state;
};

/// Compute the bound for one pulldown model (exposed for tests and the
/// conservativeness oracle).  `caps` is csa_node_caps() for the model.
CsaPulldownBound bound_pulldown(const CsaPdnModel& model,
                                const std::vector<double>& caps,
                                const CsaOptions& options);

/// The distinct input signals of `model`, ascending — bit i of an
/// enumerated state's "in=" witness refers to csa_state_signals()[i].
std::vector<std::uint32_t> csa_state_signals(const CsaPdnModel& model);

/// The free internal nodes of `model` (>= 2, no discharge pMOS),
/// ascending — bit i of a state's "pre=" witness refers to
/// csa_free_nodes()[i].
std::vector<std::uint16_t> csa_free_nodes(const CsaPdnModel& model);

/// Hooks into the state enumeration, used by the exact proof tier
/// (src/prove) to restrict the bound to reachable input assignments and
/// to pick replayable witness states.  Both hooks are optional.
struct CsaStateCallbacks {
  /// Called once per enumerated input assignment (before its precharge
  /// states are expanded); return false to exclude the assignment — and
  /// every precharge state over it — from the bound.  `inputs[i]` is the
  /// value of csa_state_signals()[i].
  std::function<bool(const std::vector<bool>& inputs)> admit;
  /// Called for every admitted, non-legit-discharge state with its droop
  /// contribution.  `precharge[i]` is the value of csa_free_nodes()[i].
  std::function<void(const std::vector<bool>& inputs,
                     const std::vector<bool>& precharge, double droop,
                     double share_cap, int firings, bool flip)>
      visit;
};

/// bound_pulldown with enumeration hooks.  With empty callbacks this is
/// exactly the plain overload (which forwards here).  The truncation
/// fallback ignores the callbacks — a truncated bound is not refined,
/// only re-derived — and reports itself via CsaPulldownBound::truncated.
CsaPulldownBound bound_pulldown(const CsaPdnModel& model,
                                const std::vector<double>& caps,
                                const CsaOptions& options,
                                const CsaStateCallbacks& callbacks);

/// Per-gate analysis result.
struct CsaGateReport {
  int gate = -1;
  bool dual = false;
  CsaPulldownBound pd1;
  CsaPulldownBound pd2;  ///< dual gates only

  double droop() const { return std::max(pd1.droop, pd2.droop); }
  bool keeper_overpowered() const {
    return pd1.keeper_overpowered || pd2.keeper_overpowered;
  }
  bool truncated() const { return pd1.truncated || pd2.truncated; }
};

/// Machine-readable droop report for the whole netlist.
struct CsaReport {
  std::vector<CsaGateReport> gates;
  // Echoed analysis parameters.
  double vdd = 1.0;
  double margin = 0.25;
  int keeper_strength = 1;
  long max_states = 4096;
  // Aggregates.
  double max_droop = 0.0;
  int gates_over_margin = 0;
  int gates_keeper_overpowered = 0;
  int gates_truncated = 0;

  /// {"vdd":...,"gates":[{"gate":0,"droop":...,...}],...}
  std::string to_json() const;
};

/// Analysis outcome: the droop report plus csa.* findings rendered
/// through the lint engine (text / JSON / SARIF emitters apply).
struct CsaResult {
  CsaReport report;
  LintReport lint;
};

/// Lint registry holding the csa.* rules over `report`.  The registry
/// keeps references: `report` and `options` must outlive any run_lint
/// call using it (run_csa handles this internally; exposed for tests).
LintRegistry csa_registry(const CsaReport& report, const CsaOptions& options);

/// Run the analyzer over a structurally valid netlist.  Thread-compatible
/// (concurrent calls on distinct netlists are safe); checkpoints the
/// installed guard under FlowStage::kCsa.  Deterministic: reports and
/// findings are byte-identical for any num_threads.
CsaResult run_csa(const DominoNetlist& netlist, const CsaOptions& options = {});

}  // namespace soidom
