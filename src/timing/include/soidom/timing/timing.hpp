/// \file timing.hpp
/// Static timing analysis for domino netlists with a floating-body
/// hysteresis model.
///
/// The paper motivates PBE control with a timing side benefit (section I):
/// "In narrowing the range of permissible voltages for the body ... we
/// make the timing behavior of the circuit more predictable."  This module
/// quantifies that claim.  Gate delay uses a library-free linear model in
/// the pulldown's shape (the same abstraction level as the mapper's cost
/// function); each transistor whose body can float (its source is an
/// internal junction that is neither discharged every cycle nor the
/// every-evaluate-grounded stack bottom) contributes a delay UNCERTAINTY
/// band, because a floating body modulates Vt with switching history
/// (hysteretic Vt variation, the paper's reference [21]).
///
/// The report carries min/max arrival times; the difference at the
/// critical output is the circuit's timing hysteresis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soidom/domino/netlist.hpp"

namespace soidom {

/// Library-free linear delay model, in arbitrary delay units.
/// Defaults are typical relative magnitudes for a domino stage; the
/// analysis only ever compares netlists under the SAME model, so units
/// cancel out of every reported ratio.
struct DelayModel {
  double gate_base = 1.0;         ///< precharge device + output inverter
  double per_series = 0.6;        ///< per transistor on the tallest path
  double per_parallel = 0.15;     ///< junction loading per parallel branch
  double per_fanout = 0.25;       ///< output load per driven gate
  double per_discharge = 0.08;    ///< discharge pMOS loading on a junction
  /// Extra worst-case delay per floating-body transistor in the gate's
  /// pulldown (hysteretic Vt variation).
  double body_uncertainty = 0.2;
};

/// Per-gate timing figures.
struct GateTiming {
  double delay_min = 0.0;
  double delay_max = 0.0;
  double arrival_min = 0.0;  ///< earliest-possible settling at gate output
  double arrival_max = 0.0;  ///< worst-case settling
  /// Precharge completion: time from the precharge edge until the dynamic
  /// node is reliably high again.  Precharge is a single pMOS fighting the
  /// junction/discharge loading, so the bound grows with pulldown width and
  /// discharge count but not with stack height, and the floating-body
  /// uncertainty band applies on the max side only.
  double pre_min = 0.0;
  double pre_max = 0.0;
  int floating_body_transistors = 0;
};

struct TimingReport {
  std::vector<GateTiming> gates;
  double critical_min = 0.0;
  double critical_max = 0.0;
  int total_floating_body = 0;
  /// Gate indices on the worst-case critical path, inputs-to-output.
  std::vector<std::uint32_t> critical_path;

  /// Absolute timing-hysteresis band at the critical output.
  double hysteresis() const { return critical_max - critical_min; }
  /// Hysteresis relative to nominal delay (0 = fully predictable).
  double hysteresis_ratio() const {
    return critical_min > 0.0 ? hysteresis() / critical_min : 0.0;
  }

  std::string to_string() const;
};

/// Analyze the netlist under `model`.
TimingReport analyze_timing(const DominoNetlist& netlist,
                            const DelayModel& model = {});

/// Number of transistors in `gate` whose body can float: source terminal
/// is an internal junction with no discharge transistor.  Transistors
/// whose source is the stack bottom (ground or the every-evaluate-grounded
/// foot node) or a discharged junction have pinned bodies.
int floating_body_transistors(const DominoGate& gate);

}  // namespace soidom
