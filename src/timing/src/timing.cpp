#include "soidom/timing/timing.hpp"

#include <algorithm>
#include <sstream>

#include "soidom/base/strings.hpp"

namespace soidom {
namespace {

/// Walks a gate's PDN counting transistors whose below-terminal is an
/// undischarged internal junction.  Mirrors soisim's node construction:
/// junctions exist below every non-bottom child of a series node.
struct FloatingBodyCounter {
  const Pdn& pdn;
  const std::vector<DischargePoint>& discharges;
  int count = 0;

  bool discharged(PdnIndex series_node, std::uint32_t pos) const {
    return std::any_of(discharges.begin(), discharges.end(),
                       [&](const DischargePoint& p) {
                         return !p.at_bottom() &&
                                p.series_node == series_node && p.pos == pos;
                       });
  }

  /// `below_is_junction` true when the subtree's bottom terminal is an
  /// undischarged junction of an enclosing series node.
  void walk(PdnIndex i, bool below_is_floating_junction) {
    const PdnNode& n = pdn.node(i);
    switch (n.kind) {
      case PdnKind::kLeaf:
        if (below_is_floating_junction) ++count;
        break;
      case PdnKind::kParallel:
        for (const PdnIndex c : n.children) {
          walk(c, below_is_floating_junction);
        }
        break;
      case PdnKind::kSeries:
        for (std::size_t k = 0; k < n.children.size(); ++k) {
          const bool bottom_child = k + 1 == n.children.size();
          const bool floating =
              bottom_child
                  ? below_is_floating_junction
                  : !discharged(i, static_cast<std::uint32_t>(k));
          walk(n.children[k], floating);
        }
        break;
    }
  }
};

}  // namespace

int floating_body_transistors(const DominoGate& gate) {
  if (gate.pdn.empty()) return 0;
  FloatingBodyCounter counter{gate.pdn, gate.discharges};
  // The pulldown bottom terminal is ground (footless) or the foot node,
  // which the clocked foot discharges every evaluate: not floating.
  counter.walk(gate.pdn.root(), /*below_is_floating_junction=*/false);
  int total = counter.count;
  if (gate.dual()) {
    FloatingBodyCounter second{gate.pdn2, gate.discharges2};
    second.walk(gate.pdn2.root(), false);
    total += second.count;
  }
  return total;
}

TimingReport analyze_timing(const DominoNetlist& netlist,
                            const DelayModel& model) {
  TimingReport report;
  report.gates.resize(netlist.gates().size());

  // Fanout counts: gates driving more gates switch slower.
  std::vector<int> fanout(netlist.gates().size(), 0);
  for (const DominoGate& gate : netlist.gates()) {
    for (const std::uint32_t sig : gate.all_leaf_signals()) {
      if (!netlist.is_input_signal(sig)) {
        ++fanout[netlist.gate_of_signal(sig)];
      }
    }
  }
  for (const DominoOutput& o : netlist.outputs()) {
    if (o.constant < 0 && !netlist.is_input_signal(o.signal)) {
      ++fanout[netlist.gate_of_signal(o.signal)];
    }
  }

  std::vector<int> best_fanin(netlist.gates().size(), -1);
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    const DominoGate& gate = netlist.gates()[g];
    GateTiming& t = report.gates[g];

    t.floating_body_transistors = floating_body_transistors(gate);
    // Dual gates: the slower pulldown dominates; the static NAND is folded
    // into gate_base-level constants.
    const int height = gate.dual()
                           ? std::max(gate.pdn.height(), gate.pdn2.height())
                           : gate.pdn.height();
    const int width = gate.dual()
                          ? std::max(gate.pdn.width(), gate.pdn2.width())
                          : gate.pdn.width();
    const double nominal =
        model.gate_base + model.per_series * height +
        model.per_parallel * width +
        model.per_fanout * fanout[g] +
        model.per_discharge * static_cast<double>(gate.discharges.size());
    t.delay_min = nominal;
    t.delay_max =
        nominal + model.body_uncertainty * t.floating_body_transistors;

    const double pre_nominal =
        model.gate_base + model.per_parallel * width +
        model.per_fanout * fanout[g] +
        model.per_discharge *
            static_cast<double>(gate.discharges.size() +
                                gate.discharges2.size());
    t.pre_min = pre_nominal;
    t.pre_max =
        pre_nominal + model.body_uncertainty * t.floating_body_transistors;

    double in_min = 0.0;
    double in_max = 0.0;
    for (const std::uint32_t sig : gate.all_leaf_signals()) {
      if (netlist.is_input_signal(sig)) continue;
      const std::uint32_t fg = netlist.gate_of_signal(sig);
      if (report.gates[fg].arrival_max > in_max) {
        in_max = report.gates[fg].arrival_max;
        best_fanin[g] = static_cast<int>(fg);
      }
      in_min = std::max(in_min, report.gates[fg].arrival_min);
    }
    t.arrival_min = in_min + t.delay_min;
    t.arrival_max = in_max + t.delay_max;
    report.total_floating_body += t.floating_body_transistors;
  }

  int critical_gate = -1;
  for (const DominoOutput& o : netlist.outputs()) {
    if (o.constant >= 0 || netlist.is_input_signal(o.signal)) continue;
    const std::uint32_t g = netlist.gate_of_signal(o.signal);
    if (report.gates[g].arrival_max > report.critical_max) {
      report.critical_max = report.gates[g].arrival_max;
      critical_gate = static_cast<int>(g);
    }
    report.critical_min =
        std::max(report.critical_min, report.gates[g].arrival_min);
  }

  for (int g = critical_gate; g >= 0; g = best_fanin[static_cast<std::size_t>(g)]) {
    report.critical_path.push_back(static_cast<std::uint32_t>(g));
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

std::string TimingReport::to_string() const {
  std::ostringstream os;
  os << format("critical delay: %.2f (nominal) .. %.2f (worst body state)\n",
               critical_min, critical_max);
  os << format("timing hysteresis: %.2f (%.1f%% of nominal)\n", hysteresis(),
               100.0 * hysteresis_ratio());
  os << format("floating-body transistors: %d\n", total_floating_body);
  os << "critical path:";
  for (const std::uint32_t g : critical_path) os << " g" << g;
  os << '\n';
  return os.str();
}

}  // namespace soidom
