#include "soidom/domino/netlist.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace soidom {

std::uint32_t DominoNetlist::add_input(InputLiteral literal) {
  // The signal encoding (inputs first, then gates) requires the input
  // count to be final before the first gate is added.
  SOIDOM_ASSERT_MSG(gates_.empty(),
                    "all inputs must be added before the first gate");
  inputs_.push_back(std::move(literal));
  return static_cast<std::uint32_t>(inputs_.size() - 1);
}

std::uint32_t DominoNetlist::add_gate(DominoGate gate) {
  SOIDOM_ASSERT_MSG(!gate.pdn.empty(), "gate with empty pulldown network");
  gates_.push_back(std::move(gate));
  return signal_of_gate(static_cast<std::uint32_t>(gates_.size() - 1));
}

void DominoNetlist::add_output(DominoOutput output) {
  outputs_.push_back(std::move(output));
}

std::size_t DominoNetlist::num_source_pis() const {
  std::set<int> pis;
  for (const InputLiteral& in : inputs_) pis.insert(in.source_pi);
  return pis.size();
}

std::vector<int> DominoNetlist::gate_levels() const {
  std::vector<int> level(gates_.size(), 1);
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    int lv = 1;
    for (const std::uint32_t sig : gates_[g].all_leaf_signals()) {
      if (!is_input_signal(sig)) {
        lv = std::max(lv, 1 + level[gate_of_signal(sig)]);
      }
    }
    level[g] = lv;
  }
  return level;
}

std::vector<SimWord> DominoNetlist::simulate(
    const std::vector<SimWord>& source_pi_words) const {
  std::vector<SimWord> value(inputs_.size() + gates_.size(), 0);
  for (std::size_t k = 0; k < inputs_.size(); ++k) {
    const InputLiteral& in = inputs_[k];
    SOIDOM_ASSERT(in.source_pi >= 0 &&
                  static_cast<std::size_t>(in.source_pi) <
                      source_pi_words.size());
    const SimWord w = source_pi_words[static_cast<std::size_t>(in.source_pi)];
    value[k] = in.negated ? ~w : w;
  }
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    // Bit-parallel series/parallel evaluation: 64 patterns at once.  A
    // dual gate ORs its two pulldowns (the static NAND of the two
    // active-low dynamic nodes).
    const DominoGate& gate = gates_[g];
    SimWord out = 0;
    for (int bit = 0; bit < 64; ++bit) {
      auto bit_of = [&](std::uint32_t sig) {
        return ((value[sig] >> bit) & 1) != 0;
      };
      bool conducting = gate.pdn.conducts(bit_of);
      if (!conducting && gate.dual()) {
        conducting = gate.pdn2.conducts(bit_of);
      }
      if (conducting) out |= SimWord{1} << bit;
    }
    value[inputs_.size() + g] = out;
  }
  std::vector<SimWord> out;
  out.reserve(outputs_.size());
  for (const DominoOutput& o : outputs_) {
    const SimWord w =
        o.constant >= 0 ? (o.constant ? ~SimWord{0} : 0) : value[o.signal];
    out.push_back(o.inverted ? ~w : w);
  }
  return out;
}

std::string DominoNetlist::dump() const {
  std::ostringstream os;
  for (std::size_t k = 0; k < inputs_.size(); ++k) {
    os << "in " << k << ": " << inputs_[k].name
       << (inputs_[k].negated ? " (neg)" : "") << '\n';
  }
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    const DominoGate& gate = gates_[g];
    os << "gate " << g << " -> sig "
       << signal_of_gate(static_cast<std::uint32_t>(g))
       << (gate.footed ? " footed" : " footless") << " pdn="
       << gate.pdn.to_string();
    if (gate.dual()) {
      os << " pdn2=" << gate.pdn2.to_string()
         << (gate.footed2 ? " footed2" : "");
    }
    os << " disch=" << gate.discharges.size() + gate.discharges2.size()
       << '\n';
  }
  for (const DominoOutput& o : outputs_) {
    os << "out " << o.name << " <- sig " << o.signal
       << (o.inverted ? " (inverted)" : "") << '\n';
  }
  return os.str();
}

}  // namespace soidom
