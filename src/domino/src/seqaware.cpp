#include "soidom/domino/seqaware.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include <memory>

#include "soidom/bdd/bdd.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {
namespace {

/// Per-gate condition computer: BDDs over the gate's distinct input
/// signals for path-conduction predicates.
class GateConditions {
 public:
  GateConditions(const DominoNetlist& netlist, const Pdn& pdn, bool footed)
      : netlist_(netlist), pdn_(pdn), footed_(footed) {
    for (const std::uint32_t sig : pdn.leaf_signals()) {
      if (!var_.contains(sig)) {
        const auto v = static_cast<unsigned>(var_.size());
        var_.emplace(sig, v);
      }
    }
    manager_ = std::make_unique<BddManager>(
        static_cast<unsigned>(var_.size()), /*node_limit=*/1u << 20);
    conduct_.assign(pdn.pool_size(), BddManager::kFalse);
    conduct_lit_.assign(pdn.pool_size(), BddManager::kFalse);
    ctx_.assign(pdn.pool_size(), BddManager::kFalse);
    ext_.assign(pdn.pool_size(), BddManager::kFalse);
    build_conduct(pdn.root());
    ctx_[pdn.root()] = BddManager::kTrue;
    ext_[pdn.root()] = BddManager::kTrue;
    build_context(pdn.root());
  }

  /// Can the PBE at `point` ever be excited?  (See seqaware.hpp.)
  bool excitable(const DischargePoint& point) const {
    if (point.at_bottom()) {
      // The pulldown bottom can only float high during precharge of a
      // footed gate, charged through primary-input literals (outputs of
      // other domino gates are low in precharge).
      return footed_ && conduct_lit_[pdn_.root()] != BddManager::kFalse;
    }
    const PdnNode& s = pdn_.node(point.series_node);
    SOIDOM_ASSERT(s.kind == PdnKind::kSeries &&
                  point.pos + 1 < s.children.size());
    auto conj = [&](std::size_t from, std::size_t to) {
      auto acc = BddManager::kTrue;
      for (std::size_t k = from; k < to; ++k) {
        acc = manager_->apply_and(acc, conduct_[s.children[k]]);
      }
      return acc;
    };
    // CHARGE: a conducting path from the dynamic node down to the junction.
    const auto charge = manager_->apply_and(ctx_[point.series_node],
                                            conj(0, point.pos + 1));
    if (charge == BddManager::kFalse) return false;
    // FIRE: the junction is pulled to the bottom while no path from the
    // dynamic node reaches it (otherwise the evaluation is legitimate).
    const auto below = manager_->apply_and(
        conj(point.pos + 1, s.children.size()), ext_[point.series_node]);
    const auto fire = manager_->apply_and(below, manager_->negate(charge));
    return fire != BddManager::kFalse;
  }

 private:
  void build_conduct(PdnIndex i) {
    const PdnNode& n = pdn_.node(i);
    switch (n.kind) {
      case PdnKind::kLeaf: {
        const auto v = var_.at(n.signal);
        conduct_[i] = manager_->var(v);
        conduct_lit_[i] = netlist_.is_input_signal(n.signal)
                              ? manager_->var(v)
                              : BddManager::kFalse;
        break;
      }
      case PdnKind::kSeries: {
        auto all = BddManager::kTrue;
        auto all_lit = BddManager::kTrue;
        for (const PdnIndex c : n.children) {
          build_conduct(c);
          all = manager_->apply_and(all, conduct_[c]);
          all_lit = manager_->apply_and(all_lit, conduct_lit_[c]);
        }
        conduct_[i] = all;
        conduct_lit_[i] = all_lit;
        break;
      }
      case PdnKind::kParallel: {
        auto any = BddManager::kFalse;
        auto any_lit = BddManager::kFalse;
        for (const PdnIndex c : n.children) {
          build_conduct(c);
          any = manager_->apply_or(any, conduct_[c]);
          any_lit = manager_->apply_or(any_lit, conduct_lit_[c]);
        }
        conduct_[i] = any;
        conduct_lit_[i] = any_lit;
        break;
      }
    }
  }

  /// Computes ctx (conduction from the dynamic node to each node's top)
  /// and ext (conduction from each node's bottom to the pulldown bottom).
  void build_context(PdnIndex i) {
    const PdnNode& n = pdn_.node(i);
    if (n.kind == PdnKind::kLeaf) return;
    if (n.kind == PdnKind::kParallel) {
      for (const PdnIndex c : n.children) {
        ctx_[c] = ctx_[i];
        ext_[c] = ext_[i];
        build_context(c);
      }
      return;
    }
    // Series: child k's top is reached through children [0, k); its bottom
    // exits through children (k, end) and then the series node's own exit.
    auto prefix = ctx_[i];
    for (std::size_t k = 0; k < n.children.size(); ++k) {
      ctx_[n.children[k]] = prefix;
      prefix = manager_->apply_and(prefix, conduct_[n.children[k]]);
    }
    auto suffix = ext_[i];
    for (std::size_t k = n.children.size(); k-- > 0;) {
      ext_[n.children[k]] = suffix;
      suffix = manager_->apply_and(suffix, conduct_[n.children[k]]);
    }
    for (const PdnIndex c : n.children) build_context(c);
  }

  const DominoNetlist& netlist_;
  const Pdn& pdn_;
  bool footed_;
  std::unordered_map<std::uint32_t, unsigned> var_;
  std::unique_ptr<BddManager> manager_;
  std::vector<BddManager::Ref> conduct_;      ///< subtree conducts
  std::vector<BddManager::Ref> conduct_lit_;  ///< ... via literal leaves only
  std::vector<BddManager::Ref> ctx_;
  std::vector<BddManager::Ref> ext_;
};

}  // namespace

bool discharge_point_excitable(const DominoNetlist& netlist, const Pdn& pdn,
                               bool footed, const DischargePoint& point) {
  return GateConditions(netlist, pdn, footed).excitable(point);
}

SeqAwareStats prune_unexcitable_discharges(DominoNetlist& netlist) {
  StageScope stage(FlowStage::kSeqAware);
  SOIDOM_FAULT_PROBE(FlowStage::kSeqAware);
  SeqAwareStats stats;
  auto prune_pdn = [&](const Pdn& pdn, bool footed,
                       std::vector<DischargePoint>& discharges) {
    stats.points_before += static_cast<int>(discharges.size());
    if (discharges.empty()) return;
    const GateConditions conditions(netlist, pdn, footed);
    const auto removed =
        std::erase_if(discharges, [&](const DischargePoint& point) {
          return !conditions.excitable(point);
        });
    stats.points_pruned += static_cast<int>(removed);
  };
  for (DominoGate& gate : netlist.gates()) {
    guard_checkpoint();
    prune_pdn(gate.pdn, gate.footed, gate.discharges);
    if (gate.dual()) prune_pdn(gate.pdn2, gate.footed2, gate.discharges2);
  }
  return stats;
}

}  // namespace soidom
