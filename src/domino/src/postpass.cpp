#include "soidom/domino/postpass.hpp"

#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"
#include "soidom/pdn/reorder.hpp"

namespace soidom {

bool gate_bottom_grounded(const DominoGate& gate, GroundingPolicy policy) {
  switch (policy) {
    case GroundingPolicy::kAllGrounded: return true;
    case GroundingPolicy::kNoneGrounded: return false;
    case GroundingPolicy::kFootlessGrounded: return !gate.footed;
  }
  return false;
}

int insert_discharges(DominoNetlist& netlist, GroundingPolicy policy,
                      PendingModel model) {
  StageScope stage(FlowStage::kPostPass);
  SOIDOM_FAULT_PROBE(FlowStage::kPostPass);
  int total = 0;
  for (DominoGate& gate : netlist.gates()) {
    guard_checkpoint();
    const bool grounded = gate_bottom_grounded(gate, policy);
    gate.discharges = analyze_pbe(gate.pdn, grounded, model).required;
    total += static_cast<int>(gate.discharges.size());
    if (gate.dual()) {
      // Each pulldown of a complex gate has its own bottom terminal; the
      // second is grounded under the same policy (per-pdn footedness).
      const bool grounded2 = policy == GroundingPolicy::kAllGrounded ||
                             (policy == GroundingPolicy::kFootlessGrounded &&
                              !gate.footed2);
      gate.discharges2 = analyze_pbe(gate.pdn2, grounded2, model).required;
      total += static_cast<int>(gate.discharges2.size());
    } else {
      gate.discharges2.clear();
    }
  }
  return total;
}

int rearrange_stacks(DominoNetlist& netlist, GroundingPolicy policy,
                     PendingModel model, bool recursive_reorder) {
  StageScope stage(FlowStage::kPostPass);
  for (DominoGate& gate : netlist.gates()) {
    guard_checkpoint();
    reorder_series_stacks(gate.pdn, model, recursive_reorder);
    if (gate.dual()) {
      reorder_series_stacks(gate.pdn2, model, recursive_reorder);
    }
  }
  return insert_discharges(netlist, policy, model);
}

}  // namespace soidom
