#include "soidom/domino/verify.hpp"

#include <algorithm>
#include <sstream>

#include "soidom/base/strings.hpp"
#include "soidom/domino/postpass.hpp"
#include "soidom/domino/seqaware.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"
#include "soidom/sim/sim.hpp"

namespace soidom {

std::string VerifyReport::to_string() const {
  if (ok()) return "OK";
  std::ostringstream os;
  for (const std::string& p : problems) os << p << '\n';
  return os.str();
}

VerifyReport verify_structure(const DominoNetlist& netlist,
                              GroundingPolicy policy, PendingModel model,
                              bool allow_unexcitable_unprotected) {
  StageScope stage(FlowStage::kVerifyStructure);
  SOIDOM_FAULT_PROBE(FlowStage::kVerifyStructure);
  VerifyReport report;
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    guard_checkpoint();
    const DominoGate& gate = netlist.gates()[g];
    if (gate.pdn.empty()) {
      report.problems.push_back(format("gate %zu: empty pulldown", g));
      continue;
    }

    // Both pulldowns of a dual gate are checked with the same rules; the
    // helper runs once for classic gates.
    auto check_pdn = [&](const Pdn& pdn, bool footed_flag,
                         const std::vector<DischargePoint>& discharges,
                         bool grounded, const char* tag) {
      bool has_input_leaf = false;
      for (const std::uint32_t sig : pdn.leaf_signals()) {
        if (netlist.is_input_signal(sig)) {
          has_input_leaf = true;
        } else if (netlist.gate_of_signal(sig) >= g) {
          report.problems.push_back(
              format("gate %zu%s: references gate %u (not earlier): netlist "
                     "is not topologically ordered",
                     g, tag, netlist.gate_of_signal(sig)));
        }
      }
      if (footed_flag != has_input_leaf) {
        report.problems.push_back(
            format("gate %zu%s: footed=%d but has_input_leaf=%d", g, tag,
                   static_cast<int>(footed_flag),
                   static_cast<int>(has_input_leaf)));
      }

      // Discharge points must refer to real junctions of this PDN.
      for (const DischargePoint& p : discharges) {
        if (p.at_bottom()) continue;
        if (p.series_node >= pdn.pool_size()) {
          report.problems.push_back(
              format("gate %zu%s: discharge at nonexistent node %u", g, tag,
                     p.series_node));
          continue;
        }
        const PdnNode& n = pdn.node(p.series_node);
        const bool valid_junction =
            n.kind == PdnKind::kSeries && p.pos + 1 < n.children.size();
        if (!valid_junction) {
          report.problems.push_back(format(
              "gate %zu%s: discharge at invalid junction (s=%u,p=%u)", g, tag,
              p.series_node, p.pos));
        }
      }

      // PBE protection.
      const PbeAnalysis analysis = analyze_pbe(pdn, grounded, model);
      for (const DischargePoint& p : analysis.required) {
        const bool protected_point =
            std::find(discharges.begin(), discharges.end(), p) !=
            discharges.end();
        if (protected_point) continue;
        if (allow_unexcitable_unprotected &&
            !discharge_point_excitable(netlist, pdn, footed_flag, p)) {
          continue;  // proven unexcitable: safe without a transistor
        }
        report.problems.push_back(format(
            "gate %zu%s: PBE-required discharge point %s unprotected (pdn=%s)",
            g, tag, to_string(p).c_str(), pdn.to_string().c_str()));
      }
    };
    check_pdn(gate.pdn, gate.footed, gate.discharges,
              gate_bottom_grounded(gate, policy), "");
    if (gate.dual()) {
      const bool grounded2 = policy == GroundingPolicy::kAllGrounded ||
                             (policy == GroundingPolicy::kFootlessGrounded &&
                              !gate.footed2);
      check_pdn(gate.pdn2, gate.footed2, gate.discharges2, grounded2,
                " (pdn2)");
    } else if (!gate.discharges2.empty()) {
      report.problems.push_back(
          format("gate %zu: discharges2 set on a classic gate", g));
    }
  }

  for (const DominoOutput& o : netlist.outputs()) {
    if (o.constant < 0 &&
        o.signal >= netlist.num_inputs() + netlist.gates().size()) {
      report.problems.push_back(
          format("output '%s': dangling signal %u", o.name.c_str(), o.signal));
    }
  }
  return report;
}

VerifyReport verify_function(const DominoNetlist& netlist,
                             const Network& source, int rounds, Rng& rng) {
  StageScope stage(FlowStage::kVerifyFunction);
  SOIDOM_FAULT_PROBE(FlowStage::kVerifyFunction);
  VerifyReport report;
  if (netlist.outputs().size() != source.outputs().size()) {
    report.problems.push_back(
        format("output count mismatch: netlist %zu vs source %zu",
               netlist.outputs().size(), source.outputs().size()));
    return report;
  }
  for (int r = 0; r < rounds; ++r) {
    guard_checkpoint();
    const auto words = random_pi_words(source.pis().size(), rng);
    const auto want = simulate_outputs(source, words);
    const auto got = netlist.simulate(words);
    for (std::size_t j = 0; j < want.size(); ++j) {
      if (want[j] != got[j]) {
        report.problems.push_back(
            format("functional mismatch on output %zu ('%s'), round %d", j,
                   source.outputs()[j].name.c_str(), r));
        return report;  // first mismatch is enough
      }
    }
  }
  return report;
}

}  // namespace soidom
