#include "soidom/domino/exact.hpp"

#include "soidom/base/strings.hpp"
#include "soidom/bdd/equivalence.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {
namespace {

BddManager::Ref pdn_bdd(BddManager& manager, const Pdn& pdn, PdnIndex i,
                        const std::vector<BddManager::Ref>& signal) {
  const PdnNode& n = pdn.node(i);
  switch (n.kind) {
    case PdnKind::kLeaf:
      return signal[n.signal];
    case PdnKind::kSeries: {
      BddManager::Ref acc = BddManager::kTrue;
      for (const PdnIndex c : n.children) {
        acc = manager.apply_and(acc, pdn_bdd(manager, pdn, c, signal));
      }
      return acc;
    }
    case PdnKind::kParallel: {
      BddManager::Ref acc = BddManager::kFalse;
      for (const PdnIndex c : n.children) {
        acc = manager.apply_or(acc, pdn_bdd(manager, pdn, c, signal));
      }
      return acc;
    }
  }
  return BddManager::kFalse;
}

}  // namespace

std::vector<BddManager::Ref> build_output_bdds(BddManager& manager,
                                               const DominoNetlist& netlist,
                                               unsigned num_source_pis) {
  std::vector<BddManager::Ref> value(
      netlist.num_inputs() + netlist.gates().size(), BddManager::kFalse);
  for (std::size_t k = 0; k < netlist.num_inputs(); ++k) {
    const InputLiteral& in = netlist.inputs()[k];
    SOIDOM_REQUIRE(in.source_pi >= 0 &&
                       static_cast<unsigned>(in.source_pi) < num_source_pis,
                   "netlist literal references an out-of-range source PI");
    const auto v = static_cast<unsigned>(in.source_pi);
    value[k] = in.negated ? manager.nvar(v) : manager.var(v);
  }
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    const DominoGate& gate = netlist.gates()[g];
    auto v = pdn_bdd(manager, gate.pdn, gate.pdn.root(), value);
    if (gate.dual()) {
      v = manager.apply_or(
          v, pdn_bdd(manager, gate.pdn2, gate.pdn2.root(), value));
    }
    value[netlist.num_inputs() + g] = v;
  }
  std::vector<BddManager::Ref> out;
  out.reserve(netlist.outputs().size());
  for (const DominoOutput& o : netlist.outputs()) {
    BddManager::Ref r;
    if (o.constant >= 0) {
      r = o.constant ? BddManager::kTrue : BddManager::kFalse;
    } else {
      r = value[o.signal];
    }
    out.push_back(o.inverted ? manager.negate(r) : r);
  }
  return out;
}

std::optional<bool> equivalent_exact(const DominoNetlist& netlist,
                                     const Network& source,
                                     std::size_t node_limit) {
  SOIDOM_REQUIRE(netlist.outputs().size() == source.outputs().size(),
                 "equivalent_exact: output count mismatch");
  StageScope stage(FlowStage::kExact);
  SOIDOM_FAULT_PROBE(FlowStage::kExact);
  try {
    BddManager manager(static_cast<unsigned>(source.pis().size()), node_limit);
    return build_output_bdds(manager, source) ==
           build_output_bdds(manager, netlist,
                             static_cast<unsigned>(source.pis().size()));
  } catch (const GuardError& e) {
    // Only a blow-up is a fallback-to-simulation outcome; cancellation,
    // deadline, and budget trips must keep propagating.
    if (e.code() == ErrorCode::kBddNodeLimit) return std::nullopt;
    throw;
  }
}

}  // namespace soidom
