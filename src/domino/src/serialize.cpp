#include "soidom/domino/serialize.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "soidom/base/contracts.hpp"
#include "soidom/base/fileio.hpp"
#include "soidom/base/strings.hpp"

namespace soidom {

std::string write_dnl(const DominoNetlist& netlist) {
  std::ostringstream os;
  os << "dnl 1\n";
  os << "# " << netlist.num_inputs() << " inputs, " << netlist.gates().size()
     << " gates, " << netlist.outputs().size() << " outputs\n";
  for (const InputLiteral& in : netlist.inputs()) {
    os << "input " << in.name << ' ' << in.source_pi << ' '
       << (in.negated ? 1 : 0) << '\n';
  }
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    const DominoGate& gate = netlist.gates()[g];
    if (gate.dual()) {
      os << "gate2 " << (gate.footed ? 1 : 0) << ' '
         << (gate.footed2 ? 1 : 0) << ' ' << gate.pdn.to_string() << " | "
         << gate.pdn2.to_string() << '\n';
    } else {
      os << "gate " << (gate.footed ? 1 : 0) << ' ' << gate.pdn.to_string()
         << '\n';
    }
    auto emit_disch = [&](const char* head, const Pdn& pdn,
                          const std::vector<DischargePoint>& discharges) {
      const auto junctions = canonical_junctions(pdn);
      for (const DischargePoint& p : discharges) {
        if (p.at_bottom()) {
          os << head << ' ' << g << " bottom\n";
          continue;
        }
        const auto it = std::find(junctions.begin(), junctions.end(), p);
        SOIDOM_ASSERT_MSG(it != junctions.end(),
                          "discharge point is not a junction of its PDN");
        os << head << ' ' << g << " j" << (it - junctions.begin()) << '\n';
      }
    };
    emit_disch("disch", gate.pdn, gate.discharges);
    if (gate.dual()) emit_disch("disch2", gate.pdn2, gate.discharges2);
  }
  for (const DominoOutput& o : netlist.outputs()) {
    os << "output " << o.name << ' ';
    if (o.constant >= 0) {
      os << (o.constant ? "const1" : "const0");
    } else {
      os << o.signal;
    }
    os << ' ' << (o.inverted ? 1 : 0) << '\n';
  }
  return os.str();
}

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw Error(format("DNL parse error at line %d: %s", line, what.c_str()));
}

/// Recursive-descent parser for the Pdn::to_string syntax.
class PdnExprParser {
 public:
  PdnExprParser(std::string_view text, int line, std::uint32_t max_signal)
      : text_(text), line_(line), max_signal_(max_signal) {}

  PdnIndex parse(Pdn& pdn) {
    const PdnIndex root = parse_group(pdn);
    skip_ws();
    if (pos_ != text_.size()) fail(line_, "trailing characters in pdn");
    return root;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  char peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  PdnIndex parse_group(Pdn& pdn) {
    skip_ws();
    if (peek() == '(') {
      ++pos_;
      // A parenthesized list of terms joined uniformly by '.' or '+'.
      std::vector<PdnIndex> terms{parse_group(pdn)};
      char op = '\0';
      skip_ws();
      while (peek() == '.' || peek() == '+') {
        const char c = text_[pos_++];
        if (op == '\0') {
          op = c;
        } else if (op != c) {
          fail(line_, "mixed '.' and '+' inside one group");
        }
        terms.push_back(parse_group(pdn));
        skip_ws();
      }
      if (peek() != ')') fail(line_, "expected ')'");
      ++pos_;
      if (terms.size() == 1) return terms.front();
      return op == '.' ? pdn.add_series(std::move(terms))
                       : pdn.add_parallel(std::move(terms));
    }
    if (peek() == 's') {
      ++pos_;
      std::uint64_t value = 0;
      bool any = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
        ++pos_;
        any = true;
      }
      if (!any) fail(line_, "expected signal number after 's'");
      if (value >= max_signal_) {
        fail(line_, format("signal s%llu out of range (not topological?)",
                           static_cast<unsigned long long>(value)));
      }
      return pdn.add_leaf(static_cast<std::uint32_t>(value));
    }
    fail(line_, format("unexpected character '%c' in pdn", peek()));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_;
  std::uint32_t max_signal_;
};

}  // namespace

DominoNetlist parse_dnl(std::string_view text) {
  DominoNetlist netlist;
  bool saw_header = false;
  int line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_number;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto tokens = split(line);
    if (tokens.empty()) continue;
    const std::string_view head = tokens[0];

    if (head == "dnl") {
      if (tokens.size() != 2 || tokens[1] != "1") {
        fail(line_number, "unsupported dnl version");
      }
      saw_header = true;
    } else if (!saw_header) {
      fail(line_number, "missing 'dnl 1' header");
    } else if (head == "input") {
      if (tokens.size() != 4) fail(line_number, "malformed input line");
      if (!netlist.gates().empty()) {
        fail(line_number, "inputs must precede gates");
      }
      InputLiteral in;
      in.name = std::string(tokens[1]);
      in.source_pi = std::atoi(std::string(tokens[2]).c_str());
      in.negated = tokens[3] == "1";
      if (in.source_pi < 0) fail(line_number, "invalid source pi");
      netlist.add_input(std::move(in));
    } else if (head == "gate") {
      if (tokens.size() < 3) fail(line_number, "malformed gate line");
      DominoGate gate;
      gate.footed = tokens[1] == "1";
      // The pdn expression is the remainder of the line after the flag
      // (tokens are views into `line`, so pointer arithmetic is exact).
      const auto expr_at =
          static_cast<std::size_t>(tokens[2].data() - line.data());
      const std::string_view expr = line.substr(expr_at);
      const auto max_signal = static_cast<std::uint32_t>(
          netlist.num_inputs() + netlist.gates().size());
      PdnExprParser parser(expr, line_number, max_signal);
      gate.pdn.set_root(parser.parse(gate.pdn));
      netlist.add_gate(std::move(gate));
    } else if (head == "gate2") {
      if (tokens.size() < 4) fail(line_number, "malformed gate2 line");
      DominoGate gate;
      gate.footed = tokens[1] == "1";
      gate.footed2 = tokens[2] == "1";
      const auto expr_at =
          static_cast<std::size_t>(tokens[3].data() - line.data());
      const std::string_view rest = line.substr(expr_at);
      const auto bar = rest.find('|');
      if (bar == std::string_view::npos) {
        fail(line_number, "gate2 needs '<pdn> | <pdn>'");
      }
      const auto max_signal = static_cast<std::uint32_t>(
          netlist.num_inputs() + netlist.gates().size());
      {
        PdnExprParser parser(trim(rest.substr(0, bar)), line_number,
                             max_signal);
        gate.pdn.set_root(parser.parse(gate.pdn));
      }
      {
        PdnExprParser parser(trim(rest.substr(bar + 1)), line_number,
                             max_signal);
        gate.pdn2.set_root(parser.parse(gate.pdn2));
      }
      netlist.add_gate(std::move(gate));
    } else if (head == "disch" || head == "disch2") {
      const bool second = head == "disch2";
      if (tokens.size() < 3) fail(line_number, "malformed disch line");
      const int g = std::atoi(std::string(tokens[1]).c_str());
      if (g < 0 || static_cast<std::size_t>(g) >= netlist.gates().size()) {
        fail(line_number, "disch references unknown gate");
      }
      DominoGate& gate = netlist.gates()[static_cast<std::size_t>(g)];
      if (second && !gate.dual()) {
        fail(line_number, "disch2 on a classic gate");
      }
      DischargePoint p;
      if (tokens[2] == "bottom") {
        // default-constructed point is the bottom marker
      } else {
        if (tokens.size() != 3 || tokens[2].size() < 2 ||
            tokens[2][0] != 'j') {
          fail(line_number, "malformed disch line (expected 'bottom' or jN)");
        }
        const int idx =
            std::atoi(std::string(tokens[2].substr(1)).c_str());
        const auto junctions =
            canonical_junctions(second ? gate.pdn2 : gate.pdn);
        if (idx < 0 || static_cast<std::size_t>(idx) >= junctions.size()) {
          fail(line_number, "disch references an invalid junction");
        }
        p = junctions[static_cast<std::size_t>(idx)];
      }
      (second ? gate.discharges2 : gate.discharges).push_back(p);
    } else if (head == "output") {
      if (tokens.size() != 4) fail(line_number, "malformed output line");
      DominoOutput out;
      out.name = std::string(tokens[1]);
      if (tokens[2] == "const0") {
        out.constant = 0;
      } else if (tokens[2] == "const1") {
        out.constant = 1;
      } else {
        out.signal = static_cast<std::uint32_t>(
            std::atoi(std::string(tokens[2]).c_str()));
        if (out.signal >= netlist.num_inputs() + netlist.gates().size()) {
          fail(line_number, "output references unknown signal");
        }
      }
      out.inverted = tokens[3] == "1";
      netlist.add_output(std::move(out));
    } else {
      fail(line_number, format("unknown directive '%s'",
                               std::string(head).c_str()));
    }
  }
  if (!saw_header) throw Error("DNL parse error: empty input");
  return netlist;
}

void write_dnl_file(const DominoNetlist& netlist, const std::string& path) {
  // Atomic (temp + fsync + rename): readers never observe a torn file.
  write_file_atomic(path, write_dnl(netlist));
}

DominoNetlist parse_dnl_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error(format("cannot open DNL file '%s'", path.c_str()));
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_dnl(ss.str());
}

}  // namespace soidom
