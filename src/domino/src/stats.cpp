#include "soidom/domino/stats.hpp"

#include <algorithm>

namespace soidom {

DominoStats compute_stats(const DominoNetlist& netlist) {
  DominoStats s;
  s.num_gates = static_cast<int>(netlist.gates().size());
  for (const DominoGate& g : netlist.gates()) {
    s.t_logic += g.logic_transistors();
    s.t_disch += static_cast<int>(g.discharges.size() + g.discharges2.size());
    s.t_clock += g.clock_transistors();
  }
  s.t_total = s.t_logic + s.t_disch;
  const auto levels = netlist.gate_levels();
  for (const DominoOutput& o : netlist.outputs()) {
    if (o.constant < 0 && !netlist.is_input_signal(o.signal)) {
      s.levels = std::max(s.levels,
                          levels[netlist.gate_of_signal(o.signal)]);
    }
  }
  return s;
}

}  // namespace soidom
