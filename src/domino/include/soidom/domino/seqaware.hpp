/// \file seqaware.hpp
/// Sequence-aware discharge pruning — the paper's section VII future-work
/// item, implemented: "breakdown will only occur for a particular sequence
/// of input logic values.  We have not taken this into account in our
/// algorithm, and incorporating this information could lead to better
/// solutions."
///
/// A discharge point J (a junction inside a gate's pulldown) can excite
/// the PBE only if BOTH of these gate-input conditions are satisfiable:
///
///   CHARGE(J): some input assignment conducts a path from the (high)
///              dynamic node down to J — otherwise J can never float high;
///   FIRE(J):   some assignment conducts a path from J to the pulldown
///              bottom while NO path from the dynamic node to J conducts —
///              otherwise J is only ever pulled low in evaluations where
///              the gate legitimately discharges anyway.
///
/// Both conditions are evaluated exactly with BDDs over the gate's input
/// signals.  Treating the gate inputs as independent variables
/// over-approximates reachability (correlated inputs can only remove
/// assignments), so pruning only points with an UNSATISFIABLE condition is
/// sound: every pruned point is unexcitable no matter what drives the
/// gate.
#pragma once

#include "soidom/domino/netlist.hpp"

namespace soidom {

struct SeqAwareStats {
  int points_before = 0;
  int points_pruned = 0;
  int points_after() const { return points_before - points_pruned; }
};

/// Removes discharge transistors whose PBE-exciting condition is
/// unsatisfiable.  Call after discharges are in place (any flow variant).
SeqAwareStats prune_unexcitable_discharges(DominoNetlist& netlist);

/// Point query: can `point` inside the given pulldown ever be excited?
/// `footed` is the pulldown's own foot flag (for dual gates pass the
/// matching pdn/footed pair).  Used by verify_structure to accept
/// netlists whose unexcitable points were pruned.  (Builds the pulldown's
/// conditions per call; fine for occasional verification, use
/// prune_unexcitable_discharges for bulk work.)
bool discharge_point_excitable(const DominoNetlist& netlist, const Pdn& pdn,
                               bool footed, const DischargePoint& point);

}  // namespace soidom
