/// \file netlist.hpp
/// Transistor-level domino netlists: the mapper's output representation.
///
/// A DominoNetlist is an ordered list of domino gates.  Each gate owns a
/// pulldown-network tree (pdn/pdn.hpp) whose leaf signals reference either
/// netlist inputs (unate PI literals) or outputs of earlier gates; gate
/// order is therefore topological by construction.
///
/// Per-gate fixed transistors (paper, section IV):
///   precharge pMOS + 2 output-inverter transistors + keeper  = 4
///   n-clock foot transistor when the pulldown contains any leaf driven by
///   a primary input (footed domino)                          = +1
/// Discharge pMOS transistors attach to PBE discharge points and are
/// tracked separately so the paper's T_logic / T_disch split is exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soidom/pdn/analyze.hpp"
#include "soidom/pdn/pdn.hpp"
#include "soidom/sim/sim.hpp"

namespace soidom {

/// Fixed per-gate transistor overhead beyond the pulldown network.
inline constexpr int kGateOverheadFootless = 4;  ///< precharge+inverter(2)+keeper
inline constexpr int kGateOverheadFooted = 5;    ///< ... plus n-clock foot
/// Dual-pulldown (complex domino, paper's solution 7) overhead: two
/// precharge pMOS + static NAND2 (4) + two keepers; feet are extra.
inline constexpr int kGateOverheadDual = 8;

/// How the bottom terminal of a gate's pulldown network is treated by the
/// PBE analysis (DESIGN.md section 2, clarification 3).
enum class GroundingPolicy : std::uint8_t {
  kFootlessGrounded,  ///< footless gates grounded, footed gates not (default)
  kAllGrounded,       ///< optimistic: every gate bottom counts as grounded
  kNoneGrounded,      ///< pessimistic: no gate bottom counts as grounded
};

/// One mapped domino gate.
///
/// A classic gate has one pulldown (`pdn`) and an output inverter.  A
/// *complex* gate (the paper's solution 7, section III-C) has a second
/// pulldown (`pdn2` non-empty) and a static NAND2 in place of the
/// inverter: each pulldown precharges its own dynamic node, and
/// NAND(dynA, dynB) = fA OR fB — a wide OR realized without a wide
/// parallel stack, with each stack bottom separately grounded.
struct DominoGate {
  Pdn pdn;
  Pdn pdn2;  ///< empty for classic gates
  bool footed = false;   ///< pdn contains primary-input literals
  bool footed2 = false;  ///< pdn2 contains primary-input literals
  /// Clock-driven pMOS discharge transistors protecting PBE points.
  std::vector<DischargePoint> discharges;
  std::vector<DischargePoint> discharges2;  ///< points inside pdn2

  bool dual() const { return !pdn2.empty(); }

  /// Pulldowns + fixed overhead; excludes discharge transistors.
  int logic_transistors() const {
    if (dual()) {
      return pdn.transistor_count() + pdn2.transistor_count() +
             kGateOverheadDual + (footed ? 1 : 0) + (footed2 ? 1 : 0);
    }
    return pdn.transistor_count() +
           (footed ? kGateOverheadFooted : kGateOverheadFootless);
  }
  /// Transistors on the clock network: precharges, feet, discharges.
  int clock_transistors() const {
    const int precharges = dual() ? 2 : 1;
    return precharges + (footed ? 1 : 0) + (dual() && footed2 ? 1 : 0) +
           static_cast<int>(discharges.size() + discharges2.size());
  }
  /// All input signals, both pulldowns.
  std::vector<std::uint32_t> all_leaf_signals() const {
    std::vector<std::uint32_t> out = pdn.leaf_signals();
    if (dual()) {
      const auto second = pdn2.leaf_signals();
      out.insert(out.end(), second.begin(), second.end());
    }
    return out;
  }
};

/// A netlist input: one phase of an original primary input.
struct InputLiteral {
  std::string name;
  int source_pi = -1;    ///< index of the original primary input
  bool negated = false;  ///< true for the complemented phase
};

/// A netlist output.
struct DominoOutput {
  std::uint32_t signal = 0;  ///< see DominoNetlist signal encoding
  std::string name;
  bool inverted = false;  ///< PO phase assignment from unate conversion
  /// -1 for a driven output; 0/1 when the output is a tied constant (the
  /// `signal` field is then ignored).
  int constant = -1;
};

/// Signal encoding: values [0, num_inputs()) are input literals; value
/// num_inputs()+g is the output of gate g.
class DominoNetlist {
 public:
  // --- construction (used by the mapper) ---------------------------------
  std::uint32_t add_input(InputLiteral literal);
  /// Returns the gate's output signal id.
  std::uint32_t add_gate(DominoGate gate);
  void add_output(DominoOutput output);

  // --- structure ----------------------------------------------------------
  std::size_t num_inputs() const { return inputs_.size(); }
  const std::vector<InputLiteral>& inputs() const { return inputs_; }
  const std::vector<DominoGate>& gates() const { return gates_; }
  std::vector<DominoGate>& gates() { return gates_; }
  const std::vector<DominoOutput>& outputs() const { return outputs_; }

  bool is_input_signal(std::uint32_t signal) const {
    return signal < inputs_.size();
  }
  std::uint32_t gate_of_signal(std::uint32_t signal) const {
    SOIDOM_ASSERT(!is_input_signal(signal));
    return signal - static_cast<std::uint32_t>(inputs_.size());
  }
  std::uint32_t signal_of_gate(std::uint32_t gate) const {
    return static_cast<std::uint32_t>(inputs_.size()) + gate;
  }

  /// Number of distinct original primary inputs referenced.
  std::size_t num_source_pis() const;

  /// Gate level (1 = fed only by inputs).  Size = gates().size().
  std::vector<int> gate_levels() const;

  /// 64-way bit-parallel evaluation from ORIGINAL primary-input words
  /// (literal phases and PO inversions applied internally), directly
  /// comparable with simulate_outputs() on the source network.
  std::vector<SimWord> simulate(const std::vector<SimWord>& source_pi_words) const;

  /// Human-readable dump.
  std::string dump() const;

 private:
  std::vector<InputLiteral> inputs_;
  std::vector<DominoGate> gates_;
  std::vector<DominoOutput> outputs_;
};

}  // namespace soidom
