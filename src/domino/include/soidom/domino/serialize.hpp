/// \file serialize.hpp
/// A plain-text netlist interchange format (".dnl") so mapped domino
/// netlists can be saved by one tool invocation and analyzed by another
/// (timing, power, simulation, export) without re-running the mapper.
///
/// Format (line oriented, '#' comments):
///
///   dnl 1
///   input <name> <source_pi> <0|1 negated>
///   gate <footed 0|1> <pdn expression>
///   disch <gate> bottom
///   disch <gate> <series_node> <pos>
///   output <name> <signal|const0|const1> <0|1 inverted>
///
/// The pdn expression uses the same syntax Pdn::to_string prints:
/// 's<signal>' leaves, '.' series, '+' parallel, parentheses — so dumps
/// are directly reusable.  Signals use the netlist encoding (inputs then
/// gates, in file order).
#pragma once

#include <string>

#include "soidom/domino/netlist.hpp"

namespace soidom {

/// Serialize to .dnl text.
std::string write_dnl(const DominoNetlist& netlist);

/// Parse .dnl text; throws soidom::Error with a line number on malformed
/// input (including non-topological gate references).
DominoNetlist parse_dnl(std::string_view text);

/// File variants.
void write_dnl_file(const DominoNetlist& netlist, const std::string& path);
DominoNetlist parse_dnl_file(const std::string& path);

}  // namespace soidom
