/// \file stats.hpp
/// The cost columns reported in the paper's tables.
#pragma once

#include "soidom/domino/netlist.hpp"

namespace soidom {

/// Transistor and depth statistics of a mapped netlist, matching the
/// paper's table columns.
struct DominoStats {
  int t_logic = 0;   ///< domino transistors: pulldowns + per-gate overhead
  int t_disch = 0;   ///< pMOS discharge transistors
  int t_total = 0;   ///< t_logic + t_disch
  int num_gates = 0; ///< #G
  int t_clock = 0;   ///< clock-connected: precharge + feet + discharges
  int levels = 0;    ///< L: max domino-gate depth input->output
};

DominoStats compute_stats(const DominoNetlist& netlist);

}  // namespace soidom
