/// \file verify.hpp
/// Structural and functional verification of mapped domino netlists.
#pragma once

#include <string>

#include "soidom/domino/netlist.hpp"
#include "soidom/network/network.hpp"

namespace soidom {

/// Outcome of a verification run; `ok()` is true when `problems` is empty.
struct VerifyReport {
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
  std::string to_string() const;
};

/// Structural checks:
///  * leaf signals reference only inputs or earlier gates (topological);
///  * footedness matches pulldown contents (footed iff some leaf is an
///    input literal);
///  * every PBE-required discharge point carries a discharge transistor
///    (with `allow_unexcitable_unprotected`, an unprotected point is also
///    accepted when sequence-aware analysis proves it unexcitable);
///  * discharge points refer to existing junctions.
VerifyReport verify_structure(const DominoNetlist& netlist,
                              GroundingPolicy policy,
                              PendingModel model = PendingModel::kCoherent,
                              bool allow_unexcitable_unprotected = false);

/// Random-simulation equivalence against the ORIGINAL (pre-unate) network.
/// `rounds` words of 64 patterns.
VerifyReport verify_function(const DominoNetlist& netlist,
                             const Network& source, int rounds, Rng& rng);

}  // namespace soidom
