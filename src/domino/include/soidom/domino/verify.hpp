/// \file verify.hpp
/// Structural and functional verification of mapped domino netlists.
///
/// verify_structure is a thin compatibility shim over the lint engine
/// (lint/lint.hpp): it runs the historical subset of the rule catalogue
/// and flattens error-severity findings back into strings.  New code
/// should call run_lint directly for structured findings, severities and
/// SARIF output.  Both functions are defined in the lint module.
#pragma once

#include <string>

#include "soidom/domino/netlist.hpp"
#include "soidom/network/network.hpp"

namespace soidom {

/// Outcome of a verification run; `ok()` is true when `problems` is empty.
struct VerifyReport {
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
  std::string to_string() const;
};

/// Structural checks (the historical contract — the lint engine's
/// topo-order / dangling-ref / empty-gate / footedness / pbe-protection
/// rules):
///  * leaf signals reference only inputs or earlier gates (topological);
///  * footedness matches pulldown contents (footed iff some leaf is an
///    input literal);
///  * every PBE-required discharge point carries a discharge transistor
///    (with `allow_unexcitable_unprotected`, an unprotected point is also
///    accepted when sequence-aware analysis proves it unexcitable);
///  * discharge points refer to existing junctions.
VerifyReport verify_structure(const DominoNetlist& netlist,
                              GroundingPolicy policy,
                              PendingModel model = PendingModel::kCoherent,
                              bool allow_unexcitable_unprotected = false);

/// Random-simulation equivalence against the ORIGINAL (pre-unate) network.
/// `rounds` words of 64 patterns.
VerifyReport verify_function(const DominoNetlist& netlist,
                             const Network& source, int rounds, Rng& rng);

}  // namespace soidom
