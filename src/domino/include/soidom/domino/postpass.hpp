/// \file postpass.hpp
/// Netlist-level post-processing passes.
///
///  * insert_discharges — the bulk-CMOS flow's patch-up step: run the PBE
///    analyzer on every gate and attach the required discharge pMOS
///    transistors (paper: "p-discharge transistors are added in a
///    post-processing step", section VI).
///  * rearrange_stacks — the RS_Map variant: first reorder every series
///    stack to push dischargeable structure toward ground, then insert the
///    (now fewer) required discharge transistors (section VI-A).
#pragma once

#include "soidom/domino/netlist.hpp"

namespace soidom {

/// Whether a gate's pulldown bottom counts as grounded under `policy`.
bool gate_bottom_grounded(const DominoGate& gate, GroundingPolicy policy);

/// Replaces every gate's discharge set with the analyzer's requirement.
/// Returns the total number of discharge transistors inserted.  The
/// default policy mirrors MapperOptions::grounding (see options.hpp for
/// why kAllGrounded is the paper-faithful choice).
int insert_discharges(DominoNetlist& netlist,
                      GroundingPolicy policy = GroundingPolicy::kAllGrounded,
                      PendingModel model = PendingModel::kCoherent);

/// Reorders series stacks in every gate, then re-inserts discharges.
/// Returns the number of discharge transistors after the pass.
/// `recursive_reorder` false (default) touches only each gate's top-level
/// stack — our reading of the paper's RS_Map; true is the strongest
/// reordering this IR admits (ablation).
int rearrange_stacks(DominoNetlist& netlist,
                     GroundingPolicy policy = GroundingPolicy::kAllGrounded,
                     PendingModel model = PendingModel::kCoherent,
                     bool recursive_reorder = false);

}  // namespace soidom
