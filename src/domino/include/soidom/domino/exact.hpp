/// \file exact.hpp
/// Exact (BDD-based) equivalence of a mapped domino netlist against its
/// source network.
#pragma once

#include <optional>

#include "soidom/bdd/bdd.hpp"
#include "soidom/domino/netlist.hpp"
#include "soidom/network/network.hpp"

namespace soidom {

/// BDDs of every netlist output over the SOURCE primary inputs (literal
/// phases and PO inversions applied).
std::vector<BddManager::Ref> build_output_bdds(BddManager& manager,
                                               const DominoNetlist& netlist,
                                               unsigned num_source_pis);

/// Exact equivalence of a mapped netlist against its source network.
/// std::nullopt when the node limit was exceeded (fall back to sim).
std::optional<bool> equivalent_exact(const DominoNetlist& netlist,
                                     const Network& source,
                                     std::size_t node_limit = 1u << 22);

}  // namespace soidom
