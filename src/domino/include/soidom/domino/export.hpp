/// \file export.hpp
/// Exporters for mapped domino netlists:
///  * SPICE: a flat transistor-level .sp deck (one subcircuit per domino
///    gate: precharge pMOS, keeper, output inverter, optional n-clock foot,
///    the series/parallel nMOS pulldown, and clock-driven pMOS discharge
///    transistors on every protected junction) — the handoff format a
///    downstream sizing / characterization flow would consume (the paper's
///    "followup technology-specific optimization step", section VII);
///  * structural Verilog: a gate-accurate behavioural view for logic-level
///    integration (each domino gate as an AND/OR expression assign).
#pragma once

#include <string>

#include "soidom/domino/netlist.hpp"

namespace soidom {

/// SPICE device model names used by the exporter.
struct SpiceModels {
  std::string nmos = "nch_soi";
  std::string pmos = "pch_soi";
};

/// Optional per-device widths (in units of `unit_width`), as produced by
/// sizing/sizing.hpp.  `pulldown_widths[g]` follows gate g's
/// Pdn::leaf_signals() order; `inverter_widths[g]` drives the output
/// inverter (pMOS gets 2x).  Empty vectors fall back to default widths.
struct SpiceSizing {
  std::vector<std::vector<double>> pulldown_widths;
  std::vector<double> inverter_widths;
  double unit_width_um = 0.5;
};

/// Full .sp deck with one SUBCKT per gate and a top-level instantiation.
std::string export_spice(const DominoNetlist& netlist,
                         const std::string& design_name,
                         const SpiceModels& models = {},
                         const SpiceSizing* sizing = nullptr);

/// Structural Verilog module (combinational view of the evaluate phase).
std::string export_verilog(const DominoNetlist& netlist,
                           const std::string& module_name);

}  // namespace soidom
