#include "soidom/mapper/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <tuple>

#include "soidom/base/contracts.hpp"
#include "soidom/base/parallel.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/domino/postpass.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {
namespace {

/// A schedule-independent reference to one DP candidate: the unate node
/// that owns it plus its position in that node's canonical candidate
/// sequence (survivors in (W, H, rank) order, then the gate-leaf tuple;
/// a PI node owns exactly its input-leaf candidate at local 0).
///
/// The total order (level, node, local) over these references reproduces
/// the append order of the old level-synchronous global arena exactly, so
/// every tie-break that used to compare arena indices compares reference
/// keys instead and realizes the identical netlist — without any merge
/// barrier assigning indices.
struct CandRef {
  static constexpr std::uint32_t kNullNode = 0xffffffffu;

  std::uint32_t node = kNullNode;
  std::uint32_t local = 0;

  bool valid() const { return node != kNullNode; }
  friend bool operator==(CandRef, CandRef) = default;
};

/// A DP candidate: one partial pulldown structure.  See mapper.hpp for the
/// field semantics.  Candidates live in per-node survivor sets and
/// reference their construction children by CandRef, so realization can
/// rebuild the exact series/parallel tree the DP priced.
struct Cand {
  enum class Op : std::uint8_t { kInputLeaf, kGateLeaf, kSeries, kParallel };

  Op op = Op::kInputLeaf;
  std::uint8_t w = 1;
  std::uint8_t h = 1;
  bool par_b = false;
  bool has_pi = false;
  std::int16_t level = 0;
  std::uint16_t p_bot = 0;
  std::uint16_t p_above = 0;
  std::uint16_t disch = 0;  ///< discharge transistors committed in this PDN
  std::int64_t committed = 0;
  /// kSeries: a = TOP child, b = BOTTOM child; kParallel: the two branches.
  CandRef a;
  CandRef b;
  /// kInputLeaf: netlist input signal; kGateLeaf: unate node id.
  std::uint32_t leaf = 0;

  int p_total() const { return p_bot + p_above; }
};

/// The DP runs over a *dependency-counting task graph*: a node's tuple set
/// depends only on its two fanins, so nodes are coarsened into
/// fanout-cone chunks, every chunk carries an atomic unresolved-fanin
/// counter, and a chunk is executed the moment its counter hits zero —
/// there is no barrier between topological levels (ThreadPool::run_graph,
/// a work-stealing scheduler).  Each node's surviving candidates are
/// written into its own slot; because candidate cross-references are
/// schedule-independent CandRef keys, the result is bit-identical for
/// every thread count, grain size, and stealing schedule — including the
/// inline serial path taken below MapperOptions::serial_cutoff.
class MapperImpl {
 public:
  MapperImpl(const UnateResult& unate, const MapperOptions& opts)
      : unate_(unate), net_(unate.net), opts_(opts) {
    SOIDOM_REQUIRE(net_.is_unate(),
                   "mapper input must be a unate (inverter-free) network");
    validate(opts_);
    clock_cost_ = static_cast<std::int64_t>(
        std::llround(opts_.clock_weight * kCostUnitsPerTransistor));
    soi_ = opts_.engine == MappingEngine::kSoiDominoMap;
    disch_price_ = soi_ ? clock_cost_ : 0;
    // Shape-grid extent: OVERSIZE parallels (W up to 2*Wmax) are retained
    // as complex-gate split fodder when enabled.
    grid_wmax_ = opts_.enable_complex_gates ? 2 * opts_.max_width
                                            : opts_.max_width;
    grid_hmax_ = opts_.max_height;
  }

  void run_dp() {
    if (dp_done_) return;
    dp_done_ = true;
    guard_ = current_guard();
    fanout_ = net_.fanout_counts();
    level_ = net_.levels();
    survivors_.resize(net_.size());
    gate_leaf_.resize(net_.size());
    pi_leaf_.resize(net_.size());
    gate_best_local_.assign(net_.size(), -1);
    gate_complex_a_.assign(net_.size(), CandRef{});
    gate_complex_b_.assign(net_.size(), CandRef{});
    gate_cost_.assign(net_.size(), 0);
    gate_level_.assign(net_.size(), 0);
    input_signal_.assign(net_.size(), 0);

    // Netlist inputs: one literal per unate PI, id == unate PI position.
    // Recover (source PI, phase) from the unate conversion record.
    std::vector<InputLiteral> literals(net_.pis().size());
    for (std::size_t k = 0; k < unate_.pi_literals.size(); ++k) {
      const auto& lits = unate_.pi_literals[k];
      if (lits.pos >= 0) {
        literals[static_cast<std::size_t>(lits.pos)] =
            InputLiteral{"", static_cast<int>(k), false};
      }
      if (lits.neg >= 0) {
        literals[static_cast<std::size_t>(lits.neg)] =
            InputLiteral{"", static_cast<int>(k), true};
      }
    }
    for (std::size_t j = 0; j < net_.pis().size(); ++j) {
      literals[j].name = net_.pi_name(net_.pis()[j]);
      SOIDOM_ASSERT_MSG(literals[j].source_pi >= 0,
                        "unate PI without a source literal record");
      const std::uint32_t sig = netlist_.add_input(literals[j]);
      input_signal_[net_.pis()[j].value] = sig;
    }

    // Primary-input leaf candidates, in id order.
    std::size_t num_pi_leaves = 0;
    for (std::uint32_t i = 2; i < net_.size(); ++i) {
      if (net_.kind(NodeId{i}) != NodeKind::kPi) continue;
      Cand leaf;
      leaf.op = Cand::Op::kInputLeaf;
      leaf.leaf = input_signal_[i];
      leaf.committed = kCostUnitsPerTransistor;
      leaf.has_pi = true;
      pi_leaf_[i] = leaf;
      ++num_pi_leaves;
    }

    // AND/OR nodes in id order (ids are a topological order: every fanin
    // has a smaller id than its fanout).
    std::vector<std::uint32_t> order;
    int max_level = 0;
    for (std::uint32_t i = 2; i < net_.size(); ++i) {
      const NodeKind kind = net_.kind(NodeId{i});
      if (kind != NodeKind::kAnd && kind != NodeKind::kOr) continue;
      order.push_back(i);
      max_level = std::max(max_level, level_[i]);
    }
    {  // dp_levels: distinct topological levels among mapped nodes.
      std::vector<char> seen(static_cast<std::size_t>(max_level) + 1, 0);
      for (const std::uint32_t i : order) seen[level_[i]] = 1;
      dp_levels_ = static_cast<int>(std::count(seen.begin(), seen.end(), 1));
    }

    // Resolve the worker count; clamp oversubscribed requests with a
    // structured warning unless the caller opted into oversubscription.
    const unsigned hw = hardware_thread_count();
    unsigned num_threads = opts_.num_threads == 0
                               ? hw
                               : static_cast<unsigned>(opts_.num_threads);
    if (num_threads > hw && !opts_.oversubscribe) {
      warnings_.push_back(Diagnostic{
          ErrorCode::kInvalidOptions, current_stage_or(FlowStage::kMap),
          format("MapperOptions.num_threads = %u exceeds hardware "
                 "concurrency %u; clamped to %u (results are identical at "
                 "any thread count; set MapperOptions::oversubscribe to "
                 "spawn the requested workers anyway)",
                 num_threads, hw, hw),
          {}});
      num_threads = hw;
    }

    const bool serial =
        num_threads <= 1 ||
        (opts_.serial_cutoff > 0 &&
         order.size() < static_cast<std::size_t>(opts_.serial_cutoff));
    if (serial) {
      threads_used_ = 1;
      scratch_.resize(1);
      prepare_scratch();
      std::size_t examined = 0;
      for (const std::uint32_t id : order) {
        process_node(NodeId{id}, 0, &examined);
      }
      candidates_examined_ = examined;
    } else {
      run_dp_graph(order, num_threads);
    }
    scratch_.clear();

    candidates_retained_ = num_pi_leaves;
    for (const std::uint32_t id : order) {
      candidates_retained_ += survivors_[id].size() + 1;  // + gate leaf
    }
  }

  MappingResult run() {
    if (ran_) return result_;
    ran_ = true;
    run_dp();
    gate_signal_.assign(net_.size(), kNoSignal);
    for (std::size_t j = 0; j < net_.outputs().size(); ++j) {
      const Output& o = net_.outputs()[j];
      const bool inverted = unate_.po_inverted[j];
      DominoOutput out;
      out.name = o.name;
      out.inverted = inverted;
      switch (net_.kind(o.driver)) {
        case NodeKind::kConst0:
          out.constant = 0;
          break;
        case NodeKind::kConst1:
          out.constant = 1;
          break;
        case NodeKind::kPi:
          out.signal = input_signal_[o.driver.value];
          break;
        case NodeKind::kAnd:
        case NodeKind::kOr:
          out.signal = realize_gate(o.driver);
          break;
        default:
          SOIDOM_ASSERT_MSG(false, "unexpected PO driver kind");
      }
      netlist_.add_output(std::move(out));
    }
    result_.dp_analyzer_mismatches = mismatches_;
    result_.predicted_cost = realized_weighted_cost();
    result_.candidates_examined = candidates_examined_;
    result_.candidates_retained = candidates_retained_;
    result_.dp_levels = dp_levels_;
    result_.dp_tasks = dp_tasks_;
    result_.dp_grain = dp_grain_;
    result_.threads_used = threads_used_;
    result_.warnings = warnings_;
    result_.netlist = std::move(netlist_);
    return result_;
  }

  std::vector<TupleInfo> tuples_of(NodeId node) {
    run_dp();
    SOIDOM_REQUIRE(net_.kind(node) == NodeKind::kAnd ||
                       net_.kind(node) == NodeKind::kOr,
                   "tuples_of: node is not an AND/OR gate");
    std::vector<TupleInfo> out;
    for (const Cand& c : survivors_[node.value]) {
      out.push_back(info_of(c));
    }
    out.push_back(info_of(gate_leaf_[node.value]));
    // The gate-leaf tuple's committed includes the +1 next-level
    // transistor; report the bare gate cost for the {1,1} entry instead.
    out.back().committed = gate_cost_[node.value];
    std::sort(out.begin(), out.end(), [](const TupleInfo& a, const TupleInfo& b) {
      return std::tie(a.width, a.height, a.committed) <
             std::tie(b.width, b.height, b.committed);
    });
    return out;
  }

  std::int64_t gate_cost_of(NodeId node) {
    run_dp();
    SOIDOM_REQUIRE(gate_best_local_[node.value] >= 0,
                   "gate_cost_of: node forms no gate");
    return gate_cost_[node.value];
  }

 private:
  static constexpr std::uint32_t kNoSignal = 0xffffffffu;

  static TupleInfo info_of(const Cand& c) {
    TupleInfo t;
    t.width = c.w;
    t.height = c.h;
    t.committed = c.committed;
    t.p_bot = c.p_bot;
    t.p_above = c.p_above;
    t.par_b = c.par_b;
    t.has_pi = c.has_pi;
    t.level = c.level;
    t.disch_committed = c.disch;
    return t;
  }

  // --- candidate references ----------------------------------------------

  const Cand& deref(CandRef r) const {
    SOIDOM_ASSERT(r.valid());
    if (net_.kind(NodeId{r.node}) == NodeKind::kPi) return pi_leaf_[r.node];
    const std::vector<Cand>& s = survivors_[r.node];
    return r.local < s.size() ? s[r.local] : gate_leaf_[r.node];
  }

  CandRef gate_leaf_ref(std::uint32_t node) const {
    return CandRef{node, static_cast<std::uint32_t>(survivors_[node].size())};
  }

  /// Three-way compare in the legacy arena-append order: level-major,
  /// then node id, then position in the node's candidate sequence.
  int ref_cmp(CandRef x, CandRef y) const {
    const auto kx = std::make_tuple(level_[x.node], x.node, x.local);
    const auto ky = std::make_tuple(level_[y.node], y.node, y.local);
    if (kx < ky) return -1;
    return ky < kx ? 1 : 0;
  }

  bool ref_less(CandRef x, CandRef y) const { return ref_cmp(x, y) < 0; }

  // --- DP cost model -------------------------------------------------------

  /// Pending discharge points that fire when the structure's bottom is not
  /// connected to ground (model-dependent; DESIGN.md section 2).
  int pending_penalty(const Cand& c) const {
    if (opts_.pending_model == PendingModel::kPaperLiteral) {
      return c.p_total() + (c.par_b ? 1 : 0);
    }
    return c.par_b ? c.p_total() + 1 : 0;
  }

  bool grounded_if_footed(bool footed) const {
    switch (opts_.grounding) {
      case GroundingPolicy::kAllGrounded: return true;
      case GroundingPolicy::kNoneGrounded: return false;
      case GroundingPolicy::kFootlessGrounded: return !footed;
    }
    return false;
  }

  struct GateEval {
    std::int64_t cost = 0;  ///< full gate cost, weighted units
    int level = 0;
    int disch = 0;  ///< total discharge transistors in the gate
  };

  GateEval eval_gate(const Cand& c) const {
    const bool footed = c.has_pi;
    const bool grounded = grounded_if_footed(footed);
    const int pend = soi_ && !grounded ? pending_penalty(c) : 0;
    GateEval e;
    e.disch = c.disch + pend;
    e.cost = c.committed + pend * disch_price_ +
             3 * kCostUnitsPerTransistor +  // output inverter + keeper
             clock_cost_ +                  // precharge pMOS
             (footed ? clock_cost_ : 0);    // n-clock foot
    e.level = c.level + 1;
    return e;
  }

  /// Selection order: area -> (cost, level, pending); depth -> (level,
  /// cost, pending).  Pending p_dis is the paper's tie-breaker.
  std::tuple<std::int64_t, std::int64_t, int> rank(std::int64_t cost,
                                                   int level,
                                                   int pending) const {
    if (opts_.objective == CostObjective::kDepth) {
      return {level, cost, pending};
    }
    return {cost, level, pending};
  }

  bool dominates(const Cand& x, const Cand& y) const {
    if (x.committed > y.committed) return false;
    if (x.has_pi && !y.has_pi) return false;
    if (opts_.objective == CostObjective::kDepth && x.level > y.level) {
      return false;
    }
    if (soi_) {
      if (x.p_bot > y.p_bot || x.p_above > y.p_above) return false;
      if (x.par_b && !y.par_b) return false;
    }
    return true;
  }

  /// Total order on candidates: primary DP rank, then every remaining
  /// field, closing with the schedule-independent child-reference keys.
  /// Beam truncation under an unstable std::sort is therefore
  /// reproducible on any platform, thread count, and stealing schedule.
  bool cand_less(const Cand& a, const Cand& b) const {
    const auto ra = rank(a.committed, a.level, a.p_total());
    const auto rb = rank(b.committed, b.level, b.p_total());
    if (ra != rb) return ra < rb;
    const auto ta = std::tie(a.level, a.p_bot, a.p_above, a.disch, a.par_b,
                             a.has_pi, a.op);
    const auto tb = std::tie(b.level, b.p_bot, b.p_above, b.disch, b.par_b,
                             b.has_pi, b.op);
    if (ta != tb) return ta < tb;
    if (a.op == Cand::Op::kSeries || a.op == Cand::Op::kParallel) {
      if (const int c = ref_cmp(a.a, b.a)) return c < 0;
      if (const int c = ref_cmp(a.b, b.b)) return c < 0;
      return false;
    }
    return a.leaf < b.leaf;
  }

  // --- candidate construction --------------------------------------------

  void try_or(std::vector<Cand>& out, const Cand& x, CandRef xi,
              const Cand& y, CandRef yi) const {
    const int w = x.w + y.w;
    const int h = std::max(x.h, y.h);
    // With complex gates, OVERSIZE parallels (Wmax < W <= 2*Wmax) are kept
    // as split fodder: they can only become a dual gate, never a single
    // pulldown or a series operand.
    if (w > grid_wmax_) return;
    Cand c;
    c.op = Cand::Op::kParallel;
    c.a = xi;
    c.b = yi;
    c.w = static_cast<std::uint8_t>(w);
    c.h = static_cast<std::uint8_t>(h);
    c.committed = x.committed + y.committed;
    c.disch = static_cast<std::uint16_t>(x.disch + y.disch);
    c.p_bot = static_cast<std::uint16_t>(x.p_total() + y.p_total());
    c.p_above = 0;
    c.par_b = true;
    c.has_pi = x.has_pi || y.has_pi;
    c.level = std::max(x.level, y.level);
    out.push_back(c);
  }

  void try_and(std::vector<Cand>& out, const Cand& top, CandRef ti,
               const Cand& bottom, CandRef bi) const {
    const int h = top.h + bottom.h;
    const int w = std::max(top.w, bottom.w);
    if (h > opts_.max_height) return;
    if (w > opts_.max_width) return;  // oversize parallels cannot go in series
    int commit_pts = 0;
    int carried = 0;
    if (opts_.pending_model == PendingModel::kPaperLiteral) {
      commit_pts = top.p_total() + 1;
      carried = 0;
    } else if (top.par_b) {
      commit_pts = top.p_bot + 1;  // top's parallel bottom + its interior
      carried = top.p_above;
    } else {
      commit_pts = 0;
      carried = top.p_total() + 1;  // new junction stays a series point
    }
    Cand c;
    c.op = Cand::Op::kSeries;
    c.a = ti;
    c.b = bi;
    c.w = static_cast<std::uint8_t>(w);
    c.h = static_cast<std::uint8_t>(h);
    c.committed =
        top.committed + bottom.committed + commit_pts * disch_price_;
    c.disch = static_cast<std::uint16_t>(top.disch + bottom.disch +
                                         (soi_ ? commit_pts : 0));
    c.p_bot = bottom.p_bot;
    c.p_above = static_cast<std::uint16_t>(bottom.p_above + carried);
    c.par_b = bottom.par_b;
    c.has_pi = top.has_pi || bottom.has_pi;
    c.level = std::max(top.level, bottom.level);
    out.push_back(c);
  }

  /// Intrinsic (structure-independent) total preorder on candidates used
  /// for symmetric tie-breaks: compares only costed content, never
  /// reference keys, so the comparison is invariant under node
  /// renumbering.
  static bool cand_content_less(const Cand& a, const Cand& b) {
    return std::tie(a.committed, a.level, a.w, a.h, a.p_bot, a.p_above,
                    a.disch, a.par_b, a.has_pi) <
           std::tie(b.committed, b.level, b.w, b.h, b.p_bot, b.p_above,
                    b.disch, b.par_b, b.has_pi);
  }

  /// The paper's placement heuristic: the operand whose bottom is a
  /// parallel stack goes to the bottom; when both qualify, the one with the
  /// larger p_dis (it defers more discharge transistors).  Exact p_dis
  /// ties no longer depend on fanin textual order (the old `>=` picked
  /// whichever operand happened to be fanin1): they break on intrinsic
  /// candidate content, then on reference key for fully identical
  /// candidates, where either choice costs the same.
  bool second_goes_bottom(const Cand& x, CandRef xi, const Cand& y,
                          CandRef yi) const {
    if (x.par_b != y.par_b) return y.par_b;
    if (x.par_b && y.par_b) {
      if (x.p_total() != y.p_total()) return y.p_total() > x.p_total();
      if (cand_content_less(y, x)) return true;
      if (cand_content_less(x, y)) return false;
      return ref_less(yi, xi);
    }
    return true;  // neither: keep textual order (x top, y bottom)
  }

  /// Candidate sets usable by a parent combining over `child`, written into
  /// the caller's scratch vector (no allocation in steady state).
  void usable_set(NodeId child, std::vector<CandRef>& out) const {
    out.clear();
    const NodeKind kind = net_.kind(child);
    SOIDOM_ASSERT_MSG(kind != NodeKind::kConst0 && kind != NodeKind::kConst1,
                      "constant feeding a mapped gate (should be swept)");
    if (kind == NodeKind::kPi) {
      out.push_back(CandRef{child.value, 0});
      return;
    }
    SOIDOM_ASSERT(kind == NodeKind::kAnd || kind == NodeKind::kOr);
    if (opts_.gate_at_fanout && fanout_[child.value] > 1) {
      out.push_back(gate_leaf_ref(child.value));
      return;
    }
    const std::size_t n = survivors_[child.value].size();
    for (std::uint32_t k = 0; k < n; ++k) {
      out.push_back(CandRef{child.value, k});
    }
    out.push_back(gate_leaf_ref(child.value));
  }

  // --- task-graph DP -------------------------------------------------------

  /// Reusable per-worker state: the raw combination buffer and the flat
  /// Wmax x Hmax Pareto bucket grid.  Buckets keep their capacity across
  /// nodes; `touched` lists the dirty cells so clearing is O(shapes used).
  struct Scratch {
    std::vector<Cand> raw;
    std::vector<std::vector<Cand>> cells;
    std::vector<std::uint32_t> touched;
    std::vector<CandRef> s0, s1;
  };

  void prepare_scratch() {
    for (Scratch& s : scratch_) {
      s.cells.resize(static_cast<std::size_t>(grid_wmax_) * grid_hmax_);
    }
  }

  std::size_t cell_index(int w, int h) const {
    return static_cast<std::size_t>(w - 1) * grid_hmax_ +
           static_cast<std::size_t>(h - 1);
  }

  /// Coarsen `order` (AND/OR nodes, ascending id == topological order)
  /// into fanout-cone chunks of about `grain` nodes and run them over the
  /// dependency-counting scheduler.
  void run_dp_graph(const std::vector<std::uint32_t>& order,
                    unsigned num_threads) {
    // Grain: explicit, or derived so each worker sees plenty of tasks to
    // steal without descending into per-node scheduling on huge circuits.
    int grain = opts_.task_grain;
    if (grain <= 0) {
      const std::size_t target = static_cast<std::size_t>(num_threads) * 48;
      grain = static_cast<int>(std::clamp<std::size_t>(
          order.size() / std::max<std::size_t>(target, 1), 1, 4096));
    }
    dp_grain_ = grain;

    // Fanout-free cone clustering: a node with exactly one AND/OR fanout
    // joins that fanout's cluster (visited in reverse topological order,
    // so the fanout's cluster already exists) unless the cluster is full.
    // All edges leaving a cluster originate at its root, so ordering
    // clusters by root id keeps every inter-cluster edge pointing forward.
    constexpr std::uint32_t kUnassigned = 0xffffffffu;
    std::vector<std::uint32_t> gate_fanouts(net_.size(), 0);
    std::vector<std::uint32_t> unique_fanout(net_.size(), kUnassigned);
    for (const std::uint32_t id : order) {
      const Node& n = net_.node(NodeId{id});
      for (const NodeId f : {n.fanin0, n.fanin1}) {
        const NodeKind k = net_.kind(f);
        if (k != NodeKind::kAnd && k != NodeKind::kOr) continue;
        ++gate_fanouts[f.value];
        unique_fanout[f.value] = id;
      }
    }
    std::vector<std::uint32_t> cluster(net_.size(), kUnassigned);
    std::vector<std::uint32_t> cluster_nodes(net_.size(), 0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::uint32_t u = *it;
      if (gate_fanouts[u] == 1) {
        const std::uint32_t root = cluster[unique_fanout[u]];
        if (cluster_nodes[root] < static_cast<std::uint32_t>(grain)) {
          cluster[u] = root;
          ++cluster_nodes[root];
          continue;
        }
      }
      cluster[u] = u;
      cluster_nodes[u] = 1;
    }

    // Pack whole clusters — in root-id order, so inter-chunk edges stay
    // forward — into chunks of at least `grain` nodes.
    std::vector<std::vector<std::uint32_t>> members(net_.size());
    for (const std::uint32_t id : order) {
      members[cluster[id]].push_back(id);
    }
    std::vector<std::vector<std::uint32_t>> chunks;
    std::vector<std::uint32_t> chunk_of(net_.size(), 0);
    for (const std::uint32_t id : order) {
      if (cluster[id] != id) continue;  // not a cluster root
      if (chunks.empty() ||
          chunks.back().size() >= static_cast<std::size_t>(grain)) {
        chunks.emplace_back();
      }
      std::vector<std::uint32_t>& chunk = chunks.back();
      chunk.insert(chunk.end(), members[id].begin(), members[id].end());
      for (const std::uint32_t m : members[id]) {
        chunk_of[m] = static_cast<std::uint32_t>(chunks.size() - 1);
      }
    }
    // Intra-chunk execution order must respect dependencies; ascending id
    // (a topological order) does, for both cone members and packed runs.
    for (std::vector<std::uint32_t>& chunk : chunks) {
      std::sort(chunk.begin(), chunk.end());
    }
    dp_tasks_ = static_cast<int>(chunks.size());

    // Cross-chunk dependency edges, deduplicated with a stamp array.
    std::vector<std::vector<std::uint32_t>> successors(chunks.size());
    std::vector<std::uint32_t> stamp(chunks.size(), 0xffffffffu);
    for (std::uint32_t c = 0; c < chunks.size(); ++c) {
      for (const std::uint32_t id : chunks[c]) {
        const Node& n = net_.node(NodeId{id});
        for (const NodeId f : {n.fanin0, n.fanin1}) {
          const NodeKind k = net_.kind(f);
          if (k != NodeKind::kAnd && k != NodeKind::kOr) continue;
          const std::uint32_t pc = chunk_of[f.value];
          if (pc == c || stamp[pc] == c) continue;
          stamp[pc] = c;
          successors[pc].push_back(c);
        }
      }
    }

    num_threads = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, chunks.size()));
    ThreadPool pool(num_threads);
    threads_used_ = static_cast<int>(pool.size());
    scratch_.resize(pool.size());
    prepare_scratch();
    std::vector<std::size_t> examined(pool.size(), 0);
#if defined(SOIDOM_FAULT_INJECTION)
    FaultInjector* const injector = current_fault_injector();
#endif
    pool.run_graph(
        chunks.size(), successors, [&](std::size_t c, unsigned worker) {
#if defined(SOIDOM_FAULT_INJECTION)
          // Workers have their own thread-local injector slot; re-install
          // the caller's so per-task probes ("worker death" coverage)
          // observe it.
          std::optional<FaultScope> fault_scope;
          if (injector != nullptr) fault_scope.emplace(*injector);
#endif
          SOIDOM_FAULT_PROBE(current_stage_or(FlowStage::kMap));
          for (const std::uint32_t id : chunks[c]) {
            process_node(NodeId{id}, worker, &examined[worker]);
          }
        });
    candidates_examined_ = 0;
    for (const std::size_t e : examined) candidates_examined_ += e;
  }

  void process_node(NodeId id, unsigned worker, std::size_t* examined) {
    if (guard_ != nullptr) guard_->checkpoint();
    const Node& n = net_.node(id);
    Scratch& scratch = scratch_[worker];
    usable_set(n.fanin0, scratch.s0);
    usable_set(n.fanin1, scratch.s1);

    std::vector<Cand>& raw = scratch.raw;
    raw.clear();
    for (const CandRef i0 : scratch.s0) {
      const Cand& c0 = deref(i0);
      for (const CandRef i1 : scratch.s1) {
        const Cand& c1 = deref(i1);
        if (n.kind == NodeKind::kOr) {
          try_or(raw, c0, i0, c1, i1);
        } else if (opts_.engine == MappingEngine::kDominoMap) {
          // Bulk-CMOS convention (the paper's Fig. 2(a)): the parallel
          // stack sits at the TOP of the series stack, nearest the dynamic
          // node, where bulk designers place it for charge-sharing
          // reasons.  This is exactly the PBE-hostile structure the paper
          // uses as its baseline.
          if (c1.par_b && !c0.par_b) {
            try_and(raw, c1, i1, c0, i0);
          } else {
            try_and(raw, c0, i0, c1, i1);
          }
        } else if (opts_.exhaustive_ordering) {
          try_and(raw, c0, i0, c1, i1);
          try_and(raw, c1, i1, c0, i0);
        } else if (second_goes_bottom(c0, i0, c1, i1)) {
          try_and(raw, c0, i0, c1, i1);
        } else {
          try_and(raw, c1, i1, c0, i0);
        }
      }
    }
    if (raw.empty()) {
      throw GuardError(
          ErrorCode::kInfeasibleLimits, current_stage_or(FlowStage::kMap),
          format("no feasible pulldown shape for node %u under W<=%d H<=%d; "
                 "increase max_width/max_height",
                 id.value, opts_.max_width, opts_.max_height));
    }
    *examined += raw.size();
    if (guard_ != nullptr) guard_->charge(Resource::kTuples, raw.size());

    // Per-shape Pareto pruning on the flat bucket grid.
    for (const Cand& c : raw) {
      const std::size_t cell = cell_index(c.w, c.h);
      std::vector<Cand>& bucket = scratch.cells[cell];
      if (bucket.empty()) scratch.touched.push_back(static_cast<std::uint32_t>(cell));
      bool dominated = false;
      for (const Cand& kept : bucket) {
        if (dominates(kept, c)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(bucket, [&](const Cand& kept) { return dominates(c, kept); });
      bucket.push_back(c);
    }

    // Beam-cap each shape and emit survivors in canonical (W, H) order,
    // directly into the node's own slot (no merge step: only this task
    // writes it, and dependents run strictly after via the task graph).
    std::vector<Cand>& out = survivors_[id.value];
    SOIDOM_ASSERT(out.empty());
    std::sort(scratch.touched.begin(), scratch.touched.end());
    for (const std::uint32_t cell : scratch.touched) {
      std::vector<Cand>& bucket = scratch.cells[cell];
      std::sort(bucket.begin(), bucket.end(),
                [&](const Cand& a, const Cand& b) { return cand_less(a, b); });
      const std::size_t keep =
          std::min(bucket.size(), static_cast<std::size_t>(opts_.beam_width));
      out.insert(out.end(), bucket.begin(), bucket.begin() + keep);
      bucket.clear();
    }
    scratch.touched.clear();

    // Gate formation: pick the best candidate under the objective.
    std::int32_t best_local = -1;
    GateEval best_eval;
    for (std::uint32_t k = 0; k < out.size(); ++k) {
      const Cand& c = out[k];
      if (c.w > opts_.max_width) continue;  // split fodder only
      const GateEval e = eval_gate(c);
      if (best_local < 0 ||
          rank(e.cost, e.level, c.p_total()) <
              rank(best_eval.cost, best_eval.level,
                   out[best_local].p_total())) {
        best_local = static_cast<std::int32_t>(k);
        best_eval = e;
      }
    }
    SOIDOM_ASSERT(best_local >= 0);

    // Complex-gate option (paper solution 7): at an OR node, form the gate
    // from one pulldown per operand joined by a static NAND2.  Each
    // pulldown keeps its own grounded bottom; the overhead is 2 precharge
    // (clocked) + NAND2 (4) + 2 keepers + a foot per footed pulldown.
    CandRef complex_a;
    CandRef complex_b;
    if (opts_.enable_complex_gates && n.kind == NodeKind::kOr) {
      auto resolved = [&](const Cand& c) {
        const bool grounded = grounded_if_footed(c.has_pi);
        const int pend = soi_ && !grounded ? pending_penalty(c) : 0;
        return std::pair<std::int64_t, int>{c.committed + pend * disch_price_,
                                            c.disch + pend};
      };
      // Every parallel-rooted candidate (including the oversize ones kept
      // as split fodder) can be cut at its root into the gate's two
      // pulldowns; the halves are candidates of the *children*, so their
      // references are already final.
      for (std::uint32_t k = 0; k < out.size(); ++k) {
        const Cand& c = out[k];
        if (c.op != Cand::Op::kParallel) continue;
        const Cand& a = deref(c.a);
        const Cand& b = deref(c.b);
        if (a.w > opts_.max_width || b.w > opts_.max_width) continue;
        const auto [cost_a, disch_a] = resolved(a);
        const auto [cost_b, disch_b] = resolved(b);
        GateEval e;
        e.disch = disch_a + disch_b;
        e.cost = cost_a + cost_b + 6 * kCostUnitsPerTransistor +
                 2 * clock_cost_ + (a.has_pi ? clock_cost_ : 0) +
                 (b.has_pi ? clock_cost_ : 0);
        e.level = std::max(a.level, b.level) + 1;
        const int pending = a.p_total() + b.p_total();
        const int incumbent_pending =
            !complex_a.valid()
                ? out[best_local].p_total()
                : deref(complex_a).p_total() + deref(complex_b).p_total();
        if (rank(e.cost, e.level, pending) <
            rank(best_eval.cost, best_eval.level, incumbent_pending)) {
          complex_a = c.a;
          complex_b = c.b;
          best_eval = e;
        }
      }
    }

    gate_best_local_[id.value] = best_local;
    gate_complex_a_[id.value] = complex_a;
    gate_complex_b_[id.value] = complex_b;
    gate_cost_[id.value] = best_eval.cost;
    gate_level_[id.value] = best_eval.level;

    Cand leaf;
    leaf.op = Cand::Op::kGateLeaf;
    leaf.leaf = id.value;
    leaf.committed = best_eval.cost + kCostUnitsPerTransistor;
    leaf.level = static_cast<std::int16_t>(best_eval.level);
    gate_leaf_[id.value] = leaf;

    // Budget accounting: the retained candidates (plus the gate-leaf
    // tuple) persist for the rest of the run, so they are charged in
    // addition to the transient raw combinations above.
    if (guard_ != nullptr) {
      guard_->charge(Resource::kTuples, out.size() + 1);
    }
  }

  // --- realization ---------------------------------------------------------

  PdnIndex build_pdn(Pdn& pdn, CandRef ci) {
    const Cand& c = deref(ci);
    switch (c.op) {
      case Cand::Op::kInputLeaf:
        return pdn.add_leaf(c.leaf);
      case Cand::Op::kGateLeaf:
        return pdn.add_leaf(realize_gate(NodeId{c.leaf}));
      case Cand::Op::kSeries: {
        const PdnIndex top = build_pdn(pdn, c.a);
        const PdnIndex bottom = build_pdn(pdn, c.b);
        return pdn.add_series({top, bottom});
      }
      case Cand::Op::kParallel: {
        const PdnIndex x = build_pdn(pdn, c.a);
        const PdnIndex y = build_pdn(pdn, c.b);
        return pdn.add_parallel({x, y});
      }
    }
    SOIDOM_ASSERT(false);
    return kInvalidPdnIndex;
  }

  std::uint32_t realize_gate(NodeId node) {
    if (gate_signal_[node.value] != kNoSignal) {
      return gate_signal_[node.value];
    }
    const bool complex = gate_complex_a_[node.value].valid();
    SOIDOM_ASSERT(complex || gate_best_local_[node.value] >= 0);
    const CandRef ci =
        complex ? gate_complex_a_[node.value]
                : CandRef{node.value, static_cast<std::uint32_t>(
                                          gate_best_local_[node.value])};
    const CandRef ci2 = complex ? gate_complex_b_[node.value] : CandRef{};
    const Cand cand = deref(ci);  // copy: slots stable, but be explicit

    DominoGate gate;
    const PdnIndex root = build_pdn(gate.pdn, ci);
    gate.pdn.set_root(root);
    gate.footed = cand.has_pi;
    if (ci2.valid()) {
      const Cand cand2 = deref(ci2);
      const PdnIndex root2 = build_pdn(gate.pdn2, ci2);
      gate.pdn2.set_root(root2);
      gate.footed2 = cand2.has_pi;
    }

    // Cross-check footedness against the realized leaves, per pulldown.
    auto check_feet = [&](const Pdn& pdn, bool footed_flag) {
      bool has_input_leaf = false;
      for (const std::uint32_t sig : pdn.leaf_signals()) {
        if (netlist_.is_input_signal(sig)) has_input_leaf = true;
      }
      SOIDOM_ASSERT_MSG(has_input_leaf == footed_flag,
                        "DP footedness disagrees with realized leaves");
    };
    check_feet(gate.pdn, gate.footed);
    if (gate.dual()) check_feet(gate.pdn2, gate.footed2);

    if (soi_) {
      auto protect = [&](const Pdn& pdn, bool footed_flag,
                         const Cand& c) -> std::vector<DischargePoint> {
        const bool grounded = grounded_if_footed(footed_flag);
        auto required =
            analyze_pbe(pdn, grounded, opts_.pending_model).required;
        const int predicted = c.disch + (grounded ? 0 : pending_penalty(c));
        if (static_cast<int>(required.size()) != predicted) ++mismatches_;
        return required;
      };
      gate.discharges = protect(gate.pdn, gate.footed, cand);
      if (gate.dual()) {
        gate.discharges2 = protect(gate.pdn2, gate.footed2, deref(ci2));
      }
    }
    const std::uint32_t signal = netlist_.add_gate(std::move(gate));
    gate_signal_[node.value] = signal;
    return signal;
  }

  std::int64_t realized_weighted_cost() const {
    std::int64_t cost = 0;
    for (const DominoGate& g : netlist_.gates()) {
      cost += g.pdn.transistor_count() * kCostUnitsPerTransistor;
      if (g.dual()) {
        cost += g.pdn2.transistor_count() * kCostUnitsPerTransistor;
        cost += 6 * kCostUnitsPerTransistor;  // NAND2 + two keepers
        cost += 2 * clock_cost_;              // two precharges
        if (g.footed) cost += clock_cost_;
        if (g.footed2) cost += clock_cost_;
      } else {
        cost += 3 * kCostUnitsPerTransistor;  // inverter + keeper
        cost += clock_cost_;                  // precharge
        if (g.footed) cost += clock_cost_;
      }
      cost += static_cast<std::int64_t>(g.discharges.size() +
                                        g.discharges2.size()) *
              clock_cost_;
    }
    return cost;
  }

  const UnateResult& unate_;
  const Network& net_;
  MapperOptions opts_;
  std::int64_t clock_cost_ = kCostUnitsPerTransistor;
  std::int64_t disch_price_ = kCostUnitsPerTransistor;
  bool soi_ = true;
  int grid_wmax_ = 5;
  int grid_hmax_ = 8;
  bool dp_done_ = false;
  bool ran_ = false;

  GuardContext* guard_ = nullptr;  ///< owning flow's guard, shared by workers

  // Per-node DP state.  Each AND/OR node's slots are written by exactly
  // one scheduler task; dependents read them only after the dependency
  // release (acq_rel in ThreadPool::run_graph).
  std::vector<std::vector<Cand>> survivors_;
  std::vector<Cand> gate_leaf_;
  std::vector<Cand> pi_leaf_;
  std::vector<std::int32_t> gate_best_local_;
  std::vector<CandRef> gate_complex_a_;  ///< complex gates: child pulldowns
  std::vector<CandRef> gate_complex_b_;
  std::vector<std::int64_t> gate_cost_;
  std::vector<int> gate_level_;
  std::vector<std::uint32_t> input_signal_;
  std::vector<std::uint32_t> fanout_;
  std::vector<int> level_;

  std::vector<Scratch> scratch_;  // per worker
  std::size_t candidates_examined_ = 0;
  std::size_t candidates_retained_ = 0;
  int dp_levels_ = 0;
  int dp_tasks_ = 0;
  int dp_grain_ = 0;
  int threads_used_ = 1;
  std::vector<Diagnostic> warnings_;

  DominoNetlist netlist_;
  MappingResult result_;
  std::vector<std::uint32_t> gate_signal_;
  int mismatches_ = 0;
};

}  // namespace

void validate(const MapperOptions& options) {
  SOIDOM_REQUIRE(options.max_width >= 1 && options.max_width <= 64,
                 format("MapperOptions.max_width = %d is invalid "
                        "(need 1 <= max_width <= 64)",
                        options.max_width));
  SOIDOM_REQUIRE(options.max_height >= 2 && options.max_height <= 64,
                 format("MapperOptions.max_height = %d is invalid "
                        "(need 2 <= max_height <= 64)",
                        options.max_height));
  SOIDOM_REQUIRE(options.beam_width >= 1,
                 format("MapperOptions.beam_width = %d is invalid "
                        "(need beam_width >= 1)",
                        options.beam_width));
  SOIDOM_REQUIRE(
      std::isfinite(options.clock_weight) && options.clock_weight > 0.0 &&
          options.clock_weight <= 1000.0,
      format("MapperOptions.clock_weight = %g is invalid "
             "(need finite 0 < clock_weight <= 1000)",
             options.clock_weight));
  SOIDOM_REQUIRE(options.num_threads >= 0 && options.num_threads <= 256,
                 format("MapperOptions.num_threads = %d is invalid "
                        "(need 0 <= num_threads <= 256; 0 = auto)",
                        options.num_threads));
  SOIDOM_REQUIRE(options.task_grain >= 0 && options.task_grain <= (1 << 20),
                 format("MapperOptions.task_grain = %d is invalid "
                        "(need 0 <= task_grain <= 1048576; 0 = auto)",
                        options.task_grain));
  SOIDOM_REQUIRE(
      options.serial_cutoff >= 0 && options.serial_cutoff <= (1 << 30),
      format("MapperOptions.serial_cutoff = %d is invalid "
             "(need 0 <= serial_cutoff <= 2^30; 0 = always parallel)",
             options.serial_cutoff));
}

MappingResult map_to_domino(const UnateResult& unate,
                            const MapperOptions& options) {
  StageScope stage(FlowStage::kMap);
  SOIDOM_FAULT_PROBE(FlowStage::kMap);
  return MapperImpl(unate, options).run();
}

struct TupleOracle::Impl {
  explicit Impl(const UnateResult& unate, const MapperOptions& options)
      : mapper(unate, options) {}
  MapperImpl mapper;
};

TupleOracle::TupleOracle(const UnateResult& unate, const MapperOptions& options)
    : impl_(new Impl(unate, options)) {}

TupleOracle::~TupleOracle() { delete impl_; }

std::vector<TupleInfo> TupleOracle::tuples_of(NodeId node) const {
  return impl_->mapper.tuples_of(node);
}

std::int64_t TupleOracle::gate_cost_of(NodeId node) const {
  return impl_->mapper.gate_cost_of(node);
}

MappingResult TupleOracle::map() const {
  StageScope stage(FlowStage::kMap);
  return impl_->mapper.run();
}

}  // namespace soidom
