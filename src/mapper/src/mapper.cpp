#include "soidom/mapper/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "soidom/base/contracts.hpp"
#include "soidom/base/parallel.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/domino/postpass.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {
namespace {

/// A DP candidate: one partial pulldown structure.  See mapper.hpp for the
/// field semantics.  Candidates live in a per-run arena and reference their
/// construction children by arena index, so realization can rebuild the
/// exact series/parallel tree the DP priced.
struct Cand {
  enum class Op : std::uint8_t { kInputLeaf, kGateLeaf, kSeries, kParallel };

  Op op = Op::kInputLeaf;
  std::uint8_t w = 1;
  std::uint8_t h = 1;
  bool par_b = false;
  bool has_pi = false;
  std::int16_t level = 0;
  std::uint16_t p_bot = 0;
  std::uint16_t p_above = 0;
  std::uint16_t disch = 0;  ///< discharge transistors committed in this PDN
  std::int64_t committed = 0;
  /// kInputLeaf: netlist input signal; kGateLeaf: unate node id;
  /// kSeries: a = TOP child, b = BOTTOM child; kParallel: the two branches.
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  int p_total() const { return p_bot + p_above; }
};

/// The DP runs as a *wavefront*: nodes are grouped by topological level and
/// every node of one level is mapped concurrently (its fanins live in
/// strictly earlier levels, so the shared arena is read-only during a
/// level).  Each worker appends its nodes' surviving candidates to a
/// per-worker output buffer and records a NodeDecision; after the level
/// joins, the main thread merges buffers into the global arena in node-id
/// order.  The merged arena — and with it every downstream tie-break — is
/// therefore bit-identical for every thread count, including 1.
class MapperImpl {
 public:
  MapperImpl(const UnateResult& unate, const MapperOptions& opts)
      : unate_(unate), net_(unate.net), opts_(opts) {
    SOIDOM_REQUIRE(net_.is_unate(),
                   "mapper input must be a unate (inverter-free) network");
    validate(opts_);
    clock_cost_ = static_cast<std::int64_t>(
        std::llround(opts_.clock_weight * kCostUnitsPerTransistor));
    soi_ = opts_.engine == MappingEngine::kSoiDominoMap;
    disch_price_ = soi_ ? clock_cost_ : 0;
    // Shape-grid extent: OVERSIZE parallels (W up to 2*Wmax) are retained
    // as complex-gate split fodder when enabled.
    grid_wmax_ = opts_.enable_complex_gates ? 2 * opts_.max_width
                                            : opts_.max_width;
    grid_hmax_ = opts_.max_height;
  }

  void run_dp() {
    if (dp_done_) return;
    dp_done_ = true;
    guard_ = current_guard();
    fanout_ = net_.fanout_counts();
    node_cands_.resize(net_.size());
    gate_cand_.assign(net_.size(), kNoCand);
    gate_cand2_.assign(net_.size(), kNoCand);
    gate_leaf_cand_.assign(net_.size(), kNoCand);
    pi_leaf_cand_.assign(net_.size(), kNoCand);
    gate_cost_.assign(net_.size(), 0);
    gate_level_.assign(net_.size(), 0);
    input_signal_.assign(net_.size(), 0);

    // Netlist inputs: one literal per unate PI, id == unate PI position.
    // Recover (source PI, phase) from the unate conversion record.
    std::vector<InputLiteral> literals(net_.pis().size());
    for (std::size_t k = 0; k < unate_.pi_literals.size(); ++k) {
      const auto& lits = unate_.pi_literals[k];
      if (lits.pos >= 0) {
        literals[static_cast<std::size_t>(lits.pos)] =
            InputLiteral{"", static_cast<int>(k), false};
      }
      if (lits.neg >= 0) {
        literals[static_cast<std::size_t>(lits.neg)] =
            InputLiteral{"", static_cast<int>(k), true};
      }
    }
    for (std::size_t j = 0; j < net_.pis().size(); ++j) {
      literals[j].name = net_.pi_name(net_.pis()[j]);
      SOIDOM_ASSERT_MSG(literals[j].source_pi >= 0,
                        "unate PI without a source literal record");
      const std::uint32_t sig = netlist_.add_input(literals[j]);
      input_signal_[net_.pis()[j].value] = sig;
    }

    // Wavefront 0: primary-input leaf candidates, in id order.
    for (std::uint32_t i = 2; i < net_.size(); ++i) {
      if (net_.kind(NodeId{i}) != NodeKind::kPi) continue;
      Cand leaf;
      leaf.op = Cand::Op::kInputLeaf;
      leaf.a = input_signal_[i];
      leaf.committed = kCostUnitsPerTransistor;
      leaf.has_pi = true;
      pi_leaf_cand_[i] = push_cand(leaf);
    }

    // Levelize the AND/OR nodes; ids within a wave stay ascending.
    const std::vector<int> level = net_.levels();
    std::vector<std::vector<std::uint32_t>> waves;
    std::size_t widest = 1;
    for (std::uint32_t i = 2; i < net_.size(); ++i) {
      const NodeKind kind = net_.kind(NodeId{i});
      if (kind != NodeKind::kAnd && kind != NodeKind::kOr) continue;
      const auto l = static_cast<std::size_t>(level[i]);
      if (waves.size() <= l) waves.resize(l + 1);
      waves[l].push_back(i);
      widest = std::max(widest, waves[l].size());
    }

    unsigned num_threads = opts_.num_threads == 0
                               ? hardware_thread_count()
                               : static_cast<unsigned>(opts_.num_threads);
    // More workers than the widest wave can never help.
    num_threads = static_cast<unsigned>(
        std::min<std::size_t>(num_threads, widest));
    ThreadPool pool(num_threads);
    scratch_.resize(pool.size());
    for (Scratch& s : scratch_) {
      s.cells.resize(static_cast<std::size_t>(grid_wmax_) * grid_hmax_);
    }
    worker_out_.resize(pool.size());
    decision_.resize(net_.size());

    for (const std::vector<std::uint32_t>& wave : waves) {
      if (wave.empty()) continue;
      ++dp_levels_;
      guard_checkpoint();  // main-thread deadline / cancellation per level
      for (std::vector<Cand>& out : worker_out_) out.clear();
      pool.run(wave.size(), [&](std::size_t item, unsigned worker) {
        process_wave_node(NodeId{wave[item]}, worker);
      });
      merge_level(wave);
    }
    scratch_.clear();
    worker_out_.clear();
    decision_.clear();
  }

  MappingResult run() {
    if (ran_) return result_;
    ran_ = true;
    run_dp();
    gate_signal_.assign(net_.size(), kNoSignal);
    for (std::size_t j = 0; j < net_.outputs().size(); ++j) {
      const Output& o = net_.outputs()[j];
      const bool inverted = unate_.po_inverted[j];
      DominoOutput out;
      out.name = o.name;
      out.inverted = inverted;
      switch (net_.kind(o.driver)) {
        case NodeKind::kConst0:
          out.constant = 0;
          break;
        case NodeKind::kConst1:
          out.constant = 1;
          break;
        case NodeKind::kPi:
          out.signal = input_signal_[o.driver.value];
          break;
        case NodeKind::kAnd:
        case NodeKind::kOr:
          out.signal = realize_gate(o.driver);
          break;
        default:
          SOIDOM_ASSERT_MSG(false, "unexpected PO driver kind");
      }
      netlist_.add_output(std::move(out));
    }
    result_.dp_analyzer_mismatches = mismatches_;
    result_.predicted_cost = realized_weighted_cost();
    result_.candidates_examined = candidates_examined_;
    result_.candidates_retained = arena_.size();
    result_.dp_levels = dp_levels_;
    result_.netlist = std::move(netlist_);
    return result_;
  }

  std::vector<TupleInfo> tuples_of(NodeId node) {
    run_dp();
    SOIDOM_REQUIRE(net_.kind(node) == NodeKind::kAnd ||
                       net_.kind(node) == NodeKind::kOr,
                   "tuples_of: node is not an AND/OR gate");
    std::vector<TupleInfo> out;
    for (const std::uint32_t ci : node_cands_[node.value]) {
      out.push_back(info_of(arena_[ci]));
    }
    out.push_back(info_of(arena_[gate_leaf_cand_[node.value]]));
    // The gate-leaf tuple's committed includes the +1 next-level
    // transistor; report the bare gate cost for the {1,1} entry instead.
    out.back().committed = gate_cost_[node.value];
    std::sort(out.begin(), out.end(), [](const TupleInfo& a, const TupleInfo& b) {
      return std::tie(a.width, a.height, a.committed) <
             std::tie(b.width, b.height, b.committed);
    });
    return out;
  }

  std::int64_t gate_cost_of(NodeId node) {
    run_dp();
    SOIDOM_REQUIRE(gate_cand_[node.value] != kNoCand,
                   "gate_cost_of: node forms no gate");
    return gate_cost_[node.value];
  }

 private:
  static constexpr std::uint32_t kNoCand = 0xffffffffu;
  static constexpr std::uint32_t kNoSignal = 0xffffffffu;

  static TupleInfo info_of(const Cand& c) {
    TupleInfo t;
    t.width = c.w;
    t.height = c.h;
    t.committed = c.committed;
    t.p_bot = c.p_bot;
    t.p_above = c.p_above;
    t.par_b = c.par_b;
    t.has_pi = c.has_pi;
    t.level = c.level;
    t.disch_committed = c.disch;
    return t;
  }

  /// Pending discharge points that fire when the structure's bottom is not
  /// connected to ground (model-dependent; DESIGN.md section 2).
  int pending_penalty(const Cand& c) const {
    if (opts_.pending_model == PendingModel::kPaperLiteral) {
      return c.p_total() + (c.par_b ? 1 : 0);
    }
    return c.par_b ? c.p_total() + 1 : 0;
  }

  bool grounded_if_footed(bool footed) const {
    switch (opts_.grounding) {
      case GroundingPolicy::kAllGrounded: return true;
      case GroundingPolicy::kNoneGrounded: return false;
      case GroundingPolicy::kFootlessGrounded: return !footed;
    }
    return false;
  }

  struct GateEval {
    std::int64_t cost = 0;  ///< full gate cost, weighted units
    int level = 0;
    int disch = 0;  ///< total discharge transistors in the gate
  };

  GateEval eval_gate(const Cand& c) const {
    const bool footed = c.has_pi;
    const bool grounded = grounded_if_footed(footed);
    const int pend = soi_ && !grounded ? pending_penalty(c) : 0;
    GateEval e;
    e.disch = c.disch + pend;
    e.cost = c.committed + pend * disch_price_ +
             3 * kCostUnitsPerTransistor +  // output inverter + keeper
             clock_cost_ +                  // precharge pMOS
             (footed ? clock_cost_ : 0);    // n-clock foot
    e.level = c.level + 1;
    return e;
  }

  /// Selection order: area -> (cost, level, pending); depth -> (level,
  /// cost, pending).  Pending p_dis is the paper's tie-breaker.
  std::tuple<std::int64_t, std::int64_t, int> rank(std::int64_t cost,
                                                   int level,
                                                   int pending) const {
    if (opts_.objective == CostObjective::kDepth) {
      return {level, cost, pending};
    }
    return {cost, level, pending};
  }

  bool dominates(const Cand& x, const Cand& y) const {
    if (x.committed > y.committed) return false;
    if (x.has_pi && !y.has_pi) return false;
    if (opts_.objective == CostObjective::kDepth && x.level > y.level) {
      return false;
    }
    if (soi_) {
      if (x.p_bot > y.p_bot || x.p_above > y.p_above) return false;
      if (x.par_b && !y.par_b) return false;
    }
    return true;
  }

  /// Total order on candidates: primary DP rank, then every remaining
  /// field.  Beam truncation under an unstable std::sort is therefore
  /// reproducible on any platform and thread count.
  bool cand_less(const Cand& a, const Cand& b) const {
    const auto ra = rank(a.committed, a.level, a.p_total());
    const auto rb = rank(b.committed, b.level, b.p_total());
    if (ra != rb) return ra < rb;
    return std::tie(a.level, a.p_bot, a.p_above, a.disch, a.par_b, a.has_pi,
                    a.op, a.a, a.b) <
           std::tie(b.level, b.p_bot, b.p_above, b.disch, b.par_b, b.has_pi,
                    b.op, b.a, b.b);
  }

  // --- candidate construction --------------------------------------------

  std::uint32_t push_cand(const Cand& c) {
    arena_.push_back(c);
    return static_cast<std::uint32_t>(arena_.size() - 1);
  }

  void try_or(std::vector<Cand>& out, const Cand& x, std::uint32_t xi,
              const Cand& y, std::uint32_t yi) const {
    const int w = x.w + y.w;
    const int h = std::max(x.h, y.h);
    // With complex gates, OVERSIZE parallels (Wmax < W <= 2*Wmax) are kept
    // as split fodder: they can only become a dual gate, never a single
    // pulldown or a series operand.
    if (w > grid_wmax_) return;
    Cand c;
    c.op = Cand::Op::kParallel;
    c.a = xi;
    c.b = yi;
    c.w = static_cast<std::uint8_t>(w);
    c.h = static_cast<std::uint8_t>(h);
    c.committed = x.committed + y.committed;
    c.disch = static_cast<std::uint16_t>(x.disch + y.disch);
    c.p_bot = static_cast<std::uint16_t>(x.p_total() + y.p_total());
    c.p_above = 0;
    c.par_b = true;
    c.has_pi = x.has_pi || y.has_pi;
    c.level = std::max(x.level, y.level);
    out.push_back(c);
  }

  void try_and(std::vector<Cand>& out, const Cand& top, std::uint32_t ti,
               const Cand& bottom, std::uint32_t bi) const {
    const int h = top.h + bottom.h;
    const int w = std::max(top.w, bottom.w);
    if (h > opts_.max_height) return;
    if (w > opts_.max_width) return;  // oversize parallels cannot go in series
    int commit_pts = 0;
    int carried = 0;
    if (opts_.pending_model == PendingModel::kPaperLiteral) {
      commit_pts = top.p_total() + 1;
      carried = 0;
    } else if (top.par_b) {
      commit_pts = top.p_bot + 1;  // top's parallel bottom + its interior
      carried = top.p_above;
    } else {
      commit_pts = 0;
      carried = top.p_total() + 1;  // new junction stays a series point
    }
    Cand c;
    c.op = Cand::Op::kSeries;
    c.a = ti;
    c.b = bi;
    c.w = static_cast<std::uint8_t>(w);
    c.h = static_cast<std::uint8_t>(h);
    c.committed =
        top.committed + bottom.committed + commit_pts * disch_price_;
    c.disch = static_cast<std::uint16_t>(top.disch + bottom.disch +
                                         (soi_ ? commit_pts : 0));
    c.p_bot = bottom.p_bot;
    c.p_above = static_cast<std::uint16_t>(bottom.p_above + carried);
    c.par_b = bottom.par_b;
    c.has_pi = top.has_pi || bottom.has_pi;
    c.level = std::max(top.level, bottom.level);
    out.push_back(c);
  }

  /// Intrinsic (structure-independent) total preorder on candidates used
  /// for symmetric tie-breaks: compares only costed content, never arena
  /// indices, so the comparison is invariant under node renumbering.
  static bool cand_content_less(const Cand& a, const Cand& b) {
    return std::tie(a.committed, a.level, a.w, a.h, a.p_bot, a.p_above,
                    a.disch, a.par_b, a.has_pi) <
           std::tie(b.committed, b.level, b.w, b.h, b.p_bot, b.p_above,
                    b.disch, b.par_b, b.has_pi);
  }

  /// The paper's placement heuristic: the operand whose bottom is a
  /// parallel stack goes to the bottom; when both qualify, the one with the
  /// larger p_dis (it defers more discharge transistors).  Exact p_dis
  /// ties no longer depend on fanin textual order (the old `>=` picked
  /// whichever operand happened to be fanin1): they break on intrinsic
  /// candidate content, then on arena index for fully identical
  /// candidates, where either choice costs the same.
  bool second_goes_bottom(const Cand& x, std::uint32_t xi, const Cand& y,
                          std::uint32_t yi) const {
    if (x.par_b != y.par_b) return y.par_b;
    if (x.par_b && y.par_b) {
      if (x.p_total() != y.p_total()) return y.p_total() > x.p_total();
      if (cand_content_less(y, x)) return true;
      if (cand_content_less(x, y)) return false;
      return yi < xi;
    }
    return true;  // neither: keep textual order (x top, y bottom)
  }

  /// Candidate sets usable by a parent combining over `child`, written into
  /// the caller's scratch vector (no allocation in steady state).
  void usable_set(NodeId child, std::vector<std::uint32_t>& out) const {
    out.clear();
    const NodeKind kind = net_.kind(child);
    SOIDOM_ASSERT_MSG(kind != NodeKind::kConst0 && kind != NodeKind::kConst1,
                      "constant feeding a mapped gate (should be swept)");
    if (kind == NodeKind::kPi) {
      SOIDOM_ASSERT(pi_leaf_cand_[child.value] != kNoCand);
      out.push_back(pi_leaf_cand_[child.value]);
      return;
    }
    SOIDOM_ASSERT(kind == NodeKind::kAnd || kind == NodeKind::kOr);
    if (opts_.gate_at_fanout && fanout_[child.value] > 1) {
      out.push_back(gate_leaf_cand_[child.value]);
      return;
    }
    const std::vector<std::uint32_t>& cands = node_cands_[child.value];
    out.insert(out.end(), cands.begin(), cands.end());
    out.push_back(gate_leaf_cand_[child.value]);
  }

  // --- wavefront DP -------------------------------------------------------

  /// Reusable per-worker state: the raw combination buffer and the flat
  /// Wmax x Hmax Pareto bucket grid.  Buckets keep their capacity across
  /// nodes; `touched` lists the dirty cells so clearing is O(shapes used).
  struct Scratch {
    std::vector<Cand> raw;
    std::vector<std::vector<Cand>> cells;
    std::vector<std::uint32_t> touched;
    std::vector<std::uint32_t> s0, s1;
  };

  /// One node's DP outcome, recorded by a worker and merged (in node-id
  /// order) into the global arena by the main thread.
  struct NodeDecision {
    std::uint32_t worker = 0;
    std::uint32_t begin = 0;  ///< offset into worker_out_[worker]
    std::uint32_t count = 0;  ///< surviving candidates
    std::int32_t best_local = -1;       ///< best gate: index into the range
    std::uint32_t complex_a = kNoCand;  ///< complex gate: global child pair
    std::uint32_t complex_b = kNoCand;
    std::uint32_t raw_count = 0;
    GateEval eval;
  };

  std::size_t cell_index(int w, int h) const {
    return static_cast<std::size_t>(w - 1) * grid_hmax_ +
           static_cast<std::size_t>(h - 1);
  }

  void process_wave_node(NodeId id, unsigned worker) {
    if (guard_ != nullptr) guard_->checkpoint();
    const Node& n = net_.node(id);
    Scratch& scratch = scratch_[worker];
    usable_set(n.fanin0, scratch.s0);
    usable_set(n.fanin1, scratch.s1);

    std::vector<Cand>& raw = scratch.raw;
    raw.clear();
    for (const std::uint32_t i0 : scratch.s0) {
      for (const std::uint32_t i1 : scratch.s1) {
        const Cand& c0 = arena_[i0];
        const Cand& c1 = arena_[i1];
        if (n.kind == NodeKind::kOr) {
          try_or(raw, c0, i0, c1, i1);
        } else if (opts_.engine == MappingEngine::kDominoMap) {
          // Bulk-CMOS convention (the paper's Fig. 2(a)): the parallel
          // stack sits at the TOP of the series stack, nearest the dynamic
          // node, where bulk designers place it for charge-sharing
          // reasons.  This is exactly the PBE-hostile structure the paper
          // uses as its baseline.
          if (c1.par_b && !c0.par_b) {
            try_and(raw, c1, i1, c0, i0);
          } else {
            try_and(raw, c0, i0, c1, i1);
          }
        } else if (opts_.exhaustive_ordering) {
          try_and(raw, c0, i0, c1, i1);
          try_and(raw, c1, i1, c0, i0);
        } else if (second_goes_bottom(c0, i0, c1, i1)) {
          try_and(raw, c0, i0, c1, i1);
        } else {
          try_and(raw, c1, i1, c0, i0);
        }
      }
    }
    if (raw.empty()) {
      throw GuardError(
          ErrorCode::kInfeasibleLimits, current_stage_or(FlowStage::kMap),
          format("no feasible pulldown shape for node %u under W<=%d H<=%d; "
                 "increase max_width/max_height",
                 id.value, opts_.max_width, opts_.max_height));
    }
    if (guard_ != nullptr) guard_->charge(Resource::kTuples, raw.size());

    // Per-shape Pareto pruning on the flat bucket grid.
    for (const Cand& c : raw) {
      const std::size_t cell = cell_index(c.w, c.h);
      std::vector<Cand>& bucket = scratch.cells[cell];
      if (bucket.empty()) scratch.touched.push_back(static_cast<std::uint32_t>(cell));
      bool dominated = false;
      for (const Cand& kept : bucket) {
        if (dominates(kept, c)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      std::erase_if(bucket, [&](const Cand& kept) { return dominates(c, kept); });
      bucket.push_back(c);
    }

    // Beam-cap each shape and emit survivors in canonical (W, H) order.
    NodeDecision d;
    d.worker = worker;
    d.raw_count = static_cast<std::uint32_t>(raw.size());
    std::vector<Cand>& out = worker_out_[worker];
    d.begin = static_cast<std::uint32_t>(out.size());
    std::sort(scratch.touched.begin(), scratch.touched.end());
    for (const std::uint32_t cell : scratch.touched) {
      std::vector<Cand>& bucket = scratch.cells[cell];
      std::sort(bucket.begin(), bucket.end(),
                [&](const Cand& a, const Cand& b) { return cand_less(a, b); });
      const std::size_t keep =
          std::min(bucket.size(), static_cast<std::size_t>(opts_.beam_width));
      out.insert(out.end(), bucket.begin(), bucket.begin() + keep);
      bucket.clear();
    }
    scratch.touched.clear();
    d.count = static_cast<std::uint32_t>(out.size()) - d.begin;
    const Cand* kept = out.data() + d.begin;

    // Gate formation: pick the best candidate under the objective.
    for (std::uint32_t k = 0; k < d.count; ++k) {
      const Cand& c = kept[k];
      if (c.w > opts_.max_width) continue;  // split fodder only
      const GateEval e = eval_gate(c);
      if (d.best_local < 0 ||
          rank(e.cost, e.level, c.p_total()) <
              rank(d.eval.cost, d.eval.level,
                   kept[d.best_local].p_total())) {
        d.best_local = static_cast<std::int32_t>(k);
        d.eval = e;
      }
    }
    SOIDOM_ASSERT(d.best_local >= 0);

    // Complex-gate option (paper solution 7): at an OR node, form the gate
    // from one pulldown per operand joined by a static NAND2.  Each
    // pulldown keeps its own grounded bottom; the overhead is 2 precharge
    // (clocked) + NAND2 (4) + 2 keepers + a foot per footed pulldown.
    if (opts_.enable_complex_gates && n.kind == NodeKind::kOr) {
      auto resolved = [&](const Cand& c) {
        const bool grounded = grounded_if_footed(c.has_pi);
        const int pend = soi_ && !grounded ? pending_penalty(c) : 0;
        return std::pair<std::int64_t, int>{c.committed + pend * disch_price_,
                                            c.disch + pend};
      };
      // Every parallel-rooted candidate (including the oversize ones kept
      // as split fodder) can be cut at its root into the gate's two
      // pulldowns; the halves are candidates of the *children*, so their
      // arena indices are already final.
      for (std::uint32_t k = 0; k < d.count; ++k) {
        const Cand& c = kept[k];
        if (c.op != Cand::Op::kParallel) continue;
        const Cand& a = arena_[c.a];
        const Cand& b = arena_[c.b];
        if (a.w > opts_.max_width || b.w > opts_.max_width) continue;
        const auto [cost_a, disch_a] = resolved(a);
        const auto [cost_b, disch_b] = resolved(b);
        GateEval e;
        e.disch = disch_a + disch_b;
        e.cost = cost_a + cost_b + 6 * kCostUnitsPerTransistor +
                 2 * clock_cost_ + (a.has_pi ? clock_cost_ : 0) +
                 (b.has_pi ? clock_cost_ : 0);
        e.level = std::max(a.level, b.level) + 1;
        const int pending = a.p_total() + b.p_total();
        const int incumbent_pending =
            d.complex_a == kNoCand
                ? kept[d.best_local].p_total()
                : arena_[d.complex_a].p_total() + arena_[d.complex_b].p_total();
        if (rank(e.cost, e.level, pending) <
            rank(d.eval.cost, d.eval.level, incumbent_pending)) {
          d.complex_a = c.a;
          d.complex_b = c.b;
          d.eval = e;
        }
      }
    }

    // Budget accounting: the retained candidates (plus the gate-leaf tuple
    // merged later) grow the arena for the rest of the run, so they are
    // charged in addition to the transient raw combinations above.
    if (guard_ != nullptr) {
      guard_->charge(Resource::kTuples, static_cast<std::size_t>(d.count) + 1);
    }
    decision_[id.value] = d;
  }

  /// Commit one wavefront: append every node's survivors to the global
  /// arena in ascending node-id order and finalize its gate choice.
  void merge_level(const std::vector<std::uint32_t>& wave) {
    for (const std::uint32_t idv : wave) {
      const NodeDecision& d = decision_[idv];
      const Cand* kept = worker_out_[d.worker].data() + d.begin;
      const auto base = static_cast<std::uint32_t>(arena_.size());
      std::vector<std::uint32_t>& set = node_cands_[idv];
      set.reserve(d.count);
      for (std::uint32_t k = 0; k < d.count; ++k) set.push_back(push_cand(kept[k]));
      if (d.complex_a != kNoCand) {
        gate_cand_[idv] = d.complex_a;
        gate_cand2_[idv] = d.complex_b;
      } else {
        gate_cand_[idv] = base + static_cast<std::uint32_t>(d.best_local);
        gate_cand2_[idv] = kNoCand;
      }
      gate_cost_[idv] = d.eval.cost;
      gate_level_[idv] = d.eval.level;
      candidates_examined_ += d.raw_count;

      Cand leaf;
      leaf.op = Cand::Op::kGateLeaf;
      leaf.a = idv;
      leaf.committed = d.eval.cost + kCostUnitsPerTransistor;
      leaf.level = static_cast<std::int16_t>(d.eval.level);
      gate_leaf_cand_[idv] = push_cand(leaf);
    }
  }

  // --- realization ---------------------------------------------------------

  PdnIndex build_pdn(Pdn& pdn, std::uint32_t ci) {
    const Cand& c = arena_[ci];
    switch (c.op) {
      case Cand::Op::kInputLeaf:
        return pdn.add_leaf(c.a);
      case Cand::Op::kGateLeaf:
        return pdn.add_leaf(realize_gate(NodeId{c.a}));
      case Cand::Op::kSeries: {
        const PdnIndex top = build_pdn(pdn, c.a);
        const PdnIndex bottom = build_pdn(pdn, c.b);
        return pdn.add_series({top, bottom});
      }
      case Cand::Op::kParallel: {
        const PdnIndex x = build_pdn(pdn, c.a);
        const PdnIndex y = build_pdn(pdn, c.b);
        return pdn.add_parallel({x, y});
      }
    }
    SOIDOM_ASSERT(false);
    return kInvalidPdnIndex;
  }

  std::uint32_t realize_gate(NodeId node) {
    if (gate_signal_[node.value] != kNoSignal) {
      return gate_signal_[node.value];
    }
    const std::uint32_t ci = gate_cand_[node.value];
    const std::uint32_t ci2 = gate_cand2_[node.value];
    SOIDOM_ASSERT(ci != kNoCand);
    const Cand cand = arena_[ci];  // copy: arena stable, but be explicit

    DominoGate gate;
    const PdnIndex root = build_pdn(gate.pdn, ci);
    gate.pdn.set_root(root);
    gate.footed = cand.has_pi;
    if (ci2 != kNoCand) {
      const Cand cand2 = arena_[ci2];
      const PdnIndex root2 = build_pdn(gate.pdn2, ci2);
      gate.pdn2.set_root(root2);
      gate.footed2 = cand2.has_pi;
    }

    // Cross-check footedness against the realized leaves, per pulldown.
    auto check_feet = [&](const Pdn& pdn, bool footed_flag) {
      bool has_input_leaf = false;
      for (const std::uint32_t sig : pdn.leaf_signals()) {
        if (netlist_.is_input_signal(sig)) has_input_leaf = true;
      }
      SOIDOM_ASSERT_MSG(has_input_leaf == footed_flag,
                        "DP footedness disagrees with realized leaves");
    };
    check_feet(gate.pdn, gate.footed);
    if (gate.dual()) check_feet(gate.pdn2, gate.footed2);

    if (soi_) {
      auto protect = [&](const Pdn& pdn, bool footed_flag,
                         const Cand& c) -> std::vector<DischargePoint> {
        const bool grounded = grounded_if_footed(footed_flag);
        auto required =
            analyze_pbe(pdn, grounded, opts_.pending_model).required;
        const int predicted = c.disch + (grounded ? 0 : pending_penalty(c));
        if (static_cast<int>(required.size()) != predicted) ++mismatches_;
        return required;
      };
      gate.discharges = protect(gate.pdn, gate.footed, cand);
      if (gate.dual()) {
        gate.discharges2 = protect(gate.pdn2, gate.footed2, arena_[ci2]);
      }
    }
    const std::uint32_t signal = netlist_.add_gate(std::move(gate));
    gate_signal_[node.value] = signal;
    return signal;
  }

  std::int64_t realized_weighted_cost() const {
    std::int64_t cost = 0;
    for (const DominoGate& g : netlist_.gates()) {
      cost += g.pdn.transistor_count() * kCostUnitsPerTransistor;
      if (g.dual()) {
        cost += g.pdn2.transistor_count() * kCostUnitsPerTransistor;
        cost += 6 * kCostUnitsPerTransistor;  // NAND2 + two keepers
        cost += 2 * clock_cost_;              // two precharges
        if (g.footed) cost += clock_cost_;
        if (g.footed2) cost += clock_cost_;
      } else {
        cost += 3 * kCostUnitsPerTransistor;  // inverter + keeper
        cost += clock_cost_;                  // precharge
        if (g.footed) cost += clock_cost_;
      }
      cost += static_cast<std::int64_t>(g.discharges.size() +
                                        g.discharges2.size()) *
              clock_cost_;
    }
    return cost;
  }

  const UnateResult& unate_;
  const Network& net_;
  MapperOptions opts_;
  std::int64_t clock_cost_ = kCostUnitsPerTransistor;
  std::int64_t disch_price_ = kCostUnitsPerTransistor;
  bool soi_ = true;
  int grid_wmax_ = 5;
  int grid_hmax_ = 8;
  bool dp_done_ = false;
  bool ran_ = false;

  GuardContext* guard_ = nullptr;  ///< owning flow's guard, shared by workers

  std::vector<Cand> arena_;
  std::vector<std::vector<std::uint32_t>> node_cands_;
  std::vector<std::uint32_t> pi_leaf_cand_;
  std::vector<std::uint32_t> gate_cand_;
  std::vector<std::uint32_t> gate_cand2_;  ///< second pulldown (complex gates)
  std::vector<std::uint32_t> gate_leaf_cand_;
  std::vector<std::int64_t> gate_cost_;
  std::vector<int> gate_level_;
  std::vector<std::uint32_t> input_signal_;
  std::vector<std::uint32_t> fanout_;

  std::vector<Scratch> scratch_;             // per worker
  std::vector<std::vector<Cand>> worker_out_;  // per worker, per level
  std::vector<NodeDecision> decision_;       // per node
  std::size_t candidates_examined_ = 0;
  int dp_levels_ = 0;

  DominoNetlist netlist_;
  MappingResult result_;
  std::vector<std::uint32_t> gate_signal_;
  int mismatches_ = 0;
};

}  // namespace

void validate(const MapperOptions& options) {
  SOIDOM_REQUIRE(options.max_width >= 1 && options.max_width <= 64,
                 format("MapperOptions.max_width = %d is invalid "
                        "(need 1 <= max_width <= 64)",
                        options.max_width));
  SOIDOM_REQUIRE(options.max_height >= 2 && options.max_height <= 64,
                 format("MapperOptions.max_height = %d is invalid "
                        "(need 2 <= max_height <= 64)",
                        options.max_height));
  SOIDOM_REQUIRE(options.beam_width >= 1,
                 format("MapperOptions.beam_width = %d is invalid "
                        "(need beam_width >= 1)",
                        options.beam_width));
  SOIDOM_REQUIRE(
      std::isfinite(options.clock_weight) && options.clock_weight > 0.0 &&
          options.clock_weight <= 1000.0,
      format("MapperOptions.clock_weight = %g is invalid "
             "(need finite 0 < clock_weight <= 1000)",
             options.clock_weight));
  SOIDOM_REQUIRE(options.num_threads >= 0 && options.num_threads <= 256,
                 format("MapperOptions.num_threads = %d is invalid "
                        "(need 0 <= num_threads <= 256; 0 = auto)",
                        options.num_threads));
}

MappingResult map_to_domino(const UnateResult& unate,
                            const MapperOptions& options) {
  StageScope stage(FlowStage::kMap);
  SOIDOM_FAULT_PROBE(FlowStage::kMap);
  return MapperImpl(unate, options).run();
}

struct TupleOracle::Impl {
  explicit Impl(const UnateResult& unate, const MapperOptions& options)
      : mapper(unate, options) {}
  MapperImpl mapper;
};

TupleOracle::TupleOracle(const UnateResult& unate, const MapperOptions& options)
    : impl_(new Impl(unate, options)) {}

TupleOracle::~TupleOracle() { delete impl_; }

std::vector<TupleInfo> TupleOracle::tuples_of(NodeId node) const {
  return impl_->mapper.tuples_of(node);
}

std::int64_t TupleOracle::gate_cost_of(NodeId node) const {
  return impl_->mapper.gate_cost_of(node);
}

MappingResult TupleOracle::map() const {
  StageScope stage(FlowStage::kMap);
  return impl_->mapper.run();
}

}  // namespace soidom
