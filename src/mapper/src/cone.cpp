#include "soidom/mapper/cone.hpp"

#include "soidom/base/hash.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/domino/serialize.hpp"

namespace soidom {
namespace {

const char* engine_name(MappingEngine engine) {
  switch (engine) {
    case MappingEngine::kDominoMap: return "domino";
    case MappingEngine::kSoiDominoMap: return "soi";
  }
  return "unknown";
}

const char* objective_name(CostObjective objective) {
  switch (objective) {
    case CostObjective::kArea: return "area";
    case CostObjective::kDepth: return "depth";
  }
  return "unknown";
}

const char* grounding_name(GroundingPolicy policy) {
  switch (policy) {
    case GroundingPolicy::kFootlessGrounded: return "footless";
    case GroundingPolicy::kAllGrounded: return "all";
    case GroundingPolicy::kNoneGrounded: return "none";
  }
  return "unknown";
}

const char* pending_name(PendingModel model) {
  switch (model) {
    case PendingModel::kCoherent: return "coherent";
    case PendingModel::kPaperLiteral: return "paper";
  }
  return "unknown";
}

const char* kind_code(NodeKind kind) {
  switch (kind) {
    case NodeKind::kConst0: return "c0";
    case NodeKind::kConst1: return "c1";
    case NodeKind::kPi: return "pi";
    case NodeKind::kAnd: return "and";
    case NodeKind::kOr: return "or";
    case NodeKind::kInv: return "inv";
    case NodeKind::kBuf: return "buf";
  }
  return "?";
}

}  // namespace

std::string mapper_fingerprint(const MapperOptions& options) {
  // %.17g round-trips every double, so two clock weights fingerprint
  // equal iff they are bit-equal.
  return format(
      "engine=%s objective=%s wmax=%d hmax=%d k=%.17g grounding=%s "
      "pending=%s exhaustive=%d beam=%d complex=%d fanout_gate=%d",
      engine_name(options.engine), objective_name(options.objective),
      options.max_width, options.max_height, options.clock_weight,
      grounding_name(options.grounding), pending_name(options.pending_model),
      options.exhaustive_ordering ? 1 : 0, options.beam_width,
      options.enable_complex_gates ? 1 : 0, options.gate_at_fanout ? 1 : 0);
}

ConeKey cone_key(const UnateResult& unate, const MapperOptions& options) {
  const Network& net = unate.net;
  std::string text;
  text.reserve(64 + net.size() * 16);
  text += "soidom-cone-1\n";
  text += "opts ";
  text += mapper_fingerprint(options);
  text += '\n';
  text += format("net %zu\n", net.size());
  // Constants occupy fixed slots 0/1 in every network; serializing them
  // anyway keeps the record self-describing.
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    const Node& node = net.node(NodeId{i});
    text += format("n %u %s", i, kind_code(node.kind));
    if (node.fanin_count() >= 1) text += format(" %u", node.fanin0.value);
    if (node.fanin_count() >= 2) text += format(" %u", node.fanin1.value);
    text += '\n';
  }
  for (std::size_t i = 0; i < net.pis().size(); ++i) {
    text += format("pi %zu %u \"%s\"\n", i, net.pis()[i].value,
                   json_escape(net.pi_name(net.pis()[i])).c_str());
  }
  for (std::size_t i = 0; i < unate.pi_literals.size(); ++i) {
    text += format("lit %zu %d %d\n", i, unate.pi_literals[i].pos,
                   unate.pi_literals[i].neg);
  }
  for (std::size_t i = 0; i < net.outputs().size(); ++i) {
    const Output& out = net.outputs()[i];
    text += format("out %zu %u \"%s\" %d\n", i, out.driver.value,
                   json_escape(out.name).c_str(),
                   i < unate.po_inverted.size() && unate.po_inverted[i] ? 1
                                                                       : 0);
  }
  ConeKey key;
  key.hash = fnv1a64(text);
  key.text = std::move(text);
  return key;
}

CachedMapping cached_from_mapping(const MappingResult& mapped) {
  CachedMapping value;
  value.dnl = write_dnl(mapped.netlist);
  value.predicted_cost = mapped.predicted_cost;
  value.dp_analyzer_mismatches = mapped.dp_analyzer_mismatches;
  return value;
}

MappingResult mapping_from_cached(const CachedMapping& value) {
  MappingResult mapped;
  mapped.netlist = parse_dnl(value.dnl);  // throws on malformed payload
  mapped.predicted_cost = value.predicted_cost;
  mapped.dp_analyzer_mismatches = value.dp_analyzer_mismatches;
  return mapped;
}

}  // namespace soidom
