/// \file options.hpp
/// Configuration of the dynamic-programming technology mapper.
#pragma once

#include <cstdint>

#include "soidom/domino/netlist.hpp"
#include "soidom/pdn/analyze.hpp"

namespace soidom {

/// Which mapping algorithm to run.
enum class MappingEngine : std::uint8_t {
  /// The bulk-CMOS mapper of Zhao & Sapatnekar (ICCAD'98): PBE-blind; the
  /// caller adds discharge transistors with insert_discharges() (and
  /// optionally rearrange_stacks() for the paper's RS_Map variant).
  kDominoMap,
  /// The paper's SOI_Domino_Map: discharge transistors are part of the DP
  /// cost, stack ordering and gate formation are PBE-aware.
  kSoiDominoMap,
};

/// Primary optimization objective.
enum class CostObjective : std::uint8_t {
  kArea,   ///< weighted transistor count
  kDepth,  ///< domino-gate levels first, transistor count second
};

struct MapperOptions {
  /// Pulldown shape limits; the paper evaluates with W<=5, H<=8.
  int max_width = 5;
  int max_height = 8;

  MappingEngine engine = MappingEngine::kSoiDominoMap;
  CostObjective objective = CostObjective::kArea;

  /// Cost multiplier k for clock-connected transistors (precharge, foot,
  /// discharge) — Table III's experiment.  1.0 = plain transistor count.
  double clock_weight = 1.0;

  /// Default kAllGrounded: the clocked foot transistor conducts in every
  /// evaluate phase, discharging the node above it each cycle, so a footed
  /// gate's pulldown bottom is as safe as a direct ground connection.
  /// This matches the paper's reasoning (its transformation 4 reorders
  /// stacks inside clocked gates and declares the PBE impossible) and is
  /// required to reproduce its tables; the stricter policies are ablations.
  GroundingPolicy grounding = GroundingPolicy::kAllGrounded;
  PendingModel pending_model = PendingModel::kCoherent;

  /// true: try both operand orders in every series combination (subsumes
  /// the paper's par_b / p_dis placement heuristic); false: apply the
  /// paper's heuristic only (ablation).
  bool exhaustive_ordering = true;

  /// Max Pareto candidates retained per {W,H} shape (quality/memory knob).
  int beam_width = 4;

  /// Allow complex domino gates (the paper's solution 7): at OR nodes the
  /// gate may be formed from TWO pulldowns combined by a static NAND2
  /// instead of one pulldown and an inverter, splitting wide parallel
  /// trees (effective width up to 2 x max_width) with each stack bottom
  /// separately grounded.  Off by default to match the paper's tables.
  bool enable_complex_gates = false;

  /// Nodes with fanout > 1 always form gates.  When false (ablation), the
  /// DP may instead duplicate such cones into each fanout.
  bool gate_at_fanout = true;

  /// Worker threads for the task-graph DP scheduler (a node becomes ready
  /// the moment its fanins are mapped; no level barriers).  0 = hardware
  /// concurrency (default); 1 = fully sequential.  The mapped netlist and
  /// every cost are bit-identical for every thread count: candidate
  /// references are schedule-independent (level, node, local) keys, so no
  /// tie-break can observe the execution order.
  int num_threads = 0;

  /// Requests above hardware concurrency are clamped to it and reported
  /// as a structured Diagnostic in MappingResult::warnings — unless this
  /// is set, in which case the requested worker count is spawned anyway
  /// (determinism tests and benchmarks oversubscribe deliberately).
  bool oversubscribe = false;

  /// Scheduler task grain: target node count per task after fanout-cone
  /// chunking.  0 = auto (derived from node and thread count so small
  /// circuits get few, fat tasks and large ones enough slack to steal).
  int task_grain = 0;

  /// Below this many AND/OR nodes the DP skips the scheduler entirely and
  /// maps inline on the calling thread — scheduling overhead can only
  /// lose on small circuits.  0 disables the cutoff (tests force the
  /// parallel path with it).
  int serial_cutoff = 4096;
};

/// Validate every knob up front; throws soidom::Error with a message
/// naming the offending field and its value (so bad knobs never surface
/// as deep DP assertions).  Called by map_to_domino and validate(FlowOptions).
void validate(const MapperOptions& options);

}  // namespace soidom
