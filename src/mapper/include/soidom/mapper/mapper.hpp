/// \file mapper.hpp
/// The dynamic-programming technology mapper (paper sections IV and V).
///
/// The mapper consumes a unate 2-input AND/OR network (unate/unate.hpp)
/// and produces a transistor-level DominoNetlist.  Every network node owns
/// a set of *tuples*: partial pulldown structures keyed by shape {W,H}
/// (paper: width/height of the pulldown network), each carrying
///
///   committed  — weighted cost already spent (logic transistors, gate
///                overheads of absorbed sub-gates, committed discharge
///                transistors),
///   p_bot      — pending discharge points owned by the structure's bottom
///                parallel stack (commit when the bottom leaves ground),
///   p_above    — pending series junctions higher up (commit only in an
///                unfavourable OR/stacking context),
///   par_b      — whether the bottom of the structure is a parallel stack,
///   has_pi     — whether any leaf is a primary-input literal (footedness),
///   level      — domino-gate depth for the kDepth objective.
///
/// combine_or / combine_and implement the paper's tuple algebra with the
/// PBE bookkeeping of DESIGN.md section 2; per shape a small Pareto set is
/// retained (the paper's "two costs per tuple" generalized).  Forming a
/// gate ({1,1} tuple) resolves pending points against the gate's grounding
/// and adds the domino overhead (+4, or +5 when footed).
#pragma once

#include <cstdint>
#include <vector>

#include "soidom/domino/netlist.hpp"
#include "soidom/guard/diagnostic.hpp"
#include "soidom/mapper/options.hpp"
#include "soidom/network/network.hpp"
#include "soidom/unate/unate.hpp"

namespace soidom {

/// Cost bookkeeping uses fixed-point "centi-transistor" units so that
/// fractional clock weights stay exact in integer arithmetic.
inline constexpr std::int64_t kCostUnitsPerTransistor = 100;

/// One DP tuple, exposed for tests / the worked-example benchmark.
struct TupleInfo {
  int width = 0;
  int height = 0;
  std::int64_t committed = 0;  ///< centi-transistor units
  int p_bot = 0;
  int p_above = 0;
  bool par_b = false;
  bool has_pi = false;
  int level = 0;
  int disch_committed = 0;  ///< committed discharge transistor count

  /// Total pending discharge points.
  int p_dis() const { return p_bot + p_above; }
  /// committed in whole transistors (exact when clock_weight == 1).
  std::int64_t cost_transistors() const {
    return committed / kCostUnitsPerTransistor;
  }
};

/// Mapper output.
struct MappingResult {
  DominoNetlist netlist;
  /// Gates whose realized PBE-analysis discharge count differed from the
  /// DP prediction (must be 0; exported for property tests).
  int dp_analyzer_mismatches = 0;
  /// DP-predicted weighted cost of the whole implementation.
  std::int64_t predicted_cost = 0;

  /// Non-fatal conditions (currently: a num_threads request clamped to
  /// hardware concurrency).  The flow facade copies these into
  /// FlowOutcome::warnings.
  std::vector<Diagnostic> warnings;

  // --- DP effort counters (perf trajectory; see bench/perf_mapper) ------
  /// Raw candidates examined before Pareto pruning.
  std::size_t candidates_examined = 0;
  /// Candidates retained across all per-node survivor sets and leaves
  /// (peak == final: survivor sets only grow).
  std::size_t candidates_retained = 0;
  /// Distinct topological levels among mapped nodes (depth of the DP).
  int dp_levels = 0;
  /// Scheduler tasks the DP graph was chunked into (0 = inline serial
  /// path: below MapperOptions::serial_cutoff or num_threads == 1).
  int dp_tasks = 0;
  /// Effective fanout-cone chunking grain (nodes per task target).
  int dp_grain = 0;
  /// Worker threads actually used after auto-resolution and clamping.
  int threads_used = 1;
};

/// Run the mapper.  Throws soidom::Error when the unate network is not
/// inverter-free or the shape limits are infeasible (max_height < 2).
MappingResult map_to_domino(const UnateResult& unate,
                            const MapperOptions& options = {});

/// Introspection interface used by unit tests and the Fig. 3 worked
/// example: runs the DP only and exposes per-node tuple sets.
class TupleOracle {
 public:
  TupleOracle(const UnateResult& unate, const MapperOptions& options);
  ~TupleOracle();
  TupleOracle(const TupleOracle&) = delete;
  TupleOracle& operator=(const TupleOracle&) = delete;

  /// All surviving tuples of `node` (AND/OR nodes only), including the
  /// formed-gate tuple, sorted by (W, H, committed).
  std::vector<TupleInfo> tuples_of(NodeId node) const;

  /// The formed-gate ({1,1}) cost of `node` in centi-transistor units.
  std::int64_t gate_cost_of(NodeId node) const;

  /// Realize the full netlist from this oracle's DP state.  The result is
  /// memoized: repeated calls return the identical MappingResult (no
  /// silent empty netlist on re-entry), and tuples_of/gate_cost_of remain
  /// valid after mapping.
  MappingResult map() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace soidom
