/// \file cone.hpp
/// Content addressing for mapper inputs, and the cone-cache seam the
/// guarded flow consults before running the DP (docs/SERVE.md).
///
/// The cache key is an *exact canonical serialization* of everything the
/// mapper's output depends on: the unate cone (nodes in topological id
/// order, PI literal bindings, output phases) plus a fingerprint of the
/// result-affecting MapperOptions knobs ({Wmax, Hmax, k}, engine,
/// objective, grounding, ...).  Scheduling knobs (num_threads,
/// oversubscribe, task_grain, serial_cutoff) are deliberately excluded:
/// the task-graph DP produces bit-identical netlists for every thread
/// count and grain (bench/perf_mapper enforces this), so they cannot
/// affect the value.
///
/// Hashes are used only for sharding and indexing.  A cache lookup
/// compares the full key text, so a hash collision degrades to a miss —
/// never to a wrong mapping.  This is the load-bearing byte-identity
/// guarantee: two jobs share a cache slot only when the mapper would have
/// been handed byte-identical input, hence would have produced a
/// byte-identical netlist.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "soidom/mapper/mapper.hpp"
#include "soidom/mapper/options.hpp"
#include "soidom/unate/unate.hpp"

namespace soidom {

/// A content address: the canonical key text and its 64-bit hash.
struct ConeKey {
  std::string text;        ///< canonical serialization (schema-versioned)
  std::uint64_t hash = 0;  ///< fnv1a64(text); sharding/indexing only

  friend bool operator==(const ConeKey& a, const ConeKey& b) {
    return a.hash == b.hash && a.text == b.text;
  }
};

/// The result-affecting MapperOptions knobs as one stable line, e.g.
/// "engine=soi objective=area wmax=5 hmax=8 k=1 ...".  Part of the key.
std::string mapper_fingerprint(const MapperOptions& options);

/// Build the content address for mapping `unate` under `options`.
ConeKey cone_key(const UnateResult& unate, const MapperOptions& options);

/// A cached mapping: the .dnl serialization of the mapped netlist plus
/// the DP bookkeeping the flow report needs.  Effort counters
/// (candidates examined, scheduler shape) are not cached — they describe
/// the run that produced the value, not the value, and no report surface
/// that feeds a manifest includes them.
struct CachedMapping {
  std::string dnl;
  std::int64_t predicted_cost = 0;
  int dp_analyzer_mismatches = 0;
};

/// Encode a fresh mapping for the cache.
CachedMapping cached_from_mapping(const MappingResult& mapped);

/// Reconstruct a MappingResult from a cache hit.  Throws soidom::Error on
/// a malformed .dnl payload; callers must treat that as a miss and
/// recompute (crash-only: a corrupt cache entry never surfaces as a wrong
/// answer or a crash).
MappingResult mapping_from_cached(const CachedMapping& value);

/// The cache interface the flow consults at the kMap stage.  Implemented
/// by serve::ConeCache (sharded LRU + spill journal); tests plug in toy
/// implementations.  Implementations must be safe for concurrent calls.
class MapConeCache {
 public:
  virtual ~MapConeCache() = default;

  /// The cached value for `key`, or nullopt.  Implementations compare the
  /// full key text, not just the hash.
  virtual std::optional<CachedMapping> lookup(const ConeKey& key) = 0;

  /// Insert (or refresh) `key` -> `value`.
  virtual void store(const ConeKey& key, const CachedMapping& value) = 0;
};

}  // namespace soidom
