#include "soidom/power/power.hpp"

#include "soidom/base/contracts.hpp"

namespace soidom {
namespace {

double node_probability(const Pdn& pdn, PdnIndex i,
                        const std::vector<double>& p) {
  const PdnNode& n = pdn.node(i);
  switch (n.kind) {
    case PdnKind::kLeaf:
      SOIDOM_ASSERT(n.signal < p.size());
      return p[n.signal];
    case PdnKind::kSeries: {
      double prob = 1.0;
      for (const PdnIndex c : n.children) {
        prob *= node_probability(pdn, c, p);
      }
      return prob;
    }
    case PdnKind::kParallel: {
      double off = 1.0;
      for (const PdnIndex c : n.children) {
        off *= 1.0 - node_probability(pdn, c, p);
      }
      return 1.0 - off;
    }
  }
  return 0.0;
}

}  // namespace

double conduction_probability(const Pdn& pdn,
                              const std::vector<double>& signal_probability) {
  SOIDOM_REQUIRE(!pdn.empty(), "conduction_probability: empty PDN");
  return node_probability(pdn, pdn.root(), signal_probability);
}

PowerReport estimate_power(const DominoNetlist& netlist,
                           const PowerModel& model,
                           const std::vector<double>& pi_one_probability) {
  PowerReport report;

  // Signal 1-probabilities: literals first, then gate outputs in order.
  std::vector<double> p(netlist.num_inputs() + netlist.gates().size(), 0.5);
  for (std::size_t k = 0; k < netlist.num_inputs(); ++k) {
    const InputLiteral& in = netlist.inputs()[k];
    double base = 0.5;
    if (!pi_one_probability.empty()) {
      SOIDOM_REQUIRE(in.source_pi >= 0 &&
                         static_cast<std::size_t>(in.source_pi) <
                             pi_one_probability.size(),
                     "estimate_power: probability vector too short");
      base = pi_one_probability[static_cast<std::size_t>(in.source_pi)];
    }
    p[k] = in.negated ? 1.0 - base : base;
  }

  report.evaluate_probability.reserve(netlist.gates().size());
  for (std::size_t g = 0; g < netlist.gates().size(); ++g) {
    const DominoGate& gate = netlist.gates()[g];
    double evaluate = conduction_probability(gate.pdn, p);
    if (gate.dual()) {
      const double second = conduction_probability(gate.pdn2, p);
      evaluate = 1.0 - (1.0 - evaluate) * (1.0 - second);
    }
    p[netlist.num_inputs() + g] = evaluate;
    report.evaluate_probability.push_back(evaluate);

    // Clock devices toggle every cycle regardless of data.
    report.clock_energy +=
        model.clock_cap_per_transistor * gate.clock_transistors();

    // The dynamic node + output swing only on evaluating cycles.
    const double node_cap =
        model.node_cap_per_transistor *
            (gate.pdn.transistor_count() +
             (gate.dual() ? gate.pdn2.transistor_count() : 0)) +
        model.inverter_cap * (gate.dual() ? 2.0 : 1.0);
    report.logic_energy += evaluate * node_cap;

    // Pulldown inputs toggle when their driving signal rises (probability
    // = P(signal is 1), since domino signals reset low every precharge).
    for (const std::uint32_t sig : gate.all_leaf_signals()) {
      report.input_energy += model.input_cap_per_transistor * p[sig];
    }
  }
  return report;
}

}  // namespace soidom
