/// \file power.hpp
/// Dynamic-power estimation for domino netlists.
///
/// Why this exists: the paper's Table III penalizes clock-connected
/// transistors because every one of them switches EVERY cycle — the clock
/// network is the dominant, activity-independent power term in domino
/// logic, and discharge transistors add straight to it.  This module turns
/// the transistor counts into an energy estimate so the k-weighting
/// experiment can be read in physical units:
///
///  * clock power   — precharge pMOS, n-clock feet and p-discharge devices
///    toggle twice per cycle unconditionally (gate capacitance x Vdd^2 x f);
///  * logic power   — the dynamic node and output toggle only when the
///    gate evaluates to 1 and is then precharged back; the probability is
///    computed exactly per gate by propagating signal probabilities
///    through the netlist (inputs independent and uniform by default, an
///    explicit probability vector otherwise);
///  * input power   — pulldown gate terminals switch when their driving
///    literal rises, weighted by device width if a sizing is given.
///
/// Units are normalized: capacitance in unit-transistor gate caps, energy
/// in (unit cap) x Vdd^2, so comparisons between flows are exact while no
/// technology data is needed.
#pragma once

#include <vector>

#include "soidom/domino/netlist.hpp"

namespace soidom {

struct PowerModel {
  double clock_cap_per_transistor = 1.0;  ///< precharge/foot/discharge gate cap
  double node_cap_per_transistor = 0.6;   ///< dynamic-node diffusion cap
  double inverter_cap = 2.0;              ///< output inverter + wire
  double input_cap_per_transistor = 1.0;  ///< pulldown gate terminal
};

struct PowerReport {
  double clock_energy = 0.0;   ///< per cycle, activity-independent
  double logic_energy = 0.0;   ///< per cycle, expected value
  double input_energy = 0.0;   ///< per cycle, expected value
  /// Per-gate probability that the gate evaluates to 1 (discharges).
  std::vector<double> evaluate_probability;

  double total() const { return clock_energy + logic_energy + input_energy; }
};

/// Estimate per-cycle dynamic energy.  `pi_one_probability[k]` is the
/// probability that source primary input k is 1; empty means 0.5 for all.
PowerReport estimate_power(const DominoNetlist& netlist,
                           const PowerModel& model = {},
                           const std::vector<double>& pi_one_probability = {});

/// Exact probability that a pulldown conducts, given per-signal
/// 1-probabilities (treats distinct signals as independent; exact for
/// trees without repeated signals, which is what the mapper produces
/// within a gate except through shared sub-gates).
double conduction_probability(const Pdn& pdn,
                              const std::vector<double>& signal_probability);

}  // namespace soidom
