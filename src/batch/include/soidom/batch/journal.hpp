/// \file journal.hpp
/// Crash-safe run journal for the batch flow runner.
///
/// The journal is an append-only JSONL file: one self-contained JSON
/// object per line, appended with a single write(2) plus fsync
/// (base/fileio.hpp AppendFile), so a SIGKILL at any instant tears at
/// most the final line.  The loader ignores a trailing partial line and
/// any record type it does not recognize, which makes the format
/// forward-extensible.
///
/// Record types (docs/BATCH.md has the full field tables):
///
///   {"type":"batch", ...}    informational run header
///   {"type":"attempt", ...}  one attempt of one job (ladder step, outcome)
///   {"type":"done", ...}     terminal state of one job — the records
///                            --resume and the manifest are built from
///
/// Since schema 2 the header carries "schema":2 and every record ends
/// with a "crc" field: the CRC-32 (base/hash.hpp) of the line text up to
/// that field.  The loader verifies checksums wherever they appear, so a
/// record torn *mid-line* by a crash (not just at the end) or corrupted
/// at rest is detected, skipped, and reported as a structured warning —
/// it can no longer be half-parsed into a bogus terminal state.  Journals
/// written before schema 2 (no header schema, no crc fields) still load;
/// they just keep the weaker ignore-unparsable-lines behavior.
///
/// Wall-clock timings ("ms") appear only in the journal, never in the
/// manifest: the manifest is a pure function of the deterministic job
/// outcomes, so an interrupted-then-resumed run produces a manifest
/// byte-identical to an uninterrupted one.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "soidom/guard/diagnostic.hpp"

namespace soidom {

/// Terminal state of one batch job.
enum class JobStatus : std::uint8_t {
  kOk,           ///< a ladder attempt produced a verified mapping
  kFailed,       ///< deterministic failure (parse error, bad options, ...)
  kQuarantined,  ///< crash / hang / injected-fault class after the retry
                 ///< budget; the job is set aside, the batch continues
};

const char* job_status_name(JobStatus status);

/// One attempt of one job, as recorded in the journal.
struct AttemptRecord {
  int attempt = 1;            ///< 1-based
  std::string ladder;         ///< degradation-ladder step name
  bool ok = false;
  std::optional<Diagnostic> diagnostic;  ///< set when !ok
  double ms = 0.0;            ///< journal-only (nondeterministic)
};

/// Terminal record of one job: everything the manifest needs, all of it
/// deterministic except `ms`.
struct JobRecord {
  std::string job;            ///< circuit name or BLIF path (unique key)
  JobStatus status = JobStatus::kFailed;
  int attempts = 0;           ///< attempts consumed
  std::string ladder;         ///< ladder step of the final attempt
  std::string code;           ///< error_code_name of the final diagnostic
  std::string stage;          ///< flow_stage_name of the final diagnostic
  std::string message;        ///< final diagnostic message ("" when ok)
  std::string summary;        ///< summarize(FlowResult) ("" when failed)
  int lint_errors = 0;
  int lint_warnings = 0;
  /// Waiver-respecting error/warning counts from the optional analyzer
  /// stages (CSA + race), so journal / resumed-manifest consumers see
  /// analyzer findings without re-running the flow.
  int analyzer_errors = 0;
  int analyzer_warnings = 0;
  /// Proof-tier verdict counts (FlowOptions::prove runs).  All zero when
  /// the flow ran without the prove stage.  Deterministic: the proof
  /// statuses are byte-identical across thread counts and --resume.
  int prove_confirmed = 0;
  int prove_refuted = 0;
  int prove_unknown = 0;
  double ms = 0.0;            ///< journal-only (nondeterministic)
};

/// Append-side handle.  Every append goes through the kBatchJournal
/// fault probe; an injected (or real) journal-write failure throws and
/// the runner aborts the batch cleanly — better to stop than to run
/// jobs whose completion cannot be recorded.
class RunJournal {
 public:
  /// Opens `path` for appending, creating it if needed.
  explicit RunJournal(const std::string& path, bool durable = true);
  ~RunJournal();

  void append_header(std::size_t num_jobs, bool isolate, int max_attempts);
  void append_attempt(const std::string& job, const AttemptRecord& attempt);
  void append_done(const JobRecord& record);

  const std::string& path() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The current journal schema version written by RunJournal.
inline constexpr int kJournalSchema = 2;

/// Result of a checked journal load: the terminal records plus
/// structured warnings for every record the loader had to skip
/// (CRC mismatch, or a missing checksum in a schema>=2 journal).
struct JournalLoad {
  std::map<std::string, JobRecord> records;
  std::vector<Diagnostic> warnings;  ///< one per skipped record
  int schema = 1;                    ///< from the latest run header
  int corrupt_records = 0;           ///< lines skipped for integrity
};

/// Parse the terminal ("done") records of a journal file; the last
/// record per job wins.  A missing file yields an empty map.  Records
/// with checksums are verified; a corrupt or (in a schema>=2 journal)
/// torn record is skipped and reported in `warnings` instead of being
/// half-parsed or silently dropped.
JournalLoad load_journal_checked(const std::string& path);

/// Records-only convenience wrapper around load_journal_checked.
std::map<std::string, JobRecord> load_journal(const std::string& path);

/// The deterministic fields of one "done" record / manifest entry, as a
/// brace-less JSON fragment.  Shared by the journal, the manifest, and
/// the serve wire protocol (serve/protocol.hpp) so a record round-trips
/// byte-identically across all three surfaces.
std::string job_record_fields_json(const JobRecord& r);

/// Inverse of job_record_fields_json over a flat JSON line.  Returns
/// false when the mandatory job/status fields are missing or invalid.
bool parse_job_record_fields(std::string_view line, JobRecord* out);

/// Render the deterministic merged manifest for `records` (sorted by
/// job key; "ms" excluded).
std::string manifest_json(const std::map<std::string, JobRecord>& records);

/// Write manifest_json atomically to `path` (write-temp-fsync-rename).
void write_manifest(const std::map<std::string, JobRecord>& records,
                    const std::string& path);

}  // namespace soidom
