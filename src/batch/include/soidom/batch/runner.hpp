/// \file runner.hpp
/// Resilient multi-circuit batch runner over the guarded flow.
///
/// Every front end so far maps one circuit in-process; a single hang,
/// BDD blow-up, or crash loses the whole run.  run_batch schedules many
/// run_flow_guarded jobs over a base/parallel.hpp ThreadPool and makes
/// the campaign survive the misbehavior of any one of them:
///
///  * watchdog  — a dedicated thread cancels (via CancelToken) any job
///    that exceeds its wall-clock budget, and propagates SIGINT/SIGTERM
///    to every in-flight job;
///  * retries   — failed attempts back off exponentially with seeded,
///    deterministic jitter and walk an explicit degradation ladder
///    (drop exact BDD equivalence -> shrink verify rounds -> relax
///    Wmax/Hmax -> single-thread mapper), every step recorded;
///  * isolation — opt-in: each attempt forks into a subprocess, so a
///    segfault or runaway loop is contained and the job quarantined
///    instead of killing the batch;
///  * journal   — every attempt and terminal state is appended to a
///    crash-safe JSONL journal (journal.hpp); --resume skips completed
///    jobs and the merged manifest is byte-identical to an
///    uninterrupted run.
///
/// Determinism: job outcomes never depend on scheduling.  Backoff
/// jitter and fault-injection streams are seeded per (job, attempt),
/// and the manifest excludes wall-clock fields, so any interleaving of
/// workers — or a kill + resume — converges to the same bytes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "soidom/batch/journal.hpp"
#include "soidom/core/flow.hpp"

namespace soidom {

/// One unit of work.  `name` is the unique journal key.  When
/// `blif_path` is empty the name is looked up in the benchmark registry
/// (benchgen/registry.hpp); otherwise the BLIF file is parsed.
struct BatchJob {
  std::string name;
  std::string blif_path;
};

/// Exponential backoff with deterministic jitter.  The delay before
/// retry n (n >= 2) is  base * factor^(n-2) * u  with u drawn uniformly
/// from [0.5, 1.0) out of a stream seeded by (jitter_seed, job name,
/// n), so reruns reproduce the same schedule.
struct RetryPolicy {
  int max_attempts = 3;        ///< total attempts per job (>= 1)
  int backoff_base_ms = 0;     ///< 0 disables the backoff sleep
  double backoff_factor = 2.0;
  std::uint64_t jitter_seed = 0xB0FF;
};

/// Degradation-ladder steps, cumulative: step n applies every override
/// of the steps before it.  Attempt 1 runs kFull; each retry escalates
/// one step and stays at kSingleThread once reached.
enum class LadderStep : std::uint8_t {
  kFull,          ///< the caller's FlowOptions verbatim
  kDropExact,     ///< exact_equivalence = false
  kShrinkVerify,  ///< verify_rounds clamped to 2
  kShrinkCsa,     ///< csa_options.max_states clamped to 256 (the CSA
                  ///< bound degrades to its truncation fallback sooner)
  kShrinkRace,    ///< race_options windows unconstrained (t_eval/t_pre
                  ///< = 0: the structural race rules still run, the
                  ///< window-dependent ones are dropped)
  kRelaxLimits,   ///< Wmax/Hmax doubled (capped at 64), like the
                  ///< guarded flow's infeasible-limit retry
  kSingleThread,  ///< mapper.num_threads = 1
};

const char* ladder_step_name(LadderStep step);

/// The ladder step attempt `attempt` (1-based) runs at.
LadderStep ladder_step_for_attempt(int attempt);

/// Apply `step` (and all prior steps) to a copy of the base options.
FlowOptions apply_ladder(const FlowOptions& base, LadderStep step);

/// Deterministic per-(job, attempt) fault plan for soak testing: each
/// attempt installs FaultInjector::random(mix(seed, job, attempt),
/// numer, denom) around its flow.  denom == 0 disables injection.
struct BatchFaultPlan {
  std::uint64_t seed = 0;
  std::uint64_t numer = 0;
  std::uint64_t denom = 0;
};

struct BatchOptions {
  FlowOptions flow;            ///< base options for every job
  /// Per-flow resource ceilings (deadline/cancel fields are managed by
  /// the runner; only `budget` is taken from here).
  ResourceBudget budget;
  int max_parallel = 1;        ///< jobs in flight; 0 = hardware threads
  std::int64_t job_timeout_ms = 0;  ///< per-attempt watchdog; 0 = none
  RetryPolicy retry;
  bool isolate = false;        ///< fork each attempt into a subprocess
  std::string journal_path;    ///< empty: no journal, no resume
  bool resume = false;         ///< skip jobs with terminal records
  bool journal_durable = true; ///< fsync per journal append
  std::string manifest_path;   ///< empty: no manifest written
  BatchFaultPlan fault;
};

/// In-memory outcome of one job (mirrors the journal's records).
struct JobOutcome {
  JobRecord record;
  std::vector<AttemptRecord> attempts;
  bool resumed = false;   ///< satisfied by a prior run's journal record
  bool terminal = false;  ///< reached ok/failed/quarantined (vs. skipped
                          ///< after a signal or batch abort)
};

struct BatchResult {
  std::vector<JobOutcome> jobs;   ///< in input order
  int ok = 0;
  int failed = 0;
  int quarantined = 0;
  int resumed = 0;
  /// Set when the batch itself aborted (journal I/O failure) or was
  /// interrupted by a signal; jobs without terminal records were not
  /// run and a later --resume will pick them up.
  std::optional<Diagnostic> aborted;
  int interrupted_by_signal = 0;  ///< signum, or 0
  /// Corrupt or torn journal records skipped while loading the prior
  /// journal for --resume (journal.hpp JournalLoad::warnings).  The jobs
  /// they described simply rerun; the warnings exist so an operator can
  /// see that the journal was damaged.
  std::vector<Diagnostic> resume_warnings;

  bool complete() const { return !aborted && interrupted_by_signal == 0; }
};

/// Test / progress seams.  on_attempt_start runs on the job's worker
/// thread (inside the child in isolate mode) before the flow; tests use
/// it to simulate crashes and hangs.  on_job_done runs on the worker
/// that finished the job (journal already updated).
struct BatchHooks {
  std::function<void(const BatchJob&, int attempt)> on_attempt_start;
  std::function<void(const JobOutcome&)> on_job_done;
};

/// Run every job to a terminal state.  Throws soidom::Error only for
/// caller mistakes (duplicate job names, bad policy values); everything
/// else — including a journal that cannot be opened — is reported via
/// BatchResult::aborted.
BatchResult run_batch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options,
                      const BatchHooks& hooks = {});

}  // namespace soidom
