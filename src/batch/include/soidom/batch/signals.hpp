/// \file signals.hpp
/// Graceful SIGINT / SIGTERM handling shared by the batch runner and the
/// example CLIs.
///
/// install_signal_cancel() registers handlers that do two async-signal-
/// safe things: remember which signal arrived and trip a process-wide
/// CancelToken.  Code that wires signal_cancel_token() into its
/// GuardOptions then unwinds cooperatively at the next guard checkpoint;
/// the batch runner additionally stops scheduling new jobs and flushes
/// its journal before exiting.
///
/// The conventional exit code is 128 + signal number (130 for SIGINT,
/// 143 for SIGTERM); see docs/ERRORS.md.  A second SIGINT restores the
/// default disposition, so a stuck run can still be killed the usual way.
#pragma once

#include "soidom/guard/guard.hpp"

namespace soidom {

/// Idempotently install SIGINT/SIGTERM handlers.
void install_signal_cancel();

/// The token the handlers trip; copy it into GuardOptions::cancel (all
/// copies share one flag).
CancelToken signal_cancel_token();

/// Signal number received so far, or 0.
int signal_received();

/// 128 + signum (130 SIGINT, 143 SIGTERM); 1 for signum == 0.
int signal_exit_code(int signum);

/// Testing hook: clear the received-signal state and re-arm handlers.
void reset_signal_state_for_testing();

}  // namespace soidom
