#include "soidom/batch/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "internal.hpp"
#include "soidom/base/parallel.hpp"
#include "soidom/base/rng.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/batch/signals.hpp"
#include "soidom/guard/fault.hpp"

namespace soidom {
namespace {

using batch_detail::AttemptOutcome;
using batch_detail::execute_attempt_inprocess;
using batch_detail::execute_attempt_isolated;
using batch_detail::mix_seed;
using SteadyClock = std::chrono::steady_clock;

double elapsed_ms(SteadyClock::time_point since) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - since)
      .count();
}

/// Crash-class failures (hang, cancellation, internal error, injected
/// fault) quarantine after the retry budget; deterministic failures
/// (verification, budget, infeasible) report as plain failures.
bool quarantine_class(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInternal:
    case ErrorCode::kCancelled:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kFaultInjected:
      return true;
    default:
      return false;
  }
}

/// Failures no ladder step can fix: don't burn retries on them.
bool retryable(ErrorCode code) {
  return code != ErrorCode::kParseError && code != ErrorCode::kInvalidOptions;
}

/// One background thread that (a) cancels any armed attempt whose
/// wall-clock deadline passed and (b) propagates a received SIGINT /
/// SIGTERM to every in-flight attempt's CancelToken.  Runs on a 20 ms
/// tick — coarse, but watchdog budgets are tens of milliseconds at the
/// finest.
class Watchdog {
 public:
  Watchdog() : thread_([this] { loop(); }) {}
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  int arm(std::optional<SteadyClock::time_point> deadline, CancelToken token) {
    std::lock_guard<std::mutex> lock(mu_);
    const int id = next_id_++;
    entries_.emplace(id, Entry{deadline, std::move(token), false});
    return id;
  }

  /// True when the wall-clock deadline (not a signal) fired this entry.
  bool fired_and_disarm(int id) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(id);
    const bool fired = it != entries_.end() && it->second.fired;
    if (it != entries_.end()) entries_.erase(it);
    return fired;
  }

 private:
  struct Entry {
    std::optional<SteadyClock::time_point> deadline;
    CancelToken token;
    bool fired;
  };

  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      const auto now = SteadyClock::now();
      const bool signalled = signal_received() != 0;
      for (auto& [id, entry] : entries_) {
        if (signalled) entry.token.request_cancel();
        if (!entry.fired && entry.deadline && now >= *entry.deadline) {
          entry.fired = true;
          entry.token.request_cancel();
        }
      }
      cv_.wait_for(lock, std::chrono::milliseconds(20));
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, Entry> entries_;
  int next_id_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

/// Deterministically jittered exponential backoff, interruptible by a
/// signal (10 ms slices).
void backoff_sleep(const std::string& job, int attempt,
                   const RetryPolicy& policy) {
  Rng rng(mix_seed(policy.jitter_seed, job, attempt));
  const double scale =
      std::pow(policy.backoff_factor, static_cast<double>(attempt - 2));
  const double jitter = 0.5 + 0.5 * rng.next_double();
  const auto total = std::chrono::milliseconds(static_cast<std::int64_t>(
      std::llround(policy.backoff_base_ms * scale * jitter)));
  const auto until = SteadyClock::now() + total;
  while (SteadyClock::now() < until && signal_received() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Serialized, abort-on-failure journal access shared by the workers.
class SharedJournal {
 public:
  SharedJournal(std::optional<RunJournal>& journal, std::atomic<bool>& abort,
                Diagnostic& abort_diag, std::mutex& mu)
      : journal_(journal), abort_(abort), abort_diag_(abort_diag), mu_(mu) {}

  /// Run `fn(journal)` under the lock; on a write failure records the
  /// abort diagnostic once and returns false ever after.
  template <typename Fn>
  bool append(Fn&& fn) {
    if (!journal_.has_value()) return true;
    std::lock_guard<std::mutex> lock(mu_);
    if (abort_.load(std::memory_order_relaxed)) return false;
    try {
      fn(*journal_);
      return true;
    } catch (const GuardError& e) {
      abort_diag_ = e.to_diagnostic();
    } catch (const Error& e) {
      abort_diag_ = Diagnostic{ErrorCode::kInternal, FlowStage::kBatchJournal,
                               e.what(),
                               {}};
    }
    abort_.store(true, std::memory_order_relaxed);
    return false;
  }

  bool aborted() const { return abort_.load(std::memory_order_relaxed); }

 private:
  std::optional<RunJournal>& journal_;
  std::atomic<bool>& abort_;
  Diagnostic& abort_diag_;
  std::mutex& mu_;
};

/// Drive one job through the retry/degradation ladder to a terminal
/// state (or bail without one on signal / journal abort, leaving the
/// job for --resume).
void run_one_job(const BatchJob& job, const BatchOptions& options,
                 const BatchHooks& hooks, Watchdog& watchdog,
                 SharedJournal& journal, JobOutcome& out) {
  const auto job_start = SteadyClock::now();
  JobRecord& rec = out.record;

  for (int attempt = 1; attempt <= options.retry.max_attempts; ++attempt) {
    if (signal_received() != 0 || journal.aborted()) return;
    if (attempt > 1 && options.retry.backoff_base_ms > 0) {
      backoff_sleep(job.name, attempt, options.retry);
      if (signal_received() != 0) return;
    }

    const LadderStep step = ladder_step_for_attempt(attempt);
    const FlowOptions effective = apply_ladder(options.flow, step);
    const auto attempt_start = SteadyClock::now();

    AttemptOutcome ao;
    bool watchdog_fired = false;
    try {
      SOIDOM_FAULT_PROBE(FlowStage::kBatchWatchdog);

      GuardOptions gopts;
      gopts.budget = options.budget;
      CancelToken token;
      gopts.cancel = token;
      std::optional<SteadyClock::time_point> deadline;
      if (options.job_timeout_ms > 0) {
        deadline = attempt_start +
                   std::chrono::milliseconds(options.job_timeout_ms);
        gopts.deadline = Deadline::after_ms(options.job_timeout_ms);
      }
      if (options.isolate) {
        SOIDOM_FAULT_PROBE(FlowStage::kBatchSpawn);
        // The parent enforces the timeout itself (SIGKILL); the armed
        // entry only propagates signals to the in-flight child.
        const int id = watchdog.arm(std::nullopt, token);
        ao = execute_attempt_isolated(job, effective, gopts, options.fault,
                                      attempt, hooks, options.job_timeout_ms,
                                      token);
        (void)watchdog.fired_and_disarm(id);
      } else {
        const int id = watchdog.arm(deadline, token);
        ao = execute_attempt_inprocess(job, effective, gopts, options.fault,
                                       attempt, hooks);
        watchdog_fired = watchdog.fired_and_disarm(id);
      }
    } catch (const GuardError& e) {
      // An injected kBatchWatchdog / kBatchSpawn probe: a synthetic
      // crash-class attempt failure, eligible for retry.
      ao.ok = false;
      ao.diagnostic = e.to_diagnostic();
    }

    AttemptRecord ar;
    ar.attempt = attempt;
    ar.ladder = ladder_step_name(step);
    ar.ok = ao.ok;
    ar.diagnostic = ao.diagnostic;
    ar.ms = elapsed_ms(attempt_start);
    if (watchdog_fired && ar.diagnostic.has_value()) {
      ar.diagnostic->context.push_back(
          format("watchdog cancelled after %lld ms",
                 static_cast<long long>(options.job_timeout_ms)));
    }
    const bool journal_ok =
        journal.append([&](RunJournal& j) { j.append_attempt(job.name, ar); });
    out.attempts.push_back(ar);
    if (!journal_ok) return;  // batch aborting; no terminal record

    if (ao.ok) {
      rec.status = JobStatus::kOk;
      rec.attempts = attempt;
      rec.ladder = ar.ladder;
      rec.summary = ao.summary;
      rec.lint_errors = ao.lint_errors;
      rec.lint_warnings = ao.lint_warnings;
      rec.analyzer_errors = ao.analyzer_errors;
      rec.analyzer_warnings = ao.analyzer_warnings;
      rec.prove_confirmed = ao.prove_confirmed;
      rec.prove_refuted = ao.prove_refuted;
      rec.prove_unknown = ao.prove_unknown;
      rec.ms = elapsed_ms(job_start);
      if (journal.append([&](RunJournal& j) { j.append_done(rec); })) {
        out.terminal = true;
      }
      return;
    }

    // A signal produces the same kCancelled shape as the watchdog; an
    // interrupted job must NOT reach a terminal record, so it reruns
    // on --resume.
    if (signal_received() != 0) return;

    const Diagnostic diag = ao.diagnostic.value_or(Diagnostic{
        ErrorCode::kInternal, FlowStage::kNone, "attempt failed", {}});
    if (retryable(diag.code) && attempt < options.retry.max_attempts) {
      continue;
    }
    rec.status = retryable(diag.code) && quarantine_class(diag.code)
                     ? JobStatus::kQuarantined
                     : JobStatus::kFailed;
    rec.attempts = attempt;
    rec.ladder = ar.ladder;
    // Proof verdicts survive into failed records: a confirmed finding is
    // usually the reason the gate failed, and a refutation count of zero
    // vs "prove never ran" matters for triage.
    rec.prove_confirmed = ao.prove_confirmed;
    rec.prove_refuted = ao.prove_refuted;
    rec.prove_unknown = ao.prove_unknown;
    rec.code = error_code_name(diag.code);
    rec.stage = flow_stage_name(diag.stage);
    rec.message = diag.message;
    rec.ms = elapsed_ms(job_start);
    if (journal.append([&](RunJournal& j) { j.append_done(rec); })) {
      out.terminal = true;
    }
    return;
  }
}

}  // namespace

const char* ladder_step_name(LadderStep step) {
  switch (step) {
    case LadderStep::kFull: return "full";
    case LadderStep::kDropExact: return "drop_exact";
    case LadderStep::kShrinkVerify: return "shrink_verify";
    case LadderStep::kShrinkCsa: return "shrink_csa";
    case LadderStep::kShrinkRace: return "shrink_race";
    case LadderStep::kRelaxLimits: return "relax_limits";
    case LadderStep::kSingleThread: return "single_thread";
  }
  return "unknown";
}

LadderStep ladder_step_for_attempt(int attempt) {
  switch (attempt) {
    case 1: return LadderStep::kFull;
    case 2: return LadderStep::kDropExact;
    case 3: return LadderStep::kShrinkVerify;
    case 4: return LadderStep::kShrinkCsa;
    case 5: return LadderStep::kShrinkRace;
    case 6: return LadderStep::kRelaxLimits;
    default: return LadderStep::kSingleThread;
  }
}

FlowOptions apply_ladder(const FlowOptions& base, LadderStep step) {
  FlowOptions effective = base;
  if (step >= LadderStep::kDropExact) effective.exact_equivalence = false;
  if (step >= LadderStep::kShrinkVerify) {
    effective.verify_rounds = std::min(effective.verify_rounds, 2);
  }
  if (step >= LadderStep::kShrinkCsa) {
    effective.csa_options.max_states =
        std::min(effective.csa_options.max_states, 256L);
  }
  if (step >= LadderStep::kShrinkRace) {
    effective.race_options.t_eval = 0.0;
    effective.race_options.t_pre = 0.0;
  }
  if (step >= LadderStep::kRelaxLimits) {
    effective.mapper.max_width =
        std::min(64, std::max(2, effective.mapper.max_width * 2));
    effective.mapper.max_height =
        std::min(64, std::max(2, effective.mapper.max_height * 2));
  }
  if (step >= LadderStep::kSingleThread) effective.mapper.num_threads = 1;
  return effective;
}

BatchResult run_batch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options, const BatchHooks& hooks) {
  SOIDOM_REQUIRE(options.retry.max_attempts >= 1,
                 format("RetryPolicy.max_attempts = %d is invalid "
                        "(need max_attempts >= 1)",
                        options.retry.max_attempts));
  SOIDOM_REQUIRE(options.retry.backoff_base_ms >= 0,
                 format("RetryPolicy.backoff_base_ms = %d is invalid "
                        "(need backoff_base_ms >= 0)",
                        options.retry.backoff_base_ms));
  SOIDOM_REQUIRE(options.retry.backoff_factor >= 1.0,
                 format("RetryPolicy.backoff_factor = %g is invalid "
                        "(need backoff_factor >= 1)",
                        options.retry.backoff_factor));
  SOIDOM_REQUIRE(options.max_parallel >= 0,
                 format("BatchOptions.max_parallel = %d is invalid "
                        "(need max_parallel >= 0)",
                        options.max_parallel));
  SOIDOM_REQUIRE(!(options.resume && options.journal_path.empty()),
                 "BatchOptions.resume requires a journal_path");
  {
    std::set<std::string> names;
    for (const BatchJob& job : jobs) {
      SOIDOM_REQUIRE(!job.name.empty(), "BatchJob.name must not be empty");
      SOIDOM_REQUIRE(names.insert(job.name).second,
                     format("duplicate batch job '%s'", job.name.c_str()));
    }
  }

  BatchResult result;
  result.jobs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    result.jobs[i].record.job = jobs[i].name;
  }

  std::map<std::string, JobRecord> prior;
  if (options.resume) {
    JournalLoad loaded = load_journal_checked(options.journal_path);
    prior = std::move(loaded.records);
    result.resume_warnings = std::move(loaded.warnings);
  }

  std::optional<RunJournal> journal;
  std::atomic<bool> abort{false};
  Diagnostic abort_diag;
  std::mutex journal_mu;
  if (!options.journal_path.empty()) {
    try {
      journal.emplace(options.journal_path, options.journal_durable);
      journal->append_header(jobs.size(), options.isolate,
                             options.retry.max_attempts);
    } catch (const GuardError& e) {
      result.aborted = e.to_diagnostic();
      return result;
    } catch (const Error& e) {
      result.aborted = Diagnostic{ErrorCode::kInternal,
                                  FlowStage::kBatchJournal, e.what(),
                                  {}};
      return result;
    }
  }
  SharedJournal shared(journal, abort, abort_diag, journal_mu);

  {
    Watchdog watchdog;
    ThreadPool pool(options.max_parallel == 0
                        ? 0u
                        : static_cast<unsigned>(options.max_parallel));
    pool.run(jobs.size(), [&](std::size_t i, unsigned) {
      JobOutcome& out = result.jobs[i];
      const auto it = prior.find(jobs[i].name);
      if (it != prior.end()) {
        out.record = it->second;
        out.resumed = true;
        out.terminal = true;
        return;
      }
      if (shared.aborted() || signal_received() != 0) return;
      run_one_job(jobs[i], options, hooks, watchdog, shared, out);
      if (out.terminal && hooks.on_job_done) hooks.on_job_done(out);
    });
  }

  for (const JobOutcome& out : result.jobs) {
    if (out.resumed) ++result.resumed;
    if (!out.terminal) continue;
    switch (out.record.status) {
      case JobStatus::kOk: ++result.ok; break;
      case JobStatus::kFailed: ++result.failed; break;
      case JobStatus::kQuarantined: ++result.quarantined; break;
    }
  }

  if (abort.load()) {
    result.aborted = abort_diag;
    return result;
  }
  result.interrupted_by_signal = signal_received();
  if (result.interrupted_by_signal != 0) return result;

  if (!options.manifest_path.empty()) {
    std::map<std::string, JobRecord> merged = prior;
    for (const JobOutcome& out : result.jobs) {
      if (out.terminal) merged[out.record.job] = out.record;
    }
    try {
      write_manifest(merged, options.manifest_path);
    } catch (const GuardError& e) {
      result.aborted = e.to_diagnostic();
    } catch (const Error& e) {
      result.aborted = Diagnostic{ErrorCode::kInternal,
                                  FlowStage::kBatchJournal, e.what(),
                                  {}};
    }
  }
  return result;
}

}  // namespace soidom
