#include "soidom/batch/signals.hpp"

#include <csignal>

#include <atomic>

namespace soidom {
namespace {

std::atomic<int> g_signal{0};

/// One process-wide token, created before handlers are installed so the
/// handler only performs an atomic store (no allocation, no locking).
CancelToken& global_token() {
  static CancelToken token;
  return token;
}

void on_signal(int signum) {
  g_signal.store(signum, std::memory_order_relaxed);
  global_token().request_cancel();
  // A repeat delivery of the same signal falls through to the default
  // disposition: the user can always force-kill a wedged run.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_signal_cancel() {
  (void)global_token();  // construct before any signal can arrive
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
}

CancelToken signal_cancel_token() { return global_token(); }

int signal_received() { return g_signal.load(std::memory_order_relaxed); }

int signal_exit_code(int signum) { return signum > 0 ? 128 + signum : 1; }

void reset_signal_state_for_testing() {
  g_signal.store(0, std::memory_order_relaxed);
  global_token() = CancelToken();  // fresh flag for the next test
  install_signal_cancel();
}

}  // namespace soidom
