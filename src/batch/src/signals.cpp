#include "soidom/batch/signals.hpp"

#include "soidom/base/signals.hpp"

namespace soidom {
namespace {

/// One process-wide token, created before handlers are installed so the
/// handler only performs an atomic store (no allocation, no locking).
CancelToken& global_token() {
  static CancelToken token;
  return token;
}

/// Async-signal-safe hook: CancelToken::request_cancel is a relaxed
/// atomic store on a pre-allocated flag.  The sigaction + SA_RESTART
/// mechanics (and the restore-to-SIG_DFL-on-repeat policy) live in
/// soidom/base/signals.hpp so all four CLIs share one audited
/// installation.
void trip_cancel(int /*signum*/) { global_token().request_cancel(); }

}  // namespace

void install_signal_cancel() {
  (void)global_token();  // construct before any signal can arrive
  install_signal_handlers(&trip_cancel);
}

CancelToken signal_cancel_token() { return global_token(); }

int signal_received() { return raw_signal_received(); }

int signal_exit_code(int signum) { return signum > 0 ? 128 + signum : 1; }

void reset_signal_state_for_testing() {
  global_token() = CancelToken();  // fresh flag for the next test
  reset_raw_signal_state_for_testing();
  install_signal_cancel();
}

}  // namespace soidom
