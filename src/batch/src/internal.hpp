/// \file internal.hpp
/// Batch-runner internals shared between runner.cpp (scheduling, ladder,
/// watchdog) and isolate.cpp (subprocess execution).  Not installed.
#pragma once

#include <optional>
#include <string>

#include "soidom/batch/runner.hpp"

namespace soidom {
namespace batch_detail {

/// What one attempt produced, independent of where it ran.
struct AttemptOutcome {
  bool ok = false;
  std::optional<Diagnostic> diagnostic;
  std::string summary;
  int lint_errors = 0;
  int lint_warnings = 0;
  /// Findings from the optional analyzer stages (CSA + race lint).
  int analyzer_errors = 0;
  int analyzer_warnings = 0;
  /// Proof-tier verdict counts when the flow ran with FlowOptions::prove.
  int prove_confirmed = 0;
  int prove_refuted = 0;
  int prove_unknown = 0;
};

/// Run one attempt in this process: hook, per-attempt fault injector,
/// then the guarded flow.  Never throws.
AttemptOutcome execute_attempt_inprocess(const BatchJob& job,
                                         const FlowOptions& effective,
                                         const GuardOptions& gopts,
                                         const BatchFaultPlan& fault,
                                         int attempt, const BatchHooks& hooks);

/// Fork and run the attempt in a child process.  The parent enforces
/// `timeout_ms` (SIGKILL on expiry) and converts a crashed / killed /
/// unreadable child into a quarantine-class AttemptOutcome.  `cancel`
/// is polled so a signal to the parent tears the child down promptly.
/// Never throws (a failed fork is an AttemptOutcome, not an exception).
AttemptOutcome execute_attempt_isolated(const BatchJob& job,
                                        const FlowOptions& effective,
                                        const GuardOptions& gopts,
                                        const BatchFaultPlan& fault,
                                        int attempt, const BatchHooks& hooks,
                                        std::int64_t timeout_ms,
                                        const CancelToken& cancel);

/// Wire format used on the child->parent pipe (one line, json_escape'd
/// fields, tab separated).  Exposed for tests.
std::string encode_attempt_outcome(const AttemptOutcome& outcome);
std::optional<AttemptOutcome> decode_attempt_outcome(const std::string& line);

/// Deterministic per-(job, attempt) seed derivation.
std::uint64_t mix_seed(std::uint64_t seed, const std::string& job,
                       int attempt);

}  // namespace batch_detail
}  // namespace soidom
