#include <exception>

#include "internal.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/benchgen/registry.hpp"
#include "soidom/guard/fault.hpp"

namespace soidom {
namespace batch_detail {

std::uint64_t mix_seed(std::uint64_t seed, const std::string& job,
                       int attempt) {
  // FNV-1a over the job name, then splitmix64-style finalization with
  // the caller seed and attempt folded in.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : job) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::uint64_t z = h ^ seed ^ (static_cast<std::uint64_t>(attempt) *
                                0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

AttemptOutcome execute_attempt_inprocess(const BatchJob& job,
                                         const FlowOptions& effective,
                                         const GuardOptions& gopts,
                                         const BatchFaultPlan& fault,
                                         int attempt,
                                         const BatchHooks& hooks) {
  AttemptOutcome out;
  try {
    if (hooks.on_attempt_start) hooks.on_attempt_start(job, attempt);

    std::optional<FaultInjector> injector;
    std::optional<FaultScope> fault_scope;
    if (fault.denom != 0) {
      injector = FaultInjector::random(mix_seed(fault.seed, job.name, attempt),
                                       fault.numer, fault.denom);
      fault_scope.emplace(*injector);
    }

    FlowOutcome flow;
    if (job.blif_path.empty()) {
      flow = run_flow_guarded(build_benchmark(job.name), effective, gopts);
    } else {
      flow = run_flow_guarded_file(job.blif_path, effective, gopts);
    }

    out.ok = flow.ok();
    out.diagnostic = flow.diagnostic;
    if (flow.result.has_value() && out.ok) {
      out.summary = summarize(*flow.result);
      out.lint_errors = flow.result->lint.count(LintSeverity::kError);
      out.lint_warnings =
          flow.result->lint.count(LintSeverity::kWarning) - out.lint_errors;
      // Analyzer (csa.* / race.*) findings live in their own reports, not
      // FlowResult::lint; count them separately so they reach the journal
      // and the resumed merged manifest.
      const auto analyzer_counts = [&](const LintReport& report) {
        const int errors = report.count(LintSeverity::kError);
        out.analyzer_errors += errors;
        out.analyzer_warnings +=
            report.count(LintSeverity::kWarning) - errors;
      };
      if (flow.result->csa.has_value()) analyzer_counts(flow.result->csa->lint);
      if (flow.result->race.has_value()) {
        analyzer_counts(flow.result->race->lint);
      }
    }
    // Proof verdicts are facts about the circuit even when a downstream
    // gate fails the attempt (a confirmed finding is usually *why* it
    // failed), so fill them outside the ok check.
    if (flow.result.has_value() && flow.result->prove.has_value()) {
      out.prove_confirmed = flow.result->prove->confirmed;
      out.prove_refuted = flow.result->prove->refuted;
      out.prove_unknown = flow.result->prove->unknown;
    }
  } catch (const GuardError& e) {
    out.ok = false;
    out.diagnostic = e.to_diagnostic();
  } catch (const Error& e) {
    // build_benchmark (unknown name) and other recoverable throws.
    out.ok = false;
    out.diagnostic =
        Diagnostic{ErrorCode::kParseError, FlowStage::kParse, e.what(), {}};
  } catch (const std::exception& e) {
    out.ok = false;
    out.diagnostic = Diagnostic{
        ErrorCode::kInternal, FlowStage::kNone,
        format("unexpected exception in batch attempt: %s", e.what()),
        {}};
  }
  return out;
}

}  // namespace batch_detail
}  // namespace soidom
