#include "soidom/batch/journal.hpp"

#include <fstream>

#include "soidom/base/fileio.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/guard/fault.hpp"

namespace soidom {
namespace {

/// Extract the string value of `"key":"..."` from one JSONL record we
/// wrote ourselves (keys are never escaped, values via json_escape).
/// Returns false when the key is absent.
bool find_string_field(std::string_view line, std::string_view key,
                       std::string* out) {
  const std::string needle = format("\"%.*s\":\"", int(key.size()), key.data());
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  std::size_t i = at + needle.size();
  std::string raw;
  while (i < line.size()) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      raw += line[i];
      raw += line[i + 1];
      i += 2;
      continue;
    }
    if (line[i] == '"') {
      *out = json_unescape(raw);
      return true;
    }
    raw += line[i++];
  }
  return false;  // unterminated string: torn line
}

bool find_int_field(std::string_view line, std::string_view key, int* out) {
  const std::string needle = format("\"%.*s\":", int(key.size()), key.data());
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  std::size_t i = at + needle.size();
  bool negative = false;
  if (i < line.size() && line[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  long value = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + (line[i] - '0');
    ++i;
  }
  *out = static_cast<int>(negative ? -value : value);
  return true;
}

bool parse_status(const std::string& text, JobStatus* out) {
  if (text == "ok") *out = JobStatus::kOk;
  else if (text == "failed") *out = JobStatus::kFailed;
  else if (text == "quarantined") *out = JobStatus::kQuarantined;
  else return false;
  return true;
}

/// The deterministic fields of one "done" record / manifest entry.
std::string job_fields_json(const JobRecord& r) {
  return format(
      R"("job":"%s","status":"%s","attempts":%d,"ladder":"%s",)"
      R"("code":"%s","stage":"%s","message":"%s","summary":"%s",)"
      R"("lint_errors":%d,"lint_warnings":%d,)"
      R"("analyzer_errors":%d,"analyzer_warnings":%d)",
      json_escape(r.job).c_str(), job_status_name(r.status), r.attempts,
      json_escape(r.ladder).c_str(), json_escape(r.code).c_str(),
      json_escape(r.stage).c_str(), json_escape(r.message).c_str(),
      json_escape(r.summary).c_str(), r.lint_errors, r.lint_warnings,
      r.analyzer_errors, r.analyzer_warnings);
}

}  // namespace

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kQuarantined: return "quarantined";
  }
  return "unknown";
}

struct RunJournal::Impl {
  explicit Impl(const std::string& path, bool durable)
      : file(path, durable) {}
  AppendFile file;
};

RunJournal::RunJournal(const std::string& path, bool durable)
    : impl_(std::make_unique<Impl>(path, durable)) {}

RunJournal::~RunJournal() = default;

const std::string& RunJournal::path() const { return impl_->file.path(); }

void RunJournal::append_header(std::size_t num_jobs, bool isolate,
                               int max_attempts) {
  SOIDOM_FAULT_PROBE(FlowStage::kBatchJournal);
  impl_->file.append_line(
      format(R"({"type":"batch","jobs":%zu,"isolate":%d,"max_attempts":%d})",
             num_jobs, isolate ? 1 : 0, max_attempts));
}

void RunJournal::append_attempt(const std::string& job,
                                const AttemptRecord& a) {
  SOIDOM_FAULT_PROBE(FlowStage::kBatchJournal);
  std::string line = format(
      R"({"type":"attempt","job":"%s","attempt":%d,"ladder":"%s","ok":%d)",
      json_escape(job).c_str(), a.attempt, json_escape(a.ladder).c_str(),
      a.ok ? 1 : 0);
  if (a.diagnostic.has_value()) {
    line += format(R"(,"code":"%s","stage":"%s","message":"%s")",
                   error_code_name(a.diagnostic->code),
                   flow_stage_name(a.diagnostic->stage),
                   json_escape(a.diagnostic->message).c_str());
  }
  line += format(R"(,"ms":%.3f})", a.ms);
  impl_->file.append_line(line);
}

void RunJournal::append_done(const JobRecord& record) {
  SOIDOM_FAULT_PROBE(FlowStage::kBatchJournal);
  impl_->file.append_line(format(R"({"type":"done",%s,"ms":%.3f})",
                                 job_fields_json(record).c_str(), record.ms));
}

std::map<std::string, JobRecord> load_journal(const std::string& path) {
  std::map<std::string, JobRecord> records;
  std::ifstream in(path, std::ios::binary);
  if (!in) return records;
  std::string line;
  while (std::getline(in, line)) {
    std::string type;
    if (!find_string_field(line, "type", &type) || type != "done") continue;
    JobRecord r;
    std::string status;
    if (!find_string_field(line, "job", &r.job) || r.job.empty()) continue;
    if (!find_string_field(line, "status", &status) ||
        !parse_status(status, &r.status)) {
      continue;
    }
    find_int_field(line, "attempts", &r.attempts);
    find_string_field(line, "ladder", &r.ladder);
    find_string_field(line, "code", &r.code);
    find_string_field(line, "stage", &r.stage);
    find_string_field(line, "message", &r.message);
    find_string_field(line, "summary", &r.summary);
    find_int_field(line, "lint_errors", &r.lint_errors);
    find_int_field(line, "lint_warnings", &r.lint_warnings);
    find_int_field(line, "analyzer_errors", &r.analyzer_errors);
    find_int_field(line, "analyzer_warnings", &r.analyzer_warnings);
    records[r.job] = r;  // last record per job wins
  }
  return records;
}

std::string manifest_json(const std::map<std::string, JobRecord>& records) {
  int ok = 0;
  int failed = 0;
  int quarantined = 0;
  std::string jobs;
  for (const auto& [name, r] : records) {  // std::map: sorted by job key
    switch (r.status) {
      case JobStatus::kOk: ++ok; break;
      case JobStatus::kFailed: ++failed; break;
      case JobStatus::kQuarantined: ++quarantined; break;
    }
    if (!jobs.empty()) jobs += ",\n  ";
    jobs += "{" + job_fields_json(r) + "}";
  }
  const std::string body =
      jobs.empty() ? "[]" : format("[\n  %s\n]", jobs.c_str());
  return format(
      "{\"schema\":\"soidom-batch-manifest-1\",\"total\":%zu,"
      "\"ok\":%d,\"failed\":%d,\"quarantined\":%d,\"jobs\":%s}\n",
      records.size(), ok, failed, quarantined, body.c_str());
}

void write_manifest(const std::map<std::string, JobRecord>& records,
                    const std::string& path) {
  SOIDOM_FAULT_PROBE(FlowStage::kBatchJournal);
  write_file_atomic(path, manifest_json(records));
}

}  // namespace soidom
