#include "soidom/batch/journal.hpp"

#include <fstream>

#include "soidom/base/fileio.hpp"
#include "soidom/base/hash.hpp"
#include "soidom/base/jsonl.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/guard/fault.hpp"

namespace soidom {
namespace {

bool parse_status(const std::string& text, JobStatus* out) {
  if (text == "ok") *out = JobStatus::kOk;
  else if (text == "failed") *out = JobStatus::kFailed;
  else if (text == "quarantined") *out = JobStatus::kQuarantined;
  else return false;
  return true;
}

}  // namespace

std::string job_record_fields_json(const JobRecord& r) {
  return format(
      R"("job":"%s","status":"%s","attempts":%d,"ladder":"%s",)"
      R"("code":"%s","stage":"%s","message":"%s","summary":"%s",)"
      R"("lint_errors":%d,"lint_warnings":%d,)"
      R"("analyzer_errors":%d,"analyzer_warnings":%d,)"
      R"("prove_confirmed":%d,"prove_refuted":%d,"prove_unknown":%d)",
      json_escape(r.job).c_str(), job_status_name(r.status), r.attempts,
      json_escape(r.ladder).c_str(), json_escape(r.code).c_str(),
      json_escape(r.stage).c_str(), json_escape(r.message).c_str(),
      json_escape(r.summary).c_str(), r.lint_errors, r.lint_warnings,
      r.analyzer_errors, r.analyzer_warnings, r.prove_confirmed,
      r.prove_refuted, r.prove_unknown);
}

bool parse_job_record_fields(std::string_view line, JobRecord* out) {
  JobRecord r;
  std::string status;
  if (!json_find_string(line, "job", &r.job) || r.job.empty()) return false;
  if (!json_find_string(line, "status", &status) ||
      !parse_status(status, &r.status)) {
    return false;
  }
  json_find_int(line, "attempts", &r.attempts);
  json_find_string(line, "ladder", &r.ladder);
  json_find_string(line, "code", &r.code);
  json_find_string(line, "stage", &r.stage);
  json_find_string(line, "message", &r.message);
  json_find_string(line, "summary", &r.summary);
  json_find_int(line, "lint_errors", &r.lint_errors);
  json_find_int(line, "lint_warnings", &r.lint_warnings);
  json_find_int(line, "analyzer_errors", &r.analyzer_errors);
  json_find_int(line, "analyzer_warnings", &r.analyzer_warnings);
  json_find_int(line, "prove_confirmed", &r.prove_confirmed);
  json_find_int(line, "prove_refuted", &r.prove_refuted);
  json_find_int(line, "prove_unknown", &r.prove_unknown);
  *out = std::move(r);
  return true;
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kQuarantined: return "quarantined";
  }
  return "unknown";
}

struct RunJournal::Impl {
  explicit Impl(const std::string& path, bool durable)
      : file(path, durable) {}
  AppendFile file;
};

RunJournal::RunJournal(const std::string& path, bool durable)
    : impl_(std::make_unique<Impl>(path, durable)) {}

RunJournal::~RunJournal() = default;

const std::string& RunJournal::path() const { return impl_->file.path(); }

void RunJournal::append_header(std::size_t num_jobs, bool isolate,
                               int max_attempts) {
  SOIDOM_FAULT_PROBE(FlowStage::kBatchJournal);
  impl_->file.append_line(jsonl_with_crc(format(
      R"({"type":"batch","schema":%d,"jobs":%zu,"isolate":%d,"max_attempts":%d})",
      kJournalSchema, num_jobs, isolate ? 1 : 0, max_attempts)));
}

void RunJournal::append_attempt(const std::string& job,
                                const AttemptRecord& a) {
  SOIDOM_FAULT_PROBE(FlowStage::kBatchJournal);
  std::string line = format(
      R"({"type":"attempt","job":"%s","attempt":%d,"ladder":"%s","ok":%d)",
      json_escape(job).c_str(), a.attempt, json_escape(a.ladder).c_str(),
      a.ok ? 1 : 0);
  if (a.diagnostic.has_value()) {
    line += format(R"(,"code":"%s","stage":"%s","message":"%s")",
                   error_code_name(a.diagnostic->code),
                   flow_stage_name(a.diagnostic->stage),
                   json_escape(a.diagnostic->message).c_str());
  }
  line += format(R"(,"ms":%.3f})", a.ms);
  impl_->file.append_line(jsonl_with_crc(line));
}

void RunJournal::append_done(const JobRecord& record) {
  SOIDOM_FAULT_PROBE(FlowStage::kBatchJournal);
  impl_->file.append_line(
      jsonl_with_crc(format(R"({"type":"done",%s,"ms":%.3f})",
                      job_record_fields_json(record).c_str(), record.ms)));
}

JournalLoad load_journal_checked(const std::string& path) {
  JournalLoad out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::string line;
  int line_no = 0;
  auto skip = [&](const char* why) {
    ++out.corrupt_records;
    out.warnings.push_back(Diagnostic{
        ErrorCode::kParseError, FlowStage::kBatchJournal,
        format("journal %s line %d %s; record skipped", path.c_str(),
               line_no, why),
        {}});
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const JsonlCheck check = jsonl_check(line);
    if (check == JsonlCheck::kCorrupt) {
      skip("failed its CRC check (corrupt or torn mid-record)");
      continue;
    }
    if (check == JsonlCheck::kNoCrc && out.schema >= 2) {
      // A schema>=2 writer checksums every line, so an unchecksummed one
      // is a torn write (or foreign edit), not a legacy record.
      skip("has no checksum (torn write)");
      continue;
    }
    std::string type;
    if (!json_find_string(line, "type", &type)) continue;
    if (type == "batch") {
      int schema = 1;
      if (json_find_int(line, "schema", &schema)) out.schema = schema;
      continue;
    }
    if (type != "done") continue;
    JobRecord r;
    if (!parse_job_record_fields(line, &r)) continue;
    out.records[r.job] = r;  // last record per job wins
  }
  return out;
}

std::map<std::string, JobRecord> load_journal(const std::string& path) {
  return load_journal_checked(path).records;
}

std::string manifest_json(const std::map<std::string, JobRecord>& records) {
  int ok = 0;
  int failed = 0;
  int quarantined = 0;
  std::string jobs;
  for (const auto& [name, r] : records) {  // std::map: sorted by job key
    switch (r.status) {
      case JobStatus::kOk: ++ok; break;
      case JobStatus::kFailed: ++failed; break;
      case JobStatus::kQuarantined: ++quarantined; break;
    }
    if (!jobs.empty()) jobs += ",\n  ";
    jobs += "{" + job_record_fields_json(r) + "}";
  }
  const std::string body =
      jobs.empty() ? "[]" : format("[\n  %s\n]", jobs.c_str());
  return format(
      "{\"schema\":\"soidom-batch-manifest-1\",\"total\":%zu,"
      "\"ok\":%d,\"failed\":%d,\"quarantined\":%d,\"jobs\":%s}\n",
      records.size(), ok, failed, quarantined, body.c_str());
}

void write_manifest(const std::map<std::string, JobRecord>& records,
                    const std::string& path) {
  SOIDOM_FAULT_PROBE(FlowStage::kBatchJournal);
  write_file_atomic(path, manifest_json(records));
}

}  // namespace soidom
