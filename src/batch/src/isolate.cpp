/// Subprocess isolation for batch attempts.
///
/// Each attempt forks; the child runs the ordinary in-process attempt,
/// writes one encoded result line to a pipe, and _exit(0)s.  The parent
/// polls the pipe under the attempt's wall-clock budget and translates
/// every way a child can misbehave — crash on a signal, nonzero exit,
/// garbage on the pipe, overrunning the watchdog — into a
/// quarantine-class AttemptOutcome.  A runaway or segfaulting job is
/// thereby contained: the batch process itself never executes the
/// job's code in isolate mode.
///
/// Note on fork() from a pool worker: glibc re-arms its allocator locks
/// via pthread_atfork, and the child only runs soidom code plus _exit,
/// so the usual fork-in-threads hazards do not bite here.
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "internal.hpp"
#include "soidom/base/strings.hpp"

namespace soidom {
namespace batch_detail {
namespace {

constexpr std::size_t kNumErrorCodes =
    static_cast<std::size_t>(ErrorCode::kFaultInjected) + 1;

std::optional<ErrorCode> error_code_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumErrorCodes; ++i) {
    const auto code = static_cast<ErrorCode>(i);
    if (name == error_code_name(code)) return code;
  }
  return std::nullopt;
}

std::optional<FlowStage> flow_stage_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kFlowStageCount; ++i) {
    const auto stage = static_cast<FlowStage>(i);
    if (name == flow_stage_name(stage)) return stage;
  }
  return std::nullopt;
}

AttemptOutcome quarantine_outcome(const std::string& message) {
  AttemptOutcome out;
  out.ok = false;
  out.diagnostic =
      Diagnostic{ErrorCode::kInternal, FlowStage::kBatchSpawn, message, {}};
  return out;
}

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string encode_attempt_outcome(const AttemptOutcome& outcome) {
  if (outcome.ok) {
    return format("OK\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s", outcome.lint_errors,
                  outcome.lint_warnings, outcome.analyzer_errors,
                  outcome.analyzer_warnings, outcome.prove_confirmed,
                  outcome.prove_refuted, outcome.prove_unknown,
                  json_escape(outcome.summary).c_str());
  }
  const Diagnostic d = outcome.diagnostic.value_or(
      Diagnostic{ErrorCode::kInternal, FlowStage::kNone, "missing", {}});
  return format("ERR\t%s\t%s\t%s", error_code_name(d.code),
                flow_stage_name(d.stage), json_escape(d.message).c_str());
}

std::optional<AttemptOutcome> decode_attempt_outcome(const std::string& line) {
  // json_escape removes raw tabs/newlines from the payload fields, so a
  // plain tab split is unambiguous; the final field keeps everything.
  // OK records carry 8 payload fields, ERR records 3.
  const std::size_t t1 = line.find('\t');
  if (t1 == std::string::npos) return std::nullopt;
  const std::string kind = line.substr(0, t1);
  const std::size_t want = kind == "OK" ? 8 : 3;
  std::vector<std::string> fields;
  std::size_t at = t1;
  while (fields.size() + 1 < want) {
    const std::size_t next = line.find('\t', at + 1);
    if (next == std::string::npos) return std::nullopt;
    fields.push_back(line.substr(at + 1, next - at - 1));
    at = next;
  }
  fields.push_back(line.substr(at + 1));

  AttemptOutcome out;
  if (kind == "OK") {
    out.ok = true;
    out.lint_errors = std::atoi(fields[0].c_str());
    out.lint_warnings = std::atoi(fields[1].c_str());
    out.analyzer_errors = std::atoi(fields[2].c_str());
    out.analyzer_warnings = std::atoi(fields[3].c_str());
    out.prove_confirmed = std::atoi(fields[4].c_str());
    out.prove_refuted = std::atoi(fields[5].c_str());
    out.prove_unknown = std::atoi(fields[6].c_str());
    out.summary = json_unescape(fields[7]);
    return out;
  }
  if (kind == "ERR") {
    const auto code = error_code_from_name(fields[0]);
    const auto stage = flow_stage_from_name(fields[1]);
    if (!code || !stage) return std::nullopt;
    out.ok = false;
    out.diagnostic = Diagnostic{*code, *stage, json_unescape(fields[2]), {}};
    return out;
  }
  return std::nullopt;
}

AttemptOutcome execute_attempt_isolated(const BatchJob& job,
                                        const FlowOptions& effective,
                                        const GuardOptions& gopts,
                                        const BatchFaultPlan& fault,
                                        int attempt, const BatchHooks& hooks,
                                        std::int64_t timeout_ms,
                                        const CancelToken& cancel) {
  int fds[2];
  if (::pipe(fds) != 0) {
    return quarantine_outcome(
        format("pipe failed: %s", std::strerror(errno)));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return quarantine_outcome(
        format("fork failed: %s", std::strerror(errno)));
  }

  if (pid == 0) {
    // Child: run the attempt and ship one result line.  _exit (not
    // exit) so the parent's atexit/stream state is never replayed.
    ::close(fds[0]);
    const AttemptOutcome outcome = execute_attempt_inprocess(
        job, effective, gopts, fault, attempt, hooks);
    const std::string line = encode_attempt_outcome(outcome) + "\n";
    const bool sent = write_all(fds[1], line.data(), line.size());
    ::close(fds[1]);
    ::_exit(sent ? 0 : 9);
  }

  // Parent: drain the pipe under the wall-clock budget.
  ::close(fds[1]);
  const auto start = std::chrono::steady_clock::now();
  // No milliseconds::max() sentinel here: converting it to the clock's
  // (finer) duration overflows, which would read as an instant timeout.
  std::string received;
  bool timed_out = false;
  bool cancelled = false;
  for (;;) {
    if (cancel.cancelled()) {
      cancelled = true;
      ::kill(pid, SIGTERM);
      break;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (timeout_ms > 0 && elapsed >= std::chrono::milliseconds(timeout_ms)) {
      timed_out = true;
      ::kill(pid, SIGKILL);
      break;
    }
    struct pollfd pfd{fds[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 20);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    char buffer[4096];
    const ssize_t n = ::read(fds[0], buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF: child finished (or died) after writing
    received.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);

  int wstatus = 0;
  while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
  }

  if (cancelled) {
    AttemptOutcome out;
    out.ok = false;
    out.diagnostic = Diagnostic{ErrorCode::kCancelled, FlowStage::kNone,
                                "batch interrupted: child terminated",
                                {}};
    return out;
  }
  if (timed_out) {
    AttemptOutcome out;
    out.ok = false;
    out.diagnostic = Diagnostic{
        ErrorCode::kDeadlineExceeded, FlowStage::kBatchWatchdog,
        format("job exceeded %lld ms; child killed",
               static_cast<long long>(timeout_ms)),
        {}};
    return out;
  }
  if (WIFSIGNALED(wstatus)) {
    return quarantine_outcome(format("child crashed on signal %d (%s)",
                                     WTERMSIG(wstatus),
                                     strsignal(WTERMSIG(wstatus))));
  }
  const std::size_t newline = received.find('\n');
  if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0 &&
      newline != std::string::npos) {
    if (auto decoded = decode_attempt_outcome(received.substr(0, newline))) {
      return *decoded;
    }
    return quarantine_outcome("child result line unparseable");
  }
  return quarantine_outcome(
      format("child exited with status %d without a result",
             WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1));
}

}  // namespace batch_detail
}  // namespace soidom
