#include "soidom/network/builder.hpp"

#include <utility>

namespace soidom {
namespace {

std::uint64_t key_of(NodeKind kind, NodeId a, NodeId b) {
  // Commutative ops are canonicalized by the caller.
  return (static_cast<std::uint64_t>(kind) << 60) ^
         (static_cast<std::uint64_t>(a.value) << 30) ^
         static_cast<std::uint64_t>(b.value);
}

}  // namespace

NetworkBuilder::NetworkBuilder(bool structural_hashing)
    : strash_(structural_hashing) {}

NodeId NetworkBuilder::add_pi(std::string name) {
  const NodeId id{static_cast<std::uint32_t>(net_.nodes_.size())};
  net_.nodes_.push_back(Node{NodeKind::kPi, {}, {}});
  net_.pis_.push_back(id);
  net_.pi_names_.push_back(std::move(name));
  return id;
}

NodeId NetworkBuilder::add_node(NodeKind kind, NodeId a, NodeId b) {
  if (strash_) {
    const auto key = key_of(kind, a, b);
    if (const auto it = hash_.find(key); it != hash_.end()) return it->second;
    const NodeId id{static_cast<std::uint32_t>(net_.nodes_.size())};
    net_.nodes_.push_back(Node{kind, a, b});
    hash_.emplace(key, id);
    return id;
  }
  const NodeId id{static_cast<std::uint32_t>(net_.nodes_.size())};
  net_.nodes_.push_back(Node{kind, a, b});
  return id;
}

NodeId NetworkBuilder::add_and(NodeId a, NodeId b) {
  SOIDOM_ASSERT(a.value < net_.nodes_.size() && b.value < net_.nodes_.size());
  if (strash_) {
    if (a == kConst0Id || b == kConst0Id) return kConst0Id;
    if (a == kConst1Id) return b;
    if (b == kConst1Id) return a;
    if (a == b) return a;
    if (a.value > b.value) std::swap(a, b);
  }
  return add_node(NodeKind::kAnd, a, b);
}

NodeId NetworkBuilder::add_or(NodeId a, NodeId b) {
  SOIDOM_ASSERT(a.value < net_.nodes_.size() && b.value < net_.nodes_.size());
  if (strash_) {
    if (a == kConst1Id || b == kConst1Id) return kConst1Id;
    if (a == kConst0Id) return b;
    if (b == kConst0Id) return a;
    if (a == b) return a;
    if (a.value > b.value) std::swap(a, b);
  }
  return add_node(NodeKind::kOr, a, b);
}

NodeId NetworkBuilder::add_inv(NodeId a) {
  SOIDOM_ASSERT(a.value < net_.nodes_.size());
  if (strash_) {
    if (a == kConst0Id) return kConst1Id;
    if (a == kConst1Id) return kConst0Id;
    const Node& n = net_.nodes_[a.value];
    if (n.kind == NodeKind::kInv) return n.fanin0;
  }
  return add_node(NodeKind::kInv, a, NodeId{});
}

NodeId NetworkBuilder::add_buf(NodeId a) {
  SOIDOM_ASSERT(a.value < net_.nodes_.size());
  return add_node(NodeKind::kBuf, a, NodeId{});
}

void NetworkBuilder::add_output(NodeId driver, std::string name) {
  SOIDOM_ASSERT(driver.value < net_.nodes_.size());
  net_.outputs_.push_back(Output{driver, std::move(name)});
}

Network NetworkBuilder::build() && { return std::move(net_); }

}  // namespace soidom
