#include "soidom/network/transform.hpp"

#include "soidom/network/builder.hpp"

namespace soidom {
namespace {

/// Rebuilds `net` keeping only nodes satisfying `keep`, sweeping BUFs when
/// `sweep_bufs` is set.  PIs are always kept.
Network rebuild(const Network& net, const std::vector<bool>& keep,
                bool sweep_bufs) {
  NetworkBuilder builder(/*structural_hashing=*/false);
  std::vector<NodeId> remap(net.size(), NodeId{});
  remap[kConst0Id.value] = kConst0Id;
  remap[kConst1Id.value] = kConst1Id;

  for (std::uint32_t i = 2; i < net.size(); ++i) {
    const NodeId id{i};
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) {
      remap[i] = builder.add_pi(net.pi_name(id));
      continue;
    }
    if (!keep[i]) continue;
    const NodeId a = n.fanin_count() >= 1 ? remap[n.fanin0.value] : NodeId{};
    const NodeId b = n.fanin_count() >= 2 ? remap[n.fanin1.value] : NodeId{};
    SOIDOM_ASSERT(n.fanin_count() < 1 || a.valid());
    SOIDOM_ASSERT(n.fanin_count() < 2 || b.valid());
    switch (n.kind) {
      case NodeKind::kAnd: remap[i] = builder.add_and(a, b); break;
      case NodeKind::kOr: remap[i] = builder.add_or(a, b); break;
      case NodeKind::kInv: remap[i] = builder.add_inv(a); break;
      case NodeKind::kBuf:
        remap[i] = sweep_bufs ? a : builder.add_buf(a);
        break;
      default: SOIDOM_ASSERT_MSG(false, "unexpected node kind");
    }
  }
  for (const Output& o : net.outputs()) {
    SOIDOM_ASSERT(remap[o.driver.value].valid());
    builder.add_output(remap[o.driver.value], o.name);
  }
  return std::move(builder).build();
}

}  // namespace

Network remove_dead_nodes(const Network& net) {
  std::vector<bool> keep(net.size(), false);
  // Mark cones of all outputs; ids are topological so a reverse scan works.
  for (const Output& o : net.outputs()) keep[o.driver.value] = true;
  for (std::uint32_t i = static_cast<std::uint32_t>(net.size()); i-- > 2;) {
    if (!keep[i]) continue;
    const Node& n = net.node(NodeId{i});
    if (n.fanin_count() >= 1) keep[n.fanin0.value] = true;
    if (n.fanin_count() >= 2) keep[n.fanin1.value] = true;
  }
  return rebuild(net, keep, /*sweep_bufs=*/true);
}

Network clone(const Network& net) {
  std::vector<bool> keep(net.size(), true);
  return rebuild(net, keep, /*sweep_bufs=*/false);
}

}  // namespace soidom
