#include "soidom/network/network.hpp"

#include <algorithm>
#include <sstream>

#include "soidom/base/strings.hpp"

namespace soidom {

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kConst0: return "CONST0";
    case NodeKind::kConst1: return "CONST1";
    case NodeKind::kPi: return "PI";
    case NodeKind::kAnd: return "AND";
    case NodeKind::kOr: return "OR";
    case NodeKind::kInv: return "INV";
    case NodeKind::kBuf: return "BUF";
  }
  return "?";
}

Network::Network() {
  nodes_.push_back(Node{NodeKind::kConst0, {}, {}});
  nodes_.push_back(Node{NodeKind::kConst1, {}, {}});
}

const std::string& Network::pi_name(NodeId id) const {
  const int idx = pi_index(id);
  SOIDOM_ASSERT_MSG(idx >= 0, "node is not a primary input");
  return pi_names_[static_cast<std::size_t>(idx)];
}

int Network::pi_index(NodeId id) const {
  const auto it = std::find(pis_.begin(), pis_.end(), id);
  if (it == pis_.end()) return -1;
  return static_cast<int>(it - pis_.begin());
}

std::vector<std::uint32_t> Network::fanout_counts() const {
  std::vector<std::uint32_t> counts(nodes_.size(), 0);
  for (const Node& n : nodes_) {
    if (n.fanin_count() >= 1) ++counts[n.fanin0.value];
    if (n.fanin_count() >= 2) ++counts[n.fanin1.value];
  }
  for (const Output& o : outputs_) ++counts[o.driver.value];
  return counts;
}

std::vector<int> Network::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kPi:
        level[i] = 0;
        break;
      case NodeKind::kInv:
      case NodeKind::kBuf:
        level[i] = level[n.fanin0.value];
        break;
      case NodeKind::kAnd:
      case NodeKind::kOr:
        level[i] = 1 + std::max(level[n.fanin0.value], level[n.fanin1.value]);
        break;
    }
  }
  return level;
}

NetworkStats Network::stats() const {
  NetworkStats s;
  s.num_pis = pis_.size();
  s.num_pos = outputs_.size();
  for (const Node& n : nodes_) {
    switch (n.kind) {
      case NodeKind::kAnd: ++s.num_ands; break;
      case NodeKind::kOr: ++s.num_ors; break;
      case NodeKind::kInv: ++s.num_invs; break;
      case NodeKind::kBuf: ++s.num_bufs; break;
      default: break;
    }
  }
  const auto level = levels();
  for (const Output& o : outputs_) {
    s.depth = std::max(s.depth, level[o.driver.value]);
  }
  return s;
}

bool Network::is_unate() const {
  return std::none_of(nodes_.begin(), nodes_.end(), [](const Node& n) {
    return n.kind == NodeKind::kInv;
  });
}

std::string Network::dump() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    os << i << ": " << to_string(n.kind);
    if (n.kind == NodeKind::kPi) os << " \"" << pi_name(NodeId{static_cast<std::uint32_t>(i)}) << '"';
    if (n.fanin_count() >= 1) os << ' ' << n.fanin0.value;
    if (n.fanin_count() >= 2) os << ' ' << n.fanin1.value;
    os << '\n';
  }
  for (const Output& o : outputs_) {
    os << "PO \"" << o.name << "\" <- " << o.driver.value << '\n';
  }
  return os.str();
}

}  // namespace soidom
