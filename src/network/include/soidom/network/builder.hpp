/// \file builder.hpp
/// Construction of Network DAGs with optional structural hashing.
#pragma once

#include <string>
#include <unordered_map>

#include "soidom/network/network.hpp"

namespace soidom {

/// Builds a Network node by node.  Fanins must already exist, which keeps
/// node ids topologically ordered.  When structural hashing is enabled
/// (default), add_and / add_or / add_inv return an existing node for a
/// repeated (kind, fanins) request, and trivial simplifications involving
/// constants and equal operands are applied:
///   AND(x,0)=0, AND(x,1)=x, AND(x,x)=x, OR(x,1)=1, OR(x,0)=x, OR(x,x)=x,
///   INV(INV(x))=x, INV(const)=const'.
class NetworkBuilder {
 public:
  explicit NetworkBuilder(bool structural_hashing = true);

  NodeId add_pi(std::string name);
  NodeId add_and(NodeId a, NodeId b);
  NodeId add_or(NodeId a, NodeId b);
  NodeId add_inv(NodeId a);
  NodeId add_buf(NodeId a);
  void add_output(NodeId driver, std::string name);

  NodeId const0() const { return kConst0Id; }
  NodeId const1() const { return kConst1Id; }

  /// Read access to the network under construction.
  const Network& peek() const { return net_; }

  /// Finish construction; the builder must not be used afterwards.
  Network build() &&;

 private:
  NodeId add_node(NodeKind kind, NodeId a, NodeId b);

  Network net_;
  bool strash_;
  std::unordered_map<std::uint64_t, NodeId> hash_;
};

}  // namespace soidom
