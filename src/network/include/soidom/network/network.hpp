/// \file network.hpp
/// Boolean network intermediate representation.
///
/// A Network is a DAG of simple logic nodes: constants, primary inputs,
/// 2-input AND / OR, and single-input INV / BUF.  This is exactly the input
/// contract of the paper's mapping algorithms ("an arbitrary two-input
/// logic gate network", section I) after technology decomposition.
///
/// Invariant: every node's fanins have smaller ids than the node itself, so
/// ids are already a topological order.  All construction goes through
/// NetworkBuilder (builder.hpp) which maintains this invariant and performs
/// optional structural hashing.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "soidom/base/contracts.hpp"

namespace soidom {

/// Node kinds.  Const0/Const1 occupy fixed slots 0 and 1 of every network.
enum class NodeKind : std::uint8_t {
  kConst0,
  kConst1,
  kPi,
  kAnd,  ///< 2-input AND
  kOr,   ///< 2-input OR
  kInv,  ///< inverter (absent from unate networks)
  kBuf,  ///< single-input buffer (used transiently by transforms)
};

/// Returns a short mnemonic ("AND", "OR", ...) for diagnostics.
const char* to_string(NodeKind kind);

/// Strongly typed node handle.
struct NodeId {
  std::uint32_t value = kInvalidValue;

  static constexpr std::uint32_t kInvalidValue =
      std::numeric_limits<std::uint32_t>::max();

  constexpr bool valid() const { return value != kInvalidValue; }
  friend constexpr bool operator==(NodeId, NodeId) = default;
  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

/// Fixed ids for the two constant nodes.
inline constexpr NodeId kConst0Id{0};
inline constexpr NodeId kConst1Id{1};

/// A single logic node.  Unused fanin slots hold invalid NodeIds.
struct Node {
  NodeKind kind = NodeKind::kConst0;
  NodeId fanin0;
  NodeId fanin1;

  int fanin_count() const {
    switch (kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kPi:
        return 0;
      case NodeKind::kInv:
      case NodeKind::kBuf:
        return 1;
      case NodeKind::kAnd:
      case NodeKind::kOr:
        return 2;
    }
    return 0;
  }
};

/// A named primary output and the node driving it.
struct Output {
  NodeId driver;
  std::string name;
};

/// Aggregate size / shape statistics (see Network::stats()).
struct NetworkStats {
  std::size_t num_pis = 0;
  std::size_t num_pos = 0;
  std::size_t num_ands = 0;
  std::size_t num_ors = 0;
  std::size_t num_invs = 0;
  std::size_t num_bufs = 0;
  int depth = 0;  ///< max AND/OR nodes on any PI->PO path

  std::size_t num_gates() const { return num_ands + num_ors; }
};

/// Immutable-after-construction Boolean network DAG.
class Network {
 public:
  Network();

  // --- node access -------------------------------------------------------
  std::size_t size() const { return nodes_.size(); }
  const Node& node(NodeId id) const {
    SOIDOM_ASSERT(id.value < nodes_.size());
    return nodes_[id.value];
  }
  NodeKind kind(NodeId id) const { return node(id).kind; }
  NodeId fanin0(NodeId id) const { return node(id).fanin0; }
  NodeId fanin1(NodeId id) const { return node(id).fanin1; }

  // --- interface nodes ---------------------------------------------------
  const std::vector<NodeId>& pis() const { return pis_; }
  const std::vector<Output>& outputs() const { return outputs_; }
  const std::string& pi_name(NodeId id) const;

  /// Index of `id` within pis(), or -1 if not a PI.
  int pi_index(NodeId id) const;

  // --- analysis ----------------------------------------------------------
  /// Number of nodes that reference each node as a fanin (outputs add one).
  std::vector<std::uint32_t> fanout_counts() const;

  /// Logic level of every node: PIs/constants are 0; AND/OR add one;
  /// INV/BUF are transparent (level of their fanin).
  std::vector<int> levels() const;

  NetworkStats stats() const;

  /// True if the network contains no inverters (BUFs are permitted).
  bool is_unate() const;

  /// Human-readable dump for debugging.
  std::string dump() const;

 private:
  friend class NetworkBuilder;

  std::vector<Node> nodes_;
  std::vector<NodeId> pis_;
  std::vector<std::string> pi_names_;   // parallel to pis_
  std::vector<Output> outputs_;
};

}  // namespace soidom
