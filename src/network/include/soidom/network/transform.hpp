/// \file transform.hpp
/// Generic whole-network transformations: dead-node elimination, buffer
/// sweeping, and deep copy with remapping.
#pragma once

#include "soidom/network/network.hpp"

namespace soidom {

/// Removes nodes not reachable from any primary output and sweeps BUF
/// nodes (outputs driven by a BUF are re-targeted to its fanin).  PIs are
/// always retained, even if unused, so the external interface is stable.
Network remove_dead_nodes(const Network& net);

/// Deep copy (also canonicalizes ids into dense topological order).
Network clone(const Network& net);

}  // namespace soidom
