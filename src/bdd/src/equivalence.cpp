#include "soidom/bdd/equivalence.hpp"

#include "soidom/base/strings.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {

std::vector<BddManager::Ref> build_output_bdds(BddManager& manager,
                                               const Network& net) {
  SOIDOM_REQUIRE(manager.num_vars() >= net.pis().size(),
                 "BDD manager has fewer variables than network PIs");
  std::vector<BddManager::Ref> value(net.size(), BddManager::kFalse);
  value[kConst1Id.value] = BddManager::kTrue;
  for (std::size_t v = 0; v < net.pis().size(); ++v) {
    value[net.pis()[v].value] = manager.var(static_cast<unsigned>(v));
  }
  for (std::uint32_t i = 2; i < net.size(); ++i) {
    const Node& n = net.node(NodeId{i});
    switch (n.kind) {
      case NodeKind::kAnd:
        value[i] =
            manager.apply_and(value[n.fanin0.value], value[n.fanin1.value]);
        break;
      case NodeKind::kOr:
        value[i] =
            manager.apply_or(value[n.fanin0.value], value[n.fanin1.value]);
        break;
      case NodeKind::kInv:
        value[i] = manager.negate(value[n.fanin0.value]);
        break;
      case NodeKind::kBuf:
        value[i] = value[n.fanin0.value];
        break;
      case NodeKind::kPi:
        break;
      default:
        SOIDOM_ASSERT_MSG(false, "unexpected node kind");
    }
  }
  std::vector<BddManager::Ref> out;
  out.reserve(net.outputs().size());
  for (const Output& o : net.outputs()) out.push_back(value[o.driver.value]);
  return out;
}

std::optional<bool> equivalent_exact(const Network& a, const Network& b,
                                     std::size_t node_limit) {
  SOIDOM_REQUIRE(a.pis().size() == b.pis().size() &&
                     a.outputs().size() == b.outputs().size(),
                 "equivalent_exact: interface mismatch");
  StageScope stage(FlowStage::kExact);
  SOIDOM_FAULT_PROBE(FlowStage::kExact);
  try {
    BddManager manager(static_cast<unsigned>(a.pis().size()), node_limit);
    return build_output_bdds(manager, a) == build_output_bdds(manager, b);
  } catch (const GuardError& e) {
    // Only a blow-up is a fallback-to-simulation outcome; cancellation,
    // deadline, and budget trips must keep propagating.
    if (e.code() == ErrorCode::kBddNodeLimit) return std::nullopt;
    throw;
  }
}

}  // namespace soidom
