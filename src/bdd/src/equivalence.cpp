#include "soidom/bdd/equivalence.hpp"

#include <unordered_map>

#include "soidom/base/strings.hpp"
#include "soidom/guard/fault.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {
namespace {

[[noreturn]] void interface_error(const std::string& message) {
  throw GuardError(ErrorCode::kParseError, FlowStage::kExact,
                   "equivalent_exact: " + message);
}

/// Map from unique non-empty names to their index; reports duplicates
/// and empties through `bad` (empty on success).
std::unordered_map<std::string, std::size_t> index_by_name(
    const std::vector<std::string>& names, std::string& bad) {
  std::unordered_map<std::string, std::size_t> map;
  map.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i].empty()) {
      bad += format("%s unnamed entry %zu", bad.empty() ? "" : ",", i);
      continue;
    }
    if (!map.emplace(names[i], i).second) {
      bad += format("%s duplicate '%s'", bad.empty() ? "" : ",",
                    names[i].c_str());
    }
  }
  return map;
}

std::vector<std::string> pi_names(const Network& net) {
  std::vector<std::string> names;
  names.reserve(net.pis().size());
  for (const NodeId pi : net.pis()) names.push_back(net.pi_name(pi));
  return names;
}

std::vector<std::string> output_names(const Network& net) {
  std::vector<std::string> names;
  names.reserve(net.outputs().size());
  for (const Output& o : net.outputs()) names.push_back(o.name);
  return names;
}

/// Positions of `b_names` entries in `a_names` (identity when the
/// sequences agree positionally, name-matched otherwise).  `what` is
/// "PI" / "output" for error messages.
std::vector<std::size_t> match_interface(const std::vector<std::string>& a_names,
                                         const std::vector<std::string>& b_names,
                                         const char* what) {
  std::vector<std::size_t> a_index_of_b(b_names.size());
  if (a_names == b_names) {
    for (std::size_t i = 0; i < b_names.size(); ++i) a_index_of_b[i] = i;
    return a_index_of_b;
  }
  std::string bad_a;
  std::string bad_b;
  const auto a_map = index_by_name(a_names, bad_a);
  (void)index_by_name(b_names, bad_b);  // duplicate/empty detection only
  if (!bad_a.empty() || !bad_b.empty()) {
    interface_error(format(
        "%s names differ positionally and cannot be matched by name "
        "(network A:%s; network B:%s)",
        what, bad_a.empty() ? " ok" : bad_a.c_str(),
        bad_b.empty() ? " ok" : bad_b.c_str()));
  }
  std::string missing;
  for (std::size_t i = 0; i < b_names.size(); ++i) {
    const auto it = a_map.find(b_names[i]);
    if (it == a_map.end()) {
      missing += format("%s '%s'", missing.empty() ? "" : ",",
                        b_names[i].c_str());
      continue;
    }
    a_index_of_b[i] = it->second;
  }
  if (!missing.empty()) {
    interface_error(format("network A has no %s named%s", what,
                           missing.c_str()));
  }
  return a_index_of_b;
}

}  // namespace

std::vector<BddManager::Ref> build_output_bdds(
    BddManager& manager, const Network& net,
    const std::vector<unsigned>& pi_vars) {
  SOIDOM_REQUIRE(pi_vars.size() == net.pis().size(),
                 "build_output_bdds: one variable per network PI required");
  SOIDOM_REQUIRE(manager.num_vars() >= net.pis().size(),
                 "BDD manager has fewer variables than network PIs");
  const std::size_t num_nodes = net.size();
  SOIDOM_ASSERT(num_nodes >= 2);  // constants always exist
  std::vector<BddManager::Ref> value;
  value.reserve(num_nodes);
  value.push_back(BddManager::kFalse);  // kConst0Id
  value.push_back(BddManager::kTrue);   // kConst1Id
  value.resize(num_nodes, BddManager::kFalse);
  for (std::size_t v = 0; v < net.pis().size(); ++v) {
    value[net.pis()[v].value] = manager.var(pi_vars[v]);
  }
  for (std::uint32_t i = 2; i < net.size(); ++i) {
    const Node& n = net.node(NodeId{i});
    switch (n.kind) {
      case NodeKind::kAnd:
        value[i] =
            manager.apply_and(value[n.fanin0.value], value[n.fanin1.value]);
        break;
      case NodeKind::kOr:
        value[i] =
            manager.apply_or(value[n.fanin0.value], value[n.fanin1.value]);
        break;
      case NodeKind::kInv:
        value[i] = manager.negate(value[n.fanin0.value]);
        break;
      case NodeKind::kBuf:
        value[i] = value[n.fanin0.value];
        break;
      case NodeKind::kPi:
        break;
      default:
        SOIDOM_ASSERT_MSG(false, "unexpected node kind");
    }
  }
  std::vector<BddManager::Ref> out;
  out.reserve(net.outputs().size());
  for (const Output& o : net.outputs()) out.push_back(value[o.driver.value]);
  return out;
}

std::vector<BddManager::Ref> build_output_bdds(BddManager& manager,
                                               const Network& net) {
  std::vector<unsigned> identity(net.pis().size());
  for (std::size_t v = 0; v < identity.size(); ++v) {
    identity[v] = static_cast<unsigned>(v);
  }
  return build_output_bdds(manager, net, identity);
}

std::optional<EquivalenceCheck> equivalent_exact_cex(
    const Network& a, const Network& b, std::size_t node_limit) {
  StageScope stage(FlowStage::kExact);
  SOIDOM_FAULT_PROBE(FlowStage::kExact);
  if (a.pis().size() != b.pis().size()) {
    interface_error(format("PI count mismatch (%zu vs %zu)", a.pis().size(),
                           b.pis().size()));
  }
  if (a.outputs().size() != b.outputs().size()) {
    interface_error(format("output count mismatch (%zu vs %zu)",
                           a.outputs().size(), b.outputs().size()));
  }
  // b's PI k reads the variable of the same-named PI of a; b's outputs
  // are permuted into a's output order before comparing.
  const std::vector<std::size_t> pi_map =
      match_interface(pi_names(a), pi_names(b), "PI");
  const std::vector<std::size_t> out_map =
      match_interface(output_names(a), output_names(b), "output");
  std::vector<unsigned> b_pi_vars(pi_map.size());
  for (std::size_t i = 0; i < pi_map.size(); ++i) {
    b_pi_vars[i] = static_cast<unsigned>(pi_map[i]);
  }
  try {
    BddManager manager(static_cast<unsigned>(a.pis().size()), node_limit);
    const std::vector<BddManager::Ref> a_out = build_output_bdds(manager, a);
    const std::vector<BddManager::Ref> b_out =
        build_output_bdds(manager, b, b_pi_vars);
    EquivalenceCheck check;
    for (std::size_t i = 0; i < b_out.size(); ++i) {
      if (b_out[i] == a_out[out_map[i]]) continue;
      check.equivalent = false;
      // Distinguishing cube: any satisfying assignment of the XOR of the
      // first mismatching pair (variables are a's PIs by construction).
      const BddManager::Ref diff =
          manager.apply_xor(b_out[i], a_out[out_map[i]]);
      SOIDOM_ASSERT(diff != BddManager::kFalse);
      const auto cube = manager.any_sat(diff);
      SOIDOM_ASSERT(cube.has_value());
      EquivalenceCounterexample cex;
      cex.output_index = out_map[i];
      cex.output = a.outputs()[out_map[i]].name;
      cex.pi_values = *cube;
      cex.pi_values.resize(a.pis().size());
      check.counterexample = std::move(cex);
      break;
    }
    return check;
  } catch (const GuardError& e) {
    // Only a blow-up is a fallback-to-simulation outcome; cancellation,
    // deadline, and budget trips must keep propagating.
    if (e.code() == ErrorCode::kBddNodeLimit) return std::nullopt;
    throw;
  }
}

std::optional<bool> equivalent_exact(const Network& a, const Network& b,
                                     std::size_t node_limit) {
  const std::optional<EquivalenceCheck> check =
      equivalent_exact_cex(a, b, node_limit);
  if (!check.has_value()) return std::nullopt;
  return check->equivalent;
}

}  // namespace soidom
