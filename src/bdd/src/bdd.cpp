#include "soidom/bdd/bdd.hpp"

#include <cmath>

#include "soidom/base/strings.hpp"
#include "soidom/guard/guard.hpp"

namespace soidom {
namespace {

/// 2^21 direct-mapped ITE cache entries (24 MB); power of two for masking.
constexpr std::size_t kCacheSize = 1u << 21;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BddManager::BddManager(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit), cache_(kCacheSize) {
  // Terminals: var index num_vars_ sorts below every real variable.
  nodes_.push_back(Node{num_vars_, kFalse, kFalse});
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});
}

BddManager::Ref BddManager::make_node(std::uint32_t v, Ref lo, Ref hi) {
  if (lo == hi) return lo;  // reduction rule
  const std::uint64_t key =
      (static_cast<std::uint64_t>(v) << 48) ^
      (static_cast<std::uint64_t>(lo) << 24) ^ static_cast<std::uint64_t>(hi);
  if (const auto it = unique_.find(key); it != unique_.end()) {
    return it->second;
  }
  if (nodes_.size() >= node_limit_) {
    throw GuardError(ErrorCode::kBddNodeLimit,
                     current_stage_or(FlowStage::kExact),
                     format("BDD node limit (%zu) exceeded", node_limit_));
  }
  guard_checkpoint();
  guard_charge(Resource::kBddNodes);
  nodes_.push_back(Node{v, lo, hi});
  const Ref r = static_cast<Ref>(nodes_.size() - 1);
  unique_.emplace(key, r);
  return r;
}

BddManager::Ref BddManager::var(unsigned v) {
  SOIDOM_ASSERT(v < num_vars_);
  return make_node(v, kFalse, kTrue);
}

BddManager::Ref BddManager::nvar(unsigned v) {
  SOIDOM_ASSERT(v < num_vars_);
  return make_node(v, kTrue, kFalse);
}

std::uint32_t BddManager::top_var(Ref f, Ref g, Ref h) const {
  std::uint32_t v = nodes_[f].var;
  v = std::min(v, nodes_[g].var);
  v = std::min(v, nodes_[h].var);
  return v;
}

BddManager::Ref BddManager::cofactor(Ref f, std::uint32_t v,
                                     bool positive) const {
  const Node& n = nodes_[f];
  if (n.var != v) return f;  // f does not depend on v at its top
  return positive ? n.hi : n.lo;
}

BddManager::Ref BddManager::ite(Ref f, Ref g, Ref h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = mix((static_cast<std::uint64_t>(f) << 42) ^
                                (static_cast<std::uint64_t>(g) << 21) ^
                                static_cast<std::uint64_t>(h));
  CacheEntry& slot = cache_[key & (kCacheSize - 1)];
  if (slot.key == key) return slot.result;

  const std::uint32_t v = top_var(f, g, h);
  const Ref hi = ite(cofactor(f, v, true), cofactor(g, v, true),
                     cofactor(h, v, true));
  const Ref lo = ite(cofactor(f, v, false), cofactor(g, v, false),
                     cofactor(h, v, false));
  const Ref result = make_node(v, lo, hi);
  slot = CacheEntry{key, result};
  return result;
}

bool BddManager::eval(Ref f, const std::vector<bool>& values) const {
  SOIDOM_REQUIRE(values.size() == num_vars_, "BDD eval: wrong value count");
  while (f > kTrue) {
    const Node& n = nodes_[f];
    f = values[n.var] ? n.hi : n.lo;
  }
  return f == kTrue;
}

double BddManager::sat_count(Ref f) const {
  // Memoized count of assignments below each node, then scale by the
  // variables above the root.
  std::unordered_map<Ref, double> memo;
  auto count = [&](auto&& self, Ref r) -> double {
    if (r == kFalse) return 0.0;
    if (r == kTrue) return 1.0;
    if (const auto it = memo.find(r); it != memo.end()) return it->second;
    const Node& n = nodes_[r];
    auto below = [&](Ref child) {
      const std::uint32_t child_var = nodes_[child].var;
      const double skipped = static_cast<double>(child_var - n.var - 1);
      return self(self, child) * std::exp2(skipped);
    };
    const double c = below(n.lo) + below(n.hi);
    memo.emplace(r, c);
    return c;
  };
  const std::uint32_t root_var = nodes_[f].var;
  return count(count, f) * std::exp2(static_cast<double>(root_var));
}

std::optional<std::vector<bool>> BddManager::any_sat(Ref f) const {
  if (f == kFalse) return std::nullopt;
  std::vector<bool> values(num_vars_, false);
  while (f > kTrue) {
    const Node& n = nodes_[f];
    if (n.hi != kFalse) {
      values[n.var] = true;
      f = n.hi;
    } else {
      f = n.lo;
    }
  }
  return values;
}

}  // namespace soidom
