/// \file bdd.hpp
/// A compact reduced-ordered binary decision diagram (ROBDD) package.
///
/// Used as the exact functional-equivalence oracle for small and medium
/// cones (the paper's benchmark circuits are combinational, so mapped
/// netlists can be proven — not just sampled — equivalent).  The design is
/// deliberately classic: a unique table enforcing canonicity, a recursive
/// ITE with a computed-table cache, and natural variable order (callers
/// pick the order by choosing variable indices).  Complement edges and
/// dynamic reordering are intentionally omitted; the circuits in scope do
/// not need them and their absence keeps invariants checkable.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "soidom/base/contracts.hpp"

namespace soidom {

/// Manager owning all BDD nodes of one analysis.  Refs are indices into
/// the manager's node pool and stay valid for the manager's lifetime.
class BddManager {
 public:
  using Ref = std::uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  /// `node_limit` bounds total node count; exceeding it throws
  /// soidom::Error (callers fall back to random simulation).
  explicit BddManager(unsigned num_vars, std::size_t node_limit = 1u << 22);

  unsigned num_vars() const { return num_vars_; }
  std::size_t node_count() const { return nodes_.size(); }

  /// Projection function of variable v (and its complement).
  Ref var(unsigned v);
  Ref nvar(unsigned v);

  Ref ite(Ref f, Ref g, Ref h);
  Ref apply_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  Ref apply_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  Ref apply_xor(Ref f, Ref g) { return ite(f, negate(g), g); }
  Ref negate(Ref f) { return ite(f, kFalse, kTrue); }

  bool is_const(Ref f) const { return f <= kTrue; }

  /// Evaluate under a full assignment (`values[v]` for variable v).
  bool eval(Ref f, const std::vector<bool>& values) const;

  /// Number of satisfying assignments over all num_vars() variables
  /// (exact while it fits in double's integer range).
  double sat_count(Ref f) const;

  /// One satisfying assignment, if any.
  std::optional<std::vector<bool>> any_sat(Ref f) const;

 private:
  struct Node {
    std::uint32_t var;  ///< variable index; num_vars_ for terminals
    Ref lo;
    Ref hi;
  };

  Ref make_node(std::uint32_t v, Ref lo, Ref hi);
  std::uint32_t top_var(Ref f, Ref g, Ref h) const;
  Ref cofactor(Ref f, std::uint32_t v, bool positive) const;

  unsigned num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  /// Unique table enforcing canonicity: (var, lo, hi) -> node.
  std::unordered_map<std::uint64_t, Ref> unique_;
  /// Direct-mapped computed table for ITE.
  struct CacheEntry {
    std::uint64_t key = ~std::uint64_t{0};
    Ref result = 0;
  };
  std::vector<CacheEntry> cache_;
};

}  // namespace soidom
