/// \file equivalence.hpp
/// Exact (BDD-based) functional equivalence of logic networks.  The
/// corresponding check for mapped domino netlists lives in
/// soidom/domino/exact.hpp (the netlist IR is a higher layer).
#pragma once

#include <optional>

#include "soidom/bdd/bdd.hpp"
#include "soidom/network/network.hpp"

namespace soidom {

/// BDDs of every primary output of `net`, with variable v == pis()[v].
std::vector<BddManager::Ref> build_output_bdds(BddManager& manager,
                                               const Network& net);

/// As above, but PI k maps to BDD variable `pi_vars[k]` (one entry per
/// PI).  Lets two networks with differently ordered interfaces share one
/// manager's variable space.
std::vector<BddManager::Ref> build_output_bdds(
    BddManager& manager, const Network& net,
    const std::vector<unsigned>& pi_vars);

/// Witness of an inequivalence found by equivalent_exact_cex: one input
/// cube (in network A's PI order) on which a mismatching output pair
/// differs.
struct EquivalenceCounterexample {
  std::size_t output_index = 0;  ///< index into a.outputs()
  std::string output;            ///< that output's name ("" when unnamed)
  /// One value per PI of network A (A's PI order).  Evaluating both
  /// networks on this cube yields different values for `output`.
  std::vector<bool> pi_values;
};

/// Outcome of an exact equivalence check with cube extraction.
struct EquivalenceCheck {
  bool equivalent = true;
  /// Set exactly when !equivalent: the first mismatching output (in
  /// network B's output order) with a distinguishing input cube.
  std::optional<EquivalenceCounterexample> counterexample;
};

/// Exact equivalence of two networks.  Interfaces are matched by NAME:
/// when the PI and PO name sequences agree positionally (the common
/// case, including unnamed interfaces) the match is positional;
/// otherwise both interfaces must carry unique, non-empty names forming
/// the same sets, and PIs/POs are paired by name.  A mismatched
/// interface — different sizes, a name present on one side only, or
/// reordered-but-unmatchable (duplicate / empty) names — throws
/// GuardError(kParseError, kExact) naming the offending signals instead
/// of silently comparing by position.  Returns std::nullopt when the
/// node limit was exceeded (fall back to sim).
std::optional<bool> equivalent_exact(const Network& a, const Network& b,
                                     std::size_t node_limit = 1u << 22);

/// As equivalent_exact, but on inequivalence also extracts a concrete
/// distinguishing input cube (cofactor-based, from the XOR of the first
/// mismatching output pair).  Same interface-matching rules and
/// structured size-mismatch errors; std::nullopt on node-limit blow-up.
std::optional<EquivalenceCheck> equivalent_exact_cex(
    const Network& a, const Network& b, std::size_t node_limit = 1u << 22);

}  // namespace soidom
