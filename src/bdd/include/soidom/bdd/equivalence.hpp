/// \file equivalence.hpp
/// Exact (BDD-based) functional equivalence of logic networks.  The
/// corresponding check for mapped domino netlists lives in
/// soidom/domino/exact.hpp (the netlist IR is a higher layer).
#pragma once

#include <optional>

#include "soidom/bdd/bdd.hpp"
#include "soidom/network/network.hpp"

namespace soidom {

/// BDDs of every primary output of `net`, with variable v == pis()[v].
std::vector<BddManager::Ref> build_output_bdds(BddManager& manager,
                                               const Network& net);

/// Exact equivalence of two networks with identical PI/PO order.
/// std::nullopt when the node limit was exceeded (fall back to sim).
std::optional<bool> equivalent_exact(const Network& a, const Network& b,
                                     std::size_t node_limit = 1u << 22);

}  // namespace soidom
