#include "soidom/pdn/reorder.hpp"

#include <algorithm>

namespace soidom {
namespace {

/// analyze_pbe over an arbitrary subtree: analyze a copy re-rooted at `i`.
/// PDNs are bounded by the mapper's Wmax/Hmax, so the copy is cheap.
PbeAnalysis analyze_subtree(const Pdn& pdn, PdnIndex i, bool bottom_grounded,
                            PendingModel model) {
  Pdn rerooted = pdn;
  rerooted.set_root(i);
  return analyze_pbe(rerooted, bottom_grounded, model);
}

/// Discharge transistors saved if subtree `i` sits at the bottom of its
/// stack and that bottom reaches ground.
int bottom_benefit(const Pdn& pdn, PdnIndex i, PendingModel model) {
  const int floating =
      analyze_subtree(pdn, i, /*bottom_grounded=*/false, model)
          .required_count();
  const int grounded =
      analyze_subtree(pdn, i, /*bottom_grounded=*/true, model)
          .required_count();
  return floating - grounded;
}

int reorder_below(Pdn& pdn, PdnIndex i, PendingModel model, bool recursive) {
  PdnNode& n = pdn.node(i);
  if (n.kind == PdnKind::kLeaf) return 0;

  int changed = 0;
  if (recursive) {
    // Post-order: settle children first so their benefit is final.
    // (Copy the child list: recursive calls never mutate it, but the node
    // reference could be invalidated if the pool ever grew; it does not,
    // yet the copy keeps the loop robust and cheap.)
    const std::vector<PdnIndex> children = n.children;
    for (const PdnIndex c : children) {
      changed += reorder_below(pdn, c, model, recursive);
    }
  }

  if (pdn.node(i).kind != PdnKind::kSeries) return changed;

  PdnNode& series = pdn.node(i);
  int best = 0;
  std::size_t best_pos = series.children.size() - 1;  // prefer current bottom
  for (std::size_t k = 0; k < series.children.size(); ++k) {
    const int benefit = bottom_benefit(pdn, series.children[k], model);
    if (benefit > best ||
        (benefit == best && k == series.children.size() - 1)) {
      best = benefit;
      best_pos = k;
    }
  }
  if (best_pos != series.children.size() - 1) {
    const PdnIndex chosen = series.children[best_pos];
    series.children.erase(series.children.begin() +
                          static_cast<std::ptrdiff_t>(best_pos));
    series.children.push_back(chosen);
    ++changed;
  }
  return changed;
}

}  // namespace

int reorder_series_stacks(Pdn& pdn, PendingModel model, bool recursive) {
  if (pdn.empty()) return 0;
  return reorder_below(pdn, pdn.root(), model, recursive);
}

}  // namespace soidom
