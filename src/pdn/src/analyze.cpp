#include "soidom/pdn/analyze.hpp"

#include <algorithm>

#include "soidom/base/strings.hpp"

namespace soidom {
namespace {

struct SubResult {
  std::vector<DischargePoint> pending;
  bool par_b = false;
};

class Analyzer {
 public:
  Analyzer(const Pdn& pdn, PendingModel model) : pdn_(pdn), model_(model) {}

  PbeAnalysis run(bool bottom_grounded) {
    PbeAnalysis out;
    if (pdn_.empty()) return out;
    SubResult root = analyze(pdn_.root());
    out.par_b_root = root.par_b;
    if (!bottom_grounded) {
      const bool commit_root =
          model_ == PendingModel::kPaperLiteral || root.par_b;
      if (commit_root) {
        // All pending points commit; a parallel bottom additionally needs
        // its bottom node discharged.
        for (const DischargePoint& p : root.pending) required_.push_back(p);
        if (root.par_b) required_.push_back(DischargePoint{});  // bottom
        root.pending.clear();
      }
    }
    out.required = std::move(required_);
    out.pending_at_root = std::move(root.pending);
    // Deterministic order for comparisons.
    auto key = [](const DischargePoint& p) {
      return (static_cast<std::uint64_t>(p.series_node) << 32) | p.pos;
    };
    std::sort(out.required.begin(), out.required.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
    std::sort(out.pending_at_root.begin(), out.pending_at_root.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
    return out;
  }

 private:
  SubResult analyze(PdnIndex i) {
    const PdnNode& n = pdn_.node(i);
    switch (n.kind) {
      case PdnKind::kLeaf:
        return {};
      case PdnKind::kParallel: {
        // Branch bottoms merge into this node's bottom; branch-internal
        // pending points become pending points of the parallel structure.
        SubResult out;
        out.par_b = true;
        for (const PdnIndex c : n.children) {
          SubResult sub = analyze(c);
          // A parallel child would have been flattened away; a branch with
          // par_b could only arise from an unnormalized tree.
          for (DischargePoint& p : sub.pending) {
            out.pending.push_back(p);
          }
          if (sub.par_b) {
            // Nested parallel directly under parallel (non-normalized):
            // treat its bottom as merged with ours — nothing extra.
          }
        }
        return out;
      }
      case PdnKind::kSeries: {
        // Fold bottom-up: start with the bottom child, stack the others on
        // top one at a time (mirrors the mapper's combine_and).
        const std::size_t k = n.children.size();
        SubResult acc = analyze(n.children[k - 1]);
        for (std::size_t t = k - 1; t-- > 0;) {
          const SubResult top = analyze(n.children[t]);
          const DischargePoint junction{
              i, static_cast<std::uint32_t>(t)};  // node below child t
          const bool commit_top =
              model_ == PendingModel::kPaperLiteral || top.par_b;
          if (commit_top) {
            for (const DischargePoint& p : top.pending) {
              required_.push_back(p);
            }
            if (top.par_b || model_ == PendingModel::kPaperLiteral) {
              required_.push_back(junction);
            }
          } else {
            // Series top: junction and internal points stay pending.
            for (const DischargePoint& p : top.pending) {
              acc.pending.push_back(p);
            }
            acc.pending.push_back(junction);
          }
          // par_b of the growing stack stays that of the bottom child.
        }
        return acc;
      }
    }
    return {};
  }

  const Pdn& pdn_;
  PendingModel model_;
  std::vector<DischargePoint> required_;
};

}  // namespace

PbeAnalysis analyze_pbe(const Pdn& pdn, bool bottom_grounded,
                        PendingModel model) {
  return Analyzer(pdn, model).run(bottom_grounded);
}

int required_discharges(const Pdn& pdn, bool bottom_grounded,
                        PendingModel model) {
  return analyze_pbe(pdn, bottom_grounded, model).required_count();
}

bool fully_protected(const Pdn& pdn, bool bottom_grounded,
                     const std::vector<DischargePoint>& protected_points,
                     PendingModel model) {
  const PbeAnalysis analysis = analyze_pbe(pdn, bottom_grounded, model);
  return std::all_of(
      analysis.required.begin(), analysis.required.end(),
      [&](const DischargePoint& p) {
        return std::find(protected_points.begin(), protected_points.end(),
                         p) != protected_points.end();
      });
}

std::string to_string(const DischargePoint& point) {
  if (point.at_bottom()) return "bottom";
  return format("junction(s=%u,p=%u)", point.series_node, point.pos);
}

namespace {

void collect_junctions(const Pdn& pdn, PdnIndex i,
                       std::vector<DischargePoint>& out) {
  const PdnNode& n = pdn.node(i);
  if (n.kind == PdnKind::kLeaf) return;
  if (n.kind == PdnKind::kSeries) {
    for (std::size_t k = 0; k + 1 < n.children.size(); ++k) {
      out.push_back(DischargePoint{i, static_cast<std::uint32_t>(k)});
    }
  }
  for (const PdnIndex c : n.children) collect_junctions(pdn, c, out);
}

}  // namespace

std::vector<DischargePoint> canonical_junctions(const Pdn& pdn) {
  std::vector<DischargePoint> out;
  if (!pdn.empty()) collect_junctions(pdn, pdn.root(), out);
  return out;
}

std::string canonical_point_label(const Pdn& pdn, const DischargePoint& point) {
  if (point.at_bottom()) return "bottom";
  const auto junctions = canonical_junctions(pdn);
  const auto it = std::find(junctions.begin(), junctions.end(), point);
  if (it == junctions.end()) return to_string(point);  // not a real junction
  return format("j%d", static_cast<int>(it - junctions.begin()));
}

}  // namespace soidom
