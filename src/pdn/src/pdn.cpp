#include "soidom/pdn/pdn.hpp"

#include <algorithm>

namespace soidom {

PdnIndex Pdn::add_leaf(std::uint32_t signal) {
  nodes_.push_back(PdnNode{PdnKind::kLeaf, signal, {}});
  return static_cast<PdnIndex>(nodes_.size() - 1);
}

PdnIndex Pdn::add_series(std::vector<PdnIndex> children) {
  SOIDOM_ASSERT(!children.empty());
  if (children.size() == 1) return children.front();
  // Normalize: inline series children (keeps orientation: a series child's
  // sub-chain occupies its position top-first).
  std::vector<PdnIndex> flat;
  for (const PdnIndex c : children) {
    const PdnNode& n = node(c);
    if (n.kind == PdnKind::kSeries) {
      flat.insert(flat.end(), n.children.begin(), n.children.end());
    } else {
      flat.push_back(c);
    }
  }
  nodes_.push_back(PdnNode{PdnKind::kSeries, 0, std::move(flat)});
  return static_cast<PdnIndex>(nodes_.size() - 1);
}

PdnIndex Pdn::add_parallel(std::vector<PdnIndex> children) {
  SOIDOM_ASSERT(!children.empty());
  if (children.size() == 1) return children.front();
  std::vector<PdnIndex> flat;
  for (const PdnIndex c : children) {
    const PdnNode& n = node(c);
    if (n.kind == PdnKind::kParallel) {
      flat.insert(flat.end(), n.children.begin(), n.children.end());
    } else {
      flat.push_back(c);
    }
  }
  nodes_.push_back(PdnNode{PdnKind::kParallel, 0, std::move(flat)});
  return static_cast<PdnIndex>(nodes_.size() - 1);
}

int Pdn::width_of(PdnIndex i) const {
  const PdnNode& n = node(i);
  switch (n.kind) {
    case PdnKind::kLeaf:
      return 1;
    case PdnKind::kSeries: {
      int w = 1;
      for (const PdnIndex c : n.children) w = std::max(w, width_of(c));
      return w;
    }
    case PdnKind::kParallel: {
      int w = 0;
      for (const PdnIndex c : n.children) w += width_of(c);
      return w;
    }
  }
  return 1;
}

int Pdn::height_of(PdnIndex i) const {
  const PdnNode& n = node(i);
  switch (n.kind) {
    case PdnKind::kLeaf:
      return 1;
    case PdnKind::kSeries: {
      int h = 0;
      for (const PdnIndex c : n.children) h += height_of(c);
      return h;
    }
    case PdnKind::kParallel: {
      int h = 0;
      for (const PdnIndex c : n.children) h = std::max(h, height_of(c));
      return h;
    }
  }
  return 1;
}

int Pdn::transistor_count_of(PdnIndex i) const {
  const PdnNode& n = node(i);
  if (n.kind == PdnKind::kLeaf) return 1;
  int t = 0;
  for (const PdnIndex c : n.children) t += transistor_count_of(c);
  return t;
}

int Pdn::width() const { return empty() ? 0 : width_of(root_); }
int Pdn::height() const { return empty() ? 0 : height_of(root_); }
int Pdn::transistor_count() const {
  return empty() ? 0 : transistor_count_of(root_);
}

std::vector<std::uint32_t> Pdn::leaf_signals() const {
  std::vector<std::uint32_t> out;
  if (empty()) return out;
  std::vector<PdnIndex> stack{root_};
  while (!stack.empty()) {
    const PdnIndex i = stack.back();
    stack.pop_back();
    const PdnNode& n = node(i);
    if (n.kind == PdnKind::kLeaf) {
      out.push_back(n.signal);
    } else {
      // push reversed to visit children in order
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
  return out;
}

std::string Pdn::to_string_of(PdnIndex i) const {
  const PdnNode& n = node(i);
  switch (n.kind) {
    case PdnKind::kLeaf:
      return "s" + std::to_string(n.signal);
    case PdnKind::kSeries:
    case PdnKind::kParallel: {
      const char* sep = n.kind == PdnKind::kSeries ? "." : "+";
      std::string out = "(";
      for (std::size_t k = 0; k < n.children.size(); ++k) {
        if (k) out += sep;
        out += to_string_of(n.children[k]);
      }
      out += ')';
      return out;
    }
  }
  return "?";
}

std::string Pdn::to_string() const {
  return empty() ? "<empty>" : to_string_of(root_);
}

namespace {

bool equal_rec(const Pdn& a, PdnIndex ia, const Pdn& b, PdnIndex ib) {
  const PdnNode& na = a.node(ia);
  const PdnNode& nb = b.node(ib);
  if (na.kind != nb.kind) return false;
  if (na.kind == PdnKind::kLeaf) return na.signal == nb.signal;
  if (na.children.size() != nb.children.size()) return false;
  for (std::size_t k = 0; k < na.children.size(); ++k) {
    if (!equal_rec(a, na.children[k], b, nb.children[k])) return false;
  }
  return true;
}

}  // namespace

bool structurally_equal(const Pdn& a, const Pdn& b) {
  if (a.empty() != b.empty()) return false;
  if (a.empty()) return true;
  return equal_rec(a, a.root(), b, b.root());
}

}  // namespace soidom
