/// \file pdn.hpp
/// Pulldown-network (PDN) trees: the transistor-level structure of a
/// domino gate's nMOS evaluation network.
///
/// A PDN is a series/parallel tree whose leaves are single nMOS
/// transistors.  Orientation matters: in a series node, child 0 is the TOP
/// (nearest the dynamic node) and the last child is the BOTTOM (nearest
/// ground / the clock foot transistor).  This orientation drives the
/// parasitic-bipolar-effect analysis (analyze.hpp) and the stack
/// reordering passes (reorder.hpp).
///
/// Leaves carry an opaque 32-bit signal id; the owner (domino::DominoGate)
/// defines its meaning (unate-network PI literal or another gate's output).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soidom/base/contracts.hpp"

namespace soidom {

enum class PdnKind : std::uint8_t { kLeaf, kSeries, kParallel };

/// Index of a node within its Pdn's node pool.
using PdnIndex = std::uint32_t;
inline constexpr PdnIndex kInvalidPdnIndex = 0xffffffffu;

struct PdnNode {
  PdnKind kind = PdnKind::kLeaf;
  std::uint32_t signal = 0;        ///< leaf only: gate-input signal id
  std::vector<PdnIndex> children;  ///< series/parallel only, top-first
};

/// A series/parallel transistor tree.  Nodes live in a pool; `root` is the
/// tree root.  The structure is normalized: series nodes never have series
/// children and parallel nodes never have parallel children (see
/// `flatten`), and internal nodes have >= 2 children.
class Pdn {
 public:
  PdnIndex add_leaf(std::uint32_t signal);
  /// children must be non-empty; a single child is returned unchanged.
  PdnIndex add_series(std::vector<PdnIndex> children);
  PdnIndex add_parallel(std::vector<PdnIndex> children);

  void set_root(PdnIndex root) { root_ = root; }
  PdnIndex root() const { return root_; }
  bool empty() const { return root_ == kInvalidPdnIndex; }

  const PdnNode& node(PdnIndex i) const {
    SOIDOM_ASSERT(i < nodes_.size());
    return nodes_[i];
  }
  PdnNode& node(PdnIndex i) {
    SOIDOM_ASSERT(i < nodes_.size());
    return nodes_[i];
  }
  std::size_t pool_size() const { return nodes_.size(); }

  // --- shape metrics (paper's W / H) -------------------------------------
  /// Max number of parallel branches through any electrical node.
  int width() const;
  int width_of(PdnIndex i) const;
  /// Max series transistors on any dynamic-node-to-bottom path.
  int height() const;
  int height_of(PdnIndex i) const;
  /// Number of leaf transistors.
  int transistor_count() const;
  int transistor_count_of(PdnIndex i) const;

  /// All leaf signals in top-to-bottom, left-to-right order.
  std::vector<std::uint32_t> leaf_signals() const;

  /// Logical evaluation: does a conducting path exist from top to bottom
  /// given per-signal gate values?  `signal_value(sig)` supplies inputs.
  template <typename Fn>
  bool conducts(Fn&& signal_value) const {
    SOIDOM_ASSERT(!empty());
    return conducts_of(root_, signal_value);
  }

  template <typename Fn>
  bool conducts_of(PdnIndex i, Fn&& signal_value) const {
    const PdnNode& n = node(i);
    switch (n.kind) {
      case PdnKind::kLeaf:
        return signal_value(n.signal);
      case PdnKind::kSeries:
        for (const PdnIndex c : n.children) {
          if (!conducts_of(c, signal_value)) return false;
        }
        return true;
      case PdnKind::kParallel:
        for (const PdnIndex c : n.children) {
          if (conducts_of(c, signal_value)) return true;
        }
        return false;
    }
    return false;
  }

  /// Compact textual form, e.g. "((s0.s1)+s2).s3" — series '.', parallel
  /// '+', top-first.  For diagnostics and golden tests.
  std::string to_string() const;
  std::string to_string_of(PdnIndex i) const;

 private:
  std::vector<PdnNode> nodes_;
  PdnIndex root_ = kInvalidPdnIndex;
};

/// Structurally compare two PDNs (same shape, same leaf signals, same
/// ordering).
bool structurally_equal(const Pdn& a, const Pdn& b);

}  // namespace soidom
