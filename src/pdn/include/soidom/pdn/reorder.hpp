/// \file reorder.hpp
/// Series-stack reordering (the paper's RS_Map post-processing step and
/// transformation 4 of section III-C).
///
/// Series conduction is order-independent, so the children of a series
/// node may be permuted freely without changing the gate's function.  Only
/// the BOTTOM position is electrically special: a structure placed at the
/// bottom of the stack may end up connected to ground, in which case its
/// pending discharge points (and, for a parallel structure, its bottom
/// node) need no discharge transistors.  The pass therefore moves, in every
/// series node bottom-up, the child with the largest deferrable-discharge
/// benefit into the bottom slot.
#pragma once

#include "soidom/pdn/analyze.hpp"
#include "soidom/pdn/pdn.hpp"

namespace soidom {

/// In-place reordering of series stacks of `pdn`.  Returns the number of
/// series nodes whose bottom child changed.
///
/// `recursive` selects the strength: true reorders every series node
/// bottom-up (the strongest post-pass this IR admits); false touches only
/// the gate's top-level series stack, which is how we read the paper's
/// RS_Map ("rearranges series stacks ... closer to ground") — its Table I
/// gains are about half of SOI_Domino_Map's, consistent with the weaker
/// variant.
int reorder_series_stacks(Pdn& pdn,
                          PendingModel model = PendingModel::kCoherent,
                          bool recursive = true);

}  // namespace soidom
