/// \file analyze.hpp
/// Parasitic-bipolar-effect (PBE) analysis of pulldown networks.
///
/// Implements the paper's discharge-point model (section V, clarified in
/// DESIGN.md section 2).  Terminology:
///
///  * An electrical *junction* exists below every non-bottom child of a
///    series node.  Junction (s, p) is the node between children p and p+1
///    of series node s.
///  * A junction is a *potential discharge point* when, in an unfavourable
///    context, the transistor bodies around it can charge high and a
///    sudden pulldown would fire the parasitic bipolar device; such points
///    must be tied to a clock-driven pMOS discharge transistor.
///
/// Analysis rules (kCoherent model):
///  * A parallel (OR) structure's internal pending points — and its bottom
///    node — require discharge iff its bottom is not connected to ground.
///  * A series structure's internal junctions require discharge only when
///    the structure ends up as a branch of a parallel stack whose bottom is
///    not grounded; a series chain reaching ground (or merely extended in
///    series / closed into a gate) is safe.
///
/// The kPaperLiteral model follows the paper's boxed combine_and formula
/// instead: *every* AND junction beneath a top structure costs a discharge
/// transistor and top-side pending points always commit (see DESIGN.md for
/// why we consider this a pseudocode simplification).
#pragma once

#include <string>
#include <vector>

#include "soidom/pdn/pdn.hpp"

namespace soidom {

/// Which pending-point bookkeeping to apply (see file comment).
enum class PendingModel : std::uint8_t { kCoherent, kPaperLiteral };

/// A point in a PDN that needs (or may need) a discharge transistor.
struct DischargePoint {
  /// Series node owning the junction, or kInvalidPdnIndex for the
  /// structure's bottom node (only reported for ungrounded parallel roots).
  PdnIndex series_node = kInvalidPdnIndex;
  /// Junction position: between children `pos` and `pos+1`.
  std::uint32_t pos = 0;

  bool at_bottom() const { return series_node == kInvalidPdnIndex; }
  friend bool operator==(const DischargePoint&, const DischargePoint&) = default;
};

/// Result of analyzing one PDN in a given grounding context.
struct PbeAnalysis {
  /// Points that MUST carry a discharge transistor for safe operation.
  std::vector<DischargePoint> required;
  /// Points that remained pending at the root (safe in this context, but
  /// would require discharge if the structure were embedded deeper).
  std::vector<DischargePoint> pending_at_root;
  /// Whether the root structure's bottom is a parallel stack.
  bool par_b_root = false;

  int required_count() const { return static_cast<int>(required.size()); }
  int pending_count() const { return static_cast<int>(pending_at_root.size()); }
};

/// Analyze `pdn` assuming its bottom terminal is (`bottom_grounded`) or is
/// not directly connected to ground.
PbeAnalysis analyze_pbe(const Pdn& pdn, bool bottom_grounded,
                        PendingModel model = PendingModel::kCoherent);

/// Convenience: number of discharge transistors required.
int required_discharges(const Pdn& pdn, bool bottom_grounded,
                        PendingModel model = PendingModel::kCoherent);

/// True if `protected_points` covers every required discharge point.
bool fully_protected(const Pdn& pdn, bool bottom_grounded,
                     const std::vector<DischargePoint>& protected_points,
                     PendingModel model = PendingModel::kCoherent);

/// Diagnostic rendering, e.g. "junction(s=3,p=0)" / "bottom".
std::string to_string(const DischargePoint& point);

/// All series junctions of `pdn` in canonical (in-order tree walk) order.
/// The position in this list is a junction's *canonical index*: it depends
/// only on the tree structure, never on node-pool numbering, so it is
/// stable across serialization round trips.  The .dnl format ("jN") and
/// the lint engine's finding labels both use it.
std::vector<DischargePoint> canonical_junctions(const Pdn& pdn);

/// Pool-independent label for a point: "bottom", "jN" (canonical index),
/// or the raw to_string() form when the point is not a junction of `pdn`.
std::string canonical_point_label(const Pdn& pdn, const DischargePoint& point);

}  // namespace soidom
