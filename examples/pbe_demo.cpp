/// Watch the parasitic bipolar effect corrupt a domino gate, cycle by
/// cycle, on the switch-level SOI simulator -- and then watch the mapped
/// (protected) implementation ride out the same input history.
///
/// The scenario is the paper's section III-B: in (A+B+C)*D, hold A=1 with
/// B=C=D=0 for several cycles (node 1 and the bodies of B and C charge
/// high), then drop A and raise D.  The dynamic node is erroneously
/// discharged through the parasitic bipolar devices of B and C.
///
/// Build & run:   build/examples/pbe_demo
#include <cstdio>
#include <fstream>

#include "soidom/core/flow.hpp"
#include "soidom/network/builder.hpp"
#include "soidom/soisim/soisim.hpp"

using namespace soidom;

namespace {

DominoNetlist unprotected_gate() {
  DominoNetlist nl;
  const std::uint32_t a = nl.add_input({"A", 0, false});
  const std::uint32_t b = nl.add_input({"B", 1, false});
  const std::uint32_t c = nl.add_input({"C", 2, false});
  const std::uint32_t d = nl.add_input({"D", 3, false});
  DominoGate g;
  const PdnIndex par = g.pdn.add_parallel(
      {g.pdn.add_leaf(a), g.pdn.add_leaf(b), g.pdn.add_leaf(c)});
  g.pdn.set_root(g.pdn.add_series({par, g.pdn.add_leaf(d)}));
  g.footed = true;
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "f", false, -1});
  return nl;
}

void run(const char* title, const DominoNetlist& netlist,
         const char* vcd_path = nullptr) {
  std::printf("=== %s ===\n", title);
  std::printf("gate structure: %s, %zu discharge transistor(s)\n",
              netlist.gates()[0].pdn.to_string().c_str(),
              netlist.gates()[0].discharges.size());
  SoiSimulator sim(netlist);
  sim.enable_trace({"A", "B", "C", "D"});
  const std::vector<std::vector<bool>> scenario = {
      {true, false, false, false}, {true, false, false, false},
      {true, false, false, false}, {true, false, false, false},
      {false, false, false, true},  // the killer cycle: A drops, D fires
      {false, true, false, true},   // a legitimate 1 afterwards
  };
  for (std::size_t cycle = 0; cycle < scenario.size(); ++cycle) {
    const CycleResult r = sim.step(scenario[cycle]);
    std::printf("cycle %zu: inputs A=%d B=%d C=%d D=%d | body=%d | f=%d "
                "expected=%d %s%s\n",
                cycle + 1, static_cast<int>(scenario[cycle][0]),
                static_cast<int>(scenario[cycle][1]),
                static_cast<int>(scenario[cycle][2]),
                static_cast<int>(scenario[cycle][3]),
                sim.max_body_charge(0), static_cast<int>(r.outputs[0]),
                static_cast<int>(r.expected[0]),
                r.events.empty() ? "" : "[PBE!] ",
                r.correct() ? "" : "<-- WRONG");
  }
  std::printf("total PBE events: %zu\n", sim.history().size());
  if (vcd_path != nullptr) {
    std::ofstream(vcd_path) << sim.trace_vcd();
    std::printf("waveform written to %s (open with gtkwave)\n", vcd_path);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  run("unprotected bulk-style gate in SOI", unprotected_gate(),
      "pbe_failure.vcd");

  // The same function through the SOI-aware flow: the mapper either adds
  // the discharge transistor or reorders the stack; either way the
  // simulator sees no wrong evaluation.
  NetworkBuilder b;
  const NodeId a = b.add_pi("A");
  const NodeId bb = b.add_pi("B");
  const NodeId c = b.add_pi("C");
  const NodeId d = b.add_pi("D");
  b.add_output(b.add_and(b.add_or(b.add_or(a, bb), c), d), "f");
  const FlowResult flow = run_flow(std::move(b).build(), FlowOptions{});
  run("SOI_Domino_Map output (protected)", flow.netlist);
  return 0;
}
