/// Quickstart: map a small BLIF description to SOI domino logic and print
/// what came out.  This is the five-minute tour of the public API:
///
///   parse_blif  ->  run_flow  ->  FlowResult{netlist, stats, verification}
///
/// Build & run:   build/examples/quickstart
#include <cstdio>

#include "soidom/core/flow.hpp"

int main() {
  using namespace soidom;

  // A 2:1 mux plus a comparator bit -- binate logic, so the unate
  // conversion will need both phases of `sel`.
  const char* blif = R"(
.model quickstart
.inputs sel a b x y
.outputs out eq
.names sel a b out
1-1 1
01- 1
.names x y eq
11 1
00 1
.end
)";

  const BlifModel model = parse_blif(blif);
  std::printf("parsed model '%s': %zu inputs, %zu outputs, %zu tables\n",
              model.name.c_str(), model.inputs.size(), model.outputs.size(),
              model.tables.size());

  // Run the full SOI flow with the paper's defaults (Wmax=5, Hmax=8,
  // area objective) and exact BDD equivalence checking.
  FlowOptions options;
  options.variant = FlowVariant::kSoiDominoMap;
  options.exact_equivalence = true;
  const FlowResult result = run_flow(model, options);

  std::printf("\nflow summary: %s\n", summarize(result).c_str());
  std::printf("\nmapped domino netlist:\n%s", result.netlist.dump().c_str());

  std::printf("gate details:\n");
  for (std::size_t g = 0; g < result.netlist.gates().size(); ++g) {
    const DominoGate& gate = result.netlist.gates()[g];
    std::printf("  gate %zu: pulldown %s  W=%d H=%d  %s  discharges=%zu\n", g,
                gate.pdn.to_string().c_str(), gate.pdn.width(),
                gate.pdn.height(), gate.footed ? "footed" : "footless",
                gate.discharges.size());
  }
  return result.ok() ? 0 : 1;
}
