/// Command-line front end: map a combinational BLIF or structural Verilog
/// file to SOI domino logic.
///
///   build/examples/blif2domino [options] circuit.{blif,v}
///
/// Options:
///   --flow=domino|rs|soi     mapping flow (default soi)
///   --objective=area|depth   cost objective (default area)
///   --wmax=N --hmax=N        pulldown shape limits (default 5 / 8)
///   --k=F                    clock-transistor cost weight (default 1.0)
///   --threads=N              mapper DP threads; 0 = hardware concurrency,
///                            1 = sequential (default 0; the result is
///                            bit-identical for every thread count)
///   --minimize               two-level minimize covers before mapping (BLIF)
///   --seq-aware              prune unexcitable discharge transistors
///   --exact                  exact BDD equivalence checking
///   --dump                   print the mapped netlist
///   --spice=FILE             write a transistor-level SPICE deck
///   --verilog=FILE           write a structural Verilog view
///   --dnl=FILE               write the netlist interchange format
///   --timing                 print the timing / hysteresis report
///   --power                  print the dynamic-energy estimate
///   --lint                   print the full lint report (all severities)
///   --lint-sarif=FILE        write the lint report as SARIF 2.1.0
///   --lint-fail-on=SEV      fail on lint findings >= error|warning|info
///                            (default error)
///   --csa                    run the static charge-sharing / PBE-safety
///                            analyzer and print its per-gate droop report
///   --csa-sarif=FILE         write the CSA findings as SARIF 2.1.0
///   --csa-margin=X           droop noise margin as a fraction of VDD
///                            (default 0.25)
///   --race                   run the static phase / monotonicity / race
///                            analyzer and print its report (docs/RACE.md)
///   --race-sarif=FILE        write the race findings as SARIF 2.1.0
///   --race-fail-on=SEV       fail on race findings >= error|warning|info
///                            (default error)
///   --race-phases=N          clock phase count (default 1)
///   --race-teval=X           evaluate window (0 = unconstrained)
///   --race-tpre=X            precharge window (0 = unconstrained)
///   --race-skew=X            worst-case clock skew absorbed per handoff
///   --race-margin=X          required skew-tolerance margin (warn below)
///
///   --prove                  exact proof tier over lint/csa/race findings
///                            (docs/PROVE.md): confirmed / refuted / unknown
///   --prove-budget=N         BDD node budget per cone problem (default 2^20)
///   --prove-fail-on=SEV      fail on CONFIRMED findings >= error|warning|info
///   --prove-strict           exit 5 (kProofTimeout) on any budget hit
///   --prove-json=FILE        write the ProveReport (witnesses, certificates)
///   --diag-json              print failures/warnings as JSON diagnostics
///
/// Output files (--spice/--verilog/--dnl/--lint-sarif) are written
/// atomically: write to a temp file, fsync, rename.  A crash mid-write
/// never leaves a truncated artifact.  SIGINT/SIGTERM cancel the flow
/// cooperatively and exit with 128+signum (130/143).
///
/// Exit codes (docs/ERRORS.md): 0 success, 2 parse error, 3 mapping
/// infeasible, 4 verification mismatch, 5 deadline/budget, 64 bad usage
/// or options, 1 internal error, 130/143 interrupted by signal.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "soidom/base/fileio.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/batch/signals.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/domino/export.hpp"
#include "soidom/domino/serialize.hpp"
#include "soidom/power/power.hpp"
#include "soidom/timing/timing.hpp"
#include "soidom/verilog/parser.hpp"

using namespace soidom;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--flow=domino|rs|soi] [--objective=area|depth]\n"
      "          [--wmax=N] [--hmax=N] [--k=F] [--threads=N] [--minimize]\n"
      "          [--seq-aware]\n"
      "          [--exact] [--dump] [--spice=FILE] [--verilog=FILE]\n"
      "          [--timing] [--power] [--lint] [--lint-sarif=FILE]\n"
      "          [--lint-fail-on=error|warning|info]\n"
      "          [--csa] [--csa-sarif=FILE] [--csa-margin=X]\n"
      "          [--race] [--race-sarif=FILE]\n"
      "          [--race-fail-on=error|warning|info] [--race-phases=N]\n"
      "          [--race-teval=X] [--race-tpre=X] [--race-skew=X]\n"
      "          [--race-margin=X] [--prove] [--prove-budget=N]\n"
      "          [--prove-fail-on=error|warning|info] [--prove-strict]\n"
      "          [--prove-json=FILE] [--diag-json]\n"
      "          circuit.{blif,v}\n",
      argv0);
  std::exit(64);
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlowOptions options;
  bool dump = false;
  bool want_timing = false;
  bool want_power = false;
  bool diag_json = false;
  bool want_lint = false;
  std::string lint_sarif_path;
  std::string csa_sarif_path;
  std::string race_sarif_path;
  std::string prove_json_path;
  std::string spice_path;
  std::string verilog_path;
  std::string dnl_path;
  std::string path;

  // Strict numeric parses: atoi/atof would turn "--wmax=big" or
  // "--csa-margin=high" into 0 silently.
  auto int_flag = [&](const std::string& text, const char* flag, int* out) {
    if (!parse_int_strict(text, out)) {
      std::fprintf(stderr, "error: %s needs an integer, got '%s'\n", flag,
                   text.c_str());
      usage(argv[0]);
    }
  };
  auto double_flag = [&](const std::string& text, const char* flag,
                         double* out) {
    if (!parse_double_strict(text, out)) {
      std::fprintf(stderr, "error: %s needs a number, got '%s'\n", flag,
                   text.c_str());
      usage(argv[0]);
    }
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flow=domino") {
      options.variant = FlowVariant::kDominoMap;
    } else if (arg == "--flow=rs") {
      options.variant = FlowVariant::kRsMap;
    } else if (arg == "--flow=soi") {
      options.variant = FlowVariant::kSoiDominoMap;
    } else if (arg == "--objective=area") {
      options.mapper.objective = CostObjective::kArea;
    } else if (arg == "--objective=depth") {
      options.mapper.objective = CostObjective::kDepth;
    } else if (arg.rfind("--wmax=", 0) == 0) {
      int_flag(arg.substr(7), "--wmax", &options.mapper.max_width);
    } else if (arg.rfind("--hmax=", 0) == 0) {
      int_flag(arg.substr(7), "--hmax", &options.mapper.max_height);
    } else if (arg.rfind("--k=", 0) == 0) {
      double_flag(arg.substr(4), "--k", &options.mapper.clock_weight);
    } else if (arg.rfind("--threads=", 0) == 0) {
      int_flag(arg.substr(10), "--threads", &options.mapper.num_threads);
    } else if (arg == "--minimize") {
      options.decompose.minimize_covers = true;
    } else if (arg == "--seq-aware") {
      options.sequence_aware = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--exact") {
      options.exact_equivalence = true;
    } else if (arg.rfind("--spice=", 0) == 0) {
      spice_path = arg.substr(8);
    } else if (arg.rfind("--verilog=", 0) == 0) {
      verilog_path = arg.substr(10);
    } else if (arg.rfind("--dnl=", 0) == 0) {
      dnl_path = arg.substr(6);
    } else if (arg == "--timing") {
      want_timing = true;
    } else if (arg == "--power") {
      want_power = true;
    } else if (arg == "--lint") {
      want_lint = true;
    } else if (arg.rfind("--lint-sarif=", 0) == 0) {
      lint_sarif_path = arg.substr(13);
    } else if (arg == "--lint-fail-on=error") {
      options.lint_fail_on = LintSeverity::kError;
    } else if (arg == "--lint-fail-on=warning") {
      options.lint_fail_on = LintSeverity::kWarning;
    } else if (arg == "--lint-fail-on=info") {
      options.lint_fail_on = LintSeverity::kInfo;
    } else if (arg == "--csa") {
      options.csa = true;
    } else if (arg.rfind("--csa-sarif=", 0) == 0) {
      options.csa = true;
      csa_sarif_path = arg.substr(12);
    } else if (arg.rfind("--csa-margin=", 0) == 0) {
      options.csa = true;
      double_flag(arg.substr(13), "--csa-margin",
                  &options.csa_options.margin);
    } else if (arg == "--race") {
      options.race = true;
    } else if (arg.rfind("--race-sarif=", 0) == 0) {
      options.race = true;
      race_sarif_path = arg.substr(13);
    } else if (arg == "--race-fail-on=error") {
      options.race = true;
      options.race_fail_on = LintSeverity::kError;
    } else if (arg == "--race-fail-on=warning") {
      options.race = true;
      options.race_fail_on = LintSeverity::kWarning;
    } else if (arg == "--race-fail-on=info") {
      options.race = true;
      options.race_fail_on = LintSeverity::kInfo;
    } else if (arg.rfind("--race-phases=", 0) == 0) {
      options.race = true;
      int_flag(arg.substr(14), "--race-phases",
               &options.race_options.num_phases);
    } else if (arg.rfind("--race-teval=", 0) == 0) {
      options.race = true;
      double_flag(arg.substr(13), "--race-teval",
                  &options.race_options.t_eval);
    } else if (arg.rfind("--race-tpre=", 0) == 0) {
      options.race = true;
      double_flag(arg.substr(12), "--race-tpre",
                  &options.race_options.t_pre);
    } else if (arg.rfind("--race-skew=", 0) == 0) {
      options.race = true;
      double_flag(arg.substr(12), "--race-skew",
                  &options.race_options.skew);
    } else if (arg.rfind("--race-margin=", 0) == 0) {
      options.race = true;
      double_flag(arg.substr(14), "--race-margin",
                  &options.race_options.margin);
    } else if (arg == "--prove") {
      options.prove = true;
    } else if (arg.rfind("--prove-budget=", 0) == 0) {
      options.prove = true;
      int budget = 0;
      int_flag(arg.substr(15), "--prove-budget", &budget);
      options.prove_options.node_budget = static_cast<std::uint32_t>(budget);
    } else if (arg == "--prove-fail-on=error") {
      options.prove = true;
      options.prove_fail_on = LintSeverity::kError;
    } else if (arg == "--prove-fail-on=warning") {
      options.prove = true;
      options.prove_fail_on = LintSeverity::kWarning;
    } else if (arg == "--prove-fail-on=info") {
      options.prove = true;
      options.prove_fail_on = LintSeverity::kInfo;
    } else if (arg == "--prove-strict") {
      options.prove = true;
      options.prove_options.fail_on_budget = true;
    } else if (arg.rfind("--prove-json=", 0) == 0) {
      options.prove = true;
      prove_json_path = arg.substr(13);
    } else if (arg == "--diag-json") {
      diag_json = true;
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (path.empty()) usage(argv[0]);

  install_signal_cancel();
  GuardOptions gopts;
  gopts.cancel = signal_cancel_token();

  auto exit_code_for = [](const Diagnostic& d) {
    if (d.code == ErrorCode::kCancelled && signal_received() != 0) {
      return signal_exit_code(signal_received());
    }
    return cli_exit_code(d);
  };

  FlowOutcome outcome;
  if (ends_with(path, ".v") || ends_with(path, ".sv")) {
    try {
      outcome = run_flow_guarded(parse_verilog_file(path), options, gopts);
    } catch (const Error& e) {
      outcome.diagnostic =
          Diagnostic{ErrorCode::kParseError, FlowStage::kParse, e.what(), {}};
    }
  } else {
    outcome = run_flow_guarded_file(path, options, gopts);
  }

  for (const Diagnostic& warning : outcome.warnings) {
    if (diag_json) {
      std::printf("%s\n", warning.to_json().c_str());
    } else {
      std::fprintf(stderr, "warning: %s\n", warning.to_string().c_str());
    }
  }
  if (!outcome.result.has_value()) {
    const Diagnostic& d = *outcome.diagnostic;
    if (diag_json) {
      std::printf("%s\n", d.to_json().c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", d.to_string().c_str());
    }
    return exit_code_for(d);
  }

  try {
    const FlowResult& result = *outcome.result;
    std::printf("%s: %s\n", path.c_str(), summarize(result).c_str());
    if (options.sequence_aware) {
      std::printf("sequence-aware pruning removed %d discharge transistor(s)\n",
                  result.discharges_pruned);
    }
    if (dump) std::fputs(result.netlist.dump().c_str(), stdout);
    if (want_lint) std::fputs(result.lint.to_text().c_str(), stdout);
    if (!lint_sarif_path.empty()) {
      write_file_atomic(lint_sarif_path, result.lint.to_sarif(path));
      std::printf("wrote %s\n", lint_sarif_path.c_str());
    }
    if (result.csa.has_value()) {
      const CsaReport& csa = result.csa->report;
      std::printf("csa: %s\n", result.csa->lint.summary().c_str());
      std::printf("%s\n", csa.to_json().c_str());
      if (!csa_sarif_path.empty()) {
        write_file_atomic(csa_sarif_path, result.csa->lint.to_sarif(path));
        std::printf("wrote %s\n", csa_sarif_path.c_str());
      }
    }
    if (result.race.has_value()) {
      std::printf("race: %s\n", result.race->lint.summary().c_str());
      std::printf("%s\n", result.race->report.to_json().c_str());
      if (!race_sarif_path.empty()) {
        write_file_atomic(race_sarif_path, result.race->lint.to_sarif(path));
        std::printf("wrote %s\n", race_sarif_path.c_str());
      }
    }
    if (result.prove.has_value()) {
      std::printf("prove: %s (budget_hits=%d)\n",
                  result.prove->summary().c_str(),
                  result.prove->budget_hits);
      if (!prove_json_path.empty()) {
        write_file_atomic(prove_json_path, result.prove->to_json());
        std::printf("wrote %s\n", prove_json_path.c_str());
      }
    }
    if (want_timing) {
      std::fputs(analyze_timing(result.netlist).to_string().c_str(), stdout);
    }
    if (want_power) {
      const PowerReport p = estimate_power(result.netlist);
      std::printf("energy/cycle: clock=%.1f logic=%.1f input=%.1f total=%.1f\n",
                  p.clock_energy, p.logic_energy, p.input_energy, p.total());
    }
    if (!spice_path.empty()) {
      write_file_atomic(spice_path, export_spice(result.netlist, path));
      std::printf("wrote %s\n", spice_path.c_str());
    }
    if (!verilog_path.empty()) {
      write_file_atomic(verilog_path, export_verilog(result.netlist, "mapped"));
      std::printf("wrote %s\n", verilog_path.c_str());
    }
    if (!dnl_path.empty()) {
      write_dnl_file(result.netlist, dnl_path);
      std::printf("wrote %s\n", dnl_path.c_str());
    }
    if (outcome.diagnostic.has_value()) {
      // A verification mismatch: the netlist above is still printed /
      // exported for triage, but the run fails with the dedicated code.
      const Diagnostic& d = *outcome.diagnostic;
      if (diag_json) {
        std::printf("%s\n", d.to_json().c_str());
      } else {
        std::fprintf(stderr, "error: %s\n", d.to_string().c_str());
      }
      return exit_code_for(d);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
