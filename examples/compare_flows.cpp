/// Compare the three mapping flows (Domino_Map, RS_Map, SOI_Domino_Map)
/// and both cost objectives on one benchmark circuit.
///
/// Build & run:   build/examples/compare_flows [circuit]
/// Default circuit: cordic.  Try: build/examples/compare_flows 9symml
#include <cstdio>
#include <string>

#include "soidom/benchgen/registry.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/report/table.hpp"

using namespace soidom;

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "cordic";
  if (!is_known_benchmark(circuit)) {
    std::fprintf(stderr, "unknown circuit '%s'; known circuits:\n",
                 circuit.c_str());
    for (const std::string& n : benchmark_names()) {
      std::fprintf(stderr, "  %s\n", n.c_str());
    }
    return 1;
  }

  const Network source = build_benchmark(circuit);
  const NetworkStats ns = source.stats();
  std::printf("circuit '%s': %zu PIs, %zu POs, %zu 2-input gates, depth %d\n\n",
              circuit.c_str(), ns.num_pis, ns.num_pos, ns.num_gates(),
              ns.depth);

  struct Row {
    const char* label;
    FlowVariant variant;
    CostObjective objective;
  };
  const Row rows[] = {
      {"Domino_Map (area)", FlowVariant::kDominoMap, CostObjective::kArea},
      {"RS_Map (area)", FlowVariant::kRsMap, CostObjective::kArea},
      {"SOI_Domino_Map (area)", FlowVariant::kSoiDominoMap,
       CostObjective::kArea},
      {"Domino_Map (depth)", FlowVariant::kDominoMap, CostObjective::kDepth},
      {"SOI_Domino_Map (depth)", FlowVariant::kSoiDominoMap,
       CostObjective::kDepth},
  };

  ResultTable table({"flow", "#G", "T_logic", "T_disch", "T_total", "T_clock",
                     "L", "verified"});
  for (const Row& row : rows) {
    FlowOptions options;
    options.variant = row.variant;
    options.mapper.objective = row.objective;
    const FlowResult r = run_flow(source, options);
    table.add_row({row.label, ResultTable::cell(r.stats.num_gates),
                   ResultTable::cell(r.stats.t_logic),
                   ResultTable::cell(r.stats.t_disch),
                   ResultTable::cell(r.stats.t_total),
                   ResultTable::cell(r.stats.t_clock),
                   ResultTable::cell(r.stats.levels),
                   r.ok() ? "yes" : "NO"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
