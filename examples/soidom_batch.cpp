/// Crash-safe batch front end: map a fleet of circuits with per-job
/// watchdogs, a retry/degradation ladder, optional subprocess isolation,
/// and a resumable run journal.  This is the outer loop the paper's
/// Table 1/2 sweeps (and any large mapping campaign) need: one hanging
/// or crashing circuit no longer loses the run.
///
///   build/examples/soidom_batch [options] [circuit.blif ...]
///
/// Job selection (default: every paper-table circuit):
///   --tables                 all circuits of the paper's four tables
///   --circuits=a,b,c         named benchmark-registry circuits
///   circuit.blif ...         BLIF files (journal key = the path)
///
/// Resilience:
///   --jobs=N                 jobs in flight (default 1; 0 = hardware)
///   --timeout-ms=N           per-attempt wall-clock watchdog (0 = off)
///   --attempts=N             retry budget per job (default 3)
///   --backoff-ms=N           base retry backoff, jittered (default 50)
///   --isolate                fork each attempt into a subprocess
///   --journal=FILE           JSONL journal (default soidom_batch.jsonl)
///   --manifest=FILE          merged manifest
///                            (default soidom_batch.manifest.json)
///   --resume                 skip jobs already terminal in the journal
///   --inject=N/D@SEED        seeded per-(job,attempt) fault injection
///   --allow-failures         exit 0 when all jobs are terminal, even if
///                            some failed or were quarantined (soak mode)
///
/// Flow knobs: --flow=domino|rs|soi --wmax=N --hmax=N --threads=N
///             --seq-aware --exact --verify=N
///             --csa --csa-margin=X  (static charge-sharing / PBE-safety
///             analysis per job; the retry ladder shrinks its state
///             enumeration before relaxing other limits — docs/CSA.md)
///             --race --race-phases=N --race-teval=X --race-tpre=X
///             --race-skew=X --race-margin=X  (static phase / race
///             analysis per job; the ladder drops the clock windows
///             before relaxing other limits — docs/RACE.md)
///             --prove --prove-budget=N --prove-fail-on=SEV --prove-strict
///             (exact proof tier over the analyzer findings; refuted
///             findings are downgraded before the fail-on gates, and the
///             verdict counts ride the journal / manifest byte-identically
///             across --resume — docs/PROVE.md)
///
/// Exit codes (docs/ERRORS.md): 0 all jobs ok (or terminal with
/// --allow-failures), 7 some jobs failed/quarantined, 6 batch aborted
/// (journal I/O), 130/143 interrupted by SIGINT/SIGTERM, 64 bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "soidom/base/strings.hpp"
#include "soidom/batch/runner.hpp"
#include "soidom/batch/signals.hpp"
#include "soidom/benchgen/registry.hpp"

using namespace soidom;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--tables] [--circuits=a,b,c] [--jobs=N] [--timeout-ms=N]\n"
      "          [--attempts=N] [--backoff-ms=N] [--isolate]\n"
      "          [--journal=FILE] [--manifest=FILE] [--resume]\n"
      "          [--inject=N/D@SEED] [--allow-failures]\n"
      "          [--flow=domino|rs|soi] [--wmax=N] [--hmax=N] [--threads=N]\n"
      "          [--seq-aware] [--exact] [--verify=N]\n"
      "          [--csa] [--csa-margin=X]\n"
      "          [--race] [--race-phases=N] [--race-teval=X] [--race-tpre=X]\n"
      "          [--race-skew=X] [--race-margin=X]\n"
      "          [--prove] [--prove-budget=N]\n"
      "          [--prove-fail-on=error|warning|info] [--prove-strict]\n"
      "          [circuit.blif ...]\n",
      argv0);
  std::exit(64);
}

std::vector<std::string> split_names(const std::string& list) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) out.push_back(list.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

std::vector<std::string> all_table_circuits() {
  std::vector<std::string> out;
  for (const auto& list : {table1_circuits(), table2_circuits(),
                           table3_circuits(), table4_circuits()}) {
    for (const std::string& name : list) {
      bool seen = false;
      for (const std::string& have : out) seen = seen || have == name;
      if (!seen) out.push_back(name);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BatchOptions options;
  options.journal_path = "soidom_batch.jsonl";
  options.manifest_path = "soidom_batch.manifest.json";
  options.retry.backoff_base_ms = 50;
  bool want_tables = false;
  bool allow_failures = false;
  std::vector<std::string> named;
  std::vector<std::string> files;

  // Strict numeric parses: atoi/atof would turn "--jobs=all" or
  // "--csa-margin=high" into 0 silently.
  auto int_flag = [&](const std::string& text, const char* flag, int* out) {
    if (!parse_int_strict(text, out)) {
      std::fprintf(stderr, "error: %s needs an integer, got '%s'\n", flag,
                   text.c_str());
      usage(argv[0]);
    }
  };
  auto double_flag = [&](const std::string& text, const char* flag,
                         double* out) {
    if (!parse_double_strict(text, out)) {
      std::fprintf(stderr, "error: %s needs a number, got '%s'\n", flag,
                   text.c_str());
      usage(argv[0]);
    }
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tables") {
      want_tables = true;
    } else if (arg.rfind("--circuits=", 0) == 0) {
      for (auto& name : split_names(arg.substr(11))) named.push_back(name);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      int_flag(arg.substr(7), "--jobs", &options.max_parallel);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      int timeout_ms = 0;
      int_flag(arg.substr(13), "--timeout-ms", &timeout_ms);
      options.job_timeout_ms = timeout_ms;
    } else if (arg.rfind("--attempts=", 0) == 0) {
      int_flag(arg.substr(11), "--attempts", &options.retry.max_attempts);
    } else if (arg.rfind("--backoff-ms=", 0) == 0) {
      int_flag(arg.substr(13), "--backoff-ms",
               &options.retry.backoff_base_ms);
    } else if (arg == "--isolate") {
      options.isolate = true;
    } else if (arg.rfind("--journal=", 0) == 0) {
      options.journal_path = arg.substr(10);
    } else if (arg.rfind("--manifest=", 0) == 0) {
      options.manifest_path = arg.substr(11);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg.rfind("--inject=", 0) == 0) {
      unsigned long long numer = 0;
      unsigned long long denom = 0;
      unsigned long long seed = 0;
      if (std::sscanf(arg.c_str() + 9, "%llu/%llu@%llu", &numer, &denom,
                      &seed) != 3 ||
          denom == 0) {
        usage(argv[0]);
      }
      options.fault = BatchFaultPlan{seed, numer, denom};
    } else if (arg == "--allow-failures") {
      allow_failures = true;
    } else if (arg == "--flow=domino") {
      options.flow.variant = FlowVariant::kDominoMap;
    } else if (arg == "--flow=rs") {
      options.flow.variant = FlowVariant::kRsMap;
    } else if (arg == "--flow=soi") {
      options.flow.variant = FlowVariant::kSoiDominoMap;
    } else if (arg.rfind("--wmax=", 0) == 0) {
      int_flag(arg.substr(7), "--wmax", &options.flow.mapper.max_width);
    } else if (arg.rfind("--hmax=", 0) == 0) {
      int_flag(arg.substr(7), "--hmax", &options.flow.mapper.max_height);
    } else if (arg.rfind("--threads=", 0) == 0) {
      int_flag(arg.substr(10), "--threads", &options.flow.mapper.num_threads);
    } else if (arg == "--seq-aware") {
      options.flow.sequence_aware = true;
    } else if (arg == "--exact") {
      options.flow.exact_equivalence = true;
    } else if (arg.rfind("--verify=", 0) == 0) {
      int_flag(arg.substr(9), "--verify", &options.flow.verify_rounds);
    } else if (arg == "--csa") {
      options.flow.csa = true;
    } else if (arg.rfind("--csa-margin=", 0) == 0) {
      options.flow.csa = true;
      double_flag(arg.substr(13), "--csa-margin",
                  &options.flow.csa_options.margin);
    } else if (arg == "--race") {
      options.flow.race = true;
    } else if (arg.rfind("--race-phases=", 0) == 0) {
      options.flow.race = true;
      int_flag(arg.substr(14), "--race-phases",
               &options.flow.race_options.num_phases);
    } else if (arg.rfind("--race-teval=", 0) == 0) {
      options.flow.race = true;
      double_flag(arg.substr(13), "--race-teval",
                  &options.flow.race_options.t_eval);
    } else if (arg.rfind("--race-tpre=", 0) == 0) {
      options.flow.race = true;
      double_flag(arg.substr(12), "--race-tpre",
                  &options.flow.race_options.t_pre);
    } else if (arg.rfind("--race-skew=", 0) == 0) {
      options.flow.race = true;
      double_flag(arg.substr(12), "--race-skew",
                  &options.flow.race_options.skew);
    } else if (arg.rfind("--race-margin=", 0) == 0) {
      options.flow.race = true;
      double_flag(arg.substr(14), "--race-margin",
                  &options.flow.race_options.margin);
    } else if (arg == "--prove") {
      options.flow.prove = true;
    } else if (arg.rfind("--prove-budget=", 0) == 0) {
      options.flow.prove = true;
      int budget = 0;
      int_flag(arg.substr(15), "--prove-budget", &budget);
      options.flow.prove_options.node_budget =
          static_cast<std::uint32_t>(budget);
    } else if (arg == "--prove-fail-on=error") {
      options.flow.prove = true;
      options.flow.prove_fail_on = LintSeverity::kError;
    } else if (arg == "--prove-fail-on=warning") {
      options.flow.prove = true;
      options.flow.prove_fail_on = LintSeverity::kWarning;
    } else if (arg == "--prove-fail-on=info") {
      options.flow.prove = true;
      options.flow.prove_fail_on = LintSeverity::kInfo;
    } else if (arg == "--prove-strict") {
      options.flow.prove = true;
      options.flow.prove_options.fail_on_budget = true;
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  std::vector<BatchJob> jobs;
  if (want_tables || (named.empty() && files.empty())) {
    for (const std::string& name : all_table_circuits()) {
      jobs.push_back(BatchJob{name, ""});
    }
  }
  for (const std::string& name : named) jobs.push_back(BatchJob{name, ""});
  for (const std::string& path : files) jobs.push_back(BatchJob{path, path});

  install_signal_cancel();

  BatchHooks hooks;
  hooks.on_job_done = [](const JobOutcome& out) {
    const JobRecord& r = out.record;
    if (r.status == JobStatus::kOk) {
      std::printf("%-12s ok       attempts=%d ladder=%s  %s\n", r.job.c_str(),
                  r.attempts, r.ladder.c_str(), r.summary.c_str());
    } else {
      std::printf("%-12s %-8s attempts=%d ladder=%s  %s: %s: %s\n",
                  r.job.c_str(), job_status_name(r.status), r.attempts,
                  r.ladder.c_str(), r.stage.c_str(), r.code.c_str(),
                  r.message.c_str());
    }
    std::fflush(stdout);
  };

  BatchResult result;
  try {
    result = run_batch(jobs, options, hooks);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 64;
  }

  for (const Diagnostic& warn : result.resume_warnings) {
    std::fprintf(stderr, "warning: %s\n", warn.to_string().c_str());
  }

  int not_run = 0;
  for (const JobOutcome& out : result.jobs) not_run += out.terminal ? 0 : 1;
  std::printf(
      "batch: %zu jobs  ok=%d failed=%d quarantined=%d resumed=%d "
      "not_run=%d\n",
      result.jobs.size(), result.ok, result.failed, result.quarantined,
      result.resumed, not_run);

  if (result.interrupted_by_signal != 0) {
    std::fprintf(stderr, "interrupted by signal %d; journal flushed, rerun "
                         "with --resume to continue\n",
                 result.interrupted_by_signal);
    return signal_exit_code(result.interrupted_by_signal);
  }
  if (result.aborted.has_value()) {
    std::fprintf(stderr, "batch aborted: %s\n",
                 result.aborted->to_string().c_str());
    return 6;
  }
  if (!options.manifest_path.empty()) {
    std::printf("wrote %s\n", options.manifest_path.c_str());
  }
  if (allow_failures) return not_run == 0 ? 0 : 7;
  return (result.failed == 0 && result.quarantined == 0 && not_run == 0) ? 0
                                                                         : 7;
}
