// 4-bit binary-to-Gray converter plus parity — a small structural
// Verilog sample for the blif2domino front end:
//   build/examples/blif2domino --timing examples/circuits/gray4.v
module gray4 (
  input [3:0] bin,
  output [3:0] gray,
  output parity
);
  assign gray[3] = bin[3];
  assign gray[2] = bin[3] ^ bin[2];
  assign gray[1] = bin[2] ^ bin[1];
  assign gray[0] = bin[1] ^ bin[0];
  assign parity = bin[3] ^ bin[2] ^ bin[1] ^ bin[0];
endmodule
