/// The full "ASIC flow" the paper sketches across sections IV-VII, end to
/// end on one circuit:
///
///   BLIF  -> two-level minimization (SIS-style preprocessing)
///         -> decomposition + unate conversion + SOI-aware mapping
///         -> sequence-aware discharge pruning      (paper sec. VII)
///         -> static timing + hysteresis analysis   (paper sec. I claim)
///         -> transistor sizing                     (paper's follow-up step)
///         -> SPICE + Verilog export for downstream tooling.
///
/// Build & run:   build/examples/asic_flow [circuit.blif]
/// Without an argument a built-in 4-bit comparator BLIF is used.
#include <cstdio>
#include <fstream>

#include "soidom/core/flow.hpp"
#include "soidom/domino/export.hpp"
#include "soidom/sizing/sizing.hpp"
#include "soidom/timing/timing.hpp"
#include "soidom/twolevel/minimize.hpp"

using namespace soidom;

namespace {

const char* kDefaultBlif = R"(
.model cmp4
.inputs a3 a2 a1 a0 b3 b2 b1 b0
.outputs gt eq
.names a3 b3 e3
11 1
00 1
.names a2 b2 e2
11 1
00 1
.names a1 b1 e1
11 1
00 1
.names a0 b0 e0
11 1
00 1
.names e3 e2 e1 e0 eq
1111 1
.names a3 b3 g3
10 1
.names a2 b2 g2
10 1
.names a1 b1 g1
10 1
.names a0 b0 g0
10 1
.names g3 e3 g2 e2 g1 e1 g0 gt
1------ 1
-11---- 1
-1-11-- 1
-1-1-11 1
.end
)";

}  // namespace

int main(int argc, char** argv) {
  try {
    // 1. Front end + two-level minimization.
    BlifModel model = argc > 1 ? parse_blif_file(argv[1])
                               : parse_blif(kDefaultBlif);
    const MinimizeStats min_stats = minimize_tables(model);
    std::printf("[minimize]  cubes %d -> %d, literals %d -> %d\n",
                min_stats.cubes_before, min_stats.cubes_after,
                min_stats.literals_before, min_stats.literals_after);

    // 2. Map with the SOI-aware flow, pruning unexcitable discharges.
    FlowOptions options;
    options.variant = FlowVariant::kSoiDominoMap;
    options.sequence_aware = true;
    options.exact_equivalence = true;
    const FlowResult flow = run_flow(model, options);
    std::printf("[map]       %s\n", summarize(flow).c_str());
    std::printf("[seq-aware] pruned %d unexcitable discharge point(s)\n",
                flow.discharges_pruned);
    if (!flow.ok()) {
      std::fprintf(stderr, "flow failed:\n%s%s",
                   flow.structure.to_string().c_str(),
                   flow.function.to_string().c_str());
      return 1;
    }

    // 3. Timing + hysteresis.
    const TimingReport timing = analyze_timing(flow.netlist);
    std::printf("[timing]    %s", timing.to_string().c_str());

    // 4. Sizing.
    const SizingResult sizing = size_netlist(flow.netlist);
    std::printf("[sizing]    est. delay %.2f -> %.2f (%.2fx), width %.1f -> %.1f\n",
                sizing.estimated_delay_before, sizing.estimated_delay_after,
                sizing.speedup(), sizing.total_width_before,
                sizing.total_width_after);

    // 5. Export.
    SpiceSizing spice_sizing;
    for (const GateSizing& gs : sizing.gates) {
      spice_sizing.pulldown_widths.push_back(gs.pulldown_widths);
      spice_sizing.inverter_widths.push_back(gs.inverter_width);
    }
    const std::string deck =
        export_spice(flow.netlist, model.name, SpiceModels{}, &spice_sizing);
    const std::string verilog = export_verilog(flow.netlist, model.name);
    const std::string sp_path = model.name + ".sp";
    const std::string v_path = model.name + ".v";
    std::ofstream(sp_path) << deck;
    std::ofstream(v_path) << verilog;
    std::printf("[export]    wrote %s (%zu bytes) and %s (%zu bytes)\n",
                sp_path.c_str(), deck.size(), v_path.c_str(), verilog.size());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
