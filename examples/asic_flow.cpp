/// The full "ASIC flow" the paper sketches across sections IV-VII, end to
/// end on one circuit:
///
///   BLIF  -> two-level minimization (SIS-style preprocessing)
///         -> decomposition + unate conversion + SOI-aware mapping
///         -> sequence-aware discharge pruning      (paper sec. VII)
///         -> static timing + hysteresis analysis   (paper sec. I claim)
///         -> transistor sizing                     (paper's follow-up step)
///         -> SPICE + Verilog export for downstream tooling.
///
/// Build & run:   build/examples/asic_flow [--diag-json] [--threads=N]
///                                         [--lint] [--lint-sarif=FILE]
///                                         [--csa] [--csa-sarif=FILE]
///                                         [--csa-margin=X]
///                                         [--race] [--race-sarif=FILE]
///                                         [--race-phases=N]
///                                         [--race-teval=X] [--race-tpre=X]
///                                         [--race-skew=X]
///                                         [--race-margin=X]
///                                         [--prove] [--prove-budget=N]
///                                         [--prove-fail-on=SEV]
///                                         [--prove-strict] [circuit.blif]
/// Without a circuit argument a built-in 4-bit comparator BLIF is used.
/// --threads=N sets the mapper DP thread count (0 = hardware concurrency,
/// 1 = sequential; the result is bit-identical for every thread count).
/// --lint prints the full lint report; --lint-sarif=FILE writes it as
/// SARIF 2.1.0 for CI annotation.  --csa runs the static charge-sharing /
/// PBE-safety analyzer (docs/CSA.md); --csa-sarif=FILE writes its
/// findings as SARIF 2.1.0 and --csa-margin=X sets the droop noise
/// margin as a fraction of VDD (default 0.25).  --race runs the static
/// phase / monotonicity / race analyzer (docs/RACE.md); --race-sarif=FILE
/// writes its findings as SARIF 2.1.0; --race-phases=N sets the clock
/// phase count and --race-teval/--race-tpre/--race-skew/--race-margin
/// configure the evaluate / precharge windows (0 = unconstrained).
/// --prove runs the exact proof tier (docs/PROVE.md) over the lint / csa
/// / race findings: each provable finding becomes confirmed (witness
/// logged), refuted (downgraded to info with a certificate), or unknown
/// (node budget hit).  --prove-budget=N caps BDD nodes per cone (default
/// 2^20); --prove-fail-on=info|warning|error sets the severity at which
/// a CONFIRMED finding fails the flow; --prove-strict exits 5
/// (kProofTimeout) when any proof obligation exceeds the budget.
///
/// Batch mode (src/batch; see docs/BATCH.md):
///   --batch[=a,b,c]   run the asic flow over the named benchmark
///                     circuits (bare --batch: every paper-table circuit)
///                     with watchdog + retry ladder + run journal
///   --resume          skip jobs already terminal in the journal
///   --journal=FILE    JSONL journal (default asic_flow.jsonl)
///   --manifest=FILE   merged manifest (default asic_flow.manifest.json)
///   --timeout-ms=N    per-attempt watchdog   --attempts=N  retry budget
///   --isolate         fork each attempt into a subprocess
///
/// All artifact files are written atomically (write-temp-fsync-rename),
/// so a crash or SIGKILL never leaves a truncated .sp/.v/SARIF on disk.
/// SIGINT/SIGTERM cancel the in-flight work cooperatively and exit with
/// 128+signum (130/143).
///
/// Exit codes (docs/ERRORS.md): 0 success, 2 parse error, 3 mapping
/// infeasible, 4 verification mismatch, 5 deadline/budget, 64 bad
/// options, 1 internal error; batch mode adds 6 (aborted), 7 (jobs
/// failed/quarantined), 130/143 (signal).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "soidom/base/fileio.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/batch/runner.hpp"
#include "soidom/batch/signals.hpp"
#include "soidom/benchgen/registry.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/domino/export.hpp"
#include "soidom/sizing/sizing.hpp"
#include "soidom/timing/timing.hpp"
#include "soidom/twolevel/minimize.hpp"

using namespace soidom;

namespace {

const char* kDefaultBlif = R"(
.model cmp4
.inputs a3 a2 a1 a0 b3 b2 b1 b0
.outputs gt eq
.names a3 b3 e3
11 1
00 1
.names a2 b2 e2
11 1
00 1
.names a1 b1 e1
11 1
00 1
.names a0 b0 e0
11 1
00 1
.names e3 e2 e1 e0 eq
1111 1
.names a3 b3 g3
10 1
.names a2 b2 g2
10 1
.names a1 b1 g1
10 1
.names a0 b0 g0
10 1
.names g3 e3 g2 e2 g1 e1 g0 gt
1------ 1
-11---- 1
-1-11-- 1
-1-1-11 1
.end
)";

std::vector<std::string> split_names(const std::string& list) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) out.push_back(list.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

/// The batch counterpart of the single-circuit flow below: same flow
/// options, many circuits, resilient outer loop.
int run_batch_mode(const std::vector<std::string>& circuits,
                   BatchOptions options) {
  std::vector<BatchJob> jobs;
  if (circuits.empty()) {
    for (const auto& list : {table1_circuits(), table2_circuits(),
                             table3_circuits(), table4_circuits()}) {
      for (const std::string& name : list) {
        bool seen = false;
        for (const BatchJob& j : jobs) seen = seen || j.name == name;
        if (!seen) jobs.push_back(BatchJob{name, ""});
      }
    }
  } else {
    for (const std::string& name : circuits) jobs.push_back(BatchJob{name, ""});
  }

  BatchHooks hooks;
  hooks.on_job_done = [](const JobOutcome& out) {
    const JobRecord& r = out.record;
    std::printf("[batch]     %-12s %-11s attempts=%d ladder=%s %s\n",
                r.job.c_str(), job_status_name(r.status), r.attempts,
                r.ladder.c_str(),
                r.status == JobStatus::kOk ? r.summary.c_str()
                                           : r.message.c_str());
    std::fflush(stdout);
  };

  BatchResult result;
  try {
    result = run_batch(jobs, options, hooks);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 64;
  }
  std::printf("[batch]     %zu jobs  ok=%d failed=%d quarantined=%d "
              "resumed=%d\n",
              result.jobs.size(), result.ok, result.failed,
              result.quarantined, result.resumed);
  if (result.interrupted_by_signal != 0) {
    std::fprintf(stderr, "[batch]     interrupted by signal %d; rerun with "
                         "--resume\n",
                 result.interrupted_by_signal);
    return signal_exit_code(result.interrupted_by_signal);
  }
  if (result.aborted.has_value()) {
    std::fprintf(stderr, "[batch]     aborted: %s\n",
                 result.aborted->to_string().c_str());
    return 6;
  }
  return (result.failed == 0 && result.quarantined == 0) ? 0 : 7;
}

}  // namespace

int main(int argc, char** argv) {
  bool diag_json = false;
  bool want_lint = false;
  bool want_csa = false;
  double csa_margin = -1.0;
  bool want_race = false;
  RaceOptions race_options;
  bool want_prove = false;
  ProveOptions prove_options;
  LintSeverity prove_fail_on = LintSeverity::kError;
  int num_threads = 0;
  bool batch_mode = false;
  std::vector<std::string> batch_circuits;
  BatchOptions batch;
  batch.journal_path = "asic_flow.jsonl";
  batch.manifest_path = "asic_flow.manifest.json";
  std::string lint_sarif_path;
  std::string csa_sarif_path;
  std::string race_sarif_path;
  std::string path;
  // Strict numeric parses: atoi/atof would turn "--jobs=all" or
  // "--csa-margin=high" into 0 silently.
  bool bad_number = false;
  auto int_flag = [&](const char* text, const char* flag, int* out) {
    if (!parse_int_strict(text, out)) {
      std::fprintf(stderr, "error: %s needs an integer, got '%s'\n", flag,
                   text);
      bad_number = true;
    }
  };
  auto double_flag = [&](const char* text, const char* flag, double* out) {
    if (!parse_double_strict(text, out)) {
      std::fprintf(stderr, "error: %s needs a number, got '%s'\n", flag,
                   text);
      bad_number = true;
    }
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--diag-json") == 0) {
      diag_json = true;
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      want_lint = true;
    } else if (std::strncmp(argv[i], "--lint-sarif=", 13) == 0) {
      lint_sarif_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--csa") == 0) {
      want_csa = true;
    } else if (std::strncmp(argv[i], "--csa-sarif=", 12) == 0) {
      want_csa = true;
      csa_sarif_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--csa-margin=", 13) == 0) {
      want_csa = true;
      double_flag(argv[i] + 13, "--csa-margin", &csa_margin);
    } else if (std::strcmp(argv[i], "--race") == 0) {
      want_race = true;
    } else if (std::strncmp(argv[i], "--race-sarif=", 13) == 0) {
      want_race = true;
      race_sarif_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--race-phases=", 14) == 0) {
      want_race = true;
      int_flag(argv[i] + 14, "--race-phases", &race_options.num_phases);
    } else if (std::strncmp(argv[i], "--race-teval=", 13) == 0) {
      want_race = true;
      double_flag(argv[i] + 13, "--race-teval", &race_options.t_eval);
    } else if (std::strncmp(argv[i], "--race-tpre=", 12) == 0) {
      want_race = true;
      double_flag(argv[i] + 12, "--race-tpre", &race_options.t_pre);
    } else if (std::strncmp(argv[i], "--race-skew=", 12) == 0) {
      want_race = true;
      double_flag(argv[i] + 12, "--race-skew", &race_options.skew);
    } else if (std::strncmp(argv[i], "--race-margin=", 14) == 0) {
      want_race = true;
      double_flag(argv[i] + 14, "--race-margin", &race_options.margin);
    } else if (std::strcmp(argv[i], "--prove") == 0) {
      want_prove = true;
    } else if (std::strncmp(argv[i], "--prove-budget=", 15) == 0) {
      want_prove = true;
      int budget = 0;
      int_flag(argv[i] + 15, "--prove-budget", &budget);
      prove_options.node_budget = static_cast<std::uint32_t>(budget);
    } else if (std::strncmp(argv[i], "--prove-fail-on=", 16) == 0) {
      want_prove = true;
      const std::string sev = argv[i] + 16;
      if (sev == "info") prove_fail_on = LintSeverity::kInfo;
      else if (sev == "warning") prove_fail_on = LintSeverity::kWarning;
      else if (sev == "error") prove_fail_on = LintSeverity::kError;
      else {
        std::fprintf(stderr,
                     "error: --prove-fail-on needs info|warning|error, "
                     "got '%s'\n",
                     sev.c_str());
        bad_number = true;
      }
    } else if (std::strcmp(argv[i], "--prove-strict") == 0) {
      want_prove = true;
      prove_options.fail_on_budget = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      int_flag(argv[i] + 10, "--threads", &num_threads);
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch_mode = true;
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      batch_mode = true;
      batch_circuits = split_names(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      batch.resume = true;
    } else if (std::strncmp(argv[i], "--journal=", 10) == 0) {
      batch.journal_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--manifest=", 11) == 0) {
      batch.manifest_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--timeout-ms=", 13) == 0) {
      int timeout_ms = 0;
      int_flag(argv[i] + 13, "--timeout-ms", &timeout_ms);
      batch.job_timeout_ms = timeout_ms;
    } else if (std::strncmp(argv[i], "--attempts=", 11) == 0) {
      int_flag(argv[i] + 11, "--attempts", &batch.retry.max_attempts);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      int_flag(argv[i] + 7, "--jobs", &batch.max_parallel);
    } else if (std::strcmp(argv[i], "--isolate") == 0) {
      batch.isolate = true;
    } else {
      path = argv[i];
    }
  }
  if (bad_number) return 64;

  install_signal_cancel();

  if (batch_mode) {
    batch.flow.variant = FlowVariant::kSoiDominoMap;
    batch.flow.sequence_aware = true;
    batch.flow.exact_equivalence = true;
    batch.flow.mapper.num_threads = num_threads;
    batch.flow.csa = want_csa;
    if (csa_margin >= 0.0) batch.flow.csa_options.margin = csa_margin;
    batch.flow.race = want_race;
    batch.flow.race_options = race_options;
    batch.flow.prove = want_prove;
    batch.flow.prove_options = prove_options;
    batch.flow.prove_fail_on = prove_fail_on;
    return run_batch_mode(batch_circuits, batch);
  }

  auto report = [&](const Diagnostic& d) {
    if (diag_json) {
      std::printf("%s\n", d.to_json().c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", d.to_string().c_str());
    }
    if (d.code == ErrorCode::kCancelled && signal_received() != 0) {
      return signal_exit_code(signal_received());
    }
    return cli_exit_code(d);
  };

  try {
    // 1. Front end + two-level minimization.
    BlifModel model;
    try {
      model = path.empty() ? parse_blif(kDefaultBlif) : parse_blif_file(path);
    } catch (const Error& e) {
      return report(Diagnostic{ErrorCode::kParseError, FlowStage::kParse,
                               e.what(),
                               {}});
    }
    const MinimizeStats min_stats = minimize_tables(model);
    std::printf("[minimize]  cubes %d -> %d, literals %d -> %d\n",
                min_stats.cubes_before, min_stats.cubes_after,
                min_stats.literals_before, min_stats.literals_after);

    // 2. Map with the SOI-aware flow, pruning unexcitable discharges.
    FlowOptions options;
    options.variant = FlowVariant::kSoiDominoMap;
    options.sequence_aware = true;
    options.exact_equivalence = true;
    options.mapper.num_threads = num_threads;
    options.csa = want_csa;
    if (csa_margin >= 0.0) options.csa_options.margin = csa_margin;
    options.race = want_race;
    options.race_options = race_options;
    options.prove = want_prove;
    options.prove_options = prove_options;
    options.prove_fail_on = prove_fail_on;
    GuardOptions gopts;
    gopts.cancel = signal_cancel_token();
    const FlowOutcome outcome = run_flow_guarded(model, options, gopts);
    for (const Diagnostic& warning : outcome.warnings) {
      std::fprintf(stderr, "warning: %s\n", warning.to_string().c_str());
    }
    if (!outcome.result.has_value()) return report(*outcome.diagnostic);
    const FlowResult& flow = *outcome.result;
    std::printf("[map]       %s\n", summarize(flow).c_str());
    std::printf("[seq-aware] pruned %d unexcitable discharge point(s)\n",
                flow.discharges_pruned);
    std::printf("[lint]      %s\n", flow.lint.summary().c_str());
    if (want_lint) std::fputs(flow.lint.to_text().c_str(), stdout);
    if (!lint_sarif_path.empty()) {
      write_file_atomic(lint_sarif_path,
                        flow.lint.to_sarif(path.empty() ? "cmp4.blif" : path));
      std::printf("[lint]      wrote %s\n", lint_sarif_path.c_str());
    }
    if (flow.csa.has_value()) {
      const CsaReport& csa = flow.csa->report;
      std::printf("[csa]       %s  max_droop=%.3f over_margin=%d "
                  "overpowered=%d truncated=%d\n",
                  flow.csa->lint.summary().c_str(), csa.max_droop,
                  csa.gates_over_margin, csa.gates_keeper_overpowered,
                  csa.gates_truncated);
      if (!csa_sarif_path.empty()) {
        write_file_atomic(
            csa_sarif_path,
            flow.csa->lint.to_sarif(path.empty() ? "cmp4.blif" : path));
        std::printf("[csa]       wrote %s\n", csa_sarif_path.c_str());
      }
    }
    if (flow.race.has_value()) {
      const RaceReport& race = flow.race->report;
      std::printf("[race]      %s  levels=%d crit=%.3f skew_tol=%.3f "
                  "parity=%d mix=%d stale=%d\n",
                  flow.race->lint.summary().c_str(), race.max_level,
                  race.critical_arrival, race.skew_tolerance,
                  race.gates_parity, race.gates_mix, race.gates_stale);
      if (!race_sarif_path.empty()) {
        write_file_atomic(
            race_sarif_path,
            flow.race->lint.to_sarif(path.empty() ? "cmp4.blif" : path));
        std::printf("[race]      wrote %s\n", race_sarif_path.c_str());
      }
    }
    if (flow.prove.has_value()) {
      std::printf("[prove]     %s  budget_hits=%d\n",
                  flow.prove->summary().c_str(), flow.prove->budget_hits);
      for (const ProofRecord& r : flow.prove->records) {
        std::printf("[prove]       %-9s %s %s: %s\n",
                    proof_status_name(r.status), r.rule.c_str(),
                    r.location.qualified_name().c_str(),
                    r.certificate.c_str());
      }
    }
    if (outcome.diagnostic.has_value()) return report(*outcome.diagnostic);

    // 3. Timing + hysteresis.
    const TimingReport timing = analyze_timing(flow.netlist);
    std::printf("[timing]    %s", timing.to_string().c_str());

    // 4. Sizing.
    const SizingResult sizing = size_netlist(flow.netlist);
    std::printf("[sizing]    est. delay %.2f -> %.2f (%.2fx), width %.1f -> %.1f\n",
                sizing.estimated_delay_before, sizing.estimated_delay_after,
                sizing.speedup(), sizing.total_width_before,
                sizing.total_width_after);

    // 5. Export (atomic: a crash never leaves a truncated deck).
    SpiceSizing spice_sizing;
    for (const GateSizing& gs : sizing.gates) {
      spice_sizing.pulldown_widths.push_back(gs.pulldown_widths);
      spice_sizing.inverter_widths.push_back(gs.inverter_width);
    }
    const std::string deck =
        export_spice(flow.netlist, model.name, SpiceModels{}, &spice_sizing);
    const std::string verilog = export_verilog(flow.netlist, model.name);
    const std::string sp_path = model.name + ".sp";
    const std::string v_path = model.name + ".v";
    write_file_atomic(sp_path, deck);
    write_file_atomic(v_path, verilog);
    std::printf("[export]    wrote %s (%zu bytes) and %s (%zu bytes)\n",
                sp_path.c_str(), deck.size(), v_path.c_str(), verilog.size());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
