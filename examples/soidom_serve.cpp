/// Crash-only persistent mapping service front end (docs/SERVE.md).
///
///   build/examples/soidom_serve serve  --socket=PATH [options]
///   build/examples/soidom_serve submit --socket=PATH [jobs...] [options]
///   build/examples/soidom_serve ping   --socket=PATH
///   build/examples/soidom_serve stats  --socket=PATH
///
/// `serve` binds a Unix-domain socket and answers NDJSON mapping
/// requests until SIGINT/SIGTERM, then drains gracefully (in-flight
/// jobs cancelled at guard checkpoints, every pending request answered
/// with a structured error, cone-cache spill compacted) and exits
/// 128+signum.  Repeat mappings are served from a content-addressed
/// cone cache that survives kill -9 via a checksummed spill journal.
///
/// `submit` sends one map request per job, prints per-job outcome lines,
/// and optionally writes a manifest byte-identical to what an offline
/// soidom_batch run over the same jobs would produce.
///
/// serve options:
///   --socket=PATH            Unix-domain socket path (required)
///   --spill=FILE             cone-cache spill journal (default: none)
///   --cache-mb=N             in-memory cache budget (default 256)
///   --no-durable             skip per-append fsync (tests)
///   --max-connections=N      concurrent clients (default 32)
///   --max-in-flight=N        concurrent map jobs (default 4)
///   --timeout-ms=N           default per-job watchdog (0 = none)
///   --attempts=N             retry budget per job (default 3)
///   --report=FILE            write the final JSON report here too
///   --inject=N/D@SEED        seeded per-(job,attempt) fault injection
///   flow knobs: --flow=domino|rs|soi --wmax=N --hmax=N --threads=N
///               --seq-aware --exact --verify=N
///
/// submit options:
///   --circuits=a,b,c         named benchmark-registry circuits
///   circuit.blif ...         BLIF files (job key = the path)
///   --deadline-ms=N          per-request deadline override
///   --manifest=FILE          write a batch-compatible manifest
///
/// Exit codes (docs/ERRORS.md): serve exits 0 on request_stop-less
/// clean return, 130/143 when drained by SIGINT/SIGTERM, 64 bad usage,
/// 6 socket setup failure.  submit: 0 all jobs ok, 7 some failed or
/// rejected, 6 transport failure, 64 bad usage.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "soidom/base/fileio.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/batch/signals.hpp"
#include "soidom/serve/server.hpp"

using namespace soidom;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s serve  --socket=PATH [--spill=FILE] [--cache-mb=N]\n"
      "                 [--no-durable] [--max-connections=N]\n"
      "                 [--max-in-flight=N] [--timeout-ms=N] [--attempts=N]\n"
      "                 [--report=FILE] [--inject=N/D@SEED]\n"
      "                 [--flow=domino|rs|soi] [--wmax=N] [--hmax=N]\n"
      "                 [--threads=N] [--seq-aware] [--exact] [--verify=N]\n"
      "       %s submit --socket=PATH [--circuits=a,b,c] [--deadline-ms=N]\n"
      "                 [--manifest=FILE] [circuit.blif ...]\n"
      "       %s ping   --socket=PATH\n"
      "       %s stats  --socket=PATH\n",
      argv0, argv0, argv0, argv0);
  std::exit(64);
}

std::vector<std::string> split_names(const std::string& list) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > begin) out.push_back(list.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

int run_serve(int argc, char** argv) {
  ServeOptions options;
  std::string report_path;
  auto int_flag = [&](const std::string& text, const char* flag, int* out) {
    if (!parse_int_strict(text, out)) {
      std::fprintf(stderr, "error: %s needs an integer, got '%s'\n", flag,
                   text.c_str());
      usage(argv[0]);
    }
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      options.socket_path = arg.substr(9);
    } else if (arg.rfind("--spill=", 0) == 0) {
      options.cache.spill_path = arg.substr(8);
    } else if (arg.rfind("--cache-mb=", 0) == 0) {
      int mb = 0;
      int_flag(arg.substr(11), "--cache-mb", &mb);
      if (mb < 1) usage(argv[0]);
      options.cache.max_bytes = static_cast<std::size_t>(mb) << 20;
    } else if (arg == "--no-durable") {
      options.cache.durable = false;
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      int_flag(arg.substr(18), "--max-connections", &options.max_connections);
    } else if (arg.rfind("--max-in-flight=", 0) == 0) {
      int_flag(arg.substr(16), "--max-in-flight", &options.max_in_flight);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      int timeout_ms = 0;
      int_flag(arg.substr(13), "--timeout-ms", &timeout_ms);
      options.batch.job_timeout_ms = timeout_ms;
    } else if (arg.rfind("--attempts=", 0) == 0) {
      int_flag(arg.substr(11), "--attempts",
               &options.batch.retry.max_attempts);
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else if (arg.rfind("--inject=", 0) == 0) {
      unsigned long long numer = 0;
      unsigned long long denom = 0;
      unsigned long long seed = 0;
      if (std::sscanf(arg.c_str() + 9, "%llu/%llu@%llu", &numer, &denom,
                      &seed) != 3 ||
          denom == 0) {
        usage(argv[0]);
      }
      options.batch.fault = BatchFaultPlan{seed, numer, denom};
    } else if (arg == "--flow=domino") {
      options.batch.flow.variant = FlowVariant::kDominoMap;
    } else if (arg == "--flow=rs") {
      options.batch.flow.variant = FlowVariant::kRsMap;
    } else if (arg == "--flow=soi") {
      options.batch.flow.variant = FlowVariant::kSoiDominoMap;
    } else if (arg.rfind("--wmax=", 0) == 0) {
      int_flag(arg.substr(7), "--wmax", &options.batch.flow.mapper.max_width);
    } else if (arg.rfind("--hmax=", 0) == 0) {
      int_flag(arg.substr(7), "--hmax", &options.batch.flow.mapper.max_height);
    } else if (arg.rfind("--threads=", 0) == 0) {
      int_flag(arg.substr(10), "--threads",
               &options.batch.flow.mapper.num_threads);
    } else if (arg == "--seq-aware") {
      options.batch.flow.sequence_aware = true;
    } else if (arg == "--exact") {
      options.batch.flow.exact_equivalence = true;
    } else if (arg.rfind("--verify=", 0) == 0) {
      int_flag(arg.substr(9), "--verify", &options.batch.flow.verify_rounds);
    } else {
      usage(argv[0]);
    }
  }
  if (options.socket_path.empty()) usage(argv[0]);

  try {
    MappingServer server(options);
    std::fprintf(stderr, "serving on %s\n", options.socket_path.c_str());
    const ServeReport report = server.run();
    for (const Diagnostic& warn : report.spill_warnings) {
      std::fprintf(stderr, "warning: %s\n", warn.to_string().c_str());
    }
    const std::string json = report.to_json();
    std::fputs(json.c_str(), stdout);
    if (!report_path.empty()) {
      try {
        write_file_atomic(report_path, json);
      } catch (const Error& e) {
        std::fprintf(stderr, "warning: cannot write report: %s\n", e.what());
      }
    }
    if (report.interrupted_by_signal != 0) {
      std::fprintf(stderr, "drained on signal %d\n",
                   report.interrupted_by_signal);
      return signal_exit_code(report.interrupted_by_signal);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 6;
  }
}

int run_submit(int argc, char** argv) {
  std::string socket_path;
  std::string manifest_path;
  std::int64_t deadline_ms = 0;
  std::vector<std::string> named;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg.rfind("--circuits=", 0) == 0) {
      for (auto& name : split_names(arg.substr(11))) named.push_back(name);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      int ms = 0;
      if (!parse_int_strict(arg.substr(14), &ms) || ms < 0) usage(argv[0]);
      deadline_ms = ms;
    } else if (arg.rfind("--manifest=", 0) == 0) {
      manifest_path = arg.substr(11);
    } else if (arg.rfind("--", 0) == 0) {
      usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (socket_path.empty() || (named.empty() && files.empty())) usage(argv[0]);

  std::vector<ServeRequest> requests;
  int id = 0;
  for (const std::string& name : named) {
    ServeRequest r;
    r.id = format("r%d", ++id);
    r.circuit = name;
    r.deadline_ms = deadline_ms;
    requests.push_back(r);
  }
  for (const std::string& path : files) {
    ServeRequest r;
    r.id = format("r%d", ++id);
    r.blif_path = path;
    r.deadline_ms = deadline_ms;
    requests.push_back(r);
  }

  std::vector<ServeResponse> responses;
  std::string error;
  const bool transport_ok =
      run_client(socket_path, requests, &responses, &error);

  // The manifest merges result records exactly like soidom_batch merges
  // its journal: same codec, same sort, same bytes.
  std::map<std::string, JobRecord> records;
  int ok = 0;
  int failed = 0;
  int rejected = 0;
  for (const ServeResponse& r : responses) {
    if (r.kind == "result") {
      records[r.record.job] = r.record;
      if (r.record.status == JobStatus::kOk) {
        ++ok;
        std::printf("%-12s ok       attempts=%d ladder=%s  %s\n",
                    r.record.job.c_str(), r.record.attempts,
                    r.record.ladder.c_str(), r.record.summary.c_str());
      } else {
        ++failed;
        std::printf("%-12s %-8s attempts=%d ladder=%s  %s: %s: %s\n",
                    r.record.job.c_str(), job_status_name(r.record.status),
                    r.record.attempts, r.record.ladder.c_str(),
                    r.record.stage.c_str(), r.record.code.c_str(),
                    r.record.message.c_str());
      }
    } else {
      ++rejected;
      std::printf("%-12s rejected %s: %s: %s\n", r.id.c_str(),
                  r.stage.c_str(), r.code.c_str(), r.message.c_str());
    }
    std::fflush(stdout);
  }
  std::printf("submit: %zu jobs  ok=%d failed=%d rejected=%d\n",
              requests.size(), ok, failed, rejected);
  if (!transport_ok) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 6;
  }
  if (!manifest_path.empty()) {
    try {
      write_manifest(records, manifest_path);
      std::printf("wrote %s\n", manifest_path.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "error: cannot write manifest: %s\n", e.what());
      return 6;
    }
  }
  return (failed == 0 && rejected == 0) ? 0 : 7;
}

int run_simple(int argc, char** argv, ServeRequest::Kind kind) {
  std::string socket_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else {
      usage(argv[0]);
    }
  }
  if (socket_path.empty()) usage(argv[0]);
  ServeRequest request;
  request.kind = kind;
  request.id = kind == ServeRequest::Kind::kPing ? "ping" : "stats";
  std::vector<ServeResponse> responses;
  std::string error;
  if (!run_client(socket_path, {request}, &responses, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 6;
  }
  if (kind == ServeRequest::Kind::kPing) {
    std::printf("%s\n", responses[0].kind == "pong" ? "pong" : "unexpected");
    return responses[0].kind == "pong" ? 0 : 1;
  }
  std::printf("%s\n", responses[0].raw.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string mode = argv[1];
  if (mode == "serve") return run_serve(argc, argv);
  if (mode == "submit") return run_submit(argc, argv);
  if (mode == "ping") return run_simple(argc, argv, ServeRequest::Kind::kPing);
  if (mode == "stats") {
    return run_simple(argc, argv, ServeRequest::Kind::kStats);
  }
  usage(argv[0]);
}
