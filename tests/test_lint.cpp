/// \file test_lint.cpp
/// The lint engine: one deliberately-corrupted netlist per rule (each must
/// fire exactly its intended rule), report emitters (text / JSON / SARIF
/// 2.1.0 shape), the verify_structure compatibility shim, and the
/// paper-table circuits mapping + linting clean at every thread count.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <memory>
#include <set>
#include <string>

#include "helpers.hpp"
#include "soidom/benchgen/registry.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/domino/postpass.hpp"
#include "soidom/domino/verify.hpp"
#include "soidom/lint/lint.hpp"
#include "soidom/network/builder.hpp"

namespace soidom {
namespace {

// --- small JSON well-formedness parser (validates emitter output and the
// --- SARIF 2.1.0 shape without external dependencies) ----------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool literal(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (!eat(*p)) return false;
    }
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_++])) == 0) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
    }
    return false;
  }
  bool digit() const {
    return std::isdigit(static_cast<unsigned char>(peek())) != 0;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (digit()) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (digit()) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (digit()) ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }
  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool json_well_formed(const std::string& text) {
  return JsonParser(text).valid();
}

// --- fixture helpers -------------------------------------------------------

/// Number of error-severity findings carrying `rule`.
int errors_with_rule(const LintReport& report, const std::string& rule) {
  int n = 0;
  for (const Finding& f : report.findings) {
    if (f.severity == LintSeverity::kError && f.rule == rule) ++n;
  }
  return n;
}

/// Asserts the report's error findings all carry `rule` (at least one).
void expect_only_error_rule(const LintReport& report, const std::string& rule) {
  EXPECT_GT(errors_with_rule(report, rule), 0) << report.to_text();
  for (const Finding& f : report.findings) {
    if (f.severity == LintSeverity::kError) {
      EXPECT_EQ(f.rule, rule) << f.to_string();
    }
  }
}

/// One footed gate over the first `leaves` input literals, combined
/// `series` or parallel, with a named output.
DominoNetlist simple_netlist(int leaves, bool series) {
  DominoNetlist nl;
  std::vector<std::uint32_t> sigs;
  for (int i = 0; i < leaves; ++i) {
    sigs.push_back(nl.add_input({"x" + std::to_string(i), i, false}));
  }
  DominoGate g;
  std::vector<PdnIndex> kids;
  for (const std::uint32_t s : sigs) kids.push_back(g.pdn.add_leaf(s));
  g.pdn.set_root(series ? g.pdn.add_series(std::move(kids))
                        : g.pdn.add_parallel(std::move(kids)));
  g.footed = true;
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "z", false, -1});
  return nl;
}

// --- engine basics ---------------------------------------------------------

TEST(Lint, SeverityNames) {
  EXPECT_STREQ(lint_severity_name(LintSeverity::kError), "error");
  EXPECT_STREQ(lint_severity_name(LintSeverity::kWarning), "warning");
  EXPECT_STREQ(lint_severity_name(LintSeverity::kInfo), "info");
  EXPECT_STREQ(lint_severity_sarif_level(LintSeverity::kError), "error");
  EXPECT_STREQ(lint_severity_sarif_level(LintSeverity::kWarning), "warning");
  EXPECT_STREQ(lint_severity_sarif_level(LintSeverity::kInfo), "note");
}

TEST(Lint, CleanNetlistLintsClean) {
  const LintReport report = run_lint(simple_netlist(2, true));
  EXPECT_TRUE(report.clean(LintSeverity::kInfo)) << report.to_text();
  EXPECT_EQ(report.summary(), "clean");
  EXPECT_GE(report.rules.size(), 13u);  // the full built-in catalogue ran
  EXPECT_EQ(report.to_text(), "lint: clean\n");
}

TEST(Lint, DisabledRulesAreSkipped) {
  DominoNetlist nl = simple_netlist(1, true);
  nl.gates()[0].footed = false;  // footedness violation
  LintOptions options;
  EXPECT_FALSE(run_lint(nl, options).clean());
  options.disabled_rules = {"footedness"};
  const LintReport report = run_lint(nl, options);
  EXPECT_TRUE(report.clean()) << report.to_text();
  for (const LintRuleInfo& info : report.rules) {
    EXPECT_NE(info.id, "footedness");  // not even in the rules table
  }
}

TEST(Lint, CustomRuleGetsIdBackfilled) {
  class AlwaysFires final : public LintRule {
   public:
    const char* id() const override { return "custom-rule"; }
    const char* summary() const override { return "always fires"; }
    bool needs_sound() const override { return false; }
    void run(const LintContext&, std::vector<Finding>& out) const override {
      Finding f;
      f.message = "hello";
      out.push_back(std::move(f));  // rule id left empty on purpose
    }
  };
  LintRegistry registry;
  registry.add(std::make_unique<AlwaysFires>());
  const LintReport report = run_lint(registry, simple_netlist(1, true));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "custom-rule");
}

// --- one corrupted fixture per rule ----------------------------------------

TEST(LintRules, TopoOrderFires) {
  DominoNetlist nl;
  const std::uint32_t a = nl.add_input({"a", 0, false});
  DominoGate g;  // leaf 1 is this gate's own output signal
  g.pdn.set_root(g.pdn.add_series({g.pdn.add_leaf(a), g.pdn.add_leaf(1)}));
  g.footed = true;
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "z", false, -1});
  const LintReport report = run_lint(nl);
  expect_only_error_rule(report, "topo-order");
  EXPECT_NE(report.to_text().find("topologically"), std::string::npos);
}

TEST(LintRules, DanglingRefFiresOnLeafSignal) {
  DominoNetlist nl;
  (void)nl.add_input({"a", 0, false});
  DominoGate g;
  g.pdn.set_root(g.pdn.add_leaf(99));  // no such signal
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "z", false, -1});
  expect_only_error_rule(run_lint(nl), "dangling-ref");
}

TEST(LintRules, DanglingRefFiresOnOutputSignal) {
  DominoNetlist nl = simple_netlist(1, true);
  DominoNetlist bad;
  (void)bad.add_input({"x0", 0, false});
  bad.add_gate(nl.gates()[0]);
  bad.add_output({57, "z", false, -1});  // dangling output
  expect_only_error_rule(run_lint(bad), "dangling-ref");
}

TEST(LintRules, DanglingRefFiresOnBogusDischargePoint) {
  DominoNetlist nl = simple_netlist(1, true);
  nl.gates()[0].discharges.push_back(DischargePoint{0, 5});  // leaf node
  expect_only_error_rule(run_lint(nl), "dangling-ref");
  DominoNetlist nl2 = simple_netlist(1, true);
  nl2.gates()[0].discharges.push_back(DischargePoint{40, 0});  // no such node
  expect_only_error_rule(run_lint(nl2), "dangling-ref");
}

TEST(LintRules, DanglingRefFiresOnDischarges2OfClassicGate) {
  DominoNetlist nl = simple_netlist(1, true);
  nl.gates()[0].discharges2.push_back(DischargePoint{});
  expect_only_error_rule(run_lint(nl), "dangling-ref");
}

TEST(LintRules, EmptyGateFires) {
  DominoNetlist nl = simple_netlist(1, true);
  nl.gates()[0].pdn = Pdn{};  // corrupt post-construction
  expect_only_error_rule(run_lint(nl), "empty-gate");
}

TEST(LintRules, FootednessFires) {
  DominoNetlist nl = simple_netlist(1, true);
  nl.gates()[0].footed = false;  // leaf IS an input literal
  const LintReport report = run_lint(nl);
  expect_only_error_rule(report, "footedness");
  EXPECT_FALSE(report.findings[0].fixit.empty());

  DominoNetlist nl2 = simple_netlist(1, true);
  nl2.gates()[0].footed2 = true;  // classic gate cannot have a second foot
  expect_only_error_rule(run_lint(nl2), "footedness");
}

TEST(LintRules, ShapeLimitsFires) {
  LintOptions options;
  options.max_width = 2;
  options.max_height = 8;
  const DominoNetlist wide = simple_netlist(3, /*series=*/false);
  expect_only_error_rule(run_lint(wide, options), "shape-limits");

  options.max_width = 0;
  options.max_height = 2;
  const DominoNetlist tall = simple_netlist(3, /*series=*/true);
  expect_only_error_rule(run_lint(tall, options), "shape-limits");

  // Limits of 0 disable the rule entirely.
  EXPECT_TRUE(run_lint(wide).clean(LintSeverity::kInfo));
}

TEST(LintRules, InputPhaseFiresOnUnsetProvenance) {
  DominoNetlist nl;
  (void)nl.add_input({"a", -1, false});  // unset source PI
  DominoGate g;
  g.pdn.set_root(g.pdn.add_leaf(0));
  g.footed = true;
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "z", false, -1});
  expect_only_error_rule(run_lint(nl), "input-phase");
}

TEST(LintRules, InputPhaseWarnsOnDuplicateLiteral) {
  DominoNetlist nl;
  const std::uint32_t a1 = nl.add_input({"a", 0, false});
  const std::uint32_t a2 = nl.add_input({"a_dup", 0, false});  // same (PI,phase)
  DominoGate g;
  g.pdn.set_root(g.pdn.add_series({g.pdn.add_leaf(a1), g.pdn.add_leaf(a2)}));
  g.footed = true;
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "z", false, -1});
  const LintReport report = run_lint(nl);
  EXPECT_EQ(report.count(LintSeverity::kError), 0) << report.to_text();
  ASSERT_EQ(report.count(LintSeverity::kWarning), 1);
  EXPECT_EQ(report.findings[0].rule, "input-phase");
  EXPECT_EQ(report.findings[0].severity, LintSeverity::kWarning);
}

TEST(LintRules, IoContractFiresOnUnnamedOutput) {
  DominoNetlist nl = simple_netlist(1, true);
  DominoNetlist bad;
  (void)bad.add_input({"x0", 0, false});
  bad.add_gate(nl.gates()[0]);
  bad.add_output({bad.signal_of_gate(0), "", false, -1});
  expect_only_error_rule(run_lint(bad), "io-contract");
}

TEST(LintRules, IoContractFiresAgainstSource) {
  NetworkBuilder b;
  const NodeId a = b.add_pi("x0");
  b.add_output(a, "z");
  const Network source = std::move(b).build();

  DominoNetlist nl = simple_netlist(1, true);
  DominoNetlist renamed;
  (void)renamed.add_input({"x0", 0, false});
  renamed.add_gate(nl.gates()[0]);
  renamed.add_output({renamed.signal_of_gate(0), "y", false, -1});  // not "z"
  expect_only_error_rule(run_lint(renamed, {}, &source), "io-contract");

  DominoNetlist extra = simple_netlist(1, true);  // output named "z"
  EXPECT_TRUE(run_lint(extra, {}, &source).clean());
}

TEST(LintRules, OverheadCountFiresOnDuplicateDischarge) {
  DominoNetlist nl = simple_netlist(2, true);
  const PdnIndex root = nl.gates()[0].pdn.root();
  nl.gates()[0].discharges.push_back(DischargePoint{root, 0});
  nl.gates()[0].discharges.push_back(DischargePoint{root, 0});  // duplicate
  const LintReport report = run_lint(nl);
  expect_only_error_rule(report, "overhead-count");
  EXPECT_NE(report.to_text().find("duplicate discharge"), std::string::npos);
}

TEST(LintRules, ClockFootFiresOnGroundedBottomDischarge) {
  DominoNetlist nl = simple_netlist(2, true);
  nl.gates()[0].discharges.push_back(DischargePoint{});  // bottom marker
  LintOptions options;
  options.grounding = GroundingPolicy::kAllGrounded;  // bottom IS grounded
  expect_only_error_rule(run_lint(nl, options), "clock-foot");
}

TEST(LintRules, ExcessDischargeWarns) {
  DominoNetlist nl = simple_netlist(2, true);
  const PdnIndex root = nl.gates()[0].pdn.root();
  // A grounded two-transistor series chain needs no discharge at all.
  nl.gates()[0].discharges.push_back(DischargePoint{root, 0});
  const LintReport report = run_lint(nl);
  EXPECT_EQ(report.count(LintSeverity::kError), 0) << report.to_text();
  ASSERT_EQ(report.count(LintSeverity::kWarning), 1);
  EXPECT_EQ(report.findings[0].rule, "excess-discharge");
  EXPECT_EQ(report.findings[0].fixit, "remove it");
  EXPECT_EQ(report.findings[0].location.detail, "j0");
}

TEST(LintRules, PbeProtectionFires) {
  const DominoNetlist nl = simple_netlist(2, /*series=*/false);
  LintOptions options;
  options.grounding = GroundingPolicy::kNoneGrounded;  // parallel root floats
  const LintReport report = run_lint(nl, options);
  expect_only_error_rule(report, "pbe-protection");
  // The headline rule suggests the repair at the canonical point label.
  bool fixit_seen = false;
  for (const Finding& f : report.findings) {
    if (f.rule == "pbe-protection" && !f.fixit.empty()) fixit_seen = true;
  }
  EXPECT_TRUE(fixit_seen);
}

TEST(LintRules, PbeProtectionHonorsInsertedDischarges) {
  DominoNetlist nl = simple_netlist(2, /*series=*/false);
  insert_discharges(nl, GroundingPolicy::kNoneGrounded);
  LintOptions options;
  options.grounding = GroundingPolicy::kNoneGrounded;
  const LintReport report = run_lint(nl, options);
  EXPECT_TRUE(report.clean(LintSeverity::kInfo)) << report.to_text();
}

TEST(LintRules, UnusedLogicWarns) {
  DominoNetlist nl;
  const std::uint32_t a = nl.add_input({"a", 0, false});
  (void)nl.add_input({"b", 1, false});  // never consumed -> info
  auto add_buffer_gate = [&] {
    DominoGate g;
    g.pdn.set_root(g.pdn.add_leaf(a));
    g.footed = true;
    nl.add_gate(std::move(g));
  };
  add_buffer_gate();  // gate 0: drives the output
  add_buffer_gate();  // gate 1: consumed by nobody -> warning
  nl.add_output({nl.signal_of_gate(0), "z", false, -1});
  const LintReport report = run_lint(nl);
  EXPECT_EQ(report.count(LintSeverity::kError), 0) << report.to_text();
  EXPECT_EQ(report.count(LintSeverity::kWarning), 1);
  int infos = 0;
  for (const Finding& f : report.findings) {
    if (f.severity == LintSeverity::kInfo) {
      ++infos;
      EXPECT_EQ(f.rule, "unused-logic");
      EXPECT_EQ(f.location.input, 1);
    } else {
      EXPECT_EQ(f.rule, "unused-logic");
      EXPECT_EQ(f.location.gate, 1);
    }
  }
  EXPECT_EQ(infos, 1);
}

TEST(LintRules, MonotoneOutputWarns) {
  DominoNetlist nl;
  (void)nl.add_input({"a.bar", 0, true});  // negative-phase literal
  DominoGate g;
  g.pdn.set_root(g.pdn.add_leaf(0));
  g.footed = true;
  nl.add_gate(std::move(g));
  nl.add_output({0, "z", true, -1});   // inverts the negated literal
  nl.add_output({0, "k", true, 1});    // inverted constant
  // Consume the gate so unused-logic stays quiet.
  nl.add_output({nl.signal_of_gate(0), "g", false, -1});
  const LintReport report = run_lint(nl);
  EXPECT_EQ(report.count(LintSeverity::kError), 0) << report.to_text();
  EXPECT_EQ(report.count(LintSeverity::kWarning), 2);
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.rule, "monotone-output") << f.to_string();
  }
}

// --- emitters --------------------------------------------------------------

TEST(LintEmit, TextAndJson) {
  DominoNetlist nl = simple_netlist(1, true);
  nl.gates()[0].footed = false;
  const LintReport report = run_lint(nl);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("error[footedness] gate 0:"), std::string::npos) << text;
  EXPECT_NE(text.find("lint: 1 error"), std::string::npos) << text;

  const std::string json = report.to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"rule\":\"footedness\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"qualified\":\"netlist/gate0/pdn\""), std::string::npos);
}

TEST(LintEmit, SarifShape) {
  DominoNetlist nl = simple_netlist(2, /*series=*/false);
  LintOptions options;
  options.grounding = GroundingPolicy::kNoneGrounded;
  const LintReport report = run_lint(nl, options);
  ASSERT_FALSE(report.clean());

  const std::string sarif = report.to_sarif();
  EXPECT_TRUE(json_well_formed(sarif)) << sarif;
  // The SARIF 2.1.0 shape this project emits: schema + version header,
  // one run with a tool.driver carrying the rule table, and results with
  // ruleId / ruleIndex / level / message / logicalLocations.
  EXPECT_NE(sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"runs\":[{"), std::string::npos);
  EXPECT_NE(sarif.find("\"driver\":{\"name\":\"soidom-lint\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"id\":\"pbe-protection\""), std::string::npos);
  EXPECT_NE(sarif.find("\"defaultConfiguration\":{\"level\":"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"pbe-protection\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\":"), std::string::npos);
  EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"logicalLocations\":[{\"kind\":\"element\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"fullyQualifiedName\":\"netlist/gate0/pdn"),
            std::string::npos);
  // No artifact URI -> no physicalLocation.
  EXPECT_EQ(sarif.find("physicalLocation"), std::string::npos);

  const std::string with_artifact = report.to_sarif("circuits/adder.blif");
  EXPECT_TRUE(json_well_formed(with_artifact)) << with_artifact;
  EXPECT_NE(with_artifact.find(
                "\"artifacts\":[{\"location\":{\"uri\":\"circuits/adder.blif\""),
            std::string::npos);
  EXPECT_NE(with_artifact.find("\"physicalLocation\":{\"artifactLocation\""),
            std::string::npos);
}

TEST(LintEmit, SarifRunsMerge) {
  const LintReport clean = run_lint(simple_netlist(1, true));
  DominoNetlist nl = simple_netlist(1, true);
  nl.gates()[0].footed = false;
  const LintReport dirty = run_lint(nl);
  const std::string merged = "{\"version\":\"2.1.0\",\"runs\":[" +
                             clean.to_sarif_run("a.blif") + "," +
                             dirty.to_sarif_run("b.blif") + "]}";
  EXPECT_TRUE(json_well_formed(merged)) << merged;
}

TEST(LintEmit, SarifZeroFindings) {
  // A clean run is still a complete SARIF log: schema, rule table, and an
  // explicitly empty results array (CI parsers require the key).
  const LintReport report = run_lint(simple_netlist(2, true));
  ASSERT_TRUE(report.clean());
  const std::string sarif = report.to_sarif();
  EXPECT_TRUE(json_well_formed(sarif)) << sarif;
  EXPECT_NE(sarif.find("\"results\":[]"), std::string::npos);
  EXPECT_NE(sarif.find("\"driver\":{\"name\":\"soidom-lint\""),
            std::string::npos);
  EXPECT_EQ(sarif.find("suppressions"), std::string::npos);

  const std::string with_artifact = report.to_sarif("clean.blif");
  EXPECT_TRUE(json_well_formed(with_artifact)) << with_artifact;
  EXPECT_NE(with_artifact.find("\"uri\":\"clean.blif\""), std::string::npos);
}

TEST(LintEmit, SarifAllWaivedFindings) {
  DominoNetlist nl = simple_netlist(1, true);
  nl.gates()[0].footed = false;
  LintOptions options;
  options.waivers = {"footedness"};
  const LintReport report = run_lint(nl, options);
  ASSERT_FALSE(report.findings.empty());
  for (const Finding& f : report.findings) EXPECT_TRUE(f.waived);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.count(LintSeverity::kInfo), 0);
  EXPECT_NE(report.summary().find("waived"), std::string::npos);

  const std::string sarif = report.to_sarif();
  EXPECT_TRUE(json_well_formed(sarif)) << sarif;
  // Waived results stay in the log, each carrying an accepted external
  // suppression (SARIF viewers grey them out instead of hiding them).
  EXPECT_NE(sarif.find("\"ruleId\":\"footedness\""), std::string::npos);
  EXPECT_NE(
      sarif.find(
          R"("suppressions":[{"kind":"external","status":"accepted"}])"),
      std::string::npos);
}

TEST(LintEmit, SarifMultiFileRunsKeepStableArtifactOrder) {
  // Merging per-circuit runs must preserve caller order and stay byte
  // stable across repeated emission (CI diffs the artifact).
  DominoNetlist dirty = simple_netlist(1, true);
  dirty.gates()[0].footed = false;
  const LintReport a = run_lint(simple_netlist(1, true));
  const LintReport b = run_lint(dirty);
  const LintReport c = run_lint(simple_netlist(3, false));
  auto merge = [&] {
    return "{\"version\":\"2.1.0\",\"runs\":[" + a.to_sarif_run("a.blif") +
           "," + b.to_sarif_run("b.blif") + "," + c.to_sarif_run("c.blif") +
           "]}";
  };
  const std::string merged = merge();
  EXPECT_TRUE(json_well_formed(merged)) << merged;
  const std::size_t pos_a = merged.find("\"uri\":\"a.blif\"");
  const std::size_t pos_b = merged.find("\"uri\":\"b.blif\"");
  const std::size_t pos_c = merged.find("\"uri\":\"c.blif\"");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  ASSERT_NE(pos_c, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_c);
  EXPECT_EQ(merged, merge());  // deterministic re-emission
}

// --- waivers ---------------------------------------------------------------

TEST(LintWaivers, MatcherHandlesRuleAndQualifiedForms) {
  Finding f;
  f.rule = "footedness";
  f.location.gate = 4;
  EXPECT_TRUE(waiver_matches("footedness", f));
  EXPECT_FALSE(waiver_matches("topo-order", f));
  // Qualified form: substring of the SARIF qualified name.
  EXPECT_TRUE(waiver_matches("footedness@gate4", f));
  EXPECT_TRUE(waiver_matches("footedness@netlist/gate4", f));
  EXPECT_FALSE(waiver_matches("footedness@gate5", f));
  EXPECT_FALSE(waiver_matches("topo-order@gate4", f));
}

TEST(LintWaivers, QualifiedWaiverLeavesOtherLocationsLive) {
  // Two gates with the same defect; waiving one by location must leave
  // the other counting toward clean().
  DominoNetlist nl;
  const std::uint32_t x = nl.add_input({"x", 0, false});
  for (int g = 0; g < 2; ++g) {
    DominoGate gate;
    gate.pdn.set_root(gate.pdn.add_leaf(x));
    gate.footed = false;
    nl.add_gate(std::move(gate));
  }
  nl.add_output({nl.signal_of_gate(0), "z0", false, -1});
  nl.add_output({nl.signal_of_gate(1), "z1", false, -1});
  LintOptions options;
  options.waivers = {"footedness@gate0"};
  const LintReport report = run_lint(nl, options);
  EXPECT_EQ(errors_with_rule(report, "footedness"), 2);  // both still reported
  EXPECT_EQ(report.count(LintSeverity::kError), 1);      // one counts
  EXPECT_FALSE(report.clean());
  int waived = 0;
  for (const Finding& f : report.findings) waived += f.waived ? 1 : 0;
  EXPECT_EQ(waived, 1);
}

// --- verify_structure compatibility shim -----------------------------------

TEST(LintCompat, VerifyStructureRoutesThroughFindings) {
  DominoNetlist nl;
  const std::uint32_t a = nl.add_input({"a", 0, false});
  DominoGate g;
  g.pdn.set_root(g.pdn.add_series({g.pdn.add_leaf(a), g.pdn.add_leaf(1)}));
  g.footed = true;
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "z", false, -1});
  const VerifyReport report =
      verify_structure(nl, GroundingPolicy::kFootlessGrounded);
  ASSERT_FALSE(report.ok());
  // Problems are Finding-formatted: severity[rule] location: message.
  EXPECT_NE(report.to_string().find("error[topo-order] gate 0:"),
            std::string::npos)
      << report.to_string();
  EXPECT_NE(report.to_string().find("topologically"), std::string::npos);
}

TEST(LintCompat, VerifyStructureKeepsHistoricalScope) {
  // The stricter lint-stage rules (here: input-phase's provenance check)
  // must NOT fail the historical entry point.
  DominoNetlist nl;
  (void)nl.add_input({"a", -1, false});
  DominoGate g;
  g.pdn.set_root(g.pdn.add_leaf(0));
  g.footed = true;
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "z", false, -1});
  EXPECT_TRUE(verify_structure(nl, GroundingPolicy::kAllGrounded).ok());
  EXPECT_FALSE(run_lint(nl).clean());
}

// --- flow integration ------------------------------------------------------

TEST(LintFlow, FlowPopulatesLintReport) {
  const FlowResult r = run_flow(testing::fig2_network());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.lint.clean(LintSeverity::kError)) << r.lint.to_text();
  EXPECT_GE(r.lint.rules.size(), 13u);
}

TEST(LintFlow, FailOnSeverityTightensTheFlow) {
  // A source network with an unused PI maps to a netlist that lints clean
  // at kError but may carry sub-error findings; tightening to kInfo makes
  // any finding fatal, and the diagnostic is attributed to the lint stage.
  DominoNetlist nl = simple_netlist(2, true);
  LintOptions options;
  const LintReport report = run_lint(nl, options);
  EXPECT_TRUE(report.clean(LintSeverity::kInfo));

  // Drive the flow path with a netlist-level warning via the guarded flow:
  // fig2 maps clean at every severity, so assert the knob's default first.
  FlowOptions fopts;
  fopts.lint_fail_on = LintSeverity::kInfo;
  const FlowOutcome outcome =
      run_flow_guarded(testing::fig2_network(), fopts);
  ASSERT_TRUE(outcome.result.has_value());
  if (!outcome.result->lint.clean(LintSeverity::kInfo)) {
    ASSERT_TRUE(outcome.diagnostic.has_value());
    EXPECT_EQ(outcome.diagnostic->stage, FlowStage::kLint);
  }
}

TEST(LintFlow, PaperTableCircuitsMapAndLintClean) {
  std::set<std::string> circuits;
  for (const auto& list : {table1_circuits(), table2_circuits(),
                           table3_circuits(), table4_circuits()}) {
    circuits.insert(list.begin(), list.end());
  }
  for (const std::string& name : circuits) {
    const Network source = build_benchmark(name);
    for (const int threads : {1, 0}) {  // sequential and hardware-parallel
      FlowOptions options;
      options.verify_rounds = 0;
      options.mapper.num_threads = threads;
      const FlowResult r = run_flow(source, options);
      EXPECT_TRUE(r.lint.clean(LintSeverity::kError))
          << name << " threads=" << threads << "\n"
          << r.lint.to_text();
      EXPECT_TRUE(r.structure.ok()) << name;
    }
  }
}

}  // namespace
}  // namespace soidom
