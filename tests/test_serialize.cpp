#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "soidom/benchgen/registry.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/domino/serialize.hpp"
#include "soidom/domino/stats.hpp"
#include "soidom/domino/verify.hpp"
#include "soidom/lint/lint.hpp"
#include "soidom/pdn/analyze.hpp"
#include "soidom/sim/sim.hpp"

namespace soidom {
namespace {

/// Pool-independent view of a gate's discharge set: the canonical labels
/// ("bottom" / "jN") the .dnl format and the lint engine both use.
std::vector<std::string> canonical_discharge_labels(const DominoGate& gate) {
  std::vector<std::string> labels;
  for (const DischargePoint& p : gate.discharges) {
    labels.push_back(canonical_point_label(gate.pdn, p));
  }
  std::sort(labels.begin(), labels.end());
  return labels;
}

void expect_same_netlist(const DominoNetlist& a, const DominoNetlist& b) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.gates().size(), b.gates().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  for (std::size_t k = 0; k < a.num_inputs(); ++k) {
    EXPECT_EQ(a.inputs()[k].name, b.inputs()[k].name);
    EXPECT_EQ(a.inputs()[k].source_pi, b.inputs()[k].source_pi);
    EXPECT_EQ(a.inputs()[k].negated, b.inputs()[k].negated);
  }
  for (std::size_t g = 0; g < a.gates().size(); ++g) {
    EXPECT_EQ(a.gates()[g].footed, b.gates()[g].footed);
    EXPECT_TRUE(structurally_equal(a.gates()[g].pdn, b.gates()[g].pdn)) << g;
    // Discharge POINTS must survive, not just the transistor count: node
    // pool indices may be renumbered, so compare canonical labels.
    EXPECT_EQ(canonical_discharge_labels(a.gates()[g]),
              canonical_discharge_labels(b.gates()[g]))
        << "gate " << g;
  }
  for (std::size_t j = 0; j < a.outputs().size(); ++j) {
    EXPECT_EQ(a.outputs()[j].name, b.outputs()[j].name);
    EXPECT_EQ(a.outputs()[j].signal, b.outputs()[j].signal);
    EXPECT_EQ(a.outputs()[j].inverted, b.outputs()[j].inverted);
    EXPECT_EQ(a.outputs()[j].constant, b.outputs()[j].constant);
  }
}

class DnlRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(DnlRoundTrip, MappedNetlistSurvives) {
  const Network source = build_benchmark(GetParam());
  const FlowResult flow = run_flow(source, FlowOptions{});
  ASSERT_TRUE(flow.ok());
  const DominoNetlist reparsed = parse_dnl(write_dnl(flow.netlist));
  expect_same_netlist(flow.netlist, reparsed);

  // Functional identity and unchanged statistics.
  Rng rng(3);
  for (int round = 0; round < 4; ++round) {
    const auto words = random_pi_words(source.pis().size(), rng);
    EXPECT_EQ(flow.netlist.simulate(words), reparsed.simulate(words));
  }
  const DominoStats sa = compute_stats(flow.netlist);
  const DominoStats sb = compute_stats(reparsed);
  EXPECT_EQ(sa.t_total, sb.t_total);
  EXPECT_EQ(sa.t_clock, sb.t_clock);
  EXPECT_EQ(sa.levels, sb.levels);

  // Lint findings are identical across the round trip: every rule sees
  // the same structure, discharge points and canonical labels.
  EXPECT_EQ(run_lint(flow.netlist).to_text(), run_lint(reparsed).to_text());
}

INSTANTIATE_TEST_SUITE_P(Sample, DnlRoundTrip,
                         ::testing::Values("cm150", "z4ml", "cordic",
                                           "9symml", "c880", "c1908"));

TEST(Dnl, PreservesDischargesAndConstants) {
  DominoNetlist nl;
  const std::uint32_t a = nl.add_input({"a", 0, false});
  const std::uint32_t b = nl.add_input({"b.bar", 1, true});
  DominoGate g;
  const PdnIndex par = g.pdn.add_parallel({g.pdn.add_leaf(a), g.pdn.add_leaf(b)});
  g.pdn.set_root(g.pdn.add_series({par, g.pdn.add_leaf(a)}));
  g.footed = true;
  g.discharges.push_back(DischargePoint{});  // bottom
  g.discharges.push_back(DischargePoint{g.pdn.root(), 0});
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "z", true, -1});
  nl.add_output({0, "one", false, 1});

  const DominoNetlist reparsed = parse_dnl(write_dnl(nl));
  expect_same_netlist(nl, reparsed);
  ASSERT_EQ(reparsed.gates()[0].discharges.size(), 2u);
  EXPECT_TRUE(reparsed.gates()[0].discharges[0].at_bottom());
  EXPECT_EQ(reparsed.outputs()[1].constant, 1);

  // This netlist carries deliberate lint findings (at least the bottom
  // discharge on a grounded pulldown); the report — including canonical
  // point labels in the messages — must be byte-identical after the
  // round trip.
  const LintReport before = run_lint(nl);
  const LintReport after = run_lint(reparsed);
  EXPECT_FALSE(before.clean(LintSeverity::kInfo));
  EXPECT_EQ(before.to_text(), after.to_text());
  EXPECT_EQ(before.to_sarif(), after.to_sarif());
}

TEST(Dnl, Errors) {
  EXPECT_THROW(parse_dnl(""), Error);
  EXPECT_THROW(parse_dnl("dnl 2\n"), Error);
  EXPECT_THROW(parse_dnl("input a 0 0\n"), Error);  // before header
  EXPECT_THROW(parse_dnl("dnl 1\nbogus x\n"), Error);
  // Gate referencing a not-yet-defined signal (non-topological).
  EXPECT_THROW(parse_dnl("dnl 1\ninput a 0 0\ngate 1 (s0.s5)\n"), Error);
  // Mixed operators in one group.
  EXPECT_THROW(parse_dnl("dnl 1\ninput a 0 0\ninput b 1 0\ninput c 2 0\n"
                         "gate 1 (s0.s1+s2)\n"),
               Error);
  // Discharge on a nonexistent junction.
  EXPECT_THROW(parse_dnl("dnl 1\ninput a 0 0\ngate 1 s0\ndisch 0 0 0\n"),
               Error);
  // Output referencing an unknown signal.
  EXPECT_THROW(parse_dnl("dnl 1\ninput a 0 0\noutput z 7 0\n"), Error);
  // Inputs after gates break the signal encoding.
  EXPECT_THROW(parse_dnl("dnl 1\ninput a 0 0\ngate 1 s0\ninput b 1 0\n"),
               Error);
}

TEST(Dnl, ErrorMentionsLine) {
  try {
    parse_dnl("dnl 1\ninput a 0 0\ngate 1 (s0.\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Dnl, FileRoundTrip) {
  const Network source = testing::fig2_network();
  const FlowResult flow = run_flow(source, FlowOptions{});
  const std::string path = ::testing::TempDir() + "/soidom_rt.dnl";
  write_dnl_file(flow.netlist, path);
  const DominoNetlist reparsed = parse_dnl_file(path);
  expect_same_netlist(flow.netlist, reparsed);
  EXPECT_THROW(parse_dnl_file("/nonexistent.dnl"), Error);
}

}  // namespace
}  // namespace soidom
