#include <gtest/gtest.h>

#include "helpers.hpp"
#include "soidom/benchgen/registry.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/domino/exact.hpp"
#include "soidom/domino/export.hpp"
#include "soidom/domino/serialize.hpp"
#include "soidom/power/power.hpp"
#include "soidom/sizing/sizing.hpp"
#include "soidom/soisim/soisim.hpp"
#include "soidom/timing/timing.hpp"
#include "soidom/verilog/parser.hpp"

namespace soidom {
namespace {

/// A wide OR that cannot fit one pulldown: `width` parallel inputs with
/// Wmax=5, as a balanced tree (what the decomposer produces) so the DP
/// has an even cut to split at.
Network wide_or_network(int width) {
  NetworkBuilder b;
  std::vector<NodeId> layer;
  for (int i = 0; i < width; ++i) {
    layer.push_back(b.add_pi("x" + std::to_string(i)));
  }
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(b.add_or(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  b.add_output(layer.front(), "any");
  return std::move(b).build();
}

FlowOptions complex_opts() {
  FlowOptions opts;
  opts.mapper.enable_complex_gates = true;
  return opts;
}

TEST(ComplexGates, WideOrBecomesOneDualGate) {
  const Network net = wide_or_network(8);
  const FlowResult classic = run_flow(net, FlowOptions{});
  const FlowResult complex_flow = run_flow(net, complex_opts());
  ASSERT_TRUE(classic.ok());
  ASSERT_TRUE(complex_flow.ok()) << complex_flow.structure.to_string();

  // Classic mapping needs >= 2 gates (W=8 > Wmax=5); the complex flow can
  // do it in one dual gate with two 4-wide pulldowns.
  EXPECT_GE(classic.stats.num_gates, 2);
  bool found_dual = false;
  for (const DominoGate& g : complex_flow.netlist.gates()) {
    if (g.dual()) {
      found_dual = true;
      EXPECT_LE(g.pdn.width(), 5);
      EXPECT_LE(g.pdn2.width(), 5);
    }
  }
  EXPECT_TRUE(found_dual);
  EXPECT_LE(complex_flow.stats.num_gates, classic.stats.num_gates);
  EXPECT_LE(complex_flow.stats.levels, classic.stats.levels);
}

TEST(ComplexGates, NeverWorseOnTotalCost) {
  for (const char* name : {"cm150", "mux", "9symml", "i6", "c432"}) {
    const Network net = build_benchmark(name);
    const FlowResult classic = run_flow(net, FlowOptions{});
    const FlowResult complex_flow = run_flow(net, complex_opts());
    ASSERT_TRUE(complex_flow.ok()) << name;
    EXPECT_LE(complex_flow.stats.t_total, classic.stats.t_total) << name;
  }
}

TEST(ComplexGates, FunctionAndExactEquivalence) {
  for (const std::uint64_t seed : {5u, 9u, 21u}) {
    const Network net = testing::random_network(8, 80, 4, seed);
    const FlowResult r = run_flow(net, complex_opts());
    ASSERT_TRUE(r.ok()) << seed;
    EXPECT_EQ(equivalent_exact(r.netlist, net), std::optional<bool>(true))
        << seed;
  }
}

TEST(ComplexGates, DownstreamToolchainHandlesDualGates) {
  const Network net = wide_or_network(9);
  const FlowResult r = run_flow(net, complex_opts());
  ASSERT_TRUE(r.ok());

  // Stats arithmetic.
  EXPECT_EQ(r.stats.t_total, r.stats.t_logic + r.stats.t_disch);

  // Timing / power / sizing accept the netlist.
  const TimingReport timing = analyze_timing(r.netlist);
  EXPECT_GT(timing.critical_max, 0.0);
  const PowerReport power = estimate_power(r.netlist);
  EXPECT_GT(power.clock_energy, 0.0);
  const SizingResult sizing = size_netlist(r.netlist);
  EXPECT_LE(sizing.estimated_delay_after, sizing.estimated_delay_before);

  // Exporters.
  const std::string deck = export_spice(r.netlist, "wide_or");
  EXPECT_NE(deck.find("MPPREA"), std::string::npos);
  EXPECT_NE(deck.find("MPN1"), std::string::npos);  // static NAND
  const std::string verilog = export_verilog(r.netlist, "wide_or");
  const Network reparsed = parse_verilog(verilog);
  Rng rng(3);
  for (int round = 0; round < 4; ++round) {
    const auto words = random_pi_words(net.pis().size(), rng);
    // PI order matches: generators use x0..xN and export keeps first-seen
    // order of source PIs.
    EXPECT_EQ(simulate_outputs(net, words), simulate_outputs(reparsed, words));
  }

  // Serialization round trip.
  const DominoNetlist again = parse_dnl(write_dnl(r.netlist));
  ASSERT_EQ(again.gates().size(), r.netlist.gates().size());
  for (std::size_t g = 0; g < again.gates().size(); ++g) {
    EXPECT_EQ(again.gates()[g].dual(), r.netlist.gates()[g].dual());
  }
  for (int round = 0; round < 4; ++round) {
    const auto words = random_pi_words(net.pis().size(), rng);
    EXPECT_EQ(r.netlist.simulate(words), again.simulate(words));
  }
}

TEST(ComplexGates, DeviceSimulatorRunsDualGates) {
  const Network net = wide_or_network(8);
  const FlowResult r = run_flow(net, complex_opts());
  ASSERT_TRUE(r.ok());
  SoiSimulator sim(r.netlist);
  Rng rng(17);
  for (int cycle = 0; cycle < 100; ++cycle) {
    std::vector<bool> in;
    for (std::size_t k = 0; k < net.pis().size(); ++k) {
      in.push_back(rng.chance(1, 2));
    }
    EXPECT_TRUE(sim.step(in).correct()) << cycle;
  }
}

TEST(ComplexGates, SeqAwarePruningHandlesDualGates) {
  const Network net = wide_or_network(8);
  FlowOptions opts = complex_opts();
  opts.sequence_aware = true;
  const FlowResult r = run_flow(net, opts);
  EXPECT_TRUE(r.ok()) << r.structure.to_string();
}

TEST(ComplexGates, DisabledByDefault) {
  // The option must not change default behaviour (golden stats depend on
  // it): no dual gates appear unless requested.
  const FlowResult r = run_flow(build_benchmark("cm150"), FlowOptions{});
  for (const DominoGate& g : r.netlist.gates()) {
    EXPECT_FALSE(g.dual());
  }
}

}  // namespace
}  // namespace soidom
