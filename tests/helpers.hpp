/// \file helpers.hpp
/// Shared fixtures for the test suite: tiny reference circuits and a
/// seeded random-network generator for property tests.
#pragma once

#include <string>
#include <vector>

#include "soidom/base/rng.hpp"
#include "soidom/network/builder.hpp"
#include "soidom/network/network.hpp"

namespace soidom::testing {

/// The paper's running example (Fig. 2 / Fig. 3): f = (A + B + C) * D.
inline Network fig2_network() {
  NetworkBuilder b;
  const NodeId a = b.add_pi("A");
  const NodeId bb = b.add_pi("B");
  const NodeId c = b.add_pi("C");
  const NodeId d = b.add_pi("D");
  const NodeId sum = b.add_or(b.add_or(a, bb), c);
  b.add_output(b.add_and(sum, d), "f");
  return std::move(b).build();
}

/// Fig. 3's worked example: out = (a*b) + (c*d).
inline Network fig3_network() {
  NetworkBuilder b;
  const NodeId a = b.add_pi("a");
  const NodeId b1 = b.add_pi("b");
  const NodeId c = b.add_pi("c");
  const NodeId d = b.add_pi("d");
  b.add_output(b.add_or(b.add_and(a, b1), b.add_and(c, d)), "out");
  return std::move(b).build();
}

/// Full adder (carry + sum), binate at the sum output -> exercises
/// unate-conversion duplication.
inline Network full_adder_network() {
  NetworkBuilder b;
  const NodeId x = b.add_pi("x");
  const NodeId y = b.add_pi("y");
  const NodeId cin = b.add_pi("cin");
  auto xor2 = [&](NodeId p, NodeId q) {
    return b.add_or(b.add_and(p, b.add_inv(q)), b.add_and(b.add_inv(p), q));
  };
  const NodeId s1 = xor2(x, y);
  b.add_output(xor2(s1, cin), "sum");
  b.add_output(b.add_or(b.add_and(x, y), b.add_and(s1, cin)), "cout");
  return std::move(b).build();
}

/// Seeded random DAG of AND/OR/INV nodes over `num_pis` inputs with
/// `num_gates` gates and `num_pos` outputs.  Deterministic per seed.
inline Network random_network(int num_pis, int num_gates, int num_pos,
                              std::uint64_t seed) {
  Rng rng(seed);
  NetworkBuilder b;
  std::vector<NodeId> pool;
  for (int i = 0; i < num_pis; ++i) {
    pool.push_back(b.add_pi("x" + std::to_string(i)));
  }
  for (int g = 0; g < num_gates; ++g) {
    const NodeId u =
        pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
    const NodeId v =
        pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
    NodeId out;
    switch (rng.next_below(5)) {
      case 0:
      case 1: out = b.add_and(u, v); break;
      case 2:
      case 3: out = b.add_or(u, v); break;
      default: out = b.add_inv(u); break;
    }
    pool.push_back(out);
  }
  for (int p = 0; p < num_pos; ++p) {
    // Bias outputs toward late (deep) nodes.
    const std::size_t lo = pool.size() > 8 ? pool.size() / 2 : 0;
    const std::size_t pick =
        lo + static_cast<std::size_t>(rng.next_below(pool.size() - lo));
    b.add_output(pool[pick], "z" + std::to_string(p));
  }
  return std::move(b).build();
}

}  // namespace soidom::testing
