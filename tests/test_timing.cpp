#include <gtest/gtest.h>

#include "helpers.hpp"
#include "soidom/benchgen/registry.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/domino/postpass.hpp"
#include "soidom/timing/timing.hpp"

namespace soidom {
namespace {

DominoNetlist two_level_netlist() {
  DominoNetlist nl;
  const std::uint32_t a = nl.add_input({"a", 0, false});
  const std::uint32_t b = nl.add_input({"b", 1, false});
  const std::uint32_t c = nl.add_input({"c", 2, false});
  DominoGate g0;  // a & b, footed
  g0.pdn.set_root(g0.pdn.add_series({g0.pdn.add_leaf(a), g0.pdn.add_leaf(b)}));
  g0.footed = true;
  nl.add_gate(std::move(g0));
  DominoGate g1;  // g0 | c, footed
  g1.pdn.set_root(g1.pdn.add_parallel(
      {g1.pdn.add_leaf(nl.signal_of_gate(0)), g1.pdn.add_leaf(c)}));
  g1.footed = true;
  nl.add_gate(std::move(g1));
  nl.add_output({nl.signal_of_gate(1), "z", false, -1});
  return nl;
}

TEST(FloatingBody, SeriesJunctionFloats) {
  const DominoNetlist nl = two_level_netlist();
  // g0: a over b — a's source is the undischarged a/b junction.
  EXPECT_EQ(floating_body_transistors(nl.gates()[0]), 1);
  // g1: flat parallel — both sources at the foot node, pinned every cycle.
  EXPECT_EQ(floating_body_transistors(nl.gates()[1]), 0);
}

TEST(FloatingBody, DischargePinsTheJunction) {
  DominoNetlist nl = two_level_netlist();
  DominoGate& g0 = nl.gates()[0];
  // Discharge the a/b junction: find the series node.
  const PdnNode& root = g0.pdn.node(g0.pdn.root());
  ASSERT_EQ(root.kind, PdnKind::kSeries);
  g0.discharges.push_back(DischargePoint{g0.pdn.root(), 0});
  EXPECT_EQ(floating_body_transistors(g0), 0);
}

TEST(FloatingBody, NestedParallelJunctions) {
  // series(x, parallel(series(y, z), w)): floating junctions are x's
  // source (x/par) and y's source (y/z); z and w sit on the bottom.
  DominoNetlist nl;
  const std::uint32_t x = nl.add_input({"x", 0, false});
  const std::uint32_t y = nl.add_input({"y", 1, false});
  const std::uint32_t z = nl.add_input({"z", 2, false});
  const std::uint32_t w = nl.add_input({"w", 3, false});
  DominoGate g;
  const PdnIndex yz = g.pdn.add_series({g.pdn.add_leaf(y), g.pdn.add_leaf(z)});
  const PdnIndex par = g.pdn.add_parallel({yz, g.pdn.add_leaf(w)});
  g.pdn.set_root(g.pdn.add_series({g.pdn.add_leaf(x), par}));
  g.footed = true;
  nl.add_gate(std::move(g));
  nl.add_output({nl.signal_of_gate(0), "f", false, -1});
  EXPECT_EQ(floating_body_transistors(nl.gates()[0]), 2);
}

TEST(Timing, ArrivalAccumulatesThroughLevels) {
  const DominoNetlist nl = two_level_netlist();
  const TimingReport t = analyze_timing(nl);
  ASSERT_EQ(t.gates.size(), 2u);
  EXPECT_GT(t.gates[0].delay_min, 0.0);
  EXPECT_GT(t.gates[1].arrival_min, t.gates[0].arrival_min);
  EXPECT_DOUBLE_EQ(t.gates[1].arrival_min,
                   t.gates[0].arrival_min + t.gates[1].delay_min);
  EXPECT_DOUBLE_EQ(t.critical_min, t.gates[1].arrival_min);
}

TEST(Timing, HysteresisComesFromFloatingBodies) {
  const DominoNetlist nl = two_level_netlist();
  DelayModel model;
  const TimingReport t = analyze_timing(nl, model);
  // Only g0 has a floating-body transistor.
  EXPECT_NEAR(t.hysteresis(), model.body_uncertainty, 1e-9);
  DelayModel no_body = model;
  no_body.body_uncertainty = 0.0;
  EXPECT_DOUBLE_EQ(analyze_timing(nl, no_body).hysteresis(), 0.0);
}

TEST(Timing, CriticalPathEndsAtCriticalOutput) {
  const FlowResult r = run_flow(build_benchmark("cm150"), FlowOptions{});
  const TimingReport t = analyze_timing(r.netlist);
  ASSERT_FALSE(t.critical_path.empty());
  // Path gates are in increasing-arrival order.
  for (std::size_t k = 1; k < t.critical_path.size(); ++k) {
    EXPECT_LT(t.gates[t.critical_path[k - 1]].arrival_max,
              t.gates[t.critical_path[k]].arrival_max);
  }
  EXPECT_DOUBLE_EQ(t.gates[t.critical_path.back()].arrival_max,
                   t.critical_max);
}

TEST(Timing, ProtectionReducesHysteresisVsRaw) {
  // Raw bulk-in-SOI (no discharge transistors) must show at least as much
  // hysteresis as the protected flows, on every benchmark checked.
  for (const char* name : {"cm150", "cordic", "c880", "t481"}) {
    FlowOptions dm;
    dm.variant = FlowVariant::kDominoMap;
    FlowResult protected_flow = run_flow(build_benchmark(name), dm);
    FlowResult raw_flow = run_flow(build_benchmark(name), dm);
    for (DominoGate& g : raw_flow.netlist.gates()) g.discharges.clear();
    const double protected_h =
        analyze_timing(protected_flow.netlist).hysteresis();
    const double raw_h = analyze_timing(raw_flow.netlist).hysteresis();
    EXPECT_LE(protected_h, raw_h) << name;
  }
}

TEST(Timing, DepthMappingShortensCriticalDelay) {
  const Network source = build_benchmark("cm150");
  FlowOptions area;
  FlowOptions depth;
  depth.mapper.objective = CostObjective::kDepth;
  const TimingReport ta = analyze_timing(run_flow(source, area).netlist);
  const TimingReport td = analyze_timing(run_flow(source, depth).netlist);
  EXPECT_LE(td.critical_min, ta.critical_min * 1.5);  // sanity ballpark
}

TEST(Timing, ReportMentionsKeyNumbers) {
  const FlowResult r = run_flow(testing::fig2_network(), FlowOptions{});
  const std::string s = analyze_timing(r.netlist).to_string();
  EXPECT_NE(s.find("critical delay"), std::string::npos);
  EXPECT_NE(s.find("hysteresis"), std::string::npos);
  EXPECT_NE(s.find("critical path"), std::string::npos);
}

TEST(Timing, EmptyAndConstantOnlyNetlists) {
  DominoNetlist nl;
  nl.add_output({0, "one", false, 1});
  const TimingReport t = analyze_timing(nl);
  EXPECT_DOUBLE_EQ(t.critical_max, 0.0);
  EXPECT_TRUE(t.critical_path.empty());
}

}  // namespace
}  // namespace soidom
