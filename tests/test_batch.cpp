/// Batch-runner suite: the resilient outer loop of docs/BATCH.md.
///
/// The load-bearing properties checked here:
///  * a batch over paper circuits reaches a terminal state for every job
///    and writes a deterministic manifest;
///  * a run killed partway (simulated by an injected journal-write
///    failure) resumes to a manifest byte-identical to an uninterrupted
///    run;
///  * a job that always crashes or hangs is quarantined after its retry
///    budget without taking the other jobs down (both in-process and in
///    --isolate subprocess mode);
///  * the crash-safe journal tolerates a torn trailing line.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "../src/batch/src/internal.hpp"
#include "soidom/base/fileio.hpp"
#include "soidom/base/strings.hpp"
#include "soidom/batch/runner.hpp"
#include "soidom/batch/signals.hpp"
#include "soidom/guard/fault.hpp"

namespace soidom {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/soidom_" +
         std::to_string(::getpid()) + "_" + name;
}

std::vector<BatchJob> registry_jobs(std::initializer_list<const char*> names) {
  std::vector<BatchJob> jobs;
  for (const char* name : names) jobs.push_back(BatchJob{name, ""});
  return jobs;
}

BatchOptions fast_options() {
  BatchOptions options;
  options.flow.verify_rounds = 2;
  options.retry.backoff_base_ms = 0;  // tests never sleep between retries
  return options;
}

// ---------------------------------------------------------------------------
// base/fileio: the crash-safety primitives everything above rests on.

TEST(Fileio, AtomicWriteCreatesAndOverwrites) {
  const std::string path = temp_path("atomic.txt");
  write_file_atomic(path, "first\n");
  EXPECT_EQ(read_file(path), "first\n");
  write_file_atomic(path, "second\n");
  EXPECT_EQ(read_file(path), "second\n");
}

TEST(Fileio, AtomicWriteLeavesNoTempBehind) {
  const std::string path = temp_path("clean.txt");
  write_file_atomic(path, "x");
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  std::ifstream probe(temp);
  EXPECT_FALSE(probe.good());
}

TEST(Fileio, AtomicWriteToBadDirectoryThrows) {
  EXPECT_THROW(write_file_atomic("/nonexistent/dir/f.txt", "x"), Error);
}

TEST(Fileio, AppendFileAppendsWholeLines) {
  const std::string path = temp_path("append.jsonl");
  {
    AppendFile file(path, /*durable=*/false);
    file.append_line("one");
    file.append_line("two");
  }
  {
    AppendFile file(path, /*durable=*/false);
    file.append_line("three");
  }
  EXPECT_EQ(read_file(path), "one\ntwo\nthree\n");
}

TEST(Fileio, ReadFileMissingThrows) {
  EXPECT_THROW((void)read_file("/nonexistent/file.txt"), Error);
}

TEST(Strings, JsonUnescapeInvertsEscape) {
  const std::string raw = "line\none\t\"quoted\" back\\slash \r end";
  EXPECT_EQ(json_unescape(json_escape(raw)), raw);
  EXPECT_EQ(json_unescape("\\u0041\\u000a"), "A\n");
  // Malformed escapes pass through verbatim rather than throwing.
  EXPECT_EQ(json_unescape("a\\q"), "a\\q");
}

// ---------------------------------------------------------------------------
// Degradation ladder.

TEST(Ladder, AttemptsEscalateAndSaturate) {
  EXPECT_EQ(ladder_step_for_attempt(1), LadderStep::kFull);
  EXPECT_EQ(ladder_step_for_attempt(2), LadderStep::kDropExact);
  EXPECT_EQ(ladder_step_for_attempt(3), LadderStep::kShrinkVerify);
  EXPECT_EQ(ladder_step_for_attempt(4), LadderStep::kShrinkCsa);
  EXPECT_EQ(ladder_step_for_attempt(5), LadderStep::kShrinkRace);
  EXPECT_EQ(ladder_step_for_attempt(6), LadderStep::kRelaxLimits);
  EXPECT_EQ(ladder_step_for_attempt(7), LadderStep::kSingleThread);
  EXPECT_EQ(ladder_step_for_attempt(9), LadderStep::kSingleThread);
}

TEST(Ladder, StepsAreCumulative) {
  FlowOptions base;
  base.exact_equivalence = true;
  base.verify_rounds = 16;
  base.mapper.max_width = 5;
  base.mapper.max_height = 8;
  base.mapper.num_threads = 0;
  base.csa_options.max_states = 4096;
  base.race_options.t_eval = 20.0;
  base.race_options.t_pre = 5.0;

  const FlowOptions full = apply_ladder(base, LadderStep::kFull);
  EXPECT_TRUE(full.exact_equivalence);
  EXPECT_EQ(full.verify_rounds, 16);

  const FlowOptions drop = apply_ladder(base, LadderStep::kDropExact);
  EXPECT_FALSE(drop.exact_equivalence);
  EXPECT_EQ(drop.verify_rounds, 16);

  const FlowOptions shrink = apply_ladder(base, LadderStep::kShrinkVerify);
  EXPECT_FALSE(shrink.exact_equivalence);
  EXPECT_EQ(shrink.verify_rounds, 2);
  EXPECT_EQ(shrink.mapper.max_width, 5);
  EXPECT_EQ(shrink.csa_options.max_states, 4096);

  const FlowOptions csa = apply_ladder(base, LadderStep::kShrinkCsa);
  EXPECT_FALSE(csa.exact_equivalence);
  EXPECT_EQ(csa.verify_rounds, 2);
  EXPECT_EQ(csa.csa_options.max_states, 256);
  EXPECT_EQ(csa.mapper.max_width, 5);
  EXPECT_EQ(csa.race_options.t_eval, 20.0);

  const FlowOptions race = apply_ladder(base, LadderStep::kShrinkRace);
  EXPECT_EQ(race.csa_options.max_states, 256);
  EXPECT_EQ(race.race_options.t_eval, 0.0);  // windows unconstrained
  EXPECT_EQ(race.race_options.t_pre, 0.0);
  EXPECT_EQ(race.mapper.max_width, 5);

  const FlowOptions relax = apply_ladder(base, LadderStep::kRelaxLimits);
  EXPECT_EQ(relax.mapper.max_width, 10);
  EXPECT_EQ(relax.mapper.max_height, 16);
  EXPECT_EQ(relax.csa_options.max_states, 256);
  EXPECT_EQ(relax.race_options.t_eval, 0.0);

  const FlowOptions single = apply_ladder(base, LadderStep::kSingleThread);
  EXPECT_FALSE(single.exact_equivalence);
  EXPECT_EQ(single.verify_rounds, 2);
  EXPECT_EQ(single.csa_options.max_states, 256);
  EXPECT_EQ(single.race_options.t_pre, 0.0);
  EXPECT_EQ(single.mapper.max_width, 10);
  EXPECT_EQ(single.mapper.num_threads, 1);
}

TEST(Ladder, RelaxLimitsCapsAt64) {
  FlowOptions base;
  base.mapper.max_width = 60;
  base.mapper.max_height = 64;
  const FlowOptions relaxed = apply_ladder(base, LadderStep::kRelaxLimits);
  EXPECT_EQ(relaxed.mapper.max_width, 64);
  EXPECT_EQ(relaxed.mapper.max_height, 64);
}

// ---------------------------------------------------------------------------
// Journal.

TEST(Journal, LoadMissingFileIsEmpty) {
  EXPECT_TRUE(load_journal(temp_path("never_written.jsonl")).empty());
}

TEST(Journal, LoadToleratesTornTrailingLineAndForeignRecords) {
  const std::string path = temp_path("torn.jsonl");
  std::ofstream(path)
      << R"({"type":"batch","jobs":2,"isolate":0,"max_attempts":3})" << "\n"
      << R"({"type":"future_record","x":1})" << "\n"
      << R"({"type":"done","job":"a","status":"ok","attempts":1,)"
      << R"("ladder":"full","code":"","stage":"","message":"",)"
      << R"("summary":"gates=3","lint_errors":0,"lint_warnings":1,"ms":1.5})"
      << "\n"
      << R"({"type":"done","job":"b","status":"quaran)";  // torn by SIGKILL
  const auto records = load_journal(path);
  ASSERT_EQ(records.size(), 1u);
  const JobRecord& a = records.at("a");
  EXPECT_EQ(a.status, JobStatus::kOk);
  EXPECT_EQ(a.attempts, 1);
  EXPECT_EQ(a.summary, "gates=3");
  EXPECT_EQ(a.lint_warnings, 1);
}

TEST(Journal, ChecksummedRecordsRoundTripAndCarrySchema) {
  const std::string path = temp_path("crc.jsonl");
  JobRecord done;
  done.job = "a";
  done.status = JobStatus::kOk;
  done.attempts = 1;
  done.summary = "gates=3";
  {
    RunJournal journal(path, /*durable=*/false);
    journal.append_header(1, false, 3);
    AttemptRecord attempt;
    attempt.ok = true;
    journal.append_attempt("a", attempt);
    journal.append_done(done);
  }
  const JournalLoad loaded = load_journal_checked(path);
  EXPECT_EQ(loaded.schema, kJournalSchema);
  EXPECT_EQ(loaded.corrupt_records, 0);
  EXPECT_TRUE(loaded.warnings.empty());
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records.at("a").summary, "gates=3");
  // Every line written carries the integrity field.
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"crc\":\""), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 3);
}

TEST(Journal, CorruptRecordIsSkippedWithStructuredWarning) {
  const std::string path = temp_path("crc_corrupt.jsonl");
  JobRecord good;
  good.job = "good";
  good.status = JobStatus::kOk;
  JobRecord bad;
  bad.job = "bad";
  bad.status = JobStatus::kOk;
  {
    RunJournal journal(path, /*durable=*/false);
    journal.append_header(2, false, 3);
    journal.append_done(good);
    journal.append_done(bad);
  }
  // Flip one byte inside the "bad" record's payload (bit rot / torn
  // sector), leaving the line shape intact.
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }
  const std::size_t at = text.find("\"job\":\"bad\"");
  ASSERT_NE(at, std::string::npos);
  text[at + 8] = 'B';
  {
    std::ofstream out(path, std::ios::binary);
    out << text;
  }
  const JournalLoad loaded = load_journal_checked(path);
  EXPECT_EQ(loaded.corrupt_records, 1);
  ASSERT_EQ(loaded.warnings.size(), 1u);
  EXPECT_EQ(loaded.warnings[0].stage, FlowStage::kBatchJournal);
  EXPECT_EQ(loaded.warnings[0].code, ErrorCode::kParseError);
  EXPECT_NE(loaded.warnings[0].message.find("CRC"), std::string::npos);
  // The damaged record is skipped, not half-parsed: only "good" loads.
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records.count("good"), 1u);
}

TEST(Journal, TornUnchecksummedLineInSchema2JournalWarns) {
  const std::string path = temp_path("crc_torn.jsonl");
  JobRecord done;
  done.job = "a";
  done.status = JobStatus::kOk;
  {
    RunJournal journal(path, /*durable=*/false);
    journal.append_header(1, false, 3);
    journal.append_done(done);
  }
  {
    // A crash tore the next record before its crc field was written.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << R"({"type":"done","job":"b","status":"ok","atte)";
  }
  const JournalLoad loaded = load_journal_checked(path);
  EXPECT_EQ(loaded.schema, kJournalSchema);
  EXPECT_EQ(loaded.corrupt_records, 1);
  ASSERT_EQ(loaded.warnings.size(), 1u);
  EXPECT_NE(loaded.warnings[0].message.find("torn"), std::string::npos);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records.count("a"), 1u);
}

TEST(Journal, LegacyJournalWithoutChecksumsStillLoadsSilently) {
  // Pre-schema-2 journals have no header schema and no crc fields; they
  // must keep loading without warnings (old runs stay resumable).
  const std::string path = temp_path("crc_legacy.jsonl");
  std::ofstream(path)
      << R"({"type":"batch","jobs":1,"isolate":0,"max_attempts":3})" << "\n"
      << R"({"type":"done","job":"a","status":"ok","attempts":1,)"
      << R"("ladder":"full","code":"","stage":"","message":"",)"
      << R"("summary":"gates=3","lint_errors":0,"lint_warnings":0,"ms":1.0})"
      << "\n";
  const JournalLoad loaded = load_journal_checked(path);
  EXPECT_EQ(loaded.schema, 1);
  EXPECT_EQ(loaded.corrupt_records, 0);
  EXPECT_TRUE(loaded.warnings.empty());
  EXPECT_EQ(loaded.records.count("a"), 1u);
}

TEST(Journal, LastDoneRecordPerJobWins) {
  const std::string path = temp_path("dup.jsonl");
  JobRecord first;
  first.job = "a";
  first.status = JobStatus::kFailed;
  first.attempts = 1;
  JobRecord second = first;
  second.status = JobStatus::kOk;
  second.attempts = 2;
  {
    RunJournal journal(path, /*durable=*/false);
    journal.append_done(first);
    journal.append_done(second);
  }
  const auto records = load_journal(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.at("a").status, JobStatus::kOk);
  EXPECT_EQ(records.at("a").attempts, 2);
}

TEST(Journal, ManifestIsSortedAndExcludesTimings) {
  std::map<std::string, JobRecord> records;
  JobRecord b;
  b.job = "bbb";
  b.status = JobStatus::kOk;
  b.ms = 123.456;  // must not appear
  JobRecord a;
  a.job = "aaa";
  a.status = JobStatus::kQuarantined;
  a.message = "hung";
  records[b.job] = b;
  records[a.job] = a;
  const std::string manifest = manifest_json(records);
  EXPECT_LT(manifest.find("aaa"), manifest.find("bbb"));
  EXPECT_EQ(manifest.find("123.456"), std::string::npos);
  EXPECT_EQ(manifest.find("\"ms\""), std::string::npos);
  EXPECT_NE(manifest.find("\"quarantined\""), std::string::npos);
  // Empty set still renders a valid empty array.
  EXPECT_NE(manifest_json({}).find("\"jobs\":[]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire format (isolate child -> parent).

TEST(Wire, EncodeDecodeRoundTripsOk) {
  batch_detail::AttemptOutcome out;
  out.ok = true;
  out.summary = "gates=7 T_total=42\tstructure=ok";  // hostile tab
  out.lint_errors = 2;
  out.lint_warnings = 3;
  out.analyzer_errors = 4;
  out.analyzer_warnings = 5;
  const auto decoded =
      batch_detail::decode_attempt_outcome(
          batch_detail::encode_attempt_outcome(out));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->summary, out.summary);
  EXPECT_EQ(decoded->lint_errors, 2);
  EXPECT_EQ(decoded->lint_warnings, 3);
  EXPECT_EQ(decoded->analyzer_errors, 4);
  EXPECT_EQ(decoded->analyzer_warnings, 5);
}

TEST(Wire, EncodeDecodeRoundTripsError) {
  batch_detail::AttemptOutcome out;
  out.ok = false;
  out.diagnostic = Diagnostic{ErrorCode::kDeadlineExceeded,
                              FlowStage::kBatchWatchdog,
                              "job exceeded 10 ms\nkilled", {}};
  const auto decoded =
      batch_detail::decode_attempt_outcome(
          batch_detail::encode_attempt_outcome(out));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->ok);
  ASSERT_TRUE(decoded->diagnostic.has_value());
  EXPECT_EQ(decoded->diagnostic->code, ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(decoded->diagnostic->stage, FlowStage::kBatchWatchdog);
  EXPECT_EQ(decoded->diagnostic->message, "job exceeded 10 ms\nkilled");
}

TEST(Wire, GarbageLinesRejected) {
  EXPECT_FALSE(batch_detail::decode_attempt_outcome("").has_value());
  EXPECT_FALSE(batch_detail::decode_attempt_outcome("OK\t1").has_value());
  // OK records need five payload fields; a legacy 3-field record is torn.
  EXPECT_FALSE(batch_detail::decode_attempt_outcome("OK\t1\t2\ts").has_value());
  EXPECT_FALSE(
      batch_detail::decode_attempt_outcome("XX\ta\tb\tc").has_value());
  EXPECT_FALSE(
      batch_detail::decode_attempt_outcome("ERR\tnot_a_code\tmap\tm")
          .has_value());
}

TEST(Wire, MixSeedDistinguishesJobsAndAttempts) {
  using batch_detail::mix_seed;
  EXPECT_EQ(mix_seed(7, "z4ml", 1), mix_seed(7, "z4ml", 1));
  EXPECT_NE(mix_seed(7, "z4ml", 1), mix_seed(7, "z4ml", 2));
  EXPECT_NE(mix_seed(7, "z4ml", 1), mix_seed(7, "cm150", 1));
  EXPECT_NE(mix_seed(7, "z4ml", 1), mix_seed(8, "z4ml", 1));
}

// ---------------------------------------------------------------------------
// run_batch happy paths + validation.

TEST(Batch, RunsRegistryJobsToOkAndWritesManifest) {
  BatchOptions options = fast_options();
  options.journal_path = temp_path("basic.jsonl");
  options.manifest_path = temp_path("basic.manifest.json");
  options.max_parallel = 2;
  const BatchResult result =
      run_batch(registry_jobs({"z4ml", "cm150"}), options);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.ok, 2);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.quarantined, 0);
  for (const JobOutcome& out : result.jobs) {
    EXPECT_TRUE(out.terminal);
    EXPECT_EQ(out.record.status, JobStatus::kOk);
    EXPECT_EQ(out.record.attempts, 1);
    EXPECT_EQ(out.record.ladder, "full");
    EXPECT_FALSE(out.record.summary.empty());
  }
  const std::string manifest = read_file(options.manifest_path);
  EXPECT_NE(manifest.find("\"schema\":\"soidom-batch-manifest-1\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"total\":2"), std::string::npos);
  EXPECT_EQ(load_journal(options.journal_path).size(), 2u);
}

TEST(Batch, BlifFileJobsWork) {
  const std::string blif = temp_path("adder.blif");
  std::ofstream(blif) << ".model t\n.inputs a b c\n.outputs z\n"
                         ".names a b t1\n11 1\n"
                         ".names t1 c z\n1- 1\n-1 1\n.end\n";
  const BatchResult result =
      run_batch({BatchJob{blif, blif}}, fast_options());
  EXPECT_EQ(result.ok, 1);
  EXPECT_EQ(result.jobs[0].record.job, blif);
}

TEST(Batch, UnknownCircuitFailsWithoutBurningRetries) {
  BatchOptions options = fast_options();
  options.retry.max_attempts = 4;
  const BatchResult result =
      run_batch(registry_jobs({"no_such_circuit"}), options);
  EXPECT_EQ(result.failed, 1);
  ASSERT_TRUE(result.jobs[0].terminal);
  EXPECT_EQ(result.jobs[0].record.status, JobStatus::kFailed);
  EXPECT_EQ(result.jobs[0].record.attempts, 1);  // parse errors don't retry
  EXPECT_EQ(result.jobs[0].record.code, "parse_error");
}

TEST(Batch, DuplicateJobNamesRejected) {
  EXPECT_THROW(
      (void)run_batch(registry_jobs({"z4ml", "z4ml"}), fast_options()), Error);
}

TEST(Batch, ResumeWithoutJournalRejected) {
  BatchOptions options = fast_options();
  options.resume = true;
  EXPECT_THROW((void)run_batch(registry_jobs({"z4ml"}), options), Error);
}

TEST(Batch, UnwritableJournalAbortsCleanly) {
  BatchOptions options = fast_options();
  options.journal_path = "/nonexistent/dir/run.jsonl";
  const BatchResult result = run_batch(registry_jobs({"z4ml"}), options);
  ASSERT_TRUE(result.aborted.has_value());
  EXPECT_FALSE(result.jobs[0].terminal);
}

// ---------------------------------------------------------------------------
// Quarantine: a misbehaving job must not take the batch down.

TEST(Batch, CrashingJobQuarantinedOthersSucceed) {
  BatchOptions options = fast_options();
  options.retry.max_attempts = 3;
  BatchHooks hooks;
  hooks.on_attempt_start = [](const BatchJob& job, int) {
    if (job.name == "cm150") throw std::runtime_error("simulated crash");
  };
  const BatchResult result =
      run_batch(registry_jobs({"z4ml", "cm150"}), options, hooks);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.ok, 1);
  EXPECT_EQ(result.quarantined, 1);
  const JobOutcome& bad = result.jobs[1];
  EXPECT_EQ(bad.record.status, JobStatus::kQuarantined);
  EXPECT_EQ(bad.record.attempts, 3);  // full retry budget consumed
  EXPECT_EQ(bad.record.code, "internal");
  EXPECT_EQ(bad.attempts.size(), 3u);
  EXPECT_EQ(bad.attempts[0].ladder, "full");
  EXPECT_EQ(bad.attempts[1].ladder, "drop_exact");
  EXPECT_EQ(bad.attempts[2].ladder, "shrink_verify");
}

TEST(Batch, FlakyJobRecoversViaRetry) {
  BatchOptions options = fast_options();
  options.retry.max_attempts = 3;
  BatchHooks hooks;
  hooks.on_attempt_start = [](const BatchJob&, int attempt) {
    if (attempt == 1) throw std::runtime_error("first attempt flakes");
  };
  const BatchResult result =
      run_batch(registry_jobs({"z4ml"}), options, hooks);
  EXPECT_EQ(result.ok, 1);
  EXPECT_EQ(result.jobs[0].record.attempts, 2);
  EXPECT_EQ(result.jobs[0].record.ladder, "drop_exact");
}

TEST(Batch, WatchdogCancelsOverrunningJob) {
  BatchOptions options = fast_options();
  options.retry.max_attempts = 1;
  options.job_timeout_ms = 30;
  BatchHooks hooks;
  hooks.on_attempt_start = [](const BatchJob&, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  };
  const BatchResult result =
      run_batch(registry_jobs({"z4ml"}), options, hooks);
  EXPECT_EQ(result.quarantined, 1);
  ASSERT_TRUE(result.jobs[0].terminal);
  const std::string& code = result.jobs[0].record.code;
  EXPECT_TRUE(code == "deadline_exceeded" || code == "cancelled") << code;
}

// ---------------------------------------------------------------------------
// Subprocess isolation: crashes and hangs are contained.

TEST(BatchIsolate, HealthyJobSucceeds) {
  BatchOptions options = fast_options();
  options.isolate = true;
  const BatchResult result = run_batch(registry_jobs({"z4ml"}), options);
  EXPECT_EQ(result.ok, 1);
  EXPECT_FALSE(result.jobs[0].record.summary.empty());
}

TEST(BatchIsolate, CrashingChildIsQuarantinedNotFatal) {
  BatchOptions options = fast_options();
  options.isolate = true;
  options.retry.max_attempts = 2;
  BatchHooks hooks;
  hooks.on_attempt_start = [](const BatchJob& job, int) {
    // Runs inside the forked child in isolate mode: a real crash.
    if (job.name == "cm150") std::abort();
  };
  const BatchResult result =
      run_batch(registry_jobs({"z4ml", "cm150"}), options, hooks);
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.ok, 1);
  EXPECT_EQ(result.quarantined, 1);
  const JobOutcome& bad = result.jobs[1];
  EXPECT_EQ(bad.record.status, JobStatus::kQuarantined);
  EXPECT_EQ(bad.record.attempts, 2);
  EXPECT_NE(bad.record.message.find("signal"), std::string::npos)
      << bad.record.message;
}

TEST(BatchIsolate, HungChildIsKilledByTimeout) {
  BatchOptions options = fast_options();
  options.isolate = true;
  options.retry.max_attempts = 1;
  options.job_timeout_ms = 80;
  BatchHooks hooks;
  hooks.on_attempt_start = [](const BatchJob&, int) {
    std::this_thread::sleep_for(std::chrono::seconds(30));  // runaway child
  };
  const auto start = std::chrono::steady_clock::now();
  const BatchResult result =
      run_batch(registry_jobs({"z4ml"}), options, hooks);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_EQ(result.quarantined, 1);
  EXPECT_EQ(result.jobs[0].record.code, "deadline_exceeded");
  EXPECT_EQ(result.jobs[0].record.stage, "batch_watchdog");
}

// Analyzer findings (CSA + race) must survive both the child->parent
// wire in isolate mode and the journal text in resume mode: however a
// job record was produced, the merged manifest is byte-identical.
TEST(BatchIsolate, AnalyzerCountsSurviveIsolationAndResume) {
  const std::vector<BatchJob> jobs = registry_jobs({"z4ml", "decod"});

  BatchOptions base = fast_options();
  base.flow.csa = true;
  base.flow.race = true;
  // Waive the one error-severity CSA rule (these circuits trip it at the
  // default margin) so the jobs stay green; a tight evaluate window then
  // makes the race analyzer deterministically emit warnings that must
  // ride the journal and the isolate wire.
  base.flow.csa_options.waivers = {"csa.pbe-discharge"};
  base.flow.race_options.t_eval = 0.5;

  // Reference: in-process, uninterrupted.
  BatchOptions inproc = base;
  inproc.journal_path = temp_path("an_ref.jsonl");
  inproc.manifest_path = temp_path("an_ref.manifest.json");
  const BatchResult direct = run_batch(jobs, inproc);
  ASSERT_TRUE(direct.complete());
  ASSERT_EQ(direct.ok, 2);
  int findings = 0;
  for (const JobOutcome& out : direct.jobs) {
    findings += out.record.analyzer_errors + out.record.analyzer_warnings;
  }
  ASSERT_GT(findings, 0) << "fixture must actually produce analyzer findings";

  // Same jobs through forked children: counts cross the wire intact.
  BatchOptions isolated = base;
  isolated.isolate = true;
  isolated.journal_path = temp_path("an_iso.jsonl");
  isolated.manifest_path = temp_path("an_iso.manifest.json");
  const BatchResult iso = run_batch(jobs, isolated);
  ASSERT_TRUE(iso.complete());
  ASSERT_EQ(iso.ok, 2);
  EXPECT_EQ(read_file(isolated.manifest_path),
            read_file(inproc.manifest_path));

  // Resume: z4ml's record is reloaded from journal text, decod runs
  // fresh, and the merged manifest still matches byte for byte.
  BatchOptions partial = base;
  partial.isolate = true;
  partial.journal_path = temp_path("an_resume.jsonl");
  partial.manifest_path = temp_path("an_resume.partial.json");
  ASSERT_EQ(run_batch(registry_jobs({"z4ml"}), partial).ok, 1);
  partial.resume = true;
  partial.manifest_path = temp_path("an_resume.manifest.json");
  const BatchResult resumed = run_batch(jobs, partial);
  ASSERT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.resumed, 1);
  EXPECT_EQ(read_file(partial.manifest_path),
            read_file(inproc.manifest_path));
}

// ---------------------------------------------------------------------------
// The acceptance property: kill partway + resume == uninterrupted run,
// byte for byte.

#if defined(SOIDOM_FAULT_INJECTION)
TEST(BatchResume, InterruptedRunResumesToByteIdenticalManifest) {
  const std::vector<BatchJob> jobs =
      registry_jobs({"z4ml", "cm150", "decod"});

  // Reference: one uninterrupted run.
  BatchOptions reference = fast_options();
  reference.journal_path = temp_path("ref.jsonl");
  reference.manifest_path = temp_path("ref.manifest.json");
  const BatchResult full_run = run_batch(jobs, reference);
  ASSERT_TRUE(full_run.complete());
  ASSERT_EQ(full_run.ok, 3);

  // Interrupted: the 4th journal append (header, then z4ml's attempt and
  // done records, then cm150's attempt record) fails, which aborts the
  // batch exactly as a crash/kill at that instant would — some jobs
  // terminal, the rest unrecorded.
  BatchOptions interrupted = fast_options();
  interrupted.journal_path = temp_path("resume.jsonl");
  interrupted.manifest_path = temp_path("resume.manifest.json");
  {
    FaultInjector injector =
        FaultInjector::fail_at(FlowStage::kBatchJournal, 4);
    FaultScope scope(injector);
    const BatchResult aborted = run_batch(jobs, interrupted);
    ASSERT_TRUE(aborted.aborted.has_value());
    EXPECT_EQ(aborted.aborted->code, ErrorCode::kFaultInjected);
    EXPECT_EQ(aborted.aborted->stage, FlowStage::kBatchJournal);
    EXPECT_TRUE(aborted.jobs[0].terminal);   // z4ml completed
    EXPECT_FALSE(aborted.jobs[1].terminal);  // cm150 lost its record
    EXPECT_FALSE(aborted.jobs[2].terminal);  // decod never ran
    std::ifstream manifest(interrupted.manifest_path);
    EXPECT_FALSE(manifest.good()) << "aborted run must not write a manifest";
  }

  // Resume: completed jobs are skipped, the rest rerun.
  interrupted.resume = true;
  const BatchResult resumed = run_batch(jobs, interrupted);
  ASSERT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.resumed, 1);
  EXPECT_EQ(resumed.ok, 3);

  EXPECT_EQ(read_file(interrupted.manifest_path),
            read_file(reference.manifest_path));
}
#endif  // SOIDOM_FAULT_INJECTION

// ---------------------------------------------------------------------------
// Signals.

TEST(Signals, ExitCodesFollowConvention) {
  EXPECT_EQ(signal_exit_code(SIGINT), 130);
  EXPECT_EQ(signal_exit_code(SIGTERM), 143);
  EXPECT_EQ(signal_exit_code(0), 1);
}

TEST(Signals, ReceivedSignalStopsSchedulingAndSkipsManifest) {
  install_signal_cancel();
  ::raise(SIGTERM);
  ASSERT_EQ(signal_received(), SIGTERM);

  BatchOptions options = fast_options();
  options.journal_path = temp_path("sig.jsonl");
  options.manifest_path = temp_path("sig.manifest.json");
  const BatchResult result = run_batch(registry_jobs({"z4ml"}), options);
  EXPECT_EQ(result.interrupted_by_signal, SIGTERM);
  EXPECT_FALSE(result.jobs[0].terminal);
  std::ifstream manifest(options.manifest_path);
  EXPECT_FALSE(manifest.good());

  reset_signal_state_for_testing();
  ASSERT_EQ(signal_received(), 0);
}

}  // namespace
}  // namespace soidom
