#include <gtest/gtest.h>

#include "soidom/pdn/analyze.hpp"
#include "soidom/pdn/pdn.hpp"
#include "soidom/pdn/reorder.hpp"

namespace soidom {
namespace {

/// Fig. 4(a): A*B + C   (signals: A=0, B=1, C=2)
Pdn fig4a() {
  Pdn p;
  const PdnIndex a = p.add_leaf(0);
  const PdnIndex b = p.add_leaf(1);
  const PdnIndex c = p.add_leaf(2);
  const PdnIndex ab = p.add_series({a, b});
  p.set_root(p.add_parallel({ab, c}));
  return p;
}

/// Fig. 4(b): (A*B + C) on top of (D*E + F)
Pdn fig4b() {
  Pdn p;
  const PdnIndex top = [&] {
    const PdnIndex ab = p.add_series({p.add_leaf(0), p.add_leaf(1)});
    return p.add_parallel({ab, p.add_leaf(2)});
  }();
  const PdnIndex bottom = [&] {
    const PdnIndex de = p.add_series({p.add_leaf(3), p.add_leaf(4)});
    return p.add_parallel({de, p.add_leaf(5)});
  }();
  p.set_root(p.add_series({top, bottom}));
  return p;
}

/// Fig. 2: (A + B + C) * D   (parallel stack on top, D at the bottom)
Pdn fig2_pdn() {
  Pdn p;
  const PdnIndex par =
      p.add_parallel({p.add_leaf(0), p.add_leaf(1), p.add_leaf(2)});
  p.set_root(p.add_series({par, p.add_leaf(3)}));
  return p;
}

TEST(PdnStructure, ShapeMetrics) {
  const Pdn p = fig4a();
  EXPECT_EQ(p.width(), 2);
  EXPECT_EQ(p.height(), 2);
  EXPECT_EQ(p.transistor_count(), 3);

  const Pdn q = fig4b();
  EXPECT_EQ(q.width(), 2);
  EXPECT_EQ(q.height(), 4);
  EXPECT_EQ(q.transistor_count(), 6);
}

TEST(PdnStructure, SeriesFlattening) {
  Pdn p;
  const PdnIndex abc = p.add_series(
      {p.add_series({p.add_leaf(0), p.add_leaf(1)}), p.add_leaf(2)});
  p.set_root(abc);
  EXPECT_EQ(p.node(abc).children.size(), 3u);
  EXPECT_EQ(p.height(), 3);
  EXPECT_EQ(p.to_string(), "(s0.s1.s2)");
}

TEST(PdnStructure, ParallelFlattening) {
  Pdn p;
  const PdnIndex abc = p.add_parallel(
      {p.add_parallel({p.add_leaf(0), p.add_leaf(1)}), p.add_leaf(2)});
  p.set_root(abc);
  EXPECT_EQ(p.node(abc).children.size(), 3u);
  EXPECT_EQ(p.width(), 3);
}

TEST(PdnStructure, SingleChildCollapses) {
  Pdn p;
  const PdnIndex a = p.add_leaf(0);
  EXPECT_EQ(p.add_series({a}), a);
  EXPECT_EQ(p.add_parallel({a}), a);
}

TEST(PdnStructure, LeafSignalsOrdered) {
  const Pdn p = fig4b();
  EXPECT_EQ(p.leaf_signals(), (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
}

TEST(PdnStructure, Conducts) {
  const Pdn p = fig2_pdn();  // (A+B+C)*D
  auto with = [&](bool a, bool b, bool c, bool d) {
    const bool vals[] = {a, b, c, d};
    return p.conducts([&](std::uint32_t s) { return vals[s]; });
  };
  EXPECT_FALSE(with(true, false, false, false));
  EXPECT_TRUE(with(true, false, false, true));
  EXPECT_TRUE(with(false, false, true, true));
  EXPECT_FALSE(with(false, false, false, true));
}

TEST(PdnStructure, StructuralEquality) {
  EXPECT_TRUE(structurally_equal(fig4a(), fig4a()));
  EXPECT_FALSE(structurally_equal(fig4a(), fig2_pdn()));
}

// ---------------------------------------------------------------------------
// PBE analysis: the paper's Fig. 4 and Fig. 5 walk-throughs.
// ---------------------------------------------------------------------------

TEST(PbeAnalyzer, Fig4aGroundedNeedsNothing) {
  const PbeAnalysis a = analyze_pbe(fig4a(), /*bottom_grounded=*/true);
  EXPECT_EQ(a.required_count(), 0);
  EXPECT_EQ(a.pending_count(), 1);  // the A-B junction
  EXPECT_TRUE(a.par_b_root);
}

TEST(PbeAnalyzer, Fig4aUngroundedNeedsTwo) {
  const PbeAnalysis a = analyze_pbe(fig4a(), /*bottom_grounded=*/false);
  // The A-B junction plus the bottom of the parallel stack.
  EXPECT_EQ(a.required_count(), 2);
  EXPECT_EQ(a.pending_count(), 0);
}

TEST(PbeAnalyzer, Fig4bTopStructureCommits) {
  // Paper: ANDing two Fig4a structures adds p_dis(top) + 1 = 2 discharge
  // transistors; the bottom structure's junction stays pending.
  const PbeAnalysis grounded = analyze_pbe(fig4b(), true);
  EXPECT_EQ(grounded.required_count(), 2);
  EXPECT_EQ(grounded.pending_count(), 1);

  const PbeAnalysis floating = analyze_pbe(fig4b(), false);
  EXPECT_EQ(floating.required_count(), 4);  // + pending + stack bottom
  EXPECT_EQ(floating.pending_count(), 0);
}

TEST(PbeAnalyzer, Fig2SeriesBottomIsBad) {
  // (A+B+C)*D with D at the bottom: the parallel stack sits above D, so
  // its bottom (node 1 in the paper) must be discharged.
  const PbeAnalysis a = analyze_pbe(fig2_pdn(), true);
  EXPECT_EQ(a.required_count(), 1);
  EXPECT_EQ(a.pending_count(), 0);
}

TEST(PbeAnalyzer, Fig2ReorderedIsSafe) {
  // D moved to the top, parallel stack at the bottom connected to ground:
  // transformation 4 of section III-C, zero discharge transistors.
  Pdn p;
  const PdnIndex par =
      p.add_parallel({p.add_leaf(0), p.add_leaf(1), p.add_leaf(2)});
  p.set_root(p.add_series({p.add_leaf(3), par}));
  EXPECT_EQ(required_discharges(p, true), 0);
  // But if the gate is footed (not grounded), reordering alone is not
  // enough: 1 pending + bottom.
  EXPECT_EQ(required_discharges(p, false), 2);
}

TEST(PbeAnalyzer, Fig5StackSwitching) {
  // Left of Fig. 5: (A*B + C) above E -> 2 discharge transistors.
  Pdn left;
  {
    const PdnIndex ab = left.add_series({left.add_leaf(0), left.add_leaf(1)});
    const PdnIndex par = left.add_parallel({ab, left.add_leaf(2)});
    left.set_root(left.add_series({par, left.add_leaf(3)}));
  }
  EXPECT_EQ(required_discharges(left, true), 2);

  // Right of Fig. 5: E on top, parallel stack at the bottom -> none needed
  // when the bottom reaches ground.
  Pdn right;
  {
    const PdnIndex ab =
        right.add_series({right.add_leaf(0), right.add_leaf(1)});
    const PdnIndex par = right.add_parallel({ab, right.add_leaf(2)});
    right.set_root(right.add_series({right.add_leaf(3), par}));
  }
  EXPECT_EQ(required_discharges(right, true), 0);
  const PbeAnalysis a = analyze_pbe(right, true);
  EXPECT_EQ(a.pending_count(), 2);  // the paper's two *potential* points
}

TEST(PbeAnalyzer, PureSeriesIsAlwaysSafeInCoherentModel) {
  Pdn p;
  p.set_root(p.add_series(
      {p.add_leaf(0), p.add_leaf(1), p.add_leaf(2), p.add_leaf(3)}));
  EXPECT_EQ(required_discharges(p, true), 0);
  EXPECT_EQ(required_discharges(p, false), 0);
  // Paper-literal model bills every junction instead.
  EXPECT_EQ(required_discharges(p, true, PendingModel::kPaperLiteral), 3);
}

TEST(PbeAnalyzer, SingleLeaf) {
  Pdn p;
  p.set_root(p.add_leaf(7));
  EXPECT_EQ(required_discharges(p, true), 0);
  EXPECT_EQ(required_discharges(p, false), 0);
}

TEST(PbeAnalyzer, WideParallelOfLeavesNeedsOnlyBottom) {
  Pdn p;
  p.set_root(p.add_parallel(
      {p.add_leaf(0), p.add_leaf(1), p.add_leaf(2), p.add_leaf(3)}));
  EXPECT_EQ(required_discharges(p, true), 0);
  EXPECT_EQ(required_discharges(p, false), 1);  // just the stack bottom
}

TEST(PbeAnalyzer, SeriesAboveParallelKeepsUpperJunctionPending) {
  // X above P(parallel) above Y: junction X-P is a series point (pending);
  // P's bottom junction commits because Y is below it.
  Pdn p;
  const PdnIndex par = p.add_parallel({p.add_leaf(1), p.add_leaf(2)});
  p.set_root(p.add_series({p.add_leaf(0), par, p.add_leaf(3)}));
  const PbeAnalysis a = analyze_pbe(p, true);
  EXPECT_EQ(a.required_count(), 1);  // P's bottom node
  EXPECT_EQ(a.pending_count(), 1);   // X-P junction
}

TEST(PbeAnalyzer, DischargePointToString) {
  EXPECT_EQ(to_string(DischargePoint{}), "bottom");
  EXPECT_EQ(to_string(DischargePoint{3, 1}), "junction(s=3,p=1)");
}

TEST(PbeAnalyzer, FullyProtected) {
  const Pdn p = fig2_pdn();
  const auto req = analyze_pbe(p, true).required;
  EXPECT_FALSE(fully_protected(p, true, {}));
  EXPECT_TRUE(fully_protected(p, true, req));
}

// ---------------------------------------------------------------------------
// Stack reordering (RS pass).
// ---------------------------------------------------------------------------

TEST(Reorder, MovesParallelStackToBottom) {
  Pdn p = fig2_pdn();  // (A+B+C) above D
  EXPECT_EQ(required_discharges(p, true), 1);
  const int changed = reorder_series_stacks(p);
  EXPECT_EQ(changed, 1);
  EXPECT_EQ(required_discharges(p, true), 0);
  // Bottom child is now the parallel stack.
  const PdnNode& root = p.node(p.root());
  EXPECT_EQ(p.node(root.children.back()).kind, PdnKind::kParallel);
}

TEST(Reorder, PrefersLargerPendingAtBottom) {
  // (A*B + C) and (D + E) in series: both parallel; (A*B + C) defers more
  // (its interior junction) so it must go to the bottom.
  Pdn p;
  const PdnIndex big = [&] {
    const PdnIndex ab = p.add_series({p.add_leaf(0), p.add_leaf(1)});
    return p.add_parallel({ab, p.add_leaf(2)});
  }();
  const PdnIndex small = p.add_parallel({p.add_leaf(3), p.add_leaf(4)});
  p.set_root(p.add_series({big, small}));
  EXPECT_EQ(required_discharges(p, true), 2);  // big on top commits 2
  reorder_series_stacks(p);
  EXPECT_EQ(required_discharges(p, true), 1);  // small on top commits 1
}

TEST(Reorder, NoChangeWhenAlreadyOptimal) {
  Pdn p;
  const PdnIndex par = p.add_parallel({p.add_leaf(0), p.add_leaf(1)});
  p.set_root(p.add_series({p.add_leaf(2), par}));
  EXPECT_EQ(reorder_series_stacks(p), 0);
}

TEST(Reorder, PreservesFunction) {
  Pdn p = fig2_pdn();
  Pdn q = p;
  reorder_series_stacks(q);
  for (int v = 0; v < 16; ++v) {
    auto val = [&](std::uint32_t s) { return ((v >> s) & 1) != 0; };
    EXPECT_EQ(p.conducts(val), q.conducts(val)) << v;
  }
}

TEST(Reorder, RecursesIntoNestedStacks) {
  // Nested series inside a parallel branch also gets reordered.
  Pdn p;
  const PdnIndex inner_par = p.add_parallel({p.add_leaf(0), p.add_leaf(1)});
  const PdnIndex inner = p.add_series({inner_par, p.add_leaf(2)});
  const PdnIndex outer_par = p.add_parallel({inner, p.add_leaf(3)});
  p.set_root(p.add_series({outer_par, p.add_leaf(4)}));
  const int before = required_discharges(p, true);
  reorder_series_stacks(p);
  EXPECT_LT(required_discharges(p, true), before);
}

}  // namespace
}  // namespace soidom
