#include <gtest/gtest.h>

#include <string>

#include "soidom/core/flow.hpp"
#include "soidom/sim/sim.hpp"
#include "soidom/verilog/parser.hpp"

#ifndef SOIDOM_REPO_DIR
#error "SOIDOM_REPO_DIR must be defined by the build"
#endif

namespace soidom {
namespace {

std::string circuit_path(const char* file) {
  return std::string(SOIDOM_REPO_DIR) + "/examples/circuits/" + file;
}

TEST(ExampleCircuits, FullAdderMapsAndComputes) {
  const BlifModel model = parse_blif_file(circuit_path("fulladd.blif"));
  const FlowResult r = run_flow(model, FlowOptions{});
  ASSERT_TRUE(r.ok());
  // Truth-table the mapped netlist directly.
  for (int v = 0; v < 8; ++v) {
    const bool a = (v & 1) != 0;
    const bool b = (v & 2) != 0;
    const bool cin = (v & 4) != 0;
    std::vector<SimWord> words = {a ? ~SimWord{0} : 0, b ? ~SimWord{0} : 0,
                                  cin ? ~SimWord{0} : 0};
    const auto out = r.netlist.simulate(words);
    const int total = (a ? 1 : 0) + (b ? 1 : 0) + (cin ? 1 : 0);
    EXPECT_EQ((out[0] & 1) != 0, (total & 1) != 0);  // sum
    EXPECT_EQ((out[1] & 1) != 0, total >= 2);        // cout
  }
}

TEST(ExampleCircuits, Mux8SelectsEveryLane) {
  const BlifModel model = parse_blif_file(circuit_path("mux8.blif"));
  const FlowResult r = run_flow(model, FlowOptions{});
  ASSERT_TRUE(r.ok());
  for (int sel = 0; sel < 8; ++sel) {
    std::vector<SimWord> words(11, 0);
    words[static_cast<std::size_t>(sel)] = ~SimWord{0};  // hot data lane
    for (int k = 0; k < 3; ++k) {
      words[8 + static_cast<std::size_t>(k)] =
          ((sel >> k) & 1) != 0 ? ~SimWord{0} : 0;
    }
    EXPECT_EQ(r.netlist.simulate(words)[0], ~SimWord{0}) << sel;
  }
}

TEST(ExampleCircuits, Priority8GrantsAreOneHot) {
  const BlifModel model = parse_blif_file(circuit_path("priority8.blif"));
  const FlowResult r = run_flow(model, FlowOptions{});
  ASSERT_TRUE(r.ok());
  Rng rng(55);
  for (int round = 0; round < 32; ++round) {
    std::vector<SimWord> words = random_pi_words(8, rng);
    const auto out = r.netlist.simulate(words);
    // For every pattern: at most one grant set, and any == OR of requests.
    SimWord any_grant = 0;
    SimWord overlap = 0;
    for (int g = 0; g < 8; ++g) {
      overlap |= any_grant & out[static_cast<std::size_t>(g)];
      any_grant |= out[static_cast<std::size_t>(g)];
    }
    EXPECT_EQ(overlap, 0u);
    SimWord any_req = 0;
    for (const SimWord w : words) any_req |= w;
    EXPECT_EQ(out[8], any_req);
    EXPECT_EQ(any_grant, any_req);
  }
}

TEST(ExampleCircuits, Gray4VerilogRoundTrip) {
  const Network net = parse_verilog_file(circuit_path("gray4.v"));
  const FlowResult r = run_flow(net, FlowOptions{});
  ASSERT_TRUE(r.ok());
  for (int v = 0; v < 16; ++v) {
    std::vector<SimWord> words(4);
    for (int k = 0; k < 4; ++k) {
      words[static_cast<std::size_t>(k)] = ((v >> k) & 1) != 0 ? ~SimWord{0} : 0;
    }
    const auto out = r.netlist.simulate(words);
    const int gray = v ^ (v >> 1);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ((out[static_cast<std::size_t>(k)] & 1) != 0,
                ((gray >> k) & 1) != 0)
          << v << " bit " << k;
    }
    EXPECT_EQ((out[4] & 1) != 0, __builtin_popcount(v) % 2 == 1);
  }
}

}  // namespace
}  // namespace soidom
