/// Task-graph-parallel mapper determinism: the mapped netlist, its
/// serialization and every predicted cost must be bit-identical for every
/// thread count, on every engine and objective.  Multi-thread runs force
/// serial_cutoff = 0 and oversubscribe = true so the scheduler path is
/// actually exercised even on small circuits and small machines (the
/// scheduler-specific cases live in test_mapper_taskgraph.cpp).  Also
/// covers the determinism satellite fixes: permuted-fanin BLIF
/// invariance, the second_goes_bottom tie-break, and TupleOracle::map()
/// re-entry.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers.hpp"
#include "soidom/benchgen/generators.hpp"
#include "soidom/benchgen/registry.hpp"
#include "soidom/blif/blif.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/domino/serialize.hpp"
#include "soidom/domino/stats.hpp"
#include "soidom/mapper/mapper.hpp"
#include "soidom/unate/unate.hpp"

namespace soidom {
namespace {

struct Snapshot {
  std::string dnl;
  std::int64_t predicted_cost = 0;
  std::size_t candidates_retained = 0;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

Snapshot map_with_threads(const UnateResult& unate, MapperOptions opts,
                          int threads) {
  opts.num_threads = threads;
  // Keep the identity checks non-vacuous: spawn the requested workers even
  // above hardware concurrency, and keep small circuits on the scheduler.
  opts.oversubscribe = true;
  opts.serial_cutoff = 0;
  const MappingResult r = map_to_domino(unate, opts);
  return {write_dnl(r.netlist), r.predicted_cost, r.candidates_retained};
}

/// 1-thread vs N-thread mapping is bit-identical: same serialized netlist,
/// same DP-predicted cost, same arena size.
TEST(MapperParallel, ThreadCountInvarianceOnPaperCircuits) {
  for (const char* name : {"apex7", "cordic", "c880", "frg1"}) {
    const UnateResult unate = make_unate(build_benchmark(name));
    const Snapshot seq = map_with_threads(unate, MapperOptions{}, 1);
    for (const int threads : {2, 4, 7}) {
      EXPECT_EQ(seq, map_with_threads(unate, MapperOptions{}, threads))
          << name << " with " << threads << " threads";
    }
  }
}

/// Same invariance through the full production flow (decompose + unate +
/// map) on a generated benchmark network.
TEST(MapperParallel, ThreadCountInvarianceOnBenchgenNetwork) {
  const Network net = gen_spn(24, 4, 0xBEEF);
  for (const int threads : {2, 4}) {
    FlowOptions a;
    a.mapper.num_threads = 1;
    a.mapper.oversubscribe = true;
    a.mapper.serial_cutoff = 0;
    a.verify_rounds = 0;
    FlowOptions b = a;
    b.mapper.num_threads = threads;
    const FlowResult ra = run_flow(net, a);
    const FlowResult rb = run_flow(net, b);
    EXPECT_EQ(write_dnl(ra.netlist), write_dnl(rb.netlist));
    EXPECT_EQ(compute_stats(ra.netlist).t_total,
              compute_stats(rb.netlist).t_total);
  }
}

/// Every engine / objective / feature combination stays thread-invariant,
/// including complex gates (oversize split fodder) and the non-exhaustive
/// placement-heuristic ablation that exercises second_goes_bottom.
TEST(MapperParallel, ThreadCountInvarianceAcrossOptionCombinations) {
  const UnateResult unate = make_unate(build_benchmark("c8"));
  std::vector<MapperOptions> combos;
  {
    MapperOptions o;
    o.engine = MappingEngine::kDominoMap;
    combos.push_back(o);
  }
  {
    MapperOptions o;
    o.objective = CostObjective::kDepth;
    combos.push_back(o);
  }
  {
    MapperOptions o;
    o.enable_complex_gates = true;
    combos.push_back(o);
  }
  {
    MapperOptions o;
    o.exhaustive_ordering = false;
    combos.push_back(o);
  }
  {
    MapperOptions o;
    o.clock_weight = 2.0;
    o.gate_at_fanout = false;
    o.max_width = 3;
    o.max_height = 4;
    combos.push_back(o);
  }
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const Snapshot seq = map_with_threads(unate, combos[i], 1);
    EXPECT_EQ(seq, map_with_threads(unate, combos[i], 4))
        << "option combo " << i;
  }
}

/// num_threads = 0 resolves to hardware concurrency and still matches the
/// sequential result.
TEST(MapperParallel, AutoThreadCountMatchesSequential) {
  const UnateResult unate = make_unate(build_benchmark("z4ml"));
  EXPECT_EQ(map_with_threads(unate, MapperOptions{}, 1),
            map_with_threads(unate, MapperOptions{}, 0));
}

// --- permuted-fanin determinism -------------------------------------------

Snapshot map_blif(const std::string& text, bool exhaustive) {
  FlowOptions opts;
  opts.verify_rounds = 0;
  opts.mapper.exhaustive_ordering = exhaustive;
  const FlowResult r = run_flow(parse_blif(text), opts);
  return {write_dnl(r.netlist), compute_stats(r.netlist).t_total, 0};
}

/// Permuting the fanin columns of a .names cover must not change the
/// realized netlist: the builder canonicalizes commutative fanins and the
/// mapper's operand-placement tie-breaks no longer depend on textual
/// order.
TEST(MapperParallel, PermutedFaninBlifRealizesIdenticalNetlists) {
  const std::string base =
      ".model perm\n"
      ".inputs a b c d e\n"
      ".outputs y z\n"
      ".names a b t1\n11 1\n"
      ".names c d t2\n11 1\n"
      ".names t1 t2 y\n10 1\n01 1\n11 1\n"
      ".names t1 e z\n11 1\n"
      ".end\n";
  const std::string permuted =
      ".model perm\n"
      ".inputs a b c d e\n"
      ".outputs y z\n"
      ".names b a t1\n11 1\n"        // fanin columns swapped
      ".names d c t2\n11 1\n"
      ".names t1 t2 y\n10 1\n01 1\n11 1\n"
      ".names e t1 z\n11 1\n"        // fanin columns swapped
      ".end\n";
  for (const bool exhaustive : {true, false}) {
    EXPECT_EQ(map_blif(base, exhaustive), map_blif(permuted, exhaustive))
        << "exhaustive_ordering=" << exhaustive;
  }
}

/// The second_goes_bottom p_total tie is broken by candidate content (and
/// only then by arena index), not fanin textual order: under the
/// non-exhaustive heuristic, mapping is a pure function of the network.
TEST(MapperParallel, HeuristicPlacementIsDeterministic) {
  const Network net = testing::random_network(8, 40, 4, 0xC0FFEE);
  FlowOptions opts;
  opts.verify_rounds = 0;
  opts.mapper.exhaustive_ordering = false;
  const FlowResult a = run_flow(net, opts);
  const FlowResult b = run_flow(net, opts);
  EXPECT_EQ(write_dnl(a.netlist), write_dnl(b.netlist));
}

// --- TupleOracle::map re-entry --------------------------------------------

/// map() is memoized: the second call returns the identical (non-empty)
/// result instead of a silently empty netlist, and the DP introspection
/// (tuples_of / gate_cost_of) keeps working after realization.
TEST(MapperParallel, OracleMapIsMemoizedAndReentrant) {
  const UnateResult unate = make_unate(testing::full_adder_network());
  const TupleOracle oracle(unate, MapperOptions{});
  const MappingResult first = oracle.map();
  ASSERT_FALSE(first.netlist.gates().empty());
  const MappingResult second = oracle.map();
  EXPECT_EQ(write_dnl(first.netlist), write_dnl(second.netlist));
  EXPECT_EQ(first.predicted_cost, second.predicted_cost);
  EXPECT_EQ(first.candidates_retained, second.candidates_retained);

  // tuples_of after map(): same tuples an un-realized oracle reports.
  const TupleOracle fresh(unate, MapperOptions{});
  for (std::uint32_t i = 2; i < unate.net.size(); ++i) {
    const NodeId id{i};
    if (unate.net.kind(id) != NodeKind::kAnd &&
        unate.net.kind(id) != NodeKind::kOr) {
      continue;
    }
    const auto after = oracle.tuples_of(id);
    const auto before = fresh.tuples_of(id);
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t k = 0; k < after.size(); ++k) {
      EXPECT_EQ(after[k].width, before[k].width);
      EXPECT_EQ(after[k].height, before[k].height);
      EXPECT_EQ(after[k].committed, before[k].committed);
    }
  }
}

/// The DP effort counters are populated and consistent.
TEST(MapperParallel, EffortCountersPopulated) {
  const UnateResult unate = make_unate(build_benchmark("z4ml"));
  const MappingResult r = map_to_domino(unate, MapperOptions{});
  EXPECT_GT(r.candidates_examined, 0u);
  EXPECT_GT(r.candidates_retained, 0u);
  EXPECT_GT(r.dp_levels, 0);
  EXPECT_LE(r.candidates_retained, r.candidates_examined +
                                       unate.net.size() /* leaves + gates */);
  // Below serial_cutoff with default options the DP runs inline.
  EXPECT_EQ(r.dp_tasks, 0);
  EXPECT_EQ(r.threads_used, 1);
}

}  // namespace
}  // namespace soidom
