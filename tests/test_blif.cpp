#include <gtest/gtest.h>

#include "soidom/base/contracts.hpp"
#include "soidom/blif/blif.hpp"
#include "soidom/sim/sim.hpp"

namespace soidom {
namespace {

const char* kAdderBlif = R"(
# half adder
.model ha
.inputs a b
.outputs s c
.names a b s
01 1
10 1
.names a b c
11 1
.end
)";

TEST(SopCover, AndEval) {
  const SopCover c = SopCover::and_n(3);
  EXPECT_TRUE(c.eval({true, true, true}));
  EXPECT_FALSE(c.eval({true, false, true}));
}

TEST(SopCover, OrEval) {
  const SopCover c = SopCover::or_n(3);
  EXPECT_FALSE(c.eval({false, false, false}));
  EXPECT_TRUE(c.eval({false, true, false}));
}

TEST(SopCover, InverterAndBuffer) {
  EXPECT_TRUE(SopCover::inverter().eval({false}));
  EXPECT_FALSE(SopCover::inverter().eval({true}));
  EXPECT_TRUE(SopCover::buffer().eval({true}));
  EXPECT_FALSE(SopCover::buffer().eval({false}));
}

TEST(SopCover, Constants) {
  bool v = false;
  EXPECT_TRUE(SopCover::const_zero().is_constant(v));
  EXPECT_FALSE(v);
  EXPECT_TRUE(SopCover::const_one().is_constant(v));
  EXPECT_TRUE(v);
  EXPECT_FALSE(SopCover::and_n(2).is_constant(v));
}

TEST(SopCover, OffSetSemantics) {
  // Off-set cover: f = !(a & !b)
  SopCover c{2, {}, false};
  c.cubes.push_back(Cube{{CubeLit::kPos, CubeLit::kNeg}});
  EXPECT_FALSE(c.eval({true, false}));
  EXPECT_TRUE(c.eval({true, true}));
  EXPECT_TRUE(c.eval({false, false}));
}

TEST(SopCover, SyntacticUnateness) {
  EXPECT_TRUE(SopCover::and_n(4).syntactically_unate());
  SopCover xo{2, {}, true};  // xor: binate in both
  xo.cubes.push_back(Cube{{CubeLit::kPos, CubeLit::kNeg}});
  xo.cubes.push_back(Cube{{CubeLit::kNeg, CubeLit::kPos}});
  EXPECT_FALSE(xo.syntactically_unate());
}

TEST(BlifParser, ParsesHalfAdder) {
  const BlifModel m = parse_blif(kAdderBlif);
  EXPECT_EQ(m.name, "ha");
  ASSERT_EQ(m.inputs.size(), 2u);
  ASSERT_EQ(m.outputs.size(), 2u);
  ASSERT_EQ(m.tables.size(), 2u);
  EXPECT_EQ(m.tables[0].output, "s");
  EXPECT_EQ(m.tables[0].cover.cubes.size(), 2u);
}

TEST(BlifParser, EvaluatesHalfAdder) {
  const BlifModel m = parse_blif(kAdderBlif);
  for (const bool a : {false, true}) {
    for (const bool b : {false, true}) {
      const auto out = evaluate(m, {a, b});
      EXPECT_EQ(out[0], a != b);
      EXPECT_EQ(out[1], a && b);
    }
  }
}

TEST(BlifParser, HandlesContinuationAndComments) {
  const BlifModel m = parse_blif(
      ".model t # trailing comment\n"
      ".inputs a \\\n b c\n"
      ".outputs z\n"
      ".names a b \\\n c z\n"
      "111 1\n"
      ".end\n");
  EXPECT_EQ(m.inputs.size(), 3u);
  EXPECT_EQ(m.tables[0].inputs.size(), 3u);
}

TEST(BlifParser, ConstantTables) {
  const BlifModel m = parse_blif(
      ".model c\n.inputs a\n.outputs one zero\n"
      ".names one\n1\n"
      ".names zero\n"
      ".end\n");
  const auto out = evaluate(m, {false});
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(BlifParser, RejectsLatch) {
  EXPECT_THROW(
      parse_blif(".model s\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n"),
      Error);
}

TEST(BlifParser, RejectsSubckt) {
  EXPECT_THROW(parse_blif(".model s\n.inputs a\n.outputs q\n"
                          ".subckt sub x=a y=q\n.end\n"),
               Error);
}

TEST(BlifParser, RejectsMalformedCube) {
  EXPECT_THROW(parse_blif(".model m\n.inputs a b\n.outputs z\n"
                          ".names a b z\n1 1\n.end\n"),
               Error);
  EXPECT_THROW(parse_blif(".model m\n.inputs a b\n.outputs z\n"
                          ".names a b z\n1x 1\n.end\n"),
               Error);
}

TEST(BlifParser, RejectsUndefinedSignals) {
  EXPECT_THROW(parse_blif(".model m\n.inputs a\n.outputs z\n.end\n"), Error);
  EXPECT_THROW(parse_blif(".model m\n.inputs a\n.outputs z\n"
                          ".names a ghost z\n11 1\n.end\n"),
               Error);
}

TEST(BlifParser, RejectsDoubleDefinition) {
  EXPECT_THROW(parse_blif(".model m\n.inputs a\n.outputs z\n"
                          ".names a z\n1 1\n.names a z\n0 1\n.end\n"),
               Error);
}

TEST(BlifParser, RejectsMixedPhases) {
  EXPECT_THROW(parse_blif(".model m\n.inputs a b\n.outputs z\n"
                          ".names a b z\n11 1\n00 0\n.end\n"),
               Error);
}

TEST(BlifParser, ErrorMentionsLineNumber) {
  try {
    parse_blif(".model m\n.inputs a\n.outputs z\n.names a z\n2 1\n.end\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos);
  }
}

TEST(BlifWriter, RoundTripsModel) {
  const BlifModel m = parse_blif(kAdderBlif);
  const BlifModel m2 = parse_blif(write_blif(m));
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_EQ(evaluate(m, {a != 0, b != 0}), evaluate(m2, {a != 0, b != 0}));
    }
  }
}

TEST(BlifWriter, WritesOffsetCover) {
  BlifModel m;
  m.name = "offs";
  m.inputs = {"a", "b"};
  m.outputs = {"z"};
  BlifTable t;
  t.inputs = {"a", "b"};
  t.output = "z";
  t.cover = SopCover{2, {Cube{{CubeLit::kPos, CubeLit::kPos}}}, false};
  m.tables.push_back(t);
  const BlifModel m2 = parse_blif(write_blif(m));
  EXPECT_EQ(evaluate(m2, {true, true})[0], false);
  EXPECT_EQ(evaluate(m2, {true, false})[0], true);
}

}  // namespace
}  // namespace soidom
