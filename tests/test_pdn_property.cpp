#include <gtest/gtest.h>

#include "soidom/base/rng.hpp"
#include "soidom/pdn/analyze.hpp"
#include "soidom/pdn/pdn.hpp"
#include "soidom/pdn/reorder.hpp"

namespace soidom {
namespace {

/// Seeded random series/parallel tree over `num_signals` gate inputs.
PdnIndex random_subtree(Pdn& pdn, Rng& rng, int depth, int num_signals,
                        bool parent_series) {
  const bool make_leaf = depth <= 0 || rng.chance(2, 5);
  if (make_leaf) {
    return pdn.add_leaf(static_cast<std::uint32_t>(
        rng.next_below(static_cast<std::uint64_t>(num_signals))));
  }
  // Alternate kinds so flattening keeps structure interesting.
  const bool series = parent_series ? rng.chance(1, 4) : rng.chance(3, 4);
  const int arity = 2 + static_cast<int>(rng.next_below(3));
  std::vector<PdnIndex> children;
  for (int k = 0; k < arity; ++k) {
    children.push_back(
        random_subtree(pdn, rng, depth - 1, num_signals, series));
  }
  return series ? pdn.add_series(std::move(children))
                : pdn.add_parallel(std::move(children));
}

Pdn random_pdn(std::uint64_t seed, int num_signals = 6) {
  Rng rng(seed);
  Pdn pdn;
  pdn.set_root(random_subtree(pdn, rng, 4, num_signals, false));
  return pdn;
}

bool eval(const Pdn& pdn, std::uint32_t assignment) {
  return pdn.conducts(
      [&](std::uint32_t s) { return ((assignment >> s) & 1) != 0; });
}

class PdnRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PdnRandomProperty, NormalizationInvariants) {
  const Pdn pdn = random_pdn(GetParam());
  for (PdnIndex i = 0; i < pdn.pool_size(); ++i) {
    const PdnNode& n = pdn.node(i);
    if (n.kind == PdnKind::kLeaf) continue;
    EXPECT_GE(n.children.size(), 2u);
    for (const PdnIndex c : n.children) {
      // add_series / add_parallel flatten same-kind children.
      EXPECT_NE(pdn.node(c).kind, n.kind);
    }
  }
}

TEST_P(PdnRandomProperty, ShapeMetricBounds) {
  const Pdn pdn = random_pdn(GetParam());
  const int w = pdn.width();
  const int h = pdn.height();
  const int t = pdn.transistor_count();
  EXPECT_GE(w, 1);
  EXPECT_GE(h, 1);
  EXPECT_LE(t, w * h);
  EXPECT_GE(t, std::max(w, h));
  EXPECT_EQ(static_cast<std::size_t>(t), pdn.leaf_signals().size());
}

TEST_P(PdnRandomProperty, AnalyzerMonotoneInGrounding) {
  const Pdn pdn = random_pdn(GetParam());
  const PbeAnalysis grounded = analyze_pbe(pdn, true);
  const PbeAnalysis floating = analyze_pbe(pdn, false);
  // Everything required when grounded is still required when floating.
  for (const DischargePoint& p : grounded.required) {
    EXPECT_NE(std::find(floating.required.begin(), floating.required.end(), p),
              floating.required.end());
  }
  EXPECT_GE(floating.required_count(), grounded.required_count());
  // Conservation: floating commits exactly the grounded-pending points
  // when the bottom is a parallel stack, plus the bottom itself.
  if (grounded.par_b_root) {
    EXPECT_EQ(floating.required_count(),
              grounded.required_count() + grounded.pending_count() + 1);
    EXPECT_EQ(floating.pending_count(), 0);
  } else {
    EXPECT_EQ(floating.required_count(), grounded.required_count());
  }
}

TEST_P(PdnRandomProperty, LiteralModelIsMorePessimistic) {
  const Pdn pdn = random_pdn(GetParam());
  for (const bool grounded : {true, false}) {
    EXPECT_GE(
        required_discharges(pdn, grounded, PendingModel::kPaperLiteral),
        required_discharges(pdn, grounded, PendingModel::kCoherent));
  }
}

TEST_P(PdnRandomProperty, RequiredPointsAreValidJunctions) {
  const Pdn pdn = random_pdn(GetParam());
  for (const bool grounded : {true, false}) {
    for (const DischargePoint& p : analyze_pbe(pdn, grounded).required) {
      if (p.at_bottom()) continue;
      const PdnNode& n = pdn.node(p.series_node);
      EXPECT_EQ(n.kind, PdnKind::kSeries);
      EXPECT_LT(p.pos + 1, n.children.size());
    }
  }
}

TEST_P(PdnRandomProperty, ReorderPreservesFunction) {
  const Pdn before = random_pdn(GetParam());
  Pdn after = before;
  reorder_series_stacks(after);
  for (std::uint32_t a = 0; a < 64; ++a) {
    EXPECT_EQ(eval(before, a), eval(after, a)) << "assignment " << a;
  }
}

TEST_P(PdnRandomProperty, ReorderNeverIncreasesGroundedDischarges) {
  const Pdn before = random_pdn(GetParam());
  Pdn top_level = before;
  reorder_series_stacks(top_level, PendingModel::kCoherent,
                        /*recursive=*/false);
  Pdn recursive = before;
  reorder_series_stacks(recursive, PendingModel::kCoherent,
                        /*recursive=*/true);
  const int base = required_discharges(before, true);
  const int after_top = required_discharges(top_level, true);
  const int after_rec = required_discharges(recursive, true);
  EXPECT_LE(after_top, base);
  EXPECT_LE(after_rec, after_top);
}

TEST_P(PdnRandomProperty, ReorderIsIdempotent) {
  Pdn pdn = random_pdn(GetParam());
  reorder_series_stacks(pdn);
  const int again = reorder_series_stacks(pdn);
  EXPECT_EQ(again, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdnRandomProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace soidom
