#include <gtest/gtest.h>

#include <fstream>

#include "helpers.hpp"
#include "soidom/base/rng.hpp"
#include "soidom/benchgen/registry.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/domino/export.hpp"
#include "soidom/sim/sim.hpp"
#include "soidom/verilog/parser.hpp"

namespace soidom {
namespace {

TEST(Verilog, AnsiPortsAndOperators) {
  const Network net = parse_verilog(R"(
    module m (input a, input b, input c, output y, output z);
      assign y = (a & b) | ~c;
      assign z = a ^ b;
    endmodule
  )");
  ASSERT_EQ(net.pis().size(), 3u);
  ASSERT_EQ(net.outputs().size(), 2u);
  for (int v = 0; v < 8; ++v) {
    const bool a = (v & 1) != 0;
    const bool b = (v & 2) != 0;
    const bool c = (v & 4) != 0;
    const auto out = evaluate(net, {a, b, c});
    EXPECT_EQ(out[0], (a && b) || !c);
    EXPECT_EQ(out[1], a != b);
  }
}

TEST(Verilog, ClassicStyleDeclarations) {
  const Network net = parse_verilog(R"(
    // classic two-section style
    module m (a, b, y);
      input a, b;
      output y;
      wire t;
      assign t = a & b;
      assign y = ~t;
    endmodule
  )");
  EXPECT_EQ(net.pis().size(), 2u);
  EXPECT_EQ(evaluate(net, {true, true})[0], false);
  EXPECT_EQ(evaluate(net, {true, false})[0], true);
}

TEST(Verilog, VectorsExpandPerBit) {
  const Network net = parse_verilog(R"(
    module m (input [1:0] a, output [1:0] y);
      assign y[0] = ~a[0];
      assign y[1] = a[1] & a[0];
    endmodule
  )");
  ASSERT_EQ(net.pis().size(), 2u);
  EXPECT_EQ(net.pi_name(net.pis()[0]), "a[0]");
  EXPECT_EQ(net.pi_name(net.pis()[1]), "a[1]");
  const auto out = evaluate(net, {true, true});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST(Verilog, WireInitializerAndConstants) {
  const Network net = parse_verilog(R"(
    module m (input a, output y, output one);
      wire t = a & 1'b1;
      assign y = t | 1'b0;
      assign one = 1'b1;
    endmodule
  )");
  EXPECT_EQ(evaluate(net, {true})[0], true);
  EXPECT_EQ(evaluate(net, {false})[0], false);
  EXPECT_EQ(evaluate(net, {false})[1], true);
}

TEST(Verilog, OutOfOrderAssignsResolve) {
  const Network net = parse_verilog(R"(
    module m (input a, input b, output y);
      assign y = t2;
      wire t2;
      assign t2 = t1 | b;
      wire t1 = a & b;
    endmodule
  )");
  EXPECT_EQ(evaluate(net, {false, true})[0], true);
  EXPECT_EQ(evaluate(net, {false, false})[0], false);
}

TEST(Verilog, CommentsAndPrecedence) {
  const Network net = parse_verilog(R"(
    module m (input a, input b, input c, output y);
      /* & binds tighter than ^ binds tighter than | */
      assign y = a | b ^ b & c; // == a | (b ^ (b & c))
    endmodule
  )");
  for (int v = 0; v < 8; ++v) {
    const bool a = (v & 1) != 0;
    const bool b = (v & 2) != 0;
    const bool c = (v & 4) != 0;
    EXPECT_EQ(evaluate(net, {a, b, c})[0], a || (b != (b && c)));
  }
}

TEST(Verilog, Errors) {
  // Sequential / unsupported constructs.
  EXPECT_THROW(parse_verilog("module m (input a, output y);\n"
                             "  always @(posedge a) y = a;\nendmodule\n"),
               Error);
  // Assignment to input.
  EXPECT_THROW(parse_verilog("module m (input a, output y);\n"
                             "  assign a = y;\nendmodule\n"),
               Error);
  // Double assignment.
  EXPECT_THROW(parse_verilog("module m (input a, output y);\n"
                             "  assign y = a;\n  assign y = ~a;\nendmodule\n"),
               Error);
  // Undeclared signal.
  EXPECT_THROW(parse_verilog("module m (input a, output y);\n"
                             "  assign y = ghost;\nendmodule\n"),
               Error);
  // Never-assigned output.
  EXPECT_THROW(parse_verilog("module m (input a, output y);\nendmodule\n"),
               Error);
  // Combinational cycle.
  EXPECT_THROW(parse_verilog("module m (input a, output y);\n"
                             "  wire t = y; assign y = t;\nendmodule\n"),
               Error);
  // Multi-bit literal.
  EXPECT_THROW(parse_verilog("module m (input a, output y);\n"
                             "  assign y = 2'b10;\nendmodule\n"),
               Error);
}

TEST(Verilog, ErrorMentionsLine) {
  try {
    parse_verilog("module m (input a, output y);\n\n  assign y = @;\n"
                  "endmodule\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

/// The round trip: map a circuit, export as Verilog, parse it back, prove
/// equivalence with the mapped netlist's combinational view.
class VerilogRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(VerilogRoundTrip, ExportParsesBackEquivalent) {
  const Network source = build_benchmark(GetParam());
  const FlowResult flow = run_flow(source, FlowOptions{});
  ASSERT_TRUE(flow.ok());
  const Network reparsed =
      parse_verilog(export_verilog(flow.netlist, GetParam()));

  // The reparsed module's PIs are the distinct source PIs in first-seen
  // order; align by name against the source network.
  ASSERT_EQ(reparsed.outputs().size(), source.outputs().size());
  std::vector<int> pi_map;  // reparsed PI -> source PI index
  for (const NodeId pi : reparsed.pis()) {
    int found = -1;
    for (std::size_t k = 0; k < source.pis().size(); ++k) {
      // export sanitizes names; our generators only use [a-z0-9_] already.
      if (source.pi_name(source.pis()[k]) == reparsed.pi_name(pi)) {
        found = static_cast<int>(k);
        break;
      }
    }
    ASSERT_GE(found, 0) << reparsed.pi_name(pi);
    pi_map.push_back(found);
  }

  Rng rng(42);
  for (int round = 0; round < 8; ++round) {
    const auto source_words = random_pi_words(source.pis().size(), rng);
    std::vector<SimWord> reparsed_words;
    for (const int k : pi_map) {
      reparsed_words.push_back(source_words[static_cast<std::size_t>(k)]);
    }
    EXPECT_EQ(simulate_outputs(source, source_words),
              simulate_outputs(reparsed, reparsed_words));
  }
}

INSTANTIATE_TEST_SUITE_P(Sample, VerilogRoundTrip,
                         ::testing::Values("cm150", "mux", "z4ml", "frg1",
                                           "9symml", "c432"));


TEST(Verilog, ClassicPortWithoutDirectionRejected) {
  EXPECT_THROW(parse_verilog("module m (a, ghost, y);\n"
                             "  input a;\n  output y;\n"
                             "  assign y = ~a;\nendmodule\n"),
               Error);
  // Vector ports declared in the body are fine.
  const Network ok = parse_verilog(
      "module m (a, y);\n  input [1:0] a;\n  output y;\n"
      "  assign y = a[0] & a[1];\nendmodule\n");
  EXPECT_EQ(ok.pis().size(), 2u);
}

TEST(Verilog, FileFrontEnd) {
  const std::string path = ::testing::TempDir() + "/soidom_vl_test.v";
  {
    std::ofstream out(path);
    out << "module f (input a, output y);\n  assign y = ~a;\nendmodule\n";
  }
  const Network net = parse_verilog_file(path);
  EXPECT_EQ(net.outputs().size(), 1u);
  EXPECT_THROW(parse_verilog_file("/nonexistent.v"), Error);
}

}  // namespace
}  // namespace soidom
