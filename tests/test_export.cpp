#include <gtest/gtest.h>

#include "helpers.hpp"
#include "soidom/benchgen/registry.hpp"
#include "soidom/core/flow.hpp"
#include "soidom/domino/export.hpp"

namespace soidom {
namespace {

DominoNetlist mapped(const Network& source) {
  FlowResult r = run_flow(source, FlowOptions{});
  EXPECT_TRUE(r.ok());
  return std::move(r.netlist);
}

TEST(SpiceExport, ContainsAllDominoDevices) {
  const DominoNetlist nl = mapped(testing::fig2_network());
  const std::string deck = export_spice(nl, "fig2");
  EXPECT_NE(deck.find(".subckt dgate0"), std::string::npos);
  EXPECT_NE(deck.find("MPPRE"), std::string::npos);   // precharge
  EXPECT_NE(deck.find("MPKEEP"), std::string::npos);  // keeper
  EXPECT_NE(deck.find("MPINV"), std::string::npos);   // output inverter
  EXPECT_NE(deck.find("MNINV"), std::string::npos);
  EXPECT_NE(deck.find("MNFOOT"), std::string::npos);  // footed gate
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

TEST(SpiceExport, TransistorCountMatchesStats) {
  const DominoNetlist nl = mapped(build_benchmark("cm150"));
  const std::string deck = export_spice(nl, "cm150");
  // Count device cards (lines starting with M).
  int devices = 0;
  for (std::size_t pos = 0; pos < deck.size();) {
    const std::size_t eol = deck.find('\n', pos);
    if (deck[pos] == 'M') ++devices;
    pos = eol == std::string::npos ? deck.size() : eol + 1;
  }
  const DominoStats s = compute_stats(nl);
  EXPECT_EQ(devices, s.t_total);
}

TEST(SpiceExport, DischargeTransistorsEmitted) {
  // A protected bulk-mapped netlist must show MPDIS devices.
  const Network source = build_benchmark("cm150");
  FlowOptions opts;
  opts.variant = FlowVariant::kDominoMap;
  FlowResult r = run_flow(source, opts);
  ASSERT_GT(r.stats.t_disch, 0);
  const std::string deck = export_spice(r.netlist, "cm150_dm");
  EXPECT_NE(deck.find("MPDIS"), std::string::npos);
}

TEST(SpiceExport, CustomModels) {
  const DominoNetlist nl = mapped(testing::fig3_network());
  SpiceModels models;
  models.nmos = "nfet_pd_soi";
  models.pmos = "pfet_pd_soi";
  const std::string deck = export_spice(nl, "fig3", models);
  EXPECT_NE(deck.find("nfet_pd_soi"), std::string::npos);
  EXPECT_NE(deck.find("pfet_pd_soi"), std::string::npos);
  EXPECT_EQ(deck.find("%NMOS%"), std::string::npos);
}

TEST(VerilogExport, StructurallySound) {
  const DominoNetlist nl = mapped(testing::full_adder_network());
  const std::string v = export_verilog(nl, "full_adder");
  EXPECT_NE(v.find("module full_adder"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input x"), std::string::npos);
  EXPECT_NE(v.find("output sum"), std::string::npos);
  EXPECT_NE(v.find("output cout"), std::string::npos);
  // One wire per gate.
  for (std::size_t g = 0; g < nl.gates().size(); ++g) {
    EXPECT_NE(v.find("wire g" + std::to_string(g) + " = "), std::string::npos);
  }
}

TEST(VerilogExport, NegatedLiteralsUseTilde) {
  NetworkBuilder b;
  const NodeId x = b.add_pi("x");
  const NodeId y = b.add_pi("y");
  b.add_output(b.add_and(b.add_inv(x), y), "z");
  const DominoNetlist nl = mapped(std::move(b).build());
  const std::string v = export_verilog(nl, "neg");
  EXPECT_NE(v.find("~x"), std::string::npos);
}

TEST(VerilogExport, ConstantOutputs) {
  NetworkBuilder b;
  b.add_pi("x");
  b.add_output(b.const1(), "one");
  b.add_output(b.const0(), "zero");
  const DominoNetlist nl = mapped(std::move(b).build());
  const std::string v = export_verilog(nl, "konst");
  EXPECT_NE(v.find("assign one = 1'b1"), std::string::npos);
  EXPECT_NE(v.find("assign zero = 1'b0"), std::string::npos);
}

TEST(Export, SanitizesAwkwardNames) {
  NetworkBuilder b;
  const NodeId x = b.add_pi("sig[3].q");
  b.add_output(b.add_inv(x), "out<1>");
  const DominoNetlist nl = mapped(std::move(b).build());
  const std::string v = export_verilog(nl, "weird design");
  EXPECT_EQ(v.find('['), std::string::npos);
  EXPECT_EQ(v.find('<'), std::string::npos);
  const std::string deck = export_spice(nl, "weird design");
  EXPECT_NE(deck.find("sig_3__q"), std::string::npos);
}

}  // namespace
}  // namespace soidom
