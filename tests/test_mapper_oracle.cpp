#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "soidom/mapper/mapper.hpp"
#include "soidom/network/builder.hpp"
#include "soidom/unate/unate.hpp"

namespace soidom {
namespace {

/// Hand-computed tuple sets for simple structures — the DP's unit-level
/// oracle (Fig. 3's example lives in test_mapper.cpp; these cover chains,
/// wide ORs, and limit pressure).

std::vector<NodeId> and_or_nodes(const Network& net) {
  std::vector<NodeId> out;
  for (std::uint32_t i = 2; i < net.size(); ++i) {
    const NodeKind k = net.kind(NodeId{i});
    if (k == NodeKind::kAnd || k == NodeKind::kOr) out.push_back(NodeId{i});
  }
  return out;
}

std::int64_t min_cost_at(const std::vector<TupleInfo>& tuples, int w, int h) {
  std::int64_t best = -1;
  for (const TupleInfo& t : tuples) {
    if (t.width == w && t.height == h &&
        (best < 0 || t.cost_transistors() < best)) {
      best = t.cost_transistors();
    }
  }
  return best;
}

TEST(MapperOracle, AndChainShapes) {
  // ((a&b)&c)&d: the top node's raw options are exactly the series stacks
  // of height 2..4 (with inner gates absorbed) plus sub-gate splits.
  NetworkBuilder b;
  const NodeId a = b.add_pi("a");
  const NodeId bb = b.add_pi("b");
  const NodeId c = b.add_pi("c");
  const NodeId d = b.add_pi("d");
  b.add_output(b.add_and(b.add_and(b.add_and(a, bb), c), d), "f");
  const Network net = std::move(b).build();
  const UnateResult unate = make_unate(net);

  MapperOptions opts;
  opts.engine = MappingEngine::kDominoMap;
  opts.max_width = 4;
  opts.max_height = 4;
  TupleOracle oracle(unate, opts);
  const auto nodes = and_or_nodes(unate.net);
  ASSERT_EQ(nodes.size(), 3u);
  const NodeId top = nodes.back();
  const auto tuples = oracle.tuples_of(top);

  EXPECT_EQ(min_cost_at(tuples, 1, 4), 4);   // full series stack: 4 nMOS
  EXPECT_EQ(min_cost_at(tuples, 1, 3), 10);  // inner gate (a&b)=7, +1, +c, +d
  EXPECT_EQ(min_cost_at(tuples, 1, 2), 10);  // gate((a&b)&c)=8, +1, +d
  // Gate of the whole chain: 4 transistors + footed overhead 5.
  EXPECT_EQ(min_cost_at(tuples, 1, 1), 9);
  EXPECT_EQ(oracle.gate_cost_of(top), 9 * kCostUnitsPerTransistor);
}

TEST(MapperOracle, WideOrShapes) {
  // a+b+c+d as a balanced tree: raw flat stack {W4,H1} costs 4; the gate
  // costs 9 (footed).
  NetworkBuilder b;
  const NodeId a = b.add_pi("a");
  const NodeId bb = b.add_pi("b");
  const NodeId c = b.add_pi("c");
  const NodeId d = b.add_pi("d");
  b.add_output(b.add_or(b.add_or(a, bb), b.add_or(c, d)), "f");
  const Network net = std::move(b).build();
  const UnateResult unate = make_unate(net);

  MapperOptions opts;
  opts.engine = MappingEngine::kDominoMap;
  opts.max_width = 4;
  opts.max_height = 4;
  TupleOracle oracle(unate, opts);
  const NodeId top = and_or_nodes(unate.net).back();
  const auto tuples = oracle.tuples_of(top);
  EXPECT_EQ(min_cost_at(tuples, 4, 1), 4);
  EXPECT_EQ(min_cost_at(tuples, 1, 1), 9);
}

TEST(MapperOracle, HeightLimitForcesGateSplit) {
  // A 6-deep AND chain with Hmax=4: the mapper must split at least once;
  // optimal is gate(4-stack)=9 feeding a footed 3-stack gate:
  // 9 + (1 + 2 + 5) = 17.
  NetworkBuilder b;
  std::vector<NodeId> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(b.add_pi("x" + std::to_string(i)));
  NodeId acc = pis[0];
  for (int i = 1; i < 6; ++i) acc = b.add_and(acc, pis[static_cast<std::size_t>(i)]);
  b.add_output(acc, "f");
  const Network net = std::move(b).build();
  const UnateResult unate = make_unate(net);

  MapperOptions opts;
  opts.engine = MappingEngine::kDominoMap;
  opts.max_width = 4;
  opts.max_height = 4;
  const MappingResult result = map_to_domino(unate, opts);
  EXPECT_EQ(result.netlist.gates().size(), 2u);
  int total_logic = 0;
  for (const DominoGate& g : result.netlist.gates()) {
    EXPECT_LE(g.pdn.height(), 4);
    total_logic += g.logic_transistors();
  }
  EXPECT_EQ(total_logic, 17);
}

TEST(MapperOracle, SoiPendingBookkeepingOnOrOfAnds) {
  // SOI tuples for (a&b)+(c&d), all-grounded: the {2,2} structure carries
  // two pending junctions and a parallel bottom, but commits nothing.
  const Network net = testing::fig3_network();
  const UnateResult unate = make_unate(net);
  MapperOptions opts;  // SOI defaults
  opts.max_width = 4;
  opts.max_height = 4;
  TupleOracle oracle(unate, opts);
  const NodeId top = and_or_nodes(unate.net).back();
  for (const TupleInfo& t : oracle.tuples_of(top)) {
    if (t.width == 2 && t.height == 2 && t.cost_transistors() == 4) {
      EXPECT_EQ(t.p_dis(), 2);
      EXPECT_TRUE(t.par_b);
      EXPECT_EQ(t.disch_committed, 0);
      return;
    }
  }
  FAIL() << "expected the {2,2,4} tuple to survive";
}

TEST(MapperOracle, SoiCommitsWhenStackingParallelOnTop) {
  // ((a+b) & c) & ... : when the parallel structure must sit above
  // something, the SOI DP bills its bottom junction.
  NetworkBuilder b;
  const NodeId a = b.add_pi("a");
  const NodeId bb = b.add_pi("b");
  const NodeId c = b.add_pi("c");
  b.add_output(b.add_and(b.add_or(a, bb), c), "f");
  const Network net = std::move(b).build();
  const UnateResult unate = make_unate(net);

  MapperOptions opts;
  opts.grounding = GroundingPolicy::kNoneGrounded;  // force the worst case
  const MappingResult result = map_to_domino(unate, opts);
  ASSERT_EQ(result.netlist.gates().size(), 1u);
  // Ungrounded either way: parallel at bottom pends (penalty 1+... ) vs
  // parallel on top commits 1.  Both cost 1 discharge; the DP must place
  // exactly one.
  EXPECT_EQ(result.netlist.gates()[0].discharges.size(), 1u);
}

TEST(MapperOracle, TieBreakPrefersFewerPending) {
  // Two same-cost candidates differing in p_dis: the paper's tie rule
  // selects the smaller pending count for gate formation.  Construct via
  // symmetric structure where both orders cost the same.
  const Network net = testing::fig3_network();
  const UnateResult unate = make_unate(net);
  MapperOptions opts;
  const MappingResult result = map_to_domino(unate, opts);
  // All-grounded: no discharges anywhere.
  for (const DominoGate& g : result.netlist.gates()) {
    EXPECT_TRUE(g.discharges.empty());
  }
}

}  // namespace
}  // namespace soidom
