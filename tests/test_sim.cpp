#include <gtest/gtest.h>

#include "helpers.hpp"
#include "soidom/blif/blif.hpp"
#include "soidom/decomp/decompose.hpp"
#include "soidom/sim/sim.hpp"

namespace soidom {
namespace {

TEST(Sim, ConstantsAndPis) {
  NetworkBuilder b;
  const NodeId x = b.add_pi("x");
  b.add_output(x, "x_out");
  b.add_output(b.const1(), "one");
  b.add_output(b.const0(), "zero");
  const Network net = std::move(b).build();
  const auto out = simulate_outputs(net, {0xAAAAu});
  EXPECT_EQ(out[0], 0xAAAAu);
  EXPECT_EQ(out[1], ~SimWord{0});
  EXPECT_EQ(out[2], 0u);
}

TEST(Sim, GateSemantics) {
  NetworkBuilder b;
  const NodeId x = b.add_pi("x");
  const NodeId y = b.add_pi("y");
  b.add_output(b.add_and(x, y), "and");
  b.add_output(b.add_or(x, y), "or");
  b.add_output(b.add_inv(x), "inv");
  const Network net = std::move(b).build();
  const SimWord wx = 0b1100;
  const SimWord wy = 0b1010;
  const auto out = simulate_outputs(net, {wx, wy});
  EXPECT_EQ(out[0], wx & wy);
  EXPECT_EQ(out[1], wx | wy);
  EXPECT_EQ(out[2], ~wx);
}

TEST(Sim, EvaluateSingleVector) {
  const Network net = testing::fig2_network();  // (A+B+C)*D
  EXPECT_FALSE(evaluate(net, {true, false, false, false})[0]);
  EXPECT_TRUE(evaluate(net, {true, false, false, true})[0]);
  EXPECT_FALSE(evaluate(net, {false, false, false, true})[0]);
}

TEST(Sim, BitParallelMatchesScalar) {
  const Network net = testing::full_adder_network();
  Rng rng(5);
  const auto words = random_pi_words(net.pis().size(), rng);
  const auto out = simulate_outputs(net, words);
  for (int bit = 0; bit < 64; ++bit) {
    std::vector<bool> in;
    for (const SimWord w : words) in.push_back(((w >> bit) & 1) != 0);
    const auto scalar = evaluate(net, in);
    for (std::size_t j = 0; j < scalar.size(); ++j) {
      EXPECT_EQ(scalar[j], ((out[j] >> bit) & 1) != 0);
    }
  }
}

TEST(Sim, EquivalenceDetectsDifference) {
  NetworkBuilder b1;
  {
    const NodeId x = b1.add_pi("x");
    const NodeId y = b1.add_pi("y");
    b1.add_output(b1.add_and(x, y), "z");
  }
  NetworkBuilder b2;
  {
    const NodeId x = b2.add_pi("x");
    const NodeId y = b2.add_pi("y");
    b2.add_output(b2.add_or(x, y), "z");
  }
  const Network a = std::move(b1).build();
  const Network c = std::move(b2).build();
  Rng rng(17);
  EXPECT_FALSE(equivalent_by_simulation(a, c, 4, rng));
  EXPECT_TRUE(equivalent_by_simulation(a, a, 4, rng));
}

TEST(Sim, WrongPiCountThrows) {
  const Network net = testing::fig2_network();
  EXPECT_THROW(simulate_outputs(net, {1, 2}), Error);
}

TEST(Sim, BlifModelOracleAgreesWithDecomposition) {
  const BlifModel m = parse_blif(
      ".model mix\n.inputs a b c d\n.outputs p q\n"
      ".names a b t\n10 1\n01 1\n"
      ".names t c d p\n1-0 1\n-11 1\n"
      ".names t q\n0 1\n.end\n");
  const Network net = decompose(m);
  for (int v = 0; v < 16; ++v) {
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back(((v >> i) & 1) != 0);
    EXPECT_EQ(evaluate(m, in), evaluate(net, in)) << "vector " << v;
  }
}

TEST(Sim, RandomWordsDeterministicPerSeed) {
  Rng r1(1234);
  Rng r2(1234);
  EXPECT_EQ(random_pi_words(5, r1), random_pi_words(5, r2));
}

}  // namespace
}  // namespace soidom
